// consolidation: the paper's full experiment — two HTC providers (NASA,
// BLUE) and one MTC provider (Montage) consolidated on one cloud platform,
// evaluated under all four usage models. This is the programmatic version
// of Section 4's evaluation; the bench/ binaries print the individual
// tables and figures.
//
// Usage: consolidation [--csv out.csv] [--extra-htc N] [--config file.dcfg]
//   --extra-htc N  adds N more synthetic HTC providers, exercising the
//                  generalized m-provider case from the paper's future work.
//   --config FILE  loads the providers from an experiment description file
//                  (the Section 2.2 requirement description model) instead
//                  of the built-in paper workload.
#include <cstdio>
#include <cstring>
#include <string>

#include "core/description.hpp"
#include "core/paper.hpp"
#include "core/systems.hpp"
#include "metrics/report.hpp"
#include "workload/models.hpp"

int main(int argc, char** argv) {
  using namespace dc;
  std::string csv_path;
  std::string config_path;
  int extra_htc = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--csv") == 0 && i + 1 < argc) {
      csv_path = argv[++i];
    } else if (std::strcmp(argv[i], "--extra-htc") == 0 && i + 1 < argc) {
      extra_htc = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--config") == 0 && i + 1 < argc) {
      config_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--csv out.csv] [--extra-htc N] [--config FILE]\n",
                   argv[0]);
      return 2;
    }
  }

  core::ConsolidationWorkload workload;
  if (!config_path.empty()) {
    auto parsed = core::read_experiment_description(config_path);
    if (!parsed.is_ok()) {
      std::fprintf(stderr, "%s\n", parsed.status().to_string().c_str());
      return 1;
    }
    workload = std::move(*parsed);
  } else {
    workload = core::paper_consolidation();
  }
  for (int i = 0; i < extra_htc; ++i) {
    core::HtcWorkloadSpec spec =
        core::paper_nasa_spec(1000 + static_cast<std::uint64_t>(i));
    spec.name = "ORG" + std::to_string(i);
    workload.htc.push_back(std::move(spec));
  }

  std::printf("Consolidating %zu HTC + %zu MTC service providers on one "
              "cloud platform\n\n",
              workload.htc.size(), workload.mtc.size());

  const auto results = core::run_all_systems(workload);

  for (const auto& spec : workload.htc) {
    std::puts(metrics::format_htc_provider_table(
                  results, spec.name, "HTC provider: " + spec.name)
                  .c_str());
  }
  for (const auto& spec : workload.mtc) {
    std::puts(metrics::format_mtc_provider_table(
                  results, spec.name, "MTC provider: " + spec.name)
                  .c_str());
  }
  std::puts(metrics::format_resource_provider_report(results).c_str());
  std::puts(metrics::format_overhead_report(results).c_str());

  if (!csv_path.empty()) {
    CsvWriter csv(csv_path);
    if (!csv.ok()) {
      std::fprintf(stderr, "cannot write %s\n", csv_path.c_str());
      return 1;
    }
    metrics::write_results_csv(csv, results);
    std::printf("wrote %s\n", csv_path.c_str());
  }
  return 0;
}
