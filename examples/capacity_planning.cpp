// capacity_planning: how many nodes must the resource provider actually
// buy? Figure 13's practical consequence, computed by binary search.
//
// For DRP and DawningCloud, find the smallest bounded platform capacity at
// which the consolidated three-provider workload suffers no rejected
// resource requests (DRP rejections drop jobs; DawningCloud rejections
// force queueing). Then compare with the fixed systems' requirement (the
// sum of the DCS sizes, 438 nodes) and price the difference.
#include <cstdio>

#include "core/paper.hpp"
#include "core/systems.hpp"
#include "cost/tco.hpp"
#include "util/log.hpp"
#include "util/strings.hpp"

namespace {

using namespace dc;

/// Smallest capacity in [lo, hi] with zero rejected requests.
std::int64_t min_capacity_without_rejections(core::SystemModel model,
                                             const core::ConsolidationWorkload& workload,
                                             std::int64_t lo, std::int64_t hi) {
  auto rejections_at = [&](std::int64_t capacity) {
    core::RunOptions options;
    options.platform_capacity = capacity;
    return core::run_system(model, workload, options).rejected_requests;
  };
  while (lo < hi) {
    const std::int64_t mid = lo + (hi - lo) / 2;
    if (rejections_at(mid) == 0) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

}  // namespace

int main() {
  using namespace dc;
  // The binary search probes undersized platforms on purpose; silence the
  // servers' rejection warnings.
  Log::set_level(LogLevel::kError);
  const auto workload = core::paper_consolidation();
  const std::int64_t fixed_requirement = 128 + 144 + 166;

  std::puts("Capacity planning for the consolidated three-provider workload");
  std::printf("  DCS/SSP fixed requirement:     %lld nodes\n\n",
              static_cast<long long>(fixed_requirement));

  struct Row {
    core::SystemModel model;
    std::int64_t capacity;
  };
  std::vector<Row> rows;
  for (core::SystemModel model :
       {core::SystemModel::kDawningCloud, core::SystemModel::kDrp}) {
    const std::int64_t capacity =
        min_capacity_without_rejections(model, workload, 1, 4096);
    rows.push_back({model, capacity});
    std::printf("  %-14s needs %4lld nodes for zero rejections (%.2fx the "
                "fixed requirement)\n",
                system_model_name(model), static_cast<long long>(capacity),
                static_cast<double>(capacity) /
                    static_cast<double>(fixed_requirement));
  }

  std::puts("\nOwnership cost of that platform (scaled Section 4.5.5 model):");
  std::printf("  fixed (DCS/SSP)  $%8.0f per month\n",
              cost::dcs_cost_for_nodes(fixed_requirement));
  for (const Row& row : rows) {
    std::printf("  %-15s  $%8.0f per month\n",
                system_model_name(row.model),
                cost::dcs_cost_for_nodes(row.capacity));
  }
  std::puts("\nA DRP-facing provider must capacity-plan for every transient"
            "\nbacklog; the DSP model's subscription-capped elasticity keeps"
            "\nthe buildout near the fixed systems' size while billing ~24%"
            "\nfewer node*hours (Figure 12).");
  return 0;
}
