// Quickstart: consolidate one small HTC provider and one small MTC provider
// on a cloud platform and compare all four usage models.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "core/paper.hpp"
#include "core/systems.hpp"
#include "metrics/report.hpp"
#include "workflow/montage.hpp"
#include "workload/models.hpp"
#include "workload/trace_stats.hpp"

int main() {
  using namespace dc;

  // A small synthetic HTC trace: 3 days, 64 nodes, moderate load.
  workload::SyntheticTraceSpec trace_spec;
  trace_spec.name = "demo-htc";
  trace_spec.capacity_nodes = 64;
  trace_spec.period = 3 * kDay;
  trace_spec.jobs_per_day = 120;
  trace_spec.bursts_per_day = 2.0;
  trace_spec.burst_jobs_min = 4;
  trace_spec.burst_jobs_max = 12;
  trace_spec.width_weights = {{1, 0.3}, {2, 0.2}, {4, 0.2}, {8, 0.15},
                              {16, 0.1}, {32, 0.04}, {64, 0.01}};
  workload::Trace trace = workload::generate_trace(trace_spec, /*seed=*/1);
  std::puts(workload::format_stats(trace, workload::compute_stats(trace)).c_str());

  // A small Montage workflow: 40 inputs -> 40 + 158 + 40 + 6 = 244 tasks.
  workflow::MontageParams montage_params;
  montage_params.inputs = 40;
  workflow::Dag dag = workflow::make_montage(montage_params, /*seed=*/2);
  std::printf("montage: %zu tasks, critical path %llds, max level width %zu\n\n",
              dag.size(), static_cast<long long>(dag.critical_path()),
              dag.max_level_width());

  // Consolidate both providers and run every system model.
  core::ConsolidationWorkload workload;
  workload.htc.push_back(core::HtcWorkloadSpec{
      "demo-htc", trace, /*fixed_nodes=*/64,
      core::ResourceManagementPolicy::htc(/*B=*/16, /*R=*/1.5)});
  workload.mtc.push_back(core::MtcWorkloadSpec{
      "demo-mtc", dag, /*submit_time=*/kDay + 10 * kHour, /*fixed_nodes=*/40,
      core::ResourceManagementPolicy::mtc(/*B=*/5, /*R=*/8.0)});

  const std::vector<core::SystemResult> results =
      core::run_all_systems(workload);

  std::puts(metrics::format_model_comparison_table().c_str());
  std::puts(metrics::format_htc_provider_table(results, "demo-htc",
                                               "HTC service provider metrics")
                .c_str());
  std::puts(metrics::format_mtc_provider_table(results, "demo-mtc",
                                               "MTC service provider metrics")
                .c_str());
  std::puts(metrics::format_resource_provider_report(results).c_str());
  std::puts(metrics::format_overhead_report(results).c_str());
  return 0;
}
