// federation: the generalized n-provider cloud market (the paper's future
// work). Three resource providers with different capacities and prices
// compete for six service providers' TREs; the example contrasts the three
// placement policies and prints each provider's books.
//
// Usage: federation [placement]   (first-fit | least-loaded | cheapest)
#include <cstdio>
#include <cstring>
#include <string>

#include "core/federation.hpp"
#include "core/paper.hpp"
#include "util/strings.hpp"

int main(int argc, char** argv) {
  using namespace dc;

  core::PlacementPolicy placement = core::PlacementPolicy::kLeastLoaded;
  if (argc > 1) {
    const std::string arg = argv[1];
    if (arg == "first-fit") placement = core::PlacementPolicy::kFirstFit;
    else if (arg == "least-loaded") placement = core::PlacementPolicy::kLeastLoaded;
    else if (arg == "cheapest") placement = core::PlacementPolicy::kCheapest;
    else {
      std::fprintf(stderr, "unknown placement: %s\n", arg.c_str());
      return 2;
    }
  }

  // Six service providers: two re-seeded copies of each paper workload.
  core::ConsolidationWorkload workload;
  for (int i = 0; i < 2; ++i) {
    const auto seeds = static_cast<std::uint64_t>(10 * i);
    auto nasa = core::paper_nasa_spec(42 + seeds);
    nasa.name = str_format("NASA-%d", i);
    workload.htc.push_back(std::move(nasa));
    auto blue = core::paper_blue_spec(43 + seeds);
    blue.name = str_format("BLUE-%d", i);
    workload.htc.push_back(std::move(blue));
    auto montage = core::paper_montage_spec(7 + seeds);
    montage.name = str_format("Montage-%d", i);
    montage.submit_time = (6 + 3 * i) * kDay;
    workload.mtc.push_back(std::move(montage));
  }

  // Three resource providers: a big incumbent, a mid-size one, and a small
  // discounter.
  const std::vector<core::ResourceProviderSpec> providers = {
      {"MegaCloud", 600, 0.12},
      {"MidCloud", 350, 0.10},
      {"BudgetCloud", 200, 0.08},
  };

  std::printf("Placement policy: %s\n\n", placement_policy_name(placement));
  const auto result = core::run_federated_dsp(providers, workload, placement);

  std::puts("TRE placements:");
  for (const auto& decision : result.placements) {
    std::printf("  %-10s (subscription %3lld nodes) -> %s\n",
                decision.service_provider.c_str(),
                static_cast<long long>(decision.subscription),
                decision.resource_provider.empty()
                    ? "UNPLACED"
                    : decision.resource_provider.c_str());
  }
  std::puts("");
  std::puts(core::format_federation_report(result).c_str());

  std::puts("Service-provider outcomes:");
  for (const auto& provider : result.service_providers) {
    std::printf("  %-10s completed %5lld  consumption %6lld node*h  "
                "mean wait %.0fs\n",
                provider.provider.c_str(),
                static_cast<long long>(provider.completed_jobs),
                static_cast<long long>(provider.consumption_node_hours),
                provider.mean_wait_seconds);
  }
  return 0;
}
