// web_provider: a web-service organization on the cloud platform
// (PhoenixCloud-style, the lineage DawningCloud builds on).
//
// Shows the demand-profile substrate and the WSS runtime environment:
// prints the demand curve, runs fixed-peak vs elastic provisioning, and
// reports the bill and the SLA violations of each.
//
// Usage: web_provider [peak_nodes] [headroom]
#include <cstdio>
#include <cstdlib>

#include "core/provision_service.hpp"
#include "core/wss_server.hpp"
#include "sim/simulator.hpp"
#include "util/ascii_chart.hpp"
#include "workload/demand_profile.hpp"

int main(int argc, char** argv) {
  using namespace dc;
  workload::WebDemandSpec demand_spec;
  if (argc > 1) demand_spec.peak_nodes = std::strtoll(argv[1], nullptr, 10);
  double headroom = argc > 2 ? std::strtod(argv[2], nullptr) : 0.10;

  const workload::DemandProfile profile =
      workload::make_web_demand(demand_spec, /*seed=*/77);
  const SimTime horizon = profile.period();

  std::printf("web-service demand over two weeks: base %lld, peak %lld, "
              "mean %.1f nodes\n\n",
              static_cast<long long>(demand_spec.base_nodes),
              static_cast<long long>(profile.peak()), profile.mean());
  ChartSeries series{"demand (nodes)", {}};
  for (std::int64_t level : profile.hourly()) {
    series.values.push_back(static_cast<double>(level));
  }
  ChartOptions chart_options;
  chart_options.height = 12;
  chart_options.x_label = "hours 0..336";
  std::puts(render_chart({series}, chart_options).c_str());

  for (const bool elastic : {false, true}) {
    sim::Simulator sim;
    core::ResourceProvisionService provision(cluster::ResourcePool::unbounded());
    core::WssServer::Config config;
    config.name = elastic ? "elastic" : "fixed";
    if (elastic) {
      core::WssServer::ElasticPolicy policy;
      policy.headroom = headroom;
      config.policy = policy;
    } else {
      config.fixed_nodes = profile.peak();
    }
    core::WssServer server(sim, provision, std::move(config), profile);
    sim.schedule_at(0, [&server] { server.start(); });
    sim.run_until(horizon);
    server.shutdown();
    std::printf(
        "%-8s provisioning: %6lld node*hours billed, %7.1f node*hours of "
        "SLA violation (%llds in violation)\n",
        elastic ? "elastic" : "fixed",
        static_cast<long long>(server.ledger().billed_node_hours(horizon)),
        server.violation_node_hours(),
        static_cast<long long>(server.violation_seconds()));
  }
  std::printf("\n(headroom %.0f%%; raise it to trade node*hours for SLA "
              "safety on flash crowds)\n",
              100.0 * headroom);
  return 0;
}
