// trace_tools: generate, inspect and convert workload traces & workflows.
//
// Usage:
//   trace_tools nasa [seed]            print stats of the synthetic NASA trace
//   trace_tools blue [seed]            print stats of the synthetic BLUE trace
//   trace_tools gen-nasa <out.swf>     write the synthetic NASA trace as SWF
//   trace_tools gen-blue <out.swf>     write the synthetic BLUE trace as SWF
//   trace_tools stats <file.swf>       print stats of any SWF trace
//   trace_tools montage [inputs]       print structure of a Montage workflow
//   trace_tools gen-montage <out.wff>  write the paper Montage workflow
//
// The "billed/used" line is the hourly-quantum rounding factor that
// determines whether the DRP model wins or loses against fixed-size
// provisioning for a given trace (Tables 2 and 3).
#include <cstdio>
#include <cstring>
#include <string>

#include "util/time.hpp"
#include "workflow/montage.hpp"
#include "workflow/wff.hpp"
#include "workload/models.hpp"
#include "workload/swf.hpp"
#include "workload/trace_stats.hpp"

namespace {

using namespace dc;

void print_trace_report(const workload::Trace& trace) {
  const workload::TraceStats stats = workload::compute_stats(trace);
  std::fputs(workload::format_stats(trace, stats).c_str(), stdout);
  // Hourly-quantum billing factor: sum(w * ceil(rt/1h)) / sum(w * rt/1h).
  double billed = 0.0;
  for (const workload::TraceJob& job : trace.jobs()) {
    billed += static_cast<double>(job.nodes) *
              static_cast<double>(billed_hours(job.runtime));
  }
  std::printf("  DRP billed       %.0f node*hours (billed/used = %.2f)\n",
              billed,
              stats.demand_node_hours > 0 ? billed / stats.demand_node_hours
                                          : 0.0);
}

int run_montage(std::int64_t inputs) {
  workflow::MontageParams params;
  params.inputs = inputs;
  const workflow::Dag dag = workflow::make_montage(params, /*seed=*/7);
  std::printf("montage(%lld inputs): %zu tasks, %zu edges\n",
              static_cast<long long>(inputs), dag.size(), dag.edge_count());
  std::printf("  mean runtime   %.2f s\n", dag.mean_runtime());
  std::printf("  total work     %lld s\n",
              static_cast<long long>(dag.total_work()));
  std::printf("  critical path  %lld s\n",
              static_cast<long long>(dag.critical_path()));
  const auto levels = dag.levels();
  std::printf("  levels         %zu\n", levels.size());
  for (std::size_t i = 0; i < levels.size(); ++i) {
    std::printf("    level %zu: %zu tasks (first: %s)\n", i, levels[i].size(),
                dag.task(levels[i].front()).name.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dc;
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s nasa|blue|gen-nasa|gen-blue|stats|montage|gen-montage ...\n",
                 argv[0]);
    return 2;
  }
  const std::string cmd = argv[1];
  if (cmd == "nasa" || cmd == "blue") {
    const std::uint64_t seed =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : (cmd == "nasa" ? 42 : 43);
    const workload::Trace trace = cmd == "nasa"
                                      ? workload::make_nasa_ipsc(seed)
                                      : workload::make_sdsc_blue(seed);
    print_trace_report(trace);
    return 0;
  }
  if (cmd == "gen-nasa" || cmd == "gen-blue") {
    if (argc < 3) {
      std::fprintf(stderr, "missing output path\n");
      return 2;
    }
    const workload::Trace trace = cmd == "gen-nasa"
                                      ? workload::make_nasa_ipsc()
                                      : workload::make_sdsc_blue();
    const auto status = workload::write_swf_file(argv[2], trace.to_swf());
    if (!status.is_ok()) {
      std::fprintf(stderr, "%s\n", status.to_string().c_str());
      return 1;
    }
    std::printf("wrote %zu jobs to %s\n", trace.size(), argv[2]);
    return 0;
  }
  if (cmd == "stats") {
    if (argc < 3) {
      std::fprintf(stderr, "missing SWF path\n");
      return 2;
    }
    auto swf = workload::read_swf_file(argv[2]);
    if (!swf.is_ok()) {
      std::fprintf(stderr, "%s\n", swf.status().to_string().c_str());
      return 1;
    }
    auto trace = workload::Trace::from_swf(*swf, argv[2]);
    if (!trace.is_ok()) {
      std::fprintf(stderr, "%s\n", trace.status().to_string().c_str());
      return 1;
    }
    print_trace_report(*trace);
    return 0;
  }
  if (cmd == "montage") {
    const std::int64_t inputs = argc > 2 ? std::strtoll(argv[2], nullptr, 10) : 166;
    return run_montage(inputs);
  }
  if (cmd == "gen-montage") {
    if (argc < 3) {
      std::fprintf(stderr, "missing output path\n");
      return 2;
    }
    const workflow::Dag dag = workflow::make_paper_montage();
    const auto status = workflow::write_wff_file(argv[2], dag);
    if (!status.is_ok()) {
      std::fprintf(stderr, "%s\n", status.to_string().c_str());
      return 1;
    }
    std::printf("wrote %zu tasks to %s\n", dag.size(), argv[2]);
    return 0;
  }
  std::fprintf(stderr, "unknown command: %s\n", cmd.c_str());
  return 2;
}
