// mtc_montage: run a Montage mosaic workflow through the MTC runtime
// environment, watching the DSP policy resize the TRE live.
//
// The example prints the workflow structure, then samples the TRE's owned/
// busy nodes while the workflow executes — showing the B=10 -> 166 node
// expansion at the first 3-second scan and the release after completion.
//
// Usage: mtc_montage [inputs] [B] [R]
#include <cstdio>
#include <cstdlib>

#include "core/mtc_server.hpp"
#include "core/provision_service.hpp"
#include "sched/fcfs.hpp"
#include "sim/simulator.hpp"
#include "workflow/montage.hpp"

int main(int argc, char** argv) {
  using namespace dc;
  workflow::MontageParams params;
  params.inputs = argc > 1 ? std::strtoll(argv[1], nullptr, 10) : 166;
  const std::int64_t b = argc > 2 ? std::strtoll(argv[2], nullptr, 10) : 10;
  const double r = argc > 3 ? std::strtod(argv[3], nullptr) : 8.0;

  const workflow::Dag dag = workflow::make_montage(params, /*seed=*/7);
  std::printf("Montage workflow: %zu tasks, %zu edges, mean runtime %.2fs\n",
              dag.size(), dag.edge_count(), dag.mean_runtime());
  std::printf("  critical path %llds, total work %llds, widest level %zu tasks\n\n",
              static_cast<long long>(dag.critical_path()),
              static_cast<long long>(dag.total_work()), dag.max_level_width());

  sim::Simulator sim;
  core::ResourceProvisionService provision(cluster::ResourcePool::unbounded());
  sched::FcfsScheduler fcfs;

  core::MtcServer::MtcConfig config;
  config.name = "montage-tre";
  config.policy = core::ResourceManagementPolicy::mtc(b, r);
  config.scheduler = &fcfs;
  core::MtcServer server(sim, provision, std::move(config));

  sim.schedule_at(0, [&] {
    server.start();
    server.submit_workflow(dag);
  });

  // Sample the TRE every 30 simulated seconds while it works.
  std::puts("  time      owned   busy   queued   completed");
  for (SimTime t = 0; t <= 15 * kMinute; t += 30) {
    sim.schedule_at(t, [&, t] {
      if (server.is_shutdown()) return;
      std::printf("  %-8s  %5lld  %5lld  %7zu  %10lld\n",
                  format_time(t).c_str() + 3,  // strip "0d "
                  static_cast<long long>(server.owned()),
                  static_cast<long long>(server.busy()),
                  server.queue_length(),
                  static_cast<long long>(server.completed_tasks()));
    });
  }
  sim.run_until(kDay);

  const SimTime horizon = kDay;
  std::printf("\nresult: %lld tasks in %llds -> %.2f tasks/s, "
              "%lld node*hours billed\n",
              static_cast<long long>(server.completed_tasks(horizon)),
              static_cast<long long>(server.makespan(horizon)),
              server.tasks_per_second(horizon),
              static_cast<long long>(
                  server.ledger().billed_node_hours(horizon)));
  return 0;
}
