// gated_pipeline: the trigger monitor driving a nightly observation
// pipeline.
//
// Section 3.1.2's trigger monitor watches external conditions ("the
// changes of database's record or files") and releases workflow stages
// when they fire. This example models a telescope campaign: three nights
// of observations, each night's Montage mosaic gated on its data arriving
// from the instrument — the reduction stages are submitted up front but
// run only when their night's trigger fires.
#include <cstdio>

#include "core/mtc_server.hpp"
#include "core/provision_service.hpp"
#include "sched/fcfs.hpp"
#include "sim/simulator.hpp"
#include "workflow/montage.hpp"

int main() {
  using namespace dc;
  sim::Simulator sim;
  core::ResourceProvisionService provision(cluster::ResourcePool::unbounded());
  sched::FcfsScheduler fcfs;

  core::MtcServer::MtcConfig config;
  config.name = "observatory";
  config.policy = core::ResourceManagementPolicy::mtc(/*B=*/8, /*R=*/8.0);
  config.scheduler = &fcfs;
  config.destroy_when_complete = true;
  core::MtcServer server(sim, provision, std::move(config));

  // Build one Montage per night and gate every root (mProjectPP) task on
  // that night's data-arrival trigger.
  workflow::MontageParams params;
  params.inputs = 40;  // 244 tasks per night
  std::vector<core::MtcServer::GatedSubmission> submissions;
  sim.schedule_at(0, [&] {
    server.start();
    for (std::uint64_t night = 0; night < 3; ++night) {
      const workflow::Dag dag =
          workflow::make_montage(params, /*seed=*/100 + night);
      submissions.push_back(server.submit_workflow_gated(dag, dag.roots()));
      std::printf("campaign: night-%llu mosaic registered (%zu tasks, "
                  "%zu gated roots)\n",
                  static_cast<unsigned long long>(night), dag.size(),
                  submissions.back().triggers.size());
    }
  });

  // Data lands at 22:00 each night; the trigger monitor fires then.
  for (std::uint64_t night = 0; night < 3; ++night) {
    const SimTime arrival = static_cast<SimTime>(night) * kDay + 22 * kHour;
    sim.schedule_at(arrival, [&, night] {
      std::printf("[%s] night-%llu data arrived -> firing %zu triggers\n",
                  format_time(sim.now()).c_str(),
                  static_cast<unsigned long long>(night),
                  submissions[night].triggers.size());
      for (const auto trigger : submissions[night].triggers) {
        server.fire_trigger(trigger);
      }
    });
    // Sample the TRE shortly after each arrival.
    sim.schedule_at(arrival + 5 * kMinute, [&] {
      std::printf("[%s] owned=%lld busy=%lld completed=%lld\n",
                  format_time(sim.now()).c_str(),
                  static_cast<long long>(server.owned()),
                  static_cast<long long>(server.busy()),
                  static_cast<long long>(server.completed_tasks()));
    });
  }

  sim.run_until(4 * kDay);
  std::printf("\ncampaign complete: %lld tasks, %lld node*hours billed "
              "(TRE destroyed after the last mosaic)\n",
              static_cast<long long>(server.completed_tasks()),
              static_cast<long long>(
                  server.ledger().billed_node_hours(4 * kDay)));
  return 0;
}
