// htc_provider: an HTC service provider evaluating its options.
//
// Scenario (the paper's introduction): a medium-size research organization
// runs batch jobs and must decide between buying a dedicated cluster (DCS),
// renting a fixed-size virtual cluster (SSP), letting each user lease VMs
// directly (DRP), or subscribing to a DawningCloud runtime environment
// (DSP). This example runs the organization's trace through all four and
// prints the provider-facing metrics plus the monthly bill.
//
// Usage: htc_provider [nasa|blue] [seed]
#include <cstdio>
#include <string>

#include "core/htc_server.hpp"
#include "core/job_emulator.hpp"
#include "core/paper.hpp"
#include "core/systems.hpp"
#include "cost/invoice.hpp"
#include "cost/tco.hpp"
#include "metrics/report.hpp"
#include "sched/first_fit.hpp"
#include "util/strings.hpp"
#include "workload/trace_stats.hpp"

int main(int argc, char** argv) {
  using namespace dc;
  const std::string which = argc > 1 ? argv[1] : "nasa";
  const std::uint64_t seed =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10)
               : (which == "nasa" ? core::PaperSeeds{}.nasa
                                  : core::PaperSeeds{}.blue);

  core::HtcWorkloadSpec spec = which == "blue" ? core::paper_blue_spec(seed)
                                               : core::paper_nasa_spec(seed);
  std::printf("Service provider '%s' evaluating usage models\n\n",
              spec.name.c_str());
  std::fputs(workload::format_stats(spec.trace,
                                    workload::compute_stats(spec.trace))
                 .c_str(),
             stdout);
  std::printf("\nDawningCloud policy: B=%lld initial nodes, R=%.1f threshold, "
              "subscription %lld nodes\n\n",
              static_cast<long long>(spec.policy.initial_nodes),
              spec.policy.threshold_ratio,
              static_cast<long long>(spec.policy.max_nodes));

  const std::string provider = spec.name;
  const auto results =
      core::run_all_systems(core::single_htc_workload(std::move(spec)));

  std::puts(metrics::format_htc_provider_table(
                results, provider, "Provider metrics across usage models")
                .c_str());

  // Price each option: DCS via the ownership cost model scaled to this
  // provider's cluster size, the cloud options via on-demand node*hours
  // (two weeks scaled to a month).
  const std::int64_t dcs_nodes =
      metrics::result_for(results, core::SystemModel::kDcs)
          .provider(provider)
          .peak_nodes;
  std::puts("Monthly cost estimate:");
  std::printf("  %-14s $%8.0f  (ownership of %lld nodes: depreciation + "
              "maintenance + energy)\n",
              "DCS", cost::dcs_cost_for_nodes(dcs_nodes),
              static_cast<long long>(dcs_nodes));
  for (const auto& result : results) {
    if (result.model == core::SystemModel::kDcs) continue;
    const auto node_hours =
        result.provider(provider).consumption_node_hours;
    const double monthly =
        cost::consumption_cost_usd(node_hours) * 30.0 / 14.0;
    std::printf("  %-14s $%8.0f  (%lld node*hours over two weeks @ $0.10)\n",
                system_model_name(result.model), monthly,
                static_cast<long long>(node_hours));
  }

  // The DawningCloud bill, itemized: rerun the elastic server standalone to
  // get at its lease ledger and print the resource provider's invoice.
  {
    const core::HtcWorkloadSpec respec = which == "blue"
                                             ? core::paper_blue_spec(seed)
                                             : core::paper_nasa_spec(seed);
    sim::Simulator sim;
    core::ResourceProvisionService provision(cluster::ResourcePool::unbounded());
    sched::FirstFitScheduler first_fit;
    core::HtcServer::Config config;
    config.name = respec.name;
    config.policy = respec.policy;
    config.scheduler = &first_fit;
    core::HtcServer server(sim, provision, std::move(config));
    sim.schedule_at(0, [&server] { server.start(); });
    core::JobEmulator emulator(sim);
    emulator.emulate_trace(respec.trace, [&server](const workload::TraceJob& j) {
      server.submit(j.runtime, j.nodes);
    });
    const SimTime horizon = respec.trace.period();
    sim.run_until(horizon);
    server.shutdown();
    std::puts("");
    std::puts(cost::format_invoice(
                  cost::generate_summary_invoice(respec.name, server.ledger(),
                                                 horizon),
                  /*max_lines=*/10)
                  .c_str());
  }
  return 0;
}
