#include "cluster/billing.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace dc::cluster {
namespace {

TEST(LeaseLedger, RecordsCompleteLease) {
  LeaseLedger ledger;
  ledger.record(0, 90 * kMinute, 10, "job");
  // 1.5 hours rounds up to 2 billed hours.
  EXPECT_EQ(ledger.billed_node_hours(kDay), 20);
  EXPECT_DOUBLE_EQ(ledger.exact_node_hours(kDay), 15.0);
}

TEST(LeaseLedger, OpenLeaseClosesAtHorizon) {
  LeaseLedger ledger;
  ledger.open(kHour, 4, "initial");
  EXPECT_EQ(ledger.billed_node_hours(3 * kHour), 8);  // held 2h
  EXPECT_EQ(ledger.billed_node_hours(3 * kHour + 1), 12);
}

TEST(LeaseLedger, CloseFixesTheEnd) {
  LeaseLedger ledger;
  const LeaseId id = ledger.open(0, 5);
  ledger.close(id, 2 * kHour);
  EXPECT_EQ(ledger.billed_node_hours(100 * kHour), 10);
}

TEST(LeaseLedger, AmendEndShortensClosedLease) {
  LeaseLedger ledger;
  // A DRP job lease is pre-closed at its planned end; a VM failure amends
  // it down to the failure instant.
  const LeaseId id = ledger.open(0, 4, "job");
  ledger.close(id, 3 * kHour);
  EXPECT_EQ(ledger.billed_node_hours(kDay), 12);
  ledger.amend_end(id, 90 * kMinute);
  EXPECT_EQ(ledger.billed_node_hours(kDay), 8);  // 1.5h rounds up to 2
  EXPECT_DOUBLE_EQ(ledger.exact_node_hours(kDay), 6.0);
  ledger.amend_end(id, 0);  // down to a zero-length (unbilled) lease
  EXPECT_EQ(ledger.billed_node_hours(kDay), 0);
}

TEST(LeaseLedger, AmendEndToExactStartBillsZero) {
  LeaseLedger ledger;
  // A lease that began at a nonzero instant, amended all the way back to
  // its own start (the covering VM failed before doing any work): zero
  // duration, zero bill, and the other lease is untouched.
  const LeaseId doomed = ledger.open(2 * kHour, 8, "doomed");
  const LeaseId healthy = ledger.open(0, 3, "healthy");
  ledger.close(doomed, 5 * kHour);
  ledger.close(healthy, 2 * kHour);
  ledger.amend_end(doomed, 2 * kHour);
  EXPECT_EQ(ledger.billed_node_hours(kDay), 6);  // healthy only: 3 x 2h
  EXPECT_DOUBLE_EQ(ledger.exact_node_hours(kDay), 6.0);
}

TEST(LeaseLedger, AmendEndNeverReExtends) {
  LeaseLedger ledger;
  const LeaseId id = ledger.open(kHour, 4, "job");
  ledger.close(id, 4 * kHour);
  ledger.amend_end(id, 2 * kHour);
  EXPECT_EQ(ledger.billed_node_hours(kDay), 4);  // 1h x 4 nodes
  // A second amend with a later instant (a stale repair event arriving
  // after the failure already truncated the lease) must not re-extend it,
  // and amending before the start clamps to the start.
  ledger.amend_end(id, 10 * kHour);
  EXPECT_EQ(ledger.billed_node_hours(kDay), 4);
  ledger.amend_end(id, 0);
  EXPECT_EQ(ledger.billed_node_hours(kDay), 0);
  EXPECT_DOUBLE_EQ(ledger.exact_node_hours(kDay), 0.0);
}

TEST(LeaseLedger, ZeroDurationLeaseBillsNothing) {
  LeaseLedger ledger;
  ledger.record(10, 10, 100, "instant");
  EXPECT_EQ(ledger.billed_node_hours(kDay), 0);
}

TEST(LeaseLedger, ExactHourBillsExactly) {
  LeaseLedger ledger;
  ledger.record(0, kHour, 7, "one-hour");
  EXPECT_EQ(ledger.billed_node_hours(kDay), 7);
  ledger.record(0, kHour + 1, 7, "one-hour-plus");
  EXPECT_EQ(ledger.billed_node_hours(kDay), 7 + 14);
}

TEST(LeaseLedger, MultipleLeasesSum) {
  LeaseLedger ledger;
  ledger.record(0, 30 * kMinute, 2, "a");
  ledger.record(kHour, 3 * kHour, 3, "b");
  EXPECT_EQ(ledger.billed_node_hours(kDay), 2 * 1 + 3 * 2);
  EXPECT_EQ(ledger.lease_count(), 2u);
}

TEST(LeaseLedger, CustomQuantum) {
  LeaseLedger ledger;
  ledger.record(0, 10 * kMinute, 6, "short");
  // 15-minute quantum: ceil(10/15) = 1 quantum = 0.25h -> 6*0.25 = 1.5,
  // integer math: 6 * 1 * 900 / 3600 = 1.
  EXPECT_EQ(ledger.billed_node_hours_with_quantum(kDay, 15 * kMinute), 1);
  // One-minute quantum: 6 nodes * 10 quanta * 60/3600 = 1.
  EXPECT_EQ(ledger.billed_node_hours_with_quantum(kDay, kMinute), 1);
  // Four-hour quantum: 6 * 1 * 4 = 24.
  EXPECT_EQ(ledger.billed_node_hours_with_quantum(kDay, 4 * kHour), 24);
}

TEST(LeaseLedger, BilledAlwaysAtLeastExact) {
  // Property: quantized billing never undercuts the exact integral.
  Rng rng(77);
  LeaseLedger ledger;
  for (int i = 0; i < 500; ++i) {
    const SimTime start = rng.uniform_int(0, 100 * kHour);
    const SimDuration duration = rng.uniform_int(1, 20 * kHour);
    ledger.record(start, start + duration, rng.uniform_int(1, 64));
  }
  const SimTime horizon = 200 * kHour;
  EXPECT_GE(static_cast<double>(ledger.billed_node_hours(horizon)),
            ledger.exact_node_hours(horizon) - 1e-6);
  // And is within one quantum-hour per lease of exact.
  double max_over = 0.0;
  for (const Lease& lease : ledger.leases()) max_over += lease.nodes;
  EXPECT_LE(static_cast<double>(ledger.billed_node_hours(horizon)),
            ledger.exact_node_hours(horizon) + max_over);
}

TEST(AdjustmentMeter, AccumulatesAndConvertsToSeconds) {
  AdjustmentMeter meter;
  meter.record(0, 10);
  meter.record(kHour, 5);
  EXPECT_EQ(meter.total_adjusted_nodes(), 15);
  EXPECT_NEAR(meter.overhead_seconds(), 15 * 15.743, 1e-9);
  EXPECT_EQ(meter.events().size(), 2u);
}

TEST(AdjustmentMeter, ZeroAdjustmentsIgnored) {
  AdjustmentMeter meter;
  meter.record(0, 0);
  EXPECT_EQ(meter.total_adjusted_nodes(), 0);
  EXPECT_TRUE(meter.events().empty());
}

TEST(AdjustmentMeter, PerHourRate) {
  AdjustmentMeter meter(10.0);
  meter.record(0, 36);
  EXPECT_DOUBLE_EQ(meter.overhead_seconds_per_hour(2 * kHour), 180.0);
  EXPECT_DOUBLE_EQ(meter.overhead_seconds_per_hour(0), 0.0);
}

}  // namespace
}  // namespace dc::cluster
