#include "cluster/usage_recorder.hpp"

#include <gtest/gtest.h>

namespace dc::cluster {
namespace {

TEST(UsageRecorder, EmptyRecorder) {
  UsageRecorder recorder;
  EXPECT_EQ(recorder.current(), 0);
  EXPECT_EQ(recorder.peak(), 0);
  EXPECT_DOUBLE_EQ(recorder.node_hours(kHour), 0.0);
}

TEST(UsageRecorder, TracksCurrentAndPeak) {
  UsageRecorder recorder;
  recorder.change(0, 10);
  recorder.change(100, 5);
  recorder.change(200, -12);
  EXPECT_EQ(recorder.current(), 3);
  EXPECT_EQ(recorder.peak(), 15);
}

TEST(UsageRecorder, NodeHoursIntegralIsExact) {
  UsageRecorder recorder;
  // 10 nodes for the first hour, 20 for the second, 0 afterwards.
  recorder.change(0, 10);
  recorder.change(kHour, 10);
  recorder.change(2 * kHour, -20);
  EXPECT_DOUBLE_EQ(recorder.node_hours(3 * kHour), 30.0);
}

TEST(UsageRecorder, IntegralExtendsLastLevelToHorizon) {
  UsageRecorder recorder;
  recorder.change(0, 4);
  EXPECT_DOUBLE_EQ(recorder.node_hours(10 * kHour), 40.0);
}

TEST(UsageRecorder, SameTimeChangesCoalesce) {
  UsageRecorder recorder;
  recorder.change(50, 3);
  recorder.change(50, 2);
  EXPECT_EQ(recorder.breakpoints().size(), 1u);
  EXPECT_EQ(recorder.breakpoints().back().level, 5);
}

TEST(UsageRecorder, HourlyPeakSeries) {
  UsageRecorder recorder;
  recorder.change(0, 10);
  recorder.change(30 * kMinute, 20);   // spike to 30 inside hour 0
  recorder.change(45 * kMinute, -25);  // down to 5
  recorder.change(kHour, 15);          // hour 1 at 20
  const auto series = recorder.hourly_peak_series(2 * kHour);
  ASSERT_EQ(series.size(), 2u);
  EXPECT_EQ(series[0], 30);
  EXPECT_EQ(series[1], 20);
}

TEST(UsageRecorder, SegmentEndingOnHourBoundaryStaysOut) {
  UsageRecorder recorder;
  recorder.change(0, 7);
  recorder.change(kHour, -7);  // drops exactly at the boundary
  const auto series = recorder.hourly_peak_series(2 * kHour);
  ASSERT_EQ(series.size(), 2u);
  EXPECT_EQ(series[0], 7);
  EXPECT_EQ(series[1], 0);
}

TEST(UsageRecorder, HourlyMeanSeries) {
  UsageRecorder recorder;
  recorder.change(0, 10);
  recorder.change(30 * kMinute, 10);  // 10 for half the hour, 20 for the rest
  const auto series = recorder.hourly_mean_series(kHour);
  ASSERT_EQ(series.size(), 1u);
  EXPECT_DOUBLE_EQ(series[0], 15.0);
}

TEST(UsageRecorder, MeanSeriesSumsToIntegral) {
  UsageRecorder recorder;
  recorder.change(10, 3);
  recorder.change(5000, 14);
  recorder.change(7300, -9);
  recorder.change(10000, -8);
  const SimTime horizon = 4 * kHour;
  const auto series = recorder.hourly_mean_series(horizon);
  double total = 0.0;
  for (double level : series) total += level;
  EXPECT_NEAR(total, recorder.node_hours(horizon), 1e-9);
}

TEST(UsageRecorder, PartialLastHour) {
  UsageRecorder recorder;
  recorder.change(0, 6);
  const auto series = recorder.hourly_peak_series(kHour + 30 * kMinute);
  ASSERT_EQ(series.size(), 2u);
  EXPECT_EQ(series[0], 6);
  EXPECT_EQ(series[1], 6);
}

}  // namespace
}  // namespace dc::cluster
