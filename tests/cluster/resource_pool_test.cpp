#include "cluster/resource_pool.hpp"

#include <gtest/gtest.h>

namespace dc::cluster {
namespace {

TEST(ResourcePool, BoundedAllocateAndRelease) {
  ResourcePool pool(100);
  EXPECT_TRUE(pool.is_bounded());
  EXPECT_EQ(pool.capacity(), 100);
  EXPECT_EQ(pool.free(), 100);

  EXPECT_TRUE(pool.allocate(60).is_ok());
  EXPECT_EQ(pool.allocated(), 60);
  EXPECT_EQ(pool.free(), 40);

  pool.release(25);
  EXPECT_EQ(pool.allocated(), 35);
}

TEST(ResourcePool, RejectsOverAllocationWithoutSideEffects) {
  ResourcePool pool(10);
  ASSERT_TRUE(pool.allocate(8).is_ok());
  const Status status = pool.allocate(3);
  EXPECT_FALSE(status.is_ok());
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(pool.allocated(), 8) << "failed allocation must not change state";
}

TEST(ResourcePool, ExactFitSucceeds) {
  ResourcePool pool(10);
  EXPECT_TRUE(pool.allocate(10).is_ok());
  EXPECT_EQ(pool.free(), 0);
  EXPECT_FALSE(pool.can_allocate(1));
  EXPECT_TRUE(pool.can_allocate(0));
}

TEST(ResourcePool, UnboundedNeverRejects) {
  ResourcePool pool = ResourcePool::unbounded();
  EXPECT_FALSE(pool.is_bounded());
  EXPECT_TRUE(pool.allocate(1'000'000).is_ok());
  EXPECT_TRUE(pool.can_allocate(1'000'000'000));
  EXPECT_EQ(pool.allocated(), 1'000'000);
  pool.release(1'000'000);
  EXPECT_EQ(pool.allocated(), 0);
}

TEST(ResourcePool, ZeroAllocationAlwaysSucceeds) {
  ResourcePool pool(0);
  EXPECT_TRUE(pool.allocate(0).is_ok());
  EXPECT_FALSE(pool.allocate(1).is_ok());
}

}  // namespace
}  // namespace dc::cluster
