#include "util/ascii_chart.hpp"

#include <gtest/gtest.h>

namespace dc {
namespace {

TEST(AsciiChart, EmptyInputsRenderNothing) {
  EXPECT_TRUE(render_chart({}).empty());
  ChartOptions zero;
  zero.width = 0;
  EXPECT_TRUE(render_chart({{"x", {1, 2}}}, zero).empty());
}

TEST(AsciiChart, ContainsLegendAndAxis) {
  const std::string out =
      render_chart({{"alpha", {1, 2, 3}}, {"beta", {3, 2, 1}}});
  EXPECT_NE(out.find("* alpha"), std::string::npos);
  EXPECT_NE(out.find("+ beta"), std::string::npos);
  EXPECT_NE(out.find('|'), std::string::npos);
  EXPECT_NE(out.find('-'), std::string::npos);
}

TEST(AsciiChart, YAxisShowsRange) {
  ChartOptions options;
  options.y_min = 0.0;
  options.y_max = 100.0;
  const std::string out = render_chart({{"s", {50.0}}}, options);
  EXPECT_NE(out.find("100.0"), std::string::npos);
  EXPECT_NE(out.find("0.0"), std::string::npos);
}

TEST(AsciiChart, ConstantSeriesSitsOnOneRow) {
  ChartOptions options;
  options.width = 10;
  options.height = 5;
  options.y_min = 0.0;
  options.y_max = 10.0;
  const std::string out = render_chart({{"flat", std::vector<double>(10, 10.0)}},
                                       options);
  // The top plot row should contain ten glyphs.
  const auto first_newline = out.find('\n');
  const std::string top = out.substr(0, first_newline);
  EXPECT_EQ(std::count(top.begin(), top.end(), '*'), 10);
}

TEST(AsciiChart, DownsamplesLongSeries) {
  ChartOptions options;
  options.width = 8;
  options.height = 4;
  std::vector<double> values(1000, 5.0);
  const std::string out = render_chart({{"long", values}}, options);
  EXPECT_FALSE(out.empty());
  // Every plot row line is label(10) + '|' + 8 columns.
  const auto first_newline = out.find('\n');
  EXPECT_EQ(first_newline, 10u + 1u + 8u);
}

TEST(AsciiChart, XLabelAppears) {
  ChartOptions options;
  options.x_label = "time (hours)";
  const std::string out = render_chart({{"s", {1.0, 2.0}}}, options);
  EXPECT_NE(out.find("time (hours)"), std::string::npos);
}

}  // namespace
}  // namespace dc
