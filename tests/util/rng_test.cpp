#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace dc {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a(), b());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int differences = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() != b()) ++differences;
  }
  EXPECT_GT(differences, 90);
}

TEST(Rng, ReseedRestartsStream) {
  Rng rng(5);
  const auto first = rng();
  rng.reseed(5);
  EXPECT_EQ(rng(), first);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntRespectsBounds) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 10000; ++i) {
    const std::int64_t v = rng.uniform_int(-3, 7);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 11u) << "all values in [-3,7] should appear";
}

TEST(Rng, UniformIntDegenerateRange) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.uniform_int(42, 42), 42);
  }
}

TEST(Rng, ExponentialMeanConverges) {
  Rng rng(17);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(50.0);
  EXPECT_NEAR(sum / n, 50.0, 1.0);
}

TEST(Rng, LognormalMeanCvConverges) {
  Rng rng(19);
  const int n = 200000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.lognormal_mean_cv(100.0, 0.5);
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 100.0, 2.0);
  EXPECT_NEAR(std::sqrt(var) / mean, 0.5, 0.03);
}

TEST(Rng, LognormalZeroCvIsDeterministic) {
  Rng rng(21);
  EXPECT_DOUBLE_EQ(rng.lognormal_mean_cv(33.0, 0.0), 33.0);
}

TEST(Rng, NormalMoments) {
  Rng rng(23);
  const int n = 200000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(Rng, BoundedParetoStaysInBounds) {
  Rng rng(29);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.bounded_pareto(1.5, 10.0, 1000.0);
    ASSERT_GE(x, 10.0);
    ASSERT_LE(x, 1000.0);
  }
}

TEST(Rng, HyperexponentialMean) {
  Rng rng(31);
  const int n = 200000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.hyperexponential(0.9, 10.0, 100.0);
  EXPECT_NEAR(sum / n, 0.9 * 10.0 + 0.1 * 100.0, 0.5);
}

TEST(Rng, WeightedIndexRespectsWeights) {
  Rng rng(37);
  const std::vector<double> weights = {1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  const int n = 40000;
  for (int i = 0; i < n; ++i) {
    ++counts[rng.weighted_index(weights)];
  }
  EXPECT_EQ(counts[1], 0) << "zero-weight bucket must never be drawn";
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.2);
}

TEST(SampleNhpp, RespectsRateShape) {
  Rng rng(41);
  // Rate 0 on the first half, max on the second half.
  const double horizon = 10000.0;
  const auto arrivals = sample_nhpp(rng, horizon, 0.1, [&](double t) {
    return t < horizon / 2 ? 0.0 : 0.1;
  });
  for (double t : arrivals) {
    ASSERT_GE(t, horizon / 2);
    ASSERT_LT(t, horizon);
  }
  // Expected count = 0.1 * 5000 = 500.
  EXPECT_NEAR(static_cast<double>(arrivals.size()), 500.0, 75.0);
}

TEST(SampleNhpp, SortedOutput) {
  Rng rng(43);
  const auto arrivals =
      sample_nhpp(rng, 50000.0, 0.05, [](double) { return 0.05; });
  EXPECT_TRUE(std::is_sorted(arrivals.begin(), arrivals.end()));
}

class RngSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngSeedSweep, UniformIntIsUnbiasedAtBoundaries) {
  // Property: over many draws in [0, 2], each value appears ~1/3 of the time.
  Rng rng(GetParam());
  std::vector<int> counts(3, 0);
  const int n = 30000;
  for (int i = 0; i < n; ++i) ++counts[static_cast<std::size_t>(rng.uniform_int(0, 2))];
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 1.0 / 3.0, 0.02);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(1u, 2u, 42u, 1234567u, ~0ull));

}  // namespace
}  // namespace dc
