#include "util/status.hpp"

#include <gtest/gtest.h>

namespace dc {
namespace {

TEST(Status, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.is_ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.to_string(), "OK");
}

TEST(Status, FactoryFunctionsSetCodeAndMessage) {
  const Status status = Status::invalid_argument("bad field");
  EXPECT_FALSE(status.is_ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(status.message(), "bad field");
  EXPECT_EQ(status.to_string(), "INVALID_ARGUMENT: bad field");
}

TEST(Status, AllCodesHaveNames) {
  EXPECT_STREQ(status_code_name(StatusCode::kOk), "OK");
  EXPECT_STREQ(status_code_name(StatusCode::kNotFound), "NOT_FOUND");
  EXPECT_STREQ(status_code_name(StatusCode::kOutOfRange), "OUT_OF_RANGE");
  EXPECT_STREQ(status_code_name(StatusCode::kFailedPrecondition),
               "FAILED_PRECONDITION");
  EXPECT_STREQ(status_code_name(StatusCode::kResourceExhausted),
               "RESOURCE_EXHAUSTED");
  EXPECT_STREQ(status_code_name(StatusCode::kInternal), "INTERNAL");
}

TEST(StatusOr, HoldsValue) {
  StatusOr<int> result(42);
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(*result, 42);
}

TEST(StatusOr, HoldsError) {
  StatusOr<int> result(Status::not_found("missing"));
  EXPECT_FALSE(result.is_ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(StatusOr, MovesValueOut) {
  StatusOr<std::string> result(std::string("hello"));
  ASSERT_TRUE(result.is_ok());
  const std::string moved = std::move(result).value();
  EXPECT_EQ(moved, "hello");
}

TEST(StatusOr, ArrowOperator) {
  StatusOr<std::string> result(std::string("abc"));
  EXPECT_EQ(result->size(), 3u);
}

}  // namespace
}  // namespace dc
