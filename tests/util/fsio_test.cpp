// Crash-consistent file I/O regression (util/fsio.hpp): the
// tmp→fsync→rename→dir-fsync contract behind snapshot::write_file, the
// campaign journal artifacts, and every merged-results write. The
// checkable invariants: success never leaves a temp file, failure never
// leaves either the target or a temp file, and an overwrite is all-or-
// nothing at the rename.
#include "util/fsio.hpp"

#include <filesystem>
#include <string>

#include <gtest/gtest.h>

namespace dc {
namespace {

namespace fs = std::filesystem;

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

bool any_temp_sibling(const std::string& dir) {
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (entry.path().string().find(".tmp") != std::string::npos) return true;
  }
  return false;
}

TEST(AtomicWriteFile, WritesAndReadsBack) {
  const std::string path = temp_path("fsio_roundtrip.bin");
  const std::string payload("bytes\0with\0nuls\n", 16);
  ASSERT_TRUE(atomic_write_file(path, payload).is_ok());
  auto back = read_file(path);
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(*back, payload);
}

TEST(AtomicWriteFile, SuccessLeavesNoTempFile) {
  const std::string dir = temp_path("fsio_clean");
  fs::remove_all(dir);
  fs::create_directories(dir);
  ASSERT_TRUE(atomic_write_file(dir + "/out.bin", "data").is_ok());
  EXPECT_FALSE(any_temp_sibling(dir));
}

TEST(AtomicWriteFile, OverwriteReplacesWholesale) {
  const std::string path = temp_path("fsio_overwrite.bin");
  ASSERT_TRUE(atomic_write_file(path, "old content, longer").is_ok());
  ASSERT_TRUE(atomic_write_file(path, "new").is_ok());
  auto back = read_file(path);
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(*back, "new");
}

TEST(AtomicWriteFile, MissingDirectoryFailsCleanly) {
  const std::string dir = temp_path("fsio_missing_dir");
  fs::remove_all(dir);
  const std::string path = dir + "/out.bin";
  Status st = atomic_write_file(path, "data");
  ASSERT_FALSE(st.is_ok());
  // The failure must not create the directory, the target, or a stray
  // temp file.
  EXPECT_FALSE(fs::exists(dir));
  EXPECT_FALSE(fs::exists(path));
}

TEST(AtomicWriteFile, TargetDirectoryCollisionFailsCleanly) {
  const std::string dir = temp_path("fsio_collision");
  fs::remove_all(dir);
  // The target path itself is a directory: the rename must fail and the
  // temp file must be unlinked, leaving the directory untouched.
  fs::create_directories(dir);
  const std::string parent = temp_path("");
  Status st = atomic_write_file(dir, "data");
  ASSERT_FALSE(st.is_ok());
  EXPECT_TRUE(fs::is_directory(dir));
  EXPECT_FALSE(fs::exists(dir + ".tmp"));
}

TEST(ReadFile, MissingIsNotFound) {
  auto bytes = read_file(temp_path("fsio_no_such_file"));
  ASSERT_FALSE(bytes.is_ok());
  EXPECT_EQ(bytes.status().code(), StatusCode::kNotFound);
}

TEST(ReadFile, EmptyFileIsOkAndEmpty) {
  const std::string path = temp_path("fsio_empty.bin");
  ASSERT_TRUE(atomic_write_file(path, "").is_ok());
  auto bytes = read_file(path);
  ASSERT_TRUE(bytes.is_ok());
  EXPECT_TRUE(bytes->empty());
}

}  // namespace
}  // namespace dc
