#include "util/histogram.hpp"

#include <gtest/gtest.h>

namespace dc {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats stats;
  EXPECT_EQ(stats.count(), 0);
  EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
  EXPECT_DOUBLE_EQ(stats.cv(), 0.0);
}

TEST(RunningStats, KnownValues) {
  RunningStats stats;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.add(x);
  EXPECT_EQ(stats.count(), 8);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_DOUBLE_EQ(stats.sum(), 40.0);
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
  // Sample variance of this classic dataset is 32/7.
  EXPECT_NEAR(stats.variance(), 32.0 / 7.0, 1e-12);
}

TEST(RunningStats, SingleValueHasZeroVariance) {
  RunningStats stats;
  stats.add(3.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
  EXPECT_DOUBLE_EQ(stats.stddev(), 0.0);
}

TEST(RunningStats, CvIsStddevOverMean) {
  RunningStats stats;
  stats.add(10.0);
  stats.add(20.0);
  EXPECT_NEAR(stats.cv(), stats.stddev() / 15.0, 1e-12);
}

TEST(Histogram, BinsUniformly) {
  Histogram hist(0.0, 10.0, 5);
  for (int i = 0; i < 10; ++i) hist.add(i + 0.5);
  EXPECT_EQ(hist.total(), 10);
  for (std::size_t b = 0; b < 5; ++b) {
    EXPECT_EQ(hist.bin(b), 2) << "bin " << b;
  }
}

TEST(Histogram, BinEdges) {
  Histogram hist(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(hist.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(hist.bin_hi(0), 2.0);
  EXPECT_DOUBLE_EQ(hist.bin_lo(4), 8.0);
  EXPECT_DOUBLE_EQ(hist.bin_hi(4), 10.0);
}

TEST(Histogram, OutOfRangeClampsAndCounts) {
  Histogram hist(0.0, 10.0, 2);
  hist.add(-5.0);
  hist.add(15.0);
  hist.add(10.0);  // hi is exclusive
  EXPECT_EQ(hist.underflow(), 1);
  EXPECT_EQ(hist.overflow(), 2);
  EXPECT_EQ(hist.bin(0), 1);
  EXPECT_EQ(hist.bin(1), 2);
}

TEST(Histogram, QuantileOfEmptyHistogramIsLo) {
  Histogram hist(2.0, 10.0, 4);
  EXPECT_DOUBLE_EQ(hist.quantile(0.0), 2.0);
  EXPECT_DOUBLE_EQ(hist.p50(), 2.0);
  EXPECT_DOUBLE_EQ(hist.quantile(1.0), 2.0);
}

TEST(Histogram, QuantileInterpolatesWithinSingleOccupiedBin) {
  // All mass in [2, 4): the quantile walks linearly across that bin.
  Histogram hist(0.0, 10.0, 5);
  for (int i = 0; i < 4; ++i) hist.add(3.0);
  EXPECT_DOUBLE_EQ(hist.quantile(0.5), 3.0);   // half-way through the bin
  EXPECT_DOUBLE_EQ(hist.quantile(0.25), 2.5);
  EXPECT_DOUBLE_EQ(hist.quantile(1.0), 4.0);   // the bin's upper edge
  EXPECT_DOUBLE_EQ(hist.quantile(0.0), 2.0);   // p=0 sits at the bin's base
}

TEST(Histogram, QuantileOrderAcrossBins) {
  Histogram hist(0.0, 10.0, 5);
  for (int i = 0; i < 10; ++i) hist.add(i + 0.5);  // 2 per bin
  EXPECT_DOUBLE_EQ(hist.quantile(0.2), 2.0);
  EXPECT_DOUBLE_EQ(hist.quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(hist.p50(), 5.0);
  EXPECT_DOUBLE_EQ(hist.quantile(1.0), 10.0);
  EXPECT_LE(hist.p50(), hist.p95());
  EXPECT_LE(hist.p95(), hist.p99());
}

TEST(Histogram, QuantileWithSaturatedOverflowBinStaysInRange) {
  // Every sample clamps into the last bin; quantiles must stay within
  // [lo, hi] and land inside that bin, never extrapolate past hi.
  Histogram hist(0.0, 10.0, 2);
  for (int i = 0; i < 100; ++i) hist.add(1e9);
  EXPECT_EQ(hist.overflow(), 100);
  EXPECT_DOUBLE_EQ(hist.quantile(0.5), 7.5);  // midpoint of bin [5, 10)
  EXPECT_DOUBLE_EQ(hist.quantile(1.0), 10.0);
  EXPECT_GE(hist.p99(), 5.0);
  EXPECT_LE(hist.p99(), 10.0);
}

TEST(Histogram, QuantileClampsOutOfRangeP) {
  Histogram hist(0.0, 10.0, 2);
  hist.add(1.0);
  EXPECT_DOUBLE_EQ(hist.quantile(-0.5), hist.quantile(0.0));
  EXPECT_DOUBLE_EQ(hist.quantile(2.0), hist.quantile(1.0));
}

TEST(Histogram, RenderContainsBars) {
  Histogram hist(0.0, 4.0, 2);
  hist.add(1.0);
  hist.add(1.0);
  hist.add(3.0);
  const std::string out = hist.render(10);
  EXPECT_NE(out.find("##########"), std::string::npos);
  EXPECT_NE(out.find("#####"), std::string::npos);
}

}  // namespace
}  // namespace dc
