#include "util/strings.hpp"

#include <gtest/gtest.h>

namespace dc {
namespace {

TEST(SplitWs, SkipsRunsOfDelimiters) {
  const auto tokens = split_ws("  a\t\tb  c \n");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0], "a");
  EXPECT_EQ(tokens[1], "b");
  EXPECT_EQ(tokens[2], "c");
}

TEST(SplitWs, EmptyAndAllWhitespace) {
  EXPECT_TRUE(split_ws("").empty());
  EXPECT_TRUE(split_ws(" \t\n ").empty());
}

TEST(SplitChar, KeepsEmptyFields) {
  const auto fields = split_char("a,,b,", ',');
  ASSERT_EQ(fields.size(), 4u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[1], "");
  EXPECT_EQ(fields[2], "b");
  EXPECT_EQ(fields[3], "");
}

TEST(Trim, BothEnds) {
  EXPECT_EQ(trim("  hi \t"), "hi");
  EXPECT_EQ(trim("hi"), "hi");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
}

TEST(StartsWith, Basic) {
  EXPECT_TRUE(starts_with("prefix-rest", "prefix"));
  EXPECT_FALSE(starts_with("pre", "prefix"));
  EXPECT_TRUE(starts_with("anything", ""));
}

TEST(ParseInt, ValidInputs) {
  EXPECT_EQ(*parse_int("0"), 0);
  EXPECT_EQ(*parse_int("-17"), -17);
  EXPECT_EQ(*parse_int("123456789012"), 123456789012LL);
}

TEST(ParseInt, RejectsGarbage) {
  EXPECT_FALSE(parse_int("").is_ok());
  EXPECT_FALSE(parse_int("12x").is_ok());
  EXPECT_FALSE(parse_int("x12").is_ok());
  EXPECT_FALSE(parse_int("1.5").is_ok());
  EXPECT_FALSE(parse_int("999999999999999999999999").is_ok());
}

TEST(ParseDouble, ValidInputs) {
  EXPECT_DOUBLE_EQ(*parse_double("2.5"), 2.5);
  EXPECT_DOUBLE_EQ(*parse_double("-1"), -1.0);
  EXPECT_DOUBLE_EQ(*parse_double("1e3"), 1000.0);
}

TEST(ParseDouble, RejectsGarbage) {
  EXPECT_FALSE(parse_double("").is_ok());
  EXPECT_FALSE(parse_double("2.5.6").is_ok());
  EXPECT_FALSE(parse_double("abc").is_ok());
}

TEST(Join, Basic) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"solo"}, ","), "solo");
}

TEST(StrFormat, FormatsLikePrintf) {
  EXPECT_EQ(str_format("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(str_format("%.2f", 3.14159), "3.14");
  EXPECT_EQ(str_format("empty"), "empty");
}

}  // namespace
}  // namespace dc
