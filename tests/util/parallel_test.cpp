#include "util/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

namespace dc {
namespace {

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> visits(1000);
  parallel_for_index(1000, [&](std::size_t i) { ++visits[i]; }, 8);
  for (const auto& count : visits) EXPECT_EQ(count.load(), 1);
}

TEST(ParallelFor, ZeroAndOneElement) {
  int calls = 0;
  parallel_for_index(0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  parallel_for_index(1, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ParallelFor, SingleThreadRunsInline) {
  const auto main_thread = std::this_thread::get_id();
  parallel_for_index(
      10, [&](std::size_t) { EXPECT_EQ(std::this_thread::get_id(), main_thread); },
      1);
}

TEST(ParallelMap, PreservesOrder) {
  const auto squares = parallel_map_index<std::size_t>(
      500, [](std::size_t i) { return i * i; }, 4);
  ASSERT_EQ(squares.size(), 500u);
  for (std::size_t i = 0; i < squares.size(); ++i) {
    EXPECT_EQ(squares[i], i * i);
  }
}

TEST(ParallelMap, MatchesSequentialResult) {
  auto work = [](std::size_t i) {
    double x = static_cast<double>(i);
    for (int k = 0; k < 100; ++k) x = x * 1.000001 + 0.5;
    return x;
  };
  const auto parallel = parallel_map_index<double>(200, work, 8);
  const auto sequential = parallel_map_index<double>(200, work, 1);
  EXPECT_EQ(parallel, sequential);
}

TEST(DefaultThreadCount, AtLeastOne) {
  EXPECT_GE(default_thread_count(), 1u);
}

}  // namespace
}  // namespace dc
