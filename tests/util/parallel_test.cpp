#include "util/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <numeric>
#include <string>

#include "sim/simulator.hpp"
#include "util/log.hpp"
#include "util/time.hpp"

namespace dc {
namespace {

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> visits(1000);
  parallel_for_index(1000, [&](std::size_t i) { ++visits[i]; }, 8);
  for (const auto& count : visits) EXPECT_EQ(count.load(), 1);
}

TEST(ParallelFor, ZeroAndOneElement) {
  int calls = 0;
  parallel_for_index(0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  parallel_for_index(1, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ParallelFor, SingleThreadRunsInline) {
  const auto main_thread = std::this_thread::get_id();
  parallel_for_index(
      10, [&](std::size_t) { EXPECT_EQ(std::this_thread::get_id(), main_thread); },
      1);
}

TEST(ParallelMap, PreservesOrder) {
  const auto squares = parallel_map_index<std::size_t>(
      500, [](std::size_t i) { return i * i; }, 4);
  ASSERT_EQ(squares.size(), 500u);
  for (std::size_t i = 0; i < squares.size(); ++i) {
    EXPECT_EQ(squares[i], i * i);
  }
}

TEST(ParallelMap, MatchesSequentialResult) {
  auto work = [](std::size_t i) {
    double x = static_cast<double>(i);
    for (int k = 0; k < 100; ++k) x = x * 1.000001 + 0.5;
    return x;
  };
  const auto parallel = parallel_map_index<double>(200, work, 8);
  const auto sequential = parallel_map_index<double>(200, work, 1);
  EXPECT_EQ(parallel, sequential);
}

TEST(DefaultThreadCount, AtLeastOne) {
  EXPECT_GE(default_thread_count(), 1u);
}

// RAII guard that sets DC_THREADS for one test and restores it after.
class ScopedDcThreads {
 public:
  explicit ScopedDcThreads(const char* value) {
    const char* previous = std::getenv("DC_THREADS");
    if (previous != nullptr) saved_ = previous;
    had_previous_ = previous != nullptr;
    ::setenv("DC_THREADS", value, 1);
  }
  ~ScopedDcThreads() {
    if (had_previous_) {
      ::setenv("DC_THREADS", saved_.c_str(), 1);
    } else {
      ::unsetenv("DC_THREADS");
    }
  }

 private:
  std::string saved_;
  bool had_previous_ = false;
};

TEST(DefaultThreadCount, HonorsValidDcThreads) {
  ScopedDcThreads env("8");
  EXPECT_EQ(default_thread_count(), 8u);
}

TEST(DefaultThreadCount, RejectsGarbageDcThreads) {
  ScopedLogLevel quiet(LogLevel::kError);  // the rejection warns; silence it
  const unsigned hw = std::thread::hardware_concurrency();
  const std::size_t fallback = hw == 0 ? 1 : hw;
  for (const char* bad : {"abc", "12abc", "", "-3", "0", "4.5", "0x10"}) {
    ScopedDcThreads env(bad);
    EXPECT_EQ(default_thread_count(), fallback)
        << "DC_THREADS=\"" << bad << "\" should be rejected";
  }
}

TEST(ParallelFor, NestedCallRunsInlineWithoutDeadlock) {
  std::atomic<int> inner_calls{0};
  parallel_for_index(
      4,
      [&](std::size_t) {
        // A nested sweep from inside a parallel region must not try to
        // re-enter the pool (the outer job may already occupy every
        // worker); it degrades to inline execution on the calling thread.
        const auto me = std::this_thread::get_id();
        parallel_for_index(
            8,
            [&](std::size_t) {
              EXPECT_EQ(std::this_thread::get_id(), me);
              ++inner_calls;
            },
            8);
      },
      4);
  EXPECT_EQ(inner_calls.load(), 32);
}

TEST(ParallelFor, PoolIsReusableAcrossManyJobs) {
  for (int round = 0; round < 50; ++round) {
    std::atomic<std::size_t> sum{0};
    parallel_for_index(100, [&](std::size_t i) { sum += i; }, 4);
    EXPECT_EQ(sum.load(), 4950u);
  }
}

// The determinism contract the figure benches rely on: a sweep writes its
// CSV from results stored by index, so the bytes cannot depend on thread
// count or scheduling order. This drives real Simulator runs through
// parallel_map_index at 1 and 8 threads and compares the full CSV text.
TEST(ParallelMap, SweepCsvIsByteIdenticalAcrossThreadCounts) {
  const auto sweep_csv = [](std::size_t threads) {
    const auto rows = parallel_map_index<std::string>(
        16,
        [](std::size_t i) {
          sim::Simulator sim;
          std::int64_t fires = 0;
          sim.start_periodic(1 + static_cast<SimTime>(i), 30,
                             [&fires](SimTime) { ++fires; });
          std::int64_t extra = 0;
          for (int k = 0; k < 100; ++k) {
            sim.schedule_at(k * 7 + static_cast<SimTime>(i),
                            [&extra] { ++extra; });
          }
          sim.run_until(2 * kHour);
          char row[96];
          std::snprintf(row, sizeof(row), "%zu,%lld,%lld,%llu", i,
                        static_cast<long long>(fires),
                        static_cast<long long>(extra),
                        static_cast<unsigned long long>(sim.events_processed()));
          return std::string(row);
        },
        threads);
    std::string csv = "index,fires,extra,processed\n";
    for (const std::string& row : rows) csv += row + "\n";
    return csv;
  };
  const std::string sequential = sweep_csv(1);
  const std::string parallel = sweep_csv(8);
  EXPECT_EQ(sequential, parallel);
}

}  // namespace
}  // namespace dc
