#include "util/time.hpp"

#include <gtest/gtest.h>

namespace dc {
namespace {

TEST(CeilDiv, ExactDivision) {
  EXPECT_EQ(ceil_div(10, 5), 2);
  EXPECT_EQ(ceil_div(0, 7), 0);
  EXPECT_EQ(ceil_div(3600, 3600), 1);
}

TEST(CeilDiv, RoundsUp) {
  EXPECT_EQ(ceil_div(1, 5), 1);
  EXPECT_EQ(ceil_div(11, 5), 3);
  EXPECT_EQ(ceil_div(3601, 3600), 2);
}

TEST(BilledHours, ZeroAndNegativeDurationsBillNothing) {
  EXPECT_EQ(billed_hours(0), 0);
  EXPECT_EQ(billed_hours(-5), 0);
}

TEST(BilledHours, AnyPositiveDurationBillsAtLeastOneHour) {
  EXPECT_EQ(billed_hours(1), 1);
  EXPECT_EQ(billed_hours(kHour - 1), 1);
  EXPECT_EQ(billed_hours(kHour), 1);
  EXPECT_EQ(billed_hours(kHour + 1), 2);
}

TEST(BilledHours, WholeDays) {
  EXPECT_EQ(billed_hours(kDay), 24);
  EXPECT_EQ(billed_hours(2 * kWeek), 336);
}

struct BilledHoursCase {
  SimDuration duration;
  std::int64_t expected;
};

class BilledHoursSweep : public ::testing::TestWithParam<BilledHoursCase> {};

TEST_P(BilledHoursSweep, MatchesCeiling) {
  EXPECT_EQ(billed_hours(GetParam().duration), GetParam().expected);
}

INSTANTIATE_TEST_SUITE_P(
    Boundaries, BilledHoursSweep,
    ::testing::Values(BilledHoursCase{1, 1}, BilledHoursCase{59, 1},
                      BilledHoursCase{kMinute, 1}, BilledHoursCase{1799, 1},
                      BilledHoursCase{3599, 1}, BilledHoursCase{3600, 1},
                      BilledHoursCase{3601, 2}, BilledHoursCase{7200, 2},
                      BilledHoursCase{7201, 3}, BilledHoursCase{kDay - 1, 24},
                      BilledHoursCase{kDay + 1, 25}));

TEST(ToHours, ConvertsFractions) {
  EXPECT_DOUBLE_EQ(to_hours(kHour), 1.0);
  EXPECT_DOUBLE_EQ(to_hours(kHour / 2), 0.5);
  EXPECT_DOUBLE_EQ(to_hours(0), 0.0);
}

TEST(FormatTime, RendersDaysHoursMinutesSeconds) {
  EXPECT_EQ(format_time(0), "0d 00:00:00");
  EXPECT_EQ(format_time(kDay + kHour + kMinute + 1), "1d 01:01:01");
  EXPECT_EQ(format_time(2 * kWeek), "14d 00:00:00");
}

TEST(FormatTime, NegativeTimes) {
  EXPECT_EQ(format_time(-kHour), "-0d 01:00:00");
}

TEST(Constants, Consistency) {
  EXPECT_EQ(kMinute, 60);
  EXPECT_EQ(kHour, 60 * kMinute);
  EXPECT_EQ(kDay, 24 * kHour);
  EXPECT_EQ(kWeek, 7 * kDay);
}

}  // namespace
}  // namespace dc
