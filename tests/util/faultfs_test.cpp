// Fault-injection layer regression: plan parsing, (site, op, nth)
// addressing, each fault class observed through util/fsio, the trace
// observer channel, and `once` marker semantics. Crash faults are
// exercised as gtest death tests (the child must die with
// kCrashExitCode, not a signal).
#include "util/faultfs.hpp"

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <string>

#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include "util/fsio.hpp"

namespace dc {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

bool file_exists(const std::string& path) {
  return ::access(path.c_str(), F_OK) == 0;
}

class FaultFsTest : public ::testing::Test {
 protected:
  void TearDown() override { faultfs::reset(); }

  void install(const std::string& plan_text) {
    auto plan = faultfs::parse_fault_plan(plan_text);
    ASSERT_TRUE(plan.is_ok()) << plan.status().to_string();
    faultfs::install_plan(std::move(*plan));
  }
};

TEST_F(FaultFsTest, ParsesMultiRulePlansWithCommentsAndSemicolons) {
  auto plan = faultfs::parse_fault_plan(
      "# drill: snapshot fsync dies, journal append tears\n"
      "site=snapshot.save op=fsync nth=1 fault=enospc\n"
      "site=campaign.journal.append op=write nth=2 fault=torn bytes=5 once; "
      "site=obs.* op=rename fault=eio");
  ASSERT_TRUE(plan.is_ok()) << plan.status().to_string();
  ASSERT_EQ(plan->rules.size(), 3u);

  EXPECT_EQ(plan->rules[0].site, "snapshot.save");
  EXPECT_EQ(plan->rules[0].op, faultfs::Op::kFsync);
  EXPECT_EQ(plan->rules[0].nth, 1u);
  EXPECT_EQ(plan->rules[0].kind, faultfs::FaultKind::kErrno);
  EXPECT_EQ(plan->rules[0].error, ENOSPC);
  EXPECT_FALSE(plan->rules[0].once);

  EXPECT_EQ(plan->rules[1].kind, faultfs::FaultKind::kTorn);
  EXPECT_EQ(plan->rules[1].nth, 2u);
  EXPECT_EQ(plan->rules[1].bytes, 5u);
  EXPECT_TRUE(plan->rules[1].once);

  EXPECT_EQ(plan->rules[2].site, "obs.*");
  EXPECT_EQ(plan->rules[2].op, faultfs::Op::kRename);
  EXPECT_EQ(plan->rules[2].error, EIO);
}

TEST_F(FaultFsTest, RejectsMalformedPlans) {
  EXPECT_FALSE(faultfs::parse_fault_plan("site=x op=write nth=1").is_ok())
      << "a rule without fault= must be rejected";
  EXPECT_FALSE(faultfs::parse_fault_plan("op=scribble fault=eio").is_ok());
  EXPECT_FALSE(faultfs::parse_fault_plan("fault=lightning").is_ok());
  EXPECT_FALSE(faultfs::parse_fault_plan("nth=three fault=eio").is_ok());
  EXPECT_FALSE(faultfs::parse_fault_plan("flavor=spicy fault=eio").is_ok());
  EXPECT_FALSE(faultfs::parse_fault_plan("bare-token fault=eio").is_ok());
  EXPECT_TRUE(faultfs::parse_fault_plan("# only a comment\n\n").is_ok());
}

TEST_F(FaultFsTest, UnarmedLayerIsPassthrough) {
  ASSERT_FALSE(faultfs::plan_active());
  const std::string path = temp_path("faultfs_passthrough.txt");
  ASSERT_TRUE(atomic_write_file(path, "hello", "t.alpha").is_ok());
  auto back = read_file(path);
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(*back, "hello");
}

TEST_F(FaultFsTest, ErrnoFaultFailsTypedWithZeroDebris) {
  install("site=t.alpha op=write nth=1 fault=eio");
  const std::string path = temp_path("faultfs_eio.txt");
  ::unlink(path.c_str());

  Status st = atomic_write_file(path, "doomed payload", "t.alpha");
  ASSERT_FALSE(st.is_ok());
  EXPECT_NE(st.message().find(std::strerror(EIO)), std::string::npos)
      << st.message();
  EXPECT_FALSE(file_exists(path)) << "failed write must not create the target";
  EXPECT_FALSE(file_exists(path + ".tmp")) << "failed write must leave no tmp";
  EXPECT_EQ(faultfs::fired_total(), 1u);

  // The rule is spent: the retry goes through clean.
  ASSERT_TRUE(atomic_write_file(path, "doomed payload", "t.alpha").is_ok());
}

TEST_F(FaultFsTest, FaultsAddressSitesExactly) {
  install("site=t.other op=write nth=1 fault=eio");
  const std::string path = temp_path("faultfs_site_miss.txt");
  EXPECT_TRUE(atomic_write_file(path, "x", "t.alpha").is_ok());
  EXPECT_EQ(faultfs::fired_total(), 0u);

  install("site=t.* op=write nth=1 fault=eio");
  EXPECT_FALSE(atomic_write_file(path, "x", "t.alpha").is_ok())
      << "trailing-* site patterns are prefix matches";
  EXPECT_EQ(faultfs::fired_total(), 1u);
}

TEST_F(FaultFsTest, NthCounterAddressesASpecificOperation) {
  install("site=t.alpha op=write nth=2 fault=enospc");
  const std::string path = temp_path("faultfs_nth.txt");
  EXPECT_TRUE(atomic_write_file(path, "first", "t.alpha").is_ok());
  Status st = atomic_write_file(path, "second", "t.alpha");
  ASSERT_FALSE(st.is_ok());
  EXPECT_NE(st.message().find(std::strerror(ENOSPC)), std::string::npos);
  // The first (complete) artifact survives the failed overwrite.
  auto back = read_file(path);
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(*back, "first");
}

TEST_F(FaultFsTest, ShortWriteIsAbsorbedByCallerRetryLoops) {
  install("site=t.alpha op=write nth=1 fault=short bytes=3");
  const std::string path = temp_path("faultfs_short.txt");
  ASSERT_TRUE(atomic_write_file(path, "0123456789", "t.alpha").is_ok());
  auto back = read_file(path);
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(*back, "0123456789")
      << "a short write must be completed by the retry loop, not truncate";
  EXPECT_EQ(faultfs::fired_total(), 1u);
}

TEST_F(FaultFsTest, TruncateOnRenameModelsWritebackLoss) {
  install("site=t.alpha op=rename nth=1 fault=trunc bytes=4");
  const std::string path = temp_path("faultfs_trunc.txt");
  ASSERT_TRUE(atomic_write_file(path, "0123456789", "t.alpha").is_ok())
      << "writeback loss is invisible to the writer";
  auto back = read_file(path);
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(*back, "0123")
      << "the destination must carry only the surviving prefix";
}

TEST_F(FaultFsTest, TraceChannelRecordsHitsAndFires) {
  const std::string trace = temp_path("faultfs_trace.log");
  ::unlink(trace.c_str());
  faultfs::set_trace_path(trace);
  install("site=t.alpha op=write nth=1 fault=eio");

  const std::string path = temp_path("faultfs_traced.txt");
  (void)atomic_write_file(path, "x", "t.alpha");

  auto lines = read_file(trace);
  ASSERT_TRUE(lines.is_ok());
  EXPECT_NE(lines->find("HIT t.alpha open"), std::string::npos) << *lines;
  EXPECT_NE(lines->find("HIT t.alpha write"), std::string::npos) << *lines;
  EXPECT_NE(lines->find("FIRED t.alpha write errno"), std::string::npos)
      << *lines;
}

TEST_F(FaultFsTest, OnceMarkerDisarmsAcrossReinstalls) {
  // Markers persist on disk by design (that is the point of the feature),
  // so a stale marker from a previous test run would pre-disarm the rule:
  // start from an empty directory.
  const std::string markers = temp_path("faultfs_markers");
  std::filesystem::remove_all(markers);
  ::mkdir(markers.c_str(), 0755);
  faultfs::set_marker_dir(markers);

  const std::string plan = "site=t.alpha op=write nth=1 fault=eio once";
  install(plan);
  const std::string path = temp_path("faultfs_once.txt");
  EXPECT_FALSE(atomic_write_file(path, "x", "t.alpha").is_ok());

  // A fresh install resets counters — as a retried worker process would
  // see — but the marker file keeps the rule exactly-once per drill.
  install(plan);
  faultfs::set_marker_dir(markers);
  EXPECT_TRUE(atomic_write_file(path, "x", "t.alpha").is_ok());
  EXPECT_EQ(faultfs::fired_total(), 0u);
}

using FaultFsDeathTest = FaultFsTest;

TEST_F(FaultFsDeathTest, TornWriteLandsPrefixThenDies) {
  const std::string path = temp_path("faultfs_torn.txt");
  ::unlink(path.c_str());
  EXPECT_EXIT(
      {
        auto plan = faultfs::parse_fault_plan(
            "site=t.alpha op=write nth=1 fault=torn bytes=6");
        faultfs::install_plan(std::move(*plan));
        (void)atomic_write_file(path, "0123456789", "t.alpha");
      },
      ::testing::ExitedWithCode(faultfs::kCrashExitCode), "");
  // The crash struck between write and rename: the torn prefix is still
  // under the tmp name, the destination never appeared.
  EXPECT_FALSE(file_exists(path));
  auto tmp = read_file(path + ".tmp");
  ASSERT_TRUE(tmp.is_ok());
  EXPECT_EQ(*tmp, "012345");
  ::unlink((path + ".tmp").c_str());
}

TEST_F(FaultFsDeathTest, CrashAfterRenameLeavesCompleteArtifact) {
  const std::string path = temp_path("faultfs_crash_after.txt");
  ::unlink(path.c_str());
  EXPECT_EXIT(
      {
        auto plan = faultfs::parse_fault_plan(
            "site=t.alpha op=rename nth=1 fault=crash-after");
        faultfs::install_plan(std::move(*plan));
        (void)atomic_write_file(path, "published", "t.alpha");
      },
      ::testing::ExitedWithCode(faultfs::kCrashExitCode), "");
  auto back = read_file(path);
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(*back, "published");
  EXPECT_FALSE(file_exists(path + ".tmp"));
}

}  // namespace
}  // namespace dc
