#include "util/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace dc {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

class CsvWriterTest : public ::testing::Test {
 protected:
  std::string path_ = ::testing::TempDir() + "/csv_test.csv";
  void TearDown() override { std::remove(path_.c_str()); }
};

TEST_F(CsvWriterTest, WritesHeaderAndRows) {
  {
    CsvWriter csv(path_);
    ASSERT_TRUE(csv.ok());
    csv.header({"a", "b"});
    csv.cell(std::int64_t{1}).cell(2.5, 1);
    csv.end_row();
  }
  EXPECT_EQ(read_file(path_), "a,b\n1,2.5\n");
}

TEST_F(CsvWriterTest, QuotesSpecialCharacters) {
  {
    CsvWriter csv(path_);
    csv.cell("has,comma").cell("has\"quote").cell("plain");
    csv.end_row();
  }
  EXPECT_EQ(read_file(path_), "\"has,comma\",\"has\"\"quote\",plain\n");
}

TEST(CsvParse, RoundTripsWriterOutput) {
  const std::string path = ::testing::TempDir() + "/csv_roundtrip.csv";
  {
    CsvWriter csv(path);
    csv.header({"name", "value"});
    csv.cell("has,comma").cell(std::int64_t{7});
    csv.end_row();
    csv.cell("has\"quote").cell(2.5, 1);
    csv.end_row();
  }
  auto rows = read_csv_file(path);
  ASSERT_TRUE(rows.is_ok()) << rows.status().to_string();
  ASSERT_EQ(rows->size(), 3u);
  EXPECT_EQ((*rows)[0], (std::vector<std::string>{"name", "value"}));
  EXPECT_EQ((*rows)[1], (std::vector<std::string>{"has,comma", "7"}));
  EXPECT_EQ((*rows)[2], (std::vector<std::string>{"has\"quote", "2.5"}));
  std::remove(path.c_str());
}

TEST(CsvParse, HandlesCrlfQuotedNewlinesAndEmptyFields) {
  auto rows = parse_csv("a,b\r\n\"multi\nline\",\"\"\n");
  ASSERT_TRUE(rows.is_ok()) << rows.status().to_string();
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[1], (std::vector<std::string>{"multi\nline", ""}));
}

TEST(CsvParse, UnterminatedQuoteReportsOpeningPosition) {
  const auto rows = parse_csv("a,b\nc,\"never closed");
  ASSERT_FALSE(rows.is_ok());
  EXPECT_EQ(rows.status().code(), StatusCode::kInvalidArgument);
  // The opening quote sits at line 2, column 3.
  EXPECT_NE(rows.status().message().find("line 2, column 3"),
            std::string::npos)
      << rows.status().message();
  EXPECT_NE(rows.status().message().find("unterminated"), std::string::npos);
}

TEST(CsvParse, StrayQuoteInUnquotedFieldIsRejected) {
  const auto rows = parse_csv("a,b\nval\"ue,2\n");
  ASSERT_FALSE(rows.is_ok());
  EXPECT_NE(rows.status().message().find("line 2"), std::string::npos)
      << rows.status().message();
  EXPECT_NE(rows.status().message().find("unquoted"), std::string::npos);
}

TEST(CsvParse, GarbageAfterClosingQuoteIsRejected) {
  const auto rows = parse_csv("\"ok\"x,2\n");
  ASSERT_FALSE(rows.is_ok());
  EXPECT_NE(rows.status().message().find("after closing"), std::string::npos)
      << rows.status().message();
  EXPECT_NE(rows.status().message().find("'x'"), std::string::npos);
}

TEST(CsvParse, RaggedRowNamesLineAndCounts) {
  const auto rows = parse_csv("a,b,c\n1,2\n");
  ASSERT_FALSE(rows.is_ok());
  EXPECT_NE(rows.status().message().find("line 2"), std::string::npos)
      << rows.status().message();
  EXPECT_NE(rows.status().message().find("2 fields"), std::string::npos);
  EXPECT_NE(rows.status().message().find("3"), std::string::npos);
  // Ragged rows are fine when uniformity is not required.
  CsvParseOptions lax;
  lax.require_uniform_columns = false;
  const auto lax_rows = parse_csv("a,b,c\n1,2\n", lax);
  ASSERT_TRUE(lax_rows.is_ok());
  EXPECT_EQ((*lax_rows)[1].size(), 2u);
}

TEST(CsvParse, EmbeddedNulByteIsRejected) {
  const std::string bytes("a,b\n1,\0garbage\n", 15);
  const auto rows = parse_csv(bytes);
  ASSERT_FALSE(rows.is_ok());
  EXPECT_NE(rows.status().message().find("NUL"), std::string::npos)
      << rows.status().message();
}

TEST(CsvParse, MissingFileIsNotFoundWithPath) {
  const auto rows = read_csv_file("/nonexistent/results.csv");
  ASSERT_FALSE(rows.is_ok());
  EXPECT_EQ(rows.status().code(), StatusCode::kNotFound);
  EXPECT_NE(rows.status().message().find("/nonexistent/results.csv"),
            std::string::npos);
}

TEST(TextTable, AlignsColumnsAndRightAlignsNumbers) {
  TextTable table({"name", "value"});
  table.cell("alpha").cell(std::int64_t{5});
  table.end_row();
  table.cell("b").cell(std::int64_t{12345});
  table.end_row();
  const std::string out = table.render("title");
  EXPECT_NE(out.find("title\n"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  // Numbers right-align within the "value" column width (5 chars).
  EXPECT_NE(out.find("    5"), std::string::npos);
  EXPECT_NE(out.find("12345"), std::string::npos);
}

TEST(TextTable, RowCountAndPrecision) {
  TextTable table({"x"});
  table.cell(1.23456, 3);
  table.end_row();
  EXPECT_EQ(table.row_count(), 1u);
  EXPECT_NE(table.render().find("1.235"), std::string::npos);
}

TEST(TextTable, EmptyTableRendersHeaderOnly) {
  TextTable table({"col"});
  const std::string out = table.render();
  EXPECT_NE(out.find("col"), std::string::npos);
  EXPECT_EQ(table.row_count(), 0u);
}

}  // namespace
}  // namespace dc
