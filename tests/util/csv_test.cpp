#include "util/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace dc {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

class CsvWriterTest : public ::testing::Test {
 protected:
  std::string path_ = ::testing::TempDir() + "/csv_test.csv";
  void TearDown() override { std::remove(path_.c_str()); }
};

TEST_F(CsvWriterTest, WritesHeaderAndRows) {
  {
    CsvWriter csv(path_);
    ASSERT_TRUE(csv.ok());
    csv.header({"a", "b"});
    csv.cell(std::int64_t{1}).cell(2.5, 1);
    csv.end_row();
  }
  EXPECT_EQ(read_file(path_), "a,b\n1,2.5\n");
}

TEST_F(CsvWriterTest, QuotesSpecialCharacters) {
  {
    CsvWriter csv(path_);
    csv.cell("has,comma").cell("has\"quote").cell("plain");
    csv.end_row();
  }
  EXPECT_EQ(read_file(path_), "\"has,comma\",\"has\"\"quote\",plain\n");
}

TEST(TextTable, AlignsColumnsAndRightAlignsNumbers) {
  TextTable table({"name", "value"});
  table.cell("alpha").cell(std::int64_t{5});
  table.end_row();
  table.cell("b").cell(std::int64_t{12345});
  table.end_row();
  const std::string out = table.render("title");
  EXPECT_NE(out.find("title\n"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  // Numbers right-align within the "value" column width (5 chars).
  EXPECT_NE(out.find("    5"), std::string::npos);
  EXPECT_NE(out.find("12345"), std::string::npos);
}

TEST(TextTable, RowCountAndPrecision) {
  TextTable table({"x"});
  table.cell(1.23456, 3);
  table.end_row();
  EXPECT_EQ(table.row_count(), 1u);
  EXPECT_NE(table.render().find("1.235"), std::string::npos);
}

TEST(TextTable, EmptyTableRendersHeaderOnly) {
  TextTable table({"col"});
  const std::string out = table.render();
  EXPECT_NE(out.find("col"), std::string::npos);
  EXPECT_EQ(table.row_count(), 0u);
}

}  // namespace
}  // namespace dc
