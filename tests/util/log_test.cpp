#include "util/log.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

namespace dc {
namespace {

/// Captures log output through a temp file.
class LogCapture {
 public:
  LogCapture() {
    path_ = ::testing::TempDir() + "/log_capture.txt";
    file_ = std::fopen(path_.c_str(), "w+");
    Log::set_stream(file_);
  }
  ~LogCapture() {
    Log::set_stream(stderr);
    std::fclose(file_);
    std::remove(path_.c_str());
  }

  std::string contents() {
    std::fflush(file_);
    std::string out;
    std::rewind(file_);
    char buffer[4096];
    std::size_t n;
    while ((n = std::fread(buffer, 1, sizeof(buffer), file_)) > 0) {
      out.append(buffer, n);
    }
    return out;
  }

 private:
  std::string path_;
  std::FILE* file_;
};

TEST(Log, LevelFiltering) {
  LogCapture capture;
  ScopedLogLevel level(LogLevel::kWarn);
  Log::at(LogLevel::kDebug, 0, "comp", "hidden %d", 1);
  Log::at(LogLevel::kWarn, kHour, "comp", "visible %d", 2);
  const std::string out = capture.contents();
  EXPECT_EQ(out.find("hidden"), std::string::npos);
  EXPECT_NE(out.find("visible 2"), std::string::npos);
  EXPECT_NE(out.find("[WARN]"), std::string::npos);
  EXPECT_NE(out.find("[comp]"), std::string::npos);
  EXPECT_NE(out.find("0d 01:00:00"), std::string::npos);
}

TEST(Log, ScopedLevelRestores) {
  const LogLevel before = Log::level();
  {
    ScopedLogLevel scoped(LogLevel::kTrace);
    EXPECT_EQ(Log::level(), LogLevel::kTrace);
    EXPECT_TRUE(Log::enabled(LogLevel::kDebug));
  }
  EXPECT_EQ(Log::level(), before);
}

TEST(Log, OffSilencesEverything) {
  LogCapture capture;
  ScopedLogLevel level(LogLevel::kOff);
  Log::at(LogLevel::kError, 0, "comp", "should not appear");
  Log::raw(LogLevel::kError, "nor this");
  EXPECT_TRUE(capture.contents().empty());
}

TEST(Log, LineIsWrittenWholeWithPrefixAndNewline) {
  LogCapture capture;
  ScopedLogLevel level(LogLevel::kInfo);
  Log::at(LogLevel::kInfo, 0, "comp", "a %s with %d parts", "line", 3);
  const std::string out = capture.contents();
  // One fwrite produced exactly one complete line: prefix, message, '\n'.
  EXPECT_NE(out.find("[INFO] [comp] a line with 3 parts\n"), std::string::npos)
      << out;
  EXPECT_EQ(out.find('\n'), out.size() - 1) << out;
}

struct HookRecord {
  int calls = 0;
  LogLevel level = LogLevel::kOff;
  SimTime now = -1;
  std::string component;
  std::string message;
};

TEST(Log, HookObservesEmittedMessages) {
  LogCapture capture;
  ScopedLogLevel level(LogLevel::kWarn);
  HookRecord record;
  Log::set_hook(
      [](void* ctx, LogLevel lvl, SimTime now, const char* component,
         const char* message) {
        auto* r = static_cast<HookRecord*>(ctx);
        ++r->calls;
        r->level = lvl;
        r->now = now;
        r->component = component;
        r->message = message;
      },
      &record);
  Log::at(LogLevel::kDebug, 0, "comp", "filtered out");  // below level: no hook
  Log::at(LogLevel::kWarn, kHour, "server", "queue depth %d", 7);
  Log::set_hook(nullptr, nullptr);
  Log::at(LogLevel::kWarn, 2 * kHour, "server", "after removal");

  EXPECT_EQ(record.calls, 1);
  EXPECT_EQ(record.level, LogLevel::kWarn);
  EXPECT_EQ(record.now, kHour);
  EXPECT_EQ(record.component, "server");
  // The hook sees the unprefixed message; the stream got the full line.
  EXPECT_EQ(record.message, "queue depth 7");
  EXPECT_NE(capture.contents().find("[server] queue depth 7"),
            std::string::npos);
}

TEST(Log, LevelNames) {
  EXPECT_STREQ(Log::level_name(LogLevel::kTrace), "TRACE");
  EXPECT_STREQ(Log::level_name(LogLevel::kInfo), "INFO");
  EXPECT_STREQ(Log::level_name(LogLevel::kError), "ERROR");
  EXPECT_STREQ(Log::level_name(LogLevel::kOff), "OFF");
}

}  // namespace
}  // namespace dc
