// Randomized differential test: the heap and calendar queues must produce
// the same dispatch order for any operation stream. Both Simulators are
// driven with an identical seeded mix of schedules, cancels, periodic
// timers, stops, schedule-from-callback bursts, and a mid-stream
// kernel-level snapshot/restore (including restoring under the *other*
// queue), and the full execution logs are compared byte for byte. This is
// the contract that makes `--queue` a pure performance choice.
#include <cstdint>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sim/calendar_queue.hpp"
#include "sim/event_queue.hpp"
#include "sim/simulator.hpp"

namespace dc::sim {
namespace {

// Deterministic 64-bit mix (splitmix64): the same op stream on every
// platform, no <random> distribution variance.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}
  std::uint64_t next() {
    state_ += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }
  std::uint64_t below(std::uint64_t bound) { return next() % bound; }

 private:
  std::uint64_t state_;
};

// One driven kernel: applies the op stream and logs every fired event as
// "tag@time;" so two kernels can be compared exactly.
struct Driver {
  explicit Driver(QueueKind kind) : sim(kind) {}

  Simulator sim;
  std::ostringstream log;
  // Live one-shot handles, keyed by tag so both drivers pick the same
  // cancellation victims. std::map: deterministic iteration order.
  std::map<std::uint64_t, EventId> pending;
  std::vector<TimerId> timers;

  void schedule(std::uint64_t tag, SimTime t) {
    pending[tag] = sim.schedule_at(t, [this, tag] {
      log << tag << '@' << sim.now() << ';';
      pending.erase(tag);
    });
  }

  // A callback that schedules follow-ups, some at its own timestamp —
  // exercising same-timestamp FIFO across the batch boundary.
  void schedule_fanout(std::uint64_t tag, SimTime t, std::uint32_t n) {
    pending[tag] = sim.schedule_at(t, [this, tag, n] {
      log << "F" << tag << '@' << sim.now() << ';';
      pending.erase(tag);
      for (std::uint32_t i = 0; i < n; ++i) {
        schedule(tag * 1000 + i, sim.now() + (i % 2));
      }
    });
  }
};

struct OpStream {
  std::uint64_t seed;
  std::uint32_t ops;
};

// Applies the same seeded operation mix to `a` and `b`, advancing both in
// lockstep through run_until chunks.
void drive_pair(Driver& a, Driver& b, const OpStream& spec) {
  Rng rng(spec.seed);
  std::uint64_t tag = 1;
  SimTime horizon = 0;
  for (std::uint32_t op = 0; op < spec.ops; ++op) {
    const std::uint64_t kind = rng.below(100);
    if (kind < 45) {
      const SimTime t = horizon + static_cast<SimTime>(rng.below(5000));
      const std::uint64_t this_tag = tag++;
      a.schedule(this_tag, t);
      b.schedule(this_tag, t);
    } else if (kind < 55) {
      const SimTime t = horizon + static_cast<SimTime>(rng.below(500));
      const std::uint32_t fan = 1 + static_cast<std::uint32_t>(rng.below(6));
      const std::uint64_t this_tag = tag++;
      a.schedule_fanout(this_tag, t, fan);
      b.schedule_fanout(this_tag, t, fan);
    } else if (kind < 70) {
      // Cancel the same victim in both (if any survive).
      if (!a.pending.empty()) {
        const std::uint64_t pick = rng.below(a.pending.size());
        auto it_a = a.pending.begin();
        std::advance(it_a, static_cast<std::ptrdiff_t>(pick));
        const std::uint64_t victim = it_a->first;
        ASSERT_EQ(b.pending.count(victim), 1u);
        const bool ca = a.sim.cancel(it_a->second);
        const bool cb = b.sim.cancel(b.pending[victim]);
        ASSERT_EQ(ca, cb);
        a.pending.erase(victim);
        b.pending.erase(victim);
      }
    } else if (kind < 80) {
      const SimTime first = horizon + 1 + static_cast<SimTime>(rng.below(50));
      const SimDuration period = 1 + static_cast<SimDuration>(rng.below(40));
      const std::uint64_t this_tag = tag++;
      a.timers.push_back(a.sim.start_periodic(
          first, period,
          [&a, this_tag](SimTime t) { a.log << 'T' << this_tag << '@' << t << ';'; }));
      b.timers.push_back(b.sim.start_periodic(
          first, period,
          [&b, this_tag](SimTime t) { b.log << 'T' << this_tag << '@' << t << ';'; }));
    } else if (kind < 88) {
      if (!a.timers.empty()) {
        const std::size_t pick = rng.below(a.timers.size());
        const bool sa = a.sim.stop_timer(a.timers[pick]);
        const bool sb = b.sim.stop_timer(b.timers[pick]);
        ASSERT_EQ(sa, sb);
        a.timers.erase(a.timers.begin() + static_cast<std::ptrdiff_t>(pick));
        b.timers.erase(b.timers.begin() + static_cast<std::ptrdiff_t>(pick));
      }
    } else {
      // Advance both kernels one chunk.
      horizon += static_cast<SimTime>(1 + rng.below(2000));
      a.sim.run_until(horizon);
      b.sim.run_until(horizon);
      ASSERT_EQ(a.log.str(), b.log.str())
          << "divergence before t=" << horizon << " (op " << op << ")";
    }
  }
  // Stop all timers so run() terminates, then drain both queues fully.
  for (std::size_t i = 0; i < a.timers.size(); ++i) {
    a.sim.stop_timer(a.timers[i]);
    b.sim.stop_timer(b.timers[i]);
  }
  a.sim.run();
  b.sim.run();
  EXPECT_EQ(a.log.str(), b.log.str());
  EXPECT_EQ(a.sim.events_processed(), b.sim.events_processed());
  EXPECT_EQ(a.sim.pending_live(), b.sim.pending_live());
  a.sim.audit_invariants();
  b.sim.audit_invariants();
}

TEST(QueueDifferential, HeapAndCalendarAgreeOnRandomOpStreams) {
  for (const std::uint64_t seed : {7ull, 1337ull, 0xdecafull}) {
    Driver heap(QueueKind::kHeap);
    Driver calendar(QueueKind::kCalendar);
    drive_pair(heap, calendar, OpStream{seed, 4000});
  }
}

TEST(QueueDifferential, CancelHeavyStreamsAgree) {
  // Bias the mix toward cancels by scheduling then cancelling in bursts:
  // the calendar queue's tombstone + compaction path vs the heap's eager
  // excision must still pop identically.
  Driver heap(QueueKind::kHeap);
  Driver calendar(QueueKind::kCalendar);
  Rng rng(99);
  std::uint64_t tag = 1;
  for (int round = 0; round < 200; ++round) {
    std::vector<std::uint64_t> burst;
    for (int i = 0; i < 40; ++i) {
      const SimTime t =
          heap.sim.now() + static_cast<SimTime>(rng.below(300));
      const std::uint64_t this_tag = tag++;
      heap.schedule(this_tag, t);
      calendar.schedule(this_tag, t);
      burst.push_back(this_tag);
    }
    for (const std::uint64_t victim : burst) {
      if (rng.below(100) < 70 && heap.pending.count(victim) != 0) {
        heap.sim.cancel(heap.pending[victim]);
        calendar.sim.cancel(calendar.pending[victim]);
        heap.pending.erase(victim);
        calendar.pending.erase(victim);
      }
    }
    const SimTime horizon = heap.sim.now() + static_cast<SimTime>(rng.below(150));
    heap.sim.run_until(horizon);
    calendar.sim.run_until(horizon);
    ASSERT_EQ(heap.log.str(), calendar.log.str()) << "round " << round;
  }
  heap.sim.run();
  calendar.sim.run();
  EXPECT_EQ(heap.log.str(), calendar.log.str());
}

// Kernel-level snapshot/restore mid-stream: capture (time, seq) of every
// pending one-shot at a quiescent point, rebuild on a virgin kernel of
// `restore_kind`, and check the continuation matches the uninterrupted
// original — including restoring under the other queue implementation.
void snapshot_midstream(QueueKind run_kind, QueueKind restore_kind) {
  Driver original(run_kind);
  Rng rng(4242);
  // Phase 1: build up state and advance partway.
  for (int i = 0; i < 500; ++i) {
    original.schedule(static_cast<std::uint64_t>(i),
                      static_cast<SimTime>(rng.below(10000)));
  }
  original.sim.run_until(3000);

  // Quiescent capture.
  struct Saved {
    std::uint64_t tag;
    SimTime time;
    std::uint32_t seq;
  };
  std::vector<Saved> saved;
  for (const auto& [tag, id] : original.pending) {
    const auto info = original.sim.pending_event_info(id);
    ASSERT_TRUE(info.has_value());
    saved.push_back(Saved{tag, info->time, info->seq});
  }
  const SimTime saved_now = original.sim.now();
  const std::uint32_t saved_next_seq = original.sim.next_seq();
  const std::uint64_t saved_processed = original.sim.events_processed();

  // Restore onto a virgin kernel of the other (or same) kind.
  Driver resumed(restore_kind);
  resumed.sim.begin_restore(saved_now, saved_next_seq, saved_processed);
  for (const Saved& s : saved) {
    const std::uint64_t tag = s.tag;
    resumed.pending[tag] = resumed.sim.restore_event(s.time, s.seq, [&resumed, tag] {
      resumed.log << tag << '@' << resumed.sim.now() << ';';
      resumed.pending.erase(tag);
    });
  }
  ASSERT_TRUE(resumed.sim.finish_restore(saved.size()).is_ok());

  // Phase 2: identical continuation on both kernels.
  original.log.str("");
  Rng cont_a(777);
  Rng cont_b(777);
  auto continue_on = [](Driver& d, Rng& rng2) {
    std::uint64_t tag = 100000;
    for (int i = 0; i < 300; ++i) {
      d.schedule(tag++, d.sim.now() + static_cast<SimTime>(rng2.below(4000)));
    }
    d.sim.run();
  };
  continue_on(original, cont_a);
  continue_on(resumed, cont_b);
  EXPECT_EQ(original.log.str(), resumed.log.str());
  EXPECT_EQ(original.sim.events_processed(), resumed.sim.events_processed());
}

TEST(QueueDifferential, SnapshotRestoreMidStreamHeapToCalendar) {
  snapshot_midstream(QueueKind::kHeap, QueueKind::kCalendar);
}

TEST(QueueDifferential, SnapshotRestoreMidStreamCalendarToHeap) {
  snapshot_midstream(QueueKind::kCalendar, QueueKind::kHeap);
}

TEST(QueueDifferential, SnapshotRestoreMidStreamCalendarToCalendar) {
  snapshot_midstream(QueueKind::kCalendar, QueueKind::kCalendar);
}

TEST(QueueKindNames, RoundTrip) {
  EXPECT_STREQ(queue_kind_name(QueueKind::kHeap), "heap");
  EXPECT_STREQ(queue_kind_name(QueueKind::kCalendar), "calendar");
  EXPECT_EQ(parse_queue_kind("heap"), QueueKind::kHeap);
  EXPECT_EQ(parse_queue_kind("calendar"), QueueKind::kCalendar);
  EXPECT_EQ(parse_queue_kind("fifo"), std::nullopt);
}

// The drain strategy is observable through dispatch_stats(): the calendar
// queue batches coincident timestamps (its sorted bucket makes pop_batch a
// copy), the heap dispatches per-event (one sift-down per node either
// way), and the event count must reconcile exactly under both.
TEST(BatchedDispatch, CoincidentEventsShareABatchUnderTheCalendar) {
  for (const QueueKind kind : {QueueKind::kHeap, QueueKind::kCalendar}) {
    Simulator sim(kind);
    int fired = 0;
    for (int i = 0; i < 8; ++i) sim.schedule_at(100, [&fired] { ++fired; });
    for (int i = 0; i < 3; ++i) sim.schedule_at(200, [&fired] { ++fired; });
    sim.schedule_at(50, [&fired] { ++fired; });
    sim.run();
    EXPECT_EQ(fired, 12);
    const auto stats = sim.dispatch_stats();
    EXPECT_EQ(stats.batched_events, 12u);
    if (kind == QueueKind::kCalendar) {
      EXPECT_EQ(stats.batches, 3u);  // t=50 (1), t=100 (8), t=200 (3)
      EXPECT_EQ(stats.max_batch, 8u);
    } else {
      EXPECT_EQ(stats.batches, 12u);  // per-event: every round a singleton
      EXPECT_EQ(stats.max_batch, 1u);
    }
  }
}

// request_stop() mid-batch must re-queue the undispatched same-timestamp
// remainder with original order preserved across the resume.
TEST(BatchedDispatch, StopMidBatchResumesInOrder) {
  for (const QueueKind kind : {QueueKind::kHeap, QueueKind::kCalendar}) {
    Simulator sim(kind);
    std::ostringstream log;
    for (int i = 0; i < 10; ++i) {
      sim.schedule_at(5, [&, i] {
        log << i << ';';
        if (i == 3) sim.request_stop();
      });
    }
    sim.run();
    EXPECT_EQ(log.str(), "0;1;2;3;");
    EXPECT_EQ(sim.pending_live(), 6u);
    sim.run();
    EXPECT_EQ(log.str(), "0;1;2;3;4;5;6;7;8;9;");
    EXPECT_EQ(sim.pending_live(), 0u);
  }
}

// A batch sibling cancelling a later same-timestamp event: the victim
// must not fire even though it was already drained into the batch.
TEST(BatchedDispatch, SiblingCancelWithinBatch) {
  for (const QueueKind kind : {QueueKind::kHeap, QueueKind::kCalendar}) {
    Simulator sim(kind);
    std::ostringstream log;
    EventId victim = kInvalidEvent;
    sim.schedule_at(7, [&] {
      log << "killer;";
      EXPECT_TRUE(sim.cancel(victim));
    });
    victim = sim.schedule_at(7, [&] { log << "victim;"; });
    sim.schedule_at(7, [&] { log << "tail;"; });
    sim.run();
    EXPECT_EQ(log.str(), "killer;tail;");
    EXPECT_EQ(sim.events_processed(), 2u);
    sim.audit_invariants();
  }
}

}  // namespace
}  // namespace dc::sim
