#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace dc::sim {
namespace {

TEST(Simulator, StartsAtTimeZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), 0);
  EXPECT_EQ(sim.events_processed(), 0u);
}

TEST(Simulator, ExecutesEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(30, [&] { order.push_back(3); });
  sim.schedule_at(10, [&] { order.push_back(1); });
  sim.schedule_at(20, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30);
  EXPECT_EQ(sim.events_processed(), 3u);
}

TEST(Simulator, SameTimeEventsRunFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(5, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulator, ScheduleInIsRelative) {
  Simulator sim;
  SimTime observed = -1;
  sim.schedule_at(100, [&] {
    sim.schedule_in(50, [&] { observed = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(observed, 150);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.schedule_at(10, [&] { fired = true; });
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(id)) << "second cancel reports failure";
  sim.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(sim.events_processed(), 0u);
}

TEST(Simulator, CancelFromWithinEarlierEvent) {
  Simulator sim;
  bool fired = false;
  const EventId later = sim.schedule_at(20, [&] { fired = true; });
  sim.schedule_at(10, [&] { sim.cancel(later); });
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, RunUntilAdvancesClockToHorizon) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(10, [&] { ++fired; });
  sim.schedule_at(100, [&] { ++fired; });
  sim.run_until(50);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 50);
  sim.run_until(200);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.now(), 200);
}

TEST(Simulator, RunUntilIncludesEventsAtHorizon) {
  Simulator sim;
  bool fired = false;
  sim.schedule_at(50, [&] { fired = true; });
  sim.run_until(50);
  EXPECT_TRUE(fired);
}

TEST(Simulator, RequestStopHaltsRun) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(1, [&] {
    ++fired;
    sim.request_stop();
  });
  sim.schedule_at(2, [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 1);
  sim.run();  // resumes
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, EventsCanScheduleMoreEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 100) sim.schedule_in(1, recurse);
  };
  sim.schedule_at(0, recurse);
  sim.run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(sim.now(), 99);
}

TEST(PeriodicTimer, FiresAtRegularIntervals) {
  Simulator sim;
  std::vector<SimTime> fires;
  sim.start_periodic(10, 5, [&](SimTime t) { fires.push_back(t); });
  sim.run_until(31);
  EXPECT_EQ(fires, (std::vector<SimTime>{10, 15, 20, 25, 30}));
}

TEST(PeriodicTimer, StopPreventsFutureFires) {
  Simulator sim;
  int fires = 0;
  const TimerId timer = sim.start_periodic(10, 10, [&](SimTime) { ++fires; });
  sim.schedule_at(25, [&] { EXPECT_TRUE(sim.stop_timer(timer)); });
  sim.run_until(100);
  EXPECT_EQ(fires, 2);  // at 10 and 20
  EXPECT_FALSE(sim.stop_timer(timer));
}

TEST(PeriodicTimer, CallbackMayStopItsOwnTimer) {
  Simulator sim;
  int fires = 0;
  TimerId timer = kInvalidTimer;
  timer = sim.start_periodic(5, 5, [&](SimTime) {
    if (++fires == 3) sim.stop_timer(timer);
  });
  sim.run_until(1000);
  EXPECT_EQ(fires, 3);
}

TEST(PeriodicTimer, MultipleTimersInterleave) {
  Simulator sim;
  std::vector<std::pair<SimTime, int>> fires;
  sim.start_periodic(2, 4, [&](SimTime t) { fires.push_back({t, 0}); });
  sim.start_periodic(3, 4, [&](SimTime t) { fires.push_back({t, 1}); });
  sim.run_until(12);
  const std::vector<std::pair<SimTime, int>> expected = {
      {2, 0}, {3, 1}, {6, 0}, {7, 1}, {10, 0}, {11, 1}};
  EXPECT_EQ(fires, expected);
}

TEST(Cancellation, CallbackCancelsSameTimestampEvent) {
  // A and B share a timestamp; A is scheduled first, so FIFO order puts B
  // after it. A's callback cancels B while B is at the front of the queue
  // — the cancellation must win even though the clock already reads 10.
  Simulator sim;
  bool b_fired = false;
  bool c_fired = false;
  EventId b = kInvalidEvent;
  sim.schedule_at(10, [&] { EXPECT_TRUE(sim.cancel(b)); });
  b = sim.schedule_at(10, [&] { b_fired = true; });
  sim.schedule_at(10, [&] { c_fired = true; });
  sim.run();
  EXPECT_FALSE(b_fired);
  EXPECT_TRUE(c_fired);  // later same-time events are unaffected
  EXPECT_EQ(sim.events_processed(), 2u);
  EXPECT_EQ(sim.pending_live(), 0u);
}

TEST(PeriodicTimer, CallbackStopsItselfAndSibling) {
  // The fixture the HTC/MTC servers rely on at shutdown: one daemon's scan
  // callback tears down both its own timer and a sibling daemon's. The
  // sibling's pending fire event must be cancelled and neither slot may be
  // recycled while the stopping callback is still on the stack.
  Simulator sim;
  int self_fires = 0;
  int sibling_fires = 0;
  TimerId self = kInvalidTimer;
  TimerId sibling = kInvalidTimer;
  sibling = sim.start_periodic(7, 10, [&](SimTime) { ++sibling_fires; });
  self = sim.start_periodic(5, 10, [&](SimTime) {
    if (++self_fires == 2) {
      EXPECT_TRUE(sim.stop_timer(sibling));
      EXPECT_TRUE(sim.stop_timer(self));
      EXPECT_FALSE(sim.stop_timer(self));  // already stopped: stale handle
    }
  });
  sim.run_until(1000);
  EXPECT_EQ(self_fires, 2);    // fires at 5 and 15
  EXPECT_EQ(sibling_fires, 1); // fires at 7; stopped before 17
  EXPECT_EQ(sim.pending_live(), 0u);
}

TEST(Callbacks, LargeCaptureTakesHeapPathAndStillFires) {
  // Captures beyond the inline budget (kInlineCallbackBytes) heap-allocate
  // but must behave identically.
  Simulator sim;
  std::array<std::uint64_t, 16> payload{};  // 128 bytes > 48-byte budget
  static_assert(sizeof(payload) > kInlineCallbackBytes);
  for (std::size_t i = 0; i < payload.size(); ++i) payload[i] = i * 3 + 1;
  std::uint64_t sum = 0;
  sim.schedule_at(1, [payload, &sum] {
    for (const std::uint64_t v : payload) sum += v;
  });
  sim.run();
  EXPECT_EQ(sum, 376u);
  EXPECT_EQ(sim.events_processed(), 1u);
}

TEST(Callbacks, ScheduleFromCallbackAtCurrentTimestamp) {
  // Re-entrant scheduling at the running event's own timestamp must fire
  // in the same run, after everything already queued for that time.
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(5, [&] {
    order.push_back(0);
    sim.schedule_at(5, [&] { order.push_back(2); });
  });
  sim.schedule_at(5, [&] { order.push_back(1); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

class SimulatorOrderingProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SimulatorOrderingProperty, RandomEventsFireInNondecreasingTime) {
  Simulator sim;
  Rng rng(GetParam());
  std::vector<SimTime> fired;
  std::vector<EventId> ids;
  for (int i = 0; i < 2000; ++i) {
    const SimTime t = rng.uniform_int(0, 100000);
    ids.push_back(sim.schedule_at(t, [&fired, &sim] { fired.push_back(sim.now()); }));
  }
  // Cancel a random 20%.
  std::size_t cancelled = 0;
  for (const EventId id : ids) {
    if (rng.bernoulli(0.2) && sim.cancel(id)) ++cancelled;
  }
  sim.run();
  EXPECT_EQ(fired.size(), 2000u - cancelled);
  EXPECT_TRUE(std::is_sorted(fired.begin(), fired.end()));
  EXPECT_EQ(sim.events_processed(), 2000u - cancelled);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimulatorOrderingProperty,
                         ::testing::Values(1u, 7u, 99u, 12345u));

}  // namespace
}  // namespace dc::sim
