// The tracing acceptance bar: a run's trace export is a pure function of
// the experiment. Byte-identical across repeated runs, across sweep-pool
// thread counts, under fault injection, and across a snapshot/resume
// boundary — and the Chrome JSON exporter round-trips losslessly through
// its own parser, so trace-summary diffs compare real event streams.
#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/system_runner.hpp"
#include "core/systems.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"
#include "workflow/montage.hpp"
#include "workload/models.hpp"

namespace dc {
namespace {

namespace fs = std::filesystem;
using core::SnapshotPolicy;
using core::SystemModel;

const std::vector<SystemModel> kModels = {
    SystemModel::kDcs, SystemModel::kSsp, SystemModel::kDrp,
    SystemModel::kDawningCloud};

core::ConsolidationWorkload make_workload() {
  workload::SyntheticTraceSpec trace_spec;
  trace_spec.name = "obs";
  trace_spec.capacity_nodes = 24;
  trace_spec.period = kDay;
  trace_spec.submit_margin = 2 * kHour;
  trace_spec.jobs_per_day = 120;
  trace_spec.width_weights = {{1, 0.5}, {2, 0.25}, {4, 0.15}, {8, 0.1}};
  trace_spec.hyper_p = 0.9;
  trace_spec.hyper_mean1 = 400;
  trace_spec.hyper_mean2 = 3000;

  core::HtcWorkloadSpec htc;
  htc.name = "obs";
  htc.trace = workload::generate_trace(trace_spec, /*seed=*/17);
  htc.fixed_nodes = 24;
  htc.policy = core::ResourceManagementPolicy::htc(6, 1.5, 24);

  workflow::MontageParams params;
  params.inputs = 12;
  core::MtcWorkloadSpec mtc;
  mtc.name = "wf";
  mtc.dag = workflow::make_montage(params, /*seed=*/3);
  mtc.submit_time = 4 * kHour;
  mtc.fixed_nodes = 12;
  mtc.policy = core::ResourceManagementPolicy::mtc(4, 8.0);

  core::ConsolidationWorkload workload;
  workload.htc.push_back(std::move(htc));
  workload.mtc.push_back(std::move(mtc));
  return workload;
}

core::RunOptions fault_options() {
  core::RunOptions options;
  core::fault::FaultDomain::Config faults;
  faults.mean_time_between_failures = 4 * kHour;
  faults.mean_time_to_repair = 30 * kMinute;
  faults.seed = 20090814;
  options.faults = faults;
  return options;
}

// Runs `model` with a private sink (and optionally a private registry)
// and returns the trace export plus the metrics timeseries.
struct Observed {
  std::string trace_json;
  std::string metrics_csv;
};

Observed observe_run(SystemModel model, const core::ConsolidationWorkload& w,
                     core::RunOptions options) {
  obs::TraceSink sink;
  obs::MetricsRegistry registry;
  options.trace = &sink;
  options.metrics = &registry;
  options.metrics_every = kHour;
  core::run_system(model, w, options);
  EXPECT_GT(sink.emitted(), 0u) << core::system_model_name(model);
  EXPECT_GT(registry.sample_count(), 0u) << core::system_model_name(model);
  return {sink.chrome_json(), registry.timeseries_csv()};
}

TEST(TraceDeterminism, RepeatedRunsExportIdenticalBytes) {
  const core::ConsolidationWorkload workload = make_workload();
  for (const SystemModel model : kModels) {
    SCOPED_TRACE(core::system_model_name(model));
    const Observed first = observe_run(model, workload, {});
    const Observed second = observe_run(model, workload, {});
    EXPECT_EQ(first.trace_json, second.trace_json);
    EXPECT_EQ(first.metrics_csv, second.metrics_csv);
  }
}

TEST(TraceDeterminism, ThreadCountDoesNotChangeTheTrace) {
  const core::ConsolidationWorkload workload = make_workload();
  const char* saved = std::getenv("DC_THREADS");
  const std::string saved_value = saved == nullptr ? "" : saved;

  auto run_all = [&](const char* threads) {
    setenv("DC_THREADS", threads, 1);
    std::string all;
    for (const SystemModel model : kModels) {
      const Observed run = observe_run(model, workload, fault_options());
      all += run.trace_json;
      all += run.metrics_csv;
    }
    return all;
  };
  const std::string single = run_all("1");
  const std::string pooled = run_all("4");
  if (saved == nullptr) {
    unsetenv("DC_THREADS");
  } else {
    setenv("DC_THREADS", saved_value.c_str(), 1);
  }
  EXPECT_EQ(single, pooled);
}

TEST(TraceDeterminism, FaultInjectionEmitsFaultEventsDeterministically) {
  const core::ConsolidationWorkload workload = make_workload();
  for (const SystemModel model : kModels) {
    SCOPED_TRACE(core::system_model_name(model));
    const Observed first = observe_run(model, workload, fault_options());
    const Observed second = observe_run(model, workload, fault_options());
    EXPECT_EQ(first.trace_json, second.trace_json);
    auto parsed = obs::parse_chrome_json(first.trace_json);
    ASSERT_TRUE(parsed.is_ok()) << parsed.status().message();
    const auto fault_events =
        std::count_if(parsed.value().begin(), parsed.value().end(),
                      [](const obs::ParsedTraceEvent& e) {
                        return e.category == "fault";
                      });
    EXPECT_GT(fault_events, 0);
  }
}

// Kill at a snapshot boundary, resume, and the *trace* (ring, string
// table, drop counters) continues as if never interrupted: the resumed
// run's export is byte-identical to the uninterrupted run's.
TEST(TraceDeterminism, SnapshotResumePreservesTraceByteIdentity) {
  const core::ConsolidationWorkload workload = make_workload();
  for (const SystemModel model : kModels) {
    SCOPED_TRACE(core::system_model_name(model));

    obs::TraceSink golden_sink;
    core::RunOptions golden_options = fault_options();
    golden_options.trace = &golden_sink;
    core::run_system(model, workload, golden_options);

    const std::string dir = ::testing::TempDir() + "trace_resume_" +
                            core::system_model_name(model);
    fs::remove_all(dir);
    fs::create_directories(dir);
    SnapshotPolicy policy;
    policy.every = 6 * kHour;
    policy.dir = dir;

    obs::TraceSink first_sink;
    core::RunOptions options = fault_options();
    options.trace = &first_sink;
    auto first =
        core::run_system_snapshotted(model, workload, options, policy);
    ASSERT_TRUE(first.is_ok()) << first.status().to_string();
    EXPECT_EQ(first_sink.chrome_json(), golden_sink.chrome_json());

    // Resume from the newest boundary into a *fresh* sink: restore fills
    // it from the snapshot and the run completes the event stream.
    obs::TraceSink resumed_sink;
    core::RunOptions resumed_options = fault_options();
    resumed_options.trace = &resumed_sink;
    SnapshotPolicy resume = policy;
    resume.resume = true;
    auto resumed = core::run_system_snapshotted(model, workload,
                                                resumed_options, resume);
    ASSERT_TRUE(resumed.is_ok()) << resumed.status().to_string();
    EXPECT_EQ(resumed_sink.chrome_json(), golden_sink.chrome_json());
    EXPECT_EQ(resumed_sink.csv(), golden_sink.csv());
    EXPECT_EQ(resumed_sink.emitted(), golden_sink.emitted());
    EXPECT_EQ(resumed_sink.dropped(), golden_sink.dropped());
  }
}

// A snapshot taken from a traced run refuses to resume untraced (and
// vice versa): silent shape drift would desynchronize the stream.
TEST(TraceDeterminism, ResumeRequiresMatchingTracePresence) {
  const core::ConsolidationWorkload workload = make_workload();
  const std::string dir = ::testing::TempDir() + "trace_presence";
  fs::remove_all(dir);
  fs::create_directories(dir);
  SnapshotPolicy policy;
  policy.every = 6 * kHour;
  policy.dir = dir;

  obs::TraceSink sink;
  core::RunOptions traced;
  traced.trace = &sink;
  auto first = core::run_system_snapshotted(SystemModel::kDcs, workload,
                                            traced, policy);
  ASSERT_TRUE(first.is_ok()) << first.status().to_string();

  SnapshotPolicy resume = policy;
  resume.resume = true;
  auto untraced = core::run_system_snapshotted(SystemModel::kDcs, workload,
                                               {}, resume);
  ASSERT_FALSE(untraced.is_ok());
  EXPECT_NE(untraced.status().message().find("trace"), std::string::npos)
      << untraced.status().message();
}

TEST(TraceDeterminism, ExporterRoundTripLosesNothing) {
  const core::ConsolidationWorkload workload = make_workload();
  obs::TraceSink sink;
  core::RunOptions options;
  options.trace = &sink;
  core::run_system(SystemModel::kDawningCloud, workload, options);

  auto parsed = obs::parse_chrome_json(sink.chrome_json());
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().message();
  ASSERT_EQ(parsed.value().size(), sink.size());
  const auto events = sink.events();
  for (std::size_t i = 0; i < events.size(); ++i) {
    const auto& raw = events[i];
    const auto& round = parsed.value()[i];
    EXPECT_EQ(round.name, sink.name_of(raw.name)) << "event " << i;
    EXPECT_EQ(round.actor, sink.name_of(raw.actor)) << "event " << i;
    EXPECT_EQ(round.ts_us, raw.time * 1000000) << "event " << i;
    EXPECT_EQ(round.dur_us, raw.dur * 1000000) << "event " << i;
    EXPECT_EQ(round.a0, raw.a0) << "event " << i;
    EXPECT_EQ(round.a1, raw.a1) << "event " << i;
    EXPECT_EQ(round.phase, raw.phase == 1 ? 'X' : 'i') << "event " << i;
  }
}

TEST(TraceDeterminism, CategoryFilterSelectsASubset) {
  const core::ConsolidationWorkload workload = make_workload();
  obs::TraceSink everything;
  core::RunOptions options;
  options.trace = &everything;
  core::run_system(SystemModel::kDawningCloud, workload, options);

  obs::TraceSink only_jobs;
  only_jobs.set_filter(obs::trace_category_bit(obs::TraceCategory::kJob));
  core::RunOptions filtered;
  filtered.trace = &only_jobs;
  core::run_system(SystemModel::kDawningCloud, workload, filtered);

  ASSERT_GT(only_jobs.emitted(), 0u);
  EXPECT_LT(only_jobs.emitted(), everything.emitted());
  const auto counts = only_jobs.category_counts();
  for (std::size_t c = 0; c < counts.size(); ++c) {
    if (c == static_cast<std::size_t>(obs::TraceCategory::kJob)) {
      EXPECT_GT(counts[c], 0u);
    } else {
      EXPECT_EQ(counts[c], 0u) << "category " << c;
    }
  }
  // The filtered stream equals the full stream restricted to kJob.
  const auto all_counts = everything.category_counts();
  EXPECT_EQ(counts[static_cast<std::size_t>(obs::TraceCategory::kJob)],
            all_counts[static_cast<std::size_t>(obs::TraceCategory::kJob)]);
}

// The profiler observes, never perturbs: profiled and unprofiled runs
// trace identically, and the dispatch phase accounts for the run's events.
TEST(TraceDeterminism, ProfilingDoesNotPerturbTheRun) {
  const core::ConsolidationWorkload workload = make_workload();
  obs::TraceSink plain_sink;
  core::RunOptions plain;
  plain.trace = &plain_sink;
  const core::SystemResult unprofiled =
      core::run_system(SystemModel::kDcs, workload, plain);

  obs::TraceSink profiled_sink;
  obs::PhaseProfiler profiler;
  core::RunOptions options;
  options.trace = &profiled_sink;
  options.profile = &profiler;
  const core::SystemResult profiled =
      core::run_system(SystemModel::kDcs, workload, options);

  EXPECT_EQ(plain_sink.chrome_json(), profiled_sink.chrome_json());
  EXPECT_EQ(unprofiled.simulated_events, profiled.simulated_events);
  EXPECT_GT(profiler.calls(obs::ProfilePhase::kDispatch), 0u);
  EXPECT_EQ(profiler.units(obs::ProfilePhase::kDispatch),
            profiled.simulated_events);
}

}  // namespace
}  // namespace dc
