// Seed-determinism regression: one seed, one answer — regardless of how
// many worker threads the sweep pool uses. Runs the full four-system
// experiment plus invoice generation under DC_THREADS=1 and DC_THREADS=4
// and asserts every rendered artifact (tables, CSV, invoices) is
// byte-identical, pinning the reproducibility contract that dc-lint
// enforces statically (docs/STATIC_ANALYSIS.md).
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/fault/fault_domain.hpp"
#include "core/htc_server.hpp"
#include "core/mtc_server.hpp"
#include "core/systems.hpp"
#include "cost/invoice.hpp"
#include "metrics/report.hpp"
#include "sched/fcfs.hpp"
#include "sched/first_fit.hpp"
#include "sim/simulator.hpp"
#include "util/csv.hpp"
#include "util/parallel.hpp"
#include "workflow/montage.hpp"
#include "workload/models.hpp"

namespace dc {
namespace {

// FNV-1a, the digest we'd publish next to result artifacts.
std::uint64_t fnv1a(const std::string& text) {
  std::uint64_t hash = 1469598103934665603ULL;
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ULL;
  }
  return hash;
}

core::ConsolidationWorkload make_workload() {
  workload::SyntheticTraceSpec trace_spec;
  trace_spec.name = "det";
  trace_spec.capacity_nodes = 32;
  trace_spec.period = 2 * kDay;
  trace_spec.submit_margin = 2 * kHour;
  trace_spec.jobs_per_day = 150;
  trace_spec.width_weights = {{1, 0.4}, {2, 0.3}, {4, 0.2}, {8, 0.08}, {32, 0.02}};
  trace_spec.hyper_p = 0.9;
  trace_spec.hyper_mean1 = 500;
  trace_spec.hyper_mean2 = 4000;

  core::HtcWorkloadSpec htc;
  htc.name = "det";
  htc.trace = workload::generate_trace(trace_spec, /*seed=*/11);
  htc.fixed_nodes = 32;
  htc.policy = core::ResourceManagementPolicy::htc(8, 1.5, 32);

  workflow::MontageParams params;
  params.inputs = 20;
  core::MtcWorkloadSpec mtc;
  mtc.name = "wf";
  mtc.dag = workflow::make_montage(params, /*seed=*/5);
  mtc.submit_time = 6 * kHour;
  mtc.fixed_nodes = 20;
  mtc.policy = core::ResourceManagementPolicy::mtc(4, 8.0);

  core::ConsolidationWorkload workload;
  workload.htc.push_back(std::move(htc));
  workload.mtc.push_back(std::move(mtc));
  return workload;
}

// An elastic HTC scenario that exercises demand-driven leasing, so the
// invoice has real DR line items, generated inside a parallel region.
std::string elastic_invoice(std::size_t variant) {
  sim::Simulator sim;
  core::ResourceProvisionService provision{cluster::ResourcePool::unbounded()};
  sched::FirstFitScheduler scheduler;
  core::HtcServer::Config config;
  config.name = "elastic-" + std::to_string(variant);
  config.policy = core::ResourceManagementPolicy::htc(4, 1.5, 64);
  config.scheduler = &scheduler;
  core::HtcServer server(sim, provision, std::move(config));
  sim.schedule_at(0, [&] {
    server.start();
    for (std::size_t j = 0; j < 24; ++j) {
      // Deterministic arithmetic workload, distinct per variant.
      const SimDuration runtime =
          static_cast<SimDuration>(120 + 37 * j + 11 * variant);
      const std::int64_t nodes = static_cast<std::int64_t>(1 + (j + variant) % 8);
      sim.schedule_in(static_cast<SimDuration>(60 * j), [&server, runtime, nodes] {
        server.submit(runtime, nodes);
      });
    }
  });
  // Bounded run: the elastic scan timer keeps the event queue non-empty
  // forever, so run() would never return.
  sim.run_until(24 * kHour);
  const cost::Invoice invoice = cost::generate_summary_invoice(
      config.name, server.ledger(), /*horizon=*/24 * kHour, /*price=*/0.10);
  return cost::format_invoice(invoice);
}

struct Artifacts {
  std::string tables;
  std::string csv;
  std::string invoices;
  std::uint64_t digest = 0;
};

// googletest: ASSERT_* needs a void return, so results land in `out`.
// `queue` selects the kernel scheduler queue — both implementations must
// produce byte-identical artifacts (see src/sim/event_queue.hpp).
void run_experiment(const char* dc_threads, sim::QueueKind queue,
                    Artifacts* out) {
  ASSERT_EQ(setenv("DC_THREADS", dc_threads, /*overwrite=*/1), 0)
      << "setenv failed";
  const core::ConsolidationWorkload workload = make_workload();

  // The four systems evaluated concurrently on the sweep pool — the same
  // shape as the figure benches.
  core::RunOptions options;
  options.queue = queue;
  const std::vector<core::SystemModel> models = {
      core::SystemModel::kDcs, core::SystemModel::kSsp, core::SystemModel::kDrp,
      core::SystemModel::kDawningCloud};
  const std::vector<core::SystemResult> systems =
      parallel_map_index<core::SystemResult>(models.size(), [&](std::size_t i) {
        return core::run_system(models[i], workload, options);
      });

  Artifacts& artifacts = *out;
  artifacts.tables = metrics::format_htc_provider_table(systems, "det", "HTC");
  artifacts.tables += metrics::format_mtc_provider_table(systems, "wf", "MTC");
  artifacts.tables += metrics::format_resource_provider_report(systems);
  artifacts.tables += metrics::format_overhead_report(systems);

  const std::string csv_path = ::testing::TempDir() + "determinism_" +
                               std::string(dc_threads) + ".csv";
  {
    CsvWriter csv(csv_path);
    ASSERT_TRUE(csv.ok()) << csv_path;
    metrics::write_results_csv(csv, systems);
  }
  std::ifstream in(csv_path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  artifacts.csv = buf.str();
  ASSERT_FALSE(artifacts.csv.empty());

  const std::vector<std::string> invoices = parallel_map_index<std::string>(
      4, [](std::size_t i) { return elastic_invoice(i); });
  for (const std::string& invoice : invoices) artifacts.invoices += invoice;

  artifacts.digest =
      fnv1a(artifacts.tables + artifacts.csv + artifacts.invoices);
}

// Saves/restores DC_THREADS around one experiment run.
void run_experiment_into(const char* dc_threads, Artifacts* out,
                         sim::QueueKind queue = sim::QueueKind::kHeap) {
  *out = Artifacts{};
  const char* saved = std::getenv("DC_THREADS");
  const std::string saved_value = saved == nullptr ? "" : saved;
  run_experiment(dc_threads, queue, out);
  // Restore so later tests see the environment they started with.
  if (saved == nullptr) {
    unsetenv("DC_THREADS");
  } else {
    setenv("DC_THREADS", saved_value.c_str(), 1);
  }
}

TEST(Determinism, SameSeedSameResultAcrossThreadCounts) {
  Artifacts single;
  Artifacts pooled;
  run_experiment_into("1", &single);
  run_experiment_into("4", &pooled);

  // Byte-identical first (the failure message names the artifact), then the
  // digest — the value a results pipeline would publish and diff.
  EXPECT_EQ(single.tables, pooled.tables);
  EXPECT_EQ(single.csv, pooled.csv);
  EXPECT_EQ(single.invoices, pooled.invoices);
  EXPECT_EQ(single.digest, pooled.digest);
}

// Same contract under the calendar queue: the scheduler-queue choice must
// be invisible to results, and the pool size must stay invisible under it.
TEST(Determinism, CalendarQueueIsDeterministicAcrossThreadCounts) {
  Artifacts single;
  Artifacts pooled;
  run_experiment_into("1", &single, sim::QueueKind::kCalendar);
  run_experiment_into("4", &pooled, sim::QueueKind::kCalendar);
  EXPECT_EQ(single.tables, pooled.tables);
  EXPECT_EQ(single.csv, pooled.csv);
  EXPECT_EQ(single.invoices, pooled.invoices);
  EXPECT_EQ(single.digest, pooled.digest);
}

// The queue-independence contract itself: heap and calendar runs of the
// full four-system experiment render byte-identical artifacts.
TEST(Determinism, HeapAndCalendarQueuesProduceByteIdenticalArtifacts) {
  Artifacts heap;
  Artifacts calendar;
  run_experiment_into("4", &heap, sim::QueueKind::kHeap);
  run_experiment_into("4", &calendar, sim::QueueKind::kCalendar);
  EXPECT_EQ(heap.tables, calendar.tables);
  EXPECT_EQ(heap.csv, calendar.csv);
  EXPECT_EQ(heap.invoices, calendar.invoices);
  EXPECT_EQ(heap.digest, calendar.digest);
}

// A Montage campaign on a fixed MTC server with a seeded failure domain
// injecting through the full failure -> repair lifecycle, rendered to a
// stable metrics line. Runs inside parallel regions, so any hidden global
// state in the fault subsystem would show up as cross-thread divergence.
std::string faulted_mtc_artifact(std::size_t variant) {
  sim::Simulator sim;
  core::ResourceProvisionService provision{cluster::ResourcePool::unbounded()};
  sched::FcfsScheduler fcfs;
  core::MtcServer::MtcConfig config;
  config.name = "wf-" + std::to_string(variant);
  config.fixed_nodes = 166;
  config.scheduler = &fcfs;
  core::MtcServer server(sim, provision, std::move(config));
  sim.schedule_at(0, [&] {
    server.start();
    server.submit_workflow(
        workflow::make_paper_montage(/*seed=*/7 + variant));
  });
  // The campaign is short (~380 s on 166 nodes, and the TRE destroys itself
  // at completion), so inject aggressively enough to overlap it.
  core::fault::FaultDomain::Config faults;
  faults.mean_time_between_failures = kMinute;
  faults.mean_time_to_repair = 2 * kMinute;
  faults.seed = 1337 + variant;
  core::fault::FaultDomain domain(sim, faults);
  domain.watch(&server);
  sim.schedule_at(1, [&] { domain.start(5 * kMinute); });
  sim.run_until(kDay);
  EXPECT_GT(domain.failure_events(), 0) << "the scenario must exercise faults";
  EXPECT_TRUE(server.all_workflows_complete());
  std::ostringstream out;
  out << config.name << " tasks=" << server.completed_tasks()
      << " retries=" << server.job_retries()
      << " failures=" << domain.failure_events()
      << " nodes_failed=" << domain.nodes_failed()
      << " nodes_repaired=" << domain.nodes_repaired()
      << " finish=" << server.last_finish() << " avail_ppb="
      << static_cast<std::int64_t>(server.availability(kDay) * 1e9) << "\n";
  return out.str();
}

TEST(Determinism, FaultedMtcRunsAreByteIdenticalAcrossThreadCounts) {
  const char* saved = std::getenv("DC_THREADS");
  const std::string saved_value = saved == nullptr ? "" : saved;
  auto run_all = [](const char* threads) {
    setenv("DC_THREADS", threads, 1);
    const std::vector<std::string> parts = parallel_map_index<std::string>(
        4, [](std::size_t i) { return faulted_mtc_artifact(i); });
    std::string all;
    for (const std::string& part : parts) all += part;
    return all;
  };
  const std::string single = run_all("1");
  const std::string pooled = run_all("4");
  if (saved == nullptr) {
    unsetenv("DC_THREADS");
  } else {
    setenv("DC_THREADS", saved_value.c_str(), 1);
  }
  EXPECT_EQ(single, pooled);
  EXPECT_EQ(fnv1a(single), fnv1a(pooled));
}

TEST(Determinism, MtcTaskFailureReplaysOnlyTheAffectedSubtree) {
  struct Outcome {
    std::int64_t submitted;
    std::int64_t completed;
    std::int64_t retries;
    SimTime finish;
  };
  auto run = [](bool inject) -> Outcome {
    sim::Simulator sim;
    core::ResourceProvisionService provision{
        cluster::ResourcePool::unbounded()};
    sched::FcfsScheduler fcfs;
    core::MtcServer::MtcConfig config;
    config.name = "wf";
    config.fixed_nodes = 166;
    config.scheduler = &fcfs;
    core::MtcServer server(sim, provision, std::move(config));
    sim.schedule_at(0, [&] {
      server.start();
      server.submit_workflow(workflow::make_paper_montage());
    });
    if (inject) {
      // Soak up the idle nodes, then take exactly one busy node down: one
      // running task dies and is transparently replaced.
      sim.schedule_at(60, [&] {
        const std::int64_t count = server.idle() + 1;
        EXPECT_EQ(server.fail_nodes(count), 1);
        server.repair_nodes(count);
      });
    }
    sim.run_until(kDay);
    EXPECT_TRUE(server.all_workflows_complete());
    return Outcome{server.submitted_jobs(), server.completed_tasks(),
                   server.job_retries(), server.last_finish()};
  };
  const Outcome baseline = run(false);
  const Outcome faulted = run(true);
  EXPECT_EQ(baseline.completed, 1000);
  EXPECT_EQ(faulted.completed, 1000);
  // Only the killed task replays: its descendants were merely delayed (their
  // dependencies had not released them yet), so no cascade of re-submission
  // and exactly one retry.
  EXPECT_EQ(faulted.retries, 1);
  EXPECT_EQ(faulted.submitted, baseline.submitted)
      << "a retry re-queues the same job, it does not mint new ones";
  EXPECT_GE(faulted.finish, baseline.finish);
}

TEST(Determinism, RepeatedRunIsStableWithinProcess) {
  // Same thread count, run twice: catches address-dependent ordering
  // (pointer-keyed containers, uninitialized reads) that varies run to run.
  Artifacts first;
  Artifacts second;
  run_experiment_into("4", &first);
  run_experiment_into("4", &second);
  EXPECT_EQ(first.digest, second.digest);
  EXPECT_EQ(first.tables, second.tables);
}

}  // namespace
}  // namespace dc
