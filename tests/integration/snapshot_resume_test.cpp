// Crash-consistency regression: a run interrupted at any snapshot
// boundary and resumed from disk must produce results CSVs byte-identical
// to an uninterrupted run — for all four systems, under fault injection,
// and regardless of the sweep pool's thread count. Corrupted, truncated,
// and model-mismatched snapshots must be rejected with a clear error,
// never a crash or a silently wrong answer.
#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/system_runner.hpp"
#include "core/systems.hpp"
#include "metrics/report.hpp"
#include "util/csv.hpp"
#include "util/parallel.hpp"
#include "workflow/montage.hpp"
#include "workload/models.hpp"

namespace dc {
namespace {

namespace fs = std::filesystem;
using core::SnapshotPolicy;
using core::SystemModel;

const std::vector<SystemModel> kModels = {
    SystemModel::kDcs, SystemModel::kSsp, SystemModel::kDrp,
    SystemModel::kDawningCloud};

core::ConsolidationWorkload make_workload() {
  workload::SyntheticTraceSpec trace_spec;
  trace_spec.name = "snap";
  trace_spec.capacity_nodes = 32;
  trace_spec.period = 2 * kDay;
  trace_spec.submit_margin = 2 * kHour;
  trace_spec.jobs_per_day = 150;
  trace_spec.width_weights = {{1, 0.4}, {2, 0.3}, {4, 0.2}, {8, 0.08}, {32, 0.02}};
  trace_spec.hyper_p = 0.9;
  trace_spec.hyper_mean1 = 500;
  trace_spec.hyper_mean2 = 4000;

  core::HtcWorkloadSpec htc;
  htc.name = "snap";
  htc.trace = workload::generate_trace(trace_spec, /*seed=*/11);
  htc.fixed_nodes = 32;
  htc.policy = core::ResourceManagementPolicy::htc(8, 1.5, 32);

  workflow::MontageParams params;
  params.inputs = 20;
  core::MtcWorkloadSpec mtc;
  mtc.name = "wf";
  mtc.dag = workflow::make_montage(params, /*seed=*/5);
  mtc.submit_time = 6 * kHour;
  mtc.fixed_nodes = 20;
  mtc.policy = core::ResourceManagementPolicy::mtc(4, 8.0);

  core::ConsolidationWorkload workload;
  workload.htc.push_back(std::move(htc));
  workload.mtc.push_back(std::move(mtc));
  return workload;
}

// Fault injection on: the acceptance bar is resume fidelity *with* the
// failure/repair lifecycle mid-flight (pinned victim sequences, pending
// repairs, retry backoffs).
core::RunOptions make_options() {
  core::RunOptions options;
  core::fault::FaultDomain::Config faults;
  faults.mean_time_between_failures = 3 * kHour;
  faults.mean_time_to_repair = 30 * kMinute;
  faults.seed = 20090814;
  options.faults = faults;
  return options;
}

// The artifact under comparison: the same results CSV the figure benches
// publish, plus the provider tables.
std::string results_artifact(const std::vector<core::SystemResult>& systems,
                             const std::string& tag) {
  const std::string path = ::testing::TempDir() + "snap_results_" + tag + ".csv";
  {
    CsvWriter csv(path);
    EXPECT_TRUE(csv.ok()) << path;
    metrics::write_results_csv(csv, systems);
  }
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string artifact = buf.str();
  EXPECT_FALSE(artifact.empty());
  artifact += metrics::format_htc_provider_table(systems, "snap", "HTC");
  artifact += metrics::format_mtc_provider_table(systems, "wf", "MTC");
  return artifact;
}

std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::vector<std::string> snapshot_files(const std::string& dir) {
  std::vector<std::string> files;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() == ".dcsnap") {
      files.push_back(entry.path().string());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

TEST(SnapshotResume, ChunkedRunWithPeriodicSnapshotsMatchesUninterrupted) {
  const core::ConsolidationWorkload workload = make_workload();
  const core::RunOptions options = make_options();
  std::vector<core::SystemResult> golden;
  std::vector<core::SystemResult> chunked;
  for (const SystemModel model : kModels) {
    golden.push_back(core::run_system(model, workload, options));
    SnapshotPolicy policy;
    policy.every = 6 * kHour;
    policy.dir = fresh_dir(std::string("snap_chunked_") +
                           core::system_model_name(model));
    auto result = core::run_system_snapshotted(model, workload, options, policy);
    ASSERT_TRUE(result.is_ok()) << result.status().to_string();
    chunked.push_back(*result);
    EXPECT_FALSE(snapshot_files(policy.dir).empty());
  }
  EXPECT_EQ(results_artifact(golden, "golden"),
            results_artifact(chunked, "chunked"));
}

// The tentpole guarantee: kill at *any* snapshot boundary, resume from the
// file on disk, and the final CSV is byte-identical — all four systems,
// faults injected throughout.
TEST(SnapshotResume, ResumeFromEveryBoundaryIsByteIdentical) {
  const core::ConsolidationWorkload workload = make_workload();
  const core::RunOptions options = make_options();
  for (const SystemModel model : kModels) {
    SCOPED_TRACE(core::system_model_name(model));
    const std::string golden = results_artifact(
        {core::run_system(model, workload, options)},
        std::string("g_") + core::system_model_name(model));

    SnapshotPolicy policy;
    policy.every = 6 * kHour;
    policy.dir = fresh_dir(std::string("snap_resume_") +
                           core::system_model_name(model));
    auto continuous =
        core::run_system_snapshotted(model, workload, options, policy);
    ASSERT_TRUE(continuous.is_ok()) << continuous.status().to_string();
    const std::vector<std::string> boundaries = snapshot_files(policy.dir);
    ASSERT_GE(boundaries.size(), 3u);

    // Remember the continuous run's later snapshots: a resumed run rewrites
    // them and must reproduce the exact bytes (rolling state digests agree).
    std::vector<std::string> golden_snapshots;
    for (const std::string& file : boundaries) {
      golden_snapshots.push_back(read_file(file));
    }

    for (std::size_t i = 0; i < boundaries.size(); ++i) {
      SCOPED_TRACE("resume from " + boundaries[i]);
      SnapshotPolicy resume = policy;
      resume.resume_from = boundaries[i];
      auto resumed =
          core::run_system_snapshotted(model, workload, options, resume);
      ASSERT_TRUE(resumed.is_ok()) << resumed.status().to_string();
      EXPECT_EQ(golden,
                results_artifact({*resumed},
                                 std::string("r_") +
                                     core::system_model_name(model) +
                                     std::to_string(i)));
      // Divergence audit: every boundary after the resume point was
      // re-written; the bytes must match the continuous run's snapshots.
      for (std::size_t j = i + 1; j < boundaries.size(); ++j) {
        EXPECT_EQ(read_file(boundaries[j]), golden_snapshots[j])
            << "resumed run diverged by snapshot " << boundaries[j];
      }
    }
  }
}

TEST(SnapshotResume, ResumeIsByteIdenticalAcrossThreadCounts) {
  const core::ConsolidationWorkload workload = make_workload();
  const core::RunOptions options = make_options();
  const char* saved = std::getenv("DC_THREADS");
  const std::string saved_value = saved == nullptr ? "" : saved;

  auto run_matrix = [&](const char* threads) {
    setenv("DC_THREADS", threads, 1);
    // All four systems resumed concurrently on the sweep pool — the same
    // shape as a figure bench restarted after a crash.
    const std::vector<std::string> artifacts =
        parallel_map_index<std::string>(kModels.size(), [&](std::size_t i) {
          const SystemModel model = kModels[i];
          SnapshotPolicy policy;
          policy.every = 8 * kHour;
          policy.dir = fresh_dir(std::string("snap_threads_") + threads +
                                 core::system_model_name(model));
          auto first =
              core::run_system_snapshotted(model, workload, options, policy);
          EXPECT_TRUE(first.is_ok()) << first.status().to_string();
          const std::vector<std::string> files = snapshot_files(policy.dir);
          EXPECT_FALSE(files.empty());
          SnapshotPolicy resume = policy;
          resume.resume = true;  // newest valid snapshot
          auto resumed =
              core::run_system_snapshotted(model, workload, options, resume);
          EXPECT_TRUE(resumed.is_ok()) << resumed.status().to_string();
          return results_artifact({*resumed},
                                  std::string("t") + threads +
                                      core::system_model_name(model));
        });
    std::string all;
    for (const std::string& artifact : artifacts) all += artifact;
    return all;
  };

  const std::string single = run_matrix("1");
  const std::string pooled = run_matrix("4");
  if (saved == nullptr) {
    unsetenv("DC_THREADS");
  } else {
    setenv("DC_THREADS", saved_value.c_str(), 1);
  }
  EXPECT_EQ(single, pooled);
}

TEST(SnapshotResume, CorruptedSnapshotIsRejectedWithClearError) {
  const core::ConsolidationWorkload workload = make_workload();
  const core::RunOptions options = make_options();
  SnapshotPolicy policy;
  policy.every = 8 * kHour;
  policy.dir = fresh_dir("snap_corrupt");
  auto first = core::run_system_snapshotted(SystemModel::kDcs, workload,
                                            options, policy);
  ASSERT_TRUE(first.is_ok()) << first.status().to_string();
  std::vector<std::string> files = snapshot_files(policy.dir);
  ASSERT_GE(files.size(), 2u);

  // Flip one byte mid-stream: explicit resume_from must fail loudly.
  std::string bytes = read_file(files.back());
  bytes[bytes.size() / 2] ^= 0x20;
  {
    std::ofstream out(files.back(), std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  SnapshotPolicy resume = policy;
  resume.resume_from = files.back();
  auto rejected =
      core::run_system_snapshotted(SystemModel::kDcs, workload, options, resume);
  ASSERT_FALSE(rejected.is_ok());
  EXPECT_NE(rejected.status().message().find("corrupt"), std::string::npos)
      << rejected.status().message();

  // Auto-resume skips the corrupt newest file and falls back to the
  // previous valid boundary — and still reproduces the golden artifact.
  const std::string golden = results_artifact(
      {core::run_system(SystemModel::kDcs, workload, options)}, "corrupt_g");
  SnapshotPolicy fallback = policy;
  fallback.resume = true;
  auto resumed = core::run_system_snapshotted(SystemModel::kDcs, workload,
                                              options, fallback);
  ASSERT_TRUE(resumed.is_ok()) << resumed.status().to_string();
  EXPECT_EQ(golden, results_artifact({*resumed}, "corrupt_r"));

  // Truncation (the crash-mid-write shape, had writes not been atomic) is
  // rejected just as loudly.
  const std::string truncated_path = policy.dir + "/truncated.dcsnap";
  {
    std::ofstream out(truncated_path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 3));
  }
  SnapshotPolicy from_truncated = policy;
  from_truncated.resume_from = truncated_path;
  auto truncated = core::run_system_snapshotted(SystemModel::kDcs, workload,
                                                options, from_truncated);
  ASSERT_FALSE(truncated.is_ok());

  // When *every* candidate is corrupt, auto-resume refuses to silently
  // restart from scratch.
  for (const std::string& file : snapshot_files(policy.dir)) {
    std::string broken = read_file(file);
    broken[broken.size() / 2] ^= 0x20;
    std::ofstream out(file, std::ios::binary | std::ios::trunc);
    out.write(broken.data(), static_cast<std::streamsize>(broken.size()));
  }
  auto refused = core::run_system_snapshotted(SystemModel::kDcs, workload,
                                              options, fallback);
  ASSERT_FALSE(refused.is_ok());
  EXPECT_NE(refused.status().message().find("none verifies"),
            std::string::npos)
      << refused.status().message();
}

TEST(SnapshotResume, EmptyDirectoryStartsFresh) {
  const core::ConsolidationWorkload workload = make_workload();
  SnapshotPolicy policy;
  policy.dir = fresh_dir("snap_empty");
  policy.resume = true;
  auto result = core::run_system_snapshotted(SystemModel::kSsp, workload, {},
                                             policy);
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  const std::string golden = results_artifact(
      {core::run_system(SystemModel::kSsp, workload, {})}, "empty_g");
  EXPECT_EQ(golden, results_artifact({*result}, "empty_r"));
}

TEST(SnapshotResume, ModelMismatchedSnapshotIsRejected) {
  const core::ConsolidationWorkload workload = make_workload();
  SnapshotPolicy policy;
  policy.every = 12 * kHour;
  policy.dir = fresh_dir("snap_mismatch");
  auto dcs = core::run_system_snapshotted(SystemModel::kDcs, workload, {},
                                          policy);
  ASSERT_TRUE(dcs.is_ok());
  const std::vector<std::string> files = snapshot_files(policy.dir);
  ASSERT_FALSE(files.empty());
  SnapshotPolicy resume;
  resume.dir = policy.dir;
  resume.resume_from = files.front();
  auto rejected =
      core::run_system_snapshotted(SystemModel::kDrp, workload, {}, resume);
  ASSERT_FALSE(rejected.is_ok());
  EXPECT_NE(rejected.status().message().find("DCS"), std::string::npos);
  EXPECT_NE(rejected.status().message().find("DRP"), std::string::npos);
}

}  // namespace
}  // namespace dc
