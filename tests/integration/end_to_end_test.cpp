// Integration tests: whole-pipeline flows across module boundaries —
// file formats in and out, the emulator's time scaling, invariant sampling
// during live runs, and cross-system metric relations.
#include <gtest/gtest.h>

#include <cstdio>

#include "core/htc_server.hpp"
#include "core/job_emulator.hpp"
#include "core/mtc_server.hpp"
#include "core/paper.hpp"
#include "core/systems.hpp"
#include "sched/fcfs.hpp"
#include "sched/first_fit.hpp"
#include "workflow/montage.hpp"
#include "workflow/wff.hpp"
#include "workload/models.hpp"
#include "workload/swf.hpp"

namespace dc {
namespace {

TEST(EndToEnd, SwfFileRoundTripPreservesSystemResults) {
  // Generate -> write SWF -> read -> run; must equal the in-memory run.
  const workload::Trace original = workload::make_nasa_ipsc(99);
  const std::string path = ::testing::TempDir() + "/e2e.swf";
  ASSERT_TRUE(workload::write_swf_file(path, original.to_swf()).is_ok());
  auto swf = workload::read_swf_file(path);
  ASSERT_TRUE(swf.is_ok());
  auto loaded = workload::Trace::from_swf(*swf, "loaded");
  ASSERT_TRUE(loaded.is_ok());
  loaded->set_period(original.period());
  std::remove(path.c_str());

  core::HtcWorkloadSpec mem_spec;
  mem_spec.name = "w";
  mem_spec.trace = original;
  mem_spec.fixed_nodes = 128;
  core::HtcWorkloadSpec file_spec = mem_spec;
  file_spec.trace = *loaded;

  const auto mem = core::run_system(core::SystemModel::kDcs,
                                    core::single_htc_workload(mem_spec));
  const auto file = core::run_system(core::SystemModel::kDcs,
                                     core::single_htc_workload(file_spec));
  EXPECT_EQ(mem.provider("w").completed_jobs, file.provider("w").completed_jobs);
  EXPECT_EQ(mem.provider("w").consumption_node_hours,
            file.provider("w").consumption_node_hours);
  EXPECT_DOUBLE_EQ(mem.provider("w").mean_wait_seconds,
                   file.provider("w").mean_wait_seconds);
}

TEST(EndToEnd, WffFileRoundTripPreservesWorkflowExecution) {
  const workflow::Dag original = workflow::make_paper_montage(11);
  const std::string path = ::testing::TempDir() + "/e2e.wff";
  ASSERT_TRUE(workflow::write_wff_file(path, original).is_ok());
  auto loaded = workflow::read_wff_file(path);
  ASSERT_TRUE(loaded.is_ok());
  std::remove(path.c_str());

  auto run_makespan = [](const workflow::Dag& dag) {
    sim::Simulator sim;
    core::ResourceProvisionService provision(cluster::ResourcePool::unbounded());
    sched::FcfsScheduler fcfs;
    core::MtcServer::MtcConfig config;
    config.name = "wf";
    config.fixed_nodes = 166;
    config.scheduler = &fcfs;
    core::MtcServer server(sim, provision, std::move(config));
    sim.schedule_at(0, [&] {
      server.start();
      server.submit_workflow(dag);
    });
    sim.run_until(kDay);
    return server.makespan(kDay);
  };
  EXPECT_EQ(run_makespan(original), run_makespan(*loaded));
}

TEST(EndToEnd, JobEmulatorTimeScaleCompressesSubmissions) {
  // The paper's 100x emulation speedup: submit times and runtimes divide
  // by the factor.
  workload::Trace trace("t", 8,
                        {workload::TraceJob{1, 1000, 500, 2},
                         workload::TraceJob{2, 2000, 100, 1}});
  sim::Simulator sim;
  core::JobEmulator emulator(sim, /*time_scale=*/100.0);
  std::vector<std::pair<SimTime, SimDuration>> submissions;
  emulator.emulate_trace(trace, [&](const workload::TraceJob& job) {
    submissions.push_back({sim.now(), job.runtime});
  });
  sim.run();
  ASSERT_EQ(submissions.size(), 2u);
  EXPECT_EQ(submissions[0].first, 10);
  EXPECT_EQ(submissions[0].second, 5);
  EXPECT_EQ(submissions[1].first, 20);
  EXPECT_EQ(submissions[1].second, 1);
}

TEST(EndToEnd, ServerInvariantsHoldThroughoutALiveRun) {
  // Sample the elastic server every 10 minutes: busy <= owned, idle >= 0,
  // the provision service's allocation equals the server's holding, and
  // the held-usage recorder agrees.
  core::HtcWorkloadSpec spec = core::paper_nasa_spec(7);
  sim::Simulator sim;
  core::ResourceProvisionService provision(cluster::ResourcePool::unbounded());
  sched::FirstFitScheduler first_fit;
  core::HtcServer::Config config;
  config.name = "inv";
  config.policy = spec.policy;
  config.scheduler = &first_fit;
  core::HtcServer server(sim, provision, std::move(config));
  sim.schedule_at(0, [&] { server.start(); });
  core::JobEmulator emulator(sim);
  emulator.emulate_trace(spec.trace, [&](const workload::TraceJob& job) {
    server.submit(job.runtime, job.nodes);
  });
  const SimTime horizon = spec.trace.period();
  int violations = 0;
  for (SimTime t = 10 * kMinute; t <= horizon; t += 10 * kMinute) {
    sim.schedule_at(t, [&] {
      if (server.busy() > server.owned()) ++violations;
      if (server.idle() < 0) ++violations;
      if (provision.allocated() != server.owned()) ++violations;
      if (server.held_usage().current() != server.owned()) ++violations;
      if (server.dispatchable_idle() < 0) ++violations;
    });
  }
  sim.run_until(horizon);
  EXPECT_EQ(violations, 0);
}

TEST(EndToEnd, WaitTimesOrderAcrossSystems) {
  const auto workload =
      core::single_htc_workload(core::paper_blue_spec());
  const auto results = core::run_all_systems(workload);
  const auto& dcs = results[0].provider("BLUE");
  const auto& drp = results[2].provider("BLUE");
  const auto& dawning = results[3].provider("BLUE");
  EXPECT_DOUBLE_EQ(drp.mean_wait_seconds, 0.0)
      << "DRP runs everything immediately";
  EXPECT_EQ(drp.max_wait_seconds, 0);
  EXPECT_GT(dcs.mean_wait_seconds, 0.0)
      << "the loaded BLUE trace queues in the fixed system";
  EXPECT_GT(dawning.mean_wait_seconds, 0.0);
}

TEST(EndToEnd, ExactNeverExceedsBilledConsumption) {
  for (const auto& result :
       core::run_all_systems(core::paper_consolidation())) {
    for (const auto& provider : result.providers) {
      EXPECT_LE(provider.exact_node_hours,
                static_cast<double>(provider.consumption_node_hours) + 1e-6)
          << system_model_name(result.model) << "/" << provider.provider;
    }
  }
}

TEST(EndToEnd, SetupLatencyDelaysButDoesNotLoseJobs) {
  core::RunOptions options;
  options.setup_latency = 16;
  const auto workload = core::single_htc_workload(core::paper_nasa_spec());
  const auto with_setup =
      core::run_system(core::SystemModel::kDawningCloud, workload, options);
  const auto without =
      core::run_system(core::SystemModel::kDawningCloud, workload);
  EXPECT_EQ(with_setup.provider("NASA").completed_jobs,
            without.provider("NASA").completed_jobs);
  EXPECT_GE(with_setup.provider("NASA").mean_wait_seconds,
            without.provider("NASA").mean_wait_seconds);
}

}  // namespace
}  // namespace dc
