// Cross-system invariants, parameterized over trace seeds: relations that
// must hold between the four usage models on ANY workload, not just the
// calibrated paper one.
#include <gtest/gtest.h>

#include "core/paper.hpp"
#include "core/systems.hpp"
#include "metrics/report.hpp"
#include "workload/models.hpp"

namespace dc::core {
namespace {

class CrossSystem : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  static ConsolidationWorkload workload(std::uint64_t seed) {
    workload::SyntheticTraceSpec spec;
    spec.name = "x";
    spec.capacity_nodes = 40;
    spec.period = 3 * kDay;
    spec.submit_margin = 4 * kHour;
    spec.jobs_per_day = 180;
    spec.width_weights = {{1, 0.45}, {2, 0.25}, {4, 0.15}, {8, 0.1},
                          {40, 0.05}};
    spec.hyper_mean1 = 700;
    spec.hyper_mean2 = 4000;
    ConsolidationWorkload out;
    HtcWorkloadSpec htc;
    htc.name = "x";
    htc.trace = workload::generate_trace(spec, seed);
    htc.fixed_nodes = 40;
    htc.policy = ResourceManagementPolicy::htc(10, 1.5, 40);
    out.htc.push_back(std::move(htc));
    return out;
  }
};

TEST_P(CrossSystem, UniversalRelations) {
  const auto results = run_all_systems(workload(GetParam()));
  const auto& dcs = metrics::result_for(results, SystemModel::kDcs);
  const auto& ssp = metrics::result_for(results, SystemModel::kSsp);
  const auto& drp = metrics::result_for(results, SystemModel::kDrp);
  const auto& dawning = metrics::result_for(results, SystemModel::kDawningCloud);

  // DCS and SSP are mechanically identical.
  EXPECT_EQ(dcs.total_consumption_node_hours, ssp.total_consumption_node_hours);
  EXPECT_EQ(dcs.peak_nodes, ssp.peak_nodes);
  EXPECT_EQ(dcs.provider("x").completed_jobs, ssp.provider("x").completed_jobs);

  // Fixed systems' consumption is exactly size x period.
  EXPECT_EQ(dcs.provider("x").consumption_node_hours, 40 * 72);

  // DRP completes at least as many jobs as any queue-based system (no
  // queueing), with zero wait.
  EXPECT_GE(drp.provider("x").completed_jobs, dcs.provider("x").completed_jobs);
  EXPECT_GE(drp.provider("x").completed_jobs,
            dawning.provider("x").completed_jobs);
  EXPECT_DOUBLE_EQ(drp.provider("x").mean_wait_seconds, 0.0);

  // The subscription cap bounds DawningCloud's peak by the fixed size.
  EXPECT_LE(dawning.provider("x").peak_nodes, 40);
  EXPECT_LE(dawning.peak_nodes, dcs.peak_nodes);

  // DawningCloud can never exceed the fixed systems' consumption when
  // capped at their size (it holds a subset of the nodes at all times).
  EXPECT_LE(dawning.total_consumption_node_hours,
            dcs.total_consumption_node_hours);

  // Billing dominates the exact integral everywhere.
  for (const auto& result : results) {
    for (const auto& provider : result.providers) {
      EXPECT_LE(provider.exact_node_hours,
                static_cast<double>(provider.consumption_node_hours) + 1e-6);
    }
    // The hourly series' maximum is the reported peak.
    std::int64_t series_max = 0;
    for (std::int64_t level : result.hourly_peak_series) {
      series_max = std::max(series_max, level);
    }
    EXPECT_EQ(series_max, result.peak_nodes)
        << system_model_name(result.model);
  }

  // Adjustment accounting: DCS has none; SSP exactly startup+teardown.
  EXPECT_EQ(dcs.adjusted_nodes, 0);
  EXPECT_EQ(ssp.adjusted_nodes, 2 * 40);
  EXPECT_GE(drp.adjusted_nodes, dawning.adjusted_nodes);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrossSystem,
                         ::testing::Values(31u, 32u, 33u, 34u, 35u));

}  // namespace
}  // namespace dc::core
