#include "metrics/report.hpp"

#include <gtest/gtest.h>

namespace dc::metrics {
namespace {

using core::ProviderResult;
using core::SystemModel;
using core::SystemResult;

std::vector<SystemResult> fake_results() {
  std::vector<SystemResult> results;
  const SystemModel models[] = {SystemModel::kDcs, SystemModel::kSsp,
                                SystemModel::kDrp, SystemModel::kDawningCloud};
  const std::int64_t consumptions[] = {1000, 1000, 1258, 675};
  for (int i = 0; i < 4; ++i) {
    SystemResult result;
    result.model = models[i];
    result.horizon = 336 * kHour;
    ProviderResult provider;
    provider.provider = "P";
    provider.completed_jobs = 100;
    provider.consumption_node_hours = consumptions[i];
    provider.tasks_per_second = 2.5;
    result.providers.push_back(provider);
    result.total_consumption_node_hours = consumptions[i];
    result.peak_nodes = 100 + i;
    result.adjusted_nodes = 10 * i;
    result.overhead_seconds = 157.43 * i;
    result.failure_events = 5;
    result.nodes_failed = 12;
    result.nodes_repaired = 12;
    result.jobs_killed = 3 + i;
    result.jobs_failed = i;
    result.goodput_node_hours = 900.0;
    result.wasted_node_hours = 12.5;
    result.availability = 0.9987;
    results.push_back(result);
  }
  return results;
}

TEST(SavedPercent, MatchesPaperConvention) {
  EXPECT_DOUBLE_EQ(saved_percent(1000, 675), 32.5);
  EXPECT_DOUBLE_EQ(saved_percent(1000, 1258), -25.8);
  EXPECT_DOUBLE_EQ(saved_percent(1000, 1000), 0.0);
  EXPECT_DOUBLE_EQ(saved_percent(0, 50), 0.0);
}

TEST(ResultFor, FindsModel) {
  const auto results = fake_results();
  EXPECT_EQ(result_for(results, SystemModel::kDrp).model, SystemModel::kDrp);
}

TEST(HtcTable, ContainsRowsAndSavedPercentages) {
  const std::string out =
      format_htc_provider_table(fake_results(), "P", "Table X");
  EXPECT_NE(out.find("Table X"), std::string::npos);
  EXPECT_NE(out.find("DCS system"), std::string::npos);
  EXPECT_NE(out.find("DawningCloud system"), std::string::npos);
  EXPECT_NE(out.find("32.5%"), std::string::npos);
  EXPECT_NE(out.find("-25.8%"), std::string::npos);
  EXPECT_NE(out.find("/"), std::string::npos) << "DCS row shows '/' baseline";
}

TEST(MtcTable, ShowsTasksPerSecond) {
  const std::string out = format_mtc_provider_table(fake_results(), "P", "T");
  EXPECT_NE(out.find("2.50"), std::string::npos);
  EXPECT_NE(out.find("tasks per second"), std::string::npos);
}

TEST(ProviderReport, ShowsTotalsAndRatios) {
  const std::string out = format_resource_provider_report(fake_results());
  EXPECT_NE(out.find("1258"), std::string::npos);
  EXPECT_NE(out.find("1.03x"), std::string::npos);  // 103/100 peak ratio
}

TEST(OverheadReport, ShowsAdjustments) {
  const std::string out = format_overhead_report(fake_results());
  EXPECT_NE(out.find("30"), std::string::npos);
  EXPECT_NE(out.find("15.743"), std::string::npos);
}

TEST(AvailabilityReport, ShowsLifecycleCountsAndAvailability) {
  const std::string out = format_availability_report(fake_results());
  EXPECT_NE(out.find("availability"), std::string::npos);
  EXPECT_NE(out.find("5 / 12"), std::string::npos)
      << "failure events / nodes failed";
  EXPECT_NE(out.find("99.8700%"), std::string::npos);
  EXPECT_NE(out.find("900.0"), std::string::npos) << "goodput node*hours";
  EXPECT_NE(out.find("12.5"), std::string::npos) << "wasted node*hours";
  EXPECT_NE(out.find("DawningCloud"), std::string::npos);
}

TEST(ModelComparisonTable, MatchesPaperTable1) {
  const std::string out = format_model_comparison_table();
  EXPECT_NE(out.find("resource property"), std::string::npos);
  EXPECT_NE(out.find("created on the demand"), std::string::npos);
  EXPECT_NE(out.find("no offering"), std::string::npos);
  EXPECT_NE(out.find("stereotyped"), std::string::npos);
  EXPECT_NE(out.find("flexible"), std::string::npos);
}

TEST(ResultsCsv, WritesOneRowPerSystemProvider) {
  const std::string path = ::testing::TempDir() + "/results.csv";
  {
    CsvWriter csv(path);
    write_results_csv(csv, fake_results());
  }
  std::ifstream in(path);
  std::string line;
  int lines = 0;
  while (std::getline(in, line)) ++lines;
  EXPECT_EQ(lines, 1 + 4);  // header + 4 system-provider rows
  std::remove(path.c_str());
}

}  // namespace
}  // namespace dc::metrics
