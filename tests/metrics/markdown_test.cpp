#include "metrics/markdown.hpp"

#include <gtest/gtest.h>

namespace dc::metrics {
namespace {

using core::ProviderResult;
using core::SystemModel;
using core::SystemResult;

std::vector<SystemResult> fake_results() {
  std::vector<SystemResult> results;
  const SystemModel models[] = {SystemModel::kDcs, SystemModel::kSsp,
                                SystemModel::kDrp, SystemModel::kDawningCloud};
  const std::int64_t consumptions[] = {1000, 1000, 1258, 675};
  for (int i = 0; i < 4; ++i) {
    SystemResult result;
    result.model = models[i];
    ProviderResult provider;
    provider.provider = "P";
    provider.completed_jobs = 42;
    provider.tasks_per_second = 2.49;
    provider.consumption_node_hours = consumptions[i];
    result.providers.push_back(provider);
    results.push_back(result);
  }
  return results;
}

TEST(MarkdownTable, BasicStructure) {
  const std::string out =
      markdown_table({"a", "b"}, {{"1", "2"}, {"3", "4"}});
  EXPECT_EQ(out, "| a | b |\n|---|---|\n| 1 | 2 |\n| 3 | 4 |\n");
}

TEST(MarkdownTable, EscapesPipes) {
  const std::string out = markdown_table({"h"}, {{"a|b"}});
  EXPECT_NE(out.find("a\\|b"), std::string::npos);
}

TEST(MarkdownHtcTable, HasBaselineDashAndSavedPercent) {
  const std::string out = markdown_htc_provider_table(fake_results(), "P");
  EXPECT_NE(out.find("| DCS | 42 | 1000 | — |"), std::string::npos);
  EXPECT_NE(out.find("32.5%"), std::string::npos);
  EXPECT_NE(out.find("-25.8%"), std::string::npos);
}

TEST(MarkdownMtcTable, ShowsTasksPerSecond) {
  const std::string out = markdown_mtc_provider_table(fake_results(), "P");
  EXPECT_NE(out.find("2.49"), std::string::npos);
  EXPECT_NE(out.find("tasks/s"), std::string::npos);
}

}  // namespace
}  // namespace dc::metrics
