// The `dc report` engine: filtering is exact and AND-ed, every render
// format is a pure byte-stable function of (records, query), a typo'd
// --select is an error rather than an all-dash column, and comparison
// emits per-metric deltas with a first-divergence pointer.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "rundb/report.hpp"
#include "rundb/store.hpp"

namespace dc {
namespace {

std::vector<rundb::RunRecord> sample_records() {
  rundb::RunRecord a;
  a.kind = "run";
  a.source = "exp.dcfg";
  a.label = "DCS/NASA";
  a.params = {{"system", "DCS"}, {"quantum", "15m"}};
  a.metrics = {{"completed", 100.0}, {"makespan_seconds", 5000.0}};
  a.trace_events = 10;
  a.trace_digest = "aaaa";

  rundb::RunRecord b = a;
  b.label = "DCS/BLUE";
  b.params = {{"system", "DCS"}, {"quantum", "1h"}};
  b.metrics = {{"completed", 80.0}, {"makespan_seconds", 6000.0}};
  b.trace_digest = "bbbb";

  rundb::RunRecord c;
  c.kind = "campaign-cell";
  c.source = "campaign:0123456789abcdef";
  c.label = "cell-000000/DCS/NASA";
  c.params = {{"cell", "0"}, {"system", "DCS"}};
  c.metrics = {{"completed", 100.0}};
  return {a, b, c};
}

TEST(Report, FiltersAreExactAndAnded) {
  const auto records = sample_records();
  rundb::ReportQuery query;
  query.kind = "run";
  EXPECT_EQ(rundb::filter_records(records, query).size(), 2u);
  query.filters = {{"quantum", "15m"}};
  const auto kept = rundb::filter_records(records, query);
  ASSERT_EQ(kept.size(), 1u);
  EXPECT_EQ(kept[0].label, "DCS/NASA");
  query.filters.emplace_back("system", "SSP");
  EXPECT_TRUE(rundb::filter_records(records, query).empty());
}

TEST(Report, RenderIsByteStableAcrossCalls) {
  const auto records = sample_records();
  for (const auto format : {rundb::ReportFormat::kTable,
                            rundb::ReportFormat::kCsv,
                            rundb::ReportFormat::kJson}) {
    rundb::ReportQuery query;
    query.format = format;
    auto first = rundb::render_report(records, query);
    auto second = rundb::render_report(records, query);
    ASSERT_TRUE(first.is_ok());
    ASSERT_TRUE(second.is_ok());
    EXPECT_EQ(*first, *second);
    EXPECT_FALSE(first->empty());
  }
}

TEST(Report, CsvProjectsSelectedMetricsInOrder) {
  const auto records = sample_records();
  rundb::ReportQuery query;
  query.format = rundb::ReportFormat::kCsv;
  query.select = {"makespan_seconds", "completed"};
  auto rendered = rundb::render_report(records, query);
  ASSERT_TRUE(rendered.is_ok()) << rendered.status().to_string();
  EXPECT_EQ(rendered->substr(0, rendered->find('\n')),
            "kind,label,system,quantum,cell,makespan_seconds,completed");
  // The campaign cell has no makespan: an empty CSV cell, never a zero.
  EXPECT_NE(rendered->find("campaign-cell,cell-000000/DCS/NASA,DCS,,0,,100"),
            std::string::npos)
      << *rendered;
}

TEST(Report, UnknownSelectedMetricIsAnError) {
  const auto records = sample_records();
  rundb::ReportQuery query;
  query.select = {"no_such_metric"};
  auto rendered = rundb::render_report(records, query);
  ASSERT_FALSE(rendered.is_ok());
  EXPECT_NE(rendered.status().message().find("no_such_metric"),
            std::string::npos);
}

TEST(Report, EmptyRecordSetRendersInEveryFormat) {
  for (const auto format : {rundb::ReportFormat::kTable,
                            rundb::ReportFormat::kCsv,
                            rundb::ReportFormat::kJson}) {
    rundb::ReportQuery query;
    query.format = format;
    auto rendered = rundb::render_report({}, query);
    ASSERT_TRUE(rendered.is_ok()) << rendered.status().to_string();
  }
}

TEST(Report, ParseFormatRejectsUnknownNames) {
  EXPECT_TRUE(rundb::parse_report_format("table").is_ok());
  EXPECT_TRUE(rundb::parse_report_format("csv").is_ok());
  EXPECT_TRUE(rundb::parse_report_format("json").is_ok());
  EXPECT_FALSE(rundb::parse_report_format("yaml").is_ok());
}

TEST(Report, ComparisonReportsDeltasAndFirstDivergence) {
  auto a = sample_records();
  a.resize(2);  // the two "run" records
  auto b = a;
  b[1].metrics[0].second = 90.0;  // DCS/BLUE completed: 80 -> 90

  std::size_t differing = 0;
  auto rendered =
      rundb::render_comparison(a, b, {}, "left", "right", &differing);
  ASSERT_TRUE(rendered.is_ok()) << rendered.status().to_string();
  EXPECT_EQ(differing, 1u);
  EXPECT_NE(rendered->find("first divergence: label DCS/BLUE, completed"),
            std::string::npos)
      << *rendered;
  EXPECT_NE(rendered->find("replay bisect"), std::string::npos);
  EXPECT_NE(rendered->find("+12.500%"), std::string::npos) << *rendered;
}

TEST(Report, ComparisonOfIdenticalSetsReportsNoDivergence) {
  auto a = sample_records();
  std::size_t differing = 99;
  auto rendered = rundb::render_comparison(a, a, {}, "a", "b", &differing);
  ASSERT_TRUE(rendered.is_ok());
  EXPECT_EQ(differing, 0u);
  EXPECT_NE(rendered->find("no divergence"), std::string::npos);
}

TEST(Report, ComparisonFlagsTraceDigestDivergenceWhenMetricsAgree) {
  auto a = sample_records();
  a.resize(1);
  auto b = a;
  b[0].trace_digest = "ffff";  // same metrics, different event stream
  std::size_t differing = 0;
  auto rendered =
      rundb::render_comparison(a, b, {}, "left", "right", &differing);
  ASSERT_TRUE(rendered.is_ok());
  EXPECT_EQ(differing, 1u);
  EXPECT_NE(rendered->find("trace digest"), std::string::npos) << *rendered;
}

TEST(Report, ComparisonCallsOutUnmatchedLabels) {
  auto a = sample_records();
  std::vector<rundb::RunRecord> b = {a[0]};
  std::size_t differing = 0;
  auto rendered =
      rundb::render_comparison(a, b, {}, "left", "right", &differing);
  ASSERT_TRUE(rendered.is_ok());
  EXPECT_NE(rendered->find("only in left: DCS/BLUE cell-000000/DCS/NASA"),
            std::string::npos)
      << *rendered;
}

}  // namespace
}  // namespace dc
