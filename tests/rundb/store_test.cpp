// The run store's durability contract: canonical encoding round-trips,
// content-addressed dedup makes appends idempotent and byte-stable, torn
// tails are dropped loudly while mid-stream corruption refuses, and the
// derived index is pinned to the exact store bytes it indexes.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "metrics/report.hpp"
#include "rundb/store.hpp"
#include "util/csv.hpp"
#include "util/fsio.hpp"

namespace dc {
namespace {

namespace fs = std::filesystem;

rundb::RunRecord sample_record(const std::string& label, double value) {
  rundb::RunRecord record;
  record.kind = "run";
  record.source = "tests/sample.dcfg";
  record.label = label;
  record.params = {{"system", "dcs"}, {"quantum", "15m"}};
  record.metrics = {{"completed", value}, {"makespan_seconds", 2 * value}};
  record.trace_events = 42;
  record.trace_dropped = 1;
  record.trace_digest = "00c0ffee00c0ffee";
  return record;
}

std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "rundb_" + name;
  fs::remove_all(dir);
  return dir;
}

TEST(RunStore, RecordRoundTripsThroughItsEncoding) {
  const rundb::RunRecord record = sample_record("DCS/NASA", 7.5);
  auto decoded = rundb::decode_run_record(rundb::encode_run_record(record));
  ASSERT_TRUE(decoded.is_ok()) << decoded.status().to_string();
  EXPECT_EQ(decoded->kind, record.kind);
  EXPECT_EQ(decoded->source, record.source);
  EXPECT_EQ(decoded->label, record.label);
  EXPECT_EQ(decoded->params, record.params);
  EXPECT_EQ(decoded->metrics, record.metrics);
  EXPECT_EQ(decoded->trace_events, record.trace_events);
  EXPECT_EQ(decoded->trace_dropped, record.trace_dropped);
  EXPECT_EQ(decoded->trace_digest, record.trace_digest);
  EXPECT_EQ(decoded->run_id(), record.run_id());
}

TEST(RunStore, RunIdIsContentSensitive) {
  const rundb::RunRecord a = sample_record("DCS/NASA", 7.5);
  rundb::RunRecord b = a;
  EXPECT_EQ(a.run_id(), b.run_id());
  b.metrics[0].second += 1.0;
  EXPECT_NE(a.run_id(), b.run_id());
  rundb::RunRecord c = a;
  c.params.emplace_back("queue", "calendar");
  EXPECT_NE(a.run_id(), c.run_id());
}

TEST(RunStore, AppendIsIdempotentAndByteStable) {
  const std::string dir = fresh_dir("idempotent");
  const std::vector<rundb::RunRecord> records = {
      sample_record("DCS/NASA", 7.5), sample_record("DCS/BLUE", 3.25)};

  auto first = rundb::append_records(dir, records);
  ASSERT_TRUE(first.is_ok()) << first.status().to_string();
  EXPECT_EQ(*first, 2u);
  auto bytes_after_first = read_file(rundb::store_data_path(dir));
  ASSERT_TRUE(bytes_after_first.is_ok());

  // Registering the same content again appends nothing and leaves the
  // store (and its index) byte-identical — the interrupted==uninterrupted
  // contract for registration.
  auto second = rundb::append_records(dir, records);
  ASSERT_TRUE(second.is_ok()) << second.status().to_string();
  EXPECT_EQ(*second, 0u);
  auto bytes_after_second = read_file(rundb::store_data_path(dir));
  ASSERT_TRUE(bytes_after_second.is_ok());
  EXPECT_EQ(*bytes_after_first, *bytes_after_second);
  EXPECT_TRUE(rundb::verify_store_index(dir).is_ok());

  auto loaded = rundb::load_store(dir);
  ASSERT_TRUE(loaded.is_ok());
  ASSERT_EQ(loaded->records.size(), 2u);
  EXPECT_EQ(loaded->records[0].label, "DCS/NASA");
  EXPECT_EQ(loaded->records[1].label, "DCS/BLUE");
  EXPECT_FALSE(loaded->truncated_tail);
}

TEST(RunStore, LoadingAMissingStoreIsEmptyNotAnError) {
  auto loaded = rundb::load_store(fresh_dir("missing"));
  ASSERT_TRUE(loaded.is_ok()) << loaded.status().to_string();
  EXPECT_TRUE(loaded->records.empty());
}

TEST(RunStore, TornTrailingFrameIsDroppedAndReported) {
  const std::string dir = fresh_dir("torn");
  auto appended = rundb::append_records(
      dir, {sample_record("DCS/NASA", 7.5), sample_record("DCS/BLUE", 3.25)});
  ASSERT_TRUE(appended.is_ok());

  auto bytes = read_file(rundb::store_data_path(dir));
  ASSERT_TRUE(bytes.is_ok());
  const std::string torn = bytes->substr(0, bytes->size() - 5);
  auto parsed = rundb::parse_store(torn, "torn-store");
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  EXPECT_EQ(parsed->records.size(), 1u);
  EXPECT_TRUE(parsed->truncated_tail);
}

TEST(RunStore, MidStreamCorruptionIsRefusedWithATypedError) {
  const std::string dir = fresh_dir("corrupt");
  auto appended = rundb::append_records(
      dir, {sample_record("DCS/NASA", 7.5), sample_record("DCS/BLUE", 3.25)});
  ASSERT_TRUE(appended.is_ok());

  auto bytes = read_file(rundb::store_data_path(dir));
  ASSERT_TRUE(bytes.is_ok());
  std::string corrupt = *bytes;
  corrupt[10] ^= 0x5a;  // inside the first frame's payload
  auto parsed = rundb::parse_store(corrupt, "corrupt-store");
  ASSERT_FALSE(parsed.is_ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(parsed.status().message().find("corrupt"), std::string::npos)
      << parsed.status().message();
}

TEST(RunStore, IndexIsPinnedToTheStoreBytes) {
  const std::string dir = fresh_dir("index");
  ASSERT_TRUE(
      rundb::append_records(dir, {sample_record("DCS/NASA", 7.5)}).is_ok());
  EXPECT_TRUE(rundb::verify_store_index(dir).is_ok());

  // Keep the old index around, append, put the old index back: it now
  // pins different bytes and must be reported stale, not used.
  auto stale_index = read_file(rundb::store_index_path(dir));
  ASSERT_TRUE(stale_index.is_ok());
  ASSERT_TRUE(
      rundb::append_records(dir, {sample_record("DCS/BLUE", 3.25)}).is_ok());
  EXPECT_TRUE(rundb::verify_store_index(dir).is_ok());
  ASSERT_TRUE(atomic_write_file(rundb::store_index_path(dir), *stale_index,
                                "test.stale_index")
                  .is_ok());
  Status stale = rundb::verify_store_index(dir);
  ASSERT_FALSE(stale.is_ok());
  EXPECT_EQ(stale.code(), StatusCode::kFailedPrecondition);

  fs::remove(rundb::store_index_path(dir));
  Status missing = rundb::verify_store_index(dir);
  ASSERT_FALSE(missing.is_ok());
  EXPECT_EQ(missing.code(), StatusCode::kNotFound);
}

TEST(RunStore, IndexEntriesLocateEveryFrame) {
  const std::string dir = fresh_dir("entries");
  const std::vector<rundb::RunRecord> records = {
      sample_record("DCS/NASA", 7.5), sample_record("DCS/BLUE", 3.25)};
  ASSERT_TRUE(rundb::append_records(dir, records).is_ok());

  auto bytes = read_file(rundb::store_data_path(dir));
  ASSERT_TRUE(bytes.is_ok());
  auto index_bytes = read_file(rundb::store_index_path(dir));
  ASSERT_TRUE(index_bytes.is_ok());
  auto index = rundb::parse_store_index(*index_bytes, "index");
  ASSERT_TRUE(index.is_ok()) << index.status().to_string();
  ASSERT_EQ(index->entries.size(), 2u);
  EXPECT_EQ(index->store_bytes, bytes->size());
  for (std::size_t i = 0; i < index->entries.size(); ++i) {
    const auto& entry = index->entries[i];
    EXPECT_EQ(entry.run_id, records[i].run_id()) << "entry " << i;
    EXPECT_EQ(entry.label, records[i].label) << "entry " << i;
    // The (offset, length) pair frames a decodable record payload.
    ASSERT_LE(entry.offset + 4 + entry.length, bytes->size());
    const std::string payload =
        bytes->substr(entry.offset + 4, entry.length);
    auto decoded = rundb::decode_run_record(payload);
    ASSERT_TRUE(decoded.is_ok()) << decoded.status().to_string();
    EXPECT_EQ(decoded->run_id(), records[i].run_id());
  }
}

// The run store's metric vocabulary and the results CSV are the same
// contract: provider_metrics must name exactly the numeric columns of
// metrics::write_results_csv, in column order. A drift here would make
// `dc report` and the CSV artifacts disagree about what a metric means.
TEST(RunStore, ProviderMetricNamesMatchTheResultsCsvHeader) {
  core::SystemResult result;
  result.model = core::SystemModel::kDcs;
  core::ProviderResult provider;
  provider.provider = "NASA";
  provider.type = core::WorkloadType::kHtc;
  result.providers.push_back(provider);

  const std::string path = ::testing::TempDir() + "rundb_header.csv";
  {
    CsvWriter csv(path);
    ASSERT_TRUE(csv.ok());
    metrics::write_results_csv(csv, {result});
  }
  auto rows = read_csv_file(path);
  ASSERT_TRUE(rows.is_ok()) << rows.status().to_string();
  ASSERT_GE(rows->size(), 2u);
  const std::vector<std::string>& header = (*rows)[0];

  const auto metric_pairs = rundb::provider_metrics(result, provider);
  std::vector<std::string> expected = {"system", "provider", "type"};
  for (const auto& [name, value] : metric_pairs) expected.push_back(name);
  EXPECT_EQ(header, expected);
}

TEST(RunStore, MakeRunRecordsCarriesIdentityParamsAndTrace) {
  core::SystemResult result;
  result.model = core::SystemModel::kSsp;
  core::ProviderResult htc;
  htc.provider = "NASA";
  htc.type = core::WorkloadType::kHtc;
  core::ProviderResult mtc;
  mtc.provider = "Montage";
  mtc.type = core::WorkloadType::kMtc;
  result.providers = {htc, mtc};

  const auto records = rundb::make_run_records(
      "tests/sample.dcfg", result, {{"quantum", "15m"}}, 99, 3, "deadbeef");
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].kind, "run");
  EXPECT_EQ(records[0].source, "tests/sample.dcfg");
  EXPECT_EQ(records[0].label, "SSP/NASA");
  EXPECT_EQ(records[1].label, "SSP/Montage");
  EXPECT_EQ(records[0].param("quantum"), "15m");
  EXPECT_EQ(records[0].param("system"), "SSP");
  EXPECT_EQ(records[0].param("provider"), "NASA");
  EXPECT_EQ(records[0].param("type"), "HTC");
  EXPECT_EQ(records[1].param("type"), "MTC");
  EXPECT_EQ(records[0].trace_events, 99u);
  EXPECT_EQ(records[0].trace_dropped, 3u);
  EXPECT_EQ(records[0].trace_digest, "deadbeef");
  EXPECT_EQ(records[0].metrics.size(),
            rundb::provider_metrics(result, htc).size());
}

}  // namespace
}  // namespace dc
