// Time-travel analysis acceptance bar (docs/OBSERVABILITY.md):
//
//  * replaying any snapshot boundary of a faulted run reproduces the
//    golden trace slice of that window byte-for-byte — under a different
//    sweep-pool thread count than the run that wrote the snapshots;
//  * the divergence bisector localizes a seeded divergence to the single
//    snapshot interval where it was planted, and (given trace exports)
//    to one trace record;
//  * empty or header-only traces are a typed diagnostic, never a vacuous
//    no-divergence verdict.
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/system_runner.hpp"
#include "core/systems.hpp"
#include "obs/trace.hpp"
#include "rundb/replay.hpp"
#include "util/fsio.hpp"
#include "workflow/montage.hpp"
#include "workload/models.hpp"

namespace dc {
namespace {

namespace fs = std::filesystem;
using core::SnapshotPolicy;
using core::SystemModel;

core::ConsolidationWorkload make_workload() {
  workload::SyntheticTraceSpec trace_spec;
  trace_spec.name = "replay";
  trace_spec.capacity_nodes = 24;
  trace_spec.period = kDay;
  trace_spec.submit_margin = 2 * kHour;
  trace_spec.jobs_per_day = 120;
  trace_spec.width_weights = {{1, 0.5}, {2, 0.25}, {4, 0.15}, {8, 0.1}};
  trace_spec.hyper_p = 0.9;
  trace_spec.hyper_mean1 = 400;
  trace_spec.hyper_mean2 = 3000;

  core::HtcWorkloadSpec htc;
  htc.name = "replay";
  htc.trace = workload::generate_trace(trace_spec, /*seed=*/17);
  htc.fixed_nodes = 24;
  htc.policy = core::ResourceManagementPolicy::htc(6, 1.5, 24);

  workflow::MontageParams params;
  params.inputs = 12;
  core::MtcWorkloadSpec mtc;
  mtc.name = "wf";
  mtc.dag = workflow::make_montage(params, /*seed=*/3);
  mtc.submit_time = 4 * kHour;
  mtc.fixed_nodes = 12;
  mtc.policy = core::ResourceManagementPolicy::mtc(4, 8.0);

  core::ConsolidationWorkload workload;
  workload.htc.push_back(std::move(htc));
  workload.mtc.push_back(std::move(mtc));
  return workload;
}

core::RunOptions fault_options() {
  core::RunOptions options;
  core::fault::FaultDomain::Config faults;
  faults.mean_time_between_failures = 4 * kHour;
  faults.mean_time_to_repair = 30 * kMinute;
  faults.seed = 20090814;
  options.faults = faults;
  return options;
}

std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "rundb_replay_" + name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

/// Runs `model` traced + snapshotted (6h cadence) under DC_THREADS=1 and
/// returns the golden trace exports.
struct GoldenRun {
  std::string csv;
  std::string chrome_json;
};

GoldenRun golden_snapshotted_run(SystemModel model,
                                 const core::ConsolidationWorkload& workload,
                                 const std::string& dir,
                                 core::RunOptions options,
                                 SimDuration every = 6 * kHour) {
  obs::TraceSink sink;
  options.trace = &sink;
  SnapshotPolicy policy;
  policy.every = every;
  policy.dir = dir;
  auto result = core::run_system_snapshotted(model, workload, options, policy);
  EXPECT_TRUE(result.is_ok()) << result.status().to_string();
  EXPECT_EQ(sink.dropped(), 0u) << "golden run must not drop events";
  return {sink.csv(), sink.chrome_json()};
}

struct ScopedThreads {
  explicit ScopedThreads(const char* value) {
    const char* current = std::getenv("DC_THREADS");
    had_ = current != nullptr;
    if (had_) saved_ = current;
    setenv("DC_THREADS", value, 1);
  }
  ~ScopedThreads() {
    if (had_) setenv("DC_THREADS", saved_.c_str(), 1);
    else unsetenv("DC_THREADS");
  }
  bool had_ = false;
  std::string saved_;
};

// The tentpole guarantee: for EVERY snapshot boundary of a faulted,
// traced run recorded under DC_THREADS=1, replaying the window to the
// next boundary under DC_THREADS=4 reproduces exactly the golden trace
// rows whose emission instant falls inside the window — byte for byte.
TEST(ReplayWindow, EveryBoundaryReplaysTheGoldenSliceByteForByte) {
  const core::ConsolidationWorkload workload = make_workload();
  for (const SystemModel model :
       {SystemModel::kDcs, SystemModel::kDawningCloud}) {
    SCOPED_TRACE(core::system_model_name(model));
    const std::string dir =
        fresh_dir(std::string("slice_") + core::system_model_name(model));
    GoldenRun golden;
    {
      ScopedThreads threads("1");
      golden = golden_snapshotted_run(model, workload, dir, fault_options());
    }
    auto boundaries = rundb::list_snapshot_boundaries(dir, model);
    ASSERT_TRUE(boundaries.is_ok()) << boundaries.status().to_string();
    ASSERT_GE(boundaries->size(), 2u);

    ScopedThreads threads("4");
    for (std::size_t i = 0; i < boundaries->size(); ++i) {
      const SimTime until =
          i + 1 < boundaries->size() ? (*boundaries)[i + 1].time : 0;
      auto window = rundb::replay_window(model, workload, fault_options(),
                                         (*boundaries)[i].path, until);
      ASSERT_TRUE(window.is_ok())
          << "boundary " << i << ": " << window.status().to_string();
      EXPECT_EQ(window->start, (*boundaries)[i].time);
      EXPECT_EQ(window->dropped, 0u);
      EXPECT_EQ(window->csv,
                rundb::slice_trace_csv(golden.csv, window->start, window->end))
          << "boundary t=" << (*boundaries)[i].time;
    }
  }
}

TEST(ReplayWindow, RefusesAWindowEndingBeforeItsSnapshot) {
  const core::ConsolidationWorkload workload = make_workload();
  const std::string dir = fresh_dir("backwards");
  golden_snapshotted_run(SystemModel::kDcs, workload, dir, fault_options());
  auto boundaries = rundb::list_snapshot_boundaries(dir, SystemModel::kDcs);
  ASSERT_TRUE(boundaries.is_ok());
  ASSERT_GE(boundaries->size(), 2u);
  auto window =
      rundb::replay_window(SystemModel::kDcs, workload, fault_options(),
                           boundaries->back().path, (*boundaries)[0].time);
  ASSERT_FALSE(window.is_ok());
  EXPECT_NE(window.status().message().find("forward"), std::string::npos)
      << window.status().message();
}

TEST(ReplayWindow, ListingAMissingDirectoryIsATypedError) {
  auto boundaries = rundb::list_snapshot_boundaries(
      ::testing::TempDir() + "rundb_replay_nowhere", SystemModel::kDcs);
  ASSERT_FALSE(boundaries.is_ok());
  EXPECT_EQ(boundaries.status().code(), StatusCode::kNotFound);
}

TEST(SliceTraceCsv, KeepsHeaderAndEmissionOrderSemantics) {
  const std::string csv =
      "time,category,phase,name,actor,dur,a0,a1\n"
      "5,job,instant,job.submit,A,0,1,0\n"
      "4,job,span,job.run,A,3,1,0\n"   // span: emitted at 4+3=7
      "10,job,instant,job.complete,A,0,1,0\n";
  // Window (5, 8]: keeps the span emitted at 7, drops the instant at 5
  // (windows are left-open at the snapshot instant) and the one at 10.
  EXPECT_EQ(rundb::slice_trace_csv(csv, 5, 8),
            "time,category,phase,name,actor,dur,a0,a1\n"
            "4,job,span,job.run,A,3,1,0\n");
  // The full range reproduces every row.
  EXPECT_EQ(rundb::slice_trace_csv(csv, -1, 100), csv);
}

/// Writes `text` to `<dir>/<name>` and returns the path.
std::string write_text(const std::string& dir, const std::string& name,
                       const std::string& text) {
  const std::string path = dir + "/" + name;
  std::ofstream out(path);
  out << text;
  return path;
}

// Seed a divergence at a known boundary: dirB is a byte-copy of golden
// dirA up to boundary K, and a genuinely different run (other scheduler)
// from K on. The bisector must localize the first divergence to exactly
// the interval (K-1, K] — probing O(log n) boundaries, not all of them —
// and, given the trace exports, to one trace record.
TEST(Bisect, LocalizesASeededDivergenceToOneIntervalAndTraceRecord) {
  const core::ConsolidationWorkload workload = make_workload();
  const SystemModel model = SystemModel::kDcs;
  const std::string dir_a = fresh_dir("seed_a");
  const std::string dir_c = fresh_dir("seed_c");
  // A 2h cadence over the 24h horizon leaves enough interior boundaries
  // for the binary search to actually skip probes.
  const GoldenRun golden = golden_snapshotted_run(
      model, workload, dir_a, fault_options(), 2 * kHour);
  core::RunOptions mutated = fault_options();
  mutated.faults->seed += 1;  // a different fault schedule from the first hit
  const GoldenRun other =
      golden_snapshotted_run(model, workload, dir_c, mutated, 2 * kHour);

  auto boundaries_a = rundb::list_snapshot_boundaries(dir_a, model);
  ASSERT_TRUE(boundaries_a.is_ok());
  auto boundaries_c = rundb::list_snapshot_boundaries(dir_c, model);
  ASSERT_TRUE(boundaries_c.is_ok());
  const std::size_t n = std::min(boundaries_a->size(), boundaries_c->size());
  ASSERT_GE(n, 4u) << "need interior boundaries to make bisection meaningful";
  const std::size_t k = n / 2;

  // dirB = dirA's files before boundary K, dirC's from K on.
  const std::string dir_b = fresh_dir("seed_b");
  for (std::size_t i = 0; i < n; ++i) {
    const auto& source = i < k ? (*boundaries_a)[i] : (*boundaries_c)[i];
    fs::copy_file(source.path,
                  dir_b + "/" + fs::path(source.path).filename().string());
  }

  const std::string trace_a =
      write_text(dir_a, "trace.json", golden.chrome_json);
  const std::string trace_b = write_text(dir_b, "trace.json", other.chrome_json);

  auto report = rundb::bisect_divergence(dir_a, dir_b, model, trace_a, trace_b);
  ASSERT_TRUE(report.is_ok()) << report.status().to_string();
  EXPECT_TRUE(report->diverged);
  EXPECT_EQ(report->last_common, (*boundaries_a)[k - 1].time);
  EXPECT_EQ(report->first_divergent, (*boundaries_a)[k].time);
  EXPECT_FALSE(report->diverging_sections.empty());
  EXPECT_NE(report->summary.find("first diverging trace record"),
            std::string::npos)
      << report->summary;
  EXPECT_NE(report->summary.find("replay window"), std::string::npos)
      << report->summary;
}

TEST(Bisect, IdenticalRunsReportNoDivergence) {
  const core::ConsolidationWorkload workload = make_workload();
  const SystemModel model = SystemModel::kDcs;
  const std::string dir = fresh_dir("same");
  const GoldenRun golden =
      golden_snapshotted_run(model, workload, dir, fault_options());
  const std::string trace = write_text(dir, "trace.json", golden.chrome_json);
  auto report = rundb::bisect_divergence(dir, dir, model, trace, trace);
  ASSERT_TRUE(report.is_ok()) << report.status().to_string();
  EXPECT_FALSE(report->diverged);
  EXPECT_NE(report->summary.find("no divergence"), std::string::npos);
}

TEST(Bisect, DisjointBoundaryGridsAreATypedError) {
  const core::ConsolidationWorkload workload = make_workload();
  const std::string dir_a = fresh_dir("grid_a");
  const std::string dir_b = fresh_dir("grid_b");
  golden_snapshotted_run(SystemModel::kDcs, workload, dir_a, fault_options());
  auto report =
      rundb::bisect_divergence(dir_a, dir_b, SystemModel::kDcs, "", "");
  ASSERT_FALSE(report.is_ok());
  EXPECT_NE(report.status().message().find("no snapshot boundary"),
            std::string::npos)
      << report.status().message();
}

// Satellite: an empty or header-only trace export is a typed diagnostic
// ("zero events"), never a silent zero-row summary or a vacuous
// no-divergence verdict.
TEST(Bisect, EmptyTraceIsATypedDiagnosticNotANoDivergenceVerdict) {
  const core::ConsolidationWorkload workload = make_workload();
  const SystemModel model = SystemModel::kDcs;
  const std::string dir = fresh_dir("empty_trace");
  golden_snapshotted_run(model, workload, dir, fault_options());
  obs::TraceSink empty;
  const std::string path = write_text(dir, "empty.json", empty.chrome_json());
  auto report = rundb::bisect_divergence(dir, dir, model, path, path);
  ASSERT_FALSE(report.is_ok());
  EXPECT_EQ(report.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(report.status().message().find("zero events"), std::string::npos)
      << report.status().message();
}

TEST(ValidateTraceNonempty, AcceptsEventsRejectsEmpty) {
  EXPECT_FALSE(obs::validate_trace_nonempty({}, "empty.json").is_ok());
  std::vector<obs::ParsedTraceEvent> one(1);
  EXPECT_TRUE(obs::validate_trace_nonempty(one, "one.json").is_ok());
}

}  // namespace
}  // namespace dc
