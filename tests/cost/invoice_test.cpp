#include "cost/invoice.hpp"

#include <gtest/gtest.h>

namespace dc::cost {
namespace {

cluster::LeaseLedger sample_ledger() {
  cluster::LeaseLedger ledger;
  ledger.record(0, 2 * kHour, 40, "initial");
  ledger.record(kHour, kHour + 30 * kMinute, 10, "DR1#1");
  ledger.record(3 * kHour, 4 * kHour, 5, "DR1#2");
  ledger.record(3 * kHour, 5 * kHour, 8, "DR2#1");
  return ledger;
}

TEST(Invoice, LineItemsAndTotals) {
  const Invoice invoice =
      generate_invoice("NASA", sample_ledger(), 6 * kHour, 0.10);
  ASSERT_EQ(invoice.lines.size(), 4u);
  EXPECT_EQ(invoice.lines[0].item, "initial");
  EXPECT_EQ(invoice.lines[0].node_hours, 80);
  EXPECT_DOUBLE_EQ(invoice.lines[0].amount_usd, 8.0);
  EXPECT_EQ(invoice.lines[1].node_hours, 10);  // 30 min rounds to 1h
  // Total: 80 + 10 + 5 + 16 = 111 node*hours, $11.10.
  EXPECT_EQ(invoice.total_node_hours, 111);
  EXPECT_DOUBLE_EQ(invoice.total_usd, 11.1);
}

TEST(Invoice, OpenLeaseClipsAtHorizon) {
  cluster::LeaseLedger ledger;
  ledger.open(kHour, 4, "initial");
  const Invoice invoice = generate_invoice("X", ledger, 3 * kHour);
  ASSERT_EQ(invoice.lines.size(), 1u);
  EXPECT_EQ(invoice.lines[0].end, 3 * kHour);
  EXPECT_EQ(invoice.lines[0].node_hours, 8);
}

TEST(Invoice, SummaryGroupsByBaseTag) {
  const Invoice invoice =
      generate_summary_invoice("NASA", sample_ledger(), 6 * kHour, 0.10);
  ASSERT_EQ(invoice.lines.size(), 3u);  // initial, DR1, DR2
  // Groups are alphabetical (std::map): DR1, DR2, initial.
  EXPECT_EQ(invoice.lines[0].item, "DR1 (2 leases)");
  EXPECT_EQ(invoice.lines[0].node_hours, 15);
  EXPECT_EQ(invoice.lines[1].item, "DR2 (1 lease)");
  EXPECT_EQ(invoice.lines[2].item, "initial (1 lease)");
  EXPECT_EQ(invoice.total_node_hours, 111) << "grouping preserves the total";
}

TEST(Invoice, FormatFoldsExcessLines) {
  cluster::LeaseLedger ledger;
  for (int i = 0; i < 30; ++i) {
    ledger.record(i * kHour, (i + 1) * kHour, 1, "job");
  }
  const Invoice invoice = generate_invoice("drp-user", ledger, 40 * kHour);
  const std::string text = format_invoice(invoice, 5);
  EXPECT_NE(text.find("... 25 more line items"), std::string::npos);
  EXPECT_NE(text.find("TOTAL: 30 node*hours"), std::string::npos);
  EXPECT_NE(text.find("drp-user"), std::string::npos);
}

TEST(Invoice, EmptyLedger) {
  cluster::LeaseLedger ledger;
  const Invoice invoice = generate_invoice("empty", ledger, kHour);
  EXPECT_TRUE(invoice.lines.empty());
  EXPECT_EQ(invoice.total_node_hours, 0);
  EXPECT_NE(format_invoice(invoice).find("TOTAL: 0 node*hours"),
            std::string::npos);
}

}  // namespace
}  // namespace dc::cost
