#include "cost/tco.hpp"

#include <gtest/gtest.h>

namespace dc::cost {
namespace {

TEST(DcsCostModel, PaperConstants) {
  const DcsCostModel model;
  // $120,000 over 96 months = $1,250/month depreciation.
  EXPECT_DOUBLE_EQ(model.capex_depreciation_per_month(), 1250.0);
  // $30,000 over 96 months = $312.50/month maintenance.
  EXPECT_DOUBLE_EQ(model.maintenance_per_month(), 312.5);
  EXPECT_DOUBLE_EQ(model.opex_per_month(), 312.5 + 1600.0);
  // TCO_dcs ~= $3,160/month as published (paper rounds 3162.50 down).
  EXPECT_NEAR(model.tco_per_month(), 3160.0, 5.0);
}

TEST(Ec2CostModel, PaperConstants) {
  const Ec2CostModel model;
  // 30 instances * 24h * 30 days * $0.10 = $2,160.
  EXPECT_DOUBLE_EQ(model.instance_cost_per_month(30), 2160.0);
  EXPECT_DOUBLE_EQ(model.transfer_cost_per_month(1000.0), 100.0);
  EXPECT_DOUBLE_EQ(model.tco_per_month(30, 1000.0), 2260.0);
}

TEST(PaperComparison, SspIsAbout71Percent) {
  const TcoComparison comparison = paper_tco_comparison();
  EXPECT_NEAR(comparison.dcs_per_month, 3162.5, 0.01);
  EXPECT_DOUBLE_EQ(comparison.ssp_per_month, 2260.0);
  EXPECT_NEAR(comparison.ssp_over_dcs, 0.715, 0.002);
}

TEST(PaperComparison, ReportMentionsBothTcos) {
  const std::string out = format_tco_report(paper_tco_comparison());
  EXPECT_NE(out.find("2260"), std::string::npos);
  EXPECT_NE(out.find("71.5%"), std::string::npos);
}

TEST(ConsumptionCost, PricesNodeHours) {
  EXPECT_DOUBLE_EQ(consumption_cost_usd(1000), 100.0);
  Ec2CostModel custom;
  custom.usd_per_instance_hour = 0.25;
  EXPECT_DOUBLE_EQ(consumption_cost_usd(100, custom), 25.0);
}

TEST(DcsCostModel, ScalesWithDepreciationCycle) {
  DcsCostModel model;
  model.depreciation_years = 4.0;
  EXPECT_DOUBLE_EQ(model.capex_depreciation_per_month(), 2500.0);
  EXPECT_GT(model.tco_per_month(), DcsCostModel{}.tco_per_month());
}

}  // namespace
}  // namespace dc::cost
