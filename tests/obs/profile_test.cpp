#include "obs/profile.hpp"

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "util/parallel.hpp"

namespace dc::obs {
namespace {

std::vector<std::pair<std::string, double>>::const_iterator find_counter(
    const std::vector<std::pair<std::string, double>>& counters,
    const std::string& name) {
  for (auto it = counters.begin(); it != counters.end(); ++it) {
    if (it->first == name) return it;
  }
  return counters.end();
}

TEST(PhaseProfiler, AddAccumulatesCallsNsAndUnits) {
  PhaseProfiler profiler;
  profiler.add(ProfilePhase::kDispatch, 1000, 10);
  profiler.add(ProfilePhase::kDispatch, 2000, 30);
  profiler.add(ProfilePhase::kExport, 500);
  EXPECT_EQ(profiler.calls(ProfilePhase::kDispatch), 2u);
  EXPECT_EQ(profiler.ns(ProfilePhase::kDispatch), 3000u);
  EXPECT_EQ(profiler.units(ProfilePhase::kDispatch), 40u);
  EXPECT_EQ(profiler.calls(ProfilePhase::kExport), 1u);
  EXPECT_EQ(profiler.calls(ProfilePhase::kSweep), 0u);
}

TEST(PhaseProfiler, ScopeRecordsOnDestruction) {
  PhaseProfiler profiler;
  { auto scope = profiler.scope(ProfilePhase::kSnapshotSave); }
  EXPECT_EQ(profiler.calls(ProfilePhase::kSnapshotSave), 1u);
}

TEST(PhaseProfiler, AbsorbSweepFoldsPoolStats) {
  PhaseProfiler profiler;
  SweepStats stats;
  stats.chunks.store(8);
  stats.busy_ns.store(123456);
  stats.indices.store(1000);
  profiler.absorb_sweep(stats);
  EXPECT_EQ(profiler.calls(ProfilePhase::kSweep), 8u);
  EXPECT_EQ(profiler.ns(ProfilePhase::kSweep), 123456u);
  EXPECT_EQ(profiler.units(ProfilePhase::kSweep), 1000u);
}

TEST(PhaseProfiler, CountersExportExercisedPhasesAndNotes) {
  PhaseProfiler profiler;
  profiler.add(ProfilePhase::kDispatch, 5000, 100);
  profiler.add(ProfilePhase::kExport, 700);  // no units
  profiler.note("events_processed", 100.0);
  profiler.note("events_processed", 200.0);  // last write wins
  profiler.note("peak_pending", 7.0);

  const auto counters = profiler.counters();
  auto it = find_counter(counters, "profile_dispatch_ns");
  ASSERT_NE(it, counters.end());
  EXPECT_DOUBLE_EQ(it->second, 5000.0);
  it = find_counter(counters, "profile_dispatch_units");
  ASSERT_NE(it, counters.end());
  EXPECT_DOUBLE_EQ(it->second, 100.0);
  // Unit-less phases publish ns/calls but no units counter.
  EXPECT_NE(find_counter(counters, "profile_export_ns"), counters.end());
  EXPECT_EQ(find_counter(counters, "profile_export_units"), counters.end());
  // Untouched phases are absent entirely.
  EXPECT_EQ(find_counter(counters, "profile_sweep_chunk_ns"), counters.end());
  it = find_counter(counters, "events_processed");
  ASSERT_NE(it, counters.end());
  EXPECT_DOUBLE_EQ(it->second, 200.0);
  EXPECT_NE(find_counter(counters, "peak_pending"), counters.end());
}

TEST(PhaseProfiler, TableShowsExercisedPhasesOnly) {
  PhaseProfiler profiler;
  profiler.add(ProfilePhase::kDispatch, 2000000, 50);
  profiler.note("peak_pending", 12.0);
  const std::string table = profiler.table();
  EXPECT_NE(table.find("dispatch"), std::string::npos) << table;
  EXPECT_NE(table.find("peak_pending = 12"), std::string::npos) << table;
  EXPECT_EQ(table.find("snapshot_restore"), std::string::npos) << table;
}

}  // namespace
}  // namespace dc::obs
