#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <string>

#include "util/time.hpp"

namespace dc::obs {
namespace {

TEST(MetricsRegistry, CountersAccumulate) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.counter("jobs.completed"), 0u);
  registry.add_counter("jobs.completed");
  registry.add_counter("jobs.completed", 4);
  registry.add_counter("jobs.killed", 2);
  EXPECT_EQ(registry.counter("jobs.completed"), 5u);
  EXPECT_EQ(registry.counter("jobs.killed"), 2u);
}

TEST(MetricsRegistry, GaugesAreLastWriteWins) {
  MetricsRegistry registry;
  EXPECT_DOUBLE_EQ(registry.gauge("queue.depth"), 0.0);
  registry.set_gauge("queue.depth", 7.0);
  registry.set_gauge("queue.depth", 3.0);
  EXPECT_DOUBLE_EQ(registry.gauge("queue.depth"), 3.0);
}

TEST(MetricsRegistry, StatsInstrumentIsCreatedOnFirstUse) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.find_stats("wait"), nullptr);
  registry.stats("wait").add(10.0);
  registry.stats("wait").add(20.0);
  const RunningStats* stats = registry.find_stats("wait");
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->count(), 2);
  EXPECT_DOUBLE_EQ(stats->mean(), 15.0);
}

TEST(MetricsRegistry, HistogramKeepsFirstBounds) {
  MetricsRegistry registry;
  Histogram& hist = registry.histogram("runtime", 0.0, 10.0, 5);
  hist.add(3.0);
  // Later calls with different bounds return the existing instrument.
  Histogram& same = registry.histogram("runtime", 0.0, 999.0, 2);
  EXPECT_EQ(&hist, &same);
  EXPECT_EQ(same.total(), 1);
}

TEST(MetricsRegistry, TimeseriesCsvIsLongFormat) {
  MetricsRegistry registry;
  registry.sample(kHour, "bes.queue_depth", 4.0);
  registry.sample(kHour, "bes.busy", 16.0);
  registry.sample(2 * kHour, "bes.queue_depth", 2.5);
  EXPECT_EQ(registry.sample_count(), 3u);
  ASSERT_EQ(registry.metric_names().size(), 2u);
  EXPECT_EQ(registry.metric_names()[0], "bes.queue_depth");

  const std::string csv = registry.timeseries_csv();
  EXPECT_EQ(csv,
            "time,metric,value\n"
            "3600,bes.queue_depth,4\n"
            "3600,bes.busy,16\n"
            "7200,bes.queue_depth,2.5\n");
}

TEST(MetricsRegistry, SummaryListsEveryInstrument) {
  MetricsRegistry registry;
  registry.add_counter("jobs.completed", 12);
  registry.set_gauge("nodes.busy", 48.0);
  registry.stats("wait").add(30.0);
  registry.histogram("runtime", 0.0, 100.0, 4).add(50.0);
  const std::string summary = registry.summary();
  EXPECT_NE(summary.find("jobs.completed"), std::string::npos) << summary;
  EXPECT_NE(summary.find("counter"), std::string::npos) << summary;
  EXPECT_NE(summary.find("nodes.busy"), std::string::npos) << summary;
  EXPECT_NE(summary.find("gauge"), std::string::npos) << summary;
  EXPECT_NE(summary.find("stats"), std::string::npos) << summary;
  EXPECT_NE(summary.find("histogram"), std::string::npos) << summary;
}

}  // namespace
}  // namespace dc::obs
