#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "snapshot/format.hpp"
#include "util/time.hpp"

namespace dc::obs {
namespace {

TEST(TraceFilter, ParsesCategoryLists) {
  auto mask = parse_trace_filter("job,lease");
  ASSERT_TRUE(mask.is_ok());
  EXPECT_EQ(mask.value(), trace_category_bit(TraceCategory::kJob) |
                              trace_category_bit(TraceCategory::kLease));

  auto all = parse_trace_filter("all");
  ASSERT_TRUE(all.is_ok());
  EXPECT_EQ(all.value(), kTraceAll);

  auto empty = parse_trace_filter("");
  ASSERT_TRUE(empty.is_ok());
  EXPECT_EQ(empty.value(), kTraceAll);

  auto padded = parse_trace_filter(" fault , checkpoint ");
  ASSERT_TRUE(padded.is_ok());
  EXPECT_EQ(padded.value(), trace_category_bit(TraceCategory::kFault) |
                                trace_category_bit(TraceCategory::kCheckpoint));
}

TEST(TraceFilter, RejectsUnknownCategoryListingValidSet) {
  auto bad = parse_trace_filter("job,no-such-category");
  ASSERT_FALSE(bad.is_ok());
  EXPECT_NE(bad.status().message().find("no-such-category"), std::string::npos);
  EXPECT_NE(bad.status().message().find("lifecycle"), std::string::npos);
}

TEST(TraceSink, RecordsInstantsAndSpans) {
  TraceSink sink;
  sink.instant(kHour, TraceCategory::kJob, "job.submit", "provider", 7, 2);
  sink.span(2 * kHour, 30 * kMinute, TraceCategory::kLease, "lease.hold",
            "provider", 16);

  const auto events = sink.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].time, kHour);
  EXPECT_EQ(events[0].phase, 0);
  EXPECT_EQ(events[0].a0, 7);
  EXPECT_EQ(events[0].a1, 2);
  EXPECT_EQ(sink.name_of(events[0].name), "job.submit");
  EXPECT_EQ(sink.name_of(events[0].actor), "provider");
  EXPECT_EQ(events[1].time, 2 * kHour);
  EXPECT_EQ(events[1].dur, 30 * kMinute);
  EXPECT_EQ(events[1].phase, 1);

  const auto counts = sink.category_counts();
  EXPECT_EQ(counts[static_cast<std::size_t>(TraceCategory::kJob)], 1u);
  EXPECT_EQ(counts[static_cast<std::size_t>(TraceCategory::kLease)], 1u);
  EXPECT_EQ(counts[static_cast<std::size_t>(TraceCategory::kFault)], 0u);
}

TEST(TraceSink, RingDropsOldestOnceFull) {
  TraceSink sink(/*capacity=*/4);
  for (std::int64_t i = 0; i < 6; ++i) {
    sink.instant(i, TraceCategory::kJob, "job.submit", "p", i);
  }
  EXPECT_EQ(sink.size(), 4u);
  EXPECT_EQ(sink.capacity(), 4u);
  EXPECT_EQ(sink.emitted(), 6u);
  EXPECT_EQ(sink.dropped(), 2u);
  const auto events = sink.events();
  ASSERT_EQ(events.size(), 4u);
  // Oldest-to-newest after dropping the two oldest.
  EXPECT_EQ(events.front().a0, 2);
  EXPECT_EQ(events.back().a0, 5);
}

TEST(TraceSink, FilterSuppressesRecordingAndInterning) {
  TraceSink sink;
  sink.set_filter(trace_category_bit(TraceCategory::kJob));
  EXPECT_TRUE(sink.wants(TraceCategory::kJob));
  EXPECT_FALSE(sink.wants(TraceCategory::kFault));

  sink.instant(0, TraceCategory::kFault, "fault.fail", "domain");
  EXPECT_EQ(sink.size(), 0u);
  EXPECT_EQ(sink.emitted(), 0u);
  // The filtered event's strings were never interned: the first real
  // emission claims ids 0 and 1.
  sink.instant(0, TraceCategory::kJob, "job.submit", "provider");
  const auto events = sink.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, 0u);
  EXPECT_EQ(events[0].actor, 1u);
}

TEST(TraceSink, InternAssignsStableFirstUseIds) {
  TraceSink sink;
  const auto a = sink.intern("alpha");
  const auto b = sink.intern("beta");
  EXPECT_NE(a, b);
  EXPECT_EQ(sink.intern("alpha"), a);
  EXPECT_EQ(sink.name_of(a), "alpha");
  EXPECT_EQ(sink.name_of(b), "beta");
}

TEST(TraceSink, ChromeJsonRoundTripsThroughParser) {
  TraceSink sink;
  sink.instant(kHour, TraceCategory::kJob, "job.submit", "bes-a", 42, 1);
  sink.span(kHour, kMinute, TraceCategory::kProvision, "provision.wait",
            "platform", 3);
  sink.instant(2 * kHour, TraceCategory::kLog, "log.WARN", "server", 2);

  auto parsed = parse_chrome_json(sink.chrome_json());
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().message();
  const auto& events = parsed.value();
  ASSERT_EQ(events.size(), 3u);

  EXPECT_EQ(events[0].name, "job.submit");
  EXPECT_EQ(events[0].category, "job");
  EXPECT_EQ(events[0].actor, "bes-a");
  EXPECT_EQ(events[0].phase, 'i');
  EXPECT_EQ(events[0].ts_us, kHour * 1000000);
  EXPECT_EQ(events[0].a0, 42);
  EXPECT_EQ(events[0].a1, 1);

  EXPECT_EQ(events[1].phase, 'X');
  EXPECT_EQ(events[1].dur_us, kMinute * 1000000);
  EXPECT_EQ(events[1].actor, "platform");

  EXPECT_EQ(events[2].category, "log");
}

TEST(TraceSink, CsvHasHeaderAndOneRowPerEvent) {
  TraceSink sink;
  sink.instant(1, TraceCategory::kJob, "job.start", "p", 5);
  sink.span(2, 3, TraceCategory::kLease, "lease.hold", "p", 8, 9);
  const std::string csv = sink.csv();
  EXPECT_EQ(csv.rfind("time,category,phase,name,actor,dur,a0,a1\n", 0), 0u)
      << csv;
  EXPECT_NE(csv.find("1,job,instant,job.start,p,0,5,0\n"), std::string::npos)
      << csv;
  EXPECT_NE(csv.find("2,lease,span,lease.hold,p,3,8,9\n"), std::string::npos)
      << csv;
}

TEST(TraceSink, SnapshotRoundTripPreservesExportBytes) {
  TraceSink sink(/*capacity=*/3);
  sink.set_filter(kTraceAll & ~trace_category_bit(TraceCategory::kLog));
  for (std::int64_t i = 0; i < 5; ++i) {
    sink.instant(i * kMinute, TraceCategory::kJob, "job.submit", "p", i);
  }
  sink.span(kHour, kMinute, TraceCategory::kResize, "resize.decide", "drp");

  snapshot::SnapshotWriter writer;
  sink.save(writer);
  auto reader = snapshot::SnapshotReader::from_buffer(writer.finish());
  ASSERT_TRUE(reader.is_ok()) << reader.status().message();

  TraceSink restored;
  ASSERT_TRUE(restored.restore(reader.value()).is_ok());
  EXPECT_EQ(restored.filter(), sink.filter());
  EXPECT_EQ(restored.emitted(), sink.emitted());
  EXPECT_EQ(restored.dropped(), sink.dropped());
  EXPECT_EQ(restored.size(), sink.size());
  EXPECT_EQ(restored.capacity(), sink.capacity());
  EXPECT_EQ(restored.chrome_json(), sink.chrome_json());
  EXPECT_EQ(restored.csv(), sink.csv());
  // The string table survives by id: re-interning keeps the saved ids.
  EXPECT_EQ(restored.intern("job.submit"), sink.intern("job.submit"));
}

TEST(TraceDiff, IdenticalTracesMatch) {
  TraceSink sink;
  sink.instant(1, TraceCategory::kJob, "job.submit", "p", 1);
  sink.span(2, 3, TraceCategory::kLease, "lease.hold", "p");
  auto a = parse_chrome_json(sink.chrome_json());
  auto b = parse_chrome_json(sink.chrome_json());
  ASSERT_TRUE(a.is_ok() && b.is_ok());
  std::string report;
  EXPECT_TRUE(diff_traces(a.value(), b.value(), &report));
  EXPECT_EQ(report, "traces are identical");
}

TEST(TraceDiff, ReportsFirstDivergingEvent) {
  TraceSink golden;
  golden.instant(1, TraceCategory::kJob, "job.submit", "p", 1);
  golden.instant(2, TraceCategory::kJob, "job.start", "p", 1);
  TraceSink other;
  other.instant(1, TraceCategory::kJob, "job.submit", "p", 1);
  other.instant(2, TraceCategory::kJob, "job.start", "p", 99);  // diverges
  auto a = parse_chrome_json(golden.chrome_json());
  auto b = parse_chrome_json(other.chrome_json());
  ASSERT_TRUE(a.is_ok() && b.is_ok());
  std::string report;
  EXPECT_FALSE(diff_traces(a.value(), b.value(), &report));
  EXPECT_NE(report.find("first divergence at event 1"), std::string::npos)
      << report;
  EXPECT_NE(report.find("a0=99"), std::string::npos) << report;
}

TEST(TraceDiff, ReportsLengthMismatch) {
  TraceSink golden;
  golden.instant(1, TraceCategory::kJob, "job.submit", "p");
  golden.instant(2, TraceCategory::kJob, "job.start", "p");
  TraceSink other;
  other.instant(1, TraceCategory::kJob, "job.submit", "p");
  auto a = parse_chrome_json(golden.chrome_json());
  auto b = parse_chrome_json(other.chrome_json());
  ASSERT_TRUE(a.is_ok() && b.is_ok());
  std::string report;
  EXPECT_FALSE(diff_traces(a.value(), b.value(), &report));
  EXPECT_NE(report.find("golden has 1 extra"), std::string::npos) << report;
}

TEST(TraceSummary, CountsCategoriesAndSpans) {
  TraceSink sink;
  sink.instant(1, TraceCategory::kJob, "job.submit", "p");
  sink.instant(2, TraceCategory::kJob, "job.start", "p");
  sink.span(2, 40, TraceCategory::kJob, "job.run", "p");
  auto parsed = parse_chrome_json(sink.chrome_json());
  ASSERT_TRUE(parsed.is_ok());
  const std::string summary = summarize_trace(parsed.value());
  EXPECT_NE(summary.find("events: 3"), std::string::npos) << summary;
  EXPECT_NE(summary.find("job"), std::string::npos) << summary;
  EXPECT_NE(summary.find("job.run"), std::string::npos) << summary;
}

TEST(TraceJson, RejectsMalformedInput) {
  EXPECT_FALSE(parse_chrome_json("not json").is_ok());
  EXPECT_FALSE(parse_chrome_json("{\"displayTimeUnit\":\"ms\"}").is_ok());
}

TEST(TraceMacros, NullSinkIsANoOp) {
  TraceSink* sink = nullptr;
  DC_TRACE_INSTANT(sink, 0, TraceCategory::kJob, "job.submit", "p");
  DC_TRACE_SPAN(sink, 0, 1, TraceCategory::kJob, "job.run", "p");
  TraceSink real;
  DC_TRACE_INSTANT(&real, 0, TraceCategory::kJob, "job.submit", "p");
#ifndef DC_TRACE_DISABLED
  EXPECT_EQ(real.size(), 1u);
#else
  EXPECT_EQ(real.size(), 0u);  // emission sites compiled out
#endif
}

}  // namespace
}  // namespace dc::obs
