// Tests for the shared benchmark-report library (tools/bench_report.*):
// the JSON condenser that builds BENCH_*.json sections and the
// perf-regression gate that compares fresh reports against them. The
// fixtures deliberately use parameterized benchmark names with several
// '/' segments ("BM_EventQueueThroughput/calendar/65536") — names are
// opaque and must be carried and matched whole, never split on '/'.
#include "bench_report.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <string>

namespace dc_bench {
namespace {

// A google-benchmark style report: two real runs (one with a multi-'/'
// parameterized name and a user counter), one aggregate that must be
// dropped, and a context block.
const char* kFreshReport = R"({
  "context": {
    "date": "redacted",
    "host_name": "ci",
    "num_cpus": 8,
    "mhz_per_cpu": 3000,
    "cpu_scaling_enabled": false,
    "library_build_type": "release"
  },
  "benchmarks": [
    {
      "name": "BM_EventQueueThroughput/calendar/65536",
      "run_name": "BM_EventQueueThroughput/calendar/65536",
      "run_type": "iteration",
      "iterations": 100,
      "real_time": 5.0e6,
      "cpu_time": 4.9e6,
      "time_unit": "ns",
      "items_per_second": 2.0e7,
      "dispatch_batches": 4096.0
    },
    {
      "name": "BM_ProfiledSystemRun",
      "run_name": "BM_ProfiledSystemRun",
      "run_type": "iteration",
      "iterations": 10,
      "real_time": 9.0e6,
      "cpu_time": 8.8e6,
      "time_unit": "ns",
      "profile_dispatch_ns": 1.0e6
    },
    {
      "name": "BM_ProfiledSystemRun_mean",
      "run_name": "BM_ProfiledSystemRun",
      "run_type": "aggregate",
      "aggregate_name": "mean",
      "iterations": 3,
      "real_time": 9.1e6,
      "cpu_time": 8.9e6,
      "time_unit": "ns"
    }
  ]
})";

JsonPtr parse_or_die(const std::string& text) {
  std::string error;
  JsonPtr parsed = parse_json(text, &error);
  EXPECT_NE(parsed, nullptr) << error;
  return parsed;
}

// Builds a baseline file {"<label>": condense(report)} like bench_to_json.
JsonPtr baseline_from(const std::string& report_text,
                      const std::string& label) {
  JsonPtr report = parse_or_die(report_text);
  JsonPtr file = Json::make(Json::Kind::kObject);
  file->set(label, condense_report(*report));
  return file;
}

const Json* find_bench(const Json& section, const std::string& name) {
  const Json* benches = section.find("benchmarks");
  if (benches == nullptr) return nullptr;
  for (const JsonPtr& bench : benches->items) {
    const Json* n = bench->find("name");
    if (n != nullptr && n->text == name) return bench.get();
  }
  return nullptr;
}

TEST(CondenseReport, KeepsMultiSlashNamesWholeAndSkipsAggregates) {
  JsonPtr report = parse_or_die(kFreshReport);
  JsonPtr section = condense_report(*report);
  const Json* benches = section->find("benchmarks");
  ASSERT_NE(benches, nullptr);
  ASSERT_EQ(benches->items.size(), 2u);  // the _mean aggregate is dropped
  const Json* multi =
      find_bench(*section, "BM_EventQueueThroughput/calendar/65536");
  ASSERT_NE(multi, nullptr) << "multi-'/' name must be matched whole";
  // Numeric user counters ride along; structural fields do not.
  EXPECT_NE(multi->find("dispatch_batches"), nullptr);
  EXPECT_NE(multi->find("items_per_second"), nullptr);
  EXPECT_EQ(multi->find("run_type"), nullptr);
  EXPECT_EQ(find_bench(*section, "BM_ProfiledSystemRun_mean"), nullptr);
}

TEST(CondenseReport, ThrowsOnReportWithoutBenchmarks) {
  JsonPtr report = parse_or_die(R"({"context": {}})");
  EXPECT_THROW(condense_report(*report), std::exception);
}

TEST(ParseJson, ReportsErrorsInsteadOfCrashing) {
  std::string error;
  EXPECT_EQ(parse_json("{\"unterminated\": ", &error), nullptr);
  EXPECT_FALSE(error.empty());
}

TEST(GateCompare, PassesWhenFreshMatchesBaseline) {
  JsonPtr baseline = baseline_from(kFreshReport, "current");
  JsonPtr fresh = parse_or_die(kFreshReport);
  GateReport report;
  std::string error;
  ASSERT_TRUE(gate_compare(*fresh, *baseline, GateOptions{}, &report, &error))
      << error;
  EXPECT_EQ(report.regressions, 0);
  EXPECT_TRUE(report.skipped.empty());
  // Both directions were checked: throughput and the profile_*_ns counter.
  bool saw_items = false;
  bool saw_profile = false;
  for (const GateComparison& cmp : report.comparisons) {
    if (cmp.metric == "items_per_second") saw_items = true;
    if (cmp.metric == "profile_dispatch_ns") saw_profile = true;
    EXPECT_FALSE(cmp.regressed) << cmp.name << " " << cmp.metric;
  }
  EXPECT_TRUE(saw_items);
  EXPECT_TRUE(saw_profile);
}

TEST(GateCompare, FlagsThroughputDropBeyondThreshold) {
  JsonPtr baseline = baseline_from(kFreshReport, "current");
  // Fresh run at half the baseline throughput on the multi-'/' bench.
  std::string slow = kFreshReport;
  const std::string from = "\"items_per_second\": 2.0e7";
  slow.replace(slow.find(from), from.size(), "\"items_per_second\": 1.0e7");
  JsonPtr fresh = parse_or_die(slow);
  GateReport report;
  std::string error;
  ASSERT_TRUE(gate_compare(*fresh, *baseline, GateOptions{}, &report, &error))
      << error;
  EXPECT_EQ(report.regressions, 1);
  bool found = false;
  for (const GateComparison& cmp : report.comparisons) {
    if (cmp.metric != "items_per_second") continue;
    EXPECT_EQ(cmp.name, "BM_EventQueueThroughput/calendar/65536");
    EXPECT_TRUE(cmp.regressed);
    EXPECT_NEAR(cmp.ratio, 0.5, 1e-9);
    found = true;
  }
  EXPECT_TRUE(found);
  EXPECT_NE(format_gate_report(report).find("REGRESSED"), std::string::npos);
}

TEST(GateCompare, FlagsProfileNsGrowthButTolerGrowthWithinThreshold) {
  JsonPtr baseline = baseline_from(kFreshReport, "current");
  // profile_*_ns counters regress by growing. +10% passes at the default
  // 15% threshold; +50% fails.
  for (const auto& [replacement, want_regressions] :
       {std::pair<const char*, int>{"\"profile_dispatch_ns\": 1.1e6", 0},
        std::pair<const char*, int>{"\"profile_dispatch_ns\": 1.5e6", 1}}) {
    std::string text = kFreshReport;
    const std::string from = "\"profile_dispatch_ns\": 1.0e6";
    text.replace(text.find(from), from.size(), replacement);
    JsonPtr fresh = parse_or_die(text);
    GateReport report;
    std::string error;
    ASSERT_TRUE(
        gate_compare(*fresh, *baseline, GateOptions{}, &report, &error))
        << error;
    EXPECT_EQ(report.regressions, want_regressions) << replacement;
  }
}

TEST(GateCompare, SkipsBaselineBenchesMissingFromFreshRun) {
  JsonPtr baseline = baseline_from(kFreshReport, "current");
  // Fresh report from a filtered run: only the profiled bench was rerun.
  JsonPtr fresh = parse_or_die(R"({
    "benchmarks": [
      {
        "name": "BM_ProfiledSystemRun",
        "run_type": "iteration",
        "iterations": 10,
        "real_time": 9.0e6,
        "cpu_time": 8.8e6,
        "profile_dispatch_ns": 1.0e6
      }
    ]
  })");
  GateReport report;
  std::string error;
  ASSERT_TRUE(gate_compare(*fresh, *baseline, GateOptions{}, &report, &error))
      << error;
  EXPECT_EQ(report.regressions, 0);
  ASSERT_EQ(report.skipped.size(), 1u);
  EXPECT_EQ(report.skipped[0], "BM_EventQueueThroughput/calendar/65536");
}

TEST(GateCompare, ErrorsOnMissingBaselineLabel) {
  JsonPtr baseline = baseline_from(kFreshReport, "current");
  JsonPtr fresh = parse_or_die(kFreshReport);
  GateOptions options;
  options.label = "no-such-label";
  GateReport report;
  std::string error;
  EXPECT_FALSE(gate_compare(*fresh, *baseline, options, &report, &error));
  EXPECT_NE(error.find("no-such-label"), std::string::npos);
}

TEST(GateCompare, WiderThresholdTolersLargerDrop) {
  JsonPtr baseline = baseline_from(kFreshReport, "current");
  std::string slow = kFreshReport;
  const std::string from = "\"items_per_second\": 2.0e7";
  slow.replace(slow.find(from), from.size(), "\"items_per_second\": 1.5e7");
  JsonPtr fresh = parse_or_die(slow);
  GateReport strict;
  GateReport loose;
  std::string error;
  ASSERT_TRUE(gate_compare(*fresh, *baseline, GateOptions{}, &strict, &error));
  EXPECT_EQ(strict.regressions, 1);  // -25% fails the default 15%
  GateOptions wide;
  wide.threshold = 0.35;
  ASSERT_TRUE(gate_compare(*fresh, *baseline, wide, &loose, &error));
  EXPECT_EQ(loose.regressions, 0);
}

// load_json_file must name the broken-input shape, not just throw a parse
// error: an empty file (killed producer), a truncated document (killed
// mid-write), and plain non-JSON each get their own diagnostic.
std::string fixture_file(const std::string& name, const std::string& bytes) {
  const std::string path = ::testing::TempDir() + name;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  return path;
}

TEST(LoadJsonFile, MissingFileIsNamed) {
  std::string error;
  EXPECT_EQ(load_json_file(::testing::TempDir() + "no_such_report.json",
                           &error),
            nullptr);
  EXPECT_NE(error.find("cannot read"), std::string::npos) << error;
}

TEST(LoadJsonFile, EmptyFileIsNamed) {
  std::string error;
  EXPECT_EQ(load_json_file(fixture_file("empty.json", ""), &error), nullptr);
  EXPECT_NE(error.find("is empty"), std::string::npos) << error;
  // Whitespace-only counts as empty too.
  error.clear();
  EXPECT_EQ(load_json_file(fixture_file("blank.json", " \n\t\n"), &error),
            nullptr);
  EXPECT_NE(error.find("is empty"), std::string::npos) << error;
}

TEST(LoadJsonFile, TruncatedDocumentIsNamed) {
  std::string error;
  EXPECT_EQ(load_json_file(
                fixture_file("truncated.json", "{\"context\": {\"num_cpus\": 8"),
                &error),
            nullptr);
  EXPECT_NE(error.find("truncated"), std::string::npos) << error;
}

TEST(LoadJsonFile, NonJsonIsNamed) {
  std::string error;
  EXPECT_EQ(load_json_file(
                fixture_file("notjson.txt", "benchmark exploded: SIGSEGV\n"),
                &error),
            nullptr);
  EXPECT_NE(error.find("not valid JSON"), std::string::npos) << error;
}

TEST(LoadJsonFile, ValidDocumentParses) {
  std::string error;
  JsonPtr parsed =
      load_json_file(fixture_file("ok.json", "{\"a\": [1, 2]}"), &error);
  ASSERT_NE(parsed, nullptr) << error;
  EXPECT_EQ(parsed->kind, Json::Kind::kObject);
}

}  // namespace
}  // namespace dc_bench
