// Fixture: dc-r1 violations — ambient time and entropy sources.
// Expected: 5 diagnostics (lines 9, 12, 13, 16, 19), 1 waived (line 22).
#include <chrono>
#include <cstdlib>
#include <random>

long wall_seconds() {
  // Violation: wall clock via the C library.
  return time(nullptr);
}
void globals() {
  srand(42);                 // violation: seeds global C RNG
  const int draw = rand();   // violation: draws from global C RNG
  (void)draw;
  // Violation: std::chrono wall clock.
  auto tick = std::chrono::system_clock::now();
  (void)tick;
  // Violation: ambient entropy.
  std::random_device entropy;
  (void)entropy;
  // Waived: a documented seeded-RNG construction site.
  std::random_device seeder;  // NOLINT(dc-r1)
  (void)seeder;
}
struct Clock;
void fine(Clock* clock_like) {
  // No violation: member calls named `time` belong to someone else.
  (void)clock_like->time();
  // No violation: the token only appears in a string and a comment: time(
  const char* doc = "calls time( and rand( at runtime";
  (void)doc;
}
