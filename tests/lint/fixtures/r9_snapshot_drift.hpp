// dc-r9 fixture header: the class declaration half of the cross-TU join.
// Never compiled, only lexed; the member list lives here while the
// persist bodies live in r9_snapshot_drift.cpp, exactly the split the
// project model exists to see across.
#pragma once

#include "snapshot/format.hpp"

namespace fixture {

class DriftedServer {
 public:
  dc::Status save(dc::snapshot::SnapshotWriter& writer) const;
  dc::Status restore(dc::snapshot::SnapshotReader& reader);

 private:
  unsigned owned_ = 0;
  unsigned busy_ = 0;
  bool started_ = false;
  int scratch_ = 0;  // never persisted and not volatile: dc-r9 fires here
  void* trace_ = nullptr;  // dc-volatile: rebuilt on attach
};

}  // namespace fixture
