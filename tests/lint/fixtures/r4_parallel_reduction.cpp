// Fixture: dc-r4 violations — floating-point compound reductions inside
// parallel sweep callbacks, where summation order depends on chunking.
// Captured-ref accumulations are also sweep races, so dc-r11 co-fires
// where the write is not loop-indexed. Expected: dc-r4 at lines 16, 24;
// dc-r11 at lines 16, 43; the ordered-reduction annotation (line 33)
// waives both rules.
#include <cstddef>
#include <vector>

template <typename F> void parallel_for_index(std::size_t, F&&) {}

void sweeps(std::vector<double>& costs) {
  double total = 0.0;
  parallel_for_index(costs.size(), [&](std::size_t i) {
    // Violation: float accumulation order depends on chunk schedule.
    total += costs[i];
  });

  std::vector<float> bins;
  bins.resize(8);
  parallel_for_index(costs.size(), [&](std::size_t i) {
    const float share = static_cast<float>(costs[i]);
    // Violation: -= on a float element inside the sweep.
    bins[i % 8] -= share;
  });

  (void)total;
}

void waived(std::vector<double>& costs) {
  double total = 0.0;
  parallel_for_index(costs.size(), [&](std::size_t i) {
    total += costs[i];  // dc-lint: ordered-reduction (single-thread reduce tested)
  });
  (void)total;
}

void fine(std::vector<double>& costs) {
  // No dc-r4: integer accumulation is associative. Still a cross-thread
  // race on `count`, so dc-r11 fires.
  long count = 0;
  parallel_for_index(costs.size(), [&](std::size_t i) {
    count += static_cast<long>(costs[i] > 0.0);
  });
  // No violation: float += outside any parallel callback.
  double serial = 0.0;
  for (double c : costs) serial += c;
  (void)count;
  (void)serial;
}
