// dc-r11 fixture: writes to shared state inside parallel sweep callbacks.
// Never compiled, only lexed. Integer state throughout so dc-r4 (float
// reductions) stays quiet and every diagnostic here is dc-r11's.
#include "util/parallel.hpp"

void sweep(std::vector<long>& out, const Grid& grid) {
  long total = 0;
  Stats stats;
  Stats* shared = &stats;
  dc::parallel_for_index(out.size(), [&](std::size_t i) {
    const long local = grid.cell(i);  // body-local: clean
    out[i] = local * 2;               // loop-indexed store: clean
    total += local;                   // captured-ref accumulate: fires
    stats.samples = local;            // captured struct field: fires
    shared->hits++;                   // captured pointer target: fires
  });
}

// A copy-captured scalar is private to the callback: writing it loses
// updates (a different bug), but no two threads share the location.
void copy_capture(std::vector<long>& out) {
  long generation = 7;
  dc::parallel_for_index(out.size(), [generation, &out](std::size_t i) {
    out[i] = generation;  // clean: indexed store
    generation = 0;       // clean for dc-r11: writes the private copy
  });
}

// Reviewed exemption: the waiver must suppress the diagnostic and count
// as used.
void waived(std::vector<long>& out, long& hint) {
  dc::parallel_for_index(out.size(), [&](std::size_t i) {
    hint = static_cast<long>(i);  // NOLINT(dc-r11) monotonic hint, benign
    out[i] = hint;
  });
}
