// Fixture: a fully clean translation unit. Expected: 0 diagnostics.
#include <chrono>
#include <cstdint>
#include <map>
#include <random>
#include <vector>

namespace fixture {

// Seeded engines are fine; only ambient entropy/time sources are flagged.
inline double simulate(std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  // steady_clock is monotonic and allowed for measuring elapsed host time.
  const auto start = std::chrono::steady_clock::now();
  std::map<int, double> samples;
  for (int i = 0; i < 16; ++i) samples[i] = dist(rng);
  double total = 0.0;
  for (const auto& entry : samples) total += entry.second;
  (void)start;
  return total;
}

}  // namespace fixture
