// Fixture: dc-r8 violations — floating-point bucket math and hash storage
// in scheduler-queue sources. The test lints this file under the display
// path "src/sim/r8_queue_math.cpp" (hot path + "queue" in the name) so the
// path-gated rule applies.
// Expected: 3 diagnostics (lines 13, 18, 24), 1 waived (line 28).
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace fake_queue {

// Violation: floating-point bucket width.
double bucket_width = 4.0;

std::uint64_t index_for(std::uint64_t time_bits, std::uint64_t start) {
  // Violation: a float cast in the bucket-index computation — rounding is
  // platform-dependent at the bucket boundary.
  const auto scaled = static_cast<float>(time_bits - start);
  return static_cast<std::uint64_t>(scaled / bucket_width);
}

// Violation: hash-ordered slot lookup on the dispatch critical path.
struct SlotIndex {
  std::unordered_map<std::uint32_t, std::uint64_t> time_of_slot;
};

// Waived: a stats-only occupancy average, never consulted by dispatch.
double mean_occupancy = 0.0;  // NOLINT(dc-r8)

}  // namespace fake_queue
