// Fixture: a well-formed header — guard present, no using-directives.
// Expected: 0 diagnostics.
#pragma once

#include <string>

namespace fixture {

inline std::string greet(const std::string& s) { return "hi " + s; }

}  // namespace fixture
