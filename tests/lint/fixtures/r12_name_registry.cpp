// dc-r12 fixture: trace/metric name-registry conflicts. Never compiled,
// only lexed; the rule tests join these facts through the project model.
#include "obs/trace.hpp"

namespace {
const dc::obs::TraceName kJobStart{"job.start"};
const dc::obs::TraceName kJobStartDup{"job.start"};  // duplicate: fires
const dc::obs::TraceName kQueueDepth{"queue.depth"};
}  // namespace

void emit(dc::obs::TraceSink* sink, dc::metrics::Registry& registry,
          dc::SimTime now) {
  DC_TRACE_INSTANT_C(sink, now, "sweep", "sweep.tick");
  DC_TRACE_SPAN_C(sink, now, 10, "sweep", "sweep.tick");  // span too: fires
  registry.add_counter("jobs.completed");
  registry.gauge("jobs.completed");  // counter and gauge: fires
  registry.stats("wait.time");
}
