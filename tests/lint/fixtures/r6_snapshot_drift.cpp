// dc-r6 fixture: save/restore snapshot field drift. Never compiled, only
// lexed by the rule tests; the declarations exist so it reads like real
// component code.
#include "snapshot/format.hpp"

struct Drifted {
  dc::Status save(dc::snapshot::SnapshotWriter& writer) const;
  dc::Status restore(dc::snapshot::SnapshotReader& reader);
  unsigned owned_ = 0;
  unsigned busy_ = 0;
  bool started_ = false;
};

dc::Status Drifted::save(dc::snapshot::SnapshotWriter& writer) const {
  writer.begin_section("drifted");
  writer.field_u64("owned", owned_);
  writer.field_u64("busy", busy_);
  writer.field_bool("started", started_);
  writer.end_section();
  return dc::Status::ok();
}

// "started" is written above but never read back: drift.
dc::Status Drifted::restore(dc::snapshot::SnapshotReader& reader) {
  DC_RETURN_IF_ERROR(reader.begin_section("drifted"));
  std::uint64_t owned = 0;
  DC_RETURN_IF_ERROR(reader.read_u64("owned", owned));
  std::uint64_t busy = 0;
  DC_RETURN_IF_ERROR(reader.read_u64("busy", busy));
  return reader.end_section();
}

// Symmetric pair: two writes, two reads — clean. The nested
// ledger_.save/restore delegation must not count toward either side.
struct Composite {
  dc::Status save(dc::snapshot::SnapshotWriter& writer) const;
  dc::Status restore(dc::snapshot::SnapshotReader& reader);
};

dc::Status Composite::save(dc::snapshot::SnapshotWriter& writer) const {
  writer.field_time("opened", opened_);
  writer.field_bool("bounded", bounded_);
  return ledger_.save(writer);
}

dc::Status Composite::restore(dc::snapshot::SnapshotReader& reader) {
  DC_RETURN_IF_ERROR(reader.read_time("opened", opened_));
  DC_RETURN_IF_ERROR(reader.read_bool("bounded", bounded_));
  return ledger_.restore(reader);
}

// Drifted the other way (reads one more than it writes), but carries a
// reviewed waiver.
struct Waived {
  dc::Status save(dc::snapshot::SnapshotWriter& writer) const;
  dc::Status restore(dc::snapshot::SnapshotReader& reader);
};

dc::Status Waived::save(dc::snapshot::SnapshotWriter& writer) const {
  writer.field_u64("count", count_);
  return dc::Status::ok();
}

dc::Status Waived::restore(dc::snapshot::SnapshotReader& reader) {  // NOLINT(dc-r6)
  DC_RETURN_IF_ERROR(reader.read_u64("count", count_));
  std::uint64_t legacy = 0;
  DC_RETURN_IF_ERROR(reader.read_u64("legacy", legacy));
  return dc::Status::ok();
}
