// Fixture: dc-r13 violations — wall-clock dependence in campaign code.
// Expected as src/campaign/*: 4 diagnostics (lines 12, 17, 19, 21),
// 1 waived (line 33); annotated supervision lines are exempt. The same
// source outside src/campaign is clean: the rule is path-gated.
#include <chrono>
#include <filesystem>
#include <thread>

namespace fixture {

long long stamp_artifact() {
  auto t0 = std::chrono::steady_clock::now();  // violation: clock type
  (void)t0;
  return 0;
}
void throttle(const std::filesystem::path& p) {
  std::this_thread::sleep_for(std::chrono::milliseconds(5));  // violation
  // Violation: elapsed wall time via a filesystem timestamp.
  auto ts = std::filesystem::last_write_time(p);
  (void)ts;
  usleep(100);  // violation: POSIX sleep
}
void supervise() {
  // OK: annotated supervision plumbing — staleness needs a real clock.
  auto mark = std::chrono::steady_clock::now();  // dc-wallclock: heartbeat staleness
  (void)mark;
  // dc-wallclock: poll interval between waitpid sweeps
  std::this_thread::sleep_for(std::chrono::milliseconds(25));
}
void waived_site() {
  // Waived: a reviewed exception recorded the NOLINT way instead of the
  // annotation; both spellings must keep working.
  pause();  // NOLINT(dc-r13)
}
struct Timer;
void fine(Timer* timer) {
  // No violation: member calls named `sleep` belong to someone else.
  timer->sleep();
  // No violation: the token only appears in a string: sleep_for(
  const char* doc = "calls sleep_for( and pause( at runtime";
  (void)doc;
}
}  // namespace fixture
