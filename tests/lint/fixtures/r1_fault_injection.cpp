// Fixture: dc-r1 in fault-injection code — failure gaps, victim picks and
// repair delays must come from the seeded util/rng, never ambient entropy
// or the wall clock. Expected: 4 diagnostics (lines 10, 14, 18, 21),
// 1 waived (line 25).
#include <chrono>
#include <cstdlib>
#include <random>

long next_failure_gap_bad() {
  return time(nullptr) % 3600;  // violation: wall-clock failure schedule
}
int victim_index_bad(int targets) {
  // Violation: the global C RNG picks the victim.
  return rand() % targets;
}
long repair_delay_bad() {
  // Violation: wall-clock repair deadline.
  auto at = std::chrono::system_clock::now();
  (void)at;
  // Violation: ambient entropy decides the MTTR jitter.
  std::random_device entropy;
  return static_cast<long>(entropy());
}
// Waived: the documented seed construction site for an experiment config.
unsigned long domain_seed() { std::random_device d; return d(); }  // NOLINT(dc-r1)

struct Rng {
  explicit Rng(unsigned long seed) : state(seed) {}
  unsigned long state;
  double exponential(double mean);
  long uniform_int(long lo, long hi);
};
// Clean: the failure domain draws its gap, victim, and repair delay from
// the seeded dc::Rng, exactly like src/core/fault/fault_domain.cpp.
long next_failure_gap_good(Rng& rng, double mttf) {
  return static_cast<long>(rng.exponential(mttf));
}
long victim_index_good(Rng& rng, long targets) {
  return rng.uniform_int(0, targets - 1);
}
