// Fixture: dc-r14 violations — raw writes in durable-artifact paths.
// Expected as src/obs/*: 5 diagnostics (lines 14, 19, 22, 27, 31),
// 1 waived (line 49); read-side I/O, our own open() methods, and the
// annotated raw channel are exempt. The same source outside
// src/snapshot|src/campaign|src/obs is clean: the rule is path-gated.
#include <cstdio>
#include <fcntl.h>
#include <fstream>

namespace fixture {

void export_report(const char* path) {
  // Violation: buffered stream write, outside the crash-atomic path.
  std::ofstream out(path);
  out << "x";
}
const char* mode_of();
void append_log(const char* path) {
  std::FILE* f = std::fopen(path, "ab");  // violation: stdio write mode
  (void)f;
  // Violation: a computed mode is flagged conservatively.
  std::FILE* g = std::fopen(path, mode_of());
  (void)g;
}
int raw_fd(const char* path) {
  // Violation: POSIX open with write-side flags.
  return ::open(path, O_WRONLY | O_CREAT, 0644);
}
int legacy_fd(const char* path) {
  // Violation: creat always writes.
  return ::creat(path, 0644);
}
void read_side(const char* path) {
  std::ifstream in(path);                  // OK: read stream
  std::FILE* f = std::fopen(path, "rb");   // OK: read mode
  const int fd = ::open(path, O_RDONLY);   // OK: no write flags
  (void)in, (void)f, (void)fd;
}
struct Appender {
  static Appender open(const char* path);  // OK: our own open(), no O_ flags
};
void routed(const char* path) { (void)Appender::open(path); }
void tracer(const char* path) {
  // OK: a reviewed out-of-band channel carries the annotation.
  const int fd = ::open(path, O_WRONLY | O_APPEND, 0644);  // dc-rawio: trace append channel
  (void)fd;
}
void waived(const char* path) {
  std::ofstream out(path);  // NOLINT(dc-r14)
  (void)out;
}
}  // namespace fixture
