// dc-r9 fixture: snapshot save/restore name drift, checked across
// translation units against r9_snapshot_drift.hpp. Never compiled, only
// lexed by the rule tests.
#include "r9_snapshot_drift.hpp"

namespace fixture {

dc::Status DriftedServer::save(dc::snapshot::SnapshotWriter& writer) const {
  writer.field_u64("owned", owned_);
  writer.field_u64("busy", busy_);
  writer.field_bool("started", started_);
  return dc::Status::ok();
}

// "started" is written above but never read back, and "legacy" is read
// but never written: both directions of drift.
dc::Status DriftedServer::restore(dc::snapshot::SnapshotReader& reader) {
  DC_RETURN_IF_ERROR(reader.read_u64("owned", owned_));
  DC_RETURN_IF_ERROR(reader.read_u64("busy", busy_));
  std::uint64_t legacy = 0;
  DC_RETURN_IF_ERROR(reader.read_u64("legacy", legacy));
  return dc::Status::ok();
}

// Drifted too ("high_water" saved, never restored), but the literal line
// carries a reviewed waiver written against the superseded dc-r6 rule,
// which must keep working as an alias for dc-r9.
struct AliasWaived {
  dc::Status save(dc::snapshot::SnapshotWriter& writer) const;
  dc::Status restore(dc::snapshot::SnapshotReader& reader);
};

dc::Status AliasWaived::save(dc::snapshot::SnapshotWriter& writer) const {
  writer.field_u64("count", count_);
  writer.field_u64("high_water", high_water_);  // NOLINT(dc-r6)
  return dc::Status::ok();
}

dc::Status AliasWaived::restore(dc::snapshot::SnapshotReader& reader) {
  DC_RETURN_IF_ERROR(reader.read_u64("count", count_));
  return dc::Status::ok();
}

}  // namespace fixture
