// Fixture: dc-r3 violations — raw allocation in simulation hot-path files.
// The test lints this file under the display path "src/sim/..." so the
// path-gated rule applies.
// Expected: 3 diagnostics (lines 10, 12, 14), 2 waived (lines 17-18).
#include <cstdlib>
#include <new>

void allocations() {
  // Violation: raw new in the hot path.
  int* raw = new int(7);
  // Violation: raw delete.
  delete raw;
  // Violation: C allocation.
  void* block = malloc(64);
  std::free(block);
  // Waived: documented escape hatch.
  int* escape = new int(9);  // NOLINT(dc-r3)
  delete escape;             // NOLINT(dc-r3)
}

struct Slot {
  // No violation: deleted special members are declarations, not allocation.
  Slot(const Slot&) = delete;
  Slot& operator=(const Slot&) = delete;
};

void placement(void* storage) {
  // No violation: placement new constructs in place without allocating.
  ::new (storage) int(3);
}
