// Fixture: dc-r7 violations — direct stdio output in an instrumented
// subsystem (linted as if under src/core; the same file is clean when
// linted under its real fixtures path, because the rule is path-gated).
// Expected under src/core: 4 diagnostics (lines 11, 14, 16, 18), 1 waived
// (line 21).
#include <cstdio>

struct Printer { int puts(const char* text); };

void narrate(double usage) {
  std::printf("usage %.2f\n", usage);           // violation: stdout bypass
  // Violation: stderr bypass shears across sweep threads and cannot be
  // silenced by tests.
  std::fprintf(stderr, "usage %.2f\n", usage);
  if (usage > 1.0) {
    puts("over capacity");                      // violation
  }
  std::fputs("done\n", stdout);                 // violation
  // Waived: a documented, deliberate direct write (e.g. a usage() help
  // screen compiled into this TU).
  std::fprintf(stderr, "usage: ...\n");  // NOLINT(dc-r7)
}

void fine(Printer& printer, char* buffer, double usage) {
  // No violation: formatting into a buffer produces no output.
  std::snprintf(buffer, 64, "usage %.2f", usage);
  // No violation: member calls named like stdio belong to someone else.
  printer.puts("hello");
}
