// Fixture: dc-r2 violations — unordered-container iteration.
// Expected: 3 diagnostics (lines 13, 19, 30), 1 waived (line 25).
#include <cstdint>
#include <map>
#include <unordered_map>
#include <unordered_set>

std::unordered_map<int, long> totals;
using Index = std::unordered_set<std::int64_t>;

long sum_totals() {
  long sum = 0;
  for (const auto& entry : totals) {  // violation: hash order feeds a result
    sum += entry.second;
  }
  return sum;
}
void explicit_iterators() {
  auto it = totals.begin();  // violation: iterator traversal
  (void)it;
}
long waived_sum() {
  long sum = 0;
  // NOLINTNEXTLINE(dc-r2) keys are summed, so order cannot affect the result
  for (const auto& entry : totals) sum += entry.second;
  return sum;
}
void alias_iteration() {
  Index index;
  for (std::int64_t id : index) {  // violation: alias of an unordered type
    (void)id;
  }
}
long fine() {
  // No violation: point lookups don't depend on iteration order.
  long hit = totals.count(3) != 0 ? totals[3] : 0;
  // No violation: ordered containers iterate deterministically.
  std::map<int, long> ordered;
  for (const auto& entry : ordered) hit += entry.second;
  return hit;
}
