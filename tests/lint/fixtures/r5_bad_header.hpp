// Fixture: dc-r5 violations — header with no include guard and a
// namespace-polluting using-directive.
// Expected: 2 diagnostics (lines 1, 7).
#include <string>

namespace fixture {
using namespace std;  // violation: leaks std into every includer

inline string shout(const string& s) { return s + "!"; }

}  // namespace fixture
