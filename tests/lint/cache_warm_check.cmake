# Warm-cache invariance check for dc_lint, run as a ctest script:
#
#   cmake -DDC_LINT=<binary> -DSOURCE_ROOT=<repo> -DWORK_DIR=<scratch>
#         -P cache_warm_check.cmake
#
# Two identical invocations share a fresh cache. The first run is fully
# cold (every file a miss); the second must be served entirely from the
# cache AND reproduce the cold run's report byte-for-byte — a cache hit
# that changes any conclusion is a correctness bug, not a performance one.

foreach(var DC_LINT SOURCE_ROOT WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "missing -D${var}=...")
  endif()
endforeach()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")
set(cache_file "${WORK_DIR}/cache.txt")

set(lint_args
  --cache "${cache_file}" --stats
  --baseline "${SOURCE_ROOT}/dc_lint_baseline.txt"
  src tools bench)

execute_process(
  COMMAND "${DC_LINT}" ${lint_args}
  WORKING_DIRECTORY "${SOURCE_ROOT}"
  OUTPUT_VARIABLE cold_out
  ERROR_VARIABLE cold_err
  RESULT_VARIABLE cold_rc)
if(NOT cold_rc EQUAL 0)
  message(FATAL_ERROR "cold run failed (rc=${cold_rc}):\n${cold_out}${cold_err}")
endif()
if(NOT cold_err MATCHES "cache 0 hit / [1-9][0-9]* miss")
  message(FATAL_ERROR "cold run was not fully cold:\n${cold_err}")
endif()

execute_process(
  COMMAND "${DC_LINT}" ${lint_args}
  WORKING_DIRECTORY "${SOURCE_ROOT}"
  OUTPUT_VARIABLE warm_out
  ERROR_VARIABLE warm_err
  RESULT_VARIABLE warm_rc)
if(NOT warm_rc EQUAL 0)
  message(FATAL_ERROR "warm run failed (rc=${warm_rc}):\n${warm_out}${warm_err}")
endif()
if(NOT warm_err MATCHES "cache [1-9][0-9]* hit / 0 miss")
  message(FATAL_ERROR "warm run was not fully cached:\n${warm_err}")
endif()

if(NOT cold_out STREQUAL warm_out)
  message(FATAL_ERROR
    "warm-cache report diverged from the cold run\n"
    "--- cold ---\n${cold_out}\n--- warm ---\n${warm_out}")
endif()

message(STATUS "dc_lint cache: warm run fully cached and byte-identical")
