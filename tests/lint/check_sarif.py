#!/usr/bin/env python3
"""Structural validation of dc_lint's SARIF 2.1.0 output.

Usage: check_sarif.py <dc_lint-binary> <source-root>

Runs the linter twice: once over the full tree (expected clean, an empty
`results` array must still be well-formed) and once over a known-violation
fixture (the `results` shape is checked field by field). This is a schema
spot-check, not a full JSON-Schema validation — it pins exactly the parts
GitHub code scanning consumes.
"""
import json
import subprocess
import sys

EXPECTED_RULES = [
    "dc-r1", "dc-r2", "dc-r3", "dc-r4", "dc-r5", "dc-r6", "dc-r7", "dc-r8",
    "dc-r9", "dc-r10", "dc-r11", "dc-r12", "dc-r13", "dc-r14", "dc-waiver",
]


def fail(message):
    print("check_sarif: FAIL: " + message, file=sys.stderr)
    sys.exit(1)


def run_sarif(binary, root, paths, expected_rc):
    proc = subprocess.run(
        [binary, "--sarif", "--baseline", root + "/dc_lint_baseline.txt"]
        + paths,
        cwd=root, capture_output=True, text=True)
    if proc.returncode != expected_rc:
        fail("exit code %d (want %d) for %s:\n%s"
             % (proc.returncode, expected_rc, paths, proc.stderr))
    try:
        return json.loads(proc.stdout)
    except json.JSONDecodeError as err:
        fail("output is not valid JSON (%s):\n%s" % (err, proc.stdout[:2000]))


def check_log_shape(log):
    if log.get("$schema") != "https://json.schemastore.org/sarif-2.1.0.json":
        fail("wrong or missing $schema: %r" % log.get("$schema"))
    if log.get("version") != "2.1.0":
        fail("wrong SARIF version: %r" % log.get("version"))
    runs = log.get("runs")
    if not isinstance(runs, list) or len(runs) != 1:
        fail("expected exactly one run, got %r" % runs)
    run = runs[0]
    driver = run.get("tool", {}).get("driver", {})
    if driver.get("name") != "dc-lint":
        fail("tool.driver.name: %r" % driver.get("name"))
    if not driver.get("version"):
        fail("tool.driver.version is missing")
    rules = driver.get("rules")
    if [r.get("id") for r in rules] != EXPECTED_RULES:
        fail("rule descriptors drifted: %r" % [r.get("id") for r in rules])
    for rule in rules:
        if not rule.get("shortDescription", {}).get("text"):
            fail("rule %s has no shortDescription" % rule.get("id"))
        level = rule.get("defaultConfiguration", {}).get("level")
        if level not in ("error", "warning"):
            fail("rule %s has bad level %r" % (rule.get("id"), level))
    if run.get("columnKind") != "utf16CodeUnits":
        fail("columnKind: %r" % run.get("columnKind"))
    if not isinstance(run.get("results"), list):
        fail("results is not an array")
    return run["results"], [r["id"] for r in rules]


def check_result_shape(result, rule_ids):
    rule_id = result.get("ruleId")
    if rule_id not in rule_ids:
        fail("result has unknown ruleId %r" % rule_id)
    if result.get("ruleIndex") != rule_ids.index(rule_id):
        fail("ruleIndex %r does not match descriptor order for %s"
             % (result.get("ruleIndex"), rule_id))
    if result.get("level") not in ("error", "warning"):
        fail("result level: %r" % result.get("level"))
    if not result.get("message", {}).get("text"):
        fail("result has no message text")
    locations = result.get("locations")
    if not isinstance(locations, list) or len(locations) != 1:
        fail("expected one location, got %r" % locations)
    physical = locations[0].get("physicalLocation", {})
    uri = physical.get("artifactLocation", {}).get("uri")
    if not uri or uri.startswith("/"):
        fail("artifact uri must be relative and non-empty: %r" % uri)
    start_line = physical.get("region", {}).get("startLine")
    if not isinstance(start_line, int) or start_line < 1:
        fail("region.startLine: %r" % start_line)


def main():
    if len(sys.argv) != 3:
        fail("usage: check_sarif.py <dc_lint> <source-root>")
    binary, root = sys.argv[1], sys.argv[2]

    # The tree is clean: the log must be well-formed with zero results.
    tree = run_sarif(binary, root, ["src", "tools", "bench"], expected_rc=0)
    tree_results, _ = check_log_shape(tree)
    if tree_results:
        fail("tree run produced unexpected results: %r" % tree_results[:3])

    # A known-violation fixture: every result must carry the full shape.
    fixture = "tests/lint/fixtures/r1_wall_clock.cpp"
    dirty = run_sarif(binary, root, [fixture], expected_rc=1)
    dirty_results, rule_ids = check_log_shape(dirty)
    if len(dirty_results) != 5:
        fail("expected 5 results from %s, got %d" % (fixture, len(dirty_results)))
    for result in dirty_results:
        check_result_shape(result, rule_ids)

    print("check_sarif: OK (%d descriptors, %d fixture results)"
          % (len(rule_ids), len(dirty_results)))


if __name__ == "__main__":
    main()
