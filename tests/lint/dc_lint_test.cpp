// Pins down dc-lint's diagnostic surface against known-violation fixtures:
// exact counts, rule IDs, line numbers, waiver accounting, and the JSON
// report shape. If a rule's detection logic drifts, these fail loudly.
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "rules.hpp"

namespace {

// Compile-time path to tests/lint/fixtures/, injected by CMake.
std::string fixture(const std::string& name) {
  const std::string path = std::string(DC_LINT_FIXTURE_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << "missing fixture: " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::vector<int> lines_of(const dc_lint::LintResult& result) {
  std::vector<int> lines;
  for (const auto& d : result.diagnostics) lines.push_back(d.line);
  return lines;
}

void expect_all_rule(const dc_lint::LintResult& result, const std::string& rule,
                     const std::string& severity) {
  for (const auto& d : result.diagnostics) {
    EXPECT_EQ(d.rule, rule) << "at line " << d.line;
    EXPECT_EQ(d.severity, severity) << "at line " << d.line;
  }
}

TEST(DcLintR1, FlagsWallClockAndAmbientRng) {
  const auto result =
      dc_lint::lint_source("tests/lint/fixtures/r1_wall_clock.cpp",
                           fixture("r1_wall_clock.cpp"));
  expect_all_rule(result, "dc-r1", "error");
  EXPECT_EQ(lines_of(result), (std::vector<int>{9, 12, 13, 16, 19}));
  EXPECT_EQ(result.waived, 1);  // the NOLINT'd random_device
}

TEST(DcLintR1, FaultInjectionCodeMustUseSeededRng) {
  const auto result =
      dc_lint::lint_source("tests/lint/fixtures/r1_fault_injection.cpp",
                           fixture("r1_fault_injection.cpp"));
  expect_all_rule(result, "dc-r1", "error");
  EXPECT_EQ(lines_of(result), (std::vector<int>{10, 14, 18, 21}));
  EXPECT_EQ(result.waived, 1);  // the documented seed construction site
}

TEST(DcLintR1, RealFaultSubsystemIsClean) {
  // The shipped failure domain must itself satisfy the rule the fixture
  // demonstrates: every draw comes from the seeded util/rng.
  const std::string path =
      std::string(DC_LINT_FIXTURE_DIR) + "/../../../src/core/fault/fault_domain.cpp";
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.is_open()) << "missing source: " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  const auto result =
      dc_lint::lint_source("src/core/fault/fault_domain.cpp", buf.str());
  EXPECT_TRUE(result.diagnostics.empty())
      << dc_lint::to_human(result.diagnostics);
}

TEST(DcLintR2, FlagsUnorderedIterationIncludingAliases) {
  const auto result =
      dc_lint::lint_source("tests/lint/fixtures/r2_unordered_iteration.cpp",
                           fixture("r2_unordered_iteration.cpp"));
  expect_all_rule(result, "dc-r2", "error");
  // Range-for, explicit .begin(), and range-for over a `using` alias.
  EXPECT_EQ(lines_of(result), (std::vector<int>{13, 19, 30}));
  EXPECT_EQ(result.waived, 1);  // the NOLINTNEXTLINE'd sum
}

TEST(DcLintR3, FlagsRawAllocationOnlyUnderSrcSim) {
  const std::string source = fixture("r3_raw_allocation.cpp");

  // Linted as hot-path code: new / delete / malloc all fire.
  const auto hot = dc_lint::lint_source("src/sim/r3_raw_allocation.cpp", source);
  expect_all_rule(hot, "dc-r3", "error");
  EXPECT_EQ(lines_of(hot), (std::vector<int>{10, 12, 14}));
  EXPECT_EQ(hot.waived, 2);  // the NOLINT'd new/delete pair

  // The same source outside src/sim is clean: the rule is path-gated.
  const auto cold =
      dc_lint::lint_source("tests/lint/fixtures/r3_raw_allocation.cpp", source);
  EXPECT_TRUE(cold.diagnostics.empty());
  EXPECT_EQ(cold.waived, 0);
}

TEST(DcLintR4, FlagsFloatReductionsInParallelCallbacks) {
  const auto result =
      dc_lint::lint_source("tests/lint/fixtures/r4_parallel_reduction.cpp",
                           fixture("r4_parallel_reduction.cpp"));
  expect_all_rule(result, "dc-r4", "error");
  // Scalar double += and vector<float> element -=.
  EXPECT_EQ(lines_of(result), (std::vector<int>{13, 21}));
  EXPECT_EQ(result.waived, 1);  // the ordered-reduction annotation
}

TEST(DcLintR5, FlagsMissingGuardAndUsingNamespaceStd) {
  const auto result = dc_lint::lint_source(
      "tests/lint/fixtures/r5_bad_header.hpp", fixture("r5_bad_header.hpp"));
  expect_all_rule(result, "dc-r5", "warning");
  EXPECT_EQ(lines_of(result), (std::vector<int>{1, 7}));
  EXPECT_EQ(result.waived, 0);
}

TEST(DcLintR5, AcceptsGuardedHeader) {
  const auto result = dc_lint::lint_source(
      "tests/lint/fixtures/r5_good_header.hpp", fixture("r5_good_header.hpp"));
  EXPECT_TRUE(result.diagnostics.empty());
  EXPECT_EQ(result.waived, 0);
}

TEST(DcLintR6, FlagsSaveRestoreFieldDrift) {
  const auto result =
      dc_lint::lint_source("tests/lint/fixtures/r6_snapshot_drift.cpp",
                           fixture("r6_snapshot_drift.cpp"));
  expect_all_rule(result, "dc-r6", "error");
  // Drifted::restore reads 2 of the 3 saved fields; the symmetric
  // Composite pair is clean and its nested ledger_.save/restore
  // delegation is not counted; the Waived pair is NOLINT'd.
  EXPECT_EQ(lines_of(result), (std::vector<int>{24}));
  ASSERT_EQ(result.diagnostics.size(), 1u);
  EXPECT_NE(result.diagnostics[0].message.find("writes 3"), std::string::npos);
  EXPECT_NE(result.diagnostics[0].message.find("reads 2"), std::string::npos);
  EXPECT_EQ(result.waived, 1);
}

TEST(DcLintR6, RealSnapshotComponentsAreSymmetric) {
  // The shipped components must satisfy the rule the fixture demonstrates:
  // paired save/restore with matching field counts.
  for (const char* rel : {"/../../../src/core/htc_server.cpp",
                          "/../../../src/cluster/billing.cpp",
                          "/../../../src/core/fault/fault_domain.cpp"}) {
    const std::string path = std::string(DC_LINT_FIXTURE_DIR) + rel;
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.is_open()) << "missing source: " << path;
    std::ostringstream buf;
    buf << in.rdbuf();
    const auto result = dc_lint::lint_source(rel, buf.str());
    EXPECT_TRUE(result.diagnostics.empty())
        << rel << ":\n" << dc_lint::to_human(result.diagnostics);
  }
}

TEST(DcLintR7, FlagsDirectPrintOnlyUnderCoreAndSim) {
  const std::string source = fixture("r7_direct_print.cpp");

  // Linted as core code: every direct stdio output call fires.
  const auto core = dc_lint::lint_source("src/core/r7_direct_print.cpp", source);
  expect_all_rule(core, "dc-r7", "error");
  EXPECT_EQ(lines_of(core), (std::vector<int>{11, 14, 16, 18}));
  EXPECT_EQ(core.waived, 1);  // the NOLINT'd usage screen

  // src/sim is gated identically.
  const auto sim = dc_lint::lint_source("src/sim/r7_direct_print.cpp", source);
  EXPECT_EQ(lines_of(sim), (std::vector<int>{11, 14, 16, 18}));

  // The same source outside src/core and src/sim is clean: tools and
  // tests may print directly.
  const auto cold =
      dc_lint::lint_source("tests/lint/fixtures/r7_direct_print.cpp", source);
  EXPECT_TRUE(cold.diagnostics.empty()) << dc_lint::to_human(cold.diagnostics);
  EXPECT_EQ(cold.waived, 0);
}

TEST(DcLintR7, RealInstrumentedSubsystemsAreClean) {
  // The shipped core/sim sources must themselves satisfy dc-r7: all of
  // their narration goes through dc::Log or the DC_TRACE_* macros.
  for (const char* rel : {"/../../../src/core/htc_server.cpp",
                          "/../../../src/core/system_runner.cpp",
                          "/../../../src/sim/simulator.cpp"}) {
    const std::string path = std::string(DC_LINT_FIXTURE_DIR) + rel;
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.is_open()) << "missing source: " << path;
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string display =
        std::string("src/") + (rel + sizeof("/../../../src/") - 1);
    const auto result = dc_lint::lint_source(display, buf.str());
    EXPECT_TRUE(result.diagnostics.empty())
        << display << ":\n" << dc_lint::to_human(result.diagnostics);
  }
}

TEST(DcLintR8, FlagsFloatMathAndHashStorageOnlyInQueueSources) {
  const std::string source = fixture("r8_queue_math.cpp");

  // Linted as a scheduler-queue source: double/float tokens and the
  // unordered_map all fire.
  const auto queue = dc_lint::lint_source("src/sim/r8_queue_math.cpp", source);
  expect_all_rule(queue, "dc-r8", "error");
  EXPECT_EQ(lines_of(queue), (std::vector<int>{13, 18, 24}));
  EXPECT_EQ(queue.waived, 1);  // the NOLINT'd stats-only average

  // The same source under a src/sim path WITHOUT "queue" in it is clean:
  // the rule only polices the pluggable event queues.
  const auto plain = dc_lint::lint_source("src/sim/r8_bucket_math.cpp", source);
  EXPECT_TRUE(plain.diagnostics.empty()) << dc_lint::to_human(plain.diagnostics);

  // And outside src/sim entirely (the fixture's real home) it is clean too.
  const auto cold =
      dc_lint::lint_source("tests/lint/fixtures/r8_queue_math.cpp", source);
  EXPECT_TRUE(cold.diagnostics.empty());
  EXPECT_EQ(cold.waived, 0);
}

TEST(DcLintR8, RealQueueSourcesAreIntegerOnly) {
  // The shipped event queues must satisfy the rule the fixture
  // demonstrates: all bucket/heap math is integer-only, no hash storage.
  for (const char* rel : {"/../../../src/sim/event_queue.hpp",
                          "/../../../src/sim/event_queue.cpp",
                          "/../../../src/sim/calendar_queue.hpp",
                          "/../../../src/sim/calendar_queue.cpp"}) {
    const std::string path = std::string(DC_LINT_FIXTURE_DIR) + rel;
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.is_open()) << "missing source: " << path;
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string display =
        std::string("src/") + (rel + sizeof("/../../../src/") - 1);
    const auto result = dc_lint::lint_source(display, buf.str());
    EXPECT_TRUE(result.diagnostics.empty())
        << display << ":\n" << dc_lint::to_human(result.diagnostics);
  }
}

TEST(DcLintClean, CleanFileProducesNoDiagnostics) {
  const auto result = dc_lint::lint_source("tests/lint/fixtures/clean.cpp",
                                           fixture("clean.cpp"));
  EXPECT_TRUE(result.diagnostics.empty()) << dc_lint::to_human(result.diagnostics);
  EXPECT_EQ(result.waived, 0);
}

TEST(DcLintOutput, HumanFormatIsFileLineSeverityRule) {
  const auto result =
      dc_lint::lint_source("tests/lint/fixtures/r1_wall_clock.cpp",
                           fixture("r1_wall_clock.cpp"));
  const std::string human = dc_lint::to_human(result.diagnostics);
  EXPECT_NE(human.find("tests/lint/fixtures/r1_wall_clock.cpp:9: error[dc-r1]: "),
            std::string::npos)
      << human;
}

TEST(DcLintOutput, JsonReportShape) {
  const auto result =
      dc_lint::lint_source("tests/lint/fixtures/r1_wall_clock.cpp",
                           fixture("r1_wall_clock.cpp"));
  const std::string json =
      dc_lint::to_json(result.diagnostics, /*files_scanned=*/1, result.waived);
  EXPECT_NE(json.find("\"tool\":\"dc-lint\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"version\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"files_scanned\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"rule\":\"dc-r1\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"summary\":{\"errors\":5,\"warnings\":0,\"waived\":1}"),
            std::string::npos)
      << json;
}

TEST(DcLintOutput, JsonEscapesSpecialCharacters) {
  // A diagnostic whose file path needs escaping must produce valid JSON.
  std::vector<dc_lint::Diagnostic> diags = {
      {"dir\\sub\"quoted\".cpp", 3, "dc-r1", "error", "msg with \"quotes\""}};
  const std::string json = dc_lint::to_json(diags, 1, 0);
  EXPECT_NE(json.find("dir\\\\sub\\\"quoted\\\".cpp"), std::string::npos) << json;
  EXPECT_NE(json.find("msg with \\\"quotes\\\""), std::string::npos) << json;
}

TEST(DcLintWaivers, UnrelatedNolintDoesNotSuppress) {
  // A NOLINT for a different rule must not waive a dc-r1 diagnostic.
  const auto result = dc_lint::lint_source(
      "x.cpp", "long t() { return time(nullptr); }  // NOLINT(dc-r2)\n");
  ASSERT_EQ(result.diagnostics.size(), 1u);
  EXPECT_EQ(result.diagnostics[0].rule, "dc-r1");
  EXPECT_EQ(result.waived, 0);
}

}  // namespace
