// Pins down dc-lint's diagnostic surface against known-violation fixtures:
// exact counts, rule IDs, line numbers, waiver accounting, and the report
// shapes (JSON v2, SARIF 2.1.0). The project-model rules (dc-r9/r10/r12)
// are exercised both on fixtures and on the real tree sources — including
// seeded mutations that each rule family must catch.
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "baseline.hpp"
#include "cache.hpp"
#include "driver.hpp"
#include "fixes.hpp"
#include "project_model.hpp"
#include "rules.hpp"
#include "sarif.hpp"

namespace {

// Compile-time path to tests/lint/fixtures/, injected by CMake.
std::string fixture_path(const std::string& name) {
  return std::string(DC_LINT_FIXTURE_DIR) + "/" + name;
}

std::string read_file_or_die(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << "missing file: " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::string fixture(const std::string& name) {
  return read_file_or_die(fixture_path(name));
}

// A tree source, addressed relative to the repository root.
std::string real_source(const std::string& repo_relative) {
  return read_file_or_die(std::string(DC_LINT_FIXTURE_DIR) + "/../../../" +
                          repo_relative);
}

std::string replace_once(std::string text, const std::string& from,
                         const std::string& to) {
  const std::size_t at = text.find(from);
  EXPECT_NE(at, std::string::npos) << "pattern not found: " << from;
  if (at != std::string::npos) text.replace(at, from.size(), to);
  return text;
}

std::string temp_file(const std::string& name, const std::string& content) {
  const std::string path = ::testing::TempDir() + "dc_lint_test_" + name;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  EXPECT_TRUE(out.is_open()) << path;
  out << content;
  return path;
}

std::vector<int> lines_of(const std::vector<dc_lint::Diagnostic>& diagnostics) {
  std::vector<int> lines;
  for (const auto& d : diagnostics) lines.push_back(d.line);
  return lines;
}

std::vector<int> lines_of(const dc_lint::LintResult& result) {
  return lines_of(result.diagnostics);
}

void expect_all_rule(const std::vector<dc_lint::Diagnostic>& diagnostics,
                     const std::string& rule, const std::string& severity) {
  for (const auto& d : diagnostics) {
    EXPECT_EQ(d.rule, rule) << "at line " << d.line;
    EXPECT_EQ(d.severity, severity) << "at line " << d.line;
  }
}

void expect_all_rule(const dc_lint::LintResult& result, const std::string& rule,
                     const std::string& severity) {
  expect_all_rule(result.diagnostics, rule, severity);
}

// Mirrors the driver's project phase over in-memory (path, source) pairs:
// pass-1 analysis per file, the cross-TU join, then project diagnostics
// with inline-waiver consumption.
struct ProjectRun {
  std::vector<dc_lint::FileAnalysis> analyses;
  std::vector<dc_lint::Diagnostic> local;    // pass-1 diagnostics, all files
  std::vector<dc_lint::Diagnostic> project;  // r9/r10/r12 after waivers
  int waived = 0;                            // project-rule waivers only
};

ProjectRun join_project(
    const std::vector<std::pair<std::string, std::string>>& sources) {
  ProjectRun run;
  run.analyses.reserve(sources.size());
  for (const auto& [path, text] : sources) {
    run.analyses.push_back(dc_lint::analyze_file(path, text));
    const auto& a = run.analyses.back();
    run.local.insert(run.local.end(), a.diagnostics.begin(),
                     a.diagnostics.end());
  }
  std::vector<const dc_lint::FileFacts*> facts;
  facts.reserve(run.analyses.size());
  for (const auto& a : run.analyses) facts.push_back(&a.facts);
  const dc_lint::ProjectModel model(facts);

  std::vector<dc_lint::Diagnostic> diags = model.check_snapshot_semantics();
  std::vector<dc_lint::Diagnostic> layering = model.check_layering();
  diags.insert(diags.end(), layering.begin(), layering.end());
  std::vector<dc_lint::Diagnostic> registry = model.check_name_registry();
  diags.insert(diags.end(), registry.begin(), registry.end());

  for (dc_lint::Diagnostic& d : diags) {
    bool consumed = false;
    for (auto& a : run.analyses) {
      if (a.facts.path == d.file &&
          dc_lint::consume_waiver(a.waivers, d.line, d.rule)) {
        consumed = true;
        break;
      }
    }
    if (consumed) {
      ++run.waived;
      continue;
    }
    run.project.push_back(std::move(d));
  }
  dc_lint::sort_diagnostics(run.project);
  return run;
}

// ---------------------------------------------------------------------------
// Local rules (pass 1), pinned through the lint_source shim.

TEST(DcLintR1, FlagsWallClockAndAmbientRng) {
  const auto result =
      dc_lint::lint_source("tests/lint/fixtures/r1_wall_clock.cpp",
                           fixture("r1_wall_clock.cpp"));
  expect_all_rule(result, "dc-r1", "error");
  EXPECT_EQ(lines_of(result), (std::vector<int>{9, 12, 13, 16, 19}));
  EXPECT_EQ(result.waived, 1);  // the NOLINT'd random_device
}

TEST(DcLintR1, FaultInjectionCodeMustUseSeededRng) {
  const auto result =
      dc_lint::lint_source("tests/lint/fixtures/r1_fault_injection.cpp",
                           fixture("r1_fault_injection.cpp"));
  expect_all_rule(result, "dc-r1", "error");
  EXPECT_EQ(lines_of(result), (std::vector<int>{10, 14, 18, 21}));
  EXPECT_EQ(result.waived, 1);  // the documented seed construction site
}

TEST(DcLintR1, RealFaultSubsystemIsClean) {
  // The shipped failure domain must itself satisfy the rule the fixture
  // demonstrates: every draw comes from the seeded util/rng.
  const auto result =
      dc_lint::lint_source("src/core/fault/fault_domain.cpp",
                           real_source("src/core/fault/fault_domain.cpp"));
  EXPECT_TRUE(result.diagnostics.empty())
      << dc_lint::to_human(result.diagnostics);
}

TEST(DcLintR2, FlagsUnorderedIterationIncludingAliases) {
  const auto result =
      dc_lint::lint_source("tests/lint/fixtures/r2_unordered_iteration.cpp",
                           fixture("r2_unordered_iteration.cpp"));
  expect_all_rule(result, "dc-r2", "error");
  // Range-for, explicit .begin(), and range-for over a `using` alias.
  EXPECT_EQ(lines_of(result), (std::vector<int>{13, 19, 30}));
  EXPECT_EQ(result.waived, 1);  // the NOLINTNEXTLINE'd sum
}

TEST(DcLintR3, FlagsRawAllocationOnlyUnderSrcSim) {
  const std::string source = fixture("r3_raw_allocation.cpp");

  // Linted as hot-path code: new / delete / malloc all fire.
  const auto hot = dc_lint::lint_source("src/sim/r3_raw_allocation.cpp", source);
  expect_all_rule(hot, "dc-r3", "error");
  EXPECT_EQ(lines_of(hot), (std::vector<int>{10, 12, 14}));
  EXPECT_EQ(hot.waived, 2);  // the NOLINT'd new/delete pair

  // The same source outside src/sim is clean: the rule is path-gated.
  const auto cold =
      dc_lint::lint_source("tests/lint/fixtures/r3_raw_allocation.cpp", source);
  EXPECT_TRUE(cold.diagnostics.empty());
  EXPECT_EQ(cold.waived, 0);
}

TEST(DcLintR4, FlagsFloatReductionsInParallelCallbacks) {
  const auto result =
      dc_lint::lint_source("tests/lint/fixtures/r4_parallel_reduction.cpp",
                           fixture("r4_parallel_reduction.cpp"));
  std::vector<int> r4_lines;
  std::vector<int> r11_lines;
  for (const auto& d : result.diagnostics) {
    EXPECT_EQ(d.severity, "error") << "at line " << d.line;
    if (d.rule == "dc-r4") r4_lines.push_back(d.line);
    else if (d.rule == "dc-r11") r11_lines.push_back(d.line);
    else ADD_FAILURE() << d.rule << " at line " << d.line;
  }
  // Scalar double += and vector<float> element -=.
  EXPECT_EQ(r4_lines, (std::vector<int>{16, 24}));
  // The captured-ref accumulations are also sweep races; the loop-indexed
  // bins[i % 8] store is not.
  EXPECT_EQ(r11_lines, (std::vector<int>{16, 43}));
  // The ordered-reduction annotation waives both rules on its line.
  EXPECT_EQ(result.waived, 2);
}

TEST(DcLintR5, FlagsMissingGuardAndUsingNamespaceStd) {
  const auto result = dc_lint::lint_source(
      "tests/lint/fixtures/r5_bad_header.hpp", fixture("r5_bad_header.hpp"));
  expect_all_rule(result, "dc-r5", "warning");
  EXPECT_EQ(lines_of(result), (std::vector<int>{1, 7}));
  EXPECT_EQ(result.waived, 0);
}

TEST(DcLintR5, AcceptsGuardedHeader) {
  const auto result = dc_lint::lint_source(
      "tests/lint/fixtures/r5_good_header.hpp", fixture("r5_good_header.hpp"));
  EXPECT_TRUE(result.diagnostics.empty());
  EXPECT_EQ(result.waived, 0);
}

TEST(DcLintR7, FlagsDirectPrintOnlyUnderCoreAndSim) {
  const std::string source = fixture("r7_direct_print.cpp");

  // Linted as core code: every direct stdio output call fires.
  const auto core = dc_lint::lint_source("src/core/r7_direct_print.cpp", source);
  expect_all_rule(core, "dc-r7", "error");
  EXPECT_EQ(lines_of(core), (std::vector<int>{11, 14, 16, 18}));
  EXPECT_EQ(core.waived, 1);  // the NOLINT'd usage screen

  // src/sim is gated identically.
  const auto sim = dc_lint::lint_source("src/sim/r7_direct_print.cpp", source);
  EXPECT_EQ(lines_of(sim), (std::vector<int>{11, 14, 16, 18}));

  // The same source outside src/core and src/sim is clean: tools and
  // tests may print directly.
  const auto cold =
      dc_lint::lint_source("tests/lint/fixtures/r7_direct_print.cpp", source);
  EXPECT_TRUE(cold.diagnostics.empty()) << dc_lint::to_human(cold.diagnostics);
  EXPECT_EQ(cold.waived, 0);
}

TEST(DcLintR7, RealInstrumentedSubsystemsAreClean) {
  // The shipped core/sim sources must themselves satisfy dc-r7: all of
  // their narration goes through dc::Log or the DC_TRACE_* macros.
  for (const char* rel : {"src/core/htc_server.cpp",
                          "src/core/system_runner.cpp",
                          "src/sim/simulator.cpp"}) {
    const auto result = dc_lint::lint_source(rel, real_source(rel));
    EXPECT_TRUE(result.diagnostics.empty())
        << rel << ":\n" << dc_lint::to_human(result.diagnostics);
  }
}

TEST(DcLintR8, FlagsFloatMathAndHashStorageOnlyInQueueSources) {
  const std::string source = fixture("r8_queue_math.cpp");

  // Linted as a scheduler-queue source: double/float tokens and the
  // unordered_map all fire.
  const auto queue = dc_lint::lint_source("src/sim/r8_queue_math.cpp", source);
  expect_all_rule(queue, "dc-r8", "error");
  EXPECT_EQ(lines_of(queue), (std::vector<int>{13, 18, 24}));
  EXPECT_EQ(queue.waived, 1);  // the NOLINT'd stats-only average

  // The same source under a src/sim path WITHOUT "queue" in it is clean:
  // the rule only polices the pluggable event queues.
  const auto plain = dc_lint::lint_source("src/sim/r8_bucket_math.cpp", source);
  EXPECT_TRUE(plain.diagnostics.empty()) << dc_lint::to_human(plain.diagnostics);

  // And outside src/sim entirely (the fixture's real home) it is clean too.
  const auto cold =
      dc_lint::lint_source("tests/lint/fixtures/r8_queue_math.cpp", source);
  EXPECT_TRUE(cold.diagnostics.empty());
  EXPECT_EQ(cold.waived, 0);
}

TEST(DcLintR8, RealQueueSourcesAreIntegerOnly) {
  // The shipped event queues must satisfy the rule the fixture
  // demonstrates: all bucket/heap math is integer-only, no hash storage.
  for (const char* rel : {"src/sim/event_queue.hpp",
                          "src/sim/event_queue.cpp",
                          "src/sim/calendar_queue.hpp",
                          "src/sim/calendar_queue.cpp"}) {
    const auto result = dc_lint::lint_source(rel, real_source(rel));
    EXPECT_TRUE(result.diagnostics.empty())
        << rel << ":\n" << dc_lint::to_human(result.diagnostics);
  }
}

// ---------------------------------------------------------------------------
// dc-r9: snapshot semantic completeness across translation units.

TEST(DcLintR9, CrossTuNameDriftAndNeverPersistedMember) {
  const auto run = join_project(
      {{"tests/lint/fixtures/r9_snapshot_drift.hpp",
        fixture("r9_snapshot_drift.hpp")},
       {"tests/lint/fixtures/r9_snapshot_drift.cpp",
        fixture("r9_snapshot_drift.cpp")}});
  EXPECT_TRUE(run.local.empty()) << dc_lint::to_human(run.local);
  expect_all_rule(run.project, "dc-r9", "error");
  ASSERT_EQ(run.project.size(), 3u) << dc_lint::to_human(run.project);

  // "started" written but never read: reported at the save-side literal.
  EXPECT_EQ(run.project[0].file, "tests/lint/fixtures/r9_snapshot_drift.cpp");
  EXPECT_EQ(run.project[0].line, 11);
  EXPECT_NE(run.project[0].message.find("'started'"), std::string::npos);
  EXPECT_NE(run.project[0].message.find("never read"), std::string::npos);

  // "legacy" read but never written: reported at the restore-side literal.
  EXPECT_EQ(run.project[1].file, "tests/lint/fixtures/r9_snapshot_drift.cpp");
  EXPECT_EQ(run.project[1].line, 21);
  EXPECT_NE(run.project[1].message.find("'legacy'"), std::string::npos);
  EXPECT_NE(run.project[1].message.find("never written"), std::string::npos);

  // scratch_ is never persisted: reported at its declaration in the header.
  EXPECT_EQ(run.project[2].file, "tests/lint/fixtures/r9_snapshot_drift.hpp");
  EXPECT_EQ(run.project[2].line, 20);
  EXPECT_NE(run.project[2].message.find("'scratch_'"), std::string::npos);

  // trace_ carries // dc-volatile and must not be flagged; the AliasWaived
  // drift is suppressed by its NOLINT written against the old dc-r6 id.
  for (const auto& d : run.project) {
    EXPECT_EQ(d.message.find("trace_"), std::string::npos) << d.message;
    EXPECT_EQ(d.message.find("high_water"), std::string::npos) << d.message;
  }
  EXPECT_EQ(run.waived, 1);
}

TEST(DcLintR9, DynamicFieldNamesSkipTheLiteralDiff) {
  // When either persist body passes computed names, the literal sets are
  // not comparable and the name-drift half of the rule stays quiet.
  const char* source =
      "struct Dyn {\n"
      "  dc::Status save(dc::snapshot::SnapshotWriter& writer) const;\n"
      "  dc::Status restore(dc::snapshot::SnapshotReader& reader);\n"
      "};\n"
      "dc::Status Dyn::save(dc::snapshot::SnapshotWriter& writer) const {\n"
      "  for (const auto& [key, value] : table_) writer.field_u64(key, value);\n"
      "  return dc::Status::ok();\n"
      "}\n"
      "dc::Status Dyn::restore(dc::snapshot::SnapshotReader& reader) {\n"
      "  return dc::Status::ok();\n"
      "}\n";
  const auto run = join_project({{"dyn.cpp", source}});
  EXPECT_TRUE(run.project.empty()) << dc_lint::to_human(run.project);
}

TEST(DcLintR9, RealSnapshotPairIsCleanAndMutationIsCaught) {
  const std::string header = real_source("src/core/htc_server.hpp");
  const std::string body = real_source("src/core/htc_server.cpp");

  // The shipped pair is semantically complete.
  const auto clean = join_project({{"src/core/htc_server.hpp", header},
                                   {"src/core/htc_server.cpp", body}});
  std::vector<dc_lint::Diagnostic> r9;
  for (const auto& d : clean.project) {
    if (d.rule == "dc-r9") r9.push_back(d);
  }
  EXPECT_TRUE(r9.empty()) << dc_lint::to_human(r9);

  // Seeded mutation: rename one restore-side field literal. The rule must
  // catch both directions of the resulting drift — this is exactly the
  // renamed-but-not-restored bug class that desynchronizes resume.
  const std::string mutated =
      replace_once(body, "read_i64(\"owned\"", "read_i64(\"owned_nodes\"");
  const auto drifted = join_project({{"src/core/htc_server.hpp", header},
                                     {"src/core/htc_server.cpp", mutated}});
  std::vector<dc_lint::Diagnostic> caught;
  for (const auto& d : drifted.project) {
    if (d.rule == "dc-r9") caught.push_back(d);
  }
  ASSERT_EQ(caught.size(), 2u) << dc_lint::to_human(drifted.project);
  EXPECT_NE(caught[0].message.find("'owned'"), std::string::npos);
  EXPECT_NE(caught[0].message.find("never read"), std::string::npos);
  EXPECT_NE(caught[1].message.find("'owned_nodes'"), std::string::npos);
  EXPECT_NE(caught[1].message.find("never written"), std::string::npos);
}

// ---------------------------------------------------------------------------
// dc-r10: layering against the declared module DAG + include cycles.

TEST(DcLintR10, LayeringViolationAgainstDeclaredDag) {
  const auto run = join_project(
      {{"src/sim/engine.hpp", "#pragma once\n#include \"core/server.hpp\"\n"},
       {"src/core/server.hpp", "#pragma once\n"}});
  ASSERT_EQ(run.project.size(), 1u) << dc_lint::to_human(run.project);
  EXPECT_EQ(run.project[0].rule, "dc-r10");
  EXPECT_EQ(run.project[0].file, "src/sim/engine.hpp");
  EXPECT_EQ(run.project[0].line, 2);
  EXPECT_NE(run.project[0].message.find("src/sim may not include src/core"),
            std::string::npos)
      << run.project[0].message;
}

TEST(DcLintR10, DeclaredDependenciesAndSameModuleAreAllowed) {
  const auto run = join_project(
      {{"src/obs/exporter.hpp",
        "#pragma once\n#include \"snapshot/format.hpp\"\n"
        "#include \"obs/trace.hpp\"\n"},
       {"src/snapshot/format.hpp", "#pragma once\n"},
       {"src/obs/trace.hpp", "#pragma once\n"}});
  EXPECT_TRUE(run.project.empty()) << dc_lint::to_human(run.project);
}

TEST(DcLintR10, RundbSitsAboveCoreButBelowCampaign) {
  // The run-store module may reach down into core/obs/snapshot/util (and
  // campaign may reach into it), but nothing below may include it.
  const auto ok = join_project(
      {{"src/rundb/replay.hpp",
        "#pragma once\n#include \"core/systems.hpp\"\n"
        "#include \"obs/trace.hpp\"\n"},
       {"src/campaign/orchestrator.cpp", "#include \"rundb/store.hpp\"\n"},
       {"src/rundb/store.hpp", "#pragma once\n"},
       {"src/core/systems.hpp", "#pragma once\n"},
       {"src/obs/trace.hpp", "#pragma once\n"}});
  EXPECT_TRUE(ok.project.empty()) << dc_lint::to_human(ok.project);

  const auto bad = join_project(
      {{"src/core/runner.cpp", "#include \"rundb/store.hpp\"\n"},
       {"src/rundb/store.hpp", "#pragma once\n"}});
  ASSERT_EQ(bad.project.size(), 1u) << dc_lint::to_human(bad.project);
  EXPECT_EQ(bad.project[0].rule, "dc-r10");
  EXPECT_NE(bad.project[0].message.find("src/core may not include src/rundb"),
            std::string::npos)
      << bad.project[0].message;
}

TEST(DcLintR10, SrcMayNotReachOutsideSrc) {
  const auto run = join_project(
      {{"src/util/helper.cpp",
        "#include \"../../tools/bench_report.hpp\"\n"},
       {"tools/bench_report.hpp", "#pragma once\n"}});
  ASSERT_EQ(run.project.size(), 1u) << dc_lint::to_human(run.project);
  EXPECT_EQ(run.project[0].rule, "dc-r10");
  EXPECT_NE(run.project[0].message.find("outside src/"), std::string::npos);
}

TEST(DcLintR10, UnknownModuleMustJoinTheDag) {
  const auto run = join_project(
      {{"src/newmod/thing.hpp", "#pragma once\n#include \"util/status.hpp\"\n"},
       {"src/util/status.hpp", "#pragma once\n"}});
  ASSERT_EQ(run.project.size(), 1u) << dc_lint::to_human(run.project);
  EXPECT_EQ(run.project[0].rule, "dc-r10");
  EXPECT_NE(run.project[0].message.find("not in the declared layering DAG"),
            std::string::npos);
}

TEST(DcLintR10, IncludeCycleIsReportedExactlyOnce) {
  const auto run = join_project(
      {{"src/util/a.hpp", "#pragma once\n#include \"util/b.hpp\"\n"},
       {"src/util/b.hpp", "#pragma once\n#include \"util/a.hpp\"\n"}});
  ASSERT_EQ(run.project.size(), 1u) << dc_lint::to_human(run.project);
  EXPECT_EQ(run.project[0].rule, "dc-r10");
  EXPECT_EQ(run.project[0].file, "src/util/a.hpp");
  EXPECT_NE(run.project[0].message.find(
                "include cycle: src/util/a.hpp -> src/util/b.hpp -> "
                "src/util/a.hpp"),
            std::string::npos)
      << run.project[0].message;
}

TEST(DcLintR10, ConditionalEdgesCannotFormCycles) {
  // Mutually exclusive #if branches cannot close a cycle in any single
  // build, so the back-edge under #ifdef is exempt.
  const auto run = join_project(
      {{"src/util/c1.hpp", "#pragma once\n#include \"util/c2.hpp\"\n"},
       {"src/util/c2.hpp",
        "#pragma once\n#ifdef DC_LOOP\n#include \"util/c1.hpp\"\n#endif\n"}});
  EXPECT_TRUE(run.project.empty()) << dc_lint::to_human(run.project);
}

TEST(DcLintProjectModel, IncludeResolutionWithinTheAnalyzedSet) {
  const auto a1 = dc_lint::analyze_file(
      "src/snapshot/writer.hpp",
      "#pragma once\n#include \"format.hpp\"\n#include <vector>\n"
      "#include \"util/status.hpp\"\n#include \"nowhere/missing.hpp\"\n");
  const auto a2 =
      dc_lint::analyze_file("src/snapshot/format.hpp", "#pragma once\n");
  const auto a3 =
      dc_lint::analyze_file("src/util/status.hpp", "#pragma once\n");
  const dc_lint::ProjectModel model({&a1.facts, &a2.facts, &a3.facts});

  // Directory-relative and src/-rooted spellings both resolve; angled and
  // unresolvable includes contribute no edges.
  EXPECT_EQ(model.includes_of("src/snapshot/writer.hpp"),
            (std::vector<std::string>{"src/snapshot/format.hpp",
                                      "src/util/status.hpp"}));
  EXPECT_EQ(model.edges().size(), 2u);
  EXPECT_TRUE(model.check_layering().empty());
}

// ---------------------------------------------------------------------------
// dc-r11: sweep-race heuristic.

TEST(DcLintR11, FlagsCapturedSharedWritesNotIndexedByLoopVar) {
  const auto result =
      dc_lint::lint_source("tests/lint/fixtures/r11_sweep_race.cpp",
                           fixture("r11_sweep_race.cpp"));
  expect_all_rule(result, "dc-r11", "error");
  // Captured-ref accumulate, captured struct field, captured pointer
  // target; the indexed store, the body-local, and the copy-captured
  // scalar stay quiet.
  EXPECT_EQ(lines_of(result), (std::vector<int>{13, 14, 15}));
  ASSERT_EQ(result.diagnostics.size(), 3u);
  EXPECT_NE(result.diagnostics[0].message.find("'total'"), std::string::npos);
  EXPECT_NE(result.diagnostics[1].message.find("'stats'"), std::string::npos);
  EXPECT_NE(result.diagnostics[2].message.find("'shared'"), std::string::npos);
  EXPECT_NE(result.diagnostics[0].message.find("loop variable 'i'"),
            std::string::npos);
  EXPECT_EQ(result.waived, 1);  // the NOLINT'd monotonic hint
}

TEST(DcLintR11, RealSweepIsCleanAndMutationIsCaught) {
  const std::string source = real_source("bench/fig09_blue_sweep.cpp");

  // The shipped sweep writes only callback-locals and its return value.
  const auto clean =
      dc_lint::lint_source("bench/fig09_blue_sweep.cpp", source);
  EXPECT_TRUE(clean.diagnostics.empty())
      << dc_lint::to_human(clean.diagnostics);

  // Seeded mutation: redirect a callback-local write onto the captured
  // sweep base — the unsynchronized shared write the rule exists for.
  const std::string mutated = replace_once(
      source, "core::HtcWorkloadSpec spec = base;",
      "core::HtcWorkloadSpec spec = base;\n        base = spec;");
  const auto raced =
      dc_lint::lint_source("bench/fig09_blue_sweep.cpp", mutated);
  ASSERT_EQ(raced.diagnostics.size(), 1u)
      << dc_lint::to_human(raced.diagnostics);
  EXPECT_EQ(raced.diagnostics[0].rule, "dc-r11");
  EXPECT_NE(raced.diagnostics[0].message.find("'base'"), std::string::npos);
}

// ---------------------------------------------------------------------------
// dc-r12: trace/metric name-registry consistency.

TEST(DcLintR12, RegistryConflictsWithinOneFile) {
  const auto run =
      join_project({{"tests/lint/fixtures/r12_name_registry.cpp",
                     fixture("r12_name_registry.cpp")}});
  expect_all_rule(run.project, "dc-r12", "error");
  EXPECT_EQ(lines_of(run.project), (std::vector<int>{7, 14, 16}));
  ASSERT_EQ(run.project.size(), 3u);
  EXPECT_NE(run.project[0].message.find("duplicate TraceName"),
            std::string::npos);
  EXPECT_NE(run.project[0].message.find("'job.start'"), std::string::npos);
  EXPECT_NE(run.project[1].message.find("span here"), std::string::npos);
  EXPECT_NE(run.project[2].message.find("metric 'jobs.completed'"),
            std::string::npos);
  EXPECT_NE(run.project[2].message.find("gauge"), std::string::npos);
}

TEST(DcLintR12, DuplicateTraceNameAcrossFiles) {
  const auto run = join_project(
      {{"a.cpp", "const dc::obs::TraceName kA{\"evt.shared\"};\n"},
       {"b.cpp", "const dc::obs::TraceName kB{\"evt.shared\"};\n"}});
  ASSERT_EQ(run.project.size(), 1u) << dc_lint::to_human(run.project);
  EXPECT_EQ(run.project[0].rule, "dc-r12");
  EXPECT_EQ(run.project[0].file, "b.cpp");
  EXPECT_NE(run.project[0].message.find("a.cpp:1"), std::string::npos);
}

// ---------------------------------------------------------------------------
// dc-r13: wall-clock dependence in campaign code.

TEST(DcLintR13, FlagsWallClockOnlyUnderSrcCampaign) {
  const std::string source = fixture("r13_campaign_wallclock.cpp");

  // Linted as campaign code: the unannotated clock type, sleeps, and the
  // filesystem timestamp all fire; the two `// dc-wallclock:` annotated
  // supervision lines stay quiet.
  const auto hot =
      dc_lint::lint_source("src/campaign/r13_campaign_wallclock.cpp", source);
  expect_all_rule(hot, "dc-r13", "error");
  EXPECT_EQ(lines_of(hot), (std::vector<int>{12, 17, 19, 21}));
  EXPECT_EQ(hot.waived, 1);  // the NOLINT'd pause()
  ASSERT_EQ(hot.diagnostics.size(), 4u);
  EXPECT_NE(hot.diagnostics[0].message.find("'steady_clock'"),
            std::string::npos);
  EXPECT_NE(hot.diagnostics[0].message.find("dc-wallclock"), std::string::npos);

  // The same source outside src/campaign is clean: the rule is path-gated.
  const auto cold = dc_lint::lint_source(
      "tests/lint/fixtures/r13_campaign_wallclock.cpp", source);
  EXPECT_TRUE(cold.diagnostics.empty()) << dc_lint::to_human(cold.diagnostics);
  EXPECT_EQ(cold.waived, 0);
}

TEST(DcLintR13, RealCampaignSourcesCarryAnnotatedSupervisionOnly) {
  // The shipped orchestrator/worker use wall time only on annotated
  // supervision lines — every diagnostic the rule would raise is already
  // covered by a `// dc-wallclock: <reason>`.
  for (const char* rel :
       {"src/campaign/spec.cpp", "src/campaign/journal.cpp",
        "src/campaign/orchestrator.cpp", "src/campaign/worker.cpp"}) {
    const auto result = dc_lint::lint_source(rel, real_source(rel));
    EXPECT_TRUE(result.diagnostics.empty())
        << rel << ":\n" << dc_lint::to_human(result.diagnostics);
  }
}

// ---------------------------------------------------------------------------
// dc-r14: raw writes in durable-artifact paths.

TEST(DcLintR14, FlagsRawWritesOnlyInDurableArtifactPaths) {
  const std::string source = fixture("r14_raw_io.cpp");

  // Linted as an obs source: the ofstream, the two write-mode/computed-mode
  // fopens, the write-flag open, and creat all fire; read-side I/O, the
  // project's own open() method, and the dc-rawio annotated channel stay
  // quiet.
  const auto hot = dc_lint::lint_source("src/obs/r14_raw_io.cpp", source);
  expect_all_rule(hot, "dc-r14", "error");
  EXPECT_EQ(lines_of(hot), (std::vector<int>{14, 19, 22, 27, 31}));
  EXPECT_EQ(hot.waived, 1);  // the NOLINT'd ofstream
  ASSERT_EQ(hot.diagnostics.size(), 5u);
  EXPECT_NE(hot.diagnostics[0].message.find("std::ofstream"),
            std::string::npos);
  EXPECT_NE(hot.diagnostics[0].message.find("dc-rawio"), std::string::npos);
  EXPECT_NE(hot.diagnostics[3].message.find("::open()"), std::string::npos);

  // The other durable-artifact subsystems are gated identically.
  expect_all_rule(dc_lint::lint_source("src/snapshot/r14_raw_io.cpp", source),
                  "dc-r14", "error");
  expect_all_rule(dc_lint::lint_source("src/campaign/r14_raw_io.cpp", source),
                  "dc-r14", "error");
  expect_all_rule(dc_lint::lint_source("src/rundb/r14_raw_io.cpp", source),
                  "dc-r14", "error");

  // The same source outside those directories is clean.
  const auto cold =
      dc_lint::lint_source("tests/lint/fixtures/r14_raw_io.cpp", source);
  EXPECT_TRUE(cold.diagnostics.empty()) << dc_lint::to_human(cold.diagnostics);
  EXPECT_EQ(cold.waived, 0);
}

TEST(DcLintR14, RealDurableArtifactSourcesWriteThroughFsio) {
  // The shipped snapshot/campaign/rundb/obs writers all route through
  // util/fsio's atomic_write_file or the faultfs primitives — the rule
  // raises nothing against them.
  for (const char* rel :
       {"src/snapshot/format.cpp", "src/campaign/journal.cpp",
        "src/campaign/orchestrator.cpp", "src/campaign/worker.cpp",
        "src/rundb/store.cpp", "src/rundb/replay.cpp",
        "src/rundb/report.cpp", "src/obs/metrics.cpp",
        "src/obs/trace.cpp"}) {
    const auto result = dc_lint::lint_source(rel, real_source(rel));
    EXPECT_TRUE(result.diagnostics.empty())
        << rel << ":\n" << dc_lint::to_human(result.diagnostics);
  }
}

// ---------------------------------------------------------------------------
// Reports: human, JSON v2, SARIF 2.1.0.

TEST(DcLintClean, CleanFileProducesNoDiagnostics) {
  const auto result = dc_lint::lint_source("tests/lint/fixtures/clean.cpp",
                                           fixture("clean.cpp"));
  EXPECT_TRUE(result.diagnostics.empty()) << dc_lint::to_human(result.diagnostics);
  EXPECT_EQ(result.waived, 0);
}

TEST(DcLintOutput, HumanFormatIsFileLineSeverityRule) {
  const auto result =
      dc_lint::lint_source("tests/lint/fixtures/r1_wall_clock.cpp",
                           fixture("r1_wall_clock.cpp"));
  const std::string human = dc_lint::to_human(result.diagnostics);
  EXPECT_NE(human.find("tests/lint/fixtures/r1_wall_clock.cpp:9: error[dc-r1]: "),
            std::string::npos)
      << human;
}

TEST(DcLintOutput, JsonReportShape) {
  const auto result =
      dc_lint::lint_source("tests/lint/fixtures/r1_wall_clock.cpp",
                           fixture("r1_wall_clock.cpp"));
  const std::string json = dc_lint::to_json(
      result.diagnostics, /*files_scanned=*/1, result.waived, /*baselined=*/2);
  EXPECT_NE(json.find("\"tool\":\"dc-lint\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"version\":2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"files_scanned\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"rule\":\"dc-r1\""), std::string::npos) << json;
  EXPECT_NE(
      json.find(
          "\"summary\":{\"errors\":5,\"warnings\":0,\"waived\":1,\"baselined\":2}"),
      std::string::npos)
      << json;
}

TEST(DcLintOutput, JsonEscapesSpecialCharacters) {
  // A diagnostic whose file path needs escaping must produce valid JSON.
  std::vector<dc_lint::Diagnostic> diags = {
      {"dir\\sub\"quoted\".cpp", 3, "dc-r1", "error", "msg with \"quotes\""}};
  const std::string json = dc_lint::to_json(diags, 1, 0, 0);
  EXPECT_NE(json.find("dir\\\\sub\\\"quoted\\\".cpp"), std::string::npos) << json;
  EXPECT_NE(json.find("msg with \\\"quotes\\\""), std::string::npos) << json;
}

TEST(DcLintSarif, EmitsTheSarif210Shape) {
  const auto result =
      dc_lint::lint_source("tests/lint/fixtures/r1_wall_clock.cpp",
                           fixture("r1_wall_clock.cpp"));
  const std::string sarif = dc_lint::to_sarif(result.diagnostics, "2.0.0");
  EXPECT_NE(sarif.find("\"$schema\":\"https://json.schemastore.org/"
                       "sarif-2.1.0.json\""),
            std::string::npos)
      << sarif;
  EXPECT_NE(sarif.find("\"version\":\"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("\"name\":\"dc-lint\""), std::string::npos);
  EXPECT_NE(sarif.find("\"version\":\"2.0.0\""), std::string::npos);
  // Every rule ships a descriptor, in table order, so ruleIndex is stable.
  for (const dc_lint::RuleInfo& rule : dc_lint::rule_table()) {
    EXPECT_NE(sarif.find("{\"id\":\"" + std::string(rule.id) + "\""),
              std::string::npos)
        << rule.id;
  }
  EXPECT_NE(sarif.find("\"ruleId\":\"dc-r1\",\"ruleIndex\":0,\"level\":"
                       "\"error\""),
            std::string::npos)
      << sarif;
  EXPECT_NE(sarif.find("\"artifactLocation\":{\"uri\":\"tests/lint/fixtures/"
                       "r1_wall_clock.cpp\"}"),
            std::string::npos);
  EXPECT_NE(sarif.find("\"region\":{\"startLine\":9}"), std::string::npos);
  EXPECT_NE(sarif.find("\"columnKind\":\"utf16CodeUnits\""), std::string::npos);
}

TEST(DcLintSarif, EscapesMessageText) {
  std::vector<dc_lint::Diagnostic> diags = {
      {"a.cpp", 1, "dc-r1", "error", "say \"hi\"\nnewline"}};
  const std::string sarif = dc_lint::to_sarif(diags, "2.0.0");
  EXPECT_NE(sarif.find("say \\\"hi\\\"\\nnewline"), std::string::npos) << sarif;
}

// ---------------------------------------------------------------------------
// Incremental cache.

TEST(DcLintCache, RoundTripPreservesTheFullAnalysis) {
  const std::string path = "tests/lint/fixtures/r9_snapshot_drift.cpp";
  const std::string source = fixture("r9_snapshot_drift.cpp");
  const auto analysis = dc_lint::analyze_file(path, source);
  const std::uint64_t hash = dc_lint::fnv1a_hash(source);

  dc_lint::AnalysisCache cache;
  cache.store(path, hash, analysis);
  EXPECT_EQ(cache.size(), 1u);
  const std::string cache_path = ::testing::TempDir() + "dc_lint_cache_rt.txt";
  ASSERT_TRUE(cache.save(cache_path));

  dc_lint::AnalysisCache loaded;
  ASSERT_TRUE(loaded.load(cache_path));
  dc_lint::FileAnalysis out;
  ASSERT_TRUE(loaded.lookup(path, hash, out));

  EXPECT_EQ(out.line_count, analysis.line_count);
  EXPECT_EQ(out.waived, analysis.waived);
  ASSERT_EQ(out.diagnostics.size(), analysis.diagnostics.size());
  for (std::size_t i = 0; i < out.diagnostics.size(); ++i) {
    EXPECT_EQ(out.diagnostics[i].file, analysis.diagnostics[i].file);
    EXPECT_EQ(out.diagnostics[i].line, analysis.diagnostics[i].line);
    EXPECT_EQ(out.diagnostics[i].rule, analysis.diagnostics[i].rule);
    EXPECT_EQ(out.diagnostics[i].message, analysis.diagnostics[i].message);
  }
  ASSERT_EQ(out.waivers.size(), analysis.waivers.size());
  for (std::size_t i = 0; i < out.waivers.size(); ++i) {
    EXPECT_EQ(out.waivers[i].rule, analysis.waivers[i].rule);
    EXPECT_EQ(out.waivers[i].target_line, analysis.waivers[i].target_line);
    EXPECT_EQ(out.waivers[i].group, analysis.waivers[i].group);
    EXPECT_EQ(out.waivers[i].used, analysis.waivers[i].used);
  }

  // Facts survive verbatim: the project phase must reach identical
  // conclusions from a cache hit as from a fresh lex.
  const auto& facts = analysis.facts;
  EXPECT_EQ(out.facts.path, facts.path);
  EXPECT_EQ(out.facts.is_header, facts.is_header);
  EXPECT_EQ(out.facts.includes.size(), facts.includes.size());
  EXPECT_EQ(out.facts.classes.size(), facts.classes.size());
  ASSERT_EQ(out.facts.persists.size(), facts.persists.size());
  for (std::size_t i = 0; i < out.facts.persists.size(); ++i) {
    EXPECT_EQ(out.facts.persists[i].class_name, facts.persists[i].class_name);
    EXPECT_EQ(out.facts.persists[i].is_save, facts.persists[i].is_save);
    EXPECT_EQ(out.facts.persists[i].names, facts.persists[i].names);
    EXPECT_EQ(out.facts.persists[i].idents, facts.persists[i].idents);
  }
  EXPECT_EQ(out.facts.name_regs.size(), facts.name_regs.size());
  std::remove(cache_path.c_str());
}

TEST(DcLintCache, ContentHashAndUnknownFilesMiss) {
  const std::string source = "int x = 0;\n";
  const auto analysis = dc_lint::analyze_file("a.cpp", source);
  const std::uint64_t hash = dc_lint::fnv1a_hash(source);

  dc_lint::AnalysisCache cache;
  cache.store("a.cpp", hash, analysis);
  dc_lint::FileAnalysis out;
  EXPECT_TRUE(cache.lookup("a.cpp", hash, out));
  EXPECT_FALSE(cache.lookup("a.cpp", hash ^ 1, out));  // content changed
  EXPECT_FALSE(cache.lookup("b.cpp", hash, out));      // never stored
}

TEST(DcLintCache, RejectsOtherRulesVersionsAndCorruptFiles) {
  dc_lint::AnalysisCache cache;
  EXPECT_FALSE(cache.load(::testing::TempDir() + "dc_lint_no_such_cache"));

  const std::string stale = temp_file(
      "stale_cache.txt", "dc-lint-cache 1 dc-lint-0.0.1\nF 0 a.cpp\n");
  EXPECT_FALSE(cache.load(stale));
  EXPECT_EQ(cache.size(), 0u);

  const std::string garbage = temp_file("garbage_cache.txt", "not a cache\n");
  EXPECT_FALSE(cache.load(garbage));
  EXPECT_EQ(cache.size(), 0u);
}

// ---------------------------------------------------------------------------
// Baseline: parse, match, stale audit, severity overrides, render.

TEST(DcLintBaseline, ParsesMatchesAndReportsStaleEntries) {
  const std::string path = temp_file(
      "baseline.txt",
      "# accepted findings\n"
      "severity dc-r9 warning\n"
      "dc-r9|src/a.cpp|msg one\n"
      "dc-r9|src/b.cpp|msg two\n");
  std::vector<std::string> errors;
  dc_lint::Baseline baseline = dc_lint::load_baseline(path, errors);
  EXPECT_TRUE(errors.empty());
  EXPECT_TRUE(baseline.loaded);
  ASSERT_EQ(baseline.entries.size(), 2u);
  ASSERT_EQ(baseline.severities.size(), 1u);

  std::vector<dc_lint::Diagnostic> diags = {
      {"src/a.cpp", 5, "dc-r9", "error", "msg one"}};
  dc_lint::apply_severity_overrides(baseline, diags);
  EXPECT_EQ(diags[0].severity, "warning");

  // Entries are line-number-free: code motion does not churn them.
  EXPECT_TRUE(dc_lint::baseline_match(baseline, diags[0]));
  EXPECT_FALSE(dc_lint::baseline_match(
      baseline, {"src/a.cpp", 5, "dc-r9", "error", "different message"}));
  EXPECT_EQ(dc_lint::stale_baseline_entries(baseline),
            (std::vector<std::string>{"dc-r9|src/b.cpp|msg two"}));
}

TEST(DcLintBaseline, MissingFileIsEmptyNotLoaded) {
  std::vector<std::string> errors;
  const dc_lint::Baseline baseline = dc_lint::load_baseline(
      ::testing::TempDir() + "dc_lint_no_such_baseline", errors);
  EXPECT_TRUE(errors.empty());
  EXPECT_FALSE(baseline.loaded);
  EXPECT_TRUE(baseline.entries.empty());
}

TEST(DcLintBaseline, MalformedLinesAreReportedWithPositions) {
  const std::string path = temp_file(
      "baseline_bad.txt",
      "severity dc-r99 warning\n"
      "dc-r1 no pipes here\n");
  std::vector<std::string> errors;
  dc_lint::load_baseline(path, errors);
  ASSERT_EQ(errors.size(), 2u);
  EXPECT_NE(errors[0].find(":1: malformed severity"), std::string::npos)
      << errors[0];
  EXPECT_NE(errors[1].find(":2: malformed entry"), std::string::npos)
      << errors[1];
}

TEST(DcLintBaseline, RenderKeepsSeverityDirectives) {
  dc_lint::Baseline previous;
  previous.severities.emplace_back("dc-r9", "warning");
  const std::vector<dc_lint::Diagnostic> diags = {
      {"src/a.cpp", 5, "dc-r9", "warning", "msg one"}};
  const std::string text = dc_lint::render_baseline(previous, diags);
  EXPECT_NE(text.find("severity dc-r9 warning"), std::string::npos) << text;
  EXPECT_NE(text.find("dc-r9|src/a.cpp|msg one"), std::string::npos) << text;
}

// ---------------------------------------------------------------------------
// Mechanical fixes.

TEST(DcLintFixes, InsertsPragmaOnceAfterTheLeadingCommentBlock) {
  const std::string text =
      "// Header comment.\n"
      "// Second line.\n"
      "\n"
      "int value();\n";
  const std::vector<dc_lint::Diagnostic> diags = {
      {"h.hpp", 1, "dc-r5", "warning",
       "header is missing '#pragma once' (or a classic include guard)"}};
  std::vector<std::pair<std::string, int>> fixed;
  const dc_lint::FixResult result = dc_lint::apply_fixes(text, diags, fixed);
  EXPECT_TRUE(result.changed);
  EXPECT_EQ(result.applied, 1);
  EXPECT_EQ(result.text,
            "// Header comment.\n"
            "// Second line.\n"
            "\n"
            "#pragma once\n"
            "int value();\n");
}

TEST(DcLintFixes, StripsStaleWaiverComments) {
  const std::string text =
      "int a = 0;  // NOLINT(dc-r3)\n"
      "// NOLINTNEXTLINE(dc-r1)\n"
      "int b = 0;\n";
  const std::vector<dc_lint::Diagnostic> diags = {
      {"f.cpp", 1, "dc-waiver", "error", "stale"},
      {"f.cpp", 2, "dc-waiver", "error", "stale"}};
  std::vector<std::pair<std::string, int>> fixed;
  const dc_lint::FixResult result = dc_lint::apply_fixes(text, diags, fixed);
  EXPECT_TRUE(result.changed);
  EXPECT_EQ(result.applied, 2);
  // The trailing comment is trimmed; the full-line comment is deleted.
  EXPECT_EQ(result.text, "int a = 0;\nint b = 0;\n");
}

// ---------------------------------------------------------------------------
// Driver: end-to-end over real files, stale-waiver audit, warm cache.

TEST(DcLintDriver, EndToEndOverTheFixturePair) {
  dc_lint::DriverOptions options;
  options.roots = {fixture_path("r9_snapshot_drift.hpp"),
                   fixture_path("r9_snapshot_drift.cpp")};
  options.jobs = 2;
  const dc_lint::DriverResult result = dc_lint::run_driver(options);
  EXPECT_TRUE(result.errors.empty());
  EXPECT_EQ(result.files_scanned, 2);
  EXPECT_EQ(result.diagnostics.size(), 3u)
      << dc_lint::to_human(result.diagnostics);
  expect_all_rule(result.diagnostics, "dc-r9", "error");
  EXPECT_EQ(result.waived, 1);  // the dc-r6 alias NOLINT
}

TEST(DcLintDriver, StaleWaiverIsAuditedAndFixed) {
  const std::string path = temp_file(
      "stale_waiver.cpp",
      "int answer() { return 42; }  // NOLINT(dc-r1)\n"
      "int other() { return 7; }\n");

  dc_lint::DriverOptions options;
  options.roots = {path};
  const dc_lint::DriverResult audited = dc_lint::run_driver(options);
  ASSERT_EQ(audited.diagnostics.size(), 1u)
      << dc_lint::to_human(audited.diagnostics);
  EXPECT_EQ(audited.diagnostics[0].rule, "dc-waiver");
  EXPECT_EQ(audited.diagnostics[0].line, 1);

  // --fix strips the comment, drops the diagnostic, and leaves the file
  // clean for the next run.
  options.fix = true;
  const dc_lint::DriverResult fixed = dc_lint::run_driver(options);
  EXPECT_EQ(fixed.fixes_applied, 1);
  EXPECT_TRUE(fixed.diagnostics.empty())
      << dc_lint::to_human(fixed.diagnostics);
  EXPECT_EQ(read_file_or_die(path),
            "int answer() { return 42; }\nint other() { return 7; }\n");

  options.fix = false;
  const dc_lint::DriverResult rerun = dc_lint::run_driver(options);
  EXPECT_TRUE(rerun.diagnostics.empty());
  std::remove(path.c_str());
}

TEST(DcLintDriver, WarmCacheRunReproducesTheColdRun) {
  dc_lint::DriverOptions options;
  options.roots = {fixture_path("r9_snapshot_drift.hpp"),
                   fixture_path("r9_snapshot_drift.cpp")};
  options.cache_path = ::testing::TempDir() + "dc_lint_driver_cache.txt";
  std::remove(options.cache_path.c_str());

  const dc_lint::DriverResult cold = dc_lint::run_driver(options);
  EXPECT_EQ(cold.cache_hits, 0);
  EXPECT_EQ(cold.cache_misses, 2);

  const dc_lint::DriverResult warm = dc_lint::run_driver(options);
  EXPECT_EQ(warm.cache_hits, 2);
  EXPECT_EQ(warm.cache_misses, 0);

  // A cache hit must reach identical conclusions, including the project
  // phase re-run over the cached facts and the waiver accounting.
  EXPECT_EQ(dc_lint::to_human(warm.diagnostics),
            dc_lint::to_human(cold.diagnostics));
  EXPECT_EQ(warm.waived, cold.waived);
  std::remove(options.cache_path.c_str());
}

// ---------------------------------------------------------------------------
// Waivers.

TEST(DcLintWaivers, UnrelatedNolintDoesNotSuppress) {
  // A NOLINT for a different rule must not waive a dc-r1 diagnostic.
  const auto result = dc_lint::lint_source(
      "x.cpp", "long t() { return time(nullptr); }  // NOLINT(dc-r2)\n");
  ASSERT_EQ(result.diagnostics.size(), 1u);
  EXPECT_EQ(result.diagnostics[0].rule, "dc-r1");
  EXPECT_EQ(result.waived, 0);
}

TEST(DcLintWaivers, DcR6AliasConsumesDcR9ButNotOthers) {
  std::vector<dc_lint::WaiverSite> sites = {{"dc-r6", 10, 10, 0, false}};
  EXPECT_FALSE(dc_lint::consume_waiver(sites, 10, "dc-r10"));
  EXPECT_FALSE(sites[0].used);
  EXPECT_TRUE(dc_lint::consume_waiver(sites, 10, "dc-r9"));
  EXPECT_TRUE(sites[0].used);
}

TEST(DcLintWaivers, UnusedSitesKeepTheirGroupForTheAudit) {
  const auto analysis = dc_lint::analyze_file(
      "x.cpp",
      "long t() { return time(nullptr); }  // NOLINT(dc-r1)\n"
      "int unused() { return 0; }  // NOLINT(dc-r2)\n");
  ASSERT_EQ(analysis.waivers.size(), 2u);
  EXPECT_TRUE(analysis.waivers[0].used);   // consumed by the dc-r1 hit
  EXPECT_FALSE(analysis.waivers[1].used);  // matched nothing: audit fodder
  EXPECT_NE(analysis.waivers[0].group, analysis.waivers[1].group);
}

}  // namespace
