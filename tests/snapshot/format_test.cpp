// Snapshot encoding regression: round trips for every field kind, the
// name/kind mismatch diagnostics, and the whole-stream integrity checks
// (magic, version, checksum, truncation) that keep a damaged snapshot
// from ever restoring silently wrong state.
#include "snapshot/format.hpp"

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

namespace dc::snapshot {
namespace {

std::string sample_stream() {
  SnapshotWriter writer;
  writer.begin_section("kernel");
  writer.field_u64("seq", 42);
  writer.field_i64("balance", -7);
  writer.end_section();
  writer.begin_section("server");
  writer.field_f64("hours", 1.5);
  writer.field_bool("started", true);
  writer.field_str("name", "det");
  const char blob[] = {0x00, 0x7f, 0x01};
  writer.field_bytes("blob", blob, sizeof(blob));
  writer.begin_section("ledger");
  writer.field_time("opened", 3600);
  writer.end_section();
  writer.end_section();
  return writer.finish();
}

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

void write_bytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST(SnapshotFormat, RoundTripsEveryFieldKind) {
  auto reader = SnapshotReader::from_buffer(sample_stream());
  ASSERT_TRUE(reader.is_ok()) << reader.status().to_string();

  ASSERT_TRUE(reader->begin_section("kernel").is_ok());
  std::uint64_t seq = 0;
  ASSERT_TRUE(reader->read_u64("seq", seq).is_ok());
  EXPECT_EQ(seq, 42u);
  std::int64_t balance = 0;
  ASSERT_TRUE(reader->read_i64("balance", balance).is_ok());
  EXPECT_EQ(balance, -7);
  EXPECT_TRUE(reader->at_section_end());
  ASSERT_TRUE(reader->end_section().is_ok());

  ASSERT_TRUE(reader->begin_section("server").is_ok());
  double hours = 0.0;
  ASSERT_TRUE(reader->read_f64("hours", hours).is_ok());
  EXPECT_DOUBLE_EQ(hours, 1.5);
  bool started = false;
  ASSERT_TRUE(reader->read_bool("started", started).is_ok());
  EXPECT_TRUE(started);
  std::string name;
  ASSERT_TRUE(reader->read_str("name", name).is_ok());
  EXPECT_EQ(name, "det");
  std::string blob;
  ASSERT_TRUE(reader->read_bytes("blob", blob).is_ok());
  EXPECT_EQ(blob, std::string("\x00\x7f\x01", 3));
  ASSERT_TRUE(reader->begin_section("ledger").is_ok());
  SimTime opened = 0;
  ASSERT_TRUE(reader->read_time("opened", opened).is_ok());
  EXPECT_EQ(opened, 3600);
  ASSERT_TRUE(reader->end_section().is_ok());
  ASSERT_TRUE(reader->end_section().is_ok());
}

TEST(SnapshotFormat, FieldNameMismatchNamesBothSides) {
  SnapshotWriter writer;
  writer.field_u64("actual", 1);
  auto reader = SnapshotReader::from_buffer(writer.finish());
  ASSERT_TRUE(reader.is_ok());
  std::uint64_t out = 0;
  const Status status = reader->read_u64("expected", out);
  ASSERT_FALSE(status.is_ok());
  EXPECT_NE(status.message().find("expected"), std::string::npos);
  EXPECT_NE(status.message().find("actual"), std::string::npos);
}

TEST(SnapshotFormat, FieldKindMismatchIsTyped) {
  SnapshotWriter writer;
  writer.field_u64("value", 9);
  auto reader = SnapshotReader::from_buffer(writer.finish());
  ASSERT_TRUE(reader.is_ok());
  std::string out;
  const Status status = reader->read_str("value", out);
  ASSERT_FALSE(status.is_ok());
  EXPECT_NE(status.message().find("value"), std::string::npos);
}

TEST(SnapshotFormat, SectionContextAppearsInErrors) {
  SnapshotWriter writer;
  writer.begin_section("outer");
  writer.begin_section("inner");
  writer.field_u64("x", 1);
  writer.end_section();
  writer.end_section();
  auto reader = SnapshotReader::from_buffer(writer.finish());
  ASSERT_TRUE(reader.is_ok());
  ASSERT_TRUE(reader->begin_section("outer").is_ok());
  ASSERT_TRUE(reader->begin_section("inner").is_ok());
  std::uint64_t out = 0;
  const Status status = reader->read_u64("missing", out);
  ASSERT_FALSE(status.is_ok());
  EXPECT_NE(status.message().find("outer.inner"), std::string::npos)
      << status.message();
}

TEST(SnapshotFormat, TruncatedStreamRejected) {
  std::string bytes = sample_stream();
  bytes.resize(bytes.size() - 5);
  auto reader = SnapshotReader::from_buffer(std::move(bytes));
  ASSERT_FALSE(reader.is_ok());
  EXPECT_NE(reader.status().message().find("checksum"), std::string::npos)
      << reader.status().message();
}

TEST(SnapshotFormat, FlippedByteRejected) {
  std::string bytes = sample_stream();
  bytes[bytes.size() / 2] ^= 0x40;
  auto reader = SnapshotReader::from_buffer(std::move(bytes));
  ASSERT_FALSE(reader.is_ok());
  EXPECT_NE(reader.status().message().find("corrupt"), std::string::npos)
      << reader.status().message();
}

TEST(SnapshotFormat, BadMagicRejected) {
  std::string bytes = sample_stream();
  bytes[0] = 'X';
  auto reader = SnapshotReader::from_buffer(std::move(bytes));
  ASSERT_FALSE(reader.is_ok());
  EXPECT_NE(reader.status().message().find("magic"), std::string::npos);
}

TEST(SnapshotFormat, VersionSkewNamesBothVersions) {
  std::string bytes = sample_stream();
  // The u32 version sits right after the 8-byte magic (little-endian).
  bytes[sizeof(kMagic)] = static_cast<char>(kFormatVersion + 1);
  auto reader = SnapshotReader::from_buffer(std::move(bytes));
  ASSERT_FALSE(reader.is_ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(reader.status().message().find("version"), std::string::npos);
}

TEST(SnapshotFormat, EmptyAndTinyStreamsRejected) {
  EXPECT_FALSE(SnapshotReader::from_buffer("").is_ok());
  EXPECT_FALSE(SnapshotReader::from_buffer("DCSNAP").is_ok());
}

TEST(SnapshotFormat, MissingFileIsNotFound) {
  const auto reader = SnapshotReader::from_file(temp_path("does_not_exist.dcsnap"));
  ASSERT_FALSE(reader.is_ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kNotFound);
}

TEST(SnapshotFormat, WriteFileIsAtomicAndVerifies) {
  const std::string path = temp_path("atomic.dcsnap");
  SnapshotWriter writer;
  writer.field_u64("x", 7);
  ASSERT_TRUE(writer.write_file(path).is_ok());
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"))
      << "temp file must be renamed away";
  auto reader = SnapshotReader::from_file(path);
  ASSERT_TRUE(reader.is_ok()) << reader.status().to_string();
  std::uint64_t x = 0;
  ASSERT_TRUE(reader->read_u64("x", x).is_ok());
  EXPECT_EQ(x, 7u);
}

TEST(SnapshotFormat, WriteFileFailureLeavesNoDebris) {
  // write_file goes through the fsync-hardened atomic_write_file path
  // (util/fsio.hpp): when the target's directory does not exist, the
  // write must fail without creating the directory, the file, or a stray
  // temp file — a crashed/failed snapshot write can never be mistaken for
  // a valid one.
  const std::string dir = temp_path("no_such_snapshot_dir");
  std::filesystem::remove_all(dir);
  const std::string path = dir + "/chunk.dcsnap";
  SnapshotWriter writer;
  writer.field_u64("x", 7);
  const Status st = writer.write_file(path);
  ASSERT_FALSE(st.is_ok());
  EXPECT_FALSE(std::filesystem::exists(dir));
  EXPECT_FALSE(std::filesystem::exists(path));
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
}

TEST(SnapshotFormat, WriteFileOverwriteStaysValid) {
  // Overwriting an existing snapshot is all-or-nothing at the rename: the
  // new bytes must verify end-to-end afterwards.
  const std::string path = temp_path("overwrite.dcsnap");
  SnapshotWriter old_writer;
  old_writer.field_u64("x", 1);
  ASSERT_TRUE(old_writer.write_file(path).is_ok());
  SnapshotWriter new_writer;
  new_writer.field_u64("x", 2);
  new_writer.field_str("extra", "grown");
  ASSERT_TRUE(new_writer.write_file(path).is_ok());
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  auto reader = SnapshotReader::from_file(path);
  ASSERT_TRUE(reader.is_ok()) << reader.status().to_string();
  std::uint64_t x = 0;
  ASSERT_TRUE(reader->read_u64("x", x).is_ok());
  EXPECT_EQ(x, 2u);
}

TEST(SnapshotFormat, ReadRecordsDecodesTheWholeStream) {
  const std::string path = temp_path("records.dcsnap");
  write_bytes(path, sample_stream());
  auto records = read_records(path);
  ASSERT_TRUE(records.is_ok()) << records.status().to_string();
  ASSERT_FALSE(records->empty());
  bool found = false;
  for (const SnapshotRecord& record : *records) {
    if (record.name == "opened") {
      EXPECT_EQ(record.section, "server.ledger");
      EXPECT_EQ(record.value_text(), "3600");
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(SnapshotFormat, DiffReportsFirstDivergingField) {
  const std::string golden_path = temp_path("diff_golden.dcsnap");
  const std::string other_path = temp_path("diff_other.dcsnap");
  SnapshotWriter golden;
  golden.begin_section("server");
  golden.field_u64("owned", 32);
  golden.field_u64("busy", 4);
  golden.end_section();
  ASSERT_TRUE(golden.write_file(golden_path).is_ok());
  SnapshotWriter other;
  other.begin_section("server");
  other.field_u64("owned", 32);
  other.field_u64("busy", 5);
  other.end_section();
  ASSERT_TRUE(other.write_file(other_path).is_ok());

  std::string report;
  auto same = diff_snapshots(golden_path, other_path, &report);
  ASSERT_TRUE(same.is_ok()) << same.status().to_string();
  EXPECT_FALSE(*same);
  EXPECT_NE(report.find("server"), std::string::npos) << report;
  EXPECT_NE(report.find("busy"), std::string::npos) << report;

  report.clear();
  same = diff_snapshots(golden_path, golden_path, &report);
  ASSERT_TRUE(same.is_ok());
  EXPECT_TRUE(*same);
}

TEST(SnapshotFormat, SectionDigestsLocalizeDivergence) {
  const std::string a_path = temp_path("digest_a.dcsnap");
  const std::string b_path = temp_path("digest_b.dcsnap");
  auto make = [](std::uint64_t busy) {
    SnapshotWriter writer;
    writer.begin_section("kernel");
    writer.field_u64("seq", 10);
    writer.end_section();
    writer.begin_section("server");
    writer.field_u64("busy", busy);
    writer.end_section();
    return writer;
  };
  ASSERT_TRUE(make(4).write_file(a_path).is_ok());
  ASSERT_TRUE(make(5).write_file(b_path).is_ok());
  auto a = section_digests(a_path);
  auto b = section_digests(b_path);
  ASSERT_TRUE(a.is_ok());
  ASSERT_TRUE(b.is_ok());
  ASSERT_EQ(a->size(), 2u);
  ASSERT_EQ(b->size(), 2u);
  EXPECT_EQ((*a)[0].first, "kernel");
  EXPECT_EQ((*a)[0].second, (*b)[0].second) << "untouched section digests match";
  EXPECT_EQ((*a)[1].first, "server");
  EXPECT_NE((*a)[1].second, (*b)[1].second) << "diverged section digest differs";
}

TEST(SnapshotFormat, RollingDigestChangesWithEveryField) {
  SnapshotWriter writer;
  const std::uint64_t d0 = writer.digest();
  writer.field_u64("a", 1);
  const std::uint64_t d1 = writer.digest();
  writer.field_u64("b", 2);
  const std::uint64_t d2 = writer.digest();
  EXPECT_NE(d0, d1);
  EXPECT_NE(d1, d2);
}

}  // namespace
}  // namespace dc::snapshot
