// Campaign-journal regression: frame round trips, the crash-semantics
// split (torn tail warn-and-drop vs mid-file corruption refusal), and the
// pid-lease lock that rejects a second orchestrator.
#include "campaign/journal.hpp"

#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include <unistd.h>

#include "util/log.hpp"

namespace dc::campaign {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void dump(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

void write_sample_journal(const std::string& path) {
  auto appender = JournalAppender::open(path);
  ASSERT_TRUE(appender.is_ok()) << appender.status().to_string();
  ASSERT_TRUE(appender->append(JournalEntry::campaign(0xabcd, 4)).is_ok());
  ASSERT_TRUE(
      appender->append(JournalEntry::cell_state(0, CellState::kClaimed, 1))
          .is_ok());
  JournalEntry running = JournalEntry::cell_state(0, CellState::kRunning, 1);
  running.pid = 4242;
  ASSERT_TRUE(appender->append(running).is_ok());
  JournalEntry done = JournalEntry::cell_state(0, CellState::kDone, 1);
  done.artifact_digest = 0xfeedbeef;
  ASSERT_TRUE(appender->append(done).is_ok());
  JournalEntry failed = JournalEntry::cell_state(1, CellState::kFailed, 2);
  failed.reason = "exit code 3";
  ASSERT_TRUE(appender->append(failed).is_ok());
}

TEST(Journal, RoundTripsEveryEntryShape) {
  const std::string path = temp_path("journal_roundtrip.dcj");
  ::unlink(path.c_str());
  write_sample_journal(path);

  auto contents = load_journal(path);
  ASSERT_TRUE(contents.is_ok()) << contents.status().to_string();
  EXPECT_FALSE(contents->truncated_tail);
  ASSERT_EQ(contents->entries.size(), 5u);

  EXPECT_EQ(contents->entries[0].kind, JournalEntry::Kind::kCampaign);
  EXPECT_EQ(contents->entries[0].spec_digest, 0xabcdu);
  EXPECT_EQ(contents->entries[0].cell_count, 4u);

  EXPECT_EQ(contents->entries[2].state, CellState::kRunning);
  EXPECT_EQ(contents->entries[2].pid, 4242);
  EXPECT_EQ(contents->entries[3].artifact_digest, 0xfeedbeefu);
  EXPECT_EQ(contents->entries[4].attempt, 2);
  EXPECT_EQ(contents->entries[4].reason, "exit code 3");
}

TEST(Journal, TornTailIsDroppedWithWarning) {
  const std::string path = temp_path("journal_torn.dcj");
  ::unlink(path.c_str());
  write_sample_journal(path);

  // A crash mid-append: a length prefix promising more bytes than exist.
  std::string bytes = slurp(path);
  const std::size_t complete = bytes.size();
  bytes += std::string("\x40\x00\x00\x00partial", 11);
  dump(path, bytes);

  ScopedLogLevel quiet(LogLevel::kOff);
  auto contents = load_journal(path);
  ASSERT_TRUE(contents.is_ok()) << contents.status().to_string();
  EXPECT_TRUE(contents->truncated_tail);
  EXPECT_EQ(contents->entries.size(), 5u);

  // Even a torn length prefix alone (fewer than 4 bytes) is a tail, not
  // corruption.
  dump(path, bytes.substr(0, complete) + "\x07");
  auto short_tail = load_journal(path);
  ASSERT_TRUE(short_tail.is_ok());
  EXPECT_TRUE(short_tail->truncated_tail);
  EXPECT_EQ(short_tail->entries.size(), 5u);
}

TEST(Journal, MidFileCorruptionRefusesWithPreciseError) {
  const std::string path = temp_path("journal_corrupt.dcj");
  ::unlink(path.c_str());
  write_sample_journal(path);

  // Flip one byte inside the SECOND frame's payload: every frame carries
  // its own checksum, so the damage is attributed to that entry exactly.
  std::string bytes = slurp(path);
  const std::uint32_t first_len = static_cast<unsigned char>(bytes[0]) |
                                  (static_cast<unsigned char>(bytes[1]) << 8) |
                                  (static_cast<unsigned char>(bytes[2]) << 16) |
                                  (static_cast<unsigned char>(bytes[3]) << 24);
  const std::size_t second_payload = 4 + first_len + 4 + 10;
  ASSERT_LT(second_payload, bytes.size());
  bytes[second_payload] ^= 0x5a;
  dump(path, bytes);

  auto contents = load_journal(path);
  ASSERT_FALSE(contents.is_ok());
  EXPECT_NE(contents.status().message().find("corrupt at entry 1"),
            std::string::npos)
      << contents.status().message();
  EXPECT_NE(contents.status().message().find("refusing to resume"),
            std::string::npos);
}

TEST(Journal, MissingFileIsNotFound) {
  auto contents = load_journal(temp_path("no_such_journal.dcj"));
  ASSERT_FALSE(contents.is_ok());
}

TEST(CampaignLockTest, SecondAcquireRefusedWhileHolderLives) {
  const std::string path = temp_path("campaign_lock_live");
  ::unlink(path.c_str());
  auto lock = CampaignLock::acquire(path);
  ASSERT_TRUE(lock.is_ok()) << lock.status().to_string();

  // Our own pid is alive by definition: the second acquire must refuse.
  auto second = CampaignLock::acquire(path);
  ASSERT_FALSE(second.is_ok());
  EXPECT_NE(second.status().message().find("already being orchestrated"),
            std::string::npos);
}

TEST(CampaignLockTest, ReleaseAllowsReacquire) {
  const std::string path = temp_path("campaign_lock_release");
  ::unlink(path.c_str());
  {
    auto lock = CampaignLock::acquire(path);
    ASSERT_TRUE(lock.is_ok());
  }
  auto again = CampaignLock::acquire(path);
  EXPECT_TRUE(again.is_ok());
}

TEST(CampaignLockTest, StaleLeaseOfDeadPidIsBroken) {
  const std::string path = temp_path("campaign_lock_stale");
  ::unlink(path.c_str());
  // No live process has a pid this large (kernel pid_max is far below it).
  dump(path, "2147400000\n");

  ScopedLogLevel quiet(LogLevel::kOff);
  auto lock = CampaignLock::acquire(path);
  EXPECT_TRUE(lock.is_ok()) << lock.status().to_string();
}

TEST(CampaignLockTest, CorruptLeaseIsTreatedAsStaleNotFatal) {
  const std::string path = temp_path("campaign_lock_corrupt");
  ::unlink(path.c_str());
  dump(path, "\x00\xff not a pid at all \x7f");

  ScopedLogLevel quiet(LogLevel::kOff);
  auto lock = CampaignLock::acquire(path);
  EXPECT_TRUE(lock.is_ok()) << lock.status().to_string();
}

TEST(CampaignLockTest, RecycledPidWithWrongStartTickIsStale) {
  const std::string path = temp_path("campaign_lock_recycled");
  ::unlink(path.c_str());
  // Model a recycled pid: OUR pid is certainly alive, but the lease
  // records a start tick that cannot match the live process — as if the
  // original holder died and the kernel reissued its pid.
  const long long pid = static_cast<long long>(::getpid());
  const long long actual = process_start_ticks(pid);
  ASSERT_GE(actual, 0);
  std::ostringstream stamp;
  stamp << "pid " << pid << "\nstart " << (actual + 987654321) << "\n";
  dump(path, stamp.str());

  ScopedLogLevel quiet(LogLevel::kOff);
  auto lock = CampaignLock::acquire(path);
  EXPECT_TRUE(lock.is_ok()) << lock.status().to_string();
}

TEST(CampaignLockTest, LivePidWithMatchingStartTickIsRefused) {
  const std::string path = temp_path("campaign_lock_identity");
  ::unlink(path.c_str());
  const long long pid = static_cast<long long>(::getpid());
  std::ostringstream stamp;
  stamp << "pid " << pid << "\nstart " << process_start_ticks(pid) << "\n";
  dump(path, stamp.str());

  auto lock = CampaignLock::acquire(path);
  ASSERT_FALSE(lock.is_ok());
  EXPECT_NE(lock.status().message().find("already being orchestrated"),
            std::string::npos);
  ::unlink(path.c_str());
}

TEST(CampaignLockTest, ProcessStartTicksOfSelfIsStable) {
  const long long pid = static_cast<long long>(::getpid());
  const long long a = process_start_ticks(pid);
  const long long b = process_start_ticks(pid);
  EXPECT_GE(a, 0);
  EXPECT_EQ(a, b);
  // A pid nothing can hold reports no identity.
  EXPECT_EQ(process_start_ticks(2147400000LL), -1);
}

}  // namespace
}  // namespace dc::campaign
