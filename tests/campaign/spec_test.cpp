// Sweep-spec regression: parsing, canonical axis order, overrides,
// row-major grid expansion, digest stability, and per-cell plan
// resolution with its up-front diagnostics.
#include "campaign/spec.hpp"

#include <string>

#include <gtest/gtest.h>

#include "core/systems.hpp"
#include "util/time.hpp"

namespace dc::campaign {
namespace {

TEST(SweepSpecParse, ParsesSettingsAndAxes) {
  auto spec = parse_sweep_spec_string(
      "# a comment\n"
      "config = exp.dcfg   # trailing comment\n"
      "snapshot-every = 12h\n"
      "\n"
      "quantum = 15m, 1h\n"
      "system = dcs, ssp\n",
      "/base");
  ASSERT_TRUE(spec.is_ok()) << spec.status().to_string();
  EXPECT_EQ(spec->config_path, "/base/exp.dcfg");
  EXPECT_EQ(spec->snapshot_every, 12 * kHour);
  // Axes come back in canonical order (system before quantum), whatever
  // order the file used.
  ASSERT_EQ(spec->axes.size(), 2u);
  EXPECT_EQ(spec->axes[0].key, "system");
  EXPECT_EQ(spec->axes[1].key, "quantum");
  EXPECT_EQ(spec->axes[1].values, (std::vector<std::string>{"15m", "1h"}));
}

TEST(SweepSpecParse, AbsoluteConfigIgnoresBaseDir) {
  auto spec = parse_sweep_spec_string("config = /abs/exp.dcfg\nsystem = dcs\n",
                                      "/base");
  ASSERT_TRUE(spec.is_ok());
  EXPECT_EQ(spec->config_path, "/abs/exp.dcfg");
}

TEST(SweepSpecParse, MissingConfigRejected) {
  auto spec = parse_sweep_spec_string("system = dcs\n");
  ASSERT_FALSE(spec.is_ok());
  EXPECT_NE(spec.status().message().find("config"), std::string::npos);
}

TEST(SweepSpecParse, UnknownKeyListsVocabulary) {
  auto spec =
      parse_sweep_spec_string("config = exp.dcfg\nflux-capacitor = on\n");
  ASSERT_FALSE(spec.is_ok());
  EXPECT_NE(spec.status().message().find("flux-capacitor"), std::string::npos);
  EXPECT_NE(spec.status().message().find("fault-seed"), std::string::npos);
}

TEST(SweepSpecParse, DuplicateAxisRejected) {
  auto spec = parse_sweep_spec_string(
      "config = exp.dcfg\nsystem = dcs\nsystem = ssp\n");
  ASSERT_FALSE(spec.is_ok());
  EXPECT_NE(spec.status().message().find("duplicate"), std::string::npos);
}

TEST(SweepSpecParse, EmptyValueRejected) {
  auto spec = parse_sweep_spec_string("config = exp.dcfg\nsystem = dcs,,ssp\n");
  ASSERT_FALSE(spec.is_ok());
}

TEST(SweepSpecParse, BadSnapshotEveryRejected) {
  auto spec =
      parse_sweep_spec_string("config = exp.dcfg\nsnapshot-every = soon\n");
  ASSERT_FALSE(spec.is_ok());
}

TEST(SweepSpecOverrides, ReplaceAndAppend) {
  auto spec = parse_sweep_spec_string("config = exp.dcfg\nsystem = dcs\n");
  ASSERT_TRUE(spec.is_ok());
  ASSERT_TRUE(
      apply_spec_overrides(*spec, "system=ssp,drp; scheduler=sjf").is_ok());
  ASSERT_EQ(spec->axes.size(), 2u);
  EXPECT_EQ(spec->axes[0].key, "system");
  EXPECT_EQ(spec->axes[0].values, (std::vector<std::string>{"ssp", "drp"}));
  EXPECT_EQ(spec->axes[1].key, "scheduler");
}

TEST(SweepSpecOverrides, MalformedItemRejected) {
  auto spec = parse_sweep_spec_string("config = exp.dcfg\nsystem = dcs\n");
  ASSERT_TRUE(spec.is_ok());
  EXPECT_FALSE(apply_spec_overrides(*spec, "system").is_ok());
  EXPECT_FALSE(apply_spec_overrides(*spec, "bogus=1").is_ok());
}

SweepSpec grid_spec() {
  auto spec = parse_sweep_spec_string(
      "config = exp.dcfg\nsystem = dcs, ssp\nquantum = 15m, 30m, 1h\n");
  EXPECT_TRUE(spec.is_ok());
  return *spec;
}

TEST(SweepGrid, RowMajorLastAxisFastest) {
  const auto cells = expand_grid(grid_spec());
  ASSERT_EQ(cells.size(), 6u);
  EXPECT_EQ(cells[0].key(), "system=dcs,quantum=15m");
  EXPECT_EQ(cells[1].key(), "system=dcs,quantum=30m");
  EXPECT_EQ(cells[2].key(), "system=dcs,quantum=1h");
  EXPECT_EQ(cells[3].key(), "system=ssp,quantum=15m");
  EXPECT_EQ(cells[5].id, 5u);
  EXPECT_EQ(cells[5].key(), "system=ssp,quantum=1h");
}

TEST(SweepGrid, NoAxesYieldsOneCell) {
  auto spec = parse_sweep_spec_string("config = exp.dcfg\n");
  ASSERT_TRUE(spec.is_ok());
  const auto cells = expand_grid(*spec);
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_TRUE(cells[0].assignment.empty());
}

TEST(SweepDigest, StableAcrossDeclarationOrder) {
  auto a = parse_sweep_spec_string(
      "config = exp.dcfg\nsystem = dcs\nquantum = 15m\n");
  auto b = parse_sweep_spec_string(
      "config = exp.dcfg\nquantum = 15m\nsystem = dcs\n");
  ASSERT_TRUE(a.is_ok() && b.is_ok());
  EXPECT_EQ(canonical_spec_text(*a), canonical_spec_text(*b));
  EXPECT_EQ(spec_digest(*a), spec_digest(*b));
}

TEST(SweepDigest, SensitiveToValues) {
  auto a = parse_sweep_spec_string("config = exp.dcfg\nsystem = dcs\n");
  auto b = parse_sweep_spec_string("config = exp.dcfg\nsystem = ssp\n");
  ASSERT_TRUE(a.is_ok() && b.is_ok());
  EXPECT_NE(spec_digest(*a), spec_digest(*b));
}

CellSpec cell_of(std::vector<std::pair<std::string, std::string>> assignment) {
  CellSpec cell;
  cell.id = 3;
  cell.assignment = std::move(assignment);
  return cell;
}

TEST(PlanCell, ResolvesEveryKnownAxis) {
  auto plan = plan_cell(cell_of({{"system", "dawningcloud"},
                                 {"scheduler", "easy-backfill"},
                                 {"queue", "calendar"},
                                 {"quantum", "30m"},
                                 {"capacity", "256"},
                                 {"setup", "5m"},
                                 {"mttf", "18h"},
                                 {"mttr", "30m"},
                                 {"fault-seed", "7"}}));
  ASSERT_TRUE(plan.is_ok()) << plan.status().to_string();
  EXPECT_EQ(plan->model, core::SystemModel::kDawningCloud);
  EXPECT_EQ(plan->options.htc_scheduler, core::HtcSchedulerKind::kEasyBackfill);
  EXPECT_EQ(plan->options.billing_quantum, 30 * kMinute);
  EXPECT_EQ(plan->options.platform_capacity, 256);
  EXPECT_EQ(plan->options.setup_latency, 5 * kMinute);
  ASSERT_TRUE(plan->options.faults.has_value());
  EXPECT_EQ(plan->options.faults->mean_time_between_failures, 18 * kHour);
  EXPECT_EQ(plan->options.faults->seed, 7u);
}

TEST(PlanCell, RequiresSystemAxis) {
  auto plan = plan_cell(cell_of({{"quantum", "15m"}}));
  ASSERT_FALSE(plan.is_ok());
  EXPECT_NE(plan.status().message().find("'system' axis"), std::string::npos);
}

TEST(PlanCell, ErrorsNameTheCell) {
  auto plan = plan_cell(cell_of({{"system", "vax"}}));
  ASSERT_FALSE(plan.is_ok());
  EXPECT_NE(plan.status().message().find("cell 3"), std::string::npos);
  EXPECT_NE(plan.status().message().find("system=vax"), std::string::npos);
}

TEST(PlanCell, MttfRequiresMttr) {
  auto plan = plan_cell(cell_of({{"system", "dcs"}, {"mttf", "18h"}}));
  ASSERT_FALSE(plan.is_ok());
  EXPECT_NE(plan.status().message().find("together"), std::string::npos);
}

TEST(PlanCell, FaultSeedRequiresFaults) {
  auto plan = plan_cell(cell_of({{"system", "dcs"}, {"fault-seed", "7"}}));
  ASSERT_FALSE(plan.is_ok());
}

TEST(PlanCell, RejectsNonPositiveQuantum) {
  auto plan = plan_cell(cell_of({{"system", "dcs"}, {"quantum", "0"}}));
  ASSERT_FALSE(plan.is_ok());
}

}  // namespace
}  // namespace dc::campaign
