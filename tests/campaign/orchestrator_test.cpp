// Orchestrator regression: journal folding, status formatting, drill-mode
// parsing, campaign-directory paths, and the up-front refusals (invalid
// grid, missing journal). The full fork/SIGKILL/resume behaviour is
// exercised end-to-end by tools/sweep_drill.cpp (ctest: sweep_drill_all).
#include "campaign/orchestrator.hpp"

#include <filesystem>
#include <string>

#include <gtest/gtest.h>

#include "campaign/journal.hpp"
#include "campaign/spec.hpp"

namespace dc::campaign {
namespace {

std::string temp_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

void append_all(const std::string& campaign_dir,
                const std::vector<JournalEntry>& entries) {
  auto appender = JournalAppender::open(campaign_journal_path(campaign_dir));
  ASSERT_TRUE(appender.is_ok()) << appender.status().to_string();
  for (const JournalEntry& entry : entries) {
    ASSERT_TRUE(appender->append(entry).is_ok());
  }
}

TEST(DrillModeParse, KnownAndUnknown) {
  EXPECT_TRUE(parse_drill_mode("").is_ok());
  EXPECT_EQ(*parse_drill_mode("none"), DrillMode::kNone);
  EXPECT_EQ(*parse_drill_mode("kill-orchestrator"),
            DrillMode::kKillOrchestrator);
  EXPECT_EQ(*parse_drill_mode("kill-worker"), DrillMode::kKillWorker);
  EXPECT_EQ(*parse_drill_mode("hang-worker"), DrillMode::kHangWorker);
  EXPECT_EQ(*parse_drill_mode("poison-cell"), DrillMode::kPoisonCell);
  auto bad = parse_drill_mode("chaos-monkey");
  ASSERT_FALSE(bad.is_ok());
  EXPECT_NE(bad.status().message().find("chaos-monkey"), std::string::npos);
}

TEST(CampaignPaths, LiveUnderTheCampaignDir) {
  EXPECT_EQ(campaign_journal_path("c"), "c/journal.dcj");
  EXPECT_EQ(campaign_lock_path("c"), "c/LOCK");
  EXPECT_EQ(campaign_cell_dir("c", 7), "c/cells/cell-000007");
  EXPECT_EQ(campaign_results_csv_path("c"), "c/results.csv");
  EXPECT_EQ(campaign_results_json_path("c"), "c/results.json");
}

TEST(FoldJournal, LatestStateWinsPerCell) {
  const std::string dir = temp_dir("fold_latest");
  JournalEntry running = JournalEntry::cell_state(0, CellState::kRunning, 1);
  running.pid = 777;
  JournalEntry done = JournalEntry::cell_state(0, CellState::kDone, 1);
  done.artifact_digest = 0x1234;
  JournalEntry failed = JournalEntry::cell_state(1, CellState::kFailed, 1);
  failed.reason = "exit code 2";
  JournalEntry retry = JournalEntry::cell_state(1, CellState::kRunning, 2);
  retry.pid = 778;
  append_all(dir, {JournalEntry::campaign(0xbeef, 2),
                   JournalEntry::cell_state(0, CellState::kClaimed, 1), running,
                   done, failed, retry});

  auto status = fold_campaign_journal(dir);
  ASSERT_TRUE(status.is_ok()) << status.status().to_string();
  EXPECT_EQ(status->spec_digest, 0xbeefu);
  EXPECT_EQ(status->cell_count, 2u);
  ASSERT_EQ(status->cells.size(), 2u);

  const auto& cell0 = status->cells.at(0);
  EXPECT_EQ(cell0.state, CellState::kDone);
  EXPECT_EQ(cell0.artifact_digest, 0x1234u);
  EXPECT_EQ(cell0.attempts, 1);

  // Cell 1's latest transition is the attempt-2 running record, but the
  // attempt-1 failure reason is retained for reporting.
  const auto& cell1 = status->cells.at(1);
  EXPECT_EQ(cell1.state, CellState::kRunning);
  EXPECT_EQ(cell1.attempts, 2);
  EXPECT_EQ(cell1.pid, 778);
  EXPECT_EQ(cell1.reason, "exit code 2");
}

TEST(FoldJournal, MissingJournalErrors) {
  const std::string dir = temp_dir("fold_missing");
  auto status = fold_campaign_journal(dir);
  EXPECT_FALSE(status.is_ok());
}

TEST(FormatStatus, SummarizesCounts) {
  const std::string dir = temp_dir("fold_format");
  JournalEntry done = JournalEntry::cell_state(0, CellState::kDone, 1);
  done.artifact_digest = 0x77;
  JournalEntry quarantined =
      JournalEntry::cell_state(1, CellState::kQuarantined, 3);
  quarantined.reason = "heartbeat timeout";
  append_all(dir, {JournalEntry::campaign(0x1, 4), done, quarantined});

  auto status = fold_campaign_journal(dir);
  ASSERT_TRUE(status.is_ok());
  const std::string text = format_campaign_status(*status);
  EXPECT_NE(text.find("4 cells"), std::string::npos) << text;
  EXPECT_NE(text.find("done 1, quarantined 1"), std::string::npos) << text;
  EXPECT_NE(text.find("not started 2"), std::string::npos) << text;
  EXPECT_NE(text.find("heartbeat timeout"), std::string::npos) << text;
}

TEST(RunCampaign, InvalidGridFailsBeforeAnyWork) {
  // No 'system' axis: every cell is unplannable, and the campaign must
  // refuse up front — no journal, no cells directory content.
  auto spec = parse_sweep_spec_string("config = /nonexistent.dcfg\n");
  ASSERT_TRUE(spec.is_ok());
  OrchestratorConfig config;
  config.campaign_dir = temp_dir("invalid_grid");
  auto report = run_campaign(*spec, config);
  ASSERT_FALSE(report.is_ok());
  EXPECT_NE(report.status().message().find("'system' axis"), std::string::npos);
  EXPECT_FALSE(
      std::filesystem::exists(campaign_journal_path(config.campaign_dir)));
}

TEST(RunCampaign, ConfigValidationRejected) {
  OrchestratorConfig config;
  config.campaign_dir = temp_dir("bad_config");
  config.workers = 0;
  auto spec = parse_sweep_spec_string("config = x.dcfg\nsystem = dcs\n");
  ASSERT_TRUE(spec.is_ok());
  auto report = run_campaign(*spec, config);
  ASSERT_FALSE(report.is_ok());
  EXPECT_NE(report.status().message().find("--workers"), std::string::npos);
}

}  // namespace
}  // namespace dc::campaign
