#include "workload/models.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "workload/swf.hpp"
#include "workload/trace_stats.hpp"

namespace dc::workload {
namespace {

TEST(SyntheticModels, DeterministicInSeed) {
  const Trace a = make_nasa_ipsc(42);
  const Trace b = make_nasa_ipsc(42);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.jobs()[i].submit, b.jobs()[i].submit);
    EXPECT_EQ(a.jobs()[i].runtime, b.jobs()[i].runtime);
    EXPECT_EQ(a.jobs()[i].nodes, b.jobs()[i].nodes);
  }
}

TEST(SyntheticModels, DifferentSeedsGiveDifferentTraces) {
  const Trace a = make_nasa_ipsc(1);
  const Trace b = make_nasa_ipsc(2);
  EXPECT_NE(a.size(), b.size());
}

TEST(SyntheticModels, JobsSortedAndInsidePeriod) {
  const Trace trace = make_sdsc_blue(5);
  SimTime prev = 0;
  for (const TraceJob& job : trace.jobs()) {
    EXPECT_GE(job.submit, prev);
    prev = job.submit;
    EXPECT_LT(job.submit, trace.period());
    EXPECT_GE(job.runtime, 1);
    EXPECT_GE(job.nodes, 1);
    EXPECT_LE(job.nodes, trace.capacity_nodes());
  }
  EXPECT_EQ(trace.period(), 2 * kWeek);
}

TEST(NasaModel, MatchesPublishedShape) {
  const Trace trace = make_nasa_ipsc();
  const TraceStats stats = compute_stats(trace);
  EXPECT_EQ(trace.capacity_nodes(), 128);
  // Two weeks of trace.
  EXPECT_EQ(stats.period, 2 * kWeek);
  // Job count in the published ballpark (2,603 in the archive slice).
  EXPECT_GT(stats.job_count, 2000);
  EXPECT_LT(stats.job_count, 3600);
  // Moderate utilization (calibration target 42%; archive header 46.6%).
  EXPECT_GT(stats.utilization, 0.30);
  EXPECT_LT(stats.utilization, 0.55);
  // Short jobs dominate — the driver of DRP's rounding penalty (Table 2).
  EXPECT_GT(stats.sub_hour_job_fraction, 0.80);
  // Full machine width occurs (the SSP/DCS RE is sized to it, §4.4).
  EXPECT_EQ(stats.max_width, 128);
}

TEST(BlueModel, MatchesPublishedShape) {
  const Trace trace = make_sdsc_blue();
  const TraceStats stats = compute_stats(trace);
  EXPECT_EQ(trace.capacity_nodes(), 144);
  EXPECT_EQ(stats.period, 2 * kWeek);
  EXPECT_GT(stats.job_count, 2200);
  EXPECT_LT(stats.job_count, 3200);
  // Higher load than NASA.
  EXPECT_GT(stats.utilization, 0.55);
  EXPECT_LT(stats.utilization, 0.80);
  // Long jobs: only about half finish inside one billing hour (vs >80% for
  // NASA).
  EXPECT_LT(stats.sub_hour_job_fraction, 0.55);
  // Quiet first half, busy second half (Section 4.2).
  EXPECT_GT(stats.second_half_demand, 1.5 * stats.first_half_demand);
  EXPECT_EQ(stats.max_width, 144);
}

TEST(BlueModel, BilledOverUsedIsSmall) {
  // The walltime-aligned runtimes keep DRP's hourly rounding factor low
  // (Table 3's DRP is *cheaper* than the fixed systems).
  const Trace trace = make_sdsc_blue();
  double used = 0.0, billed = 0.0;
  for (const TraceJob& job : trace.jobs()) {
    used += static_cast<double>(job.nodes) * to_hours(job.runtime);
    billed += static_cast<double>(job.nodes * billed_hours(job.runtime));
  }
  EXPECT_LT(billed / used, 1.30);
}

TEST(NasaModel, BilledOverUsedIsLarge) {
  const Trace trace = make_nasa_ipsc();
  double used = 0.0, billed = 0.0;
  for (const TraceJob& job : trace.jobs()) {
    used += static_cast<double>(job.nodes) * to_hours(job.runtime);
    billed += static_cast<double>(job.nodes * billed_hours(job.runtime));
  }
  EXPECT_GT(billed / used, 2.0);
}

TEST(SyntheticModels, GeneratedTraceSurvivesSwfRoundTrip) {
  const Trace trace = make_nasa_ipsc(3);
  std::ostringstream out;
  write_swf(out, trace.to_swf());
  std::string text = out.str();
  auto parsed = parse_swf_string(text);
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  auto back = Trace::from_swf(*parsed, "back");
  ASSERT_TRUE(back.is_ok());
  ASSERT_EQ(back->size(), trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(back->jobs()[i].runtime, trace.jobs()[i].runtime);
    EXPECT_EQ(back->jobs()[i].nodes, trace.jobs()[i].nodes);
  }
}

TEST(SyntheticModels, BurstsCreateSimultaneousArrivals) {
  const Trace trace = make_nasa_ipsc();
  std::size_t max_simultaneous = 0, current = 1;
  for (std::size_t i = 1; i < trace.size(); ++i) {
    if (trace.jobs()[i].submit == trace.jobs()[i - 1].submit) {
      ++current;
    } else {
      max_simultaneous = std::max(max_simultaneous, current);
      current = 1;
    }
  }
  EXPECT_GE(max_simultaneous, 5u)
      << "burst submissions should place several jobs at one instant";
}

TEST(SyntheticModels, SubmitMarginKeepsTailClear) {
  const auto spec = nasa_ipsc_spec();
  const Trace trace = generate_trace(spec, 42);
  EXPECT_LE(trace.last_submit(), spec.period - spec.submit_margin);
}

class ModelSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ModelSeedSweep, ShapePropertiesHoldAcrossSeeds) {
  const Trace nasa = make_nasa_ipsc(GetParam());
  const Trace blue = make_sdsc_blue(GetParam() + 1000);
  const TraceStats nasa_stats = compute_stats(nasa);
  const TraceStats blue_stats = compute_stats(blue);
  EXPECT_GT(nasa_stats.sub_hour_job_fraction, blue_stats.sub_hour_job_fraction);
  EXPECT_GT(blue_stats.utilization, nasa_stats.utilization);
  EXPECT_GT(blue_stats.second_half_demand, blue_stats.first_half_demand);
  EXPECT_EQ(nasa_stats.max_width, 128);
  EXPECT_EQ(blue_stats.max_width, 144);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ModelSeedSweep,
                         ::testing::Values(1u, 7u, 42u, 99u, 2026u));

}  // namespace
}  // namespace dc::workload
