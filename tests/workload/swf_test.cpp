#include "workload/swf.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

namespace dc::workload {
namespace {

constexpr const char* kSample = R"(; Computer: iPSC/860
; MaxNodes: 128
; MaxProcs: 128
; UnixStartTime: 749458803
; free-form comment without colon structure is preserved loosely
1 0 10 120 8 -1 -1 8 300 -1 1 3 1 -1 1 -1 -1 -1
2 60 0 45 1 22.5 -1 1 60 -1 1 4 1 -1 1 -1 -1 -1
)";

TEST(SwfParse, ParsesRecordsAndHeader) {
  auto parsed = parse_swf_string(kSample);
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  EXPECT_EQ(parsed->records.size(), 2u);
  EXPECT_EQ(parsed->header.max_nodes(), 128);
  EXPECT_EQ(parsed->header.max_procs(), 128);
  EXPECT_EQ(parsed->header.unix_start_time(), 749458803);

  const SwfRecord& job = parsed->records[0];
  EXPECT_EQ(job.job_number, 1);
  EXPECT_EQ(job.submit_time, 0);
  EXPECT_EQ(job.wait_time, 10);
  EXPECT_EQ(job.run_time, 120);
  EXPECT_EQ(job.allocated_procs, 8);
  EXPECT_EQ(job.requested_procs, 8);
  EXPECT_EQ(job.requested_time, 300);
  EXPECT_EQ(job.status, 1);
  EXPECT_EQ(job.user_id, 3);
}

TEST(SwfParse, FractionalCpuTimeField) {
  auto parsed = parse_swf_string(kSample);
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_DOUBLE_EQ(parsed->records[1].avg_cpu_time, 22.5);
}

TEST(SwfParse, ProcsPrefersRequested) {
  SwfRecord record;
  record.allocated_procs = 4;
  record.requested_procs = 8;
  EXPECT_EQ(record.procs(), 8);
  record.requested_procs = -1;
  EXPECT_EQ(record.procs(), 4);
}

TEST(SwfParse, RejectsWrongFieldCount) {
  auto parsed = parse_swf_string("1 2 3\n");
  EXPECT_FALSE(parsed.is_ok());
  EXPECT_NE(parsed.status().message().find("expected 18"), std::string::npos);
}

TEST(SwfParse, RejectsNonNumericField) {
  auto parsed = parse_swf_string(
      "1 0 10 abc 8 -1 -1 8 300 -1 1 3 1 -1 1 -1 -1 -1\n");
  EXPECT_FALSE(parsed.is_ok());
  EXPECT_NE(parsed.status().message().find("line 1"), std::string::npos);
}

TEST(SwfParse, AcceptsFractionalSecondsInIntegerFields) {
  // Some archive traces carry "0.5"-style values in time fields.
  auto parsed = parse_swf_string(
      "1 0.5 10 120.7 8 -1 -1 8 300 -1 1 3 1 -1 1 -1 -1 -1\n");
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  EXPECT_EQ(parsed->records[0].submit_time, 0);
  EXPECT_EQ(parsed->records[0].run_time, 120);
}

TEST(SwfParse, SkipsBlankLines) {
  auto parsed = parse_swf_string(
      "\n\n1 0 10 120 8 -1 -1 8 300 -1 1 3 1 -1 1 -1 -1 -1\n\n");
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_EQ(parsed->records.size(), 1u);
}

TEST(SwfParse, HeaderValueWithTrailingCommentary) {
  auto parsed = parse_swf_string("; MaxProcs: 128 (two racks)\n");
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_EQ(parsed->header.max_procs(), 128);
}

TEST(SwfRoundTrip, WriteThenParsePreservesRecords) {
  auto original = parse_swf_string(kSample);
  ASSERT_TRUE(original.is_ok());
  std::ostringstream out;
  write_swf(out, *original);
  auto reparsed = parse_swf_string(out.str());
  ASSERT_TRUE(reparsed.is_ok());
  ASSERT_EQ(reparsed->records.size(), original->records.size());
  for (std::size_t i = 0; i < original->records.size(); ++i) {
    EXPECT_EQ(reparsed->records[i].job_number, original->records[i].job_number);
    EXPECT_EQ(reparsed->records[i].submit_time, original->records[i].submit_time);
    EXPECT_EQ(reparsed->records[i].run_time, original->records[i].run_time);
    EXPECT_EQ(reparsed->records[i].requested_procs,
              original->records[i].requested_procs);
  }
  EXPECT_EQ(reparsed->header.max_nodes(), original->header.max_nodes());
}

TEST(SwfFileIo, WriteAndReadBack) {
  const std::string path = ::testing::TempDir() + "/test.swf";
  auto original = parse_swf_string(kSample);
  ASSERT_TRUE(original.is_ok());
  ASSERT_TRUE(write_swf_file(path, *original).is_ok());
  auto readback = read_swf_file(path);
  ASSERT_TRUE(readback.is_ok());
  EXPECT_EQ(readback->records.size(), 2u);
  std::remove(path.c_str());
}

TEST(SwfFileIo, MissingFileIsNotFound) {
  auto result = read_swf_file("/nonexistent/path/to.swf");
  EXPECT_FALSE(result.is_ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace dc::workload
