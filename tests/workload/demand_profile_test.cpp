#include "workload/demand_profile.hpp"

#include <gtest/gtest.h>

namespace dc::workload {
namespace {

TEST(DemandProfile, SlotLookup) {
  DemandProfile profile({10, 20, 30});
  EXPECT_EQ(profile.at(0), 10);
  EXPECT_EQ(profile.at(kHour - 1), 10);
  EXPECT_EQ(profile.at(kHour), 20);
  EXPECT_EQ(profile.at(3 * kHour), 0) << "beyond the profile: zero";
  EXPECT_EQ(profile.at(-5), 0);
}

TEST(DemandProfile, Aggregates) {
  DemandProfile profile({10, 20, 30});
  EXPECT_EQ(profile.peak(), 30);
  EXPECT_DOUBLE_EQ(profile.mean(), 20.0);
  EXPECT_EQ(profile.total_node_hours(), 60);
  EXPECT_EQ(profile.hours(), 3u);
  EXPECT_EQ(profile.period(), 3 * kHour);
}

TEST(WebDemand, DeterministicAndBounded) {
  WebDemandSpec spec;
  const DemandProfile a = make_web_demand(spec, 5);
  const DemandProfile b = make_web_demand(spec, 5);
  EXPECT_EQ(a.hourly(), b.hourly());
  EXPECT_EQ(a.hours(), 336u);
  for (std::int64_t level : a.hourly()) {
    EXPECT_GE(level, 0);
    // base..peak, times spike and noise.
    EXPECT_LE(level, static_cast<std::int64_t>(
                         static_cast<double>(spec.peak_nodes) *
                         spec.spike_multiplier * (1.0 + spec.noise) + 1));
  }
}

TEST(WebDemand, DiurnalShape) {
  WebDemandSpec spec;
  spec.spike_probability = 0.0;
  spec.noise = 0.0;
  const DemandProfile profile = make_web_demand(spec, 1);
  // Weekday afternoon well above weekday night (trough at 03:00, twelve
  // hours opposite the 15:00 peak).
  const std::int64_t afternoon = profile.hourly()[15];  // Monday 15:00
  const std::int64_t night = profile.hourly()[3];       // Monday 03:00
  EXPECT_GT(afternoon, 2 * night);
  EXPECT_EQ(afternoon, spec.peak_nodes);
  EXPECT_EQ(night, spec.base_nodes);
}

TEST(WebDemand, WeekendDip) {
  WebDemandSpec spec;
  spec.spike_probability = 0.0;
  spec.noise = 0.0;
  const DemandProfile profile = make_web_demand(spec, 1);
  const std::int64_t friday_peak = profile.hourly()[4 * 24 + 15];
  const std::int64_t saturday_peak = profile.hourly()[5 * 24 + 15];
  EXPECT_LT(saturday_peak, friday_peak);
  EXPECT_NEAR(static_cast<double>(saturday_peak),
              static_cast<double>(friday_peak) * spec.weekend_factor, 1.0);
}

}  // namespace
}  // namespace dc::workload
