#include "workload/trace_stats.hpp"

#include <gtest/gtest.h>

namespace dc::workload {
namespace {

TEST(TraceStats, UtilizationOnCraftedTrace) {
  // 10 nodes for 1 hour on a 10-node machine over a 2-hour period = 50%.
  Trace trace("t", 10, {TraceJob{1, 0, kHour, 10}});
  trace.set_period(2 * kHour);
  const TraceStats stats = compute_stats(trace);
  EXPECT_DOUBLE_EQ(stats.utilization, 0.5);
  EXPECT_DOUBLE_EQ(stats.demand_node_hours, 10.0);
  EXPECT_EQ(stats.job_count, 1);
  EXPECT_EQ(stats.max_width, 10);
}

TEST(TraceStats, SubHourFraction) {
  Trace trace("t", 4,
              {TraceJob{1, 0, kHour - 1, 1}, TraceJob{2, 10, kHour, 1},
               TraceJob{3, 20, 2 * kHour, 1}, TraceJob{4, 30, 30, 1}});
  const TraceStats stats = compute_stats(trace);
  EXPECT_DOUBLE_EQ(stats.sub_hour_job_fraction, 0.5);
}

TEST(TraceStats, DemandHalvesSplitBySubmitTime) {
  Trace trace("t", 4, {TraceJob{1, 0, kHour, 1}, TraceJob{2, 3 * kHour, kHour, 3}});
  trace.set_period(4 * kHour);
  const TraceStats stats = compute_stats(trace);
  EXPECT_DOUBLE_EQ(stats.first_half_demand, 1.0);
  EXPECT_DOUBLE_EQ(stats.second_half_demand, 3.0);
}

TEST(TraceStats, InterarrivalStats) {
  Trace trace("t", 4,
              {TraceJob{1, 0, 60, 1}, TraceJob{2, 100, 60, 1},
               TraceJob{3, 300, 60, 1}});
  const TraceStats stats = compute_stats(trace);
  EXPECT_EQ(stats.interarrival_seconds.count(), 2);
  EXPECT_DOUBLE_EQ(stats.interarrival_seconds.mean(), 150.0);
}

TEST(TraceStats, FormatMentionsKeyNumbers) {
  Trace trace("demo", 8, {TraceJob{1, 0, kHour, 4}});
  trace.set_period(kHour);
  const std::string out = format_stats(trace, compute_stats(trace));
  EXPECT_NE(out.find("demo"), std::string::npos);
  EXPECT_NE(out.find("50.0%"), std::string::npos);  // utilization
  EXPECT_NE(out.find("1 jobs"), std::string::npos);
}

}  // namespace
}  // namespace dc::workload
