#include "workload/trace.hpp"

#include <gtest/gtest.h>

namespace dc::workload {
namespace {

SwfFile sample_swf() {
  SwfFile file;
  file.header.set_int("MaxProcs", 64);
  SwfRecord a;
  a.job_number = 1;
  a.submit_time = 100;
  a.run_time = 600;
  a.requested_procs = 8;
  SwfRecord cancelled;  // zero runtime: dropped
  cancelled.job_number = 2;
  cancelled.submit_time = 150;
  cancelled.run_time = 0;
  cancelled.requested_procs = 4;
  SwfRecord b;
  b.job_number = 3;
  b.submit_time = 50;
  b.run_time = 60;
  b.allocated_procs = 2;  // no requested: falls back to allocated
  file.records = {a, cancelled, b};
  return file;
}

TEST(Trace, FromSwfFiltersAndSorts) {
  auto trace = Trace::from_swf(sample_swf(), "t");
  ASSERT_TRUE(trace.is_ok());
  EXPECT_EQ(trace->capacity_nodes(), 64);
  ASSERT_EQ(trace->size(), 2u);
  EXPECT_EQ(trace->jobs()[0].submit, 50) << "jobs sorted by submit time";
  EXPECT_EQ(trace->jobs()[0].nodes, 2);
  EXPECT_EQ(trace->jobs()[1].nodes, 8);
}

TEST(Trace, CapacityInferredFromJobsWhenHeaderMissing) {
  SwfFile file = sample_swf();
  file.header.fields.clear();
  auto trace = Trace::from_swf(file, "t");
  ASSERT_TRUE(trace.is_ok());
  EXPECT_EQ(trace->capacity_nodes(), 8);
}

TEST(Trace, EmptySwfIsError) {
  SwfFile file;
  auto trace = Trace::from_swf(file, "t");
  EXPECT_FALSE(trace.is_ok());
}

TEST(Trace, InvalidCpusPerNodeIsError) {
  auto trace = Trace::from_swf(sample_swf(), "t", 0);
  EXPECT_FALSE(trace.is_ok());
}

TEST(Trace, PeriodRoundsLastSubmitUpToHour) {
  Trace trace("t", 16, {TraceJob{1, 90 * kMinute, 60, 1}});
  EXPECT_EQ(trace.period(), 2 * kHour);
  trace.set_period(10 * kHour);
  EXPECT_EQ(trace.period(), 10 * kHour);
}

TEST(Trace, SliceRebasesSubmitTimes) {
  Trace trace("t", 16,
              {TraceJob{1, 100, 60, 1}, TraceJob{2, 5000, 60, 2},
               TraceJob{3, 9000, 60, 4}});
  const Trace sliced = trace.slice(1000, 8000);
  ASSERT_EQ(sliced.size(), 1u);
  EXPECT_EQ(sliced.jobs()[0].submit, 4000);
  EXPECT_EQ(sliced.jobs()[0].nodes, 2);
}

TEST(Trace, ScaleRuntimesKeepsMinimumOfOneSecond) {
  Trace trace("t", 16, {TraceJob{1, 0, 10, 1}, TraceJob{2, 0, 1, 1}});
  trace.scale_runtimes(0.01);
  EXPECT_EQ(trace.jobs()[0].runtime, 1);
  EXPECT_EQ(trace.jobs()[1].runtime, 1);
}

TEST(Trace, MaxNodes) {
  Trace trace("t", 128, {TraceJob{1, 0, 10, 3}, TraceJob{2, 0, 10, 77}});
  EXPECT_EQ(trace.max_nodes(), 77);
}

TEST(Trace, ToSwfRoundTrip) {
  Trace trace("round", 32,
              {TraceJob{1, 10, 300, 4}, TraceJob{2, 400, 1200, 16}});
  const SwfFile swf = trace.to_swf();
  EXPECT_EQ(swf.header.max_procs(), 32);
  auto back = Trace::from_swf(swf, "round2");
  ASSERT_TRUE(back.is_ok());
  ASSERT_EQ(back->size(), 2u);
  EXPECT_EQ(back->jobs()[0].submit, 10);
  EXPECT_EQ(back->jobs()[0].runtime, 300);
  EXPECT_EQ(back->jobs()[0].nodes, 4);
  EXPECT_EQ(back->capacity_nodes(), 32);
}

}  // namespace
}  // namespace dc::workload
