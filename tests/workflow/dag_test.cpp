#include "workflow/dag.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace dc::workflow {
namespace {

Dag diamond() {
  // a -> b, a -> c, b -> d, c -> d
  Dag dag;
  dag.add_task("a", 10);
  dag.add_task("b", 20);
  dag.add_task("c", 5);
  dag.add_task("d", 1);
  dag.add_dependency(0, 1);
  dag.add_dependency(0, 2);
  dag.add_dependency(1, 3);
  dag.add_dependency(2, 3);
  return dag;
}

TEST(Dag, AddTaskAssignsDenseIds) {
  Dag dag;
  EXPECT_EQ(dag.add_task("x", 1), 0);
  EXPECT_EQ(dag.add_task("y", 2), 1);
  EXPECT_EQ(dag.size(), 2u);
  EXPECT_EQ(dag.task(1).name, "y");
}

TEST(Dag, DuplicateEdgesIgnored) {
  Dag dag;
  dag.add_task("a", 1);
  dag.add_task("b", 1);
  dag.add_dependency(0, 1);
  dag.add_dependency(0, 1);
  EXPECT_EQ(dag.edge_count(), 1u);
  EXPECT_EQ(dag.children(0).size(), 1u);
  EXPECT_EQ(dag.parent_count(1), 1u);
}

TEST(Dag, RootsAndSinks) {
  const Dag dag = diamond();
  EXPECT_EQ(dag.roots(), std::vector<TaskId>{0});
  EXPECT_EQ(dag.sinks(), std::vector<TaskId>{3});
}

TEST(Dag, ValidateAcceptsAcyclic) {
  EXPECT_TRUE(diamond().validate().is_ok());
  EXPECT_TRUE(Dag().validate().is_ok());
}

TEST(Dag, ValidateRejectsCycle) {
  Dag dag;
  dag.add_task("a", 1);
  dag.add_task("b", 1);
  dag.add_task("c", 1);
  dag.add_dependency(0, 1);
  dag.add_dependency(1, 2);
  dag.add_dependency(2, 0);
  const Status status = dag.validate();
  EXPECT_FALSE(status.is_ok());
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
}

TEST(Dag, TopologicalOrderRespectsEdges) {
  const Dag dag = diamond();
  const auto order = dag.topological_order();
  ASSERT_EQ(order.size(), 4u);
  auto position = [&](TaskId id) {
    return std::find(order.begin(), order.end(), id) - order.begin();
  };
  for (const Task& task : dag.tasks()) {
    for (TaskId child : dag.children(task.id)) {
      EXPECT_LT(position(task.id), position(child));
    }
  }
}

TEST(Dag, LevelsDecomposition) {
  const Dag dag = diamond();
  const auto levels = dag.levels();
  ASSERT_EQ(levels.size(), 3u);
  EXPECT_EQ(levels[0], std::vector<TaskId>{0});
  EXPECT_EQ(levels[1], (std::vector<TaskId>{1, 2}));
  EXPECT_EQ(levels[2], std::vector<TaskId>{3});
  EXPECT_EQ(dag.max_level_width(), 2u);
}

TEST(Dag, CriticalPathTakesLongestBranch) {
  // a(10) -> b(20) -> d(1) dominates a -> c(5) -> d.
  EXPECT_EQ(diamond().critical_path(), 31);
}

TEST(Dag, CriticalPathOfChainIsTotalWork) {
  Dag dag;
  dag.add_task("a", 3);
  dag.add_task("b", 4);
  dag.add_task("c", 5);
  dag.add_dependency(0, 1);
  dag.add_dependency(1, 2);
  EXPECT_EQ(dag.critical_path(), 12);
  EXPECT_EQ(dag.total_work(), 12);
}

TEST(Dag, CriticalPathOfIndependentTasksIsMax) {
  Dag dag;
  dag.add_task("a", 3);
  dag.add_task("b", 9);
  EXPECT_EQ(dag.critical_path(), 9);
  EXPECT_EQ(dag.total_work(), 12);
  EXPECT_EQ(dag.max_level_width(), 2u);
}

TEST(Dag, ScaleRuntimesAndMean) {
  Dag dag;
  dag.add_task("a", 10);
  dag.add_task("b", 30);
  EXPECT_DOUBLE_EQ(dag.mean_runtime(), 20.0);
  dag.scale_runtimes(0.5);
  EXPECT_EQ(dag.task(0).runtime, 5);
  EXPECT_EQ(dag.task(1).runtime, 15);
  dag.scale_runtimes(0.001);
  EXPECT_EQ(dag.task(0).runtime, 1) << "runtime floors at one second";
}

}  // namespace
}  // namespace dc::workflow
