#include "workflow/montage.hpp"

#include <gtest/gtest.h>

#include <map>

namespace dc::workflow {
namespace {

TEST(Montage, PaperWorkloadHasExactly1000Tasks) {
  const Dag dag = make_paper_montage();
  EXPECT_EQ(dag.size(), 1000u);
  EXPECT_TRUE(dag.validate().is_ok());
}

TEST(Montage, StageCountsMatchStructure) {
  const Dag dag = make_paper_montage();
  std::map<std::string, int> counts;
  for (const Task& task : dag.tasks()) ++counts[task.name];
  EXPECT_EQ(counts["mProjectPP"], 166);
  EXPECT_EQ(counts["mDiffFit"], 662);
  EXPECT_EQ(counts["mConcatFit"], 1);
  EXPECT_EQ(counts["mBgModel"], 1);
  EXPECT_EQ(counts["mBackground"], 166);
  EXPECT_EQ(counts["mImgtbl"], 1);
  EXPECT_EQ(counts["mAdd"], 1);
  EXPECT_EQ(counts["mShrink"], 1);
  EXPECT_EQ(counts["mJPEG"], 1);
}

TEST(Montage, LevelStructure) {
  const Dag dag = make_paper_montage();
  const auto levels = dag.levels();
  ASSERT_EQ(levels.size(), 9u);
  EXPECT_EQ(levels[0].size(), 166u);  // mProjectPP
  EXPECT_EQ(levels[1].size(), 662u);  // mDiffFit — the DRP peak (Table 4)
  EXPECT_EQ(levels[2].size(), 1u);    // mConcatFit
  EXPECT_EQ(levels[3].size(), 1u);    // mBgModel
  EXPECT_EQ(levels[4].size(), 166u);  // mBackground
  EXPECT_EQ(levels[5].size(), 1u);    // mImgtbl
  EXPECT_EQ(levels[6].size(), 1u);    // mAdd
  EXPECT_EQ(levels[7].size(), 1u);    // mShrink
  EXPECT_EQ(levels[8].size(), 1u);    // mJPEG
  EXPECT_EQ(dag.max_level_width(), 662u);
}

TEST(Montage, MeanRuntimeCalibratedToPaper) {
  const Dag dag = make_paper_montage();
  EXPECT_NEAR(dag.mean_runtime(), 11.38, 0.15);
}

TEST(Montage, EveryDiffHasTwoProjectParents) {
  const Dag dag = make_paper_montage();
  for (const Task& task : dag.tasks()) {
    if (task.name == "mDiffFit") {
      EXPECT_EQ(dag.parent_count(task.id), 2u);
      for (TaskId parent : dag.parents(task.id)) {
        EXPECT_EQ(dag.task(parent).name, "mProjectPP");
      }
    }
    if (task.name == "mBackground") {
      // Depends on mBgModel and its own mProjectPP.
      EXPECT_EQ(dag.parent_count(task.id), 2u);
    }
  }
}

TEST(Montage, SerialTailIsAChain) {
  const Dag dag = make_paper_montage();
  // The final four tasks (imgtbl, add, shrink, jpeg) form a chain ending in
  // the unique sink.
  const auto sinks = dag.sinks();
  ASSERT_EQ(sinks.size(), 1u);
  EXPECT_EQ(dag.task(sinks[0]).name, "mJPEG");
}

TEST(Montage, DeterministicInSeed) {
  const Dag a = make_paper_montage(7);
  const Dag b = make_paper_montage(7);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.tasks()[i].runtime, b.tasks()[i].runtime);
  }
  const Dag c = make_paper_montage(8);
  bool any_different = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a.tasks()[i].runtime != c.tasks()[i].runtime) any_different = true;
  }
  EXPECT_TRUE(any_different);
}

TEST(Montage, CriticalPathBetweenBoundsAndWorkDominates) {
  const Dag dag = make_paper_montage();
  EXPECT_GT(dag.critical_path(), 200);
  EXPECT_LT(dag.critical_path(), 800);
  EXPECT_GT(dag.total_work(), 10000);
}

class MontageSizeSweep : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(MontageSizeSweep, TaskCountFormula) {
  MontageParams params;
  params.inputs = GetParam();
  const Dag dag = make_montage(params, 3);
  // n projects + (4n-2) diffs + n backgrounds + 6 singletons.
  EXPECT_EQ(dag.size(), static_cast<std::size_t>(6 * GetParam() + 4));
  EXPECT_TRUE(dag.validate().is_ok());
  EXPECT_EQ(dag.levels().size(), 9u);
  EXPECT_EQ(dag.sinks().size(), 1u);
}

INSTANTIATE_TEST_SUITE_P(Sizes, MontageSizeSweep,
                         ::testing::Values(2, 5, 20, 100, 166, 400));

}  // namespace
}  // namespace dc::workflow
