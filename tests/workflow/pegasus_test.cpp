#include "workflow/pegasus.hpp"

#include <gtest/gtest.h>

namespace dc::workflow {
namespace {

TEST(Epigenomics, StructureCounts) {
  EpigenomicsParams params;
  params.chains = 8;
  params.depth = 5;
  const Dag dag = make_epigenomics(params, 1);
  EXPECT_EQ(dag.size(), 8u * 5u + 3u);
  EXPECT_TRUE(dag.validate().is_ok());
  EXPECT_EQ(dag.roots().size(), 8u) << "one root per chain";
  EXPECT_EQ(dag.sinks().size(), 1u);
  // depth lane levels + merge + index + pileup.
  EXPECT_EQ(dag.levels().size(), 5u + 3u);
  EXPECT_EQ(dag.max_level_width(), 8u) << "steady parallelism = chains";
}

TEST(Epigenomics, CriticalPathSpansAChainPlusGlobalStages) {
  EpigenomicsParams params;
  params.chains = 4;
  params.depth = 3;
  params.runtime_cv = 0.0;  // deterministic runtimes
  const Dag dag = make_epigenomics(params, 2);
  const SimDuration expected =
      3 * static_cast<SimDuration>(params.mean_stage_runtime) +
      3 * static_cast<SimDuration>(params.mean_merge_runtime);
  EXPECT_EQ(dag.critical_path(), expected);
}

TEST(Cybershake, StructureCounts) {
  CybershakeParams params;
  params.ruptures = 5;
  params.variations = 7;
  const Dag dag = make_cybershake(params, 3);
  EXPECT_EQ(dag.size(), 5u * (1u + 2u * 7u) + 1u);
  EXPECT_TRUE(dag.validate().is_ok());
  EXPECT_EQ(dag.roots().size(), 5u);
  EXPECT_EQ(dag.sinks().size(), 1u);
  // extract -> synth -> peak -> zip.
  EXPECT_EQ(dag.levels().size(), 4u);
  EXPECT_EQ(dag.max_level_width(), 35u) << "synthesis fan-out dominates";
}

TEST(Cybershake, EveryPeakFeedsTheZip) {
  const Dag dag = make_cybershake(CybershakeParams{}, 4);
  const auto sinks = dag.sinks();
  ASSERT_EQ(sinks.size(), 1u);
  EXPECT_EQ(dag.task(sinks[0]).name, "ZipPSA");
  EXPECT_EQ(dag.parents(sinks[0]).size(),
            static_cast<std::size_t>(20 * 30));
}

TEST(Pegasus, DeterministicInSeed) {
  const Dag a = make_cybershake(CybershakeParams{}, 9);
  const Dag b = make_cybershake(CybershakeParams{}, 9);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.tasks()[i].runtime, b.tasks()[i].runtime);
  }
}

}  // namespace
}  // namespace dc::workflow
