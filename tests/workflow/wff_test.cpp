#include "workflow/wff.hpp"

#include <gtest/gtest.h>

#include <cstdio>

#include "workflow/montage.hpp"

namespace dc::workflow {
namespace {

TEST(Wff, RoundTripsSmallDag) {
  Dag dag;
  dag.add_task("setup", 30, 2);
  dag.add_task("work", 60, 4);
  dag.add_task("teardown", 10, 1);
  dag.add_dependency(0, 1);
  dag.add_dependency(1, 2);

  auto back = parse_wff_string(to_wff_string(dag));
  ASSERT_TRUE(back.is_ok()) << back.status().to_string();
  ASSERT_EQ(back->size(), 3u);
  EXPECT_EQ(back->task(0).name, "setup");
  EXPECT_EQ(back->task(1).runtime, 60);
  EXPECT_EQ(back->task(1).nodes, 4);
  EXPECT_EQ(back->edge_count(), 2u);
  EXPECT_EQ(back->children(0), std::vector<TaskId>{1});
}

TEST(Wff, RoundTripsPaperMontage) {
  const Dag dag = make_paper_montage();
  auto back = parse_wff_string(to_wff_string(dag));
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(back->size(), dag.size());
  EXPECT_EQ(back->edge_count(), dag.edge_count());
  EXPECT_EQ(back->critical_path(), dag.critical_path());
  EXPECT_EQ(back->max_level_width(), dag.max_level_width());
}

TEST(Wff, IgnoresCommentsAndBlankLines) {
  auto dag = parse_wff_string("% header\n\ntask 0 a 1 5\n% mid\ntask 1 b 1 5\n");
  ASSERT_TRUE(dag.is_ok());
  EXPECT_EQ(dag->size(), 2u);
}

TEST(Wff, RejectsNonDenseIds) {
  auto dag = parse_wff_string("task 1 a 1 5\n");
  EXPECT_FALSE(dag.is_ok());
}

TEST(Wff, RejectsEdgeBeforeTask) {
  auto dag = parse_wff_string("task 0 a 1 5\nedge 0 1\n");
  EXPECT_FALSE(dag.is_ok());
  EXPECT_EQ(dag.status().code(), StatusCode::kOutOfRange);
}

TEST(Wff, RejectsSelfEdge) {
  auto dag = parse_wff_string("task 0 a 1 5\nedge 0 0\n");
  EXPECT_FALSE(dag.is_ok());
}

TEST(Wff, RejectsCycle) {
  auto dag = parse_wff_string(
      "task 0 a 1 5\ntask 1 b 1 5\nedge 0 1\nedge 1 0\n");
  EXPECT_FALSE(dag.is_ok());
  EXPECT_EQ(dag.status().code(), StatusCode::kFailedPrecondition);
}

TEST(Wff, RejectsUnknownDirective) {
  auto dag = parse_wff_string("node 0 a 1 5\n");
  EXPECT_FALSE(dag.is_ok());
}

TEST(Wff, RejectsZeroRuntime) {
  auto dag = parse_wff_string("task 0 a 1 0\n");
  EXPECT_FALSE(dag.is_ok());
}

TEST(Wff, FileIo) {
  const std::string path = ::testing::TempDir() + "/wf.wff";
  Dag dag;
  dag.add_task("only", 5);
  ASSERT_TRUE(write_wff_file(path, dag).is_ok());
  auto back = read_wff_file(path);
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(back->size(), 1u);
  std::remove(path.c_str());
  EXPECT_FALSE(read_wff_file(path).is_ok());
}

}  // namespace
}  // namespace dc::workflow
