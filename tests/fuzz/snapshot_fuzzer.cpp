// Fuzz target: the snapshot container decoders.
//
// Drives both layers on arbitrary bytes: SnapshotReader::from_buffer (the
// header/checksum gate every consumer passes through) and decode_records
// (the full record walker behind snapshot-diff and the divergence auditor).
// The invariant under fuzzing is "typed Status or a valid record list" —
// never a crash, sanitizer report, or hang.
#include <cstdint>
#include <string>
#include <string_view>

#include "snapshot/format.hpp"

namespace {

constexpr std::size_t kMaxInput = 1 << 20;  // decoders are linear; cap anyway

void fuzz_one(std::string_view data) {
  if (data.size() > kMaxInput) return;
  std::string buf(data);
  (void)dc::snapshot::SnapshotReader::from_buffer(buf);
  auto records = dc::snapshot::decode_records(std::move(buf));
  if (records.is_ok()) {
    // Exercise the per-kind payload decoding too.
    for (const auto& record : *records) (void)record.value_text();
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  fuzz_one(std::string_view(reinterpret_cast<const char*>(data), size));
  return 0;
}
