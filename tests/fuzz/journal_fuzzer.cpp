// Fuzz target: the campaign journal frame decoder.
//
// parse_journal walks u32-length-prefixed snapshot-format frames, dropping
// a torn tail and refusing mid-file corruption. Arbitrary bytes must come
// back as a typed Status or a consistent JournalContents — never a crash
// or an unbounded allocation from a hostile length prefix.
#include <cstdint>
#include <string>
#include <string_view>

#include "campaign/journal.hpp"

namespace {

constexpr std::size_t kMaxInput = 1 << 20;

void fuzz_one(std::string_view data) {
  if (data.size() > kMaxInput) return;
  auto parsed = dc::campaign::parse_journal(std::string(data), "fuzz");
  if (parsed.is_ok()) {
    for (const auto& entry : parsed->entries) {
      (void)dc::campaign::cell_state_name(entry.state);
    }
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  fuzz_one(std::string_view(reinterpret_cast<const char*>(data), size));
  return 0;
}
