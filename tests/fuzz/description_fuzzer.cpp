// Fuzz target: the experiment-description DSL parser.
//
// Descriptions are the primary user-authored input (provider stanzas,
// trace/workflow sources, tuning knobs). base_dir points at a path that
// cannot exist so relative trace/workflow references fail with a clean
// not_found instead of touching the real filesystem. The input cap is
// tighter than the other targets because a valid `synthetic:` stanza
// makes the parser generate a bounded-but-nontrivial trace per provider.
#include <cstdint>
#include <string>
#include <string_view>

#include "core/description.hpp"

namespace {

constexpr std::size_t kMaxInput = 1 << 14;

void fuzz_one(std::string_view data) {
  if (data.size() > kMaxInput) return;
  auto workload = dc::core::parse_experiment_description_string(
      std::string(data), "/dc-fuzz-base");
  if (workload.is_ok()) {
    (void)(workload->htc.size() + workload->mtc.size());
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  fuzz_one(std::string_view(reinterpret_cast<const char*>(data), size));
  return 0;
}
