// Fuzz target: the sweep-spec parser and the CLI override grammar.
//
// Sweep specs come from user-edited files, so the parser sees the worst
// text first. After a successful parse the overrides path is exercised
// too (the same `key=v1,v2;...` grammar `dc sweep --set` accepts).
#include <cstdint>
#include <string>
#include <string_view>

#include "campaign/spec.hpp"

namespace {

constexpr std::size_t kMaxInput = 1 << 18;

void fuzz_one(std::string_view data) {
  if (data.size() > kMaxInput) return;
  auto spec = dc::campaign::parse_sweep_spec_string(data, "/dc-fuzz-base");
  if (spec.is_ok()) {
    (void)dc::campaign::apply_spec_overrides(*spec, "quantum=15m");
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  fuzz_one(std::string_view(reinterpret_cast<const char*>(data), size));
  return 0;
}
