// Fuzz target: the bench-report JSON parser (dc_bench::parse_json).
//
// This is the one hand-rolled recursive-descent JSON parser in the tree
// (tools/bench_report.hpp); it ingests BENCH_*.json baselines in CI, so
// stack depth on deeply nested input and hostile numbers/strings are the
// interesting surface.
#include <cstdint>
#include <string>
#include <string_view>

#include "bench_report.hpp"

namespace {

constexpr std::size_t kMaxInput = 1 << 18;

void fuzz_one(std::string_view data) {
  if (data.size() > kMaxInput) return;
  std::string error;
  auto json = dc_bench::parse_json(std::string(data), &error);
  if (json == nullptr && error.empty()) __builtin_trap();  // error contract
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  fuzz_one(std::string_view(reinterpret_cast<const char*>(data), size));
  return 0;
}
