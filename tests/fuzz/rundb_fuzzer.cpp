// Fuzz target: the run-store decoders behind `dc report`.
//
// The first input byte selects the decoder (structure-aware dispatch, so
// one corpus exercises all three): the framed store stream, the derived
// index, or a single record payload. Arbitrary bytes must come back as a
// typed Status or consistent contents — never a crash, an unbounded
// allocation from a hostile length prefix, or an index entry pointing
// outside the bytes it claims to pin.
#include <cstdint>
#include <string>
#include <string_view>

#include "rundb/store.hpp"

namespace {

constexpr std::size_t kMaxInput = 1 << 20;

void fuzz_one(std::string_view data) {
  if (data.empty() || data.size() > kMaxInput) return;
  const std::uint8_t selector = static_cast<std::uint8_t>(data[0]);
  const std::string payload(data.substr(1));
  switch (selector % 3) {
    case 0: {
      auto parsed = dc::rundb::parse_store(payload, "fuzz");
      if (parsed.is_ok()) {
        for (const auto& record : parsed->records) {
          (void)record.run_id();
          (void)record.param("system");
        }
      }
      break;
    }
    case 1: {
      auto parsed = dc::rundb::parse_store_index(payload, "fuzz");
      if (parsed.is_ok()) {
        for (const auto& entry : parsed->entries) {
          (void)(entry.offset + entry.length);
        }
      }
      break;
    }
    default: {
      auto decoded = dc::rundb::decode_run_record(payload);
      if (decoded.is_ok()) {
        // Round-trip: a payload the decoder accepts must re-encode to
        // something the decoder accepts again with the same identity.
        auto again = dc::rundb::decode_run_record(
            dc::rundb::encode_run_record(*decoded));
        if (!again.is_ok() || again->run_id() != decoded->run_id()) {
          __builtin_trap();
        }
      }
      break;
    }
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  fuzz_one(std::string_view(reinterpret_cast<const char*>(data), size));
  return 0;
}
