// Corpus-replay driver for the fuzz targets.
//
// Every *_fuzzer.cpp defines the libFuzzer entry point
// LLVMFuzzerTestOneInput. When the toolchain provides -fsanitize=fuzzer
// (DC_BUILD_FUZZERS=ON), that runtime supplies main() and explores inputs;
// otherwise each target links against this file and becomes a deterministic
// replay binary: it feeds every file (or every regular file under every
// directory) named on the command line through the target once. A crash or
// sanitizer abort fails the run; clean decoding of the whole corpus exits 0.
// This is what the dc_fuzz_replay_* ctests run in every lane.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

namespace {

int replay_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "fuzz-replay: cannot open '%s'\n", path.c_str());
    return -1;
  }
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  LLVMFuzzerTestOneInput(reinterpret_cast<const std::uint8_t*>(bytes.data()),
                         bytes.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <corpus-file-or-dir>...\n", argv[0]);
    return 2;
  }
  std::size_t replayed = 0;
  for (int i = 1; i < argc; ++i) {
    std::error_code ec;
    if (std::filesystem::is_directory(argv[i], ec)) {
      // Sort for a stable replay order regardless of directory iteration.
      std::vector<std::string> files;
      for (const auto& entry : std::filesystem::directory_iterator(argv[i])) {
        if (entry.is_regular_file()) files.push_back(entry.path().string());
      }
      std::sort(files.begin(), files.end());
      for (const auto& file : files) {
        if (replay_file(file) != 0) return 2;
        ++replayed;
      }
    } else {
      if (replay_file(argv[i]) != 0) return 2;
      ++replayed;
    }
  }
  if (replayed == 0) {
    std::fprintf(stderr, "fuzz-replay: corpus is empty\n");
    return 2;
  }
  std::fprintf(stderr, "fuzz-replay: %zu input(s) replayed cleanly\n",
               replayed);
  return 0;
}
