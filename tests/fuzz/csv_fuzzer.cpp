// Fuzz target: the RFC-4180 CSV parser (dc::parse_csv).
//
// Runs both option shapes (uniform-columns required and relaxed) over the
// same bytes; malformed input must surface as a typed Status with a
// line/column, never an assert or crash.
#include <cstdint>
#include <string_view>

#include "util/csv.hpp"

namespace {

constexpr std::size_t kMaxInput = 1 << 20;

void fuzz_one(std::string_view data) {
  if (data.size() > kMaxInput) return;
  (void)dc::parse_csv(data, {.require_uniform_columns = true});
  auto rows = dc::parse_csv(data, {.require_uniform_columns = false});
  if (rows.is_ok()) {
    for (const auto& row : *rows) (void)row.size();
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  fuzz_one(std::string_view(reinterpret_cast<const char*>(data), size));
  return 0;
}
