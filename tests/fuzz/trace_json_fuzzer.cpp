// Fuzz target: the Chrome-trace JSON reader (obs::parse_chrome_json).
//
// The parser tolerates exactly the shape the exporter writes plus
// whitespace; everything else must be a typed error with an offset.
#include <cstdint>
#include <string_view>

#include "obs/trace.hpp"

namespace {

constexpr std::size_t kMaxInput = 1 << 20;

void fuzz_one(std::string_view data) {
  if (data.size() > kMaxInput) return;
  auto events = dc::obs::parse_chrome_json(data);
  if (events.is_ok()) {
    for (const auto& event : *events) (void)event.name.size();
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  fuzz_one(std::string_view(reinterpret_cast<const char*>(data), size));
  return 0;
}
