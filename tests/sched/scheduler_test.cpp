#include <gtest/gtest.h>

#include <memory>
#include <numeric>

#include "sched/easy_backfill.hpp"
#include "sched/fcfs.hpp"
#include "sched/first_fit.hpp"
#include "util/rng.hpp"

namespace dc::sched {
namespace {

std::vector<Job> make_jobs(const std::vector<std::int64_t>& widths,
                           SimDuration runtime = 600) {
  std::vector<Job> jobs(widths.size());
  for (std::size_t i = 0; i < widths.size(); ++i) {
    jobs[i].id = static_cast<JobId>(i);
    jobs[i].nodes = widths[i];
    jobs[i].runtime = runtime;
  }
  return jobs;
}

std::vector<const Job*> views(const std::vector<Job>& jobs) {
  std::vector<const Job*> out;
  for (const Job& job : jobs) out.push_back(&job);
  return out;
}

std::int64_t total_width(const std::vector<Job>& jobs,
                         const std::vector<std::size_t>& picks) {
  std::int64_t total = 0;
  for (std::size_t pos : picks) total += jobs[pos].nodes;
  return total;
}

// --- FirstFit ---------------------------------------------------------------

TEST(FirstFit, SkipsTooWideJobsAndKeepsScanning) {
  const auto jobs = make_jobs({8, 16, 4, 2});
  FirstFitScheduler scheduler;
  const auto picks = scheduler.select(views(jobs), {}, 14, 0);
  EXPECT_EQ(picks, (std::vector<std::size_t>{0, 2, 3}));
}

TEST(FirstFit, EmptyQueueOrNoIdle) {
  FirstFitScheduler scheduler;
  EXPECT_TRUE(scheduler.select({}, {}, 100, 0).empty());
  const auto jobs = make_jobs({1});
  EXPECT_TRUE(scheduler.select(views(jobs), {}, 0, 0).empty());
}

TEST(FirstFit, TakesEverythingThatFits) {
  const auto jobs = make_jobs({4, 4, 4});
  FirstFitScheduler scheduler;
  EXPECT_EQ(scheduler.select(views(jobs), {}, 12, 0).size(), 3u);
}

// --- FCFS -------------------------------------------------------------------

TEST(Fcfs, BlocksBehindHead) {
  const auto jobs = make_jobs({16, 4, 2});
  FcfsScheduler scheduler;
  // Head needs 16, only 14 idle: nothing may start.
  EXPECT_TRUE(scheduler.select(views(jobs), {}, 14, 0).empty());
}

TEST(Fcfs, TakesPrefixThatFits) {
  const auto jobs = make_jobs({4, 8, 16, 1});
  FcfsScheduler scheduler;
  const auto picks = scheduler.select(views(jobs), {}, 13, 0);
  EXPECT_EQ(picks, (std::vector<std::size_t>{0, 1}));
}

// --- EASY backfilling --------------------------------------------------------

TEST(EasyBackfill, BehavesLikeFcfsWhenEverythingFits) {
  const auto jobs = make_jobs({4, 4});
  EasyBackfillScheduler scheduler;
  EXPECT_EQ(scheduler.select(views(jobs), {}, 8, 0).size(), 2u);
}

TEST(EasyBackfill, BackfillsShortJobBehindBlockedHead) {
  // 10 nodes total; running job holds 6 until t=1000. Head needs 8 (blocked
  // until then). A 600-second 4-node job finishes before the reservation,
  // so it backfills.
  std::vector<Job> running_jobs = make_jobs({6});
  running_jobs[0].start = 0;
  running_jobs[0].runtime = 1000;
  std::vector<Job> queued = make_jobs({8, 4});
  queued[1].runtime = 600;

  EasyBackfillScheduler scheduler;
  const auto picks = scheduler.select(views(queued), views(running_jobs), 4, 0);
  EXPECT_EQ(picks, std::vector<std::size_t>{1});
}

TEST(EasyBackfill, RefusesBackfillThatWouldDelayReservation) {
  // Same setup, but the backfill candidate runs 2000 s > shadow time 1000
  // and would eat into the head job's reserved nodes (8 of 10 at shadow).
  std::vector<Job> running_jobs = make_jobs({6});
  running_jobs[0].start = 0;
  running_jobs[0].runtime = 1000;
  std::vector<Job> queued = make_jobs({8, 4});
  queued[1].runtime = 2000;

  EasyBackfillScheduler scheduler;
  const auto picks = scheduler.select(views(queued), views(running_jobs), 4, 0);
  EXPECT_TRUE(picks.empty());
}

TEST(EasyBackfill, AllowsLongBackfillIntoSpareNodes) {
  // Machine of 20: 10 idle now, a running 10-node job ends at t=500. The
  // head needs 18, reserved at t=500 with 20-18 = 2 spare nodes, so a long
  // 2-node job may start now even though it outlives the shadow time.
  std::vector<Job> running_jobs = make_jobs({10});
  running_jobs[0].start = 0;
  running_jobs[0].runtime = 500;
  std::vector<Job> queued = make_jobs({18, 2});
  queued[1].runtime = 100000;

  EasyBackfillScheduler scheduler;
  const auto picks = scheduler.select(views(queued), views(running_jobs), 10, 0);
  EXPECT_EQ(picks, std::vector<std::size_t>{1});
}

// --- Cross-policy properties --------------------------------------------------

class SchedulerProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SchedulerProperty, NoPolicyOversubscribesIdleNodes) {
  Rng rng(GetParam());
  FirstFitScheduler first_fit;
  FcfsScheduler fcfs;
  EasyBackfillScheduler backfill;
  for (int round = 0; round < 50; ++round) {
    std::vector<std::int64_t> widths;
    const std::int64_t count = rng.uniform_int(0, 40);
    for (std::int64_t i = 0; i < count; ++i) {
      widths.push_back(rng.uniform_int(1, 32));
    }
    auto jobs = make_jobs(widths);
    for (Job& job : jobs) job.runtime = rng.uniform_int(1, 7200);
    std::vector<Job> running_jobs = make_jobs({rng.uniform_int(1, 16)});
    running_jobs[0].start = 0;
    running_jobs[0].runtime = rng.uniform_int(1, 7200);
    const std::int64_t idle = rng.uniform_int(0, 64);

    for (const Scheduler* scheduler :
         std::initializer_list<const Scheduler*>{&first_fit, &fcfs, &backfill}) {
      const auto picks =
          scheduler->select(views(jobs), views(running_jobs), idle, 0);
      EXPECT_LE(total_width(jobs, picks), idle) << scheduler->name();
      // Picks are strictly ascending positions.
      for (std::size_t i = 1; i < picks.size(); ++i) {
        EXPECT_LT(picks[i - 1], picks[i]) << scheduler->name();
      }
      for (std::size_t pos : picks) {
        ASSERT_LT(pos, jobs.size()) << scheduler->name();
      }
    }
  }
}

TEST_P(SchedulerProperty, FcfsPicksArePrefixOfFirstFit) {
  // FCFS selects a prefix of the queue; every FCFS pick must also be picked
  // by first-fit given the same state.
  Rng rng(GetParam() + 100);
  FirstFitScheduler first_fit;
  FcfsScheduler fcfs;
  for (int round = 0; round < 50; ++round) {
    std::vector<std::int64_t> widths;
    const std::int64_t count = rng.uniform_int(1, 30);
    for (std::int64_t i = 0; i < count; ++i) {
      widths.push_back(rng.uniform_int(1, 16));
    }
    const auto jobs = make_jobs(widths);
    const std::int64_t idle = rng.uniform_int(0, 48);
    const auto ff = first_fit.select(views(jobs), {}, idle, 0);
    const auto fc = fcfs.select(views(jobs), {}, idle, 0);
    ASSERT_LE(fc.size(), ff.size());
    for (std::size_t i = 0; i < fc.size(); ++i) {
      EXPECT_EQ(fc[i], i) << "FCFS picks must be the queue prefix";
      EXPECT_EQ(ff[i], i);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerProperty,
                         ::testing::Values(3u, 17u, 4242u));

}  // namespace
}  // namespace dc::sched
