#include <gtest/gtest.h>

#include "sched/conservative_backfill.hpp"
#include "sched/easy_backfill.hpp"
#include "sched/first_fit.hpp"
#include "sched/sjf.hpp"
#include "util/rng.hpp"

namespace dc::sched {
namespace {

std::vector<Job> make_jobs(const std::vector<std::int64_t>& widths,
                           const std::vector<SimDuration>& runtimes) {
  std::vector<Job> jobs(widths.size());
  for (std::size_t i = 0; i < widths.size(); ++i) {
    jobs[i].id = static_cast<JobId>(i);
    jobs[i].nodes = widths[i];
    jobs[i].runtime = runtimes[i];
  }
  return jobs;
}

std::vector<const Job*> views(const std::vector<Job>& jobs) {
  std::vector<const Job*> out;
  for (const Job& job : jobs) out.push_back(&job);
  return out;
}

// --- SJF ---------------------------------------------------------------------

TEST(Sjf, PicksShortestFirstWhenContended) {
  // 4 idle nodes; jobs (width, runtime): only two can fit.
  const auto jobs = make_jobs({2, 2, 2}, {300, 100, 200});
  SjfScheduler scheduler;
  const auto picks = scheduler.select(views(jobs), {}, 4, 0);
  EXPECT_EQ(picks, (std::vector<std::size_t>{1, 2}))
      << "the two shortest jobs start; the longest waits";
}

TEST(Sjf, StableForEqualRuntimes) {
  const auto jobs = make_jobs({2, 2, 2}, {100, 100, 100});
  SjfScheduler scheduler;
  const auto picks = scheduler.select(views(jobs), {}, 4, 0);
  EXPECT_EQ(picks, (std::vector<std::size_t>{0, 1}))
      << "ties break by arrival order";
}

TEST(Sjf, SkipsJobsThatDoNotFit) {
  const auto jobs = make_jobs({8, 1}, {10, 1000});
  SjfScheduler scheduler;
  const auto picks = scheduler.select(views(jobs), {}, 4, 0);
  EXPECT_EQ(picks, std::vector<std::size_t>{1});
}

// --- Conservative backfilling ---------------------------------------------------

TEST(ConservativeBackfill, StartsEverythingThatFitsNow) {
  const auto jobs = make_jobs({4, 4}, {100, 100});
  ConservativeBackfillScheduler scheduler;
  EXPECT_EQ(scheduler.select(views(jobs), {}, 8, 0).size(), 2u);
}

TEST(ConservativeBackfill, BackfillsWithoutDelayingAnyReservation) {
  // Machine of 10: running job holds 6 until t=1000. Queue: [8-wide head,
  // short 4-wide]. The short job ends at 600 < 1000 and uses only the 4
  // idle nodes, so it cannot delay the head's reservation at t=1000.
  std::vector<Job> running_jobs = make_jobs({6}, {1000});
  running_jobs[0].start = 0;
  const auto queued = make_jobs({8, 4}, {600, 600});
  ConservativeBackfillScheduler scheduler;
  const auto picks = scheduler.select(views(queued), views(running_jobs), 4, 0);
  EXPECT_EQ(picks, std::vector<std::size_t>{1});
}

TEST(ConservativeBackfill, RefusesBackfillThatDelaysSecondReservation) {
  // Machine of 10: running 6 until t=1000. Queue: [8-wide head (reserved at
  // 1000, runs to 2000), 4-wide long job, 4-wide short job]. The long
  // 4-wide job would overlap the head's reservation window on nodes the
  // head needs (only 2 spare at t=1000), so it must NOT start; under EASY
  // it also wouldn't. Then the short 4-wide (ends at 500) may.
  std::vector<Job> running_jobs = make_jobs({6}, {1000});
  running_jobs[0].start = 0;
  const auto queued = make_jobs({8, 4, 4}, {1000, 5000, 500});
  ConservativeBackfillScheduler scheduler;
  const auto picks = scheduler.select(views(queued), views(running_jobs), 4, 0);
  EXPECT_EQ(picks, std::vector<std::size_t>{2});
}

TEST(ConservativeBackfill, ProtectsThirdJobsReservationToo) {
  // Distinguishing case vs EASY: machine of 10, all idle. Queue:
  //   j0: 10-wide, 100 s  -> starts now, everything busy until t=100
  // (then j1 and j2 get reservations at t=100). A 1-wide job j3 with
  // runtime 1000 would fit EASY's single-reservation check only if it
  // doesn't delay j1 — conservative also checks j2.
  const auto queued = make_jobs({10, 6, 4, 1}, {100, 200, 200, 1000});
  ConservativeBackfillScheduler scheduler;
  const auto picks = scheduler.select(views(queued), {}, 10, 0);
  // j0 starts; j1/j2 reserved at t=100 consuming all 10 nodes until 300;
  // j3 (1 node for 1000 s) would collide with those reservations, so its
  // own reservation lands at t=300 — it must not start now.
  EXPECT_EQ(picks, std::vector<std::size_t>{0});
}

TEST(ConservativeBackfill, IgnoresImpossiblyWideJobs) {
  const auto queued = make_jobs({100, 2}, {50, 50});
  ConservativeBackfillScheduler scheduler;
  const auto picks = scheduler.select(views(queued), {}, 8, 0);
  EXPECT_EQ(picks, std::vector<std::size_t>{1})
      << "a job wider than the machine is skipped, not crashed on";
}

TEST(ConservativeBackfill, JobEndingThisInstantIsNotYetFree) {
  // Regression: a running job whose completion event sits later in the
  // current simulation instant (expected_end == now) must not be treated
  // as released capacity, or the scheduler oversubscribes.
  std::vector<Job> running_jobs = make_jobs({12}, {5});
  running_jobs[0].start = 0;  // ends at t=5 == now
  const auto queued = make_jobs({7, 9, 4, 1}, {14, 82, 79, 9});
  ConservativeBackfillScheduler scheduler;
  const auto picks = scheduler.select(views(queued), views(running_jobs),
                                      /*idle=*/16, /*now=*/5);
  std::int64_t total = 0;
  for (std::size_t pos : picks) total += queued[pos].nodes;
  EXPECT_LE(total, 16);
}

TEST(EasyBackfill, JobEndingThisInstantIsNotYetFree) {
  std::vector<Job> running_jobs = make_jobs({12}, {5});
  running_jobs[0].start = 0;
  const auto queued = make_jobs({20, 4}, {100, 100});
  EasyBackfillScheduler scheduler;
  const auto picks = scheduler.select(views(queued), views(running_jobs),
                                      /*idle=*/16, /*now=*/5);
  std::int64_t total = 0;
  for (std::size_t pos : picks) total += queued[pos].nodes;
  EXPECT_LE(total, 16);
}

// --- Cross-checks ---------------------------------------------------------------

class ExtensionSchedulerProperty
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ExtensionSchedulerProperty, NeverOversubscribeAndAscendingPicks) {
  Rng rng(GetParam());
  SjfScheduler sjf;
  ConservativeBackfillScheduler conservative;
  for (int round = 0; round < 40; ++round) {
    std::vector<std::int64_t> widths;
    std::vector<SimDuration> runtimes;
    const std::int64_t count = rng.uniform_int(0, 30);
    for (std::int64_t i = 0; i < count; ++i) {
      widths.push_back(rng.uniform_int(1, 16));
      runtimes.push_back(rng.uniform_int(1, 5000));
    }
    const auto jobs = make_jobs(widths, runtimes);
    std::vector<Job> running_jobs = make_jobs({rng.uniform_int(1, 8)},
                                              {rng.uniform_int(1, 5000)});
    running_jobs[0].start = 0;
    const std::int64_t idle = rng.uniform_int(0, 40);
    for (const Scheduler* scheduler :
         std::initializer_list<const Scheduler*>{&sjf, &conservative}) {
      const auto picks =
          scheduler->select(views(jobs), views(running_jobs), idle, 0);
      std::int64_t total = 0;
      for (std::size_t i = 0; i < picks.size(); ++i) {
        ASSERT_LT(picks[i], jobs.size());
        if (i > 0) EXPECT_LT(picks[i - 1], picks[i]) << scheduler->name();
        total += jobs[picks[i]].nodes;
      }
      EXPECT_LE(total, idle) << scheduler->name();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExtensionSchedulerProperty,
                         ::testing::Values(5u, 55u, 555u));

}  // namespace
}  // namespace dc::sched
