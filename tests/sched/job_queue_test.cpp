#include "sched/job.hpp"

#include <gtest/gtest.h>

namespace dc::sched {
namespace {

TEST(JobQueue, PushAndOrder) {
  JobQueue queue;
  queue.push(5);
  queue.push(2);
  queue.push(9);
  EXPECT_EQ(queue.items(), (std::vector<JobId>{5, 2, 9}));
  EXPECT_EQ(queue.size(), 3u);
  EXPECT_FALSE(queue.empty());
}

TEST(JobQueue, RemoveNothing) {
  JobQueue queue;
  queue.push(1);
  queue.remove_positions({});
  EXPECT_EQ(queue.size(), 1u);
}

TEST(JobQueue, RemoveMiddlePreservesOrder) {
  JobQueue queue;
  for (JobId id : {10, 11, 12, 13, 14}) queue.push(id);
  queue.remove_positions({1, 3});
  EXPECT_EQ(queue.items(), (std::vector<JobId>{10, 12, 14}));
}

TEST(JobQueue, RemoveEndsAndAll) {
  JobQueue queue;
  for (JobId id : {1, 2, 3}) queue.push(id);
  queue.remove_positions({0, 2});
  EXPECT_EQ(queue.items(), std::vector<JobId>{2});
  queue.remove_positions({0});
  EXPECT_TRUE(queue.empty());
}

TEST(JobQueue, Clear) {
  JobQueue queue;
  queue.push(1);
  queue.clear();
  EXPECT_TRUE(queue.empty());
}

TEST(Job, ExpectedEndAndWait) {
  Job job;
  job.submit = 100;
  job.runtime = 50;
  EXPECT_EQ(job.expected_end(), kNever);
  EXPECT_EQ(job.wait_time(), 0);
  job.start = 130;
  EXPECT_EQ(job.expected_end(), 180);
  EXPECT_EQ(job.wait_time(), 30);
}

TEST(Job, StateNames) {
  EXPECT_STREQ(job_state_name(JobState::kPending), "pending");
  EXPECT_STREQ(job_state_name(JobState::kQueued), "queued");
  EXPECT_STREQ(job_state_name(JobState::kRunning), "running");
  EXPECT_STREQ(job_state_name(JobState::kCompleted), "completed");
}

}  // namespace
}  // namespace dc::sched
