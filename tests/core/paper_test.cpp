// Reproduction guard tests: the qualitative claims of the paper's
// evaluation (Section 4.5) must hold on the calibrated synthetic workloads.
// These are the tests that fail if a refactor breaks the economics of the
// DSP model rather than a unit-level contract.
#include "core/paper.hpp"

#include <gtest/gtest.h>

#include "core/systems.hpp"
#include "metrics/report.hpp"

namespace dc::core {
namespace {

class PaperTables : public ::testing::Test {
 protected:
  static const std::vector<SystemResult>& nasa() {
    static const auto results =
        run_all_systems(single_htc_workload(paper_nasa_spec()));
    return results;
  }
  static const std::vector<SystemResult>& blue() {
    static const auto results =
        run_all_systems(single_htc_workload(paper_blue_spec()));
    return results;
  }
  static const std::vector<SystemResult>& montage() {
    static const auto results = [] {
      MtcWorkloadSpec spec = paper_montage_spec();
      spec.submit_time = 0;
      return run_all_systems(single_mtc_workload(spec));
    }();
    return results;
  }
  static const std::vector<SystemResult>& consolidated() {
    static const auto results = run_all_systems(paper_consolidation());
    return results;
  }

  static const ProviderResult& provider(const std::vector<SystemResult>& results,
                                        SystemModel model, const std::string& name) {
    return metrics::result_for(results, model).provider(name);
  }
};

// --- Table 2 (NASA) ----------------------------------------------------------

TEST_F(PaperTables, Table2DcsConsumptionIsExactlySizeTimesPeriod) {
  EXPECT_EQ(provider(nasa(), SystemModel::kDcs, "NASA").consumption_node_hours,
            128 * 336);
}

TEST_F(PaperTables, Table2SspEqualsDcs) {
  EXPECT_EQ(provider(nasa(), SystemModel::kSsp, "NASA").consumption_node_hours,
            provider(nasa(), SystemModel::kDcs, "NASA").consumption_node_hours);
  EXPECT_EQ(provider(nasa(), SystemModel::kSsp, "NASA").completed_jobs,
            provider(nasa(), SystemModel::kDcs, "NASA").completed_jobs);
}

TEST_F(PaperTables, Table2DrpConsumesMoreThanDcs) {
  // Paper: -25.8%. Short jobs + hourly quantum make DRP the worst option.
  const double saved = metrics::saved_percent(
      provider(nasa(), SystemModel::kDcs, "NASA").consumption_node_hours,
      provider(nasa(), SystemModel::kDrp, "NASA").consumption_node_hours);
  EXPECT_LT(saved, -15.0);
  EXPECT_GT(saved, -45.0);
}

TEST_F(PaperTables, Table2DawningCloudSavesSubstantially) {
  // Paper: +32.5%.
  const double saved = metrics::saved_percent(
      provider(nasa(), SystemModel::kDcs, "NASA").consumption_node_hours,
      provider(nasa(), SystemModel::kDawningCloud, "NASA").consumption_node_hours);
  EXPECT_GT(saved, 18.0);
  EXPECT_LT(saved, 45.0);
}

TEST_F(PaperTables, Table2AllSystemsCompleteTheSameJobs) {
  const auto dcs = provider(nasa(), SystemModel::kDcs, "NASA").completed_jobs;
  EXPECT_EQ(provider(nasa(), SystemModel::kDrp, "NASA").completed_jobs, dcs);
  EXPECT_EQ(provider(nasa(), SystemModel::kDawningCloud, "NASA").completed_jobs,
            dcs);
  EXPECT_GT(dcs, 2000);
}

// --- Table 3 (BLUE) ----------------------------------------------------------

TEST_F(PaperTables, Table3DcsConsumption) {
  EXPECT_EQ(provider(blue(), SystemModel::kDcs, "BLUE").consumption_node_hours,
            144 * 336);
}

TEST_F(PaperTables, Table3DrpSavesOnLongJobs) {
  // Paper: +25.9% — walltime-aligned long jobs neutralize the quantum.
  const double saved = metrics::saved_percent(
      provider(blue(), SystemModel::kDcs, "BLUE").consumption_node_hours,
      provider(blue(), SystemModel::kDrp, "BLUE").consumption_node_hours);
  EXPECT_GT(saved, 15.0);
  EXPECT_LT(saved, 40.0);
}

TEST_F(PaperTables, Table3DawningCloudSaves) {
  // Paper: +27.2%.
  const double saved = metrics::saved_percent(
      provider(blue(), SystemModel::kDcs, "BLUE").consumption_node_hours,
      provider(blue(), SystemModel::kDawningCloud, "BLUE").consumption_node_hours);
  EXPECT_GT(saved, 12.0);
  EXPECT_LT(saved, 40.0);
}

TEST_F(PaperTables, Table3DrpCompletesAtLeastAsManyJobs) {
  // Paper: 2657 (DRP) vs 2649 (DCS) — queueless DRP never finishes fewer.
  EXPECT_GE(provider(blue(), SystemModel::kDrp, "BLUE").completed_jobs,
            provider(blue(), SystemModel::kDcs, "BLUE").completed_jobs);
}

// --- Table 4 (Montage) ---------------------------------------------------------

TEST_F(PaperTables, Table4DcsSspDawningCloudAllConsume166) {
  EXPECT_EQ(provider(montage(), SystemModel::kDcs, "Montage").consumption_node_hours,
            166);
  EXPECT_EQ(provider(montage(), SystemModel::kSsp, "Montage").consumption_node_hours,
            166);
  EXPECT_EQ(provider(montage(), SystemModel::kDawningCloud, "Montage")
                .consumption_node_hours,
            166)
      << "B10_R8 converges to exactly the fixed configuration (§4.5.2)";
}

TEST_F(PaperTables, Table4DrpBurnsRoughlyFourTimesTheResources) {
  // Paper: 662 node*hours vs 166 (-298.8%).
  const auto drp =
      provider(montage(), SystemModel::kDrp, "Montage").consumption_node_hours;
  EXPECT_GT(drp, 500);
  EXPECT_LE(drp, 662);
}

TEST_F(PaperTables, Table4DrpIsFastest) {
  // Paper: 2.71 vs 2.49 tasks/s.
  const double drp =
      provider(montage(), SystemModel::kDrp, "Montage").tasks_per_second;
  const double dcs =
      provider(montage(), SystemModel::kDcs, "Montage").tasks_per_second;
  const double dawning =
      provider(montage(), SystemModel::kDawningCloud, "Montage").tasks_per_second;
  EXPECT_GT(drp, dcs);
  EXPECT_NEAR(dawning, dcs, 0.15) << "DawningCloud matches the fixed RE";
  EXPECT_GT(dcs, 2.0);
  EXPECT_LT(drp, 3.5);
}

TEST_F(PaperTables, Table4AllSystemsComplete1000Tasks) {
  for (SystemModel model : {SystemModel::kDcs, SystemModel::kSsp,
                            SystemModel::kDrp, SystemModel::kDawningCloud}) {
    EXPECT_EQ(provider(montage(), model, "Montage").completed_jobs, 1000);
  }
}

// --- Figures 12/13/14 (consolidated run) ----------------------------------------

TEST_F(PaperTables, Fig12DawningCloudSavesTotalConsumption) {
  // Paper: 29.7% vs DCS/SSP, 29.0% vs DRP.
  const auto& dcs = metrics::result_for(consolidated(), SystemModel::kDcs);
  const auto& drp = metrics::result_for(consolidated(), SystemModel::kDrp);
  const auto& dawning =
      metrics::result_for(consolidated(), SystemModel::kDawningCloud);
  EXPECT_GT(metrics::saved_percent(dcs.total_consumption_node_hours,
                                   dawning.total_consumption_node_hours),
            15.0);
  EXPECT_GT(metrics::saved_percent(drp.total_consumption_node_hours,
                                   dawning.total_consumption_node_hours),
            15.0);
}

TEST_F(PaperTables, Fig13PeakOrdering) {
  // Paper: DawningCloud peak ~= 1.06x DCS/SSP and ~0.21x DRP.
  const auto& dcs = metrics::result_for(consolidated(), SystemModel::kDcs);
  const auto& drp = metrics::result_for(consolidated(), SystemModel::kDrp);
  const auto& dawning =
      metrics::result_for(consolidated(), SystemModel::kDawningCloud);
  EXPECT_EQ(dcs.peak_nodes, 128 + 144 + 166);
  EXPECT_LE(dawning.peak_nodes, dcs.peak_nodes * 115 / 100);
  EXPECT_LT(dawning.peak_nodes * 2, drp.peak_nodes)
      << "DRP forces capacity planning for transient backlogs";
}

TEST_F(PaperTables, Fig14AdjustmentOrdering) {
  // Paper: SSP lowest (startup/finalization only), DawningCloud well below
  // DRP (initial resources never churn).
  const auto& ssp = metrics::result_for(consolidated(), SystemModel::kSsp);
  const auto& drp = metrics::result_for(consolidated(), SystemModel::kDrp);
  const auto& dcs = metrics::result_for(consolidated(), SystemModel::kDcs);
  const auto& dawning =
      metrics::result_for(consolidated(), SystemModel::kDawningCloud);
  EXPECT_EQ(dcs.adjusted_nodes, 0);
  EXPECT_EQ(ssp.adjusted_nodes, 2 * (128 + 144 + 166));
  EXPECT_LT(ssp.adjusted_nodes, dawning.adjusted_nodes);
  EXPECT_LT(dawning.adjusted_nodes * 3, drp.adjusted_nodes);
}

TEST_F(PaperTables, Fig14OverheadUsesMeasuredSetupCost) {
  const auto& dawning =
      metrics::result_for(consolidated(), SystemModel::kDawningCloud);
  EXPECT_NEAR(dawning.overhead_seconds,
              15.743 * static_cast<double>(dawning.adjusted_nodes), 1e-6);
}

// --- Per-provider consistency between isolated and consolidated runs ------------

TEST_F(PaperTables, ConsolidationDoesNotChangeProviderMetrics) {
  // The platform pool is effectively unbounded, so each provider's metrics
  // are identical whether run alone (Tables 2-4) or consolidated (Figures
  // 12-14) — as in the paper, where the tables are drawn from the
  // consolidated experiment.
  const auto& alone = provider(nasa(), SystemModel::kDawningCloud, "NASA");
  const auto& together =
      provider(consolidated(), SystemModel::kDawningCloud, "NASA");
  EXPECT_EQ(alone.consumption_node_hours, together.consumption_node_hours);
  EXPECT_EQ(alone.completed_jobs, together.completed_jobs);
}

}  // namespace
}  // namespace dc::core
