// Per-component snapshot round trips: each stateful building block saves
// mid-flight state into a stream and restores it into a fresh instance
// that then behaves byte-identically. The capstone tests take a full
// SystemRunner mid-run, restore it into a passive runner, and require the
// re-saved stream to be byte-identical to the original — a restore that
// loses or invents any field in any component fails immediately.
#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/billing.hpp"
#include "cluster/resource_pool.hpp"
#include "cluster/usage_recorder.hpp"
#include "core/system_runner.hpp"
#include "core/systems.hpp"
#include "sim/simulator.hpp"
#include "snapshot/format.hpp"
#include "util/rng.hpp"
#include "workflow/montage.hpp"
#include "workload/models.hpp"

namespace dc {
namespace {

using core::SystemModel;
using snapshot::SnapshotReader;
using snapshot::SnapshotWriter;

TEST(SnapshotComponents, RngContinuesTheExactStream) {
  Rng original(97);
  for (int i = 0; i < 1000; ++i) original();
  const std::array<std::uint64_t, 4> saved = original.state();
  Rng resumed(1);  // different seed: state transplant must fully override
  resumed.set_state(saved);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(original(), resumed());
  }
}

TEST(SnapshotComponents, LeaseLedgerRoundTrip) {
  cluster::LeaseLedger ledger;
  const cluster::LeaseId open = ledger.open(0, 8, "initial");
  const cluster::LeaseId closed = ledger.open(kHour, 4, "grant");
  ledger.close(closed, 3 * kHour);
  ledger.amend_end(closed, 2 * kHour);
  (void)open;

  SnapshotWriter writer;
  ASSERT_TRUE(ledger.save(writer).is_ok());
  auto reader = SnapshotReader::from_buffer(writer.finish());
  ASSERT_TRUE(reader.is_ok());
  cluster::LeaseLedger restored;
  ASSERT_TRUE(restored.restore(*reader).is_ok());

  EXPECT_EQ(restored.lease_count(), ledger.lease_count());
  EXPECT_EQ(restored.billed_node_hours(kDay), ledger.billed_node_hours(kDay));
  EXPECT_DOUBLE_EQ(restored.exact_node_hours(kDay),
                   ledger.exact_node_hours(kDay));
  // The restored ledger stays live: closing the still-open lease behaves
  // as it would have in the original.
  restored.close(open, 5 * kHour);
  ledger.close(open, 5 * kHour);
  EXPECT_EQ(restored.billed_node_hours(kDay), ledger.billed_node_hours(kDay));
}

TEST(SnapshotComponents, UsageRecorderRoundTrip) {
  cluster::UsageRecorder usage;
  usage.change(0, 10);
  usage.change(kHour, 5);
  usage.change(2 * kHour, -8);

  SnapshotWriter writer;
  ASSERT_TRUE(usage.save(writer).is_ok());
  auto reader = SnapshotReader::from_buffer(writer.finish());
  ASSERT_TRUE(reader.is_ok());
  cluster::UsageRecorder restored;
  ASSERT_TRUE(restored.restore(*reader).is_ok());

  EXPECT_EQ(restored.current(), usage.current());
  EXPECT_EQ(restored.peak(), usage.peak());
  EXPECT_DOUBLE_EQ(restored.node_hours(kDay), usage.node_hours(kDay));
  EXPECT_EQ(restored.hourly_peak_series(4 * kHour),
            usage.hourly_peak_series(4 * kHour));
}

TEST(SnapshotComponents, ResourcePoolRoundTrip) {
  cluster::ResourcePool pool(256);
  ASSERT_TRUE(pool.allocate(100).is_ok());
  SnapshotWriter writer;
  ASSERT_TRUE(pool.save(writer).is_ok());
  auto reader = SnapshotReader::from_buffer(writer.finish());
  ASSERT_TRUE(reader.is_ok());
  cluster::ResourcePool restored(256);
  ASSERT_TRUE(restored.restore(*reader).is_ok());
  EXPECT_EQ(restored.allocated(), 100);
  EXPECT_TRUE(restored.is_bounded());
  EXPECT_TRUE(restored.can_allocate(156));
  EXPECT_FALSE(restored.can_allocate(157));
}

core::ConsolidationWorkload small_workload() {
  workload::SyntheticTraceSpec trace_spec;
  trace_spec.name = "snap";
  trace_spec.capacity_nodes = 32;
  trace_spec.period = kDay;
  trace_spec.submit_margin = 2 * kHour;
  trace_spec.jobs_per_day = 120;
  trace_spec.width_weights = {{1, 0.4}, {2, 0.3}, {4, 0.2}, {8, 0.1}};
  trace_spec.hyper_p = 0.9;
  trace_spec.hyper_mean1 = 400;
  trace_spec.hyper_mean2 = 3600;

  core::HtcWorkloadSpec htc;
  htc.name = "snap";
  htc.trace = workload::generate_trace(trace_spec, /*seed=*/23);
  htc.fixed_nodes = 32;
  htc.policy = core::ResourceManagementPolicy::htc(8, 1.5, 32);

  workflow::MontageParams params;
  params.inputs = 12;
  core::MtcWorkloadSpec mtc;
  mtc.name = "wf";
  mtc.dag = workflow::make_montage(params, /*seed=*/5);
  mtc.submit_time = 6 * kHour;
  mtc.fixed_nodes = 20;
  mtc.policy = core::ResourceManagementPolicy::mtc(4, 8.0);

  core::ConsolidationWorkload workload;
  workload.htc.push_back(std::move(htc));
  workload.mtc.push_back(std::move(mtc));
  return workload;
}

core::RunOptions faulted_options() {
  core::RunOptions options;
  core::fault::FaultDomain::Config faults;
  faults.mean_time_between_failures = 3 * kHour;
  faults.mean_time_to_repair = 30 * kMinute;
  faults.seed = 4242;
  options.faults = faults;
  return options;
}

// Mid-run world: save, restore into a passive runner, save again — the two
// streams must be byte-identical. Every save/restore asymmetry in any
// component (dropped field, re-encoded default, wrong order) shows up as a
// first-diverging-record diff.
void expect_double_snapshot_identical(SystemModel model) {
  const core::ConsolidationWorkload workload = small_workload();
  const core::RunOptions options = faulted_options();

  core::SystemRunner original(model, workload, options);
  original.run_until(10 * kHour);
  SnapshotWriter first;
  ASSERT_TRUE(original.save(first).is_ok());

  core::SystemRunner resumed(model, workload, options,
                             core::SystemRunner::Mode::kRestore);
  auto reader = SnapshotReader::from_buffer(first.finish());
  ASSERT_TRUE(reader.is_ok()) << reader.status().to_string();
  const Status restored = resumed.restore(*reader);
  ASSERT_TRUE(restored.is_ok()) << restored.to_string();

  SnapshotWriter second;
  ASSERT_TRUE(resumed.save(second).is_ok());
  ASSERT_EQ(first.buffer().size(), second.buffer().size());
  EXPECT_EQ(first.buffer(), second.buffer())
      << core::system_model_name(model)
      << ": restore must reconstruct the exact component state";
  EXPECT_EQ(first.digest(), second.digest());
}

TEST(SnapshotComponents, DoubleSnapshotIsByteIdenticalDcs) {
  expect_double_snapshot_identical(SystemModel::kDcs);
}

TEST(SnapshotComponents, DoubleSnapshotIsByteIdenticalSsp) {
  expect_double_snapshot_identical(SystemModel::kSsp);
}

TEST(SnapshotComponents, DoubleSnapshotIsByteIdenticalDrp) {
  expect_double_snapshot_identical(SystemModel::kDrp);
}

TEST(SnapshotComponents, DoubleSnapshotIsByteIdenticalDawningCloud) {
  expect_double_snapshot_identical(SystemModel::kDawningCloud);
}

TEST(SnapshotComponents, RestoreIntoFreshRunnerIsRejected) {
  const core::ConsolidationWorkload workload = small_workload();
  core::SystemRunner original(SystemModel::kDcs, workload, {});
  original.run_until(4 * kHour);
  SnapshotWriter writer;
  ASSERT_TRUE(original.save(writer).is_ok());

  core::SystemRunner fresh(SystemModel::kDcs, workload, {});
  auto reader = SnapshotReader::from_buffer(writer.finish());
  ASSERT_TRUE(reader.is_ok());
  const Status status = fresh.restore(*reader);
  ASSERT_FALSE(status.is_ok());
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
}

TEST(SnapshotComponents, ModelMismatchIsRejectedWithBothNames) {
  const core::ConsolidationWorkload workload = small_workload();
  core::SystemRunner original(SystemModel::kDcs, workload, {});
  original.run_until(4 * kHour);
  SnapshotWriter writer;
  ASSERT_TRUE(original.save(writer).is_ok());

  core::SystemRunner other(SystemModel::kSsp, workload, {},
                           core::SystemRunner::Mode::kRestore);
  auto reader = SnapshotReader::from_buffer(writer.finish());
  ASSERT_TRUE(reader.is_ok());
  const Status status = other.restore(*reader);
  ASSERT_FALSE(status.is_ok());
  EXPECT_NE(status.message().find("DCS"), std::string::npos);
  EXPECT_NE(status.message().find("SSP"), std::string::npos);
}

}  // namespace
}  // namespace dc
