#include "core/htc_server.hpp"

#include <gtest/gtest.h>

#include "sched/first_fit.hpp"
#include "sim/simulator.hpp"

namespace dc::core {
namespace {

class HtcServerTest : public ::testing::Test {
 protected:
  HtcServer& make_fixed(std::int64_t nodes) {
    HtcServer::Config config;
    config.name = "fixed";
    config.fixed_nodes = nodes;
    config.scheduler = &scheduler_;
    server_ = std::make_unique<HtcServer>(sim_, provision_, std::move(config));
    return *server_;
  }

  HtcServer& make_elastic(ResourceManagementPolicy policy) {
    HtcServer::Config config;
    config.name = "elastic";
    config.policy = policy;
    config.scheduler = &scheduler_;
    server_ = std::make_unique<HtcServer>(sim_, provision_, std::move(config));
    return *server_;
  }

  sim::Simulator sim_;
  ResourceProvisionService provision_{cluster::ResourcePool::unbounded()};
  sched::FirstFitScheduler scheduler_;
  std::unique_ptr<HtcServer> server_;
};

TEST_F(HtcServerTest, FixedModeStartsWithConfiguredNodes) {
  HtcServer& server = make_fixed(32);
  sim_.schedule_at(0, [&] { EXPECT_TRUE(server.start()); });
  sim_.run();
  EXPECT_EQ(server.owned(), 32);
  EXPECT_EQ(server.idle(), 32);
  EXPECT_FALSE(server.elastic());
}

TEST_F(HtcServerTest, RunsJobsAndCountsCompletions) {
  HtcServer& server = make_fixed(10);
  sim_.schedule_at(0, [&] {
    server.start();
    server.submit(/*runtime=*/100, /*nodes=*/4);
    server.submit(/*runtime=*/50, /*nodes=*/6);
  });
  sim_.run();
  EXPECT_EQ(server.completed_jobs(), 2);
  EXPECT_EQ(server.busy(), 0);
  EXPECT_EQ(server.last_finish(), 100);
  // Both ran immediately (both fit).
  EXPECT_EQ(server.jobs()[0].start, 0);
  EXPECT_EQ(server.jobs()[1].start, 0);
}

TEST_F(HtcServerTest, QueuesWhenFullAndBackfillsOnCompletion) {
  HtcServer& server = make_fixed(10);
  sim_.schedule_at(0, [&] {
    server.start();
    server.submit(100, 8);  // runs now
    server.submit(100, 8);  // must wait for the first to finish
    server.submit(100, 2);  // first-fit slips it into the 2 idle nodes
  });
  sim_.run();
  EXPECT_EQ(server.jobs()[0].start, 0);
  EXPECT_EQ(server.jobs()[2].start, 0);
  EXPECT_EQ(server.jobs()[1].start, 100);
  EXPECT_EQ(server.completed_jobs(), 3);
}

TEST_F(HtcServerTest, CompletedJobsRespectsHorizon) {
  HtcServer& server = make_fixed(4);
  sim_.schedule_at(0, [&] {
    server.start();
    server.submit(10, 1);
    server.submit(1000, 1);
  });
  sim_.run();
  EXPECT_EQ(server.completed_jobs(10), 1);
  EXPECT_EQ(server.completed_jobs(1000), 2);
}

TEST_F(HtcServerTest, FixedLedgerBillsSizeTimesPeriod) {
  HtcServer& server = make_fixed(16);
  sim_.schedule_at(0, [&] { server.start(); });
  sim_.run_until(10 * kHour);
  server.shutdown();
  EXPECT_EQ(server.ledger().billed_node_hours(10 * kHour), 160);
}

TEST_F(HtcServerTest, ElasticStartsWithInitialResourcesOnly) {
  HtcServer& server = make_elastic(ResourceManagementPolicy::htc(8, 1.5));
  sim_.schedule_at(0, [&] { server.start(); });
  sim_.run_until(1);
  EXPECT_EQ(server.owned(), 8);
  EXPECT_TRUE(server.elastic());
}

TEST_F(HtcServerTest, Dr1ExpansionWhenQueueRatioExceedsThreshold) {
  // B=10, R=1.5: queued demand 20 > 15 at the first scan -> DR1 = 10.
  HtcServer& server = make_elastic(ResourceManagementPolicy::htc(10, 1.5));
  sim_.schedule_at(0, [&] {
    server.start();
    server.submit(kHour * 10, 10);  // occupies all initial nodes
    server.submit(kHour * 10, 10);  // queued: demand 10
    server.submit(kHour * 10, 10);  // queued: demand 20 > 1.5 * 10
  });
  sim_.run_until(kMinute);
  // DR1 = queued demand (20) - owned (10) = 10: one queued job starts.
  EXPECT_EQ(server.owned(), 20);
  EXPECT_EQ(server.busy(), 20);
  EXPECT_EQ(server.queue_length(), 1u);
  EXPECT_EQ(server.dynamic_grants(), 1);
}

TEST_F(HtcServerTest, Dr2ExpansionForWideJobBelowThreshold) {
  // B=10, R=3: one 25-node job queued -> ratio 2.5 <= 3, DR2 = 15.
  HtcServer& server = make_elastic(ResourceManagementPolicy::htc(10, 3.0));
  sim_.schedule_at(0, [&] {
    server.start();
    server.submit(kHour * 5, 25);
  });
  sim_.run_until(kMinute);
  EXPECT_EQ(server.owned(), 25);
  EXPECT_EQ(server.busy(), 25) << "the wide job starts right after the grant";
}

TEST_F(HtcServerTest, GrantReleasedAtHourlyIdleCheck) {
  HtcServer& server = make_elastic(ResourceManagementPolicy::htc(10, 1.5));
  sim_.schedule_at(0, [&] {
    server.start();
    server.submit(30 * kMinute, 10);
    server.submit(30 * kMinute, 10);
    server.submit(30 * kMinute, 10);
  });
  // Jobs finish at 30min + epsilon; grant of 20 released at its first
  // hourly check (~1 minute-scan + 1 hour).
  sim_.run_until(2 * kHour);
  EXPECT_EQ(server.owned(), 10) << "dynamic grant released, initial kept";
  EXPECT_EQ(server.completed_jobs(), 3);
}

TEST_F(HtcServerTest, GrantHeldWhileBusy) {
  HtcServer& server = make_elastic(ResourceManagementPolicy::htc(10, 1.5));
  sim_.schedule_at(0, [&] {
    server.start();
    server.submit(10 * kHour, 10);
    server.submit(10 * kHour, 10);
    server.submit(10 * kHour, 10);
  });
  sim_.run_until(5 * kHour);
  EXPECT_EQ(server.owned(), 20) << "idle < grant size: nothing released";
  EXPECT_EQ(server.idle(), 0);
}

TEST_F(HtcServerTest, InitialResourcesNeverReleasedUntilShutdown) {
  HtcServer& server = make_elastic(ResourceManagementPolicy::htc(40, 1.5));
  sim_.schedule_at(0, [&] { server.start(); });
  // No jobs at all: the initial 40 stay for the whole run.
  sim_.run_until(24 * kHour);
  EXPECT_EQ(server.owned(), 40);
  server.shutdown();
  EXPECT_EQ(server.owned(), 0);
  EXPECT_EQ(provision_.allocated(), 0);
  EXPECT_EQ(server.ledger().billed_node_hours(24 * kHour), 40 * 24);
}

TEST_F(HtcServerTest, MaxNodesClampsExpansion) {
  HtcServer& server = make_elastic(ResourceManagementPolicy::htc(10, 1.2, 16));
  sim_.schedule_at(0, [&] {
    server.start();
    for (int i = 0; i < 10; ++i) server.submit(10 * kHour, 5);
  });
  sim_.run_until(kHour);
  EXPECT_LE(server.owned(), 16);
  EXPECT_EQ(server.owned(), 16) << "expands to the subscription, no further";
}

TEST_F(HtcServerTest, RejectedGrantsAreCountedAndRetried) {
  // Bounded pool: 12 nodes total; initial takes 10, DR1 wants 10 more.
  ResourceProvisionService bounded(cluster::ResourcePool(12));
  HtcServer::Config config;
  config.name = "bounded";
  config.policy = ResourceManagementPolicy::htc(10, 1.2);
  config.scheduler = &scheduler_;
  HtcServer server(sim_, bounded, std::move(config));
  sim_.schedule_at(0, [&] {
    server.start();
    server.submit(10 * kHour, 10);
    server.submit(10 * kHour, 10);
    server.submit(10 * kHour, 10);
  });
  sim_.run_until(10 * kMinute);
  EXPECT_EQ(server.owned(), 10);
  EXPECT_GE(server.rejected_grants(), 5) << "every minute-scan retries";
  EXPECT_EQ(bounded.rejected_requests(), server.rejected_grants());
}

TEST_F(HtcServerTest, DrainedCallbackFires) {
  HtcServer& server = make_fixed(4);
  std::vector<SimTime> drained_times;
  server.set_drained_callback([&](SimTime t) { drained_times.push_back(t); });
  sim_.schedule_at(0, [&] {
    server.start();
    server.submit(10, 2);
  });
  sim_.schedule_at(100, [&] { server.submit(10, 2); });
  sim_.run();
  EXPECT_EQ(drained_times, (std::vector<SimTime>{10, 110}));
}

TEST_F(HtcServerTest, ShutdownIsIdempotentAndStopsTimers) {
  HtcServer& server = make_elastic(ResourceManagementPolicy::htc(10, 1.5));
  sim_.schedule_at(0, [&] { server.start(); });
  sim_.schedule_at(10, [&] {
    server.shutdown();
    server.shutdown();
  });
  sim_.run();
  EXPECT_TRUE(server.is_shutdown());
  EXPECT_EQ(provision_.allocated(), 0);
  // Scan timer was stopped: no stray events remain.
  EXPECT_EQ(sim_.pending_live(), 0u);
}

TEST_F(HtcServerTest, HeldUsageTracksOwnership) {
  HtcServer& server = make_elastic(ResourceManagementPolicy::htc(10, 1.5));
  sim_.schedule_at(0, [&] {
    server.start();
    server.submit(30 * kMinute, 10);
    server.submit(30 * kMinute, 20);
  });
  sim_.run_until(3 * kHour);
  EXPECT_EQ(server.held_usage().peak(), 20);
  EXPECT_EQ(server.held_usage().current(), 10);
}

TEST_F(HtcServerTest, QueuedDemandAndBiggestQueued) {
  HtcServer& server = make_fixed(4);
  sim_.schedule_at(0, [&] {
    server.start();
    server.submit(kHour, 4);  // runs
    server.submit(kHour, 3);  // queued
    server.submit(kHour, 2);  // queued
  });
  sim_.run_until(1);
  EXPECT_EQ(server.queued_demand(), 5);
  EXPECT_EQ(server.biggest_queued(), 3);
  EXPECT_EQ(server.queue_length(), 2u);
}

}  // namespace
}  // namespace dc::core
