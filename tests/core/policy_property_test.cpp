// Property tests over the elastic policy space: for every (B, R, seed)
// combination the server must uphold its invariants regardless of how the
// workload exercises it.
#include <gtest/gtest.h>

#include "core/htc_server.hpp"
#include "core/job_emulator.hpp"
#include "sched/first_fit.hpp"
#include "sim/simulator.hpp"
#include "workload/models.hpp"

namespace dc::core {
namespace {

struct PolicyCase {
  std::int64_t b;
  double r;
  std::int64_t max_nodes;
  std::uint64_t seed;
};

void PrintTo(const PolicyCase& c, std::ostream* os) {
  *os << "B" << c.b << "_R" << c.r << "_max" << c.max_nodes << "_seed"
      << c.seed;
}

class PolicyProperty : public ::testing::TestWithParam<PolicyCase> {};

workload::Trace small_trace(std::uint64_t seed) {
  workload::SyntheticTraceSpec spec;
  spec.name = "prop";
  spec.capacity_nodes = 48;
  spec.period = 2 * kDay;
  spec.submit_margin = 3 * kHour;
  spec.jobs_per_day = 200;
  spec.bursts_per_day = 2;
  spec.burst_jobs_min = 3;
  spec.burst_jobs_max = 10;
  spec.width_weights = {{1, 0.4}, {2, 0.25}, {4, 0.18}, {8, 0.1},
                        {16, 0.05}, {48, 0.02}};
  spec.hyper_mean1 = 600;
  spec.hyper_mean2 = 5000;
  return workload::generate_trace(spec, seed);
}

TEST_P(PolicyProperty, ServerInvariantsHoldForEveryPolicyPoint) {
  const PolicyCase& param = GetParam();
  const workload::Trace trace = small_trace(param.seed);
  const SimTime horizon = trace.period();

  sim::Simulator sim;
  ResourceProvisionService provision(cluster::ResourcePool::unbounded());
  sched::FirstFitScheduler first_fit;
  HtcServer::Config config;
  config.name = "prop";
  config.policy =
      ResourceManagementPolicy::htc(param.b, param.r, param.max_nodes);
  config.scheduler = &first_fit;
  HtcServer server(sim, provision, std::move(config));
  sim.schedule_at(0, [&] { server.start(); });
  JobEmulator emulator(sim);
  // A job wider than the subscription can never run (DR2 is clamped to the
  // cap); clamp widths so every job is feasible and conservation holds.
  const std::int64_t widest =
      param.max_nodes > 0 ? param.max_nodes : trace.capacity_nodes();
  emulator.emulate_trace(trace, [&](const workload::TraceJob& job) {
    server.submit(job.runtime, std::min(job.nodes, widest));
  });

  int violations = 0;
  for (SimTime t = 15 * kMinute; t <= horizon; t += 15 * kMinute) {
    sim.schedule_at(t, [&] {
      if (server.busy() > server.owned()) ++violations;
      if (server.owned() < param.b) ++violations;  // B never released
      if (param.max_nodes > 0 && server.owned() > param.max_nodes) ++violations;
      if (provision.allocated() != server.owned()) ++violations;
    });
  }
  sim.run_until(horizon);
  EXPECT_EQ(violations, 0);

  // Billing sanity: billed covers the exact integral, and at least B for
  // the whole run.
  EXPECT_GE(static_cast<double>(server.ledger().billed_node_hours(horizon)),
            server.ledger().exact_node_hours(horizon) - 1e-6);
  EXPECT_GE(server.ledger().billed_node_hours(horizon),
            param.b * (horizon / kHour));

  // Work conservation: everything submitted eventually runs (jobs fit the
  // subscription, the trace leaves a drain margin, and we allow spillover
  // past the horizon for jobs still running).
  EXPECT_EQ(server.submitted_jobs(),
            static_cast<std::int64_t>(trace.size()));
  sim.run_until(horizon + 2 * kDay);
  EXPECT_EQ(server.completed_jobs(), server.submitted_jobs());
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PolicyProperty,
    ::testing::Values(PolicyCase{4, 1.0, 48, 1}, PolicyCase{4, 2.0, 48, 2},
                      PolicyCase{12, 1.2, 48, 3}, PolicyCase{12, 1.5, 0, 4},
                      PolicyCase{24, 1.0, 0, 5}, PolicyCase{24, 1.8, 48, 6},
                      PolicyCase{48, 1.5, 48, 7}, PolicyCase{8, 1.2, 16, 8}));

class ContentionProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ContentionProperty, BoundedPlatformNeverOverAllocatesUnderAnyMode) {
  for (const auto mode : {ProvisionPolicy::ContentionMode::kReject,
                          ProvisionPolicy::ContentionMode::kQueueByPriority}) {
    const workload::Trace trace = small_trace(GetParam());
    sim::Simulator sim;
    ProvisionPolicy policy;
    policy.contention = mode;
    ResourceProvisionService provision(cluster::ResourcePool(30), policy);
    sched::FirstFitScheduler first_fit;
    HtcServer::Config config;
    config.name = "bounded";
    config.policy = ResourceManagementPolicy::htc(6, 1.2, 0);
    config.scheduler = &first_fit;
    HtcServer server(sim, provision, std::move(config));
    sim.schedule_at(0, [&] { server.start(); });
    JobEmulator emulator(sim);
    emulator.emulate_trace(trace, [&](const workload::TraceJob& job) {
      // Clamp widths to the platform bound so every job is feasible.
      server.submit(job.runtime, std::min<std::int64_t>(job.nodes, 30));
    });
    int violations = 0;
    for (SimTime t = kHour; t <= trace.period(); t += kHour) {
      sim.schedule_at(t, [&] {
        if (provision.allocated() > 30) ++violations;
        if (server.owned() > 30) ++violations;
      });
    }
    sim.run_until(trace.period());
    EXPECT_EQ(violations, 0) << "mode "
                             << (mode == ProvisionPolicy::ContentionMode::kReject
                                     ? "reject"
                                     : "queue");
    EXPECT_GT(server.completed_jobs(), 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ContentionProperty,
                         ::testing::Values(21u, 22u, 23u));

}  // namespace
}  // namespace dc::core
