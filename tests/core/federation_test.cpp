#include "core/federation.hpp"

#include <gtest/gtest.h>

#include "core/systems.hpp"
#include "workflow/montage.hpp"
#include "workload/models.hpp"

namespace dc::core {
namespace {

HtcWorkloadSpec fed_htc(const std::string& name, std::uint64_t seed) {
  workload::SyntheticTraceSpec trace_spec;
  trace_spec.name = name;
  trace_spec.capacity_nodes = 24;
  trace_spec.period = kDay;
  trace_spec.submit_margin = 2 * kHour;
  trace_spec.jobs_per_day = 100;
  trace_spec.width_weights = {{1, 0.5}, {2, 0.3}, {4, 0.15}, {24, 0.05}};
  trace_spec.hyper_mean1 = 500;
  trace_spec.hyper_mean2 = 2000;

  HtcWorkloadSpec spec;
  spec.name = name;
  spec.trace = workload::generate_trace(trace_spec, seed);
  spec.fixed_nodes = 24;
  spec.policy = ResourceManagementPolicy::htc(6, 1.5, 24);
  return spec;
}

MtcWorkloadSpec fed_mtc(const std::string& name) {
  workflow::MontageParams params;
  params.inputs = 12;  // 76 tasks
  MtcWorkloadSpec spec;
  spec.name = name;
  spec.dag = workflow::make_montage(params, 9);
  spec.submit_time = 4 * kHour;
  spec.fixed_nodes = 12;
  spec.policy = ResourceManagementPolicy::mtc(3, 8.0, 12);
  return spec;
}

ConsolidationWorkload fed_workload() {
  ConsolidationWorkload workload;
  workload.htc.push_back(fed_htc("h0", 1));
  workload.htc.push_back(fed_htc("h1", 2));
  workload.mtc.push_back(fed_mtc("m0"));
  return workload;
}

TEST(Federation, PlacesEveryTreWhenCapacitySuffices) {
  const std::vector<ResourceProviderSpec> providers = {
      {"A", 40, 0.10}, {"B", 40, 0.12}};
  const auto result = run_federated_dsp(providers, fed_workload(),
                                        PlacementPolicy::kFirstFit);
  EXPECT_EQ(result.unplaced, 0);
  EXPECT_EQ(result.placements.size(), 3u);
  EXPECT_EQ(result.service_providers.size(), 3u);
  for (const auto& provider : result.service_providers) {
    EXPECT_GT(provider.completed_jobs, 0) << provider.provider;
  }
}

TEST(Federation, FirstFitFillsInOrder) {
  // Subscriptions: 24 + 24 + 12. First-fit on a 50-capacity first host
  // packs h0 and h1 (48), then m0 goes to the second host.
  const std::vector<ResourceProviderSpec> providers = {
      {"A", 50, 0.10}, {"B", 50, 0.10}};
  const auto result = run_federated_dsp(providers, fed_workload(),
                                        PlacementPolicy::kFirstFit);
  EXPECT_EQ(result.placements[0].resource_provider, "A");
  EXPECT_EQ(result.placements[1].resource_provider, "A");
  EXPECT_EQ(result.placements[2].resource_provider, "B");
  EXPECT_EQ(result.resource_provider("A").hosted_tres, 2);
  EXPECT_EQ(result.resource_provider("B").hosted_tres, 1);
}

TEST(Federation, LeastLoadedBalances) {
  const std::vector<ResourceProviderSpec> providers = {
      {"A", 50, 0.10}, {"B", 50, 0.10}};
  const auto result = run_federated_dsp(providers, fed_workload(),
                                        PlacementPolicy::kLeastLoaded);
  // h0 -> A (both empty), h1 -> B (A at 24/50), m0 -> whichever is lighter
  // after adding 12: A (24+12=36) vs B (24+12=36) tie -> A kept? Least
  // loaded picks strictly lower load, so the first candidate (A) stays.
  EXPECT_EQ(result.placements[0].resource_provider, "A");
  EXPECT_EQ(result.placements[1].resource_provider, "B");
  EXPECT_EQ(result.resource_provider("A").hosted_tres +
                result.resource_provider("B").hosted_tres,
            3);
  EXPECT_LE(result.resource_provider("A").committed_subscription, 36);
  EXPECT_LE(result.resource_provider("B").committed_subscription, 36);
}

TEST(Federation, CheapestPrefersLowPrice) {
  const std::vector<ResourceProviderSpec> providers = {
      {"pricey", 200, 0.50}, {"budget", 200, 0.08}};
  const auto result = run_federated_dsp(providers, fed_workload(),
                                        PlacementPolicy::kCheapest);
  for (const auto& placement : result.placements) {
    EXPECT_EQ(placement.resource_provider, "budget");
  }
  EXPECT_EQ(result.resource_provider("pricey").billed_node_hours, 0);
  EXPECT_GT(result.resource_provider("budget").revenue_usd, 0.0);
}

TEST(Federation, OverflowsToNextProviderAndReportsUnplaced) {
  const std::vector<ResourceProviderSpec> providers = {{"only", 30, 0.10}};
  const auto result = run_federated_dsp(providers, fed_workload(),
                                        PlacementPolicy::kFirstFit);
  // Only one 24-subscription TRE fits; the second HTC (24) doesn't; the
  // MTC (12) doesn't fit either once 24 are committed... capacity 30:
  // h0 (24) admitted, h1 (24) rejected, m0 (12) rejected (24+12 > 30).
  EXPECT_EQ(result.unplaced, 2);
  EXPECT_EQ(result.service_providers.size(), 1u);
  EXPECT_EQ(result.placements[1].resource_provider, "");
}

TEST(Federation, RevenueEqualsBilledTimesPrice) {
  const std::vector<ResourceProviderSpec> providers = {{"A", 100, 0.25}};
  const auto result = run_federated_dsp(providers, fed_workload(),
                                        PlacementPolicy::kFirstFit);
  const auto& host = result.resource_provider("A");
  EXPECT_DOUBLE_EQ(host.revenue_usd,
                   0.25 * static_cast<double>(host.billed_node_hours));
  EXPECT_DOUBLE_EQ(result.total_cost_usd, host.revenue_usd);
}

TEST(Federation, SingleProviderMatchesPlainDawningCloudRun) {
  // With one resource provider big enough for everything, the federation
  // degenerates to the plain DawningCloud system.
  const auto workload = fed_workload();
  const std::vector<ResourceProviderSpec> providers = {{"big", 1000, 0.10}};
  const auto federated =
      run_federated_dsp(providers, workload, PlacementPolicy::kFirstFit);
  const auto plain = run_system(SystemModel::kDawningCloud, workload);
  ASSERT_EQ(federated.service_providers.size(), plain.providers.size());
  EXPECT_EQ(federated.total_consumption_node_hours,
            plain.total_consumption_node_hours);
  for (std::size_t i = 0; i < plain.providers.size(); ++i) {
    EXPECT_EQ(federated.service_providers[i].completed_jobs,
              plain.providers[i].completed_jobs);
    EXPECT_EQ(federated.service_providers[i].consumption_node_hours,
              plain.providers[i].consumption_node_hours);
  }
}

TEST(Federation, PeakRespectsEachHostCapacity) {
  const std::vector<ResourceProviderSpec> providers = {
      {"A", 40, 0.10}, {"B", 30, 0.10}};
  const auto result = run_federated_dsp(providers, fed_workload(),
                                        PlacementPolicy::kLeastLoaded);
  for (const auto& host : result.resource_providers) {
    EXPECT_LE(host.peak_nodes, host.capacity) << host.name;
  }
}

TEST(Federation, ReportFormats) {
  const std::vector<ResourceProviderSpec> providers = {{"A", 100, 0.10}};
  const auto result = run_federated_dsp(providers, fed_workload(),
                                        PlacementPolicy::kFirstFit);
  const std::string report = format_federation_report(result);
  EXPECT_NE(report.find("Federated resource providers"), std::string::npos);
  EXPECT_NE(report.find("A"), std::string::npos);
  EXPECT_NE(report.find("unplaced"), std::string::npos);
}

TEST(Federation, PlacementPolicyNames) {
  EXPECT_STREQ(placement_policy_name(PlacementPolicy::kFirstFit), "first-fit");
  EXPECT_STREQ(placement_policy_name(PlacementPolicy::kLeastLoaded),
               "least-loaded");
  EXPECT_STREQ(placement_policy_name(PlacementPolicy::kCheapest), "cheapest");
}

}  // namespace
}  // namespace dc::core
