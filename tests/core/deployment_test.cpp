#include "core/deployment.hpp"

#include <gtest/gtest.h>

#include "core/lifecycle.hpp"
#include "sim/simulator.hpp"

namespace dc::core {
namespace {

TEST(DeploymentService, SmallTreIsNodeBandwidthBound) {
  DeploymentService service;  // 1000 Mbps repo, 100 Mbps per node
  const PackageSpec package{"tre", 100.0};  // 100 MB = 800 Mbit
  // 5 nodes: repo share 200 > node cap 100 -> 8 s per node.
  EXPECT_EQ(service.deploy_latency(package, 5), 8);
  // 1 node: same.
  EXPECT_EQ(service.deploy_latency(package, 1), 8);
}

TEST(DeploymentService, WideTreIsRepositoryBound) {
  DeploymentService service;
  const PackageSpec package{"tre", 100.0};
  // 100 nodes: repo share 10 Mbps -> 80 s.
  EXPECT_EQ(service.deploy_latency(package, 100), 80);
  // 200 nodes: 5 Mbps -> 160 s; latency grows linearly past the knee.
  EXPECT_EQ(service.deploy_latency(package, 200), 160);
}

TEST(DeploymentService, ZeroNodesIsFree) {
  DeploymentService service;
  EXPECT_EQ(service.deploy_latency(PackageSpec{}, 0), 0);
}

TEST(DeploymentService, LatencyScalesWithPackageSize) {
  DeploymentService service;
  const PackageSpec small{"s", 50.0};
  const PackageSpec big{"b", 500.0};
  EXPECT_LT(service.deploy_latency(small, 10), service.deploy_latency(big, 10));
}

TEST(LifecycleWithDeployment, DeployTimeDependsOnRequestedSize) {
  sim::Simulator sim;
  LifecycleService lifecycle(sim, LifecycleService::DeploymentModel{});

  SimTime small_running = kNever, big_running = kNever;
  auto small = lifecycle.create_tre(
      TreSpec{"small", WorkloadType::kHtc, 10, "linux"},
      [&](SimTime at) { small_running = at; });
  auto big = lifecycle.create_tre(
      TreSpec{"big", WorkloadType::kHtc, 166, "linux"},
      [&](SimTime at) { big_running = at; });
  ASSERT_TRUE(small.is_ok() && big.is_ok());
  sim.run();
  EXPECT_NE(small_running, kNever);
  EXPECT_NE(big_running, kNever);
  EXPECT_LT(small_running, big_running)
      << "a 166-node TRE saturates the repository and deploys slower";
}

TEST(LifecycleWithDeployment, MtcPackageIsHeavier) {
  sim::Simulator sim;
  LifecycleService lifecycle(sim, LifecycleService::DeploymentModel{});
  SimTime htc_running = kNever, mtc_running = kNever;
  auto htc = lifecycle.create_tre(TreSpec{"h", WorkloadType::kHtc, 20, "linux"},
                                  [&](SimTime at) { htc_running = at; });
  auto mtc = lifecycle.create_tre(TreSpec{"m", WorkloadType::kMtc, 20, "linux"},
                                  [&](SimTime at) { mtc_running = at; });
  ASSERT_TRUE(htc.is_ok() && mtc.is_ok());
  sim.run();
  EXPECT_LT(htc_running, mtc_running)
      << "the MTC TRE ships the workflow portal and trigger monitor";
}

TEST(LifecycleWithDeployment, TimelineMatchesModel) {
  sim::Simulator sim;
  LifecycleService::DeploymentModel model;
  LifecycleService lifecycle(sim, model);
  const TreSpec spec{"p", WorkloadType::kHtc, 40, "linux"};
  auto id = lifecycle.create_tre(spec, nullptr);
  ASSERT_TRUE(id.is_ok());
  sim.run();
  const auto& transitions = lifecycle.transitions();
  ASSERT_EQ(transitions.size(), 3u);
  EXPECT_EQ(transitions[0].time, model.validate);
  const SimDuration deploy =
      model.service.deploy_latency(model.htc_package, 40);
  EXPECT_EQ(transitions[1].time, model.validate + deploy);
  EXPECT_EQ(transitions[2].time,
            model.validate + deploy + model.service.start_latency());
}

}  // namespace
}  // namespace dc::core
