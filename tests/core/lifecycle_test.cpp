#include "core/lifecycle.hpp"

#include <gtest/gtest.h>

namespace dc::core {
namespace {

TEST(Lifecycle, ZeroLatencyTreReachesRunningImmediately) {
  sim::Simulator sim;
  LifecycleService lifecycle(sim);
  SimTime running_at = kNever;
  auto id = lifecycle.create_tre(
      TreSpec{"prov", WorkloadType::kHtc, 10, "linux"},
      [&](SimTime at) { running_at = at; });
  ASSERT_TRUE(id.is_ok());
  EXPECT_EQ(lifecycle.state(*id), TreState::kInexistent);
  sim.run();
  EXPECT_EQ(lifecycle.state(*id), TreState::kRunning);
  EXPECT_EQ(running_at, 0);
}

TEST(Lifecycle, LatenciesDriveTheStateMachineTimeline) {
  sim::Simulator sim;
  LifecycleService lifecycle(sim, {.validate = 5, .deploy = 60, .start = 10});
  SimTime running_at = kNever;
  auto id = lifecycle.create_tre(TreSpec{"prov", WorkloadType::kMtc, 4, "linux"},
                                 [&](SimTime at) { running_at = at; });
  ASSERT_TRUE(id.is_ok());

  sim.run_until(4);
  EXPECT_EQ(lifecycle.state(*id), TreState::kInexistent);
  sim.run_until(5);
  EXPECT_EQ(lifecycle.state(*id), TreState::kPlanning);
  sim.run_until(65);
  EXPECT_EQ(lifecycle.state(*id), TreState::kCreated);
  sim.run_until(75);
  EXPECT_EQ(lifecycle.state(*id), TreState::kRunning);
  EXPECT_EQ(running_at, 75);

  // Audit trail: Planning -> Created -> Running at the right times.
  ASSERT_EQ(lifecycle.transitions().size(), 3u);
  EXPECT_EQ(lifecycle.transitions()[0].state, TreState::kPlanning);
  EXPECT_EQ(lifecycle.transitions()[0].time, 5);
  EXPECT_EQ(lifecycle.transitions()[1].state, TreState::kCreated);
  EXPECT_EQ(lifecycle.transitions()[1].time, 65);
  EXPECT_EQ(lifecycle.transitions()[2].state, TreState::kRunning);
  EXPECT_EQ(lifecycle.transitions()[2].time, 75);
}

TEST(Lifecycle, RejectsInvalidSpecs) {
  sim::Simulator sim;
  LifecycleService lifecycle(sim);
  EXPECT_FALSE(lifecycle.create_tre(TreSpec{"", WorkloadType::kHtc, 1, "l"},
                                    nullptr)
                   .is_ok());
  EXPECT_FALSE(lifecycle.create_tre(TreSpec{"p", WorkloadType::kHtc, -1, "l"},
                                    nullptr)
                   .is_ok());
}

TEST(Lifecycle, DestroyRequiresRunningState) {
  sim::Simulator sim;
  LifecycleService lifecycle(sim);
  auto id = lifecycle.create_tre(TreSpec{"p", WorkloadType::kHtc, 1, "l"},
                                 nullptr);
  ASSERT_TRUE(id.is_ok());
  // Not yet running.
  EXPECT_FALSE(lifecycle.destroy_tre(*id, nullptr).is_ok());
  sim.run();
  SimTime destroyed_at = kNever;
  EXPECT_TRUE(
      lifecycle.destroy_tre(*id, [&](SimTime at) { destroyed_at = at; }).is_ok());
  EXPECT_EQ(lifecycle.state(*id), TreState::kDestroyed);
  EXPECT_EQ(destroyed_at, 0);
  // Double destroy fails.
  EXPECT_FALSE(lifecycle.destroy_tre(*id, nullptr).is_ok());
}

TEST(Lifecycle, DestroyUnknownTreIsNotFound) {
  sim::Simulator sim;
  LifecycleService lifecycle(sim);
  EXPECT_EQ(lifecycle.destroy_tre(99, nullptr).code(), StatusCode::kNotFound);
}

TEST(Lifecycle, StateAndTypeNames) {
  EXPECT_STREQ(tre_state_name(TreState::kInexistent), "inexistent");
  EXPECT_STREQ(tre_state_name(TreState::kPlanning), "planning");
  EXPECT_STREQ(tre_state_name(TreState::kCreated), "created");
  EXPECT_STREQ(tre_state_name(TreState::kRunning), "running");
  EXPECT_STREQ(tre_state_name(TreState::kDestroyed), "destroyed");
  EXPECT_STREQ(workload_type_name(WorkloadType::kHtc), "HTC");
  EXPECT_STREQ(workload_type_name(WorkloadType::kMtc), "MTC");
}

TEST(Lifecycle, MultipleTresTrackedIndependently) {
  sim::Simulator sim;
  LifecycleService lifecycle(sim, {.validate = 0, .deploy = 10, .start = 0});
  auto a = lifecycle.create_tre(TreSpec{"a", WorkloadType::kHtc, 1, "l"}, nullptr);
  sim.run_until(5);
  auto b = lifecycle.create_tre(TreSpec{"b", WorkloadType::kMtc, 1, "l"}, nullptr);
  ASSERT_TRUE(a.is_ok() && b.is_ok());
  sim.run_until(10);
  EXPECT_EQ(lifecycle.state(*a), TreState::kRunning);
  EXPECT_EQ(lifecycle.state(*b), TreState::kPlanning);
  sim.run_until(15);
  EXPECT_EQ(lifecycle.state(*b), TreState::kRunning);
  EXPECT_EQ(lifecycle.tre_count(), 2u);
}

}  // namespace
}  // namespace dc::core
