#include "core/drp_runner.hpp"

#include <gtest/gtest.h>

#include "sim/simulator.hpp"
#include "workflow/montage.hpp"

namespace dc::core {
namespace {

class DrpRunnerTest : public ::testing::Test {
 protected:
  sim::Simulator sim_;
  ResourceProvisionService provision_{cluster::ResourcePool::unbounded()};
};

TEST_F(DrpRunnerTest, JobBilledPerHourCeiling) {
  DrpRunner runner(sim_, provision_, "org");
  sim_.schedule_at(0, [&] { runner.submit_job(90 * kMinute, 10); });
  sim_.run();
  // 1.5h on 10 nodes -> 20 billed node*hours, 15 exact.
  EXPECT_EQ(runner.ledger().billed_node_hours(kDay), 20);
  EXPECT_DOUBLE_EQ(runner.ledger().exact_node_hours(kDay), 15.0);
  EXPECT_EQ(runner.completed_jobs(), 1);
}

TEST_F(DrpRunnerTest, JobsRunImmediatelyWithoutQueueing) {
  DrpRunner runner(sim_, provision_, "org");
  sim_.schedule_at(0, [&] {
    for (int i = 0; i < 100; ++i) runner.submit_job(600, 8);
  });
  sim_.run();
  // All run concurrently: platform peak = 800.
  EXPECT_EQ(runner.held_usage().peak(), 800);
  EXPECT_EQ(runner.completed_jobs(), 100);
  EXPECT_EQ(runner.last_finish(), 600) << "no queueing delays";
}

TEST_F(DrpRunnerTest, AdjustmentsCountedPerJob) {
  DrpRunner runner(sim_, provision_, "org");
  sim_.schedule_at(0, [&] { runner.submit_job(60, 5); });
  sim_.run();
  // 5 nodes leased + 5 reclaimed.
  EXPECT_EQ(provision_.adjustments().total_adjusted_nodes(), 10);
}

TEST_F(DrpRunnerTest, WorkflowUsesVmPoolWithReuse) {
  // Chain: each task reuses the same VM, so the pool stays at one node and
  // is billed for ceil(total time) hours, not per task.
  workflow::Dag dag;
  dag.add_task("a", 600);
  dag.add_task("b", 600);
  dag.add_task("c", 600);
  dag.add_dependency(0, 1);
  dag.add_dependency(1, 2);

  DrpRunner runner(sim_, provision_, "org");
  sim_.schedule_at(0, [&] { runner.submit_workflow(dag); });
  sim_.run();
  EXPECT_EQ(runner.peak_pool_size(), 1);
  EXPECT_EQ(runner.ledger().billed_node_hours(kDay), 1) << "1800s -> 1 hour";
  EXPECT_EQ(runner.completed_jobs(), 3);
  EXPECT_EQ(runner.makespan(kDay), 1800);
}

TEST_F(DrpRunnerTest, WorkflowPoolGrowsToConcurrency) {
  // Fork: 1 root then 10 parallel children -> pool grows to 10.
  workflow::Dag dag;
  const auto root = dag.add_task("root", 100);
  for (int i = 0; i < 10; ++i) {
    dag.add_dependency(root, dag.add_task("child", 100));
  }
  DrpRunner runner(sim_, provision_, "org");
  sim_.schedule_at(0, [&] { runner.submit_workflow(dag); });
  sim_.run();
  EXPECT_EQ(runner.peak_pool_size(), 10);
  EXPECT_EQ(runner.ledger().billed_node_hours(kDay), 10);
}

TEST_F(DrpRunnerTest, MontageMakespanEqualsCriticalPath) {
  const workflow::Dag dag = workflow::make_paper_montage();
  DrpRunner runner(sim_, provision_, "org");
  sim_.schedule_at(0, [&] { runner.submit_workflow(dag); });
  sim_.run();
  EXPECT_EQ(runner.makespan(kDay), dag.critical_path())
      << "with unlimited immediate resources DRP achieves the critical path";
  EXPECT_EQ(runner.completed_jobs(), 1000);
  // The paper's Table 4: the diff level's concurrency dominates the pool.
  EXPECT_GT(runner.peak_pool_size(), 500);
  EXPECT_LE(runner.peak_pool_size(), 662);
  EXPECT_EQ(runner.ledger().billed_node_hours(kDay), runner.peak_pool_size())
      << "every VM lives under one hour -> billed == pool size";
}

TEST_F(DrpRunnerTest, AllVmsReturnedAtCampaignEnd) {
  DrpRunner runner(sim_, provision_, "org");
  sim_.schedule_at(0, [&] {
    runner.submit_workflow(workflow::make_paper_montage());
  });
  sim_.run();
  EXPECT_EQ(provision_.allocated(), 0);
  EXPECT_EQ(runner.held_usage().current(), 0);
}

TEST_F(DrpRunnerTest, TasksPerSecond) {
  const workflow::Dag dag = workflow::make_paper_montage();
  DrpRunner runner(sim_, provision_, "org");
  sim_.schedule_at(0, [&] { runner.submit_workflow(dag); });
  sim_.run();
  EXPECT_NEAR(runner.tasks_per_second(kDay),
              1000.0 / static_cast<double>(dag.critical_path()), 1e-9);
}

}  // namespace
}  // namespace dc::core
