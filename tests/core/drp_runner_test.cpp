#include "core/drp_runner.hpp"

#include <gtest/gtest.h>

#include "sim/simulator.hpp"
#include "workflow/montage.hpp"

namespace dc::core {
namespace {

class DrpRunnerTest : public ::testing::Test {
 protected:
  sim::Simulator sim_;
  ResourceProvisionService provision_{cluster::ResourcePool::unbounded()};
};

TEST_F(DrpRunnerTest, JobBilledPerHourCeiling) {
  DrpRunner runner(sim_, provision_, "org");
  sim_.schedule_at(0, [&] { runner.submit_job(90 * kMinute, 10); });
  sim_.run();
  // 1.5h on 10 nodes -> 20 billed node*hours, 15 exact.
  EXPECT_EQ(runner.ledger().billed_node_hours(kDay), 20);
  EXPECT_DOUBLE_EQ(runner.ledger().exact_node_hours(kDay), 15.0);
  EXPECT_EQ(runner.completed_jobs(), 1);
}

TEST_F(DrpRunnerTest, JobsRunImmediatelyWithoutQueueing) {
  DrpRunner runner(sim_, provision_, "org");
  sim_.schedule_at(0, [&] {
    for (int i = 0; i < 100; ++i) runner.submit_job(600, 8);
  });
  sim_.run();
  // All run concurrently: platform peak = 800.
  EXPECT_EQ(runner.held_usage().peak(), 800);
  EXPECT_EQ(runner.completed_jobs(), 100);
  EXPECT_EQ(runner.last_finish(), 600) << "no queueing delays";
}

TEST_F(DrpRunnerTest, AdjustmentsCountedPerJob) {
  DrpRunner runner(sim_, provision_, "org");
  sim_.schedule_at(0, [&] { runner.submit_job(60, 5); });
  sim_.run();
  // 5 nodes leased + 5 reclaimed.
  EXPECT_EQ(provision_.adjustments().total_adjusted_nodes(), 10);
}

TEST_F(DrpRunnerTest, WorkflowUsesVmPoolWithReuse) {
  // Chain: each task reuses the same VM, so the pool stays at one node and
  // is billed for ceil(total time) hours, not per task.
  workflow::Dag dag;
  dag.add_task("a", 600);
  dag.add_task("b", 600);
  dag.add_task("c", 600);
  dag.add_dependency(0, 1);
  dag.add_dependency(1, 2);

  DrpRunner runner(sim_, provision_, "org");
  sim_.schedule_at(0, [&] { runner.submit_workflow(dag); });
  sim_.run();
  EXPECT_EQ(runner.peak_pool_size(), 1);
  EXPECT_EQ(runner.ledger().billed_node_hours(kDay), 1) << "1800s -> 1 hour";
  EXPECT_EQ(runner.completed_jobs(), 3);
  EXPECT_EQ(runner.makespan(kDay), 1800);
}

TEST_F(DrpRunnerTest, WorkflowPoolGrowsToConcurrency) {
  // Fork: 1 root then 10 parallel children -> pool grows to 10.
  workflow::Dag dag;
  const auto root = dag.add_task("root", 100);
  for (int i = 0; i < 10; ++i) {
    dag.add_dependency(root, dag.add_task("child", 100));
  }
  DrpRunner runner(sim_, provision_, "org");
  sim_.schedule_at(0, [&] { runner.submit_workflow(dag); });
  sim_.run();
  EXPECT_EQ(runner.peak_pool_size(), 10);
  EXPECT_EQ(runner.ledger().billed_node_hours(kDay), 10);
}

TEST_F(DrpRunnerTest, MontageMakespanEqualsCriticalPath) {
  const workflow::Dag dag = workflow::make_paper_montage();
  DrpRunner runner(sim_, provision_, "org");
  sim_.schedule_at(0, [&] { runner.submit_workflow(dag); });
  sim_.run();
  EXPECT_EQ(runner.makespan(kDay), dag.critical_path())
      << "with unlimited immediate resources DRP achieves the critical path";
  EXPECT_EQ(runner.completed_jobs(), 1000);
  // The paper's Table 4: the diff level's concurrency dominates the pool.
  EXPECT_GT(runner.peak_pool_size(), 500);
  EXPECT_LE(runner.peak_pool_size(), 662);
  EXPECT_EQ(runner.ledger().billed_node_hours(kDay), runner.peak_pool_size())
      << "every VM lives under one hour -> billed == pool size";
}

TEST_F(DrpRunnerTest, AllVmsReturnedAtCampaignEnd) {
  DrpRunner runner(sim_, provision_, "org");
  sim_.schedule_at(0, [&] {
    runner.submit_workflow(workflow::make_paper_montage());
  });
  sim_.run();
  EXPECT_EQ(provision_.allocated(), 0);
  EXPECT_EQ(runner.held_usage().current(), 0);
}

TEST_F(DrpRunnerTest, TasksPerSecond) {
  const workflow::Dag dag = workflow::make_paper_montage();
  DrpRunner runner(sim_, provision_, "org");
  sim_.schedule_at(0, [&] { runner.submit_workflow(dag); });
  sim_.run();
  EXPECT_NEAR(runner.tasks_per_second(kDay),
              1000.0 / static_cast<double>(dag.critical_path()), 1e-9);
}

TEST_F(DrpRunnerTest, FailureAmendsLeaseAndRetries) {
  DrpRunner runner(sim_, provision_, "org");
  sim_.schedule_at(0, [&] { runner.submit_job(90 * kMinute, 4); });
  sim_.schedule_at(30 * kMinute, [&] {
    EXPECT_EQ(runner.fail_nodes(4), 1)
        << "all four VMs die, killing the one job";
  });
  sim_.run();
  // The original lease was pre-closed at the planned end (90 min); the
  // failure amends it down to 30 min (1 billed hour), and the immediate
  // retry leases 4 fresh VMs for the full 90 min (2 billed hours).
  EXPECT_EQ(runner.jobs_killed(), 1);
  EXPECT_EQ(runner.completed_jobs(), 1);
  EXPECT_EQ(runner.last_finish(), 2 * kHour);
  EXPECT_EQ(runner.ledger().billed_node_hours(kDay), 4 * 1 + 4 * 2);
  EXPECT_NEAR(runner.wasted_node_hours(), 2.0, 1e-9) << "30 min x 4 nodes";
  EXPECT_EQ(provision_.allocated(), 0);
  EXPECT_EQ(runner.held_usage().current(), 0);
}

TEST_F(DrpRunnerTest, RetryBudgetExhaustionFailsTheJob) {
  DrpRunner runner(sim_, provision_, "org");
  fault::FaultRecoveryPolicy recovery;
  recovery.max_retries = 0;
  runner.set_recovery(recovery);
  sim_.schedule_at(0, [&] { runner.submit_job(kHour, 2); });
  sim_.schedule_at(10 * kMinute, [&] { runner.fail_nodes(2); });
  sim_.run();
  EXPECT_EQ(runner.jobs_killed(), 1);
  EXPECT_EQ(runner.jobs_failed(), 1);
  EXPECT_EQ(runner.completed_jobs(), 0);
  EXPECT_EQ(provision_.allocated(), 0) << "the failed job's VMs are returned";
}

TEST_F(DrpRunnerTest, WorkflowTaskRetryCompletesTheDag) {
  workflow::Dag dag;
  dag.add_task("a", 600);
  dag.add_task("b", 600);
  dag.add_task("c", 600);
  dag.add_dependency(0, 1);
  dag.add_dependency(1, 2);
  DrpRunner runner(sim_, provision_, "org");
  sim_.schedule_at(0, [&] { runner.submit_workflow(dag); });
  // Kill task b's VM 300 s into its run; the replacement VM re-runs it from
  // scratch and the tail of the chain shifts by the lost progress.
  sim_.schedule_at(900, [&] { EXPECT_EQ(runner.fail_nodes(1), 1); });
  sim_.run();
  EXPECT_EQ(runner.jobs_killed(), 1);
  EXPECT_EQ(runner.completed_jobs(), 3);
  EXPECT_EQ(runner.makespan(kDay), 1800 + 300);
  EXPECT_EQ(provision_.allocated(), 0);
  EXPECT_EQ(runner.held_usage().current(), 0) << "pool accounting survives";
}

}  // namespace
}  // namespace dc::core
