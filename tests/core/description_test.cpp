#include "core/description.hpp"

#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "workflow/montage.hpp"
#include "workflow/wff.hpp"
#include "workload/models.hpp"
#include "workload/swf.hpp"

namespace dc::core {
namespace {

constexpr const char* kTwoProviders = R"(# paper-style experiment
provider NASA
  workload        htc
  initial-nodes   40
  threshold-ratio 1.2
  subscription    128
  fixed-nodes     128
  trace           synthetic:nasa
  seed            42
end

provider Montage
  workload        mtc
  initial-nodes   10
  threshold-ratio 8
  fixed-nodes     166
  submit-time     206h
  workflow        montage:166
  seed            7
end
)";

TEST(Description, ParsesProvidersWithPolicies) {
  auto workload = parse_experiment_description_string(kTwoProviders);
  ASSERT_TRUE(workload.is_ok()) << workload.status().to_string();
  ASSERT_EQ(workload->htc.size(), 1u);
  ASSERT_EQ(workload->mtc.size(), 1u);

  const HtcWorkloadSpec& nasa = workload->htc[0];
  EXPECT_EQ(nasa.name, "NASA");
  EXPECT_EQ(nasa.policy.initial_nodes, 40);
  EXPECT_DOUBLE_EQ(nasa.policy.threshold_ratio, 1.2);
  EXPECT_EQ(nasa.policy.max_nodes, 128);
  EXPECT_EQ(nasa.fixed_nodes, 128);
  EXPECT_EQ(nasa.trace.size(), workload::make_nasa_ipsc(42).size());

  const MtcWorkloadSpec& montage = workload->mtc[0];
  EXPECT_EQ(montage.submit_time, 206 * kHour);
  EXPECT_EQ(montage.dag.size(), 1000u);
  EXPECT_EQ(montage.fixed_nodes, 166);
  EXPECT_EQ(montage.policy.scan_interval, 3) << "MTC default scan interval";
}

TEST(Description, ParsedWorkloadRunsLikeTheProgrammaticOne) {
  auto workload = parse_experiment_description_string(kTwoProviders);
  ASSERT_TRUE(workload.is_ok());
  const auto result = run_system(SystemModel::kDcs, *workload);
  EXPECT_EQ(result.provider("NASA").consumption_node_hours, 128 * 336);
  EXPECT_EQ(result.provider("Montage").consumption_node_hours, 166);
}

TEST(Description, LoadsTraceAndWorkflowFromFiles) {
  const std::string dir = ::testing::TempDir();
  const std::string swf_path = dir + "/d.swf";
  const std::string wff_path = dir + "/d.wff";
  ASSERT_TRUE(workload::write_swf_file(
                  swf_path, workload::make_nasa_ipsc(5).to_swf())
                  .is_ok());
  workflow::MontageParams params;
  params.inputs = 10;
  ASSERT_TRUE(
      workflow::write_wff_file(wff_path, workflow::make_montage(params, 1))
          .is_ok());

  const std::string text = R"(
provider H
  workload htc
  trace swf:d.swf
end
provider M
  workload mtc
  workflow wff:d.wff
end
)";
  auto workload = parse_experiment_description_string(text, dir);
  ASSERT_TRUE(workload.is_ok()) << workload.status().to_string();
  EXPECT_EQ(workload->htc[0].trace.size(), workload::make_nasa_ipsc(5).size());
  EXPECT_EQ(workload->mtc[0].dag.size(), 64u);  // 6*10+4
  // fixed-nodes defaulted from the sources.
  EXPECT_EQ(workload->htc[0].fixed_nodes, 128);
  EXPECT_EQ(workload->mtc[0].fixed_nodes,
            static_cast<std::int64_t>(workload->mtc[0].dag.roots().size()));
  std::remove(swf_path.c_str());
  std::remove(wff_path.c_str());
}

TEST(Description, RejectsMalformedInput) {
  EXPECT_FALSE(parse_experiment_description_string("").is_ok());
  EXPECT_FALSE(parse_experiment_description_string("workload htc\n").is_ok())
      << "key outside stanza";
  EXPECT_FALSE(
      parse_experiment_description_string("provider A\nprovider B\n").is_ok())
      << "nested stanza";
  EXPECT_FALSE(parse_experiment_description_string("provider A\n").is_ok())
      << "unterminated stanza";
  EXPECT_FALSE(parse_experiment_description_string(
                   "provider A\n workload htc\n trace synthetic:nasa\n"
                   " bogus-key 3\nend\n")
                   .is_ok())
      << "unknown key";
  EXPECT_FALSE(parse_experiment_description_string(
                   "provider A\n workload quantum\n end\n")
                   .is_ok())
      << "unknown workload type";
  EXPECT_FALSE(parse_experiment_description_string(
                   "provider A\n workload htc\nend\n")
                   .is_ok())
      << "HTC without trace";
  EXPECT_FALSE(parse_experiment_description_string(
                   "provider A\n workload mtc\n workflow montage:1\nend\n")
                   .is_ok())
      << "montage needs >= 2 inputs";
}

TEST(Description, ErrorsCarryLineNumbers) {
  auto result = parse_experiment_description_string(
      "provider A\n workload htc\n trace synthetic:nasa\n nonsense 1\nend\n");
  ASSERT_FALSE(result.is_ok());
  EXPECT_NE(result.status().message().find("line 4"), std::string::npos);
}

TEST(ParseDuration, SuffixesAndPlainSeconds) {
  EXPECT_EQ(*parse_duration("90"), 90);
  EXPECT_EQ(*parse_duration("90s"), 90);
  EXPECT_EQ(*parse_duration("5m"), 300);
  EXPECT_EQ(*parse_duration("2h"), 7200);
  EXPECT_EQ(*parse_duration("1d"), kDay);
  EXPECT_FALSE(parse_duration("").is_ok());
  EXPECT_FALSE(parse_duration("abc").is_ok());
  EXPECT_FALSE(parse_duration("-5s").is_ok());
}

TEST(Description, DescribeRoundTripMentionsProviders) {
  auto workload = parse_experiment_description_string(kTwoProviders);
  ASSERT_TRUE(workload.is_ok());
  const std::string text = describe_experiment(*workload);
  EXPECT_NE(text.find("provider NASA"), std::string::npos);
  EXPECT_NE(text.find("provider Montage"), std::string::npos);
  EXPECT_NE(text.find("threshold-ratio 1.2"), std::string::npos);
  EXPECT_NE(text.find("submit-time 741600s"), std::string::npos);
}

TEST(Description, FuzzedGarbageNeverCrashes) {
  // Property: arbitrary byte soup either parses or returns an error — it
  // must never crash or hang. Mixes valid fragments with noise so some
  // inputs get deep into the parser.
  Rng rng(0xfadedULL);
  const std::vector<std::string> fragments = {
      "provider", "end", "workload", "htc", "mtc", "trace", "workflow",
      "synthetic:nasa", "montage:5", "initial-nodes", "threshold-ratio",
      "submit-time", "5h", "-3", "9999999999999999999999", "#", "\n", " ",
      "p", ":", "swf:/dev/null", "seed"};
  for (int round = 0; round < 300; ++round) {
    std::string input;
    const std::int64_t parts = rng.uniform_int(0, 40);
    for (std::int64_t i = 0; i < parts; ++i) {
      input += fragments[static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(fragments.size()) - 1))];
      input += rng.bernoulli(0.3) ? "\n" : " ";
    }
    auto result = parse_experiment_description_string(input);
    if (result.is_ok()) {
      EXPECT_FALSE(result->htc.empty() && result->mtc.empty());
    }
  }
}

TEST(Description, ReadFromFileResolvesRelativePaths) {
  const std::string dir = ::testing::TempDir();
  const std::string swf_path = dir + "/rel.swf";
  ASSERT_TRUE(workload::write_swf_file(
                  swf_path, workload::make_nasa_ipsc(5).to_swf())
                  .is_ok());
  const std::string cfg_path = dir + "/exp.dcfg";
  {
    std::ofstream out(cfg_path);
    out << "provider H\n workload htc\n trace swf:rel.swf\nend\n";
  }
  auto workload = read_experiment_description(cfg_path);
  ASSERT_TRUE(workload.is_ok()) << workload.status().to_string();
  EXPECT_FALSE(workload->htc.empty());
  std::remove(swf_path.c_str());
  std::remove(cfg_path.c_str());
  EXPECT_FALSE(read_experiment_description(cfg_path).is_ok());
}

}  // namespace
}  // namespace dc::core
