#include "core/failure_injector.hpp"

#include <gtest/gtest.h>

#include "core/mtc_server.hpp"
#include "sched/fcfs.hpp"
#include "sched/first_fit.hpp"
#include "workflow/montage.hpp"

namespace dc::core {
namespace {

class FailureTest : public ::testing::Test {
 protected:
  HtcServer& make_fixed(std::int64_t nodes) {
    HtcServer::Config config;
    config.name = "f";
    config.fixed_nodes = nodes;
    config.scheduler = &first_fit_;
    server_ = std::make_unique<HtcServer>(sim_, provision_, std::move(config));
    return *server_;
  }

  sim::Simulator sim_;
  ResourceProvisionService provision_{cluster::ResourcePool::unbounded()};
  sched::FirstFitScheduler first_fit_;
  std::unique_ptr<HtcServer> server_;
};

TEST_F(FailureTest, IdleNodesAbsorbFailuresWithoutKillingJobs) {
  HtcServer& server = make_fixed(10);
  sim_.schedule_at(0, [&] {
    server.start();
    server.submit(1000, 4);
  });
  sim_.schedule_at(10, [&] {
    EXPECT_EQ(server.fail_nodes(6), 0) << "6 idle nodes absorb the failure";
  });
  sim_.run();
  EXPECT_EQ(server.completed_jobs(), 1);
  EXPECT_EQ(server.job_retries(), 0);
  EXPECT_EQ(server.last_finish(), 1000) << "the job was never interrupted";
  EXPECT_EQ(server.owned(), 10) << "failed hardware replaced transparently";
}

TEST_F(FailureTest, FailureKillsAndRetriesTheYoungestJob) {
  HtcServer& server = make_fixed(10);
  sim_.schedule_at(0, [&] {
    server.start();
    server.submit(1000, 6);  // older job
  });
  sim_.schedule_at(100, [&] { server.submit(1000, 4); });  // younger job
  sim_.schedule_at(200, [&] {
    EXPECT_EQ(server.fail_nodes(2), 1) << "no idle: the younger job dies";
  });
  sim_.run();
  EXPECT_EQ(server.completed_jobs(), 2) << "the retry eventually completes";
  EXPECT_EQ(server.job_retries(), 1);
  // Older job untouched (finishes at 1000); retry restarted at 200 and ran
  // its full 1000 s again.
  EXPECT_EQ(server.jobs()[0].finish, 1000);
  EXPECT_EQ(server.jobs()[1].finish, 1200);
}

TEST_F(FailureTest, FailureBeyondHoldingIsClamped) {
  HtcServer& server = make_fixed(4);
  sim_.schedule_at(0, [&] { server.start(); });
  sim_.schedule_at(1, [&] { server.fail_nodes(100); });
  sim_.run();
  EXPECT_EQ(server.owned(), 4);
  EXPECT_EQ(provision_.allocated(), 4);
}

TEST_F(FailureTest, FailuresCountAsAdjustments) {
  HtcServer& server = make_fixed(8);
  sim_.schedule_at(0, [&] { server.start(); });
  sim_.schedule_at(1, [&] { server.fail_nodes(3); });
  sim_.run();
  // start grant (8) + swap reclaim (3) + swap re-grant (3).
  EXPECT_EQ(provision_.adjustments().total_adjusted_nodes(), 14);
}

TEST_F(FailureTest, MtcTaskRetryKeepsWorkflowConsistent) {
  sched::FcfsScheduler fcfs;
  MtcServer::MtcConfig config;
  config.name = "mtc";
  config.fixed_nodes = 166;
  config.scheduler = &fcfs;
  MtcServer server(sim_, provision_, std::move(config));
  sim_.schedule_at(0, [&] {
    server.start();
    server.submit_workflow(workflow::make_paper_montage());
  });
  // Kill nodes mid-flight, repeatedly.
  for (SimTime t = 20; t <= 200; t += 60) {
    sim_.schedule_at(t, [&] { server.fail_nodes(30); });
  }
  sim_.run_until(kDay);
  EXPECT_TRUE(server.all_workflows_complete())
      << "retries must not wedge the DAG";
  EXPECT_EQ(server.completed_tasks(), 1000);
  EXPECT_GT(server.job_retries(), 0);
}

TEST_F(FailureTest, InjectorDrivesWeightedFailures) {
  HtcServer& server = make_fixed(64);
  sim_.schedule_at(0, [&] {
    server.start();
    for (int i = 0; i < 50; ++i) server.submit(20 * kHour, 1);
  });
  FailureInjector::Config config;
  config.mean_time_between_failures = 2 * kHour;
  config.min_failed_nodes = 2;
  config.max_failed_nodes = 5;
  FailureInjector injector(sim_, config);
  injector.watch(&server);
  sim_.schedule_at(1, [&] { injector.start(24 * kHour); });
  sim_.run_until(48 * kHour);
  EXPECT_GT(injector.failure_events(), 3);
  EXPECT_GT(injector.nodes_failed(), 0);
  EXPECT_EQ(injector.jobs_killed(), server.job_retries());
  EXPECT_EQ(server.completed_jobs(), 50) << "all jobs finish despite failures";
}

TEST_F(FailureTest, FailNodesOnUnstartedServerIsNoop) {
  HtcServer& server = make_fixed(4);
  EXPECT_EQ(server.fail_nodes(2), 0);
}

}  // namespace
}  // namespace dc::core
