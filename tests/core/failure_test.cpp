#include "core/failure_injector.hpp"

#include <gtest/gtest.h>

#include "core/mtc_server.hpp"
#include "sched/fcfs.hpp"
#include "sched/first_fit.hpp"
#include "workflow/montage.hpp"

namespace dc::core {
namespace {

class FailureTest : public ::testing::Test {
 protected:
  HtcServer& make_fixed(std::int64_t nodes,
                        fault::FaultRecoveryPolicy recovery = {}) {
    HtcServer::Config config;
    config.name = "f";
    config.fixed_nodes = nodes;
    config.scheduler = &first_fit_;
    config.recovery = recovery;
    server_ = std::make_unique<HtcServer>(sim_, provision_, std::move(config));
    return *server_;
  }

  sim::Simulator sim_;
  ResourceProvisionService provision_{cluster::ResourcePool::unbounded()};
  sched::FirstFitScheduler first_fit_;
  std::unique_ptr<HtcServer> server_;
};

TEST_F(FailureTest, IdleNodesAbsorbFailuresWithoutKillingJobs) {
  HtcServer& server = make_fixed(10);
  sim_.schedule_at(0, [&] {
    server.start();
    server.submit(1000, 4);
  });
  sim_.schedule_at(10, [&] {
    EXPECT_EQ(server.fail_nodes(6), 0) << "6 idle nodes absorb the failure";
    EXPECT_EQ(server.down(), 6);
  });
  sim_.schedule_at(500, [&] { server.repair_nodes(6); });
  sim_.run();
  EXPECT_EQ(server.completed_jobs(), 1);
  EXPECT_EQ(server.job_retries(), 0);
  EXPECT_EQ(server.last_finish(), 1000) << "the job was never interrupted";
  EXPECT_EQ(server.owned(), 10) << "the holding never shrinks on failures";
  EXPECT_EQ(server.down(), 0);
}

TEST_F(FailureTest, FailureKillsAndRetriesTheYoungestJob) {
  HtcServer& server = make_fixed(10);
  sim_.schedule_at(0, [&] {
    server.start();
    server.submit(1000, 6);  // older job
  });
  sim_.schedule_at(100, [&] { server.submit(1000, 4); });  // younger job
  sim_.schedule_at(200, [&] {
    EXPECT_EQ(server.fail_nodes(2), 1) << "no idle: the younger job dies";
    EXPECT_EQ(server.down(), 2)
        << "capacity stays degraded until the repair lands";
  });
  sim_.schedule_at(300, [&] { server.repair_nodes(2); });
  sim_.run();
  EXPECT_EQ(server.completed_jobs(), 2) << "the retry eventually completes";
  EXPECT_EQ(server.job_retries(), 1);
  // Older job untouched (finishes at 1000). The killed job cannot restart
  // at 200 (only 8 healthy nodes, 6 busy): it redispatches when the repair
  // restores capacity at 300 and runs its full 1000 s again.
  EXPECT_EQ(server.jobs()[0].finish, 1000);
  EXPECT_EQ(server.jobs()[1].finish, 1300);
  // The re-run of 100 s of lost progress (dispatched at 100, killed at 200)
  // is charged as waste: 100 s * 4 nodes = 400 node*seconds.
  EXPECT_NEAR(server.wasted_node_hours(), 400.0 / 3600.0, 1e-9);
  EXPECT_NEAR(server.goodput_node_hours(kDay), (1000.0 * 6 + 1000.0 * 4) / 3600.0,
              1e-9);
  EXPECT_LT(server.availability(kDay), 1.0);
}

TEST_F(FailureTest, FailureBeyondHoldingIsClamped) {
  HtcServer& server = make_fixed(4);
  sim_.schedule_at(0, [&] { server.start(); });
  sim_.schedule_at(1, [&] {
    server.fail_nodes(100);
    EXPECT_EQ(server.down(), 4);
    EXPECT_EQ(server.healthy_nodes(), 0);
    server.fail_nodes(5);
    EXPECT_EQ(server.down(), 4) << "nothing healthy left to fail";
  });
  sim_.run();
  EXPECT_EQ(server.owned(), 4);
  EXPECT_EQ(provision_.allocated(), 4);
}

TEST_F(FailureTest, RepairMetersTheHardwareSwap) {
  HtcServer& server = make_fixed(8);
  sim_.schedule_at(0, [&] { server.start(); });
  sim_.schedule_at(1, [&] {
    server.fail_nodes(3);
    // The failure itself moves no hardware: only the startup grant (8) has
    // been metered so far.
    EXPECT_EQ(provision_.adjustments().total_adjusted_nodes(), 8);
  });
  sim_.schedule_at(100, [&] { server.repair_nodes(3); });
  sim_.run();
  // Repair swaps hardware in: reclaim (3) + re-grant (3) on top of the
  // startup grant.
  EXPECT_EQ(provision_.adjustments().total_adjusted_nodes(), 14);
  ASSERT_FALSE(provision_.adjustments().events().empty());
  EXPECT_EQ(provision_.adjustments().events().back().time, 100)
      << "the meter moves at the repair, not the failure";
}

TEST_F(FailureTest, RetryBudgetExhaustionFailsTheJob) {
  fault::FaultRecoveryPolicy recovery;
  recovery.max_retries = 1;
  HtcServer& server = make_fixed(4, recovery);
  sim_.schedule_at(0, [&] {
    server.start();
    server.submit(1000, 4);
  });
  // First kill: retry allowed. Second kill: budget exhausted.
  sim_.schedule_at(100, [&] {
    server.fail_nodes(4);
    server.repair_nodes(4);
  });
  sim_.schedule_at(200, [&] {
    server.fail_nodes(4);
    server.repair_nodes(4);
  });
  sim_.run();
  EXPECT_EQ(server.completed_jobs(), 0);
  EXPECT_EQ(server.jobs_failed(), 1);
  EXPECT_EQ(server.jobs()[0].state, sched::JobState::kFailed);
  EXPECT_EQ(std::string(sched::job_state_name(server.jobs()[0].state)),
            "failed");
  EXPECT_EQ(server.jobs()[0].finish, 200);
  EXPECT_TRUE(server.drained()) << "a failed job does not linger in the queue";
  // Everything the job ever ran (100 s + 100 s on 4 nodes) is waste.
  EXPECT_NEAR(server.wasted_node_hours(), 800.0 / 3600.0, 1e-9);
  EXPECT_DOUBLE_EQ(server.goodput_node_hours(kDay), 0.0);
}

TEST_F(FailureTest, RetryBackoffDelaysTheRequeue) {
  fault::FaultRecoveryPolicy recovery;
  recovery.retry_backoff = 500;
  HtcServer& server = make_fixed(4, recovery);
  sim_.schedule_at(0, [&] {
    server.start();
    server.submit(1000, 4);
  });
  sim_.schedule_at(100, [&] {
    server.fail_nodes(4);
    server.repair_nodes(4);
    EXPECT_EQ(server.jobs()[0].state, sched::JobState::kPending)
        << "the job waits out its backoff before re-queueing";
  });
  sim_.run();
  // Killed at 100, requeued at 600, runs 1000 s.
  EXPECT_EQ(server.jobs()[0].finish, 1600);
  EXPECT_EQ(server.completed_jobs(), 1);
}

TEST_F(FailureTest, ExponentialBackoffDoublesPerAttempt) {
  fault::FaultRecoveryPolicy recovery;
  recovery.retry_backoff = 100;
  recovery.max_backoff = 350;
  EXPECT_EQ(fault::retry_backoff_delay(recovery, 1), 100);
  EXPECT_EQ(fault::retry_backoff_delay(recovery, 2), 200);
  EXPECT_EQ(fault::retry_backoff_delay(recovery, 3), 350) << "clamped";
  EXPECT_EQ(fault::retry_backoff_delay(recovery, 10), 350);
  EXPECT_EQ(fault::retry_backoff_delay(fault::FaultRecoveryPolicy{}, 3), 0)
      << "no backoff configured = immediate requeue";
}

TEST_F(FailureTest, CheckpointsSalvageWholeIntervals) {
  fault::FaultRecoveryPolicy recovery;
  recovery.checkpoint_interval = 300;
  HtcServer& server = make_fixed(4, recovery);
  sim_.schedule_at(0, [&] {
    server.start();
    server.submit(1000, 4);
  });
  sim_.schedule_at(700, [&] {
    server.fail_nodes(4);
    server.repair_nodes(4);
  });
  sim_.run();
  // 700 s of progress: checkpoints at 300 and 600 salvage 600 s; only the
  // 100 s past the last checkpoint re-runs. Restart at 700 + 400 s left.
  EXPECT_EQ(server.jobs()[0].finish, 1100);
  EXPECT_EQ(server.completed_jobs(), 1);
  EXPECT_NEAR(server.wasted_node_hours(), 100.0 * 4 / 3600.0, 1e-9);
}

TEST_F(FailureTest, MtcTaskRetryKeepsWorkflowConsistent) {
  sched::FcfsScheduler fcfs;
  MtcServer::MtcConfig config;
  config.name = "mtc";
  config.fixed_nodes = 166;
  config.scheduler = &fcfs;
  MtcServer server(sim_, provision_, std::move(config));
  sim_.schedule_at(0, [&] {
    server.start();
    server.submit_workflow(workflow::make_paper_montage());
  });
  // Kill nodes mid-flight, repeatedly; each batch is repaired after 30 s,
  // so capacity dips and recovers while the DAG runs.
  for (SimTime t = 20; t <= 200; t += 60) {
    sim_.schedule_at(t, [&] { server.fail_nodes(30); });
    sim_.schedule_at(t + 30, [&] { server.repair_nodes(30); });
  }
  sim_.run_until(kDay);
  EXPECT_TRUE(server.all_workflows_complete())
      << "retries must not wedge the DAG";
  EXPECT_EQ(server.completed_tasks(), 1000);
  EXPECT_GT(server.job_retries(), 0);
}

TEST_F(FailureTest, InjectorDrivesWeightedFailures) {
  HtcServer& server = make_fixed(64);
  sim_.schedule_at(0, [&] {
    server.start();
    for (int i = 0; i < 50; ++i) server.submit(20 * kHour, 1);
  });
  FailureInjector::Config config;
  config.mean_time_between_failures = 2 * kHour;
  config.min_failed_nodes = 2;
  config.max_failed_nodes = 5;
  FailureInjector injector(sim_, config);
  injector.watch(&server);
  sim_.schedule_at(1, [&] { injector.start(24 * kHour); });
  sim_.run_until(48 * kHour);
  EXPECT_GT(injector.failure_events(), 3);
  EXPECT_GT(injector.nodes_failed(), 0);
  EXPECT_EQ(injector.jobs_killed(), server.job_retries());
  EXPECT_EQ(server.completed_jobs(), 50) << "all jobs finish despite failures";
  EXPECT_EQ(injector.nodes_repaired(), injector.nodes_failed())
      << "MTTR 0 repairs at the failure instant";
  EXPECT_EQ(server.down(), 0);
}

TEST_F(FailureTest, MttrDelaysRepairAndDegradesAvailability) {
  HtcServer& server = make_fixed(64);
  sim_.schedule_at(0, [&] { server.start(); });
  fault::FaultDomain::Config config;
  config.mean_time_between_failures = 2 * kHour;
  config.mean_time_to_repair = kHour;
  fault::FaultDomain domain(sim_, config);
  domain.watch(&server);
  sim_.schedule_at(1, [&] { domain.start(24 * kHour); });
  sim_.run_until(48 * kHour);
  EXPECT_GT(domain.failure_events(), 0);
  EXPECT_EQ(domain.nodes_repaired(), domain.nodes_failed())
      << "every batch is repaired once injection stops";
  EXPECT_EQ(domain.nodes_down(), 0);
  EXPECT_EQ(server.down(), 0);
  EXPECT_LT(server.availability(48 * kHour), 1.0)
      << "time spent down must show in the availability integral";
  EXPECT_GT(server.availability(48 * kHour), 0.5);
}

TEST_F(FailureTest, StartWithElapsedWindowIsNoop) {
  HtcServer& server = make_fixed(8);
  sim_.schedule_at(0, [&] { server.start(); });
  fault::FaultDomain::Config config;
  config.mean_time_between_failures = 10;  // would fire constantly
  fault::FaultDomain domain(sim_, config);
  domain.watch(&server);
  // The injection window [now, until] is already over at start time.
  sim_.schedule_at(kHour, [&] { domain.start(kHour); });
  sim_.schedule_at(2 * kHour, [&] { domain.start(kHour); });
  sim_.run_until(kDay);
  EXPECT_EQ(domain.failure_events(), 0)
      << "an elapsed window must not inject a stray event";
  EXPECT_EQ(server.down(), 0);
}

TEST_F(FailureTest, WatchAfterStartDoesNotChangeVictimSequence) {
  // Runs the same seeded injection twice; the second run adds a late
  // watch() after start(). The victim sequence (and thus every observable
  // on the original server) must be identical, and the late target must
  // never be picked.
  struct Outcome {
    std::int64_t events;
    std::int64_t nodes_failed;
    std::int64_t retries;
    std::int64_t late_down;
    std::int64_t late_retries;
  };
  auto run = [](bool late_watch) -> Outcome {
    sim::Simulator sim;
    ResourceProvisionService provision{cluster::ResourcePool::unbounded()};
    sched::FirstFitScheduler first_fit;
    HtcServer::Config config_a;
    config_a.name = "a";
    config_a.fixed_nodes = 32;
    config_a.scheduler = &first_fit;
    HtcServer a(sim, provision, std::move(config_a));
    HtcServer::Config config_b;
    config_b.name = "b";
    config_b.fixed_nodes = 32;
    config_b.scheduler = &first_fit;
    HtcServer b(sim, provision, std::move(config_b));
    sim.schedule_at(0, [&] {
      a.start();
      b.start();
      for (int i = 0; i < 20; ++i) a.submit(10 * kHour, 1);
      for (int i = 0; i < 20; ++i) b.submit(10 * kHour, 1);
    });
    fault::FaultDomain::Config config;
    config.mean_time_between_failures = kHour;
    fault::FaultDomain domain(sim, config);
    domain.watch(&a);
    sim.schedule_at(1, [&] { domain.start(24 * kHour); });
    if (late_watch) {
      sim.schedule_at(2, [&] { domain.watch(&b); });
    }
    sim.run_until(36 * kHour);
    return Outcome{domain.failure_events(), domain.nodes_failed(),
                   a.job_retries(), b.down(), b.job_retries()};
  };
  const Outcome baseline = run(false);
  const Outcome with_late_watch = run(true);
  EXPECT_GT(baseline.events, 0);
  EXPECT_EQ(with_late_watch.events, baseline.events);
  EXPECT_EQ(with_late_watch.nodes_failed, baseline.nodes_failed);
  EXPECT_EQ(with_late_watch.retries, baseline.retries)
      << "watch() after start() must not perturb the seeded sequence";
  EXPECT_EQ(with_late_watch.late_down, 0);
  EXPECT_EQ(with_late_watch.late_retries, 0)
      << "a target watched after start() never joins the active set";
}

TEST_F(FailureTest, GrantTimeoutReRequestsAStarvedWait) {
  // An elastic TRE queued behind a bigger holder under queue-by-priority
  // contention withdraws and re-issues its dynamic request once it starves
  // past the recovery policy's grant timeout — and still gets its nodes
  // when capacity frees up.
  ProvisionPolicy provider_policy;
  provider_policy.contention =
      ProvisionPolicy::ContentionMode::kQueueByPriority;
  ResourceProvisionService provision{cluster::ResourcePool(20),
                                     provider_policy};
  const auto hog = provision.register_consumer("hog", 0, /*priority=*/5);
  ASSERT_TRUE(provision.request(0, hog, 16));

  HtcServer::Config config;
  config.name = "elastic";
  config.policy = ResourceManagementPolicy::htc(4, 1.5);
  config.scheduler = &first_fit_;
  config.recovery.grant_timeout = 10 * kMinute;
  HtcServer server(sim_, provision, std::move(config));
  sim_.schedule_at(0, [&] {
    server.start();                // owns the initial 4; the pool is full
    server.submit(1000, 10);       // needs a 6-node dynamic grant
  });
  // The DR1 request waits behind the hog; each 10-minute starvation window
  // cancels and re-issues it. After an hour the hog lets go.
  sim_.schedule_at(kHour, [&] { provision.release(kHour, hog, 16); });
  sim_.run_until(2 * kHour);  // the scan timer never stops on its own
  EXPECT_GE(server.grant_timeouts(), 1);
  EXPECT_EQ(server.completed_jobs(), 1)
      << "the re-requested grant must still arrive";
  EXPECT_EQ(server.last_finish(), kHour + 1000);
  EXPECT_EQ(provision.waiting_requests(), 0u);
}

TEST_F(FailureTest, FailNodesOnUnstartedServerIsNoop) {
  HtcServer& server = make_fixed(4);
  EXPECT_EQ(server.fail_nodes(2), 0);
}

}  // namespace
}  // namespace dc::core
