#include "core/provision_service.hpp"

#include <gtest/gtest.h>

namespace dc::core {
namespace {

TEST(ProvisionService, GrantsAndReclaims) {
  ResourceProvisionService service(cluster::ResourcePool(100));
  const auto tre = service.register_consumer("tre");
  EXPECT_TRUE(service.request(0, tre, 40));
  EXPECT_EQ(service.allocated(), 40);
  EXPECT_EQ(service.held_by(tre), 40);
  service.release(kHour, tre, 15);
  EXPECT_EQ(service.allocated(), 25);
  EXPECT_EQ(service.held_by(tre), 25);
}

TEST(ProvisionService, AllOrNothingOnPoolExhaustion) {
  ResourceProvisionService service(cluster::ResourcePool(50));
  const auto a = service.register_consumer("a");
  const auto b = service.register_consumer("b");
  EXPECT_TRUE(service.request(0, a, 40));
  EXPECT_FALSE(service.request(0, b, 20)) << "partial grants are not allowed";
  EXPECT_EQ(service.allocated(), 40) << "rejected request changes nothing";
  EXPECT_EQ(service.rejected_requests(), 1);
  EXPECT_TRUE(service.request(0, b, 10));
}

TEST(ProvisionService, SubscriptionCapRejectsExcess) {
  ResourceProvisionService service(cluster::ResourcePool::unbounded());
  const auto tre = service.register_consumer("capped", /*subscription_cap=*/64);
  EXPECT_EQ(service.subscription_cap(tre), 64);
  EXPECT_TRUE(service.request(0, tre, 60));
  EXPECT_FALSE(service.request(0, tre, 5));
  EXPECT_EQ(service.rejected_requests(), 1);
  EXPECT_TRUE(service.request(0, tre, 4));
  EXPECT_EQ(service.held_by(tre), 64);
}

TEST(ProvisionService, CapIsPerConsumer) {
  ResourceProvisionService service(cluster::ResourcePool::unbounded());
  const auto a = service.register_consumer("a", 10);
  const auto b = service.register_consumer("b");  // uncapped
  EXPECT_FALSE(service.request(0, a, 11));
  EXPECT_TRUE(service.request(0, b, 100000));
}

TEST(ProvisionService, UsageAndAdjustmentBookkeeping) {
  ResourceProvisionService service(cluster::ResourcePool::unbounded());
  const auto tre = service.register_consumer("tre");
  service.request(0, tre, 10);
  service.request(kHour, tre, 5);
  service.release(2 * kHour, tre, 15);
  EXPECT_EQ(service.usage().peak(), 15);
  EXPECT_EQ(service.usage().current(), 0);
  EXPECT_DOUBLE_EQ(service.usage().node_hours(2 * kHour), 25.0);
  // Adjustments count both grants and reclaims: 10 + 5 + 15.
  EXPECT_EQ(service.adjustments().total_adjusted_nodes(), 30);
}

TEST(ProvisionService, DcsPolicyDisablesAdjustmentCounting) {
  ProvisionPolicy policy;
  policy.count_adjustments = false;
  ResourceProvisionService service(cluster::ResourcePool::unbounded(), policy);
  const auto tre = service.register_consumer("tre");
  service.request(0, tre, 10);
  service.release(kHour, tre, 10);
  EXPECT_EQ(service.adjustments().total_adjusted_nodes(), 0);
  EXPECT_EQ(service.usage().peak(), 10) << "usage is still tracked";
}

TEST(ProvisionService, WaitingQueueGrantsOnRelease) {
  ProvisionPolicy policy;
  policy.contention = ProvisionPolicy::ContentionMode::kQueueByPriority;
  ResourceProvisionService service(cluster::ResourcePool(10), policy);
  const auto holder = service.register_consumer("holder");
  const auto waiter = service.register_consumer("waiter");
  ASSERT_TRUE(service.request(0, holder, 8));

  SimTime granted_at = kNever;
  EXPECT_FALSE(service.request_or_wait(
      1, waiter, 5, [&](SimTime at) { granted_at = at; }));
  EXPECT_EQ(service.waiting_requests(), 1u);
  EXPECT_EQ(granted_at, kNever);

  service.release(100, holder, 4);
  EXPECT_EQ(granted_at, 100);
  EXPECT_EQ(service.held_by(waiter), 5);
  EXPECT_EQ(service.waiting_requests(), 0u);
}

TEST(ProvisionService, WaitingQueueHonorsPriorityStrictly) {
  ProvisionPolicy policy;
  policy.contention = ProvisionPolicy::ContentionMode::kQueueByPriority;
  ResourceProvisionService service(cluster::ResourcePool(10), policy);
  const auto holder = service.register_consumer("holder");
  const auto low = service.register_consumer("low", 0, /*priority=*/1);
  const auto high = service.register_consumer("high", 0, /*priority=*/5);
  ASSERT_TRUE(service.request(0, holder, 10));

  std::vector<std::string> grant_order;
  service.request_or_wait(1, low, 2, [&](SimTime) { grant_order.push_back("low"); });
  service.request_or_wait(2, high, 6, [&](SimTime) { grant_order.push_back("high"); });

  // Freeing 3 nodes is not enough for the high-priority request; the
  // low-priority one must NOT jump the queue.
  service.release(10, holder, 3);
  EXPECT_TRUE(grant_order.empty());
  service.release(20, holder, 4);  // 7 free: high (6) grants, then low (2)? 1 left
  EXPECT_EQ(grant_order, std::vector<std::string>{"high"});
  service.release(30, holder, 3);  // 4 free (high holds 6): low grants
  EXPECT_EQ(grant_order, (std::vector<std::string>{"high", "low"}));
}

TEST(ProvisionService, CancelWaitingRemovesQueuedRequests) {
  ProvisionPolicy policy;
  policy.contention = ProvisionPolicy::ContentionMode::kQueueByPriority;
  ResourceProvisionService service(cluster::ResourcePool(10), policy);
  const auto holder = service.register_consumer("holder");
  const auto waiter = service.register_consumer("waiter");
  ASSERT_TRUE(service.request(0, holder, 10));

  bool granted = false;
  EXPECT_FALSE(service.request_or_wait(1, waiter, 5,
                                       [&](SimTime) { granted = true; }));
  EXPECT_EQ(service.waiting_requests(), 1u);
  EXPECT_EQ(service.cancel_waiting(waiter), 1u);
  EXPECT_EQ(service.waiting_requests(), 0u);
  // A withdrawn request must never be granted later.
  service.release(10, holder, 10);
  EXPECT_FALSE(granted);
  EXPECT_EQ(service.cancel_waiting(waiter), 0u) << "nothing left to cancel";
}

TEST(ProvisionService, RejectModeNeverQueues) {
  ResourceProvisionService service(cluster::ResourcePool(4));
  const auto a = service.register_consumer("a");
  ASSERT_TRUE(service.request(0, a, 4));
  bool granted = false;
  EXPECT_FALSE(service.request_or_wait(1, a, 1, [&](SimTime) { granted = true; }));
  EXPECT_EQ(service.waiting_requests(), 0u);
  service.release(2, a, 4);
  EXPECT_FALSE(granted);
  EXPECT_EQ(service.rejected_requests(), 1);
}

TEST(ProvisionService, CapViolationRejectsEvenInQueueMode) {
  ProvisionPolicy policy;
  policy.contention = ProvisionPolicy::ContentionMode::kQueueByPriority;
  ResourceProvisionService service(cluster::ResourcePool::unbounded(), policy);
  const auto capped = service.register_consumer("capped", /*subscription_cap=*/4);
  EXPECT_FALSE(service.request_or_wait(0, capped, 5, nullptr));
  EXPECT_EQ(service.waiting_requests(), 0u)
      << "a request the consumer may never hold cannot wait";
}

TEST(ProvisionService, ZeroRequestsAlwaysSucceed) {
  ResourceProvisionService service(cluster::ResourcePool(1));
  const auto tre = service.register_consumer("tre", 1);
  EXPECT_TRUE(service.request(0, tre, 0));
  EXPECT_EQ(service.rejected_requests(), 0);
}

}  // namespace
}  // namespace dc::core
