#include "core/mtc_server.hpp"

#include <gtest/gtest.h>

#include "sched/fcfs.hpp"
#include "sim/simulator.hpp"
#include "workflow/montage.hpp"

namespace dc::core {
namespace {

workflow::Dag chain3() {
  workflow::Dag dag;
  dag.add_task("a", 10);
  dag.add_task("b", 20);
  dag.add_task("c", 30);
  dag.add_dependency(0, 1);
  dag.add_dependency(1, 2);
  return dag;
}

// --- TriggerMonitor (pure dependency bookkeeping) ----------------------------

TEST(TriggerMonitor, ReleasesRootsOnSubmission) {
  TriggerMonitor monitor;
  std::vector<workflow::TaskId> ready;
  monitor.add_workflow(chain3(), ready);
  EXPECT_EQ(ready, std::vector<workflow::TaskId>{0});
  EXPECT_FALSE(monitor.all_complete());
}

TEST(TriggerMonitor, ReleasesChildrenWhenAllParentsDone) {
  workflow::Dag dag;
  dag.add_task("p1", 1);
  dag.add_task("p2", 1);
  dag.add_task("child", 1);
  dag.add_dependency(0, 2);
  dag.add_dependency(1, 2);

  TriggerMonitor monitor;
  std::vector<workflow::TaskId> ready;
  const auto wf = monitor.add_workflow(dag, ready);
  ready.clear();
  monitor.on_task_complete(wf, 0, ready);
  EXPECT_TRUE(ready.empty()) << "child needs both parents";
  monitor.on_task_complete(wf, 1, ready);
  EXPECT_EQ(ready, std::vector<workflow::TaskId>{2});
}

TEST(TriggerMonitor, DetectsWorkflowCompletion) {
  TriggerMonitor monitor;
  std::vector<workflow::TaskId> ready;
  const auto wf = monitor.add_workflow(chain3(), ready);
  EXPECT_FALSE(monitor.on_task_complete(wf, 0, ready));
  EXPECT_FALSE(monitor.on_task_complete(wf, 1, ready));
  EXPECT_TRUE(monitor.on_task_complete(wf, 2, ready));
  EXPECT_TRUE(monitor.all_complete());
}

TEST(TriggerMonitor, TracksMultipleWorkflows) {
  TriggerMonitor monitor;
  std::vector<workflow::TaskId> ready;
  const auto wf1 = monitor.add_workflow(chain3(), ready);
  const auto wf2 = monitor.add_workflow(chain3(), ready);
  EXPECT_EQ(monitor.workflow_count(), 2u);
  for (workflow::TaskId t : {0, 1, 2}) monitor.on_task_complete(wf1, t, ready);
  EXPECT_TRUE(monitor.workflow_complete(wf1));
  EXPECT_FALSE(monitor.workflow_complete(wf2));
  EXPECT_FALSE(monitor.all_complete());
  for (workflow::TaskId t : {0, 1, 2}) monitor.on_task_complete(wf2, t, ready);
  EXPECT_TRUE(monitor.all_complete());
}

TEST(TriggerMonitor, ExternalTriggerGatesRootTask) {
  TriggerMonitor monitor;
  const auto wf = monitor.register_workflow(chain3());
  const auto trigger = monitor.add_external_trigger(wf, 0);
  std::vector<workflow::TaskId> ready;
  monitor.release_initial(wf, ready);
  EXPECT_TRUE(ready.empty()) << "root gated by an unfired trigger";
  EXPECT_FALSE(monitor.trigger_fired(trigger));
  monitor.fire_trigger(trigger, ready);
  EXPECT_EQ(ready, std::vector<workflow::TaskId>{0});
  EXPECT_TRUE(monitor.trigger_fired(trigger));
  // Firing again is idempotent.
  ready.clear();
  monitor.fire_trigger(trigger, ready);
  EXPECT_TRUE(ready.empty());
}

TEST(TriggerMonitor, TriggerOnMidStageWaitsForBothConditions) {
  TriggerMonitor monitor;
  const auto wf = monitor.register_workflow(chain3());
  const auto trigger = monitor.add_external_trigger(wf, 1);  // gate "b"
  std::vector<workflow::TaskId> ready;
  monitor.release_initial(wf, ready);
  ASSERT_EQ(ready, std::vector<workflow::TaskId>{0});
  ready.clear();
  // Parent completes first: still gated.
  monitor.on_task_complete(wf, 0, ready);
  EXPECT_TRUE(ready.empty());
  // Trigger fires: now released.
  monitor.fire_trigger(trigger, ready);
  EXPECT_EQ(ready, std::vector<workflow::TaskId>{1});
}

TEST(TriggerMonitor, TriggerBeforeParentCompletion) {
  TriggerMonitor monitor;
  const auto wf = monitor.register_workflow(chain3());
  const auto trigger = monitor.add_external_trigger(wf, 1);
  std::vector<workflow::TaskId> ready;
  monitor.release_initial(wf, ready);
  ready.clear();
  monitor.fire_trigger(trigger, ready);
  EXPECT_TRUE(ready.empty()) << "parents still pending";
  monitor.on_task_complete(wf, 0, ready);
  EXPECT_EQ(ready, std::vector<workflow::TaskId>{1});
}

// --- MtcServer ----------------------------------------------------------------

class MtcServerTest : public ::testing::Test {
 protected:
  MtcServer& make_fixed(std::int64_t nodes, bool destroy_when_complete = true) {
    MtcServer::MtcConfig config;
    config.name = "mtc";
    config.fixed_nodes = nodes;
    config.scheduler = &scheduler_;
    config.destroy_when_complete = destroy_when_complete;
    server_ = std::make_unique<MtcServer>(sim_, provision_, std::move(config));
    return *server_;
  }

  MtcServer& make_elastic(ResourceManagementPolicy policy) {
    MtcServer::MtcConfig config;
    config.name = "mtc";
    config.policy = policy;
    config.scheduler = &scheduler_;
    server_ = std::make_unique<MtcServer>(sim_, provision_, std::move(config));
    return *server_;
  }

  sim::Simulator sim_;
  ResourceProvisionService provision_{cluster::ResourcePool::unbounded()};
  sched::FcfsScheduler scheduler_;
  std::unique_ptr<MtcServer> server_;
};

TEST_F(MtcServerTest, ChainExecutesSequentially) {
  MtcServer& server = make_fixed(4);
  sim_.schedule_at(0, [&] {
    server.start();
    server.submit_workflow(chain3());
  });
  sim_.run();
  EXPECT_TRUE(server.all_workflows_complete());
  EXPECT_EQ(server.completed_tasks(), 3);
  // Chain makespan = 10 + 20 + 30.
  EXPECT_EQ(server.makespan(kHour), 60);
}

TEST_F(MtcServerTest, DependenciesNeverViolated) {
  MtcServer& server = make_fixed(166);
  const workflow::Dag dag = workflow::make_paper_montage();
  sim_.schedule_at(0, [&] {
    server.start();
    server.submit_workflow(dag);
  });
  sim_.run();
  ASSERT_TRUE(server.all_workflows_complete());
  ASSERT_EQ(server.jobs().size(), 1000u);
  // A task's job is only submitted once its parents completed (the trigger
  // monitor enforces this), so dependency safety reduces to: every job
  // starts at or after its submit time, and the makespan is bounded below
  // by the critical path.
  for (const sched::Job& job : server.jobs()) {
    EXPECT_GE(job.start, job.submit);
    EXPECT_EQ(job.state, sched::JobState::kCompleted);
  }
  EXPECT_GE(server.makespan(kDay), dag.critical_path());
}

TEST_F(MtcServerTest, AutoDestroyClosesLeasesAtCompletion) {
  MtcServer& server = make_fixed(166);
  sim_.schedule_at(0, [&] {
    server.start();
    server.submit_workflow(workflow::make_paper_montage());
  });
  sim_.run_until(2 * kWeek);
  EXPECT_TRUE(server.is_shutdown()) << "TRE destroyed when campaign ended";
  // Billed one hour of 166 nodes, not two weeks (Table 4's DCS/SSP row).
  EXPECT_EQ(server.ledger().billed_node_hours(2 * kWeek), 166);
  EXPECT_EQ(provision_.allocated(), 0);
}

TEST_F(MtcServerTest, WithoutAutoDestroyLeaseRunsOn) {
  MtcServer& server = make_fixed(166, /*destroy_when_complete=*/false);
  sim_.schedule_at(0, [&] {
    server.start();
    server.submit_workflow(workflow::make_paper_montage());
  });
  sim_.run_until(10 * kHour);
  EXPECT_FALSE(server.is_shutdown());
  server.shutdown();
  EXPECT_EQ(server.ledger().billed_node_hours(10 * kHour), 1660);
}

TEST_F(MtcServerTest, ElasticConvergesToSteadyStateDemand) {
  // The Section 4.5.2 result: B=10, R=8 grows to exactly the 166-node
  // steady state at the first 3-second scan (DR1 = 166 - 10 = 156, since
  // MTC demand counts queued + running workflow jobs).
  MtcServer& server = make_elastic(ResourceManagementPolicy::mtc(10, 8.0));
  sim_.schedule_at(0, [&] {
    server.start();
    server.submit_workflow(workflow::make_paper_montage());
  });
  sim_.run_until(10);
  EXPECT_EQ(server.owned(), 166);
  sim_.run_until(2 * kHour);
  EXPECT_TRUE(server.all_workflows_complete());
  EXPECT_EQ(server.ledger().billed_node_hours(2 * kHour), 166);
}

TEST_F(MtcServerTest, ElasticLowThresholdExpandsAtDiffLevel) {
  // With R=2 the 662-wide mDiffFit level (ratio ~4) triggers expansion
  // beyond 166 — the Figure 11 sweep's expensive corner.
  MtcServer& server = make_elastic(ResourceManagementPolicy::mtc(10, 2.0));
  sim_.schedule_at(0, [&] {
    server.start();
    server.submit_workflow(workflow::make_paper_montage());
  });
  sim_.run_until(2 * kHour);
  EXPECT_TRUE(server.all_workflows_complete());
  EXPECT_GT(server.ledger().billed_node_hours(2 * kHour), 400);
}

TEST_F(MtcServerTest, TasksPerSecondMetric) {
  MtcServer& server = make_fixed(166);
  sim_.schedule_at(0, [&] {
    server.start();
    server.submit_workflow(workflow::make_paper_montage());
  });
  sim_.run_until(kDay);
  const double tps = server.tasks_per_second(kDay);
  EXPECT_GT(tps, 2.0);
  EXPECT_LT(tps, 3.5);
  EXPECT_NEAR(tps, 1000.0 / static_cast<double>(server.makespan(kDay)), 1e-9);
}

TEST_F(MtcServerTest, MakespanFallsBackToHorizonWhenUnfinished) {
  MtcServer& server = make_fixed(1, /*destroy_when_complete=*/false);
  workflow::Dag dag;
  dag.add_task("long", 10 * kHour);
  sim_.schedule_at(0, [&] {
    server.start();
    server.submit_workflow(dag);
  });
  sim_.run_until(kHour);
  EXPECT_FALSE(server.all_workflows_complete());
  EXPECT_EQ(server.makespan(kHour), kHour);
  EXPECT_EQ(server.completed_tasks(kHour), 0);
}

TEST_F(MtcServerTest, GatedWorkflowWaitsForSimulatedDataArrival) {
  // Stage "b" of the chain waits for an external condition (the watched
  // file changes at t=500) on top of its dataflow parent (done at t=10).
  MtcServer& server = make_fixed(4, /*destroy_when_complete=*/false);
  MtcServer::GatedSubmission submission;
  sim_.schedule_at(0, [&] {
    server.start();
    submission = server.submit_workflow_gated(chain3(), {1});
  });
  sim_.schedule_at(500, [&] { server.fire_trigger(submission.triggers[0]); });
  sim_.run_until(kHour);
  ASSERT_TRUE(server.all_workflows_complete());
  // a: 0..10; b: released at 500, runs 20; c: 530..560.
  EXPECT_EQ(server.jobs()[1].start, 500);
  EXPECT_EQ(server.last_finish(), 550);
}

TEST_F(MtcServerTest, TwoWorkflowsInterleave) {
  MtcServer& server = make_fixed(8, /*destroy_when_complete=*/true);
  sim_.schedule_at(0, [&] {
    server.start();
    server.submit_workflow(chain3());
    server.submit_workflow(chain3());
  });
  sim_.run();
  EXPECT_TRUE(server.all_workflows_complete());
  EXPECT_EQ(server.completed_tasks(), 6);
  EXPECT_TRUE(server.is_shutdown());
}

}  // namespace
}  // namespace dc::core
