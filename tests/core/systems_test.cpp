#include "core/systems.hpp"

#include <gtest/gtest.h>

#include "workflow/montage.hpp"
#include "workload/models.hpp"

namespace dc::core {
namespace {

/// A small, fast synthetic HTC workload for system-level tests.
HtcWorkloadSpec small_htc(std::uint64_t seed = 11) {
  workload::SyntheticTraceSpec trace_spec;
  trace_spec.name = "small";
  trace_spec.capacity_nodes = 32;
  trace_spec.period = 2 * kDay;
  trace_spec.submit_margin = 2 * kHour;
  trace_spec.jobs_per_day = 150;
  trace_spec.width_weights = {{1, 0.4}, {2, 0.3}, {4, 0.2}, {8, 0.08}, {32, 0.02}};
  trace_spec.hyper_p = 0.9;
  trace_spec.hyper_mean1 = 500;
  trace_spec.hyper_mean2 = 4000;

  HtcWorkloadSpec spec;
  spec.name = "small";
  spec.trace = workload::generate_trace(trace_spec, seed);
  spec.fixed_nodes = 32;
  spec.policy = ResourceManagementPolicy::htc(8, 1.5, 32);
  return spec;
}

MtcWorkloadSpec small_mtc() {
  workflow::MontageParams params;
  params.inputs = 20;  // 124 tasks
  MtcWorkloadSpec spec;
  spec.name = "wf";
  spec.dag = workflow::make_montage(params, 5);
  spec.submit_time = 6 * kHour;
  spec.fixed_nodes = 20;
  spec.policy = ResourceManagementPolicy::mtc(4, 8.0);
  return spec;
}

ConsolidationWorkload small_consolidation() {
  ConsolidationWorkload workload;
  workload.htc.push_back(small_htc());
  workload.mtc.push_back(small_mtc());
  return workload;
}

TEST(Systems, ModelNamesAndTraits) {
  EXPECT_STREQ(system_model_name(SystemModel::kDcs), "DCS");
  EXPECT_STREQ(system_model_name(SystemModel::kDawningCloud), "DawningCloud");
  EXPECT_STREQ(system_traits(SystemModel::kDcs).resource_property, "local");
  EXPECT_STREQ(system_traits(SystemModel::kSsp).resource_property, "leased");
  EXPECT_STREQ(system_traits(SystemModel::kDrp).provisioning, "manual");
  EXPECT_STREQ(system_traits(SystemModel::kDawningCloud).provisioning,
               "flexible");
}

TEST(Systems, EffectiveHorizonFromTracePeriod) {
  ConsolidationWorkload workload;
  workload.htc.push_back(small_htc());
  EXPECT_EQ(workload.effective_horizon(), 2 * kDay);
  workload.horizon = 5 * kDay;
  EXPECT_EQ(workload.effective_horizon(), 5 * kDay);
}

TEST(Systems, EffectiveHorizonCoversLateMtcSubmission) {
  ConsolidationWorkload workload;
  MtcWorkloadSpec mtc = small_mtc();
  mtc.submit_time = 10 * kDay;
  workload.mtc.push_back(std::move(mtc));
  EXPECT_GE(workload.effective_horizon(), 10 * kDay + 2 * kHour);
}

TEST(Systems, DcsAndSspAreIdenticalExceptAdjustments) {
  const auto workload = small_consolidation();
  const auto dcs = run_system(SystemModel::kDcs, workload);
  const auto ssp = run_system(SystemModel::kSsp, workload);
  ASSERT_EQ(dcs.providers.size(), ssp.providers.size());
  for (std::size_t i = 0; i < dcs.providers.size(); ++i) {
    EXPECT_EQ(dcs.providers[i].consumption_node_hours,
              ssp.providers[i].consumption_node_hours);
    EXPECT_EQ(dcs.providers[i].completed_jobs, ssp.providers[i].completed_jobs);
    EXPECT_DOUBLE_EQ(dcs.providers[i].tasks_per_second,
                     ssp.providers[i].tasks_per_second);
  }
  EXPECT_EQ(dcs.peak_nodes, ssp.peak_nodes);
  EXPECT_EQ(dcs.adjusted_nodes, 0) << "DCS providers own their nodes";
  // SSP adjusts at RE startup and finalization only: 2 * (32 + 20).
  EXPECT_EQ(ssp.adjusted_nodes, 2 * (32 + 20));
}

TEST(Systems, DcsHtcConsumptionIsSizeTimesPeriod) {
  ConsolidationWorkload workload;
  workload.htc.push_back(small_htc());
  const auto result = run_system(SystemModel::kDcs, workload);
  EXPECT_EQ(result.provider("small").consumption_node_hours, 32 * 48);
}

TEST(Systems, DeterministicAcrossRuns) {
  const auto workload = small_consolidation();
  const auto a = run_system(SystemModel::kDawningCloud, workload);
  const auto b = run_system(SystemModel::kDawningCloud, workload);
  EXPECT_EQ(a.total_consumption_node_hours, b.total_consumption_node_hours);
  EXPECT_EQ(a.peak_nodes, b.peak_nodes);
  EXPECT_EQ(a.adjusted_nodes, b.adjusted_nodes);
  EXPECT_EQ(a.simulated_events, b.simulated_events);
  for (std::size_t i = 0; i < a.providers.size(); ++i) {
    EXPECT_EQ(a.providers[i].completed_jobs, b.providers[i].completed_jobs);
  }
}

TEST(Systems, AllSystemsCompleteTheMtcWorkflow) {
  const auto workload = small_consolidation();
  for (const auto& result : run_all_systems(workload)) {
    const auto& wf = result.provider("wf");
    EXPECT_EQ(wf.completed_jobs, 124)
        << system_model_name(result.model);
    EXPECT_GT(wf.tasks_per_second, 0.0);
    EXPECT_EQ(wf.type, WorkloadType::kMtc);
  }
}

TEST(Systems, DrpMtcUsesMoreResourcesButIsFaster) {
  ConsolidationWorkload workload;
  workload.mtc.push_back(small_mtc());
  const auto dcs = run_system(SystemModel::kDcs, workload);
  const auto drp = run_system(SystemModel::kDrp, workload);
  EXPECT_GT(drp.provider("wf").consumption_node_hours,
            dcs.provider("wf").consumption_node_hours);
  EXPECT_GE(drp.provider("wf").tasks_per_second,
            dcs.provider("wf").tasks_per_second);
}

TEST(Systems, PlatformPeakIsSumAwareNotProviderSum) {
  const auto workload = small_consolidation();
  const auto result = run_system(SystemModel::kDcs, workload);
  // HTC holds 32 for the whole run; the MTC RE holds 20 during its window:
  // the platform peak is 52 while both are active.
  EXPECT_EQ(result.peak_nodes, 52);
}

TEST(Systems, BoundedPlatformRejectsAndDegrades) {
  ConsolidationWorkload workload;
  workload.htc.push_back(small_htc());
  RunOptions options;
  options.platform_capacity = 16;  // below the 32-node fixed requirement
  const auto result = run_system(SystemModel::kSsp, workload, options);
  // Startup request for 32 was rejected: nothing ran, every submission was
  // refused by the portal.
  EXPECT_GT(result.rejected_requests, 0);
  EXPECT_EQ(result.provider("small").completed_jobs, 0);
  EXPECT_EQ(result.provider("small").submitted_jobs, 0);
}

TEST(Systems, HourlyPeakSeriesMatchesPeak) {
  ConsolidationWorkload workload;
  workload.htc.push_back(small_htc());
  const auto result = run_system(SystemModel::kDawningCloud, workload);
  ASSERT_FALSE(result.hourly_peak_series.empty());
  EXPECT_EQ(result.hourly_peak_series.size(),
            static_cast<std::size_t>(result.horizon / kHour));
  std::int64_t series_max = 0;
  for (std::int64_t level : result.hourly_peak_series) {
    series_max = std::max(series_max, level);
  }
  EXPECT_EQ(series_max, result.peak_nodes);
}

TEST(Systems, ElasticServerSurvivesBoundedPlatform) {
  ConsolidationWorkload workload;
  workload.htc.push_back(small_htc());
  RunOptions options;
  options.platform_capacity = 24;  // initial 8 fits; some grants rejected
  const auto result = run_system(SystemModel::kDawningCloud, workload, options);
  EXPECT_GT(result.provider("small").completed_jobs, 0);
  EXPECT_LE(result.peak_nodes, 24);
}

TEST(Systems, BillingQuantumOptionChangesTotals) {
  ConsolidationWorkload workload;
  workload.htc.push_back(small_htc());
  RunOptions minute;
  minute.billing_quantum = kMinute;
  const auto drp_hour = run_system(SystemModel::kDrp, workload);
  const auto drp_minute = run_system(SystemModel::kDrp, workload, minute);
  EXPECT_LT(drp_minute.total_consumption_node_hours,
            drp_hour.total_consumption_node_hours)
      << "finer quantum removes rounding";
}

TEST(Systems, GeneralizedManyProviderConsolidation) {
  // The paper's future-work case: m service providers on one platform
  // (here 3 HTC + 2 MTC).
  ConsolidationWorkload workload;
  for (std::uint64_t i = 0; i < 3; ++i) {
    HtcWorkloadSpec spec = small_htc(100 + i);
    spec.name = "htc" + std::to_string(i);
    workload.htc.push_back(std::move(spec));
  }
  for (int i = 0; i < 2; ++i) {
    MtcWorkloadSpec spec = small_mtc();
    spec.name = "mtc" + std::to_string(i);
    spec.submit_time = (6 + 3 * i) * kHour;
    workload.mtc.push_back(std::move(spec));
  }
  const auto results = run_all_systems(workload);
  for (const auto& result : results) {
    EXPECT_EQ(result.providers.size(), 5u);
    for (const auto& provider : result.providers) {
      EXPECT_GT(provider.completed_jobs, 0)
          << system_model_name(result.model) << "/" << provider.provider;
    }
  }
  // Consolidation saving still appears with five providers.
  const auto& dcs = results[0];
  const auto& dawning = results[3];
  EXPECT_LT(dawning.total_consumption_node_hours,
            dcs.total_consumption_node_hours);
}

TEST(Systems, QueueContentionEliminatesRejections) {
  ConsolidationWorkload workload;
  workload.htc.push_back(small_htc());
  RunOptions options;
  options.platform_capacity = 20;  // tight: initial 8 fits, grants contend

  options.contention = ProvisionPolicy::ContentionMode::kReject;
  const auto reject = run_system(SystemModel::kDawningCloud, workload, options);
  options.contention = ProvisionPolicy::ContentionMode::kQueueByPriority;
  const auto queue = run_system(SystemModel::kDawningCloud, workload, options);

  EXPECT_GT(reject.rejected_requests, 0);
  EXPECT_EQ(queue.rejected_requests, 0)
      << "queue mode converts rejections into waits";
  EXPECT_LE(queue.peak_nodes, 20);
  EXPECT_LE(reject.peak_nodes, 20);
  EXPECT_GT(queue.provider("small").completed_jobs, 0);
}

TEST(Systems, ProviderLookupByName) {
  ConsolidationWorkload workload;
  workload.htc.push_back(small_htc());
  const auto result = run_system(SystemModel::kDcs, workload);
  EXPECT_EQ(result.provider("small").provider, "small");
}

}  // namespace
}  // namespace dc::core
