#include "core/wss_server.hpp"

#include <gtest/gtest.h>

namespace dc::core {
namespace {

class WssServerTest : public ::testing::Test {
 protected:
  sim::Simulator sim_;
  ResourceProvisionService provision_{cluster::ResourcePool::unbounded()};
};

workload::DemandProfile step_profile() {
  // 10 nodes for 2h, 40 for 2h, 10 for 2h.
  return workload::DemandProfile({10, 10, 40, 40, 10, 10});
}

TEST_F(WssServerTest, FixedModeHoldsPeakAndNeverViolates) {
  WssServer::Config config;
  config.name = "wss";
  config.fixed_nodes = 40;
  WssServer server(sim_, provision_, std::move(config), step_profile());
  sim_.schedule_at(0, [&] { ASSERT_TRUE(server.start()); });
  sim_.run_until(6 * kHour);
  server.shutdown();
  EXPECT_DOUBLE_EQ(server.violation_node_hours(), 0.0);
  EXPECT_EQ(server.ledger().billed_node_hours(6 * kHour), 240);
}

TEST_F(WssServerTest, UndersizedFixedModeAccumulatesViolations) {
  WssServer::Config config;
  config.name = "wss";
  config.fixed_nodes = 20;
  WssServer server(sim_, provision_, std::move(config), step_profile());
  sim_.schedule_at(0, [&] { server.start(); });
  sim_.run_until(6 * kHour);
  // Hours 2-3 demand 40 vs 20 held: ~20 node*h x 2h unmet.
  EXPECT_NEAR(server.violation_node_hours(), 40.0, 3.0);
  EXPECT_GT(server.violation_seconds(), 0);
}

TEST_F(WssServerTest, ElasticTracksDemandUpAndDown) {
  WssServer::Config config;
  config.name = "wss";
  WssServer::ElasticPolicy policy;
  policy.headroom = 0.0;
  config.policy = policy;
  WssServer server(sim_, provision_, std::move(config), step_profile());
  sim_.schedule_at(0, [&] { server.start(); });

  sim_.run_until(kHour);
  EXPECT_EQ(server.owned(), 10);
  sim_.run_until(3 * kHour);
  EXPECT_EQ(server.owned(), 40) << "scaled up within a scan of the step";
  sim_.run_until(6 * kHour - 1);
  EXPECT_EQ(server.owned(), 10) << "scale-up grant released after the step";
  server.shutdown();
  // Billed well below the fixed-peak 240 (= 40 * 6h).
  EXPECT_LT(server.ledger().billed_node_hours(6 * kHour), 160);
  // Brief violation possible only within one scan interval of the step.
  EXPECT_LE(server.violation_seconds(), 10 * kMinute);
}

TEST_F(WssServerTest, HeadroomOverprovisions) {
  WssServer::Config config;
  config.name = "wss";
  WssServer::ElasticPolicy policy;
  policy.headroom = 0.5;
  config.policy = policy;
  WssServer server(sim_, provision_, std::move(config), step_profile());
  sim_.schedule_at(0, [&] { server.start(); });
  sim_.run_until(kHour);
  EXPECT_EQ(server.owned(), 15);  // ceil(10 * 1.5)
}

TEST_F(WssServerTest, ShutdownReturnsEverything) {
  WssServer::Config config;
  config.name = "wss";
  config.policy = WssServer::ElasticPolicy{};
  WssServer server(sim_, provision_, std::move(config), step_profile());
  sim_.schedule_at(0, [&] { server.start(); });
  sim_.run_until(3 * kHour);
  EXPECT_GT(provision_.allocated(), 0);
  server.shutdown();
  server.shutdown();  // idempotent
  EXPECT_EQ(provision_.allocated(), 0);
  EXPECT_EQ(server.owned(), 0);
}

TEST_F(WssServerTest, FailuresDegradeServingCapacityUntilRepair) {
  WssServer::Config config;
  config.name = "wss";
  config.fixed_nodes = 40;
  WssServer server(sim_, provision_, std::move(config), step_profile());
  sim_.schedule_at(0, [&] { ASSERT_TRUE(server.start()); });
  // Mid-peak (demand 40) a rack of 30 dies; only 10 healthy nodes serve
  // until the repair half an hour later.
  sim_.schedule_at(150 * kMinute, [&] {
    EXPECT_EQ(server.fail_nodes(30), 0) << "web services run no jobs to kill";
    EXPECT_EQ(server.down(), 30);
    EXPECT_EQ(server.healthy_nodes(), 10);
  });
  sim_.schedule_at(3 * kHour, [&] { server.repair_nodes(30); });
  sim_.run_until(6 * kHour);
  server.shutdown();
  EXPECT_EQ(server.down(), 0);
  // Unmet demand 30 nodes x 0.5 h = 15 violation node*hours (the fixed
  // sizing itself never violates, see FixedModeHoldsPeakAndNeverViolates).
  EXPECT_NEAR(server.violation_node_hours(), 15.0, 1.0);
  EXPECT_LT(server.availability(6 * kHour), 1.0);
  EXPECT_NEAR(server.availability(6 * kHour), 1.0 - 15.0 / 240.0, 0.01);
}

TEST_F(WssServerTest, ElasticBeatsFixedOnRealisticCurveWithoutViolations) {
  const workload::DemandProfile profile =
      workload::make_web_demand(workload::WebDemandSpec{}, 3);
  const SimTime horizon = profile.period();

  WssServer::Config fixed_config;
  fixed_config.name = "fixed";
  fixed_config.fixed_nodes = profile.peak();
  WssServer fixed(sim_, provision_, std::move(fixed_config), profile);

  WssServer::Config elastic_config;
  elastic_config.name = "elastic";
  elastic_config.policy = WssServer::ElasticPolicy{};
  WssServer elastic(sim_, provision_, std::move(elastic_config), profile);

  sim_.schedule_at(0, [&] {
    fixed.start();
    elastic.start();
  });
  sim_.run_until(horizon);
  fixed.shutdown();
  elastic.shutdown();

  EXPECT_DOUBLE_EQ(fixed.violation_node_hours(), 0.0);
  EXPECT_LT(elastic.ledger().billed_node_hours(horizon),
            fixed.ledger().billed_node_hours(horizon));
  // With 10% headroom the elastic RE only violates transiently on spikes.
  EXPECT_LT(elastic.violation_node_hours(),
            0.01 * static_cast<double>(profile.total_node_hours()));
}

}  // namespace
}  // namespace dc::core
