#include "core/tuning.hpp"

#include <gtest/gtest.h>

#include "workflow/montage.hpp"
#include "workload/models.hpp"

namespace dc::core {
namespace {

HtcWorkloadSpec tiny_htc() {
  workload::SyntheticTraceSpec trace_spec;
  trace_spec.name = "tiny";
  trace_spec.capacity_nodes = 16;
  trace_spec.period = kDay;
  trace_spec.submit_margin = 2 * kHour;
  trace_spec.jobs_per_day = 120;
  trace_spec.width_weights = {{1, 0.5}, {2, 0.3}, {4, 0.15}, {16, 0.05}};
  trace_spec.hyper_mean1 = 400;
  trace_spec.hyper_mean2 = 2500;

  HtcWorkloadSpec spec;
  spec.name = "tiny";
  spec.trace = workload::generate_trace(trace_spec, 3);
  spec.fixed_nodes = 16;
  spec.policy = ResourceManagementPolicy::htc(4, 1.5, 16);
  return spec;
}

TEST(Tuning, EvaluatesTheWholeGridPlusRefinements) {
  const auto result = tune_htc_policy(tiny_htc(), {2, 8}, {1.0, 2.0});
  EXPECT_GE(result.evaluated.size(), 4u);
  // The winner is one of the evaluated candidates.
  bool found = false;
  for (const auto& candidate : result.evaluated) {
    if (candidate.b == result.best.initial_nodes &&
        candidate.r == result.best.threshold_ratio) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Tuning, WinnerIsCheapestAmongQualityQualified) {
  const auto result = tune_htc_policy(tiny_htc(), {2, 4, 8, 12}, {1.0, 1.5, 2.0});
  double best_quality = 0.0;
  for (const auto& candidate : result.evaluated) {
    best_quality = std::max(best_quality, candidate.quality);
  }
  const double floor = best_quality * (1.0 - 0.002);
  EXPECT_GE(result.best_candidate.quality, floor);
  for (const auto& candidate : result.evaluated) {
    if (candidate.quality >= floor) {
      EXPECT_LE(result.best_candidate.consumption_node_hours,
                candidate.consumption_node_hours);
    }
  }
}

TEST(Tuning, PreservesNonSearchedPolicyFields) {
  HtcWorkloadSpec spec = tiny_htc();
  spec.policy.max_nodes = 16;
  spec.policy.scan_interval = 2 * kMinute;
  const auto result = tune_htc_policy(spec, {4}, {1.5});
  EXPECT_EQ(result.best.max_nodes, 16);
  EXPECT_EQ(result.best.scan_interval, 2 * kMinute);
}

TEST(Tuning, MtcHighToleranceFindsTheEfficientFrontier) {
  workflow::MontageParams params;
  params.inputs = 30;  // 184 tasks
  MtcWorkloadSpec spec;
  spec.name = "wf";
  spec.dag = workflow::make_montage(params, 2);
  spec.fixed_nodes = 30;
  spec.policy = ResourceManagementPolicy::mtc(4, 8.0);

  TuningObjective lenient;
  lenient.quality_tolerance = 0.15;
  const auto frontier = tune_mtc_policy(spec, {4, 8}, {2.0, 6.0}, lenient);
  TuningObjective strict;
  strict.quality_tolerance = 0.0005;
  const auto fastest = tune_mtc_policy(spec, {4, 8}, {2.0, 6.0}, strict);
  // A lenient tolerance can only make the chosen configuration cheaper.
  EXPECT_LE(frontier.best_candidate.consumption_node_hours,
            fastest.best_candidate.consumption_node_hours);
  EXPECT_GE(fastest.best_candidate.quality, frontier.best_candidate.quality);
}

TEST(Tuning, DeterministicReport) {
  const auto a = tune_htc_policy(tiny_htc(), {4, 8}, {1.2, 1.8});
  const auto b = tune_htc_policy(tiny_htc(), {4, 8}, {1.2, 1.8});
  EXPECT_EQ(a.best.initial_nodes, b.best.initial_nodes);
  EXPECT_EQ(a.best.threshold_ratio, b.best.threshold_ratio);
  const std::string report = format_tuning_report("tiny", a);
  EXPECT_NE(report.find("tiny"), std::string::npos);
  EXPECT_NE(report.find("best policy"), std::string::npos);
}

}  // namespace
}  // namespace dc::core
