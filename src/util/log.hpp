// Leveled, optionally sim-time-stamped logging.
//
// The emulated daemons (HTC/MTC servers, provision service, lifecycle
// service) log their decisions through this facility; tests silence it and
// the examples turn on kInfo to narrate runs.
//
// Each message is formatted into a single buffer and written with one
// fwrite, so lines never shear even when examples log from sweep threads
// (stdio guarantees atomicity per call, not across the three calls the
// old prefix/body/newline implementation made).
#pragma once

#include <cstdio>
#include <string>

#include "util/strings.hpp"
#include "util/time.hpp"

namespace dc {

enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,
};

/// Process-wide logger. Level/stream/hook configuration is not
/// thread-safe by design: the simulator is single-threaded per
/// experiment; parallel sweeps run one Simulator (and thus one log
/// stream, usually kOff) per thread, and configuration happens before
/// sweeps start.
class Log {
 public:
  /// Observer for emitted `at` messages; the CLI installs one to route
  /// Log lines into the run's TraceSink when tracing is enabled. Only
  /// install a hook in single-run contexts — the hook is process-wide,
  /// while trace sinks are per-run.
  using Hook = void (*)(void* ctx, LogLevel level, SimTime now,
                        const char* component, const char* message);

  static LogLevel level() { return level_; }
  static void set_level(LogLevel level) { level_ = level; }

  /// Sink for messages; defaults to stderr.
  static void set_stream(std::FILE* stream) { stream_ = stream; }

  static void set_hook(Hook hook, void* ctx) {
    hook_ = hook;
    hook_ctx_ = ctx;
  }

  static bool enabled(LogLevel level) { return level >= level_; }

  /// printf-style logging with a simulated-time prefix.
  template <typename... Args>
  static void at(LogLevel level, SimTime now, const char* component,
                 const char* fmt, Args... args) {
    if (!enabled(level)) return;
    write_line(level, now, component, format_message(fmt, args...));
  }

  template <typename... Args>
  static void raw(LogLevel level, const char* fmt, Args... args) {
    if (!enabled(level)) return;
    std::string line = format_message(fmt, args...);
    line.push_back('\n');
    std::fwrite(line.data(), 1, line.size(), stream_);
  }

  static const char* level_name(LogLevel level);

 private:
  template <typename... Args>
  static std::string format_message(const char* fmt, Args... args) {
    if constexpr (sizeof...(args) == 0) {
      return std::string(fmt);
    } else {
// The callers' format strings are compile-time literals; this template
// just forwards them, which -Wformat-nonliteral cannot see.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wformat-nonliteral"
      return str_format(fmt, args...);
#pragma GCC diagnostic pop
    }
  }

  /// Prefixes, writes the whole line with one fwrite, then notifies the
  /// hook (if any) with the unprefixed message.
  static void write_line(LogLevel level, SimTime now, const char* component,
                         const std::string& message);

  static LogLevel level_;
  static std::FILE* stream_;
  static Hook hook_;
  static void* hook_ctx_;
};

/// RAII guard that temporarily changes the log level (used by tests).
class ScopedLogLevel {
 public:
  explicit ScopedLogLevel(LogLevel level) : previous_(Log::level()) {
    Log::set_level(level);
  }
  ~ScopedLogLevel() { Log::set_level(previous_); }
  ScopedLogLevel(const ScopedLogLevel&) = delete;
  ScopedLogLevel& operator=(const ScopedLogLevel&) = delete;

 private:
  LogLevel previous_;
};

}  // namespace dc
