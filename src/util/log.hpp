// Leveled, optionally sim-time-stamped logging.
//
// The emulated daemons (HTC/MTC servers, provision service, lifecycle
// service) log their decisions through this facility; tests silence it and
// the examples turn on kInfo to narrate runs.
#pragma once

#include <cstdio>
#include <string>

#include "util/time.hpp"

namespace dc {

enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,
};

/// Process-wide logger. Not thread-safe by design: the simulator is
/// single-threaded per experiment; parallel sweeps run one Simulator (and
/// thus one log stream, usually kOff) per thread.
class Log {
 public:
  static LogLevel level() { return level_; }
  static void set_level(LogLevel level) { level_ = level; }

  /// Sink for messages; defaults to stderr.
  static void set_stream(std::FILE* stream) { stream_ = stream; }

  static bool enabled(LogLevel level) { return level >= level_; }

  /// printf-style logging with a simulated-time prefix.
  template <typename... Args>
  static void at(LogLevel level, SimTime now, const char* component,
                 const char* fmt, Args... args) {
    if (!enabled(level)) return;
    std::string prefix = "[" + format_time(now) + "] [" + level_name(level) +
                         "] [" + component + "] ";
    std::fputs(prefix.c_str(), stream_);
    std::fprintf(stream_, fmt, args...);
    std::fputc('\n', stream_);
  }

  template <typename... Args>
  static void raw(LogLevel level, const char* fmt, Args... args) {
    if (!enabled(level)) return;
    std::fprintf(stream_, fmt, args...);
    std::fputc('\n', stream_);
  }

  static const char* level_name(LogLevel level);

 private:
  static LogLevel level_;
  static std::FILE* stream_;
};

/// RAII guard that temporarily changes the log level (used by tests).
class ScopedLogLevel {
 public:
  explicit ScopedLogLevel(LogLevel level) : previous_(Log::level()) {
    Log::set_level(level);
  }
  ~ScopedLogLevel() { Log::set_level(previous_); }
  ScopedLogLevel(const ScopedLogLevel&) = delete;
  ScopedLogLevel& operator=(const ScopedLogLevel&) = delete;

 private:
  LogLevel previous_;
};

}  // namespace dc
