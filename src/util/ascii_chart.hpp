// Terminal line charts for figure series.
//
// The bench binaries write full CSVs for external plotting, but a quick
// look at a series (Figure 13's hourly platform usage, a demand profile, a
// sweep curve) shouldn't require leaving the terminal. render_series draws
// one or more series as a block-character chart with a labeled y-axis.
#pragma once

#include <string>
#include <vector>

namespace dc {

struct ChartSeries {
  std::string label;
  std::vector<double> values;
};

struct ChartOptions {
  std::size_t width = 100;   // columns for the plot area
  std::size_t height = 16;   // rows for the plot area
  double y_min = 0.0;
  /// y_max <= y_min means auto-scale to the data.
  double y_max = 0.0;
  std::string x_label;
};

/// Renders the series as an ASCII chart. Multiple series share the axes and
/// are drawn with distinct glyphs ('*', '+', 'o', 'x', ...); a legend line
/// follows the plot. Series longer than `width` are downsampled by
/// averaging buckets; shorter series are stretched.
std::string render_chart(const std::vector<ChartSeries>& series,
                         const ChartOptions& options = {});

}  // namespace dc
