#include "util/faultfs.hpp"

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>

#ifndef _WIN32
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

#include "util/strings.hpp"

namespace dc::faultfs {
namespace {

// Whole-layer state. A single mutex guards it: the hooked primitives sit
// on cold persistence paths (snapshot boundaries, campaign transitions,
// end-of-run exports), never on the simulation hot path. The atomic
// `g_armed` flag keeps the no-plan, no-trace case to one relaxed load.
std::atomic<bool> g_armed{false};
std::mutex g_mutex;

struct RuleState {
  FaultRule rule;
  std::uint64_t seen = 0;
  bool fired = false;
};

struct LayerState {
  std::vector<RuleState> rules;
  std::string trace_path;
  std::string marker_dir;
  std::uint64_t fired = 0;
  // fd -> path, so write/fsync/close hits can name the file they touch
  // in the trace and kTruncate can reach the destination.
  std::map<int, std::string> fd_paths;
};

LayerState& state() {
  static LayerState* instance = new LayerState();
  return *instance;
}

thread_local std::vector<std::string> t_site_stack;

void rearm_flag_locked() {
  const LayerState& s = state();
  g_armed.store(!s.rules.empty() || !s.trace_path.empty(),
                std::memory_order_relaxed);
}

bool site_matches(std::string_view pattern, std::string_view site) {
  if (pattern == "*") return true;
  if (!pattern.empty() && pattern.back() == '*') {
    const std::string_view prefix = pattern.substr(0, pattern.size() - 1);
    return site.substr(0, prefix.size()) == prefix;
  }
  return pattern == site;
}

#ifndef _WIN32

/// One raw O_APPEND write per line: whole lines interleave across the
/// orchestrator and its forked workers sharing a trace file. This is the
/// drill's observer channel, so it bypasses the hooks on purpose.
void trace_line_locked(const std::string& line) {
  const LayerState& s = state();
  if (s.trace_path.empty()) return;
  const int fd =
      ::open(s.trace_path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) return;
  (void)!::write(fd, line.data(), line.size());
  ::close(fd);
}

/// Marker files make `once` rules exactly-once per drill, not per
/// process: a retried campaign worker inherits the plan but finds the
/// marker and runs clean — a transient host fault, not a poisoned cell.
bool claim_once_marker_locked(const RuleState& rs) {
  LayerState& s = state();
  if (s.marker_dir.empty()) return true;  // no dir: once == per-process
  std::string name = rs.rule.site + "." + op_name(rs.rule.op) + "." +
                     std::to_string(rs.rule.nth) + "." +
                     fault_kind_name(rs.rule.kind);
  for (char& c : name) {
    if (c == '/' || c == '*') c = '_';
  }
  const std::string path = s.marker_dir + "/" + name + ".fired";
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_EXCL, 0644);
  if (fd < 0) return false;  // already claimed by an earlier process
  ::close(fd);
  return true;
}

[[noreturn]] void crash_now() { ::_exit(kCrashExitCode); }

/// The injection decision for one hooked operation. Returns the rule to
/// apply, or nullptr for a clean passthrough. Counters advance on every
/// match, fired or not, so (site, op, nth) addressing stays stable.
const FaultRule* consult_locked(Op op, const std::string& path) {
  LayerState& s = state();
  const std::string_view site = current_site();
  if (!s.trace_path.empty() && !site.empty()) {
    trace_line_locked("HIT " + std::string(site) + " " +
                      std::string(op_name(op)) + " " + path + "\n");
  }
  const FaultRule* hit = nullptr;
  for (RuleState& rs : s.rules) {
    if (rs.rule.op != op || !site_matches(rs.rule.site, site)) continue;
    ++rs.seen;
    if (hit != nullptr || rs.fired) continue;
    const bool due = rs.rule.nth == 0 || rs.seen == rs.rule.nth;
    if (!due) continue;
    if (rs.rule.once && !claim_once_marker_locked(rs)) {
      rs.fired = true;  // claimed by an earlier process: disarm here too
      continue;
    }
    rs.fired = true;
    ++s.fired;
    trace_line_locked("FIRED " + std::string(site) + " " +
                      std::string(op_name(op)) + " " +
                      fault_kind_name(rs.rule.kind) + "\n");
    hit = &rs.rule;
  }
  return hit;
}

std::string fd_path_locked(int fd) {
  const auto it = state().fd_paths.find(fd);
  return it == state().fd_paths.end() ? std::string("?") : it->second;
}

#endif  // !_WIN32

StatusOr<FaultRule> parse_rule(std::string_view text) {
  FaultRule rule;
  bool have_fault = false;
  for (std::string_view token : split_char(text, ' ')) {
    token = trim(token);
    if (token.empty()) continue;
    if (token == "once") {
      rule.once = true;
      continue;
    }
    const std::size_t eq = token.find('=');
    if (eq == std::string_view::npos) {
      return Status::invalid_argument("fault plan: token '" +
                                      std::string(token) +
                                      "' is not key=value (rule: '" +
                                      std::string(text) + "')");
    }
    const std::string_view key = token.substr(0, eq);
    const std::string_view value = token.substr(eq + 1);
    if (key == "site") {
      rule.site = std::string(value);
    } else if (key == "op") {
      auto op = parse_op(value);
      if (!op.is_ok()) return op.status();
      rule.op = *op;
    } else if (key == "nth" || key == "bytes") {
      std::uint64_t parsed = 0;
      for (char c : value) {
        if (c < '0' || c > '9') {
          return Status::invalid_argument(
              "fault plan: " + std::string(key) + "='" + std::string(value) +
              "' is not a number (rule: '" + std::string(text) + "')");
        }
        parsed = parsed * 10 + static_cast<std::uint64_t>(c - '0');
      }
      (key == "nth" ? rule.nth : rule.bytes) = parsed;
    } else if (key == "fault") {
      have_fault = true;
      if (value == "eio") {
        rule.kind = FaultKind::kErrno;
        rule.error = EIO;
      } else if (value == "enospc") {
        rule.kind = FaultKind::kErrno;
        rule.error = ENOSPC;
      } else if (value == "short") {
        rule.kind = FaultKind::kShort;
      } else if (value == "torn") {
        rule.kind = FaultKind::kTorn;
      } else if (value == "crash") {
        rule.kind = FaultKind::kCrashBefore;
      } else if (value == "crash-after") {
        rule.kind = FaultKind::kCrashAfter;
      } else if (value == "trunc") {
        rule.kind = FaultKind::kTruncate;
      } else {
        return Status::invalid_argument(
            "fault plan: unknown fault '" + std::string(value) +
            "' (valid: eio, enospc, short, torn, crash, crash-after, trunc)");
      }
    } else {
      return Status::invalid_argument("fault plan: unknown key '" +
                                      std::string(key) + "' (rule: '" +
                                      std::string(text) + "')");
    }
  }
  if (!have_fault) {
    return Status::invalid_argument("fault plan: rule '" + std::string(text) +
                                    "' names no fault= class");
  }
  return rule;
}

}  // namespace

const char* op_name(Op op) {
  switch (op) {
    case Op::kOpen: return "open";
    case Op::kWrite: return "write";
    case Op::kFsync: return "fsync";
    case Op::kRename: return "rename";
    case Op::kClose: return "close";
  }
  return "?";
}

StatusOr<Op> parse_op(std::string_view text) {
  if (text == "open") return Op::kOpen;
  if (text == "write") return Op::kWrite;
  if (text == "fsync") return Op::kFsync;
  if (text == "rename") return Op::kRename;
  if (text == "close") return Op::kClose;
  return Status::invalid_argument(
      "fault plan: unknown op '" + std::string(text) +
      "' (valid: open, write, fsync, rename, close)");
}

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kErrno: return "errno";
    case FaultKind::kShort: return "short";
    case FaultKind::kTorn: return "torn";
    case FaultKind::kCrashBefore: return "crash";
    case FaultKind::kCrashAfter: return "crash-after";
    case FaultKind::kTruncate: return "trunc";
  }
  return "?";
}

StatusOr<FaultPlan> parse_fault_plan(std::string_view text) {
  FaultPlan plan;
  // ';' and newline both end a rule, so a whole plan fits in one
  // environment variable.
  std::string normalized(text);
  for (char& c : normalized) {
    if (c == ';') c = '\n';
  }
  for (std::string_view line : split_char(normalized, '\n')) {
    line = trim(line);
    if (line.empty() || line.front() == '#') continue;
    auto rule = parse_rule(line);
    if (!rule.is_ok()) return rule.status();
    plan.rules.push_back(std::move(*rule));
  }
  return plan;
}

void install_plan(FaultPlan plan) {
  std::lock_guard<std::mutex> lock(g_mutex);
  LayerState& s = state();
  s.rules.clear();
  for (FaultRule& rule : plan.rules) {
    s.rules.push_back({std::move(rule), 0, false});
  }
  s.fired = 0;
  rearm_flag_locked();
}

void reset() {
  std::lock_guard<std::mutex> lock(g_mutex);
  LayerState& s = state();
  s.rules.clear();
  s.trace_path.clear();
  s.marker_dir.clear();
  s.fired = 0;
  s.fd_paths.clear();
  rearm_flag_locked();
}

bool plan_active() {
  std::lock_guard<std::mutex> lock(g_mutex);
  return !state().rules.empty();
}

std::uint64_t fired_total() {
  std::lock_guard<std::mutex> lock(g_mutex);
  return state().fired;
}

void set_trace_path(std::string path) {
  std::lock_guard<std::mutex> lock(g_mutex);
  state().trace_path = std::move(path);
  rearm_flag_locked();
}

void set_marker_dir(std::string dir) {
  std::lock_guard<std::mutex> lock(g_mutex);
  state().marker_dir = std::move(dir);
}

Status install_from_env() {
  const char* inline_plan = std::getenv("DC_FAULT_PLAN");
  const char* plan_file = std::getenv("DC_FAULT_PLAN_FILE");
  const char* trace = std::getenv("DC_FAULT_TRACE");
  const char* markers = std::getenv("DC_FAULT_ONCE_DIR");
  if (inline_plan != nullptr && plan_file != nullptr) {
    return Status::invalid_argument(
        "both DC_FAULT_PLAN and DC_FAULT_PLAN_FILE are set; pick one");
  }
  std::string text;
  if (inline_plan != nullptr) {
    text = inline_plan;
  } else if (plan_file != nullptr) {
    // Read raw: the plan file is drill input, not a hooked artifact.
    std::FILE* f = std::fopen(plan_file, "rb");  // dc-rawio: drill input channel, outside the injected surface
    if (f == nullptr) {
      return Status::not_found(std::string("cannot read DC_FAULT_PLAN_FILE '") +
                               plan_file + "'");
    }
    char buf[4096];
    std::size_t n = 0;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
      text.append(buf, n);
    }
    std::fclose(f);
  }
  if (!text.empty()) {
    auto plan = parse_fault_plan(text);
    if (!plan.is_ok()) return plan.status();
    install_plan(std::move(*plan));
  }
  if (trace != nullptr && trace[0] != '\0') set_trace_path(trace);
  if (markers != nullptr && markers[0] != '\0') set_marker_dir(markers);
  return Status::ok();
}

SiteScope::SiteScope(std::string_view site) {
  t_site_stack.emplace_back(site);
}

SiteScope::~SiteScope() { t_site_stack.pop_back(); }

std::string_view current_site() {
  if (t_site_stack.empty()) return {};
  return t_site_stack.back();
}

#ifndef _WIN32

int xopen(const char* path, int flags, int mode) {
  if (g_armed.load(std::memory_order_relaxed)) {
    std::lock_guard<std::mutex> lock(g_mutex);
    const FaultRule* rule = consult_locked(Op::kOpen, path);
    if (rule != nullptr) {
      switch (rule->kind) {
        case FaultKind::kCrashBefore: crash_now();
        case FaultKind::kCrashAfter: {
          const int fd = ::open(path, flags, static_cast<mode_t>(mode));
          (void)fd;
          crash_now();
        }
        default:
          errno = rule->error != 0 ? rule->error : EIO;
          return -1;
      }
    }
    const int fd = ::open(path, flags, static_cast<mode_t>(mode));
    if (fd >= 0) state().fd_paths[fd] = path;
    return fd;
  }
  return ::open(path, flags, static_cast<mode_t>(mode));
}

long xwrite(int fd, const void* buf, std::size_t count) {
  if (g_armed.load(std::memory_order_relaxed)) {
    std::lock_guard<std::mutex> lock(g_mutex);
    const FaultRule* rule = consult_locked(Op::kWrite, fd_path_locked(fd));
    if (rule != nullptr) {
      switch (rule->kind) {
        case FaultKind::kShort: {
          const std::size_t n =
              rule->bytes < count ? static_cast<std::size_t>(rule->bytes) : count;
          return ::write(fd, buf, n);
        }
        case FaultKind::kTorn: {
          const std::size_t n =
              rule->bytes < count ? static_cast<std::size_t>(rule->bytes) : count;
          (void)!::write(fd, buf, n);
          crash_now();
        }
        case FaultKind::kCrashBefore: crash_now();
        case FaultKind::kCrashAfter: {
          (void)!::write(fd, buf, count);
          crash_now();
        }
        case FaultKind::kTruncate: {
          const ::ssize_t n = ::write(fd, buf, count);
          if (n >= 0) (void)!::ftruncate(fd, static_cast<off_t>(rule->bytes));
          return n;
        }
        case FaultKind::kErrno:
          errno = rule->error != 0 ? rule->error : EIO;
          return -1;
      }
    }
  }
  return ::write(fd, buf, count);
}

int xfsync(int fd) {
  if (g_armed.load(std::memory_order_relaxed)) {
    std::lock_guard<std::mutex> lock(g_mutex);
    const FaultRule* rule = consult_locked(Op::kFsync, fd_path_locked(fd));
    if (rule != nullptr) {
      switch (rule->kind) {
        case FaultKind::kCrashBefore: crash_now();
        case FaultKind::kCrashAfter: {
          (void)::fsync(fd);
          crash_now();
        }
        default:
          errno = rule->error != 0 ? rule->error : EIO;
          return -1;
      }
    }
  }
  return ::fsync(fd);
}

int xrename(const char* from, const char* to) {
  if (g_armed.load(std::memory_order_relaxed)) {
    std::lock_guard<std::mutex> lock(g_mutex);
    const FaultRule* rule =
        consult_locked(Op::kRename, std::string(from) + " -> " + to);
    if (rule != nullptr) {
      switch (rule->kind) {
        case FaultKind::kCrashBefore: crash_now();  // torn: tmp exists, target stale
        case FaultKind::kCrashAfter: {
          (void)::rename(from, to);  // renamed, directory never synced
          crash_now();
        }
        case FaultKind::kTruncate: {
          const int rc = ::rename(from, to);
          if (rc == 0) (void)::truncate(to, static_cast<off_t>(rule->bytes));
          return rc;
        }
        default:
          errno = rule->error != 0 ? rule->error : EIO;
          return -1;
      }
    }
  }
  return ::rename(from, to);
}

int xclose(int fd) {
  if (g_armed.load(std::memory_order_relaxed)) {
    std::lock_guard<std::mutex> lock(g_mutex);
    const FaultRule* rule = consult_locked(Op::kClose, fd_path_locked(fd));
    state().fd_paths.erase(fd);
    if (rule != nullptr) {
      switch (rule->kind) {
        case FaultKind::kCrashBefore: crash_now();
        case FaultKind::kCrashAfter: {
          (void)::close(fd);
          crash_now();
        }
        default:
          // The fd is gone either way (close failing still closes on
          // Linux); report the injected error.
          (void)::close(fd);
          errno = rule->error != 0 ? rule->error : EIO;
          return -1;
      }
    }
  }
  return ::close(fd);
}

#else  // _WIN32: no injection; fsio takes its portable fallback path.

int xopen(const char*, int, int) { return -1; }
long xwrite(int, const void*, std::size_t) { return -1; }
int xfsync(int) { return -1; }
int xrename(const char* from, const char* to) {
  return std::rename(from, to);
}
int xclose(int) { return -1; }

#endif

}  // namespace dc::faultfs
