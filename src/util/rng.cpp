#include "util/rng.hpp"

#include <cassert>
#include <numbers>

namespace dc {

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const std::uint64_t range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) {  // full 64-bit range
    return static_cast<std::int64_t>((*this)());
  }
  // Lemire's nearly-divisionless unbiased bounded sampling.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * range;
  auto low = static_cast<std::uint64_t>(m);
  if (low < range) {
    const std::uint64_t threshold = (0ULL - range) % range;
    while (low < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * range;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return lo + static_cast<std::int64_t>(m >> 64);
}

double Rng::exponential(double mean) {
  assert(mean > 0.0);
  double u = uniform();
  // Guard against log(0); uniform() < 1 so 1-u > 0.
  return -mean * std::log1p(-u);
}

double Rng::lognormal_mean_cv(double mean, double cv) {
  assert(mean > 0.0 && cv >= 0.0);
  if (cv == 0.0) return mean;
  const double sigma2 = std::log1p(cv * cv);
  const double mu = std::log(mean) - 0.5 * sigma2;
  return std::exp(mu + std::sqrt(sigma2) * normal());
}

double Rng::normal() {
  // Box–Muller; draw u1 in (0,1].
  const double u1 = 1.0 - uniform();
  const double u2 = uniform();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::bounded_pareto(double alpha, double lo, double hi) {
  assert(alpha > 0.0 && 0.0 < lo && lo < hi);
  const double u = uniform();
  const double la = std::pow(lo, alpha);
  const double ha = std::pow(hi, alpha);
  return std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha);
}

double Rng::hyperexponential(double p, double mean1, double mean2) {
  return bernoulli(p) ? exponential(mean1) : exponential(mean2);
}

std::size_t Rng::weighted_index(std::span<const double> weights) {
  assert(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    assert(w >= 0.0);
    total += w;
  }
  assert(total > 0.0);
  double target = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  return weights.size() - 1;  // numeric edge: fell off the end
}

std::vector<double> sample_nhpp(Rng& rng, double horizon, double max_rate,
                                const std::function<double(double)>& rate) {
  assert(horizon > 0.0 && max_rate > 0.0);
  std::vector<double> arrivals;
  double t = 0.0;
  while (true) {
    t += rng.exponential(1.0 / max_rate);
    if (t >= horizon) break;
    const double r = rate(t);
    assert(r <= max_rate * (1.0 + 1e-9) && "rate(t) exceeds declared max_rate");
    if (rng.uniform() * max_rate < r) arrivals.push_back(t);
  }
  return arrivals;
}

}  // namespace dc
