// Deterministic random number generation for reproducible experiments.
//
// Every experiment in the benchmark harness is seeded; re-running a bench
// binary reproduces the paper tables bit-for-bit. We implement
// xoshiro256** (public-domain, Blackman & Vigna) seeded via splitmix64
// rather than depending on the unspecified std::default_random_engine, and
// we provide explicit inverse-CDF / transform samplers so results do not
// depend on libstdc++'s distribution implementations either.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

namespace dc {

/// splitmix64: used to expand a single 64-bit seed into generator state.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: fast, high-quality, 256-bit state PRNG.
/// Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eed5eed5eed5eedULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& word : state_) word = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1). Uses the top 53 bits.
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [lo, hi] inclusive (lo <= hi). Unbiased via
  /// Lemire's rejection method.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Exponential with the given mean (> 0).
  double exponential(double mean);

  /// Lognormal parameterized by the *target* mean and coefficient of
  /// variation (cv = stddev/mean) of the resulting distribution — far more
  /// convenient for trace calibration than (mu, sigma).
  double lognormal_mean_cv(double mean, double cv);

  /// Standard normal via Box–Muller (one value per call, no caching so the
  /// stream is position-independent).
  double normal();

  /// Bounded Pareto on [lo, hi] with tail index alpha (> 0).
  double bounded_pareto(double alpha, double lo, double hi);

  /// Two-phase hyperexponential: with probability p draw Exp(mean1),
  /// otherwise Exp(mean2). Models the short-jobs/long-jobs mix in HTC traces.
  double hyperexponential(double p, double mean1, double mean2);

  /// True with probability p.
  bool bernoulli(double p) { return uniform() < p; }

  /// Index drawn from the (unnormalized, non-negative) weight vector.
  std::size_t weighted_index(std::span<const double> weights);

  /// Raw generator state, for snapshot/restore. `set_state` makes this
  /// generator continue the exact stream the saved generator would have
  /// produced.
  const std::array<std::uint64_t, 4>& state() const { return state_; }
  void set_state(const std::array<std::uint64_t, 4>& state) { state_ = state; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

/// Samples an arrival-time sequence from a non-homogeneous Poisson process
/// via thinning. `rate(t)` gives the instantaneous rate (arrivals/second) and
/// must be bounded above by `max_rate` on [0, horizon).
std::vector<double> sample_nhpp(Rng& rng, double horizon, double max_rate,
                                const std::function<double(double)>& rate);

}  // namespace dc
