#include "util/pidlock.hpp"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <utility>

#ifndef _WIN32
#include <fcntl.h>
#include <signal.h>
#include <unistd.h>
#endif

#include "util/faultfs.hpp"
#include "util/fsio.hpp"
#include "util/log.hpp"
#include "util/strings.hpp"

namespace dc {
namespace {

std::string errno_text() { return std::strerror(errno); }

#ifndef _WIN32
bool pid_is_live(long long pid) {
  return ::kill(static_cast<pid_t>(pid), 0) == 0 || errno == EPERM;
}
#endif

/// Parses a lease stamp. v2 format is "pid <pid>\nstart <ticks>\n"; the
/// legacy format is a bare decimal pid. Returns false when nothing that
/// looks like a pid could be recovered (corrupt lease).
bool parse_lease_stamp(const std::string& stamp, long long& pid,
                       long long& start, bool& have_start) {
  pid = 0;
  start = -1;
  have_start = false;
  if (stamp.rfind("pid ", 0) == 0) {
    pid = std::strtoll(stamp.c_str() + 4, nullptr, 10);
    const std::size_t at = stamp.find("\nstart ");
    if (at != std::string::npos) {
      start = std::strtoll(stamp.c_str() + at + 7, nullptr, 10);
      have_start = true;
    }
    return pid > 0;
  }
  // Legacy bare-pid lease (pre start-tick identity).
  pid = std::strtoll(stamp.c_str(), nullptr, 10);
  return pid > 0;
}

}  // namespace

long long process_start_ticks(long long pid) {
#ifndef _WIN32
  if (pid <= 0) return -1;
  auto stat = read_file(str_format("/proc/%lld/stat", pid));
  if (!stat.is_ok()) return -1;
  // Field 2 (comm) may itself contain spaces and parentheses, so fields
  // are only space-delimited after the LAST ')'. starttime is field 22,
  // i.e. the 20th space-separated token after the comm.
  const std::size_t close = stat->rfind(')');
  if (close == std::string::npos) return -1;
  int field = 2;  // the token after ')' is field 3 (state)
  std::size_t i = close + 1;
  while (i < stat->size()) {
    while (i < stat->size() && stat->at(i) == ' ') ++i;
    const std::size_t start = i;
    while (i < stat->size() && stat->at(i) != ' ' && stat->at(i) != '\n') ++i;
    if (i == start) break;
    if (++field == 22) {
      return std::strtoll(stat->c_str() + start, nullptr, 10);
    }
  }
  return -1;
#else
  (void)pid;
  return -1;
#endif
}

StatusOr<PidLease> PidLease::acquire(const std::string& path,
                                     const Wording& wording) {
#ifndef _WIN32
  faultfs::SiteScope site(wording.site);
  for (int attempt = 0; attempt < 2; ++attempt) {
    const int fd =
        faultfs::xopen(path.c_str(), O_WRONLY | O_CREAT | O_EXCL, 0644);
    if (fd >= 0) {
      const long long pid = static_cast<long long>(::getpid());
      const std::string stamp = str_format("pid %lld\nstart %lld\n", pid,
                                           process_start_ticks(pid));
      std::size_t written = 0;
      while (written < stamp.size()) {
        const long n = faultfs::xwrite(fd, stamp.data() + written,
                                       stamp.size() - written);
        if (n < 0) {
          if (errno == EINTR) continue;
          // Cleanup of our own partial lease; never fault-injected.
          ::close(fd);
          ::unlink(path.c_str());
          return Status::internal("pid lease: write to '" + path +
                                  "' failed: " + errno_text());
        }
        written += static_cast<std::size_t>(n);
      }
      if (faultfs::xfsync(fd) != 0) {
        ::close(fd);
        ::unlink(path.c_str());
        return Status::internal("pid lease: fsync of '" + path +
                                "' failed: " + errno_text());
      }
      ::close(fd);
      return PidLease(path);
    }
    if (errno != EEXIST) {
      return Status::internal("pid lease: cannot create '" + path +
                              "': " + errno_text());
    }
    // Somebody holds (or held) the lease. Only a live pid whose start
    // tick matches the recorded one is a concurrent holder; a dead pid,
    // a recycled pid, or an unreadable stamp is a stale lease.
    auto stamp = read_file(path);
    long long pid = 0;
    long long recorded_start = -1;
    bool have_start = false;
    const bool parsed =
        stamp.is_ok() &&
        parse_lease_stamp(*stamp, pid, recorded_start, have_start);
    if (parsed && pid_is_live(pid)) {
      // Legacy bare-pid leases carry no start tick: fall back to treating
      // any live pid as the holder, exactly as before.
      if (!have_start || recorded_start == process_start_ticks(pid)) {
        return Status::failed_precondition(
            str_format("%s live pid %lld (lock '%s'); %s",
                       wording.busy_prefix.c_str(), pid, path.c_str(),
                       wording.busy_suffix.c_str()));
      }
      Log::raw(LogLevel::kWarn,
               "pid lease '%s': recorded pid %lld is alive but its start "
               "tick differs (pid was recycled by an unrelated process); "
               "breaking stale lease",
               path.c_str(), pid);
    } else if (!parsed) {
      Log::raw(LogLevel::kWarn,
               "pid lease '%s': lease contents are unreadable or corrupt; "
               "treating as stale and breaking it",
               path.c_str());
    } else {
      Log::raw(LogLevel::kWarn,
               "pid lease '%s': breaking stale lease of dead pid %lld",
               path.c_str(), pid);
    }
    ::unlink(path.c_str());
  }
  return Status::internal("pid lease: could not acquire '" + path +
                          "' after breaking a stale lease");
#else
  (void)path;
  (void)wording;
  return Status::internal("pid lease: POSIX-only");
#endif
}

PidLease::PidLease(PidLease&& other) noexcept : path_(std::move(other.path_)) {
  other.path_.clear();
}

PidLease& PidLease::operator=(PidLease&& other) noexcept {
  if (this != &other) {
    if (!path_.empty()) {
#ifndef _WIN32
      ::unlink(path_.c_str());
#endif
    }
    path_ = std::move(other.path_);
    other.path_.clear();
  }
  return *this;
}

PidLease::~PidLease() {
#ifndef _WIN32
  if (!path_.empty()) ::unlink(path_.c_str());
#endif
}

}  // namespace dc
