// Small string utilities used by the SWF / workflow parsers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "util/status.hpp"

namespace dc {

/// Splits on any run of the given delimiter characters; no empty tokens.
std::vector<std::string_view> split_ws(std::string_view text,
                                       std::string_view delims = " \t\r\n");

/// Splits on a single delimiter character, keeping empty fields.
std::vector<std::string_view> split_char(std::string_view text, char delim);

/// Trims ASCII whitespace from both ends.
std::string_view trim(std::string_view text);

bool starts_with(std::string_view text, std::string_view prefix);

/// Strict integer parse of the whole token.
StatusOr<std::int64_t> parse_int(std::string_view token);

/// Strict floating-point parse of the whole token.
StatusOr<double> parse_double(std::string_view token);

/// Joins tokens with a separator.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// printf-style formatting into a std::string.
std::string str_format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace dc
