#include "util/fsio.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>

#ifndef _WIN32
#include <fcntl.h>
#include <unistd.h>
#endif

#include "util/faultfs.hpp"
#include "util/strings.hpp"

namespace dc {
namespace {

#ifndef _WIN32

std::string errno_text() { return std::strerror(errno); }

Status fail_and_unlink(const std::string& tmp, int fd, std::string message) {
  // Cleanup is raw on purpose: the faultfs layer never injects into the
  // unlink that restores the zero-debris invariant after a failed write.
  if (fd >= 0) ::close(fd);
  ::unlink(tmp.c_str());
  return Status::internal(std::move(message));
}

/// fsync the directory containing `path` so the rename itself is durable.
Status sync_parent_dir(const std::string& path) {
  const std::size_t slash = path.rfind('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  const int dirfd = ::open(dir.empty() ? "/" : dir.c_str(),
                           O_RDONLY | O_DIRECTORY);
  if (dirfd < 0) {
    return Status::internal("cannot open directory '" + dir +
                            "' for fsync: " + errno_text());
  }
  // Some filesystems refuse fsync on directory fds (EINVAL); the rename
  // is still atomic there, so only real I/O errors are fatal.
  if (faultfs::xfsync(dirfd) != 0 && errno != EINVAL && errno != ENOSYS) {
    const std::string message =
        "fsync of directory '" + dir + "' failed: " + errno_text();
    ::close(dirfd);
    return Status::internal(message);
  }
  ::close(dirfd);
  return Status::ok();
}

#endif  // !_WIN32

}  // namespace

Status atomic_write_file(const std::string& path, std::string_view bytes,
                         std::string_view site) {
  std::optional<faultfs::SiteScope> scope;
  if (!site.empty()) scope.emplace(site);
  const std::string tmp = path + ".tmp";
#ifndef _WIN32
  const int fd = faultfs::xopen(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::internal("cannot open '" + tmp +
                            "' for writing: " + errno_text());
  }
  std::size_t written = 0;
  while (written < bytes.size()) {
    const long n =
        faultfs::xwrite(fd, bytes.data() + written, bytes.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return fail_and_unlink(tmp, fd,
                             "short write to '" + tmp + "': " + errno_text());
    }
    written += static_cast<std::size_t>(n);
  }
  if (faultfs::xfsync(fd) != 0) {
    return fail_and_unlink(tmp, fd,
                           "fsync of '" + tmp + "' failed: " + errno_text());
  }
  if (faultfs::xclose(fd) != 0) {
    return fail_and_unlink(tmp, -1,
                           "close of '" + tmp + "' failed: " + errno_text());
  }
  if (faultfs::xrename(tmp.c_str(), path.c_str()) != 0) {
    return fail_and_unlink(tmp, -1, "rename '" + tmp + "' -> '" + path +
                                        "' failed: " + errno_text());
  }
  return sync_parent_dir(path);
#else
  // Portable fallback: flush-then-rename without the fsync guarantees.
  {
    std::ofstream file(tmp, std::ios::binary | std::ios::trunc);
    if (!file) {
      return Status::internal("cannot open '" + tmp + "' for writing");
    }
    file.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    file.flush();
    if (!file) {
      std::remove(tmp.c_str());
      return Status::internal("short write to '" + tmp + "'");
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::internal("rename '" + tmp + "' -> '" + path + "' failed");
  }
  return Status::ok();
#endif
}

StatusOr<std::string> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::not_found("cannot read '" + path + "'");
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) {
    return Status::internal("I/O error reading '" + path + "'");
  }
  return buf.str();
}

}  // namespace dc
