// Minimal Status / StatusOr error-handling vocabulary.
//
// The simulator's hot paths are exception-free; parsing and I/O report
// recoverable failures through Status/StatusOr instead (Core Guidelines
// E.intro: use exceptions only for exceptional conditions; trace parsing of
// malformed archive files is an expected condition here).
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace dc {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kResourceExhausted,
  kInternal,
};

/// Human-readable name for a status code.
constexpr const char* status_code_name(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kOutOfRange: return "OUT_OF_RANGE";
    case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case StatusCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case StatusCode::kInternal: return "INTERNAL";
  }
  return "UNKNOWN";
}

/// A cheap, value-semantic result-of-an-operation type.
class [[nodiscard]] Status {
 public:
  Status() = default;  // OK
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status ok() { return Status(); }
  static Status invalid_argument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status not_found(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status out_of_range(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status failed_precondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status resource_exhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool is_ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string to_string() const {
    if (is_ok()) return "OK";
    return std::string(status_code_name(code_)) + ": " + message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Value-or-error. `value()` asserts on error in debug builds; check
/// `is_ok()` (or `status()`) first.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  StatusOr(T value) : value_(std::move(value)) {}                 // NOLINT(google-explicit-constructor)
  StatusOr(Status status) : status_(std::move(status)) {          // NOLINT(google-explicit-constructor)
    assert(!status_.is_ok() && "StatusOr constructed from OK status without a value");
  }

  bool is_ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(is_ok());
    return *value_;
  }
  T& value() & {
    assert(is_ok());
    return *value_;
  }
  T&& value() && {
    assert(is_ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::optional<T> value_;
  Status status_ = Status::internal("uninitialized StatusOr");
};

}  // namespace dc
