#include "util/csv.hpp"

#include <algorithm>
#include <cassert>

#include "util/strings.hpp"

namespace dc {
namespace {

bool needs_quoting(std::string_view text) {
  return text.find_first_of(",\"\n") != std::string_view::npos;
}

std::string quote(std::string_view text) {
  std::string out = "\"";
  for (char c : text) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

CsvWriter::CsvWriter(const std::string& path) : out_(path) {}

CsvWriter& CsvWriter::cell(std::string_view text) {
  if (row_started_) out_ << ',';
  out_ << (needs_quoting(text) ? quote(text) : std::string(text));
  row_started_ = true;
  return *this;
}

CsvWriter& CsvWriter::cell(std::int64_t value) {
  return cell(std::string_view(std::to_string(value)));
}

CsvWriter& CsvWriter::cell(double value, int precision) {
  return cell(std::string_view(str_format("%.*f", precision, value)));
}

void CsvWriter::end_row() {
  out_ << '\n';
  row_started_ = false;
}

void CsvWriter::header(const std::vector<std::string>& names) {
  for (const auto& name : names) cell(name);
  end_row();
}

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

TextTable& TextTable::cell(std::string_view text) {
  current_.push_back({std::string(text), /*numeric=*/false});
  return *this;
}

TextTable& TextTable::cell(std::int64_t value) {
  current_.push_back({std::to_string(value), /*numeric=*/true});
  return *this;
}

TextTable& TextTable::cell(double value, int precision) {
  current_.push_back({str_format("%.*f", precision, value), /*numeric=*/true});
  return *this;
}

void TextTable::end_row() {
  assert(current_.size() == header_.size() && "row width must match header");
  rows_.push_back(std::move(current_));
  current_.clear();
}

std::string TextTable::render(std::string_view title) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].text.size());
    }
  }

  std::string out;
  if (!title.empty()) {
    out.append(title);
    out.push_back('\n');
  }
  auto append_padded = [&](const std::string& text, std::size_t width,
                           bool right_align) {
    const std::size_t pad = width - text.size();
    if (right_align) out.append(pad, ' ');
    out.append(text);
    if (!right_align) out.append(pad, ' ');
  };
  for (std::size_t c = 0; c < header_.size(); ++c) {
    if (c > 0) out.append("  ");
    append_padded(header_[c], widths[c], /*right_align=*/false);
  }
  out.push_back('\n');
  std::size_t rule = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) rule += widths[c] + (c > 0 ? 2 : 0);
  out.append(rule, '-');
  out.push_back('\n');
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out.append("  ");
      append_padded(row[c].text, widths[c], row[c].numeric);
    }
    out.push_back('\n');
  }
  return out;
}

}  // namespace dc
