#include "util/csv.hpp"

#include <algorithm>
#include <cassert>
#include <iterator>

#include "util/strings.hpp"

namespace dc {
namespace {

bool needs_quoting(std::string_view text) {
  return text.find_first_of(",\"\n") != std::string_view::npos;
}

std::string quote(std::string_view text) {
  std::string out = "\"";
  for (char c : text) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

CsvWriter::CsvWriter(const std::string& path) : out_(path) {}

CsvWriter& CsvWriter::cell(std::string_view text) {
  if (row_started_) out_ << ',';
  out_ << (needs_quoting(text) ? quote(text) : std::string(text));
  row_started_ = true;
  return *this;
}

CsvWriter& CsvWriter::cell(std::int64_t value) {
  return cell(std::string_view(std::to_string(value)));
}

CsvWriter& CsvWriter::cell(double value, int precision) {
  return cell(std::string_view(str_format("%.*f", precision, value)));
}

void CsvWriter::end_row() {
  out_ << '\n';
  row_started_ = false;
}

void CsvWriter::header(const std::vector<std::string>& names) {
  for (const auto& name : names) cell(name);
  end_row();
}

namespace {

Status csv_error(std::size_t line, std::size_t column, const std::string& msg) {
  return Status::invalid_argument(str_format(
      "CSV parse error at line %zu, column %zu: %s", line, column, msg.c_str()));
}

}  // namespace

StatusOr<CsvRows> parse_csv(std::string_view text,
                            const CsvParseOptions& options) {
  CsvRows rows;
  std::vector<std::string> row;
  std::string field;
  // 1-based position of the *next* character to read, for error reports.
  std::size_t line = 1;
  std::size_t column = 1;
  std::size_t i = 0;
  const std::size_t n = text.size();
  // True once the current row has content: a field separator was seen or a
  // field (possibly empty, e.g. a quoted "") was started. Distinguishes a
  // trailing newline from an empty final row.
  bool row_started = false;

  auto end_field = [&] {
    row.push_back(std::move(field));
    field.clear();
  };
  auto end_row = [&]() -> Status {
    end_field();
    if (options.require_uniform_columns && !rows.empty() &&
        row.size() != rows.front().size()) {
      return csv_error(line, column,
                       str_format("row has %zu fields but the header row has "
                                  "%zu — truncated or garbled input",
                                  row.size(), rows.front().size()));
    }
    rows.push_back(std::move(row));
    row.clear();
    row_started = false;
    ++line;
    column = 1;
    return Status::ok();
  };

  while (i < n) {
    const char c = text[i];
    if (c == '\0') {
      return csv_error(line, column,
                       "embedded NUL byte — input is not text CSV");
    }
    if (c == '"') {
      if (!field.empty()) {
        return csv_error(line, column,
                         "quote character inside an unquoted field (quote "
                         "the whole field and double embedded quotes)");
      }
      const std::size_t open_line = line;
      const std::size_t open_column = column;
      ++i;
      ++column;
      row_started = true;
      bool closed = false;
      while (i < n) {
        const char q = text[i];
        if (q == '\0') {
          return csv_error(line, column,
                           "embedded NUL byte — input is not text CSV");
        }
        if (q == '"') {
          if (i + 1 < n && text[i + 1] == '"') {
            field += '"';  // "" escape
            i += 2;
            column += 2;
            continue;
          }
          ++i;
          ++column;
          closed = true;
          break;
        }
        if (q == '\n') {
          ++line;
          column = 1;
        } else {
          ++column;
        }
        field += q;
        ++i;
      }
      if (!closed) {
        return csv_error(open_line, open_column,
                         "unterminated quoted field (opening quote shown) — "
                         "file truncated mid-field?");
      }
      if (i < n && text[i] != ',' && text[i] != '\n' &&
          !(text[i] == '\r' && i + 1 < n && text[i + 1] == '\n')) {
        return csv_error(line, column,
                         str_format("unexpected character '%c' after closing "
                                    "quote (expected ',' or end of row)",
                                    text[i]));
      }
      continue;
    }
    if (c == ',') {
      end_field();
      row_started = true;
      ++i;
      ++column;
      continue;
    }
    if (c == '\n' || (c == '\r' && i + 1 < n && text[i + 1] == '\n')) {
      i += (c == '\r') ? 2 : 1;
      if (auto st = end_row(); !st.is_ok()) return st;
      continue;
    }
    field += c;
    row_started = true;
    ++i;
    ++column;
  }
  if (row_started || !field.empty() || !row.empty()) {
    if (auto st = end_row(); !st.is_ok()) return st;
  }
  return rows;
}

StatusOr<CsvRows> read_csv_file(const std::string& path,
                                const CsvParseOptions& options) {
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    return Status::not_found("cannot open CSV file '" + path + "'");
  }
  std::string contents((std::istreambuf_iterator<char>(file)),
                       std::istreambuf_iterator<char>());
  auto rows = parse_csv(contents, options);
  if (!rows.is_ok()) {
    return Status(rows.status().code(),
                  "'" + path + "': " + rows.status().message());
  }
  return rows;
}

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

TextTable& TextTable::cell(std::string_view text) {
  current_.push_back({std::string(text), /*numeric=*/false});
  return *this;
}

TextTable& TextTable::cell(std::int64_t value) {
  current_.push_back({std::to_string(value), /*numeric=*/true});
  return *this;
}

TextTable& TextTable::cell(double value, int precision) {
  current_.push_back({str_format("%.*f", precision, value), /*numeric=*/true});
  return *this;
}

void TextTable::end_row() {
  assert(current_.size() == header_.size() && "row width must match header");
  rows_.push_back(std::move(current_));
  current_.clear();
}

std::string TextTable::render(std::string_view title) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].text.size());
    }
  }

  std::string out;
  if (!title.empty()) {
    out.append(title);
    out.push_back('\n');
  }
  auto append_padded = [&](const std::string& text, std::size_t width,
                           bool right_align) {
    const std::size_t pad = width - text.size();
    if (right_align) out.append(pad, ' ');
    out.append(text);
    if (!right_align) out.append(pad, ' ');
  };
  for (std::size_t c = 0; c < header_.size(); ++c) {
    if (c > 0) out.append("  ");
    append_padded(header_[c], widths[c], /*right_align=*/false);
  }
  out.push_back('\n');
  std::size_t rule = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) rule += widths[c] + (c > 0 ? 2 : 0);
  out.append(rule, '-');
  out.push_back('\n');
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out.append("  ");
      append_padded(row[c].text, widths[c], row[c].numeric);
    }
    out.push_back('\n');
  }
  return out;
}

}  // namespace dc
