#include "util/log.hpp"

namespace dc {

LogLevel Log::level_ = LogLevel::kWarn;
std::FILE* Log::stream_ = stderr;
Log::Hook Log::hook_ = nullptr;
void* Log::hook_ctx_ = nullptr;

const char* Log::level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

void Log::write_line(LogLevel level, SimTime now, const char* component,
                     const std::string& message) {
  std::string line = "[" + format_time(now) + "] [" + level_name(level) +
                     "] [" + component + "] " + message + "\n";
  std::fwrite(line.data(), 1, line.size(), stream_);
  if (hook_ != nullptr) {
    hook_(hook_ctx_, level, now, component, message.c_str());
  }
}

}  // namespace dc
