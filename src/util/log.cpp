#include "util/log.hpp"

namespace dc {

LogLevel Log::level_ = LogLevel::kWarn;
std::FILE* Log::stream_ = stderr;

const char* Log::level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

}  // namespace dc
