// Simulation time primitives.
//
// All simulation clocks in DawningCloud are integer seconds (SimTime).
// The paper's billing quantum is one hour (Section 4.4: "we set a quite long
// time unit: one hour to decrease the management overhead"), so hour
// arithmetic helpers live here too.
#pragma once

#include <cstdint>
#include <string>

namespace dc {

/// Simulation time in whole seconds since the start of the experiment.
using SimTime = std::int64_t;

/// A duration in whole seconds.
using SimDuration = std::int64_t;

inline constexpr SimDuration kSecond = 1;
inline constexpr SimDuration kMinute = 60;
inline constexpr SimDuration kHour = 3600;
inline constexpr SimDuration kDay = 24 * kHour;
inline constexpr SimDuration kWeek = 7 * kDay;

/// Sentinel for "no time" / unset timestamps.
inline constexpr SimTime kNever = -1;

/// Ceiling division for non-negative integers; used for billing quanta.
constexpr std::int64_t ceil_div(std::int64_t numerator, std::int64_t denominator) {
  return (numerator + denominator - 1) / denominator;
}

/// Number of whole billing hours covering `duration` seconds (minimum 0).
/// A zero-length lease is billed zero hours; any positive duration rounds up.
constexpr std::int64_t billed_hours(SimDuration duration) {
  return duration <= 0 ? 0 : ceil_div(duration, kHour);
}

/// Converts seconds to fractional hours (for exact, non-quantized integrals).
constexpr double to_hours(SimDuration duration) {
  return static_cast<double>(duration) / static_cast<double>(kHour);
}

/// Formats a sim time as "Dd HH:MM:SS" for logs and reports.
inline std::string format_time(SimTime t) {
  const bool neg = t < 0;
  if (neg) t = -t;
  const std::int64_t days = t / kDay;
  const std::int64_t hours = (t % kDay) / kHour;
  const std::int64_t minutes = (t % kHour) / kMinute;
  const std::int64_t seconds = t % kMinute;
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%s%lldd %02lld:%02lld:%02lld", neg ? "-" : "",
                static_cast<long long>(days), static_cast<long long>(hours),
                static_cast<long long>(minutes), static_cast<long long>(seconds));
  return buf;
}

}  // namespace dc
