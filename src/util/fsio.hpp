// Crash-consistent file primitives shared by the snapshot writer and the
// campaign orchestrator (docs/SNAPSHOT.md, docs/SWEEP.md).
//
// The durability contract of atomic_write_file is the full POSIX
// tmp-fsync-rename-fsync dance, not just the rename:
//
//  1. the bytes land in `path + ".tmp"`;
//  2. the temp file is fsync'd *before* the rename — otherwise a crash
//     after the rename but before writeback can leave the final name
//     pointing at a zero-length or partial inode;
//  3. rename(tmp, path) — atomic replacement within one filesystem;
//  4. the containing directory is fsync'd *after* the rename, so the
//     directory entry itself survives a power cut.
//
// On every failure path the temp file is unlinked, so an interrupted or
// failed write never litters the directory with stale `.tmp` files, and
// a pre-existing `path` is left untouched.
//
// Every primitive inside atomic_write_file goes through the util/faultfs
// seam (docs/ROBUSTNESS.md): under an installed fault plan the open,
// each write, the fsyncs, the close, and the rename can individually
// fail, short-write, or crash the process, and tools/io_drill verifies
// the contract above actually holds at every such point. The `site`
// argument names the I/O site for fault addressing and enumeration
// ("snapshot.save", "campaign.results.csv", ...).
#pragma once

#include <string>
#include <string_view>

#include "util/status.hpp"

namespace dc {

/// Atomically replaces `path` with `bytes` (see the contract above).
/// The destination directory must exist; atomic_write_file never creates
/// directories. Readers see either the previous complete contents or the
/// new complete contents, never a mix and never a partial file.
/// `site` names the durable-write site for faultfs addressing; callers
/// already inside a faultfs::SiteScope may omit it.
Status atomic_write_file(const std::string& path, std::string_view bytes,
                         std::string_view site = {});

/// Reads a whole file into a string. NotFound when the file does not
/// exist; other I/O failures come back as internal errors.
StatusOr<std::string> read_file(const std::string& path);

}  // namespace dc
