#include "util/strings.hpp"

#include <cerrno>
#include <cstdarg>
#include <cstdlib>
#include <cstring>

namespace dc {

std::vector<std::string_view> split_ws(std::string_view text,
                                       std::string_view delims) {
  std::vector<std::string_view> out;
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t start = text.find_first_not_of(delims, pos);
    if (start == std::string_view::npos) break;
    std::size_t end = text.find_first_of(delims, start);
    if (end == std::string_view::npos) end = text.size();
    out.push_back(text.substr(start, end - start));
    pos = end;
  }
  return out;
}

std::vector<std::string_view> split_char(std::string_view text, char delim) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t end = text.find(delim, start);
    if (end == std::string_view::npos) {
      out.push_back(text.substr(start));
      break;
    }
    out.push_back(text.substr(start, end - start));
    start = end + 1;
  }
  return out;
}

std::string_view trim(std::string_view text) {
  const std::size_t begin = text.find_first_not_of(" \t\r\n");
  if (begin == std::string_view::npos) return {};
  const std::size_t end = text.find_last_not_of(" \t\r\n");
  return text.substr(begin, end - begin + 1);
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.substr(0, prefix.size()) == prefix;
}

StatusOr<std::int64_t> parse_int(std::string_view token) {
  if (token.empty()) return Status::invalid_argument("empty integer token");
  char buf[32];
  if (token.size() >= sizeof(buf)) {
    return Status::invalid_argument("integer token too long: " + std::string(token));
  }
  std::memcpy(buf, token.data(), token.size());
  buf[token.size()] = '\0';
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(buf, &end, 10);
  if (errno == ERANGE) {
    return Status::out_of_range("integer out of range: " + std::string(token));
  }
  if (end != buf + token.size()) {
    return Status::invalid_argument("not an integer: " + std::string(token));
  }
  return static_cast<std::int64_t>(value);
}

StatusOr<double> parse_double(std::string_view token) {
  if (token.empty()) return Status::invalid_argument("empty float token");
  char buf[64];
  if (token.size() >= sizeof(buf)) {
    return Status::invalid_argument("float token too long: " + std::string(token));
  }
  std::memcpy(buf, token.data(), token.size());
  buf[token.size()] = '\0';
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(buf, &end);
  if (errno == ERANGE) {
    return Status::out_of_range("float out of range: " + std::string(token));
  }
  if (end != buf + token.size()) {
    return Status::invalid_argument("not a float: " + std::string(token));
  }
  return value;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string str_format(const char* fmt, ...) {
  std::va_list args;
  va_start(args, fmt);
  std::va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace dc
