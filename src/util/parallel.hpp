// Thread-parallel sweep execution.
//
// Experiments are pure functions of their inputs and each owns its
// Simulator, so parameter sweeps (Figures 9-11, the tuner's grids, the
// robustness studies) are embarrassingly parallel. parallel_for_index
// partitions [0, count) over a persistent worker pool; results are written
// by index, so output ordering — and therefore every CSV and table — is
// identical to the sequential run.
//
// Pool model (see docs/ARCHITECTURE.md, "Threading model"): workers are
// spawned lazily on the first parallel call and reused for every
// subsequent sweep — no thread spawn/join cost per call. Indices are
// claimed in contiguous chunks from a shared atomic cursor; the calling
// thread participates in its own job, so a sweep completes even with zero
// pool workers (DC_THREADS=1) and nested parallel calls degrade to inline
// execution instead of deadlocking.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

namespace dc {

/// Number of worker threads to use: DC_THREADS env var if set to a valid
/// positive integer, otherwise the hardware concurrency (min 1). A
/// malformed or non-positive DC_THREADS is rejected with a dc::Log warning
/// rather than silently misread.
std::size_t default_thread_count();

/// Wall-clock accounting for sweep-pool work, fed to the kernel
/// self-profiler (obs::PhaseProfiler::absorb_sweep). Atomic because pool
/// workers accumulate concurrently; purely observational, so it never
/// affects sweep results.
struct SweepStats {
  std::atomic<std::uint64_t> chunks{0};    // contiguous index chunks claimed
  std::atomic<std::uint64_t> indices{0};   // total indices executed
  std::atomic<std::uint64_t> busy_ns{0};   // wall time inside callbacks
};

/// Installs (or with nullptr removes) the process-wide sweep stats
/// collector. Install before launching sweeps and read after they drain;
/// when no collector is installed the pool takes no timestamps at all.
void set_sweep_stats(SweepStats* stats);

/// Invokes fn(i) for every i in [0, count), distributing indices over
/// `threads` workers (0 = default_thread_count()). fn must be safe to call
/// concurrently for distinct i. Runs inline when count <= 1, one thread,
/// or when called from inside another parallel_for_index.
void parallel_for_index(std::size_t count,
                        const std::function<void(std::size_t)>& fn,
                        std::size_t threads = 0);

/// Maps fn over [0, count) into a vector, in parallel, preserving order.
template <typename T, typename Fn>
std::vector<T> parallel_map_index(std::size_t count, Fn&& fn,
                                  std::size_t threads = 0) {
  std::vector<T> results(count);
  parallel_for_index(
      count, [&](std::size_t i) { results[i] = fn(i); }, threads);
  return results;
}

}  // namespace dc
