// Deterministic environment-fault injection behind util/fsio (see
// docs/ROBUSTNESS.md).
//
// Every durable-write path in the toolchain — snapshot save, campaign
// journal append, campaign lock, cell results, merged results, metrics
// and trace exports — funnels through a small set of hooked POSIX
// primitives (xopen/xwrite/xfsync/xrename/xclose) inside a *named I/O
// site* (SiteScope). With no plan installed the hooks are passthrough
// (one relaxed atomic load); with a plan installed they consult a
// declarative list of fault rules and misbehave exactly like a hostile
// host would:
//
//   fault=eio / fault=enospc   the Nth matching op fails with that errno
//   fault=short bytes=K        the Nth write writes only K bytes and
//                              reports K (exercises caller retry loops)
//   fault=torn bytes=K         the Nth write writes K bytes then the
//                              process dies (torn artifact on disk)
//   fault=crash                the process dies *before* the Nth op
//   fault=crash-after          the process dies *after* the Nth op
//                              (e.g. rename done, directory not synced)
//   fault=trunc bytes=K        the Nth op succeeds, then the destination
//                              file is truncated to K bytes (writeback
//                              loss after an apparently successful write)
//
// Determinism is by construction, not by seed: plans address operations
// by (site, op, nth) counters, and every toolchain run is already
// deterministic, so "the 3rd journal append write" is the same byte in
// every execution. There is deliberately no RNG in this layer — a fault
// drill that cannot be replayed is a fault drill that cannot be debugged.
//
// Plans are selected per process via DC_FAULT_PLAN (inline rules,
// ';'-separated) or DC_FAULT_PLAN_FILE, and via --fault-plan on the CLI.
// DC_FAULT_TRACE=<path> appends one line per hooked operation
// ("HIT <site> <op> <path>", plus "FIRED <site> <op> <fault>" when a rule
// triggers) — the enumeration channel tools/io_drill uses to discover
// every I/O site a run reaches. Rules marked `once` disarm across process
// boundaries through marker files in DC_FAULT_ONCE_DIR, so a retried
// campaign worker survives the retry (a transient host fault, not a
// poisoned cell).
//
// Cleanup paths (the unlink of a temp file after a failed write) are
// intentionally NOT hooked: the zero-debris invariant io_drill verifies
// would be vacuous if the injector could also veto the cleanup.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.hpp"

namespace dc::faultfs {

/// Hooked primitive operations, in the order a durable write performs
/// them: open, write(s), fsync, close, rename, directory fsync.
enum class Op : std::uint8_t { kOpen, kWrite, kFsync, kRename, kClose };

const char* op_name(Op op);
StatusOr<Op> parse_op(std::string_view text);

enum class FaultKind : std::uint8_t {
  kErrno,       // fail the op with `error`
  kShort,       // write: report only `bytes` bytes written
  kTorn,        // write: land `bytes` bytes, then die
  kCrashBefore, // die before performing the op
  kCrashAfter,  // perform the op, then die
  kTruncate,    // perform the op, then truncate the destination to `bytes`
};

const char* fault_kind_name(FaultKind kind);

/// Exit code of injected crashes (kTorn/kCrashBefore/kCrashAfter) — raw
/// _exit, no atexit flushing, so a "crash" is as abrupt as a SIGKILL
/// while still being distinguishable from one in a parent's wstatus.
inline constexpr int kCrashExitCode = 86;

/// One declarative rule: at the `nth` occurrence of `op` inside a site
/// matching `site` ("*" matches everything; a trailing '*' is a prefix
/// match), inject `kind`.
struct FaultRule {
  std::string site = "*";
  Op op = Op::kWrite;
  std::uint64_t nth = 1;  // 1-based; 0 = every occurrence
  FaultKind kind = FaultKind::kErrno;
  int error = 0;             // errno for kErrno (EIO, ENOSPC, ...)
  std::uint64_t bytes = 0;   // kShort / kTorn / kTruncate payload size
  bool once = false;         // disarm across processes via a marker file
};

struct FaultPlan {
  std::vector<FaultRule> rules;
};

/// Parses the line-oriented plan syntax (';' also separates rules, so a
/// whole plan fits in one environment variable):
///
///   # fail the first fsync of every snapshot save with ENOSPC
///   site=snapshot.save op=fsync nth=1 fault=enospc
///   site=campaign.journal.append op=write nth=2 fault=torn bytes=5 once
///
/// Unknown keys, unknown ops/faults, and malformed counts are reported
/// with the offending rule text.
StatusOr<FaultPlan> parse_fault_plan(std::string_view text);

/// Installs `plan` for this process (replacing any active plan) and
/// resets all match counters. Forked children inherit the installed plan.
void install_plan(FaultPlan plan);

/// Removes the active plan and disables tracing.
void reset();

bool plan_active();

/// Total rules fired so far in this process.
std::uint64_t fired_total();

/// Appends "HIT <site> <op> <path>" per hooked op (and "FIRED ..." per
/// injection) to `path`; empty disables. Lines are single raw O_APPEND
/// writes, so concurrent processes sharing one trace file interleave
/// whole lines.
void set_trace_path(std::string path);

/// Directory for `once` rule marker files (created on first fire).
void set_marker_dir(std::string dir);

/// Reads DC_FAULT_PLAN / DC_FAULT_PLAN_FILE / DC_FAULT_TRACE /
/// DC_FAULT_ONCE_DIR and installs accordingly. OK (and a no-op) when the
/// environment selects nothing.
Status install_from_env();

/// Names the I/O site for every hooked primitive reached in this scope
/// (thread-local, nestable; the innermost scope wins).
class SiteScope {
 public:
  explicit SiteScope(std::string_view site);
  SiteScope(const SiteScope&) = delete;
  SiteScope& operator=(const SiteScope&) = delete;
  ~SiteScope();
};

/// The innermost active site name, or "" outside any scope.
std::string_view current_site();

// Hooked primitives. Signatures mirror POSIX (mode is int to keep
// <sys/stat.h> out of this header); on non-POSIX builds they degrade to
// the std fallbacks with no injection.
int xopen(const char* path, int flags, int mode);
long xwrite(int fd, const void* buf, std::size_t count);
int xfsync(int fd);
int xrename(const char* from, const char* to);
int xclose(int fd);

}  // namespace dc::faultfs
