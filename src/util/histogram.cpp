#include "util/histogram.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "util/strings.hpp"

namespace dc {

void RunningStats::add(double x) {
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::cv() const {
  const double m = mean();
  return m == 0.0 ? 0.0 : stddev() / m;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  assert(lo < hi && bins > 0);
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    ++counts_.front();
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    ++counts_.back();
    return;
  }
  const double span = hi_ - lo_;
  auto idx = static_cast<std::size_t>((x - lo_) / span *
                                      static_cast<double>(counts_.size()));
  idx = std::min(idx, counts_.size() - 1);
  ++counts_[idx];
}

double Histogram::bin_lo(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                   static_cast<double>(counts_.size());
}

double Histogram::bin_hi(std::size_t i) const { return bin_lo(i + 1); }

double Histogram::quantile(double p) const {
  if (total_ == 0) return lo_;
  p = std::clamp(p, 0.0, 1.0);
  const double target = p * static_cast<double>(total_);
  double cumulative = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto count = static_cast<double>(counts_[i]);
    if (cumulative + count >= target && count > 0.0) {
      const double fraction = std::clamp((target - cumulative) / count, 0.0, 1.0);
      return bin_lo(i) + fraction * (bin_hi(i) - bin_lo(i));
    }
    cumulative += count;
  }
  // p == 1 with trailing empty bins, or pure rounding residue.
  return hi_;
}

std::string Histogram::render(std::size_t max_bar_width) const {
  std::int64_t max_count = 1;
  for (auto c : counts_) max_count = std::max(max_count, c);
  std::string out;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto width = static_cast<std::size_t>(
        static_cast<double>(counts_[i]) / static_cast<double>(max_count) *
        static_cast<double>(max_bar_width));
    out += str_format("[%12.2f, %12.2f) %8lld ", bin_lo(i), bin_hi(i),
                      static_cast<long long>(counts_[i]));
    out.append(width, '#');
    out.push_back('\n');
  }
  return out;
}

}  // namespace dc
