#include "util/ascii_chart.hpp"

#include <algorithm>
#include <cmath>

#include "util/strings.hpp"

namespace dc {
namespace {

constexpr char kGlyphs[] = {'*', '+', 'o', 'x', '#', '@'};

/// Resamples values to exactly `width` buckets by averaging.
std::vector<double> resample(const std::vector<double>& values,
                             std::size_t width) {
  std::vector<double> out(width, 0.0);
  if (values.empty() || width == 0) return out;
  for (std::size_t c = 0; c < width; ++c) {
    const double begin = static_cast<double>(c) *
                         static_cast<double>(values.size()) /
                         static_cast<double>(width);
    double end = static_cast<double>(c + 1) *
                 static_cast<double>(values.size()) /
                 static_cast<double>(width);
    auto lo = static_cast<std::size_t>(begin);
    auto hi = static_cast<std::size_t>(std::ceil(end));
    hi = std::min(hi, values.size());
    if (hi <= lo) hi = lo + 1;
    double sum = 0.0;
    for (std::size_t i = lo; i < hi && i < values.size(); ++i) sum += values[i];
    out[c] = sum / static_cast<double>(hi - lo);
  }
  return out;
}

}  // namespace

std::string render_chart(const std::vector<ChartSeries>& series,
                         const ChartOptions& options) {
  if (series.empty() || options.width == 0 || options.height == 0) return {};

  double y_min = options.y_min;
  double y_max = options.y_max;
  if (y_max <= y_min) {
    y_max = y_min;
    for (const ChartSeries& s : series) {
      for (double v : s.values) y_max = std::max(y_max, v);
    }
    if (y_max <= y_min) y_max = y_min + 1.0;
  }

  std::vector<std::vector<double>> sampled;
  sampled.reserve(series.size());
  for (const ChartSeries& s : series) {
    sampled.push_back(resample(s.values, options.width));
  }

  // Plot grid: rows top (y_max) to bottom (y_min).
  std::vector<std::string> grid(options.height,
                                std::string(options.width, ' '));
  for (std::size_t si = 0; si < sampled.size(); ++si) {
    const char glyph = kGlyphs[si % sizeof(kGlyphs)];
    for (std::size_t c = 0; c < options.width; ++c) {
      const double v = std::clamp(sampled[si][c], y_min, y_max);
      const double frac = (v - y_min) / (y_max - y_min);
      auto row = static_cast<std::size_t>(
          std::llround(frac * static_cast<double>(options.height - 1)));
      grid[options.height - 1 - row][c] = glyph;
    }
  }

  // Y-axis labels on the top, middle and bottom rows.
  std::string out;
  const std::size_t label_width = 10;
  for (std::size_t r = 0; r < options.height; ++r) {
    std::string label(label_width, ' ');
    if (r == 0 || r == options.height / 2 || r == options.height - 1) {
      const double frac =
          1.0 - static_cast<double>(r) / static_cast<double>(options.height - 1);
      label = str_format("%9.1f ", y_min + frac * (y_max - y_min));
    }
    out += label;
    out += '|';
    out += grid[r];
    out += '\n';
  }
  out += std::string(label_width, ' ');
  out += '+';
  out.append(options.width, '-');
  out += '\n';
  if (!options.x_label.empty()) {
    out += std::string(label_width + 1, ' ');
    out += options.x_label;
    out += '\n';
  }
  std::string legend = std::string(label_width + 1, ' ');
  for (std::size_t si = 0; si < series.size(); ++si) {
    if (si > 0) legend += "   ";
    legend += kGlyphs[si % sizeof(kGlyphs)];
    legend += " ";
    legend += series[si].label;
  }
  out += legend;
  out += '\n';
  return out;
}

}  // namespace dc
