// Streaming statistics and fixed-bin histograms for trace analysis.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace dc {

/// Streaming mean/variance/min/max (Welford's algorithm).
class RunningStats {
 public:
  void add(double x);

  std::int64_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  double variance() const;  // sample variance (n-1)
  double stddev() const;
  double cv() const;  // coefficient of variation, 0 when mean == 0
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  std::int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-width-bin histogram over [lo, hi); out-of-range samples are clamped
/// into the first/last bin and counted separately.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);

  std::size_t bin_count() const { return counts_.size(); }
  std::int64_t bin(std::size_t i) const { return counts_.at(i); }
  double bin_lo(std::size_t i) const;
  double bin_hi(std::size_t i) const;
  std::int64_t total() const { return total_; }
  std::int64_t underflow() const { return underflow_; }
  std::int64_t overflow() const { return overflow_; }

  /// Value below which a fraction `p` (clamped to [0,1]) of the samples
  /// fall, linearly interpolated inside the containing bin. Out-of-range
  /// samples were clamped into the edge bins by `add`, so the result is
  /// always within [lo, hi]; an empty histogram reports `lo`.
  double quantile(double p) const;
  double p50() const { return quantile(0.50); }
  double p95() const { return quantile(0.95); }
  double p99() const { return quantile(0.99); }

  /// Quick ASCII rendering for examples/inspection tools.
  std::string render(std::size_t max_bar_width = 50) const;

 private:
  double lo_, hi_;
  std::vector<std::int64_t> counts_;
  std::int64_t total_ = 0;
  std::int64_t underflow_ = 0;
  std::int64_t overflow_ = 0;
};

}  // namespace dc
