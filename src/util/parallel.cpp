#include "util/parallel.hpp"

#include <cctype>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <exception>
#include <mutex>

#include "util/check.hpp"
#include "util/log.hpp"

namespace dc {
namespace {

// Installed stats collector; the pool takes no timestamps when null.
// Observational only — wall-clock time never feeds back into any result.
std::atomic<SweepStats*> g_sweep_stats{nullptr};

// True on any thread currently executing inside a parallel region (a pool
// worker draining a job, or the submitting thread while its job runs).
// Nested parallel calls from such threads run inline: the outer job
// already saturates the pool, and blocking a worker on an inner job could
// deadlock.
thread_local bool t_in_parallel_region = false;

// Hard cap on pool size: explicit `threads` requests beyond the default
// can grow the pool, but never without bound.
constexpr std::size_t kMaxPoolWorkers = 256;

// One submitted sweep. Indices are claimed in contiguous chunks from
// `next`; `completed` counts finished indices and `active` counts workers
// still inside drain(), so the submitter knows when the job — and every
// reference to it — is gone.
struct Job {
  const std::function<void(std::size_t)>* fn = nullptr;
  std::size_t count = 0;
  std::size_t chunk = 1;
  std::size_t helper_slots = 0;  // workers still allowed to join (mutex-guarded)
  std::size_t active = 0;        // workers inside drain() (mutex-guarded)
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> completed{0};
};

// Lazily created, persistent worker pool. One job runs at a time
// (submissions serialize); the submitting thread always participates, so
// the pool only ever *helps* and zero workers is a valid pool.
class SweepPool {
 public:
  static SweepPool& instance() {
    static SweepPool pool;
    return pool;
  }

  void run(std::size_t count, const std::function<void(std::size_t)>& fn,
           std::size_t max_participants) {
    std::lock_guard<std::mutex> submit_lock(submit_mu_);
    Job job;
    job.fn = &fn;
    job.count = count;
    // Chunks balance claim traffic against load balance: small counts
    // (a 56-point sweep of multi-second simulations) claim index-by-index,
    // large counts amortize the atomic to ~4 claims per participant.
    job.chunk = std::max<std::size_t>(1, count / (max_participants * 4));
    {
      std::lock_guard<std::mutex> lock(mu_);
      ensure_workers(std::min(max_participants - 1, kMaxPoolWorkers));
      job.helper_slots = std::min(workers_.size(), max_participants - 1);
      job_ = &job;
      ++epoch_;
    }
    work_cv_.notify_all();
    t_in_parallel_region = true;
    try {
      drain(job);
    } catch (...) {
      // The job lives on this stack frame and helpers may still hold a
      // pointer to it: claim the remaining indices so they finish quickly,
      // wait them out, then rethrow. (A throw on a *worker* thread
      // terminates, as with the previous spawn-per-call implementation.)
      job.next.store(job.count, std::memory_order_relaxed);
      t_in_parallel_region = false;
      std::unique_lock<std::mutex> lock(mu_);
      done_cv_.wait(lock, [&] { return job.active == 0; });
      job_ = nullptr;
      throw;
    }
    t_in_parallel_region = false;
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] {
      return job.completed.load(std::memory_order_acquire) == job.count &&
             job.active == 0;
    });
    DC_INVARIANT(job.next.load(std::memory_order_relaxed) >= job.count,
                 "sweep finished with unclaimed indices");
    DC_INVARIANT(job.completed.load(std::memory_order_relaxed) == job.count,
                 "sweep finished with an incomplete index count");
    job_ = nullptr;
  }

 private:
  SweepPool() = default;

  ~SweepPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    work_cv_.notify_all();
    for (std::thread& worker : workers_) worker.join();
  }

  // Requires mu_ held.
  void ensure_workers(std::size_t desired) {
    while (workers_.size() < desired) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  static void drain(Job& job) {
    DC_INVARIANT(job.chunk >= 1, "sweep chunk size must be positive");
    while (true) {
      const std::size_t begin =
          job.next.fetch_add(job.chunk, std::memory_order_relaxed);
      if (begin >= job.count) return;
      const std::size_t end = std::min(begin + job.chunk, job.count);
      SweepStats* stats = g_sweep_stats.load(std::memory_order_acquire);
      if (stats != nullptr) {
        const auto start = std::chrono::steady_clock::now();
        for (std::size_t i = begin; i < end; ++i) (*job.fn)(i);
        const auto elapsed = std::chrono::steady_clock::now() - start;
        stats->chunks.fetch_add(1, std::memory_order_relaxed);
        stats->indices.fetch_add(end - begin, std::memory_order_relaxed);
        stats->busy_ns.fetch_add(
            static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
                    .count()),
            std::memory_order_relaxed);
      } else {
        for (std::size_t i = begin; i < end; ++i) (*job.fn)(i);
      }
      // Cursor sanity: chunks are claimed disjointly from the atomic
      // cursor, so completions can never exceed the index space. A
      // violation means two participants ran the same chunk.
      const std::size_t done_before =
          job.completed.fetch_add(end - begin, std::memory_order_acq_rel);
      DC_INVARIANT(done_before + (end - begin) <= job.count,
                   "sweep completed more indices than exist (double-claimed "
                   "chunk)");
      static_cast<void>(done_before);
    }
  }

  void worker_loop() {
    t_in_parallel_region = true;
    std::uint64_t seen_epoch = 0;
    std::unique_lock<std::mutex> lock(mu_);
    while (true) {
      work_cv_.wait(lock, [&] {
        return stop_ || (job_ != nullptr && epoch_ != seen_epoch);
      });
      if (stop_) return;
      seen_epoch = epoch_;
      Job* job = job_;
      if (job->helper_slots == 0) continue;
      --job->helper_slots;
      ++job->active;
      lock.unlock();
      drain(*job);
      lock.lock();
      --job->active;
      // Wake the submitter when the last helper leaves; the submitter
      // re-checks completion itself (its predicate also covers the abort
      // path, where `completed` never reaches `count`).
      if (job->active == 0) done_cv_.notify_all();
    }
  }

  std::mutex submit_mu_;  // serializes whole jobs from distinct threads
  std::mutex mu_;         // guards pool + per-job bookkeeping below
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::vector<std::thread> workers_;
  Job* job_ = nullptr;
  std::uint64_t epoch_ = 0;
  bool stop_ = false;
};

}  // namespace

void set_sweep_stats(SweepStats* stats) {
  g_sweep_stats.store(stats, std::memory_order_release);
}

std::size_t default_thread_count() {
  if (const char* env = std::getenv("DC_THREADS")) {
    char* end = nullptr;
    errno = 0;
    const long parsed = std::strtol(env, &end, 10);
    const char* rest = end;
    while (*rest != '\0' && std::isspace(static_cast<unsigned char>(*rest))) {
      ++rest;
    }
    if (end != env && *rest == '\0' && errno != ERANGE && parsed >= 1) {
      return static_cast<std::size_t>(parsed);
    }
    Log::raw(LogLevel::kWarn,
             "[parallel] ignoring DC_THREADS=\"%s\": expected a positive "
             "integer; using hardware concurrency",
             env);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

void parallel_for_index(std::size_t count,
                        const std::function<void(std::size_t)>& fn,
                        std::size_t threads) {
  if (count == 0) return;
  if (threads == 0) threads = default_thread_count();
  threads = std::min(threads, count);
  if (threads <= 1 || t_in_parallel_region) {
    SweepStats* stats =
        t_in_parallel_region ? nullptr
                             : g_sweep_stats.load(std::memory_order_acquire);
    if (stats != nullptr) {
      // Degenerate one-participant sweep: account for it as one chunk so
      // DC_THREADS=1 profiles still show sweep time.
      const auto start = std::chrono::steady_clock::now();
      for (std::size_t i = 0; i < count; ++i) fn(i);
      const auto elapsed = std::chrono::steady_clock::now() - start;
      stats->chunks.fetch_add(1, std::memory_order_relaxed);
      stats->indices.fetch_add(count, std::memory_order_relaxed);
      stats->busy_ns.fetch_add(
          static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
                  .count()),
          std::memory_order_relaxed);
    } else {
      for (std::size_t i = 0; i < count; ++i) fn(i);
    }
    return;
  }
  SweepPool::instance().run(count, fn, threads);
}

}  // namespace dc
