#include "util/parallel.hpp"

#include <cstdlib>

namespace dc {

std::size_t default_thread_count() {
  if (const char* env = std::getenv("DC_THREADS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed >= 1) return static_cast<std::size_t>(parsed);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

void parallel_for_index(std::size_t count,
                        const std::function<void(std::size_t)>& fn,
                        std::size_t threads) {
  if (threads == 0) threads = default_thread_count();
  threads = std::min(threads, count);
  if (count == 0) return;
  if (threads <= 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    workers.emplace_back([&] {
      while (true) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= count) return;
        fn(i);
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
}

}  // namespace dc
