// CSV and fixed-width console table output.
//
// Every bench binary emits (a) a human-readable table matching the paper's
// layout and (b) a machine-readable CSV next to it, so figures can be
// re-plotted without re-running the sweep.
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "util/status.hpp"

namespace dc {

/// Streams rows to a CSV file. Fields containing commas/quotes are quoted.
class CsvWriter {
 public:
  /// Opens (truncates) `path`. Check ok() before writing.
  explicit CsvWriter(const std::string& path);

  bool ok() const { return out_.good(); }

  CsvWriter& cell(std::string_view text);
  CsvWriter& cell(std::int64_t value);
  CsvWriter& cell(double value, int precision = 6);
  /// Ends the current row.
  void end_row();

  void header(const std::vector<std::string>& names);

 private:
  std::ofstream out_;
  bool row_started_ = false;
};

/// Parsed CSV contents: one vector of fields per row.
using CsvRows = std::vector<std::vector<std::string>>;

struct CsvParseOptions {
  /// Require every row to have as many fields as the first row; a ragged
  /// row is reported with its line number.
  bool require_uniform_columns = true;
};

/// Parses RFC-4180-style CSV text: comma-separated fields, double-quoted
/// fields with `""` escapes, LF or CRLF row endings, optional trailing
/// newline. Malformed input — an unterminated quote, a stray quote inside
/// an unquoted field, garbage after a closing quote, a ragged row — is
/// reported through Status with the offending line and column (1-based),
/// never an assert. Embedded NUL bytes are rejected (binary garbage guard).
StatusOr<CsvRows> parse_csv(std::string_view text,
                            const CsvParseOptions& options = {});

/// Reads and parses a CSV file; file errors and parse errors both come
/// back through the Status (parse errors are prefixed with the path).
StatusOr<CsvRows> read_csv_file(const std::string& path,
                                const CsvParseOptions& options = {});

/// Accumulates rows and renders an aligned fixed-width table to a string.
/// Column widths are computed from content; numeric columns right-align.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  TextTable& cell(std::string_view text);
  TextTable& cell(std::int64_t value);
  TextTable& cell(double value, int precision = 2);
  void end_row();

  std::size_t row_count() const { return rows_.size(); }

  /// Renders with a title line, a header, and a separator rule.
  std::string render(std::string_view title = "") const;

 private:
  struct Cell {
    std::string text;
    bool numeric = false;
  };
  std::vector<std::string> header_;
  std::vector<std::vector<Cell>> rows_;
  std::vector<Cell> current_;
};

}  // namespace dc
