// A crash-safe single-writer pid lease (docs/SWEEP.md, docs/FORMATS.md).
//
// PidLease is the generalized form of the campaign orchestrator's lock:
// an O_EXCL-created file stamped with the holder's pid *and* its kernel
// start tick, so holding the file means being the resource's only writer.
// The start tick defeats pid recycling — a stale lease whose pid was
// reused by an unrelated live process is still detected as stale and
// broken with a warning, never treated as a live holder. Corrupt or
// unparseable lease contents are likewise stale, never fatal.
//
// The lease write goes through the util/faultfs seam, so io_drill can
// fault every step; cleanup of our own partial lease is never injected.
// Callers supply the diagnostic wording (who "holds" the resource and
// what the single-writer rule is called), so campaign and run-store
// locks report contention in their own vocabulary.
#pragma once

#include <string>
#include <string_view>

#include "util/status.hpp"

namespace dc {

/// The kernel start-tick of process `pid` (/proc/<pid>/stat field 22), or
/// -1 when the process does not exist or the stat line cannot be parsed.
/// Together with the pid this forms a recycling-proof process identity:
/// a recycled pid gets a different start tick.
long long process_start_ticks(long long pid);

class PidLease {
 public:
  /// Diagnostic wording for one lock flavour. The busy (live-holder)
  /// message is rendered as:
  ///   "<busy_prefix> live pid N (lock 'path'); <busy_suffix>"
  struct Wording {
    std::string site;         // faultfs I/O site name, e.g. "campaign.lock"
    std::string busy_prefix;  // "campaign is already being orchestrated by"
    std::string busy_suffix;  // "... — wait for it or kill it first"
  };

  /// Creates `path` exclusively with this process's pid+start-tick stamp.
  /// A live matching holder is a failed_precondition; dead, recycled, or
  /// unreadable leases are broken with a warning and retried once.
  static StatusOr<PidLease> acquire(const std::string& path,
                                    const Wording& wording);

  PidLease(PidLease&& other) noexcept;
  PidLease& operator=(PidLease&& other) noexcept;
  PidLease(const PidLease&) = delete;
  PidLease& operator=(const PidLease&) = delete;
  /// Releases (unlinks) the lease.
  ~PidLease();

  const std::string& path() const { return path_; }

 private:
  explicit PidLease(std::string path) : path_(std::move(path)) {}
  std::string path_;  // empty = released / moved-from
};

}  // namespace dc
