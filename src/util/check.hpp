// Checked-build runtime audits.
//
// DC_INVARIANT is the runtime half of the project's correctness tooling:
// dc-lint (tools/dc_lint) enforces the determinism rules a lexer can see;
// DC_INVARIANT audits the properties only a running kernel can check —
// heap structure, slab free-list integrity, generation consistency,
// simulation-time monotonicity, thread-pool cursor sanity.
//
// Configure with -DDC_CHECKED=ON (the `checked` CMake preset) to compile
// the audits in; in every other build DC_INVARIANT expands to ((void)0) —
// the condition is *not evaluated* — so release hot paths carry zero cost.
// This is deliberately separate from assert(): asserts are cheap local
// preconditions kept on in RelWithDebInfo, while DC_INVARIANT guards whole
// data-structure walks that would wreck kernel throughput if always on.
//
// DC_CHECKED_ONLY(...) compiles its arguments only in checked builds — for
// audit counters and bookkeeping fields the audits need.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace dc {

#if defined(DC_CHECKED)
inline constexpr bool kCheckedBuild = true;
#else
inline constexpr bool kCheckedBuild = false;
#endif

[[noreturn]] inline void invariant_failed(const char* condition, const char* message,
                                          const char* file, int line) {
  std::fprintf(stderr, "DC_INVARIANT violated: %s\n  %s:%d: !(%s)\n", message,
               file, line, condition);
  std::abort();
}

}  // namespace dc

#if defined(DC_CHECKED)
#define DC_INVARIANT(condition, message)                                     \
  do {                                                                       \
    if (!(condition)) {                                                      \
      ::dc::invariant_failed(#condition, (message), __FILE__, __LINE__);     \
    }                                                                        \
  } while (false)
#define DC_CHECKED_ONLY(...) __VA_ARGS__
#else
#define DC_INVARIANT(condition, message) ((void)0)
#define DC_CHECKED_ONLY(...)
#endif
