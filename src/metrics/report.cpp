#include "metrics/report.hpp"

#include <cassert>

#include "util/strings.hpp"

namespace dc::metrics {

using core::SystemModel;
using core::SystemResult;

double saved_percent(std::int64_t baseline_node_hours, std::int64_t node_hours) {
  if (baseline_node_hours == 0) return 0.0;
  return 100.0 *
         (1.0 - static_cast<double>(node_hours) /
                    static_cast<double>(baseline_node_hours));
}

const SystemResult& result_for(const std::vector<SystemResult>& systems,
                               SystemModel model) {
  const SystemResult* result = find_result(systems, model);
  assert(result != nullptr && "missing system result");
  return result != nullptr ? *result : systems.front();
}

const SystemResult* find_result(const std::vector<SystemResult>& systems,
                                SystemModel model) {
  for (const SystemResult& result : systems) {
    if (result.model == model) return &result;
  }
  return nullptr;
}

std::string format_htc_provider_table(const std::vector<SystemResult>& systems,
                                      const std::string& provider,
                                      const std::string& title) {
  // The savings column is relative to the DCS baseline; a report over a
  // subset of systems that lacks DCS simply has no baseline to compare
  // against, so the column degrades to "/" instead of crashing.
  const SystemResult* dcs = find_result(systems, SystemModel::kDcs);
  TextTable table({"configuration", "completed jobs", "resource consumption",
                   "saved resources"});
  for (const SystemResult& system : systems) {
    const core::ProviderResult& p = system.provider(provider);
    table.cell(std::string(system_model_name(system.model)) + " system")
        .cell(p.completed_jobs)
        .cell(p.consumption_node_hours);
    if (system.model == SystemModel::kDcs || dcs == nullptr) {
      table.cell("/");
    } else {
      table.cell(str_format(
          "%.1f%%",
          saved_percent(dcs->provider(provider).consumption_node_hours,
                        p.consumption_node_hours)));
    }
    table.end_row();
  }
  return table.render(title);
}

std::string format_mtc_provider_table(const std::vector<SystemResult>& systems,
                                      const std::string& provider,
                                      const std::string& title) {
  const SystemResult* dcs = find_result(systems, SystemModel::kDcs);
  TextTable table({"configuration", "tasks per second", "resource consumption",
                   "saved resources"});
  for (const SystemResult& system : systems) {
    const core::ProviderResult& p = system.provider(provider);
    table.cell(std::string(system_model_name(system.model)) + " system")
        .cell(p.tasks_per_second, 2)
        .cell(p.consumption_node_hours);
    if (system.model == SystemModel::kDcs || dcs == nullptr) {
      table.cell("/");
    } else {
      table.cell(str_format(
          "%.1f%%",
          saved_percent(dcs->provider(provider).consumption_node_hours,
                        p.consumption_node_hours)));
    }
    table.end_row();
  }
  return table.render(title);
}

std::string format_resource_provider_report(
    const std::vector<SystemResult>& systems) {
  const SystemResult* dcs = find_result(systems, SystemModel::kDcs);
  TextTable table({"system", "total consumption (node*hour)",
                   "peak (nodes/hour)", "total vs DCS/SSP", "peak vs DCS/SSP"});
  for (const SystemResult& system : systems) {
    table.cell(system_model_name(system.model))
        .cell(system.total_consumption_node_hours)
        .cell(system.peak_nodes);
    if (dcs == nullptr) {
      table.cell("/").cell("/");
    } else {
      table
          .cell(str_format("%.1f%%",
                           saved_percent(dcs->total_consumption_node_hours,
                                         system.total_consumption_node_hours)))
          .cell(str_format("%.2fx",
                           dcs->peak_nodes == 0
                               ? 0.0
                               : static_cast<double>(system.peak_nodes) /
                                     static_cast<double>(dcs->peak_nodes)));
    }
    table.end_row();
  }
  return table.render(
      "Resource provider metrics (Figures 12 & 13): total and peak "
      "consumption");
}

std::string format_overhead_report(const std::vector<SystemResult>& systems) {
  TextTable table({"system", "adjusted nodes (accumulated)",
                   "overhead (seconds)", "overhead (s/hour)"});
  for (const SystemResult& system : systems) {
    table.cell(system_model_name(system.model))
        .cell(system.adjusted_nodes)
        .cell(system.overhead_seconds, 1)
        .cell(system.overhead_seconds_per_hour, 1);
    table.end_row();
  }
  return table.render(
      "Management overhead (Figure 14): accumulated node adjustments, "
      "15.743 s setup per adjusted node");
}

std::string format_availability_report(
    const std::vector<SystemResult>& systems) {
  TextTable table({"system", "failures (events/nodes)", "repaired nodes",
                   "killed", "failed", "goodput (node*hour)",
                   "wasted (node*hour)", "availability"});
  for (const SystemResult& system : systems) {
    table.cell(system_model_name(system.model))
        .cell(str_format("%lld / %lld",
                         static_cast<long long>(system.failure_events),
                         static_cast<long long>(system.nodes_failed)))
        .cell(system.nodes_repaired)
        .cell(system.jobs_killed)
        .cell(system.jobs_failed)
        .cell(system.goodput_node_hours, 1)
        .cell(system.wasted_node_hours, 1)
        .cell(str_format("%.4f%%", 100.0 * system.availability));
    table.end_row();
  }
  return table.render(
      "Fault-injection outcome: failure/repair volume, killed and "
      "budget-exhausted work, goodput vs wasted node*hours, availability");
}

std::string format_model_comparison_table() {
  TextTable table({"", "DCS", "SSP", "DRP", "DSP"});
  const SystemModel order[] = {SystemModel::kDcs, SystemModel::kSsp,
                               SystemModel::kDrp, SystemModel::kDawningCloud};
  table.cell("resource property");
  for (SystemModel model : order) table.cell(system_traits(model).resource_property);
  table.end_row();
  table.cell("runtime environment");
  for (SystemModel model : order) {
    table.cell(system_traits(model).runtime_environment);
  }
  table.end_row();
  table.cell("resources provision for RE");
  for (SystemModel model : order) table.cell(system_traits(model).provisioning);
  table.end_row();
  return table.render("Table 1: comparison of usage models");
}

void write_results_csv(CsvWriter& csv,
                       const std::vector<SystemResult>& systems) {
  csv.header({"system", "provider", "type", "submitted", "completed",
              "tasks_per_second", "consumption_node_hours", "exact_node_hours",
              "provider_peak_nodes", "makespan_seconds", "mean_wait_seconds",
              "max_wait_seconds", "jobs_killed", "jobs_failed",
              "grant_timeouts", "goodput_node_hours", "wasted_node_hours",
              "availability", "platform_total_node_hours",
              "platform_peak_nodes", "adjusted_nodes", "overhead_seconds"});
  for (const SystemResult& system : systems) {
    for (const core::ProviderResult& p : system.providers) {
      csv.cell(std::string_view(system_model_name(system.model)))
          .cell(p.provider)
          .cell(std::string_view(workload_type_name(p.type)))
          .cell(p.submitted_jobs)
          .cell(p.completed_jobs)
          .cell(p.tasks_per_second, 4)
          .cell(p.consumption_node_hours)
          .cell(p.exact_node_hours, 2)
          .cell(p.peak_nodes)
          .cell(p.makespan)
          .cell(p.mean_wait_seconds, 1)
          .cell(p.max_wait_seconds)
          .cell(p.jobs_killed)
          .cell(p.jobs_failed)
          .cell(p.grant_timeouts)
          .cell(p.goodput_node_hours, 2)
          .cell(p.wasted_node_hours, 2)
          .cell(p.availability, 6)
          .cell(system.total_consumption_node_hours)
          .cell(system.peak_nodes)
          .cell(system.adjusted_nodes)
          .cell(system.overhead_seconds, 1);
      csv.end_row();
    }
  }
}

}  // namespace dc::metrics
