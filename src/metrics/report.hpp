// Report formatting for the paper's tables and figures.
//
// Section 4.3 metrics: per service provider, the number of completed jobs
// (HTC) or tasks per second (MTC) and the node*hour resource consumption;
// per resource provider, the total and peak consumption plus the
// accumulated node adjustments. Tables render in the paper's layout with
// "saved resources" percentages against the DCS baseline.
#pragma once

#include <string>
#include <vector>

#include "core/systems.hpp"
#include "util/csv.hpp"

namespace dc::metrics {

/// Paper convention: percent of the DCS system's consumption saved.
/// Negative values (printed like the paper's "-25.8%") mean *more*
/// consumption than the baseline.
double saved_percent(std::int64_t baseline_node_hours,
                     std::int64_t node_hours);

/// Renders a Table 2/3-style comparison (completed jobs, consumption,
/// saved %) for one HTC provider across systems. The DCS row must be
/// present as the baseline.
std::string format_htc_provider_table(
    const std::vector<core::SystemResult>& systems,
    const std::string& provider, const std::string& title);

/// Renders a Table 4-style comparison (tasks/s, consumption, saved %) for
/// one MTC provider across systems.
std::string format_mtc_provider_table(
    const std::vector<core::SystemResult>& systems,
    const std::string& provider, const std::string& title);

/// Renders Figure 12/13 numbers: total and peak platform consumption per
/// system, with ratios against DCS/SSP and DRP.
std::string format_resource_provider_report(
    const std::vector<core::SystemResult>& systems);

/// Renders Figure 14 numbers: accumulated node adjustments and overhead.
std::string format_overhead_report(
    const std::vector<core::SystemResult>& systems);

/// Renders the fault-injection outcome per system: failure/repair volume,
/// kills, exhausted retry budgets, goodput vs wasted re-run node*hours and
/// the held-weighted availability. Meaningful when the systems ran with
/// RunOptions::faults set; without injection every row is zeros / 100%.
std::string format_availability_report(
    const std::vector<core::SystemResult>& systems);

/// Renders the paper's Table 1 (usage-model traits).
std::string format_model_comparison_table();

/// Finds the result for `model`; asserts it exists.
const core::SystemResult& result_for(
    const std::vector<core::SystemResult>& systems, core::SystemModel model);

/// Finds the result for `model`, or nullptr when the run didn't include
/// it. The report tables use this to degrade their DCS-relative savings
/// columns to "/" on partial system sets instead of aborting.
const core::SystemResult* find_result(
    const std::vector<core::SystemResult>& systems, core::SystemModel model);

/// Writes one CSV row per (system, provider) pair: the machine-readable
/// companion every bench emits.
void write_results_csv(CsvWriter& csv,
                       const std::vector<core::SystemResult>& systems);

}  // namespace dc::metrics
