#include "metrics/markdown.hpp"

#include <cassert>

#include "metrics/report.hpp"
#include "util/strings.hpp"

namespace dc::metrics {
namespace {

std::string escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    if (c == '|') out += "\\|";
    else out += c;
  }
  return out;
}

}  // namespace

std::string markdown_table(const std::vector<std::string>& header,
                           const std::vector<std::vector<std::string>>& rows) {
  std::string out = "|";
  for (const std::string& cell : header) out += " " + escape(cell) + " |";
  out += "\n|";
  for (std::size_t i = 0; i < header.size(); ++i) out += "---|";
  out += "\n";
  for (const auto& row : rows) {
    assert(row.size() == header.size());
    out += "|";
    for (const std::string& cell : row) out += " " + escape(cell) + " |";
    out += "\n";
  }
  return out;
}

std::string markdown_htc_provider_table(
    const std::vector<core::SystemResult>& systems,
    const std::string& provider) {
  const core::SystemResult* dcs =
      find_result(systems, core::SystemModel::kDcs);
  std::vector<std::vector<std::string>> rows;
  for (const core::SystemResult& system : systems) {
    const core::ProviderResult& p = system.provider(provider);
    rows.push_back(
        {std::string(system_model_name(system.model)),
         std::to_string(p.completed_jobs),
         std::to_string(p.consumption_node_hours),
         system.model == core::SystemModel::kDcs || dcs == nullptr
             ? std::string("—")
             : str_format(
                   "%.1f%%",
                   saved_percent(
                       dcs->provider(provider).consumption_node_hours,
                       p.consumption_node_hours))});
  }
  return markdown_table(
      {"configuration", "completed jobs", "node·hours", "saved"}, rows);
}

std::string markdown_mtc_provider_table(
    const std::vector<core::SystemResult>& systems,
    const std::string& provider) {
  const core::SystemResult* dcs =
      find_result(systems, core::SystemModel::kDcs);
  std::vector<std::vector<std::string>> rows;
  for (const core::SystemResult& system : systems) {
    const core::ProviderResult& p = system.provider(provider);
    rows.push_back(
        {std::string(system_model_name(system.model)),
         str_format("%.2f", p.tasks_per_second),
         std::to_string(p.consumption_node_hours),
         system.model == core::SystemModel::kDcs || dcs == nullptr
             ? std::string("—")
             : str_format(
                   "%.1f%%",
                   saved_percent(
                       dcs->provider(provider).consumption_node_hours,
                       p.consumption_node_hours))});
  }
  return markdown_table({"configuration", "tasks/s", "node·hours", "saved"},
                        rows);
}

}  // namespace dc::metrics
