// Markdown rendering of results — the EXPERIMENTS.md generator.
//
// Every bench prints fixed-width console tables; these helpers render the
// same data as GitHub-flavored markdown so documentation tables can be
// regenerated from bench output instead of hand-edited.
#pragma once

#include <string>
#include <vector>

#include "core/systems.hpp"

namespace dc::metrics {

/// A generic markdown table.
std::string markdown_table(const std::vector<std::string>& header,
                           const std::vector<std::vector<std::string>>& rows);

/// The Tables 2/3-style per-provider comparison as markdown (DCS baseline).
std::string markdown_htc_provider_table(
    const std::vector<core::SystemResult>& systems, const std::string& provider);

/// The Table 4-style MTC comparison as markdown.
std::string markdown_mtc_provider_table(
    const std::vector<core::SystemResult>& systems, const std::string& provider);

}  // namespace dc::metrics
