// Crash-consistent snapshot encoding (see docs/SNAPSHOT.md).
//
// A snapshot is a flat, versioned, checksummed binary stream of *named,
// tagged* records grouped into nested sections — one section per simulation
// component. The format favours auditability over compactness:
//
//  * every field carries its name, so a reader can report "section
//    'server:det' field 'owned_nodes': expected u64, found str" instead of
//    desynchronizing silently;
//  * all scalars are fixed-width little-endian (doubles are bit-cast
//    through u64), so a snapshot taken on one machine restores bit-exactly
//    on another;
//  * the whole stream is covered by an FNV-1a checksum footer, and files
//    are written atomically (temp file + rename), so a crash mid-write can
//    never yield a file that both exists and passes verification;
//  * two snapshots of the same run at the same instant are byte-comparable
//    record by record — `diff_snapshots` walks both streams in lockstep and
//    reports the first diverging section/field, which is the divergence
//    auditor used by tools/crash_resume.
//
// Truncation, corruption, bad magic, and version skew are all detected in
// SnapshotReader::from_file and reported through util/status.hpp with
// actionable messages; a malformed snapshot never crashes and never
// restores silently wrong state.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.hpp"
#include "util/time.hpp"

namespace dc::snapshot {

/// First bytes of every snapshot file.
inline constexpr char kMagic[8] = {'D', 'C', 'S', 'N', 'A', 'P', '\r', '\n'};
/// Encoding version; bump on any incompatible layout change.
inline constexpr std::uint32_t kFormatVersion = 1;

/// Record tags. The payload layout is fixed per kind.
enum class RecordKind : std::uint8_t {
  kSectionBegin = 1,  // no payload
  kSectionEnd = 2,    // no payload, empty name
  kU64 = 3,           // 8 bytes LE
  kI64 = 4,           // 8 bytes LE (two's complement)
  kF64 = 5,           // 8 bytes LE (IEEE-754 bit pattern)
  kBool = 6,          // 1 byte (0/1)
  kStr = 7,           // u32 LE length + bytes
  kBytes = 8,         // u32 LE length + bytes
};

const char* record_kind_name(RecordKind kind);

/// Accumulates an encoded snapshot stream in memory; `write_file` appends
/// the header/footer and writes atomically.
class SnapshotWriter {
 public:
  SnapshotWriter();

  void begin_section(std::string_view name);
  void end_section();

  void field_u64(std::string_view name, std::uint64_t value);
  void field_i64(std::string_view name, std::int64_t value);
  void field_f64(std::string_view name, double value);
  void field_bool(std::string_view name, bool value);
  void field_str(std::string_view name, std::string_view value);
  void field_bytes(std::string_view name, const void* data, std::size_t size);
  /// SimTime / SimDuration are i64 seconds; alias kept for readability.
  void field_time(std::string_view name, SimTime value) {
    field_i64(name, value);
  }

  /// The encoded stream so far (header + records, no footer).
  const std::string& buffer() const { return buffer_; }

  /// FNV-1a digest of the stream so far — the rolling state digest the
  /// divergence auditor compares across runs.
  std::uint64_t digest() const;

  /// Finishes the stream (checksum footer) and writes it atomically:
  /// the bytes land in `path + ".tmp"` first and are renamed over `path`
  /// only after a successful flush, so a SIGKILL mid-write leaves either
  /// the previous complete file or a `.tmp` that readers ignore.
  Status write_file(const std::string& path) const;

  /// The finished stream (header + records + checksum footer), for tests
  /// and in-memory round trips.
  std::string finish() const;

  std::size_t open_sections() const { return depth_; }

 private:
  void record_header(RecordKind kind, std::string_view name);
  std::string buffer_;
  std::size_t depth_ = 0;
};

/// Sequential, name-checked decoder for a verified snapshot stream.
class SnapshotReader {
 public:
  /// Reads and verifies `path`: magic, version, checksum, truncation.
  static StatusOr<SnapshotReader> from_file(const std::string& path);
  /// Verifies an in-memory stream produced by SnapshotWriter::finish().
  static StatusOr<SnapshotReader> from_buffer(std::string buffer);

  Status begin_section(std::string_view name);
  Status end_section();

  Status read_u64(std::string_view name, std::uint64_t& out);
  Status read_i64(std::string_view name, std::int64_t& out);
  Status read_f64(std::string_view name, double& out);
  Status read_bool(std::string_view name, bool& out);
  Status read_str(std::string_view name, std::string& out);
  Status read_bytes(std::string_view name, std::string& out);
  Status read_time(std::string_view name, SimTime& out) {
    return read_i64(name, out);
  }

  /// True when the next record closes the current section (or the stream
  /// is exhausted) — for decoding variable-length lists defensively.
  bool at_section_end() const;

  /// "section 'a.b' near offset N" — appended to every error.
  std::string context() const;

 private:
  explicit SnapshotReader(std::string buffer) : buffer_(std::move(buffer)) {}
  Status read_record(RecordKind want, std::string_view name,
                     std::string_view& payload);
  Status error(const std::string& message) const;

  std::string buffer_;
  std::size_t pos_ = 0;
  std::vector<std::string> section_stack_;
};

/// One decoded record, for the divergence auditor and `snapshot-diff`.
struct SnapshotRecord {
  RecordKind kind;
  std::string section;  // dotted path of enclosing sections
  std::string name;
  std::string payload;  // raw payload bytes
  /// Human-readable payload (decoded per kind).
  std::string value_text() const;
};

/// Decodes a verified snapshot file into its full record list.
StatusOr<std::vector<SnapshotRecord>> read_records(const std::string& path);

/// The verify-and-walk core of read_records, operating on an in-memory
/// buffer: checks magic/version/checksum via SnapshotReader, then decodes
/// every tagged record with section balancing. Exposed so the fuzzing
/// harness can drive the decoder without touching the filesystem.
StatusOr<std::vector<SnapshotRecord>> decode_records(std::string buffer);

/// Walks two snapshot files in lockstep and reports the first diverging
/// record (section, field, both values) into `report`. Returns true when
/// the snapshots are identical. Errors (unreadable/corrupt input) come
/// back through the Status.
StatusOr<bool> diff_snapshots(const std::string& golden,
                              const std::string& other, std::string* report);

/// Per-top-level-section FNV-1a digests of a snapshot file — the compact
/// rolling digest form of the divergence audit.
StatusOr<std::vector<std::pair<std::string, std::uint64_t>>> section_digests(
    const std::string& path);

/// FNV-1a 64-bit, the digest used across the snapshot subsystem.
std::uint64_t fnv1a(std::string_view bytes);

}  // namespace dc::snapshot
