// The component snapshot contract (see docs/SNAPSHOT.md).
//
// A Snapshottable component serializes its *state* — never its callbacks —
// into a SnapshotWriter section, and on restore reads the same field list
// back and re-arms its own pending events/timers against the simulator's
// explicit-sequence restore API. The contract:
//
//  * save() is only called at a quiescent point (between Simulator::run_until
//    chunks): no callback is on the stack and every pending event is strictly
//    in the future, so the snapshot is a pure observer of the run;
//  * restore() is only called on a freshly built, *passive* component — one
//    constructed with the same configuration but with none of its initial
//    events scheduled — inside a simulator between begin_restore() and
//    finish_restore();
//  * save/restore field lists must match one-to-one; drift is caught three
//    ways: field-name checks in SnapshotReader, the dc-r6 lint rule, and
//    the divergence auditor.
#pragma once

#include "snapshot/format.hpp"
#include "util/status.hpp"

namespace dc::snapshot {

class Snapshottable {
 public:
  virtual ~Snapshottable() = default;

  /// Serializes component state into `writer`. The component does not open
  /// its own top-level section; the runner brackets the call so section
  /// names stay globally consistent.
  virtual Status save(SnapshotWriter& writer) const = 0;

  /// Restores state saved by `save` and re-arms pending events/timers.
  virtual Status restore(SnapshotReader& reader) = 0;
};

}  // namespace dc::snapshot
