#include "snapshot/format.hpp"

#include <bit>
#include <cassert>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "util/fsio.hpp"
#include "util/strings.hpp"

namespace dc::snapshot {
namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

void append_u8(std::string& out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}

void append_u16(std::string& out, std::uint16_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
}

void append_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void append_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

std::uint16_t decode_u16(const char* p) {
  const auto* b = reinterpret_cast<const unsigned char*>(p);
  return static_cast<std::uint16_t>(b[0] | (b[1] << 8));
}

std::uint32_t decode_u32(const char* p) {
  const auto* b = reinterpret_cast<const unsigned char*>(p);
  return static_cast<std::uint32_t>(b[0]) | (static_cast<std::uint32_t>(b[1]) << 8) |
         (static_cast<std::uint32_t>(b[2]) << 16) |
         (static_cast<std::uint32_t>(b[3]) << 24);
}

std::uint64_t decode_u64(const char* p) {
  std::uint64_t v = 0;
  const auto* b = reinterpret_cast<const unsigned char*>(p);
  for (int i = 7; i >= 0; --i) v = (v << 8) | b[i];
  return v;
}

bool known_kind(std::uint8_t raw) {
  return raw >= static_cast<std::uint8_t>(RecordKind::kSectionBegin) &&
         raw <= static_cast<std::uint8_t>(RecordKind::kBytes);
}

std::string joined_path(const std::vector<std::string>& stack) {
  std::string path;
  for (const auto& part : stack) {
    if (!path.empty()) path += '.';
    path += part;
  }
  return path;
}

}  // namespace

std::uint64_t fnv1a(std::string_view bytes) {
  std::uint64_t h = kFnvOffset;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= kFnvPrime;
  }
  return h;
}

const char* record_kind_name(RecordKind kind) {
  switch (kind) {
    case RecordKind::kSectionBegin: return "section-begin";
    case RecordKind::kSectionEnd: return "section-end";
    case RecordKind::kU64: return "u64";
    case RecordKind::kI64: return "i64";
    case RecordKind::kF64: return "f64";
    case RecordKind::kBool: return "bool";
    case RecordKind::kStr: return "str";
    case RecordKind::kBytes: return "bytes";
  }
  return "unknown";
}

SnapshotWriter::SnapshotWriter() {
  buffer_.append(kMagic, sizeof(kMagic));
  append_u32(buffer_, kFormatVersion);
}

void SnapshotWriter::record_header(RecordKind kind, std::string_view name) {
  assert(name.size() <= 0xffff && "snapshot field name too long");
  append_u8(buffer_, static_cast<std::uint8_t>(kind));
  append_u16(buffer_, static_cast<std::uint16_t>(name.size()));
  buffer_.append(name.data(), name.size());
}

void SnapshotWriter::begin_section(std::string_view name) {
  record_header(RecordKind::kSectionBegin, name);
  ++depth_;
}

void SnapshotWriter::end_section() {
  assert(depth_ > 0 && "end_section without matching begin_section");
  record_header(RecordKind::kSectionEnd, "");
  --depth_;
}

void SnapshotWriter::field_u64(std::string_view name, std::uint64_t value) {
  record_header(RecordKind::kU64, name);
  append_u64(buffer_, value);
}

void SnapshotWriter::field_i64(std::string_view name, std::int64_t value) {
  record_header(RecordKind::kI64, name);
  append_u64(buffer_, static_cast<std::uint64_t>(value));
}

void SnapshotWriter::field_f64(std::string_view name, double value) {
  record_header(RecordKind::kF64, name);
  append_u64(buffer_, std::bit_cast<std::uint64_t>(value));
}

void SnapshotWriter::field_bool(std::string_view name, bool value) {
  record_header(RecordKind::kBool, name);
  append_u8(buffer_, value ? 1 : 0);
}

void SnapshotWriter::field_str(std::string_view name, std::string_view value) {
  assert(value.size() <= 0xffffffffULL);
  record_header(RecordKind::kStr, name);
  append_u32(buffer_, static_cast<std::uint32_t>(value.size()));
  buffer_.append(value.data(), value.size());
}

void SnapshotWriter::field_bytes(std::string_view name, const void* data,
                                 std::size_t size) {
  assert(size <= 0xffffffffULL);
  record_header(RecordKind::kBytes, name);
  append_u32(buffer_, static_cast<std::uint32_t>(size));
  buffer_.append(static_cast<const char*>(data), size);
}

std::uint64_t SnapshotWriter::digest() const { return fnv1a(buffer_); }

std::string SnapshotWriter::finish() const {
  assert(depth_ == 0 && "unbalanced sections at snapshot finish");
  std::string out = buffer_;
  append_u64(out, fnv1a(buffer_));
  return out;
}

Status SnapshotWriter::write_file(const std::string& path) const {
  // Durability is delegated to atomic_write_file (util/fsio.hpp): the temp
  // file is fsync'd before the rename and the directory after, and every
  // failure path unlinks the temp file — a crash mid-write leaves either
  // the previous complete snapshot or nothing, never a partial file and
  // never a stale '.tmp'.
  if (Status st = atomic_write_file(path, finish(), "snapshot.save");
      !st.is_ok()) {
    return Status::internal("snapshot: " + st.message());
  }
  return Status::ok();
}

StatusOr<SnapshotReader> SnapshotReader::from_buffer(std::string buffer) {
  const std::size_t header = sizeof(kMagic) + 4;
  if (buffer.size() < header + 8) {
    return Status::invalid_argument(str_format(
        "snapshot: stream is %zu bytes, smaller than the %zu-byte "
        "header+checksum — truncated or not a snapshot",
        buffer.size(), header + 8));
  }
  if (std::memcmp(buffer.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::invalid_argument(
        "snapshot: bad magic — not a DCSNAP snapshot stream");
  }
  const std::uint32_t version = decode_u32(buffer.data() + sizeof(kMagic));
  if (version != kFormatVersion) {
    return Status::failed_precondition(str_format(
        "snapshot: format version %u, but this build reads version %u — "
        "re-run the experiment from scratch or use a matching build",
        version, kFormatVersion));
  }
  const std::string_view body(buffer.data(), buffer.size() - 8);
  const std::uint64_t want = decode_u64(buffer.data() + buffer.size() - 8);
  const std::uint64_t got = fnv1a(body);
  if (want != got) {
    return Status::invalid_argument(str_format(
        "snapshot: checksum mismatch (stored %016llx, computed %016llx) — "
        "the file is corrupt or was truncated mid-write",
        static_cast<unsigned long long>(want),
        static_cast<unsigned long long>(got)));
  }
  SnapshotReader reader(std::move(buffer));
  reader.pos_ = header;
  // Hide the footer from record decoding.
  reader.buffer_.resize(reader.buffer_.size() - 8);
  return reader;
}

StatusOr<SnapshotReader> SnapshotReader::from_file(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    return Status::not_found("snapshot: cannot open '" + path + "'");
  }
  std::string contents((std::istreambuf_iterator<char>(file)),
                       std::istreambuf_iterator<char>());
  auto reader = from_buffer(std::move(contents));
  if (!reader.is_ok()) {
    return Status(reader.status().code(),
                  "'" + path + "': " + reader.status().message());
  }
  return reader;
}

std::string SnapshotReader::context() const {
  return str_format("section '%s' near offset %zu",
                    joined_path(section_stack_).c_str(), pos_);
}

Status SnapshotReader::error(const std::string& message) const {
  return Status::invalid_argument("snapshot: " + message + " (" + context() +
                                  ")");
}

Status SnapshotReader::read_record(RecordKind want, std::string_view name,
                                   std::string_view& payload) {
  if (pos_ + 3 > buffer_.size()) {
    return error(str_format("stream truncated while expecting field '%.*s'",
                            static_cast<int>(name.size()), name.data()));
  }
  const std::uint8_t raw = static_cast<unsigned char>(buffer_[pos_]);
  if (!known_kind(raw)) {
    return error(str_format("unknown record tag %u while expecting field "
                            "'%.*s' — corrupt stream",
                            raw, static_cast<int>(name.size()), name.data()));
  }
  const auto kind = static_cast<RecordKind>(raw);
  const std::uint16_t name_len = decode_u16(buffer_.data() + pos_ + 1);
  std::size_t cursor = pos_ + 3;
  if (cursor + name_len > buffer_.size()) {
    return error("stream truncated inside a field name");
  }
  const std::string_view found_name(buffer_.data() + cursor, name_len);
  cursor += name_len;

  std::size_t payload_len = 0;
  switch (kind) {
    case RecordKind::kSectionBegin:
    case RecordKind::kSectionEnd:
      payload_len = 0;
      break;
    case RecordKind::kU64:
    case RecordKind::kI64:
    case RecordKind::kF64:
      payload_len = 8;
      break;
    case RecordKind::kBool:
      payload_len = 1;
      break;
    case RecordKind::kStr:
    case RecordKind::kBytes: {
      if (cursor + 4 > buffer_.size()) {
        return error("stream truncated inside a length prefix");
      }
      payload_len = decode_u32(buffer_.data() + cursor);
      cursor += 4;
      break;
    }
  }
  if (cursor + payload_len > buffer_.size()) {
    return error(str_format("stream truncated inside field '%.*s' payload",
                            static_cast<int>(found_name.size()),
                            found_name.data()));
  }
  if (kind != want) {
    return error(str_format(
        "expected %s field '%.*s', found %s '%.*s' — save/restore field "
        "lists have drifted",
        record_kind_name(want), static_cast<int>(name.size()), name.data(),
        record_kind_name(kind), static_cast<int>(found_name.size()),
        found_name.data()));
  }
  if (found_name != name && want != RecordKind::kSectionEnd) {
    return error(str_format(
        "expected field '%.*s', found '%.*s' — save/restore field lists "
        "have drifted",
        static_cast<int>(name.size()), name.data(),
        static_cast<int>(found_name.size()), found_name.data()));
  }
  payload = std::string_view(buffer_.data() + cursor, payload_len);
  pos_ = cursor + payload_len;
  return Status::ok();
}

Status SnapshotReader::begin_section(std::string_view name) {
  std::string_view payload;
  auto st = read_record(RecordKind::kSectionBegin, name, payload);
  if (!st.is_ok()) return st;
  section_stack_.emplace_back(name);
  return Status::ok();
}

Status SnapshotReader::end_section() {
  if (section_stack_.empty()) {
    return error("end_section with no section open");
  }
  std::string_view payload;
  auto st = read_record(RecordKind::kSectionEnd, "", payload);
  if (!st.is_ok()) return st;
  section_stack_.pop_back();
  return Status::ok();
}

bool SnapshotReader::at_section_end() const {
  if (pos_ + 3 > buffer_.size()) return true;
  const std::uint8_t raw = static_cast<unsigned char>(buffer_[pos_]);
  return raw == static_cast<std::uint8_t>(RecordKind::kSectionEnd);
}

Status SnapshotReader::read_u64(std::string_view name, std::uint64_t& out) {
  std::string_view payload;
  auto st = read_record(RecordKind::kU64, name, payload);
  if (!st.is_ok()) return st;
  out = decode_u64(payload.data());
  return Status::ok();
}

Status SnapshotReader::read_i64(std::string_view name, std::int64_t& out) {
  std::string_view payload;
  auto st = read_record(RecordKind::kI64, name, payload);
  if (!st.is_ok()) return st;
  out = static_cast<std::int64_t>(decode_u64(payload.data()));
  return Status::ok();
}

Status SnapshotReader::read_f64(std::string_view name, double& out) {
  std::string_view payload;
  auto st = read_record(RecordKind::kF64, name, payload);
  if (!st.is_ok()) return st;
  out = std::bit_cast<double>(decode_u64(payload.data()));
  return Status::ok();
}

Status SnapshotReader::read_bool(std::string_view name, bool& out) {
  std::string_view payload;
  auto st = read_record(RecordKind::kBool, name, payload);
  if (!st.is_ok()) return st;
  const std::uint8_t raw = static_cast<unsigned char>(payload[0]);
  if (raw > 1) {
    return error(str_format("bool field '%.*s' holds %u",
                            static_cast<int>(name.size()), name.data(), raw));
  }
  out = raw != 0;
  return Status::ok();
}

Status SnapshotReader::read_str(std::string_view name, std::string& out) {
  std::string_view payload;
  auto st = read_record(RecordKind::kStr, name, payload);
  if (!st.is_ok()) return st;
  out.assign(payload.data(), payload.size());
  return Status::ok();
}

Status SnapshotReader::read_bytes(std::string_view name, std::string& out) {
  std::string_view payload;
  auto st = read_record(RecordKind::kBytes, name, payload);
  if (!st.is_ok()) return st;
  out.assign(payload.data(), payload.size());
  return Status::ok();
}

std::string SnapshotRecord::value_text() const {
  switch (kind) {
    case RecordKind::kSectionBegin: return "{";
    case RecordKind::kSectionEnd: return "}";
    case RecordKind::kU64:
      return str_format("%llu", static_cast<unsigned long long>(
                                    decode_u64(payload.data())));
    case RecordKind::kI64:
      return str_format("%lld", static_cast<long long>(static_cast<std::int64_t>(
                                    decode_u64(payload.data()))));
    case RecordKind::kF64:
      return str_format("%.17g", std::bit_cast<double>(decode_u64(payload.data())));
    case RecordKind::kBool:
      return payload[0] ? "true" : "false";
    case RecordKind::kStr:
      return "\"" + payload + "\"";
    case RecordKind::kBytes:
      return str_format("<%zu bytes, fnv %016llx>", payload.size(),
                        static_cast<unsigned long long>(fnv1a(payload)));
  }
  return "?";
}

StatusOr<std::vector<SnapshotRecord>> read_records(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    return Status::not_found("snapshot: cannot open '" + path + "'");
  }
  std::string buf((std::istreambuf_iterator<char>(file)),
                  std::istreambuf_iterator<char>());
  auto records = decode_records(std::move(buf));
  if (!records.is_ok()) {
    return Status(records.status().code(),
                  "'" + path + "': " + records.status().message());
  }
  return records;
}

StatusOr<std::vector<SnapshotRecord>> decode_records(std::string buf) {
  {
    // Verify magic/version/checksum before walking the raw stream, so
    // structural errors below indicate an encoder bug, not corruption.
    auto verified = SnapshotReader::from_buffer(buf);
    if (!verified.is_ok()) return verified.status();
  }
  buf.resize(buf.size() - 8);  // drop the checksum footer
  std::size_t pos = sizeof(kMagic) + 4;
  std::vector<std::string> stack;
  std::vector<SnapshotRecord> records;
  while (pos < buf.size()) {
    if (pos + 3 > buf.size()) {
      return Status::internal("snapshot: trailing garbage after last record");
    }
    const std::uint8_t raw = static_cast<unsigned char>(buf[pos]);
    if (!known_kind(raw)) {
      return Status::internal(
          str_format("snapshot: unknown record tag %u at offset %zu", raw, pos));
    }
    const auto kind = static_cast<RecordKind>(raw);
    const std::uint16_t name_len = decode_u16(buf.data() + pos + 1);
    std::size_t cursor = pos + 3;
    if (cursor + name_len > buf.size()) {
      return Status::internal("snapshot: truncated record name");
    }
    std::string name(buf.data() + cursor, name_len);
    cursor += name_len;
    std::size_t payload_len = 0;
    switch (kind) {
      case RecordKind::kSectionBegin:
      case RecordKind::kSectionEnd: payload_len = 0; break;
      case RecordKind::kU64:
      case RecordKind::kI64:
      case RecordKind::kF64: payload_len = 8; break;
      case RecordKind::kBool: payload_len = 1; break;
      case RecordKind::kStr:
      case RecordKind::kBytes:
        if (cursor + 4 > buf.size()) {
          return Status::internal("snapshot: truncated length prefix");
        }
        payload_len = decode_u32(buf.data() + cursor);
        cursor += 4;
        break;
    }
    if (cursor + payload_len > buf.size()) {
      return Status::internal("snapshot: truncated record payload");
    }
    SnapshotRecord record;
    record.kind = kind;
    record.section = joined_path(stack);
    record.name = name;
    record.payload.assign(buf.data() + cursor, payload_len);
    if (kind == RecordKind::kSectionBegin) {
      stack.push_back(name);
    } else if (kind == RecordKind::kSectionEnd) {
      if (stack.empty()) {
        return Status::internal("snapshot: unbalanced section-end");
      }
      record.name = stack.back();
      stack.pop_back();
      record.section = joined_path(stack);
    }
    records.push_back(std::move(record));
    pos = cursor + payload_len;
  }
  if (!stack.empty()) {
    return Status::internal("snapshot: unclosed section '" + stack.back() + "'");
  }
  return records;
}

StatusOr<bool> diff_snapshots(const std::string& golden,
                              const std::string& other, std::string* report) {
  auto a = read_records(golden);
  if (!a.is_ok()) return a.status();
  auto b = read_records(other);
  if (!b.is_ok()) return b.status();

  const std::size_t n = std::min(a->size(), b->size());
  for (std::size_t i = 0; i < n; ++i) {
    const SnapshotRecord& ra = (*a)[i];
    const SnapshotRecord& rb = (*b)[i];
    if (ra.kind == rb.kind && ra.name == rb.name && ra.section == rb.section &&
        ra.payload == rb.payload) {
      continue;
    }
    if (report != nullptr) {
      *report = str_format(
          "first divergence at record %zu:\n"
          "  golden: [%s] %s / %s = %s\n"
          "  other:  [%s] %s / %s = %s",
          i, record_kind_name(ra.kind), ra.section.c_str(), ra.name.c_str(),
          ra.value_text().c_str(), record_kind_name(rb.kind),
          rb.section.c_str(), rb.name.c_str(), rb.value_text().c_str());
    }
    return false;
  }
  if (a->size() != b->size()) {
    if (report != nullptr) {
      const auto& longer = a->size() > b->size() ? *a : *b;
      const SnapshotRecord& extra = longer[n];
      *report = str_format(
          "snapshots agree on the first %zu records, but '%s' has %zu extra "
          "record(s) starting with [%s] %s / %s",
          n, (a->size() > b->size() ? golden : other).c_str(),
          longer.size() - n, record_kind_name(extra.kind),
          extra.section.c_str(), extra.name.c_str());
    }
    return false;
  }
  if (report != nullptr) report->clear();
  return true;
}

StatusOr<std::vector<std::pair<std::string, std::uint64_t>>> section_digests(
    const std::string& path) {
  auto records = read_records(path);
  if (!records.is_ok()) return records.status();
  std::vector<std::pair<std::string, std::uint64_t>> digests;
  std::string current;
  std::uint64_t h = kFnvOffset;
  auto mix = [&h](std::string_view bytes) {
    for (const char c : bytes) {
      h ^= static_cast<unsigned char>(c);
      h *= kFnvPrime;
    }
  };
  for (const SnapshotRecord& record : *records) {
    const bool top_begin =
        record.kind == RecordKind::kSectionBegin && record.section.empty();
    if (top_begin) {
      current = record.name;
      h = kFnvOffset;
      continue;
    }
    const bool top_end =
        record.kind == RecordKind::kSectionEnd && record.section.empty();
    if (top_end) {
      digests.emplace_back(current, h);
      current.clear();
      continue;
    }
    mix(record.name);
    mix(record.payload);
  }
  return digests;
}

}  // namespace dc::snapshot
