#include "cost/invoice.hpp"

#include <map>

#include "util/csv.hpp"
#include "util/strings.hpp"

namespace dc::cost {
namespace {

InvoiceLine line_from_lease(const cluster::Lease& lease, SimTime horizon,
                            double price) {
  InvoiceLine line;
  line.item = lease.tag.empty() ? "lease" : lease.tag;
  line.nodes = lease.nodes;
  line.start = lease.start;
  line.end = lease.end == kNever ? horizon : lease.end;
  line.billed_hours = billed_hours(line.end - line.start);
  line.node_hours = line.nodes * line.billed_hours;
  line.amount_usd = static_cast<double>(line.node_hours) * price;
  return line;
}

void finalize(Invoice& invoice) {
  for (const InvoiceLine& line : invoice.lines) {
    invoice.total_node_hours += line.node_hours;
    invoice.total_usd += line.amount_usd;
  }
}

}  // namespace

Invoice generate_invoice(const std::string& consumer,
                         const cluster::LeaseLedger& ledger, SimTime horizon,
                         double price_per_node_hour) {
  Invoice invoice;
  invoice.consumer = consumer;
  invoice.period_end = horizon;
  invoice.price_per_node_hour = price_per_node_hour;
  for (const cluster::Lease& lease : ledger.leases()) {
    invoice.lines.push_back(line_from_lease(lease, horizon, price_per_node_hour));
  }
  finalize(invoice);
  return invoice;
}

Invoice generate_summary_invoice(const std::string& consumer,
                                 const cluster::LeaseLedger& ledger,
                                 SimTime horizon, double price_per_node_hour) {
  // Group by the tag's base ("DR1#7" -> "DR1").
  std::map<std::string, InvoiceLine> groups;
  for (const cluster::Lease& lease : ledger.leases()) {
    const InvoiceLine line = line_from_lease(lease, horizon, price_per_node_hour);
    std::string base = line.item;
    if (const auto hash = base.find('#'); hash != std::string::npos) {
      base.resize(hash);
    }
    auto [it, inserted] = groups.try_emplace(base, line);
    if (inserted) {
      it->second.item = base + " (1 lease)";
      it->second.nodes = line.nodes;
    } else {
      InvoiceLine& merged = it->second;
      merged.nodes += line.nodes;
      merged.start = std::min(merged.start, line.start);
      merged.end = std::max(merged.end, line.end);
      merged.billed_hours += line.billed_hours;
      merged.node_hours += line.node_hours;
      merged.amount_usd += line.amount_usd;
      // Rewrite the count in the label.
      const auto paren = merged.item.find(" (");
      const std::string head = merged.item.substr(0, paren);
      auto count_text = merged.item.substr(paren + 2);
      const std::int64_t count = *parse_int(
          split_ws(count_text).front());
      merged.item = head + str_format(" (%lld leases)",
                                      static_cast<long long>(count + 1));
    }
  }
  Invoice invoice;
  invoice.consumer = consumer;
  invoice.period_end = horizon;
  invoice.price_per_node_hour = price_per_node_hour;
  for (auto& [base, line] : groups) invoice.lines.push_back(std::move(line));
  finalize(invoice);
  return invoice;
}

std::string format_invoice(const Invoice& invoice, std::size_t max_lines) {
  TextTable table({"item", "nodes", "from", "to", "node*hours", "amount $"});
  std::size_t shown = 0;
  std::int64_t folded_node_hours = 0;
  double folded_usd = 0.0;
  std::size_t folded = 0;
  for (const InvoiceLine& line : invoice.lines) {
    if (shown < max_lines) {
      table.cell(line.item)
          .cell(line.nodes)
          .cell(format_time(line.start))
          .cell(format_time(line.end))
          .cell(line.node_hours)
          .cell(line.amount_usd, 2);
      table.end_row();
      ++shown;
    } else {
      ++folded;
      folded_node_hours += line.node_hours;
      folded_usd += line.amount_usd;
    }
  }
  if (folded > 0) {
    table.cell(str_format("... %zu more line items", folded))
        .cell(std::string_view(""))
        .cell(std::string_view(""))
        .cell(std::string_view(""))
        .cell(folded_node_hours)
        .cell(folded_usd, 2);
    table.end_row();
  }
  std::string out = table.render(
      str_format("Invoice for %s — period %s to %s @ $%.2f/node*hour",
                 invoice.consumer.c_str(),
                 format_time(invoice.period_start).c_str(),
                 format_time(invoice.period_end).c_str(),
                 invoice.price_per_node_hour));
  out += str_format("TOTAL: %lld node*hours, $%.2f\n",
                    static_cast<long long>(invoice.total_node_hours),
                    invoice.total_usd);
  return out;
}

}  // namespace dc::cost
