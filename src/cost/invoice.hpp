// Invoices: the resource provider's billing statement for one consumer.
//
// Converts a lease ledger (the provision service's record of what a TRE or
// DRP user held and when) into line items priced at the hourly rate — the
// pay-per-use half of the paper's economics, complementing the TCO models.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/billing.hpp"
#include "cost/tco.hpp"
#include "util/time.hpp"

namespace dc::cost {

struct InvoiceLine {
  std::string item;  // lease tag ("initial", "DR1#3", "job", "vm", ...)
  std::int64_t nodes = 0;
  SimTime start = 0;
  SimTime end = 0;  // horizon-clipped for open leases
  std::int64_t billed_hours = 0;     // per node
  std::int64_t node_hours = 0;       // nodes * billed_hours
  double amount_usd = 0.0;
};

struct Invoice {
  std::string consumer;
  SimTime period_start = 0;
  SimTime period_end = 0;
  double price_per_node_hour = 0.0;
  std::vector<InvoiceLine> lines;
  std::int64_t total_node_hours = 0;
  double total_usd = 0.0;
};

/// Builds an invoice over [0, horizon] from a ledger. Leases still open at
/// the horizon are billed as if closed there. Lines appear in lease order.
Invoice generate_invoice(const std::string& consumer,
                         const cluster::LeaseLedger& ledger, SimTime horizon,
                         double price_per_node_hour = Ec2CostModel{}.usd_per_instance_hour);

/// Same, but merges lines with the same base tag (the part before '#') —
/// the summary view for ledgers with hundreds of grants.
Invoice generate_summary_invoice(const std::string& consumer,
                                 const cluster::LeaseLedger& ledger,
                                 SimTime horizon,
                                 double price_per_node_hour =
                                     Ec2CostModel{}.usd_per_instance_hour);

/// Renders the invoice; at most `max_lines` line items are printed (the
/// rest are folded into an "... N more" row), totals always shown.
std::string format_invoice(const Invoice& invoice, std::size_t max_lines = 20);

}  // namespace dc::cost
