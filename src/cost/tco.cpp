#include "cost/tco.hpp"

#include "util/strings.hpp"

namespace dc::cost {

TcoComparison paper_tco_comparison() {
  const DcsCostModel dcs;
  const Ec2CostModel ec2;
  TcoComparison comparison;
  comparison.dcs_per_month = dcs.tco_per_month();
  // 30 instances match the DCS configuration; inbound transfer is bounded
  // by 1,000 GB/month from the system logs.
  comparison.ssp_per_month = ec2.tco_per_month(30, 1000.0);
  comparison.ssp_over_dcs = comparison.ssp_per_month / comparison.dcs_per_month;
  return comparison;
}

std::string format_tco_report(const TcoComparison& comparison) {
  std::string out;
  out += "Total cost of ownership of the service provider (Section 4.5.5)\n";
  out += str_format("  TCO (DCS system) : $%.0f per month\n",
                    comparison.dcs_per_month);
  out += str_format("  TCO (SSP on EC2) : $%.0f per month\n",
                    comparison.ssp_per_month);
  out += str_format("  SSP / DCS        : %.1f%%\n",
                    100.0 * comparison.ssp_over_dcs);
  return out;
}

double consumption_cost_usd(std::int64_t node_hours, const Ec2CostModel& model) {
  return static_cast<double>(node_hours) * model.usd_per_instance_hour;
}

double dcs_cost_for_nodes(std::int64_t nodes, const DcsCostModel& model) {
  // The reference deployment's capacity equals 30 normalized nodes.
  return model.tco_per_month() / 30.0 * static_cast<double>(nodes);
}

}  // namespace dc::cost
