// Total cost of ownership models (Section 4.5.5).
//
// The paper compares a real DCS deployment (the grid lab of Beijing
// University of Technology, 2006) against renting the matching capacity
// from EC2 (the SSP system):
//
//   TCO_dcs = CapEx depreciation + OpEx                           (1)
//   TCO_ssp = total instance cost + inbound transfer cost         (2)
//
// with the published constants: $120,000 CapEx over an 8-year depreciation
// cycle, $30,000 total maintenance over the same cycle, $1,600/month energy
// and space; EC2 at $0.10 per instance-hour and $0.10 per GB inbound, 30
// instances matching the 15-node dual-CPU cluster, <1,000 GB/month
// transfer. Result: $3,160/month vs $2,260/month (71.5%).
#pragma once

#include <cstdint>
#include <string>

namespace dc::cost {

/// Dedicated cluster system cost model.
struct DcsCostModel {
  double capex_usd = 120'000.0;
  double depreciation_years = 8.0;
  /// Total maintenance over the depreciation cycle.
  double maintenance_total_usd = 30'000.0;
  double energy_and_space_usd_per_month = 1'600.0;

  double capex_depreciation_per_month() const {
    return capex_usd / (depreciation_years * 12.0);
  }
  double maintenance_per_month() const {
    return maintenance_total_usd / (depreciation_years * 12.0);
  }
  double opex_per_month() const {
    return maintenance_per_month() + energy_and_space_usd_per_month;
  }
  /// TCO_dcs per month (equation 1).
  double tco_per_month() const {
    return capex_depreciation_per_month() + opex_per_month();
  }
};

/// EC2-style leased capacity cost model (the SSP provider's costs).
struct Ec2CostModel {
  double usd_per_instance_hour = 0.10;
  double usd_per_gb_inbound = 0.10;

  /// Instance cost for `instances` running around the clock for
  /// `days_per_month` days.
  double instance_cost_per_month(std::int64_t instances,
                                 double days_per_month = 30.0) const {
    return static_cast<double>(instances) * 24.0 * days_per_month *
           usd_per_instance_hour;
  }
  double transfer_cost_per_month(double gb_per_month) const {
    return gb_per_month * usd_per_gb_inbound;
  }
  /// TCO_ssp per month (equation 2).
  double tco_per_month(std::int64_t instances, double gb_per_month,
                       double days_per_month = 30.0) const {
    return instance_cost_per_month(instances, days_per_month) +
           transfer_cost_per_month(gb_per_month);
  }
};

/// The paper's concrete comparison: a 15-node dual-dual-core DCS matched by
/// 30 EC2 instances with <=1,000 GB/month inbound transfer.
struct TcoComparison {
  double dcs_per_month = 0.0;
  double ssp_per_month = 0.0;
  double ssp_over_dcs = 0.0;  // the paper's 71.5%
};

TcoComparison paper_tco_comparison();

/// Human-readable rendering of the comparison.
std::string format_tco_report(const TcoComparison& comparison);

/// On-demand cost of a measured consumption, for connecting the node*hour
/// tables to dollars: consumption * $/instance-hour.
double consumption_cost_usd(std::int64_t node_hours,
                            const Ec2CostModel& model = {});

/// Monthly ownership cost of a DCS scaled to `nodes` one-CPU nodes, using
/// the paper's real case as the per-node anchor (its 15-node dual-CPU
/// cluster matches 30 one-CPU instances, so one normalized node costs
/// TCO/30 per month). Lets examples price arbitrary-size dedicated
/// clusters consistently with Section 4.5.5.
double dcs_cost_for_nodes(std::int64_t nodes, const DcsCostModel& model = {});

}  // namespace dc::cost
