// The resource provider's pool of nodes.
//
// The paper's cloud platform is a centralized cluster (Section 1: "when we
// refer to a cloud platform, it indicates a centralized cluster system").
// Nodes are fungible after the Section 4.4 normalization to one CPU per
// node, so the pool tracks counts, not node identities. A pool may be
// bounded (DCS/SSP capacity planning experiments) or effectively unbounded
// (the EC2-like provider in DRP and DawningCloud runs, where capacity
// planning is the *output*, measured as peak consumption).
#pragma once

#include <cstdint>
#include <optional>

#include "snapshot/format.hpp"
#include "util/status.hpp"

namespace dc::cluster {

using NodeCount = std::int64_t;

class ResourcePool {
 public:
  /// A pool with a hard capacity.
  explicit ResourcePool(NodeCount capacity);

  /// An unbounded pool (capacity planning measured after the fact).
  static ResourcePool unbounded();

  bool is_bounded() const { return capacity_.has_value(); }

  /// Total capacity; only valid for bounded pools.
  NodeCount capacity() const;

  NodeCount allocated() const { return allocated_; }

  /// Free nodes; for unbounded pools this is "infinite" and reported as the
  /// largest representable count.
  NodeCount free() const;

  /// True if `count` nodes can be allocated right now.
  bool can_allocate(NodeCount count) const;

  /// Allocates exactly `count` nodes, or fails without side effects.
  /// Mirrors the paper's provision policy: "either assigns enough resources
  /// to the server or rejects if [it] has no enough resources" (§3.2.2.3).
  Status allocate(NodeCount count);

  /// Returns `count` nodes to the pool. It is a logic error to release more
  /// than allocated.
  void release(NodeCount count);

  /// Capacity is construction-time configuration; only the allocation level
  /// is state. Restore verifies the saved capacity against the rebuilt pool.
  Status save(snapshot::SnapshotWriter& writer) const;
  Status restore(snapshot::SnapshotReader& reader);

 private:
  ResourcePool() = default;

  std::optional<NodeCount> capacity_;
  NodeCount allocated_ = 0;
};

}  // namespace dc::cluster
