// Time series of concurrently held nodes.
//
// Records the step function usage(t) for one consumer (a service provider)
// or for the whole platform (the resource provider), and answers the
// paper's Section 4.3 metrics: total resource consumption (node*hour
// integral) and peak resource consumption (max concurrent nodes, reported
// per hour in Figure 13).
#pragma once

#include <cstdint>
#include <vector>

#include "snapshot/format.hpp"
#include "util/status.hpp"
#include "util/time.hpp"

namespace dc::cluster {

class UsageRecorder {
 public:
  /// Applies a usage delta at time `t`. Times must be nondecreasing across
  /// calls. Negative deltas must not drive usage below zero.
  void change(SimTime t, std::int64_t delta);

  /// Current usage level.
  std::int64_t current() const { return current_; }

  /// Highest usage level seen so far.
  std::int64_t peak() const { return peak_; }

  /// Exact integral of usage over [0, horizon], in node*hours.
  /// `horizon` must be >= the last change time.
  double node_hours(SimTime horizon) const;

  /// Max usage within each whole hour of [0, horizon) — the Figure 13
  /// "nodes per hour" series.
  std::vector<std::int64_t> hourly_peak_series(SimTime horizon) const;

  /// Mean usage within each whole hour of [0, horizon).
  std::vector<double> hourly_mean_series(SimTime horizon) const;

  /// The recorded breakpoints as (time, level-after) pairs.
  struct Breakpoint {
    SimTime time;
    std::int64_t level;
  };
  const std::vector<Breakpoint>& breakpoints() const { return breakpoints_; }

  /// All derived metrics (node_hours, hourly series) are computed from the
  /// breakpoints, so the full vector is saved and restored verbatim.
  Status save(snapshot::SnapshotWriter& writer) const;
  Status restore(snapshot::SnapshotReader& reader);

 private:
  std::int64_t current_ = 0;
  std::int64_t peak_ = 0;
  std::vector<Breakpoint> breakpoints_;
};

}  // namespace dc::cluster
