#include "cluster/billing.hpp"

#include <cassert>

namespace dc::cluster {

LeaseId LeaseLedger::open(SimTime start, std::int64_t nodes, std::string tag) {
  assert(nodes >= 0 && start >= 0);
  leases_.push_back(Lease{nodes, start, kNever, std::move(tag)});
  return leases_.size() - 1;
}

void LeaseLedger::close(LeaseId id, SimTime end) {
  assert(id < leases_.size());
  Lease& lease = leases_[id];
  assert(lease.end == kNever && "lease already closed");
  assert(end >= lease.start);
  lease.end = end;
}

void LeaseLedger::amend_end(LeaseId id, SimTime end) {
  assert(id < leases_.size());
  Lease& lease = leases_[id];
  assert(lease.end != kNever && "amend_end is for already-closed leases");
  assert(end >= lease.start && end <= lease.end);
  lease.end = end;
}

void LeaseLedger::record(SimTime start, SimTime end, std::int64_t nodes,
                         std::string tag) {
  assert(end >= start);
  leases_.push_back(Lease{nodes, start, end, std::move(tag)});
}

std::int64_t LeaseLedger::billed_node_hours(SimTime horizon) const {
  return billed_node_hours_with_quantum(horizon, kHour);
}

std::int64_t LeaseLedger::billed_node_hours_with_quantum(
    SimTime horizon, SimDuration quantum) const {
  assert(quantum > 0);
  std::int64_t total = 0;
  for (const Lease& lease : leases_) {
    const SimTime end = lease.end == kNever ? horizon : lease.end;
    if (end <= lease.start) continue;
    const std::int64_t quanta = ceil_div(end - lease.start, quantum);
    // Billed node*hours = nodes * quanta * (quantum/1h); keep integer math
    // exact for the common case quantum == kHour.
    total += lease.nodes * quanta * quantum / kHour;
  }
  return total;
}

double LeaseLedger::exact_node_hours(SimTime horizon) const {
  double total = 0.0;
  for (const Lease& lease : leases_) {
    const SimTime end = lease.end == kNever ? horizon : lease.end;
    if (end <= lease.start) continue;
    total += static_cast<double>(lease.nodes) * to_hours(end - lease.start);
  }
  return total;
}

void AdjustmentMeter::record(SimTime t, std::int64_t nodes) {
  assert(nodes >= 0);
  if (nodes == 0) return;
  total_ += nodes;
  events_.push_back({t, nodes});
}

double AdjustmentMeter::overhead_seconds_per_hour(SimTime horizon) const {
  if (horizon <= 0) return 0.0;
  return overhead_seconds() / to_hours(horizon);
}

}  // namespace dc::cluster
