#include "cluster/billing.hpp"

#include <algorithm>
#include <cassert>

namespace dc::cluster {

LeaseId LeaseLedger::open(SimTime start, std::int64_t nodes, std::string tag) {
  assert(nodes >= 0 && start >= 0);
  leases_.push_back(Lease{nodes, start, kNever, std::move(tag)});
  return leases_.size() - 1;
}

void LeaseLedger::close(LeaseId id, SimTime end) {
  assert(id < leases_.size());
  Lease& lease = leases_[id];
  assert(lease.end == kNever && "lease already closed");
  assert(end >= lease.start);
  lease.end = end;
}

void LeaseLedger::amend_end(LeaseId id, SimTime end) {
  assert(id < leases_.size());
  Lease& lease = leases_[id];
  assert(lease.end != kNever && "amend_end is for already-closed leases");
  // Clamp rather than assert: a failure at (or arithmetically before) the
  // lease start amends to a zero-length lease that bills zero hours, and a
  // second amend after a retry's earlier failure must not re-extend the
  // lease. See billing_test "AmendEnd*" for the pinned semantics.
  lease.end = std::clamp(end, lease.start, lease.end);
}

void LeaseLedger::record(SimTime start, SimTime end, std::int64_t nodes,
                         std::string tag) {
  assert(end >= start);
  leases_.push_back(Lease{nodes, start, end, std::move(tag)});
}

std::int64_t LeaseLedger::billed_node_hours(SimTime horizon) const {
  return billed_node_hours_with_quantum(horizon, kHour);
}

std::int64_t LeaseLedger::billed_node_hours_with_quantum(
    SimTime horizon, SimDuration quantum) const {
  assert(quantum > 0);
  std::int64_t total = 0;
  for (const Lease& lease : leases_) {
    const SimTime end = lease.end == kNever ? horizon : lease.end;
    if (end <= lease.start) continue;
    const std::int64_t quanta = ceil_div(end - lease.start, quantum);
    // Billed node*hours = nodes * quanta * (quantum/1h); keep integer math
    // exact for the common case quantum == kHour.
    total += lease.nodes * quanta * quantum / kHour;
  }
  return total;
}

double LeaseLedger::exact_node_hours(SimTime horizon) const {
  double total = 0.0;
  for (const Lease& lease : leases_) {
    const SimTime end = lease.end == kNever ? horizon : lease.end;
    if (end <= lease.start) continue;
    total += static_cast<double>(lease.nodes) * to_hours(end - lease.start);
  }
  return total;
}

void AdjustmentMeter::record(SimTime t, std::int64_t nodes) {
  assert(nodes >= 0);
  if (nodes == 0) return;
  total_ += nodes;
  events_.push_back({t, nodes});
}

double AdjustmentMeter::overhead_seconds_per_hour(SimTime horizon) const {
  if (horizon <= 0) return 0.0;
  return overhead_seconds() / to_hours(horizon);
}

Status LeaseLedger::save(snapshot::SnapshotWriter& writer) const {
  writer.field_u64("lease_count", leases_.size());
  for (const Lease& lease : leases_) {
    writer.field_i64("nodes", lease.nodes);
    writer.field_time("start", lease.start);
    writer.field_time("end", lease.end);
    writer.field_str("tag", lease.tag);
  }
  return Status::ok();
}

Status LeaseLedger::restore(snapshot::SnapshotReader& reader) {
  std::uint64_t count = 0;
  if (auto st = reader.read_u64("lease_count", count); !st.is_ok()) return st;
  leases_.clear();
  leases_.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    Lease lease;
    if (auto st = reader.read_i64("nodes", lease.nodes); !st.is_ok()) return st;
    if (auto st = reader.read_time("start", lease.start); !st.is_ok()) return st;
    if (auto st = reader.read_time("end", lease.end); !st.is_ok()) return st;
    if (auto st = reader.read_str("tag", lease.tag); !st.is_ok()) return st;
    leases_.push_back(std::move(lease));
  }
  return Status::ok();
}

Status AdjustmentMeter::save(snapshot::SnapshotWriter& writer) const {
  writer.field_i64("total_adjusted_nodes", total_);
  writer.field_u64("event_count", events_.size());
  for (const Adjustment& event : events_) {
    writer.field_time("time", event.time);
    writer.field_i64("nodes", event.nodes);
  }
  return Status::ok();
}

Status AdjustmentMeter::restore(snapshot::SnapshotReader& reader) {
  if (auto st = reader.read_i64("total_adjusted_nodes", total_); !st.is_ok()) {
    return st;
  }
  std::uint64_t count = 0;
  if (auto st = reader.read_u64("event_count", count); !st.is_ok()) return st;
  events_.clear();
  events_.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    Adjustment event{};
    if (auto st = reader.read_time("time", event.time); !st.is_ok()) return st;
    if (auto st = reader.read_i64("nodes", event.nodes); !st.is_ok()) return st;
    events_.push_back(event);
  }
  return Status::ok();
}

}  // namespace dc::cluster
