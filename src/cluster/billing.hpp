// Lease ledger with hourly billing quantum, and the node-adjustment /
// setup-overhead accounting of Section 4.5.4.
//
// Section 4.4: "The time unit of leasing resources: ... we set a quite long
// time unit: one hour ... In fact, EC2 also charges resources with this time
// unit." Every cloud-style system (SSP, DRP, DawningCloud) therefore bills
// each lease as nodes * ceil(duration / 1h). The DCS system owns its nodes
// and is billed as configured_size * workload_period instead.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "snapshot/format.hpp"
#include "util/status.hpp"
#include "util/time.hpp"

namespace dc::cluster {

/// One lease of `nodes` nodes over [start, end). An open lease has
/// end == kNever and is closed explicitly or at the billing horizon.
struct Lease {
  std::int64_t nodes = 0;
  SimTime start = 0;
  SimTime end = kNever;
  /// What this lease is for (diagnostics; e.g. "initial", "DR1", "job 42").
  std::string tag;
};

using LeaseId = std::size_t;

/// Records leases for one consumer and computes quantized consumption.
class LeaseLedger {
 public:
  /// Opens a lease at `start`. Returns its id for later closing.
  LeaseId open(SimTime start, std::int64_t nodes, std::string tag = {});

  /// Closes an open lease at `end` (>= its start).
  void close(LeaseId id, SimTime end);

  /// Re-closes lease `id` at an earlier `end`: a killed DRP job's lease
  /// ends at the failure instant instead of its planned completion. The new
  /// end is clamped into [start, current end]: amending to (or before) the
  /// start leaves a zero-length lease that bills zero hours, amending past
  /// the current end never extends the lease, and a double amend is
  /// monotonic (each amend can only shorten the lease further).
  void amend_end(LeaseId id, SimTime end);

  /// Records an already-complete lease (convenience for per-job billing).
  void record(SimTime start, SimTime end, std::int64_t nodes, std::string tag = {});

  /// Node*hours billed with the hourly quantum; open leases are treated as
  /// closing at `horizon`.
  std::int64_t billed_node_hours(SimTime horizon) const;

  /// Exact (unquantized) node*hours, for ablation of the billing quantum.
  double exact_node_hours(SimTime horizon) const;

  /// Node*hours billed with an arbitrary quantum (ablation support).
  std::int64_t billed_node_hours_with_quantum(SimTime horizon,
                                              SimDuration quantum) const;

  std::size_t lease_count() const { return leases_.size(); }
  const std::vector<Lease>& leases() const { return leases_; }

  Status save(snapshot::SnapshotWriter& writer) const;
  Status restore(snapshot::SnapshotReader& reader);

 private:
  std::vector<Lease> leases_;
};

/// Counts node adjustments (Section 4.5.4): each node assigned to or
/// reclaimed from a runtime environment triggers setup work (stopping /
/// uninstalling the previous RE's packages, installing / starting the new
/// ones) measured at 15.743 seconds per node in the paper's real test.
class AdjustmentMeter {
 public:
  static constexpr double kDefaultSecondsPerNode = 15.743;

  explicit AdjustmentMeter(double seconds_per_node = kDefaultSecondsPerNode)
      : seconds_per_node_(seconds_per_node) {}

  /// Records that `nodes` nodes changed hands at time `t`.
  void record(SimTime t, std::int64_t nodes);

  /// Accumulated number of adjusted nodes ("accumulated times of adjusting
  /// nodes", Figure 14).
  std::int64_t total_adjusted_nodes() const { return total_; }

  /// Total setup overhead in seconds.
  double overhead_seconds() const {
    return seconds_per_node_ * static_cast<double>(total_);
  }

  /// Mean overhead per hour of experiment time (the paper reports ~341
  /// seconds per hour for DawningCloud).
  double overhead_seconds_per_hour(SimTime horizon) const;

  /// Adjustment events as (time, nodes) pairs, for the Figure 14 series.
  struct Adjustment {
    SimTime time;
    std::int64_t nodes;
  };
  const std::vector<Adjustment>& events() const { return events_; }

  Status save(snapshot::SnapshotWriter& writer) const;
  Status restore(snapshot::SnapshotReader& reader);

 private:
  double seconds_per_node_;  // dc-volatile: fixed by the billing config
  std::int64_t total_ = 0;
  std::vector<Adjustment> events_;
};

}  // namespace dc::cluster
