#include "cluster/usage_recorder.hpp"

#include <algorithm>
#include <cassert>

namespace dc::cluster {

void UsageRecorder::change(SimTime t, std::int64_t delta) {
  assert(t >= 0);
  assert(breakpoints_.empty() || t >= breakpoints_.back().time);
  current_ += delta;
  assert(current_ >= 0 && "usage went negative");
  peak_ = std::max(peak_, current_);
  if (!breakpoints_.empty() && breakpoints_.back().time == t) {
    breakpoints_.back().level = current_;
  } else {
    breakpoints_.push_back({t, current_});
  }
}

double UsageRecorder::node_hours(SimTime horizon) const {
  if (breakpoints_.empty()) return 0.0;
  assert(horizon >= breakpoints_.back().time);
  double node_seconds = 0.0;
  std::int64_t level = 0;
  SimTime prev = 0;
  for (const auto& bp : breakpoints_) {
    node_seconds += static_cast<double>(level) * static_cast<double>(bp.time - prev);
    level = bp.level;
    prev = bp.time;
  }
  node_seconds += static_cast<double>(level) * static_cast<double>(horizon - prev);
  return node_seconds / static_cast<double>(kHour);
}

std::vector<std::int64_t> UsageRecorder::hourly_peak_series(SimTime horizon) const {
  const auto hours = static_cast<std::size_t>(ceil_div(horizon, kHour));
  std::vector<std::int64_t> series(hours, 0);
  if (hours == 0) return series;
  std::int64_t level = 0;
  SimTime prev = 0;
  auto fill = [&](SimTime from, SimTime to, std::int64_t lvl) {
    if (from >= to) return;
    const auto first = static_cast<std::size_t>(from / kHour);
    // `to` is exclusive: a segment ending exactly on an hour boundary does
    // not touch the next hour.
    const auto last = static_cast<std::size_t>((to - 1) / kHour);
    for (std::size_t h = first; h <= last && h < series.size(); ++h) {
      series[h] = std::max(series[h], lvl);
    }
  };
  for (const auto& bp : breakpoints_) {
    fill(prev, std::min(bp.time, horizon), level);
    level = bp.level;
    prev = bp.time;
    if (prev >= horizon) break;
  }
  fill(prev, horizon, level);
  return series;
}

Status UsageRecorder::save(snapshot::SnapshotWriter& writer) const {
  writer.field_i64("current", current_);
  writer.field_i64("peak", peak_);
  writer.field_u64("breakpoint_count", breakpoints_.size());
  for (const Breakpoint& bp : breakpoints_) {
    writer.field_time("time", bp.time);
    writer.field_i64("level", bp.level);
  }
  return Status::ok();
}

Status UsageRecorder::restore(snapshot::SnapshotReader& reader) {
  if (auto st = reader.read_i64("current", current_); !st.is_ok()) return st;
  if (auto st = reader.read_i64("peak", peak_); !st.is_ok()) return st;
  std::uint64_t count = 0;
  if (auto st = reader.read_u64("breakpoint_count", count); !st.is_ok()) {
    return st;
  }
  breakpoints_.clear();
  breakpoints_.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    Breakpoint bp{};
    if (auto st = reader.read_time("time", bp.time); !st.is_ok()) return st;
    if (auto st = reader.read_i64("level", bp.level); !st.is_ok()) return st;
    breakpoints_.push_back(bp);
  }
  return Status::ok();
}

std::vector<double> UsageRecorder::hourly_mean_series(SimTime horizon) const {
  const auto hours = static_cast<std::size_t>(ceil_div(horizon, kHour));
  std::vector<double> series(hours, 0.0);
  if (hours == 0) return series;
  std::int64_t level = 0;
  SimTime prev = 0;
  auto fill = [&](SimTime from, SimTime to, std::int64_t lvl) {
    while (from < to) {
      const auto h = static_cast<std::size_t>(from / kHour);
      const SimTime hour_end = (static_cast<SimTime>(h) + 1) * kHour;
      const SimTime seg_end = std::min(to, hour_end);
      if (h < series.size()) {
        series[h] += static_cast<double>(lvl) *
                     static_cast<double>(seg_end - from) /
                     static_cast<double>(kHour);
      }
      from = seg_end;
    }
  };
  for (const auto& bp : breakpoints_) {
    fill(prev, std::min(bp.time, horizon), level);
    level = bp.level;
    prev = bp.time;
    if (prev >= horizon) break;
  }
  fill(prev, horizon, level);
  return series;
}

}  // namespace dc::cluster
