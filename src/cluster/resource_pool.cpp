#include "cluster/resource_pool.hpp"

#include <cassert>
#include <limits>

#include "util/strings.hpp"

namespace dc::cluster {

ResourcePool::ResourcePool(NodeCount capacity) : capacity_(capacity) {
  assert(capacity >= 0);
}

ResourcePool ResourcePool::unbounded() { return ResourcePool(); }

NodeCount ResourcePool::capacity() const {
  assert(capacity_.has_value() && "unbounded pool has no capacity");
  return *capacity_;
}

NodeCount ResourcePool::free() const {
  if (!capacity_) return std::numeric_limits<NodeCount>::max();
  return *capacity_ - allocated_;
}

bool ResourcePool::can_allocate(NodeCount count) const {
  assert(count >= 0);
  if (!capacity_) return true;
  return allocated_ + count <= *capacity_;
}

Status ResourcePool::allocate(NodeCount count) {
  assert(count >= 0);
  if (!can_allocate(count)) {
    return Status::resource_exhausted(
        str_format("requested %lld nodes, only %lld free",
                   static_cast<long long>(count), static_cast<long long>(free())));
  }
  allocated_ += count;
  return Status::ok();
}

void ResourcePool::release(NodeCount count) {
  assert(count >= 0);
  assert(count <= allocated_ && "releasing more nodes than allocated");
  allocated_ -= count;
}

}  // namespace dc::cluster
