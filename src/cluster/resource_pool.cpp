#include "cluster/resource_pool.hpp"

#include <cassert>
#include <limits>

#include "util/strings.hpp"

namespace dc::cluster {

ResourcePool::ResourcePool(NodeCount capacity) : capacity_(capacity) {
  assert(capacity >= 0);
}

ResourcePool ResourcePool::unbounded() { return ResourcePool(); }

NodeCount ResourcePool::capacity() const {
  assert(capacity_.has_value() && "unbounded pool has no capacity");
  return *capacity_;
}

NodeCount ResourcePool::free() const {
  if (!capacity_) return std::numeric_limits<NodeCount>::max();
  return *capacity_ - allocated_;
}

bool ResourcePool::can_allocate(NodeCount count) const {
  assert(count >= 0);
  if (!capacity_) return true;
  return allocated_ + count <= *capacity_;
}

Status ResourcePool::allocate(NodeCount count) {
  assert(count >= 0);
  if (!can_allocate(count)) {
    return Status::resource_exhausted(
        str_format("requested %lld nodes, only %lld free",
                   static_cast<long long>(count), static_cast<long long>(free())));
  }
  allocated_ += count;
  return Status::ok();
}

void ResourcePool::release(NodeCount count) {
  assert(count >= 0);
  assert(count <= allocated_ && "releasing more nodes than allocated");
  allocated_ -= count;
}

Status ResourcePool::save(snapshot::SnapshotWriter& writer) const {
  writer.field_bool("bounded", capacity_.has_value());
  writer.field_i64("capacity", capacity_.value_or(-1));
  writer.field_i64("allocated", allocated_);
  return Status::ok();
}

Status ResourcePool::restore(snapshot::SnapshotReader& reader) {
  bool bounded = false;
  if (auto st = reader.read_bool("bounded", bounded); !st.is_ok()) return st;
  NodeCount capacity = -1;
  if (auto st = reader.read_i64("capacity", capacity); !st.is_ok()) return st;
  if (bounded != capacity_.has_value() ||
      (bounded && capacity != *capacity_)) {
    return Status::failed_precondition(
        "resource pool: snapshot capacity " +
        (bounded ? std::to_string(capacity) : std::string("unbounded")) +
        " does not match the rebuilt pool — the snapshot belongs to a "
        "different experiment configuration");
  }
  if (auto st = reader.read_i64("allocated", allocated_); !st.is_ok()) {
    return st;
  }
  return Status::ok();
}

}  // namespace dc::cluster
