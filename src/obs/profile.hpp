// Kernel self-profiling (see docs/OBSERVABILITY.md).
//
// A PhaseProfiler accumulates wall-clock time per kernel phase — event
// dispatch, sweep-pool chunks, snapshot write/restore, trace export —
// and reports it two ways: an aligned per-run table for humans, and a
// flat name→value counter block shaped for bench_to_json, so benchmark
// runs can publish dispatch-phase timings into BENCH_*.json.
//
// Wall-clock readings use std::chrono::steady_clock and are strictly
// observational: no simulation decision ever reads them, so profiling a
// run cannot perturb its results (dc-r1 bans wall clocks from
// *simulation* logic; the profiler is measurement, not logic).
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/parallel.hpp"

namespace dc::obs {

enum class ProfilePhase : std::uint8_t {
  kDispatch = 0,         // Simulator::run_until event dispatch
  kSweep = 1,            // sweep-pool chunk execution (absorb_sweep)
  kSnapshotSave = 2,     // SystemRunner::save_file
  kSnapshotRestore = 3,  // SystemRunner::restore_file
  kExport = 4,           // trace / metrics export
  kPhaseCount = 5,
};

const char* profile_phase_name(ProfilePhase phase);

class PhaseProfiler {
 public:
  /// RAII phase timer; records on destruction.
  class Scope {
   public:
    Scope(PhaseProfiler* profiler, ProfilePhase phase)
        : profiler_(profiler), phase_(phase),
          start_(std::chrono::steady_clock::now()) {}
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;
    ~Scope() {
      const auto elapsed = std::chrono::steady_clock::now() - start_;
      profiler_->add(
          phase_,
          static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
                  .count()));
    }

   private:
    PhaseProfiler* profiler_;
    ProfilePhase phase_;
    std::chrono::steady_clock::time_point start_;
  };

  Scope scope(ProfilePhase phase) { return Scope(this, phase); }

  /// Records one timed call of `phase` covering `units` work items
  /// (events dispatched, bytes written, ...).
  void add(ProfilePhase phase, std::uint64_t ns, std::uint64_t units = 0) {
    accumulate(phase, 1, ns, units);
  }
  void accumulate(ProfilePhase phase, std::uint64_t calls, std::uint64_t ns,
                  std::uint64_t units);

  /// Folds collected sweep-pool chunk timings into the kSweep phase.
  void absorb_sweep(const SweepStats& stats);

  /// Extra named values published alongside the phase counters
  /// (peak_pending, events_processed, ...). Last write wins.
  void note(std::string_view name, double value);

  std::uint64_t calls(ProfilePhase phase) const;
  std::uint64_t ns(ProfilePhase phase) const;
  std::uint64_t units(ProfilePhase phase) const;

  /// Aligned per-run profile table.
  std::string table() const;

  /// Flat counter block: profile_<phase>_{ns,calls,units} for every
  /// exercised phase plus every note, in deterministic order. Feed each
  /// pair into benchmark user counters (or print as JSON) and
  /// bench_to_json passes them through into the committed BENCH files.
  std::vector<std::pair<std::string, double>> counters() const;

 private:
  struct PhaseTotals {
    std::uint64_t calls = 0;
    std::uint64_t ns = 0;
    std::uint64_t units = 0;
  };
  PhaseTotals totals_[static_cast<std::size_t>(ProfilePhase::kPhaseCount)];
  std::vector<std::pair<std::string, double>> notes_;
};

}  // namespace dc::obs
