// Per-run metrics registry (see docs/OBSERVABILITY.md).
//
// A MetricsRegistry owns named counters, gauges, RunningStats and
// Histogram instruments for exactly one run — never a global, so
// parallel parameter sweeps stay race-free by construction: each sweep
// lane owns (or omits) its own registry, exactly like the TraceSink.
//
// Besides end-of-run instruments, the registry records a long-format
// timeseries: SystemRunner arms a periodic sim timer that calls
// `sample(now, metric, value)` for queue depths, node states and
// outstanding leases, and the rows flush to CSV
// (time,metric,value) for plotting without re-running the experiment.
//
// Instruments live in insertion order (no unordered-container
// iteration, per dc-r2), so every export is deterministic.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "util/histogram.hpp"
#include "util/status.hpp"
#include "util/time.hpp"

namespace dc::obs {

/// One recorded timeseries row.
struct MetricSample {
  SimTime time = 0;
  std::uint32_t metric = 0;  // index into metric_names()
  double value = 0.0;
};

class MetricsRegistry {
 public:
  /// Counters: monotonic event tallies ("jobs.completed").
  void add_counter(std::string_view name, std::uint64_t delta = 1);
  std::uint64_t counter(std::string_view name) const;

  /// Gauges: last-write-wins instantaneous values.
  void set_gauge(std::string_view name, double value);
  double gauge(std::string_view name) const;

  /// Streaming stats instrument, created on first use.
  RunningStats& stats(std::string_view name);
  const RunningStats* find_stats(std::string_view name) const;

  /// Fixed-bin histogram instrument, created on first use (later calls
  /// ignore the bounds and return the existing instrument).
  Histogram& histogram(std::string_view name, double lo, double hi,
                       std::size_t bins);

  /// Appends a timeseries row; `metric` is interned on first use.
  void sample(SimTime now, std::string_view metric, double value);

  std::size_t sample_count() const { return samples_.size(); }
  const std::vector<MetricSample>& samples() const { return samples_; }
  const std::vector<std::string>& metric_names() const { return sample_names_; }

  /// Long-format CSV: time,metric,value — one row per sample().
  std::string timeseries_csv() const;
  Status export_timeseries_csv(const std::string& path) const;

  /// Aligned end-of-run table of every counter, gauge and stats
  /// instrument (histograms render via Histogram::render).
  std::string summary() const;

 private:
  template <typename T>
  struct Named {
    std::string name;
    T value;
  };
  // Insertion-ordered instrument stores with by-name indices.
  std::vector<Named<std::uint64_t>> counters_;
  std::map<std::string, std::size_t, std::less<>> counter_ids_;
  std::vector<Named<double>> gauges_;
  std::map<std::string, std::size_t, std::less<>> gauge_ids_;
  std::vector<Named<RunningStats>> stats_;
  std::map<std::string, std::size_t, std::less<>> stats_ids_;
  std::vector<Named<Histogram>> histograms_;
  std::map<std::string, std::size_t, std::less<>> histogram_ids_;
  std::vector<std::string> sample_names_;
  std::map<std::string, std::uint32_t, std::less<>> sample_ids_;
  std::vector<MetricSample> samples_;
};

}  // namespace dc::obs
