// Deterministic structured tracing (see docs/OBSERVABILITY.md).
//
// A TraceSink records typed, sim-time-stamped events — instants ("job
// arrived") and spans ("job ran for 40 min") — into a bounded binary ring
// buffer. Everything about a sink is a pure function of the simulated
// run: timestamps are SimTime seconds, names are interned in first-use
// order, and the ring drops oldest-first with an explicit counter, so two
// runs of the same experiment produce byte-identical exports regardless
// of DC_THREADS and regardless of snapshot/resume boundaries. That makes
// the trace a determinism oracle in its own right: `dawningcloud
// trace-summary --trace a.json --other b.json` reports the first
// diverging event the way snapshot-diff reports the first diverging
// field.
//
// Sinks are owned per run (one per Simulator), never global, so parallel
// parameter sweeps stay race-free: each sweep lane traces into its own
// sink or into none.
//
// Emission goes through the DC_TRACE_* macros. By default they compile
// to a null-pointer test plus a call — negligible off the kernel hot
// path, which is deliberately *not* instrumented (per-event tracing
// would tax EventQueueThroughput; the kernel exposes aggregate counters
// to the PhaseProfiler instead). Defining DC_TRACE_DISABLED compiles
// every emission site out entirely (arguments unevaluated).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "snapshot/format.hpp"
#include "util/status.hpp"
#include "util/time.hpp"

namespace dc::obs {

/// Event taxonomy. Categories gate emission (see TraceSink::set_filter)
/// and become the Chrome trace_event "cat" field.
enum class TraceCategory : std::uint16_t {
  kJob = 0,         // submit / start / complete / kill
  kLease = 1,       // VM lease open / amend / close
  kProvision = 2,   // grant / wait / timeout / reject / release / swap
  kResize = 3,      // DR1/DR2 resize decisions
  kFault = 4,       // node fail / repair / retry
  kCheckpoint = 5,  // checkpoint salvage on kill
  kLifecycle = 6,   // TRE state transitions
  kKernel = 7,      // kernel milestones (run boundaries)
  kLog = 8,         // Log lines routed via Log::set_hook
  kCategoryCount = 9,
};

const char* trace_category_name(TraceCategory category);

/// Filter bit for a category.
constexpr std::uint32_t trace_category_bit(TraceCategory category) {
  return 1u << static_cast<std::uint32_t>(category);
}

/// All categories enabled.
inline constexpr std::uint32_t kTraceAll = 0xffffffffu;

/// Parses a comma-separated category list ("job,lease,fault" or "all")
/// into a filter mask. Unknown names are an error listing the valid set.
StatusOr<std::uint32_t> parse_trace_filter(std::string_view spec);

/// One recorded event. Fixed-size POD so the ring is a flat allocation;
/// names/actors are ids into the sink's interned string table.
struct TraceEvent {
  SimTime time = 0;      // start time (instant: the instant itself)
  SimDuration dur = 0;   // span duration; 0 and unused for instants
  std::int64_t a0 = 0;   // event-specific args (job id, node count, ...)
  std::int64_t a1 = 0;
  std::uint32_t name = 0;   // interned event name, e.g. "job.submit"
  std::uint32_t actor = 0;  // interned actor name, e.g. the provider
  std::uint16_t category = 0;
  std::uint16_t phase = 0;  // 0 = instant, 1 = span
};

/// Serialized size of one TraceEvent in the snapshot blob.
inline constexpr std::size_t kTraceEventPacked = 44;

/// An event decoded back out of a Chrome trace JSON export.
struct ParsedTraceEvent {
  std::string name;
  std::string category;
  std::string actor;
  char phase = 'i';  // 'i' instant, 'X' span
  std::int64_t ts_us = 0;
  std::int64_t dur_us = 0;
  std::int64_t a0 = 0;
  std::int64_t a1 = 0;
};

/// A pre-internable event/actor name: the string plus a cached interned
/// id, validated against the owning sink's intern epoch. Hot emitters
/// keep one (a member for actor names, a function-local static for event
/// names — see DC_TRACE_INSTANT_C) so the steady-state emission path
/// skips the string-table lookup entirely: one epoch compare instead of
/// a map find per emission.
///
/// Determinism: the cache only memoizes intern() results — a name is
/// still interned lazily, at its first *recorded* emission into a given
/// sink — so id assignment order (and with it every export and snapshot)
/// is byte-identical to the uncached path. Epochs are process-unique per
/// sink lifetime (and re-drawn on snapshot restore, which rebuilds the
/// string table), so a stale cache can never leak an id across sinks.
class TraceName {
 public:
  explicit TraceName(std::string_view text) : text_(text) {}
  std::string_view text() const { return text_; }

 private:
  friend class TraceSink;
  std::string text_;
  mutable std::uint64_t epoch_ = 0;  // 0 = never resolved (epochs start at 1)
  mutable std::uint32_t id_ = 0;
};

/// Bounded, deterministic event recorder. Not thread-safe: a sink
/// belongs to exactly one run (all emission happens on the thread
/// driving that run's Simulator).
class TraceSink {
 public:
  /// `capacity` bounds the ring; once full the oldest events are dropped
  /// (dropped() counts them) so tracing never grows without bound.
  explicit TraceSink(std::size_t capacity = 1u << 16);

  /// Restricts recording to the categories in `mask` (kTraceAll keeps
  /// everything). Events outside the mask are never recorded or interned.
  void set_filter(std::uint32_t mask) { filter_ = mask; }
  std::uint32_t filter() const { return filter_; }
  bool wants(TraceCategory category) const {
    return (filter_ & trace_category_bit(category)) != 0;
  }

  /// Records a zero-duration event at `now`.
  void instant(SimTime now, TraceCategory category, std::string_view name,
               std::string_view actor, std::int64_t a0 = 0,
               std::int64_t a1 = 0);

  /// Records a completed span [start, start+dur). Spans are emitted at
  /// completion time, when the duration is known; ring order is emission
  /// order (Perfetto sorts by ts on load).
  void span(SimTime start, SimDuration dur, TraceCategory category,
            std::string_view name, std::string_view actor,
            std::int64_t a0 = 0, std::int64_t a1 = 0);

  /// Cached-name overloads (hot emitters). Identical semantics — the
  /// TraceName is resolved (and interned on first recorded use) only
  /// after the category filter passes, name before actor, so id order
  /// matches the string_view path exactly.
  void instant(SimTime now, TraceCategory category, const TraceName& name,
               const TraceName& actor, std::int64_t a0 = 0,
               std::int64_t a1 = 0);
  void instant(SimTime now, TraceCategory category, const TraceName& name,
               std::string_view actor, std::int64_t a0 = 0,
               std::int64_t a1 = 0);
  void span(SimTime start, SimDuration dur, TraceCategory category,
            const TraceName& name, const TraceName& actor,
            std::int64_t a0 = 0, std::int64_t a1 = 0);
  void span(SimTime start, SimDuration dur, TraceCategory category,
            const TraceName& name, std::string_view actor,
            std::int64_t a0 = 0, std::int64_t a1 = 0);

  /// Get-or-create id for a name. Ids are assigned in first-use order,
  /// which is deterministic because emission order is; after a snapshot
  /// restore, re-interning an already-known string yields its saved id.
  std::uint32_t intern(std::string_view text);
  const std::string& name_of(std::uint32_t id) const { return names_[id]; }

  std::size_t size() const { return size_; }
  std::size_t capacity() const { return ring_.size(); }
  std::uint64_t emitted() const { return emitted_; }
  std::uint64_t dropped() const { return dropped_; }

  /// Events oldest-to-newest (unwraps the ring).
  std::vector<TraceEvent> events() const;

  /// Per-category recorded-event counts (indexed by TraceCategory).
  std::vector<std::uint64_t> category_counts() const;

  /// Chrome trace_event JSON (object form, traceEvents array). Sim
  /// seconds map to microseconds; actors become named tid tracks.
  std::string chrome_json() const;
  Status export_chrome_json(const std::string& path) const;

  /// Long-format CSV: time,category,phase,name,actor,dur,a0,a1.
  std::string csv() const;
  Status export_csv(const std::string& path) const;

  /// Snapshot round trip: the ring, string table, filter and counters
  /// are part of a run's resumable state, so a resumed run's export is
  /// byte-identical to the uninterrupted run's.
  void save(snapshot::SnapshotWriter& writer) const;
  Status restore(snapshot::SnapshotReader& reader);

 private:
  void push(const TraceEvent& event);
  /// Returns the cached id, re-interning when the cache belongs to a
  /// different sink lifetime (epoch mismatch).
  std::uint32_t resolve(const TraceName& name);

  std::vector<TraceEvent> ring_;
  std::size_t head_ = 0;  // index of oldest event
  std::size_t size_ = 0;
  std::uint64_t emitted_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint32_t filter_ = kTraceAll;
  /// Process-unique id for this sink's intern table; re-drawn on restore.
  std::uint64_t epoch_;
  std::vector<std::string> names_;
  std::map<std::string, std::uint32_t, std::less<>> name_ids_;
};

/// Parses a Chrome trace JSON produced by chrome_json() back into its
/// event list (metadata records are skipped). Tolerates only the shape
/// this exporter writes plus whitespace; anything else is an error with
/// an offset. Used by the exporter round-trip test and trace-summary.
StatusOr<std::vector<ParsedTraceEvent>> parse_chrome_json(
    std::string_view json);

/// Reads and parses a Chrome trace JSON file.
StatusOr<std::vector<ParsedTraceEvent>> read_chrome_trace(
    const std::string& path);

/// Typed guard for trace-analysis inputs: an empty or header-only trace
/// export (zero parsed events) yields a failed_precondition naming
/// `label`, so "this file records nothing" is never mistaken for a
/// zero-row summary or a no-divergence verdict. Every consumer that
/// draws conclusions from a parsed trace (trace-summary, trace diff,
/// the replay bisector) checks this before reporting.
Status validate_trace_nonempty(const std::vector<ParsedTraceEvent>& events,
                               const std::string& label);

/// Per-category counts and span-duration percentiles, rendered as an
/// aligned table — the `trace-summary` report body.
std::string summarize_trace(const std::vector<ParsedTraceEvent>& events);

/// Walks two parsed traces in lockstep and reports the first diverging
/// event (index plus both sides' fields) into `report`. Returns true
/// when the traces are identical — the tracing twin of diff_snapshots.
bool diff_traces(const std::vector<ParsedTraceEvent>& golden,
                 const std::vector<ParsedTraceEvent>& other,
                 std::string* report);

}  // namespace dc::obs

// Emission macros. `sink` is a TraceSink* (may be null); with tracing
// compiled in they cost one pointer test when the sink is null.
#ifndef DC_TRACE_DISABLED
#define DC_TRACE_INSTANT(sink, ...)                        \
  do {                                                     \
    if ((sink) != nullptr) (sink)->instant(__VA_ARGS__);   \
  } while (0)
#define DC_TRACE_SPAN(sink, ...)                           \
  do {                                                     \
    if ((sink) != nullptr) (sink)->span(__VA_ARGS__);      \
  } while (0)
// Cached-name variants: the event name is a literal, held in a per-site
// thread_local TraceName so repeated emissions skip the intern lookup
// (thread_local, not plain static, because parallel sweep lanes emit
// into per-lane sinks concurrently). `actor` may be a TraceName too —
// hot daemons keep one as a member for their own name.
#define DC_TRACE_INSTANT_C(sink, now, category, name_literal, ...)          \
  do {                                                                      \
    if ((sink) != nullptr) {                                                \
      static thread_local ::dc::obs::TraceName dc_trace_name_{name_literal}; \
      (sink)->instant((now), (category), dc_trace_name_, __VA_ARGS__);      \
    }                                                                       \
  } while (0)
#define DC_TRACE_SPAN_C(sink, start, dur, category, name_literal, ...)      \
  do {                                                                      \
    if ((sink) != nullptr) {                                                \
      static thread_local ::dc::obs::TraceName dc_trace_name_{name_literal}; \
      (sink)->span((start), (dur), (category), dc_trace_name_,              \
                   __VA_ARGS__);                                            \
    }                                                                       \
  } while (0)
#else
#define DC_TRACE_INSTANT(sink, ...) \
  do {                              \
  } while (0)
#define DC_TRACE_SPAN(sink, ...) \
  do {                           \
  } while (0)
#define DC_TRACE_INSTANT_C(sink, ...) \
  do {                                \
  } while (0)
#define DC_TRACE_SPAN_C(sink, ...) \
  do {                             \
  } while (0)
#endif
