#include "obs/metrics.hpp"

#include "util/csv.hpp"
#include "util/fsio.hpp"
#include "util/strings.hpp"

namespace dc::obs {

void MetricsRegistry::add_counter(std::string_view name, std::uint64_t delta) {
  auto it = counter_ids_.find(name);
  if (it == counter_ids_.end()) {
    counter_ids_.emplace(std::string(name), counters_.size());
    counters_.push_back({std::string(name), delta});
    return;
  }
  counters_[it->second].value += delta;
}

std::uint64_t MetricsRegistry::counter(std::string_view name) const {
  auto it = counter_ids_.find(name);
  return it == counter_ids_.end() ? 0 : counters_[it->second].value;
}

void MetricsRegistry::set_gauge(std::string_view name, double value) {
  auto it = gauge_ids_.find(name);
  if (it == gauge_ids_.end()) {
    gauge_ids_.emplace(std::string(name), gauges_.size());
    gauges_.push_back({std::string(name), value});
    return;
  }
  gauges_[it->second].value = value;
}

double MetricsRegistry::gauge(std::string_view name) const {
  auto it = gauge_ids_.find(name);
  return it == gauge_ids_.end() ? 0.0 : gauges_[it->second].value;
}

RunningStats& MetricsRegistry::stats(std::string_view name) {
  auto it = stats_ids_.find(name);
  if (it == stats_ids_.end()) {
    stats_ids_.emplace(std::string(name), stats_.size());
    stats_.push_back({std::string(name), RunningStats()});
    return stats_.back().value;
  }
  return stats_[it->second].value;
}

const RunningStats* MetricsRegistry::find_stats(std::string_view name) const {
  auto it = stats_ids_.find(name);
  return it == stats_ids_.end() ? nullptr : &stats_[it->second].value;
}

Histogram& MetricsRegistry::histogram(std::string_view name, double lo,
                                      double hi, std::size_t bins) {
  auto it = histogram_ids_.find(name);
  if (it == histogram_ids_.end()) {
    histogram_ids_.emplace(std::string(name), histograms_.size());
    histograms_.push_back({std::string(name), Histogram(lo, hi, bins)});
    return histograms_.back().value;
  }
  return histograms_[it->second].value;
}

void MetricsRegistry::sample(SimTime now, std::string_view metric,
                             double value) {
  auto it = sample_ids_.find(metric);
  std::uint32_t id;
  if (it == sample_ids_.end()) {
    id = static_cast<std::uint32_t>(sample_names_.size());
    sample_ids_.emplace(std::string(metric), id);
    sample_names_.emplace_back(metric);
  } else {
    id = it->second;
  }
  samples_.push_back({now, id, value});
}

std::string MetricsRegistry::timeseries_csv() const {
  std::string out = "time,metric,value\n";
  for (const auto& row : samples_) {
    out += str_format("%lld,%s,%.10g\n", static_cast<long long>(row.time),
                      sample_names_[row.metric].c_str(), row.value);
  }
  return out;
}

Status MetricsRegistry::export_timeseries_csv(const std::string& path) const {
  // Atomic tmp+fsync+rename (util/fsio): an interrupted export leaves
  // either the previous complete CSV or nothing — never a truncated file
  // a plotting script would silently accept.
  return atomic_write_file(path, timeseries_csv(), "obs.metrics.csv");
}

std::string MetricsRegistry::summary() const {
  TextTable table({"instrument", "kind", "value", "mean", "min", "max"});
  for (const auto& c : counters_) {
    table.cell(c.name).cell("counter")
        .cell(static_cast<std::int64_t>(c.value)).cell("").cell("").cell("");
    table.end_row();
  }
  for (const auto& g : gauges_) {
    table.cell(g.name).cell("gauge").cell(g.value).cell("").cell("").cell("");
    table.end_row();
  }
  for (const auto& s : stats_) {
    table.cell(s.name).cell("stats")
        .cell(static_cast<std::int64_t>(s.value.count()))
        .cell(s.value.mean()).cell(s.value.min()).cell(s.value.max());
    table.end_row();
  }
  for (const auto& h : histograms_) {
    table.cell(h.name).cell("histogram")
        .cell(static_cast<std::int64_t>(h.value.total()))
        .cell(h.value.p50()).cell(h.value.p95()).cell(h.value.p99());
    table.end_row();
  }
  return table.render("metrics");
}

}  // namespace dc::obs
