#include "obs/trace.hpp"

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <fstream>

#include "util/fsio.hpp"
#include "util/histogram.hpp"
#include "util/strings.hpp"

namespace dc::obs {
namespace {

// Sim seconds → Chrome trace microseconds.
constexpr std::int64_t kMicrosPerSecond = 1000000;

void append_escaped(std::string& out, std::string_view text) {
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += str_format("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
}

void put_u32le(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void put_u64le(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

std::uint32_t get_u32le(const char* p) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | static_cast<unsigned char>(p[i]);
  return v;
}

std::uint64_t get_u64le(const char* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | static_cast<unsigned char>(p[i]);
  return v;
}

// Exports go through util/fsio's atomic tmp+fsync+rename: an interrupted
// export leaves either the previous complete trace or nothing, never a
// truncated JSON/CSV that a viewer or the trace-diff would choke on.

// Monotonic sink-lifetime ids for TraceName cache validation. Starts at
// 1 so a default-constructed cache (epoch 0) never matches any sink.
std::uint64_t next_trace_epoch() {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

const char* trace_category_name(TraceCategory category) {
  switch (category) {
    case TraceCategory::kJob: return "job";
    case TraceCategory::kLease: return "lease";
    case TraceCategory::kProvision: return "provision";
    case TraceCategory::kResize: return "resize";
    case TraceCategory::kFault: return "fault";
    case TraceCategory::kCheckpoint: return "checkpoint";
    case TraceCategory::kLifecycle: return "lifecycle";
    case TraceCategory::kKernel: return "kernel";
    case TraceCategory::kLog: return "log";
    case TraceCategory::kCategoryCount: break;
  }
  return "unknown";
}

StatusOr<std::uint32_t> parse_trace_filter(std::string_view spec) {
  if (trim(spec).empty() || trim(spec) == "all") return kTraceAll;
  std::uint32_t mask = 0;
  for (std::string_view token : split_char(spec, ',')) {
    token = trim(token);
    if (token.empty()) continue;
    bool known = false;
    for (std::uint16_t c = 0;
         c < static_cast<std::uint16_t>(TraceCategory::kCategoryCount); ++c) {
      const auto category = static_cast<TraceCategory>(c);
      if (token == trace_category_name(category)) {
        mask |= trace_category_bit(category);
        known = true;
        break;
      }
    }
    if (!known) {
      std::string valid;
      for (std::uint16_t c = 0;
           c < static_cast<std::uint16_t>(TraceCategory::kCategoryCount); ++c) {
        if (!valid.empty()) valid += ",";
        valid += trace_category_name(static_cast<TraceCategory>(c));
      }
      return Status::invalid_argument("unknown trace category '" +
                                      std::string(token) + "' (valid: " +
                                      valid + ",all)");
    }
  }
  return mask;
}

TraceSink::TraceSink(std::size_t capacity) : epoch_(next_trace_epoch()) {
  ring_.resize(capacity == 0 ? 1 : capacity);
}

std::uint32_t TraceSink::resolve(const TraceName& name) {
  if (name.epoch_ != epoch_) {
    name.id_ = intern(name.text_);
    name.epoch_ = epoch_;
  }
  return name.id_;
}

std::uint32_t TraceSink::intern(std::string_view text) {
  auto it = name_ids_.find(text);
  if (it != name_ids_.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(names_.size());
  names_.emplace_back(text);
  name_ids_.emplace(names_.back(), id);
  return id;
}

void TraceSink::push(const TraceEvent& event) {
  ++emitted_;
  if (size_ == ring_.size()) {
    ring_[head_] = event;
    head_ = (head_ + 1) % ring_.size();
    ++dropped_;
    return;
  }
  ring_[(head_ + size_) % ring_.size()] = event;
  ++size_;
}

namespace {

TraceEvent make_event(SimTime time, SimDuration dur, TraceCategory category,
                      std::uint32_t name, std::uint32_t actor, std::int64_t a0,
                      std::int64_t a1, std::uint16_t phase) {
  TraceEvent event;
  event.time = time;
  event.dur = dur < 0 ? 0 : dur;
  event.a0 = a0;
  event.a1 = a1;
  event.name = name;
  event.actor = actor;
  event.category = static_cast<std::uint16_t>(category);
  event.phase = phase;
  return event;
}

}  // namespace

// All emission paths intern name-before-actor and only after the filter
// passes, so id assignment order is identical whichever overload a call
// site uses.
void TraceSink::instant(SimTime now, TraceCategory category,
                        std::string_view name, std::string_view actor,
                        std::int64_t a0, std::int64_t a1) {
  if (!wants(category)) return;
  const std::uint32_t name_id = intern(name);
  push(make_event(now, 0, category, name_id, intern(actor), a0, a1, 0));
}

void TraceSink::instant(SimTime now, TraceCategory category,
                        const TraceName& name, const TraceName& actor,
                        std::int64_t a0, std::int64_t a1) {
  if (!wants(category)) return;
  const std::uint32_t name_id = resolve(name);
  push(make_event(now, 0, category, name_id, resolve(actor), a0, a1, 0));
}

void TraceSink::instant(SimTime now, TraceCategory category,
                        const TraceName& name, std::string_view actor,
                        std::int64_t a0, std::int64_t a1) {
  if (!wants(category)) return;
  const std::uint32_t name_id = resolve(name);
  push(make_event(now, 0, category, name_id, intern(actor), a0, a1, 0));
}

void TraceSink::span(SimTime start, SimDuration dur, TraceCategory category,
                     std::string_view name, std::string_view actor,
                     std::int64_t a0, std::int64_t a1) {
  if (!wants(category)) return;
  const std::uint32_t name_id = intern(name);
  push(make_event(start, dur, category, name_id, intern(actor), a0, a1, 1));
}

void TraceSink::span(SimTime start, SimDuration dur, TraceCategory category,
                     const TraceName& name, const TraceName& actor,
                     std::int64_t a0, std::int64_t a1) {
  if (!wants(category)) return;
  const std::uint32_t name_id = resolve(name);
  push(make_event(start, dur, category, name_id, resolve(actor), a0, a1, 1));
}

void TraceSink::span(SimTime start, SimDuration dur, TraceCategory category,
                     const TraceName& name, std::string_view actor,
                     std::int64_t a0, std::int64_t a1) {
  if (!wants(category)) return;
  const std::uint32_t name_id = resolve(name);
  push(make_event(start, dur, category, name_id, intern(actor), a0, a1, 1));
}

std::vector<TraceEvent> TraceSink::events() const {
  std::vector<TraceEvent> out;
  out.reserve(size_);
  for (std::size_t i = 0; i < size_; ++i) {
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  }
  return out;
}

std::vector<std::uint64_t> TraceSink::category_counts() const {
  std::vector<std::uint64_t> counts(
      static_cast<std::size_t>(TraceCategory::kCategoryCount), 0);
  for (std::size_t i = 0; i < size_; ++i) {
    const auto& event = ring_[(head_ + i) % ring_.size()];
    if (event.category < counts.size()) ++counts[event.category];
  }
  return counts;
}

std::string TraceSink::chrome_json() const {
  const auto recorded = events();
  // Actors referenced by recorded events become named tid tracks;
  // metadata records go first, in ascending tid order.
  std::vector<bool> used(names_.size(), false);
  for (const auto& event : recorded) used[event.actor] = true;
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool first = true;
  for (std::uint32_t id = 0; id < used.size(); ++id) {
    if (!used[id]) continue;
    if (!first) out += ",\n";
    first = false;
    out += str_format("{\"ph\":\"M\",\"pid\":1,\"tid\":%u,"
                      "\"name\":\"thread_name\",\"args\":{\"name\":\"",
                      id + 1);
    append_escaped(out, names_[id]);
    out += "\"}}";
  }
  for (const auto& event : recorded) {
    if (!first) out += ",\n";
    first = false;
    const auto category = static_cast<TraceCategory>(event.category);
    if (event.phase == 1) {
      out += str_format(
          "{\"ph\":\"X\",\"pid\":1,\"tid\":%u,\"ts\":%lld,\"dur\":%lld,",
          event.actor + 1,
          static_cast<long long>(event.time * kMicrosPerSecond),
          static_cast<long long>(event.dur * kMicrosPerSecond));
    } else {
      out += str_format(
          "{\"ph\":\"i\",\"pid\":1,\"tid\":%u,\"ts\":%lld,\"s\":\"t\",",
          event.actor + 1,
          static_cast<long long>(event.time * kMicrosPerSecond));
    }
    out += "\"name\":\"";
    append_escaped(out, names_[event.name]);
    out += "\",\"cat\":\"";
    append_escaped(out, trace_category_name(category));
    out += str_format("\",\"args\":{\"a0\":%lld,\"a1\":%lld}}",
                      static_cast<long long>(event.a0),
                      static_cast<long long>(event.a1));
  }
  out += "\n]}\n";
  return out;
}

Status TraceSink::export_chrome_json(const std::string& path) const {
  return atomic_write_file(path, chrome_json(), "obs.trace.json");
}

std::string TraceSink::csv() const {
  std::string out = "time,category,phase,name,actor,dur,a0,a1\n";
  for (const auto& event : events()) {
    out += str_format(
        "%lld,%s,%s,%s,%s,%lld,%lld,%lld\n",
        static_cast<long long>(event.time),
        trace_category_name(static_cast<TraceCategory>(event.category)),
        event.phase == 1 ? "span" : "instant", names_[event.name].c_str(),
        names_[event.actor].c_str(), static_cast<long long>(event.dur),
        static_cast<long long>(event.a0), static_cast<long long>(event.a1));
  }
  return out;
}

Status TraceSink::export_csv(const std::string& path) const {
  return atomic_write_file(path, csv(), "obs.trace.csv");
}

void TraceSink::save(snapshot::SnapshotWriter& writer) const {
  writer.begin_section("trace");
  writer.field_u64("capacity", ring_.size());
  writer.field_u64("filter", filter_);
  writer.field_u64("emitted", emitted_);
  writer.field_u64("dropped", dropped_);
  writer.field_u64("names", names_.size());
  for (const auto& name : names_) writer.field_str("name", name);
  std::string blob;
  blob.reserve(size_ * kTraceEventPacked);
  for (const auto& event : events()) {
    put_u64le(blob, static_cast<std::uint64_t>(event.time));
    put_u64le(blob, static_cast<std::uint64_t>(event.dur));
    put_u64le(blob, static_cast<std::uint64_t>(event.a0));
    put_u64le(blob, static_cast<std::uint64_t>(event.a1));
    put_u32le(blob, event.name);
    put_u32le(blob, event.actor);
    put_u32le(blob, (static_cast<std::uint32_t>(event.phase) << 16) |
                        event.category);
  }
  writer.field_u64("events", size_);
  writer.field_bytes("ring", blob.data(), blob.size());
  writer.end_section();
}

Status TraceSink::restore(snapshot::SnapshotReader& reader) {
  if (Status s = reader.begin_section("trace"); !s.is_ok()) return s;
  std::uint64_t capacity = 0;
  std::uint64_t filter = 0;
  std::uint64_t name_count = 0;
  if (Status s = reader.read_u64("capacity", capacity); !s.is_ok()) return s;
  if (Status s = reader.read_u64("filter", filter); !s.is_ok()) return s;
  if (Status s = reader.read_u64("emitted", emitted_); !s.is_ok()) return s;
  if (Status s = reader.read_u64("dropped", dropped_); !s.is_ok()) return s;
  if (Status s = reader.read_u64("names", name_count); !s.is_ok()) return s;
  names_.clear();
  name_ids_.clear();
  // The string table is rebuilt from the snapshot: any TraceName cache
  // pointing at this sink may now hold a stale id. A fresh epoch
  // invalidates them all at once.
  epoch_ = next_trace_epoch();
  for (std::uint64_t i = 0; i < name_count; ++i) {
    std::string name;
    if (Status s = reader.read_str("name", name); !s.is_ok()) return s;
    name_ids_.emplace(name, static_cast<std::uint32_t>(names_.size()));
    names_.push_back(std::move(name));
  }
  std::uint64_t event_count = 0;
  std::string blob;
  if (Status s = reader.read_u64("events", event_count); !s.is_ok()) return s;
  if (Status s = reader.read_bytes("ring", blob); !s.is_ok()) return s;
  if (blob.size() != event_count * kTraceEventPacked) {
    return Status::internal(
        str_format("trace ring blob is %zu bytes, want %llu events * %zu",
                   blob.size(), static_cast<unsigned long long>(event_count),
                   kTraceEventPacked));
  }
  ring_.assign(capacity == 0 ? 1 : capacity, TraceEvent{});
  head_ = 0;
  size_ = 0;
  filter_ = static_cast<std::uint32_t>(filter);
  // push() below re-counts; keep the saved run totals.
  const std::uint64_t saved_emitted = emitted_;
  const std::uint64_t saved_dropped = dropped_;
  const char* p = blob.data();
  for (std::uint64_t i = 0; i < event_count; ++i, p += kTraceEventPacked) {
    TraceEvent event;
    event.time = static_cast<SimTime>(get_u64le(p));
    event.dur = static_cast<SimDuration>(get_u64le(p + 8));
    event.a0 = static_cast<std::int64_t>(get_u64le(p + 16));
    event.a1 = static_cast<std::int64_t>(get_u64le(p + 24));
    event.name = get_u32le(p + 32);
    event.actor = get_u32le(p + 36);
    const std::uint32_t packed = get_u32le(p + 40);
    event.category = static_cast<std::uint16_t>(packed & 0xffff);
    event.phase = static_cast<std::uint16_t>(packed >> 16);
    if (event.name >= names_.size() || event.actor >= names_.size()) {
      return Status::internal("trace event references unknown name id");
    }
    push(event);
  }
  emitted_ = saved_emitted;
  dropped_ = saved_dropped;
  return reader.end_section();
}

namespace {

// Minimal JSON cursor for the exporter's own output shape.
struct Cursor {
  std::string_view text;
  std::size_t pos = 0;

  void skip_ws() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\n' || text[pos] == '\r' ||
            text[pos] == '\t')) {
      ++pos;
    }
  }
  bool eat(char c) {
    skip_ws();
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }
  Status fail(const std::string& what) const {
    return Status::invalid_argument(
        str_format("trace json: %s near offset %zu", what.c_str(), pos));
  }
};

Status parse_json_string(Cursor& cur, std::string& out) {
  if (!cur.eat('"')) return cur.fail("expected string");
  out.clear();
  while (cur.pos < cur.text.size()) {
    char c = cur.text[cur.pos++];
    if (c == '"') return Status::ok();
    if (c == '\\') {
      if (cur.pos >= cur.text.size()) break;
      char esc = cur.text[cur.pos++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (cur.pos + 4 > cur.text.size()) return cur.fail("bad \\u escape");
          int code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = cur.text[cur.pos++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= h - '0';
            else if (h >= 'a' && h <= 'f') code |= h - 'a' + 10;
            else if (h >= 'A' && h <= 'F') code |= h - 'A' + 10;
            else return cur.fail("bad \\u escape");
          }
          out += static_cast<char>(code);
          break;
        }
        default: return cur.fail("unsupported escape");
      }
    } else {
      out += c;
    }
  }
  return cur.fail("unterminated string");
}

Status parse_json_int(Cursor& cur, std::int64_t& out) {
  cur.skip_ws();
  std::size_t start = cur.pos;
  if (cur.pos < cur.text.size() && cur.text[cur.pos] == '-') ++cur.pos;
  while (cur.pos < cur.text.size() && cur.text[cur.pos] >= '0' &&
         cur.text[cur.pos] <= '9') {
    ++cur.pos;
  }
  if (cur.pos == start) return cur.fail("expected integer");
  auto parsed = parse_int(cur.text.substr(start, cur.pos - start));
  if (!parsed.is_ok()) return cur.fail("bad integer");
  out = parsed.value();
  return Status::ok();
}

// One record object: flat string/integer fields plus a flat "args" object.
struct RawRecord {
  std::string ph, name, cat;
  std::int64_t tid = 0, ts = 0, dur = 0, a0 = 0, a1 = 0;
  std::string args_name;  // metadata thread_name payload
};

Status parse_record(Cursor& cur, RawRecord& rec) {
  if (!cur.eat('{')) return cur.fail("expected record object");
  if (cur.eat('}')) return Status::ok();
  while (true) {
    std::string key;
    if (Status s = parse_json_string(cur, key); !s.is_ok()) return s;
    if (!cur.eat(':')) return cur.fail("expected ':'");
    cur.skip_ws();
    if (key == "args") {
      if (!cur.eat('{')) return cur.fail("expected args object");
      if (!cur.eat('}')) {
        while (true) {
          std::string arg_key;
          if (Status s = parse_json_string(cur, arg_key); !s.is_ok()) return s;
          if (!cur.eat(':')) return cur.fail("expected ':'");
          cur.skip_ws();
          if (cur.pos < cur.text.size() && cur.text[cur.pos] == '"') {
            std::string value;
            if (Status s = parse_json_string(cur, value); !s.is_ok()) return s;
            if (arg_key == "name") rec.args_name = value;
          } else {
            std::int64_t value = 0;
            if (Status s = parse_json_int(cur, value); !s.is_ok()) return s;
            if (arg_key == "a0") rec.a0 = value;
            if (arg_key == "a1") rec.a1 = value;
          }
          if (cur.eat(',')) continue;
          if (cur.eat('}')) break;
          return cur.fail("expected ',' or '}' in args");
        }
      }
    } else if (cur.pos < cur.text.size() && cur.text[cur.pos] == '"') {
      std::string value;
      if (Status s = parse_json_string(cur, value); !s.is_ok()) return s;
      if (key == "ph") rec.ph = value;
      if (key == "name") rec.name = value;
      if (key == "cat") rec.cat = value;
    } else {
      std::int64_t value = 0;
      if (Status s = parse_json_int(cur, value); !s.is_ok()) return s;
      if (key == "tid") rec.tid = value;
      if (key == "ts") rec.ts = value;
      if (key == "dur") rec.dur = value;
    }
    if (cur.eat(',')) continue;
    if (cur.eat('}')) return Status::ok();
    return cur.fail("expected ',' or '}'");
  }
}

}  // namespace

StatusOr<std::vector<ParsedTraceEvent>> parse_chrome_json(
    std::string_view json) {
  Cursor cur{json};
  if (!cur.eat('{')) return cur.fail("expected top-level object");
  std::vector<ParsedTraceEvent> out;
  std::map<std::int64_t, std::string> tracks;
  bool saw_events = false;
  while (true) {
    std::string key;
    if (Status s = parse_json_string(cur, key); !s.is_ok()) return s;
    if (!cur.eat(':')) return cur.fail("expected ':'");
    if (key == "traceEvents") {
      saw_events = true;
      if (!cur.eat('[')) return cur.fail("expected traceEvents array");
      if (!cur.eat(']')) {
        while (true) {
          RawRecord rec;
          if (Status s = parse_record(cur, rec); !s.is_ok()) return s;
          if (rec.ph == "M") {
            if (rec.name == "thread_name") tracks[rec.tid] = rec.args_name;
          } else {
            ParsedTraceEvent event;
            event.name = rec.name;
            event.category = rec.cat;
            auto track = tracks.find(rec.tid);
            event.actor = track == tracks.end() ? str_format("tid%lld",
                              static_cast<long long>(rec.tid))
                                                : track->second;
            event.phase = rec.ph == "X" ? 'X' : 'i';
            event.ts_us = rec.ts;
            event.dur_us = rec.dur;
            event.a0 = rec.a0;
            event.a1 = rec.a1;
            out.push_back(std::move(event));
          }
          if (cur.eat(',')) continue;
          if (cur.eat(']')) break;
          return cur.fail("expected ',' or ']' in traceEvents");
        }
      }
    } else {
      std::string ignored;
      if (Status s = parse_json_string(cur, ignored); !s.is_ok()) return s;
    }
    if (cur.eat(',')) continue;
    if (cur.eat('}')) break;
    return cur.fail("expected ',' or '}' at top level");
  }
  if (!saw_events) return Status::invalid_argument("trace json: no traceEvents");
  return out;
}

StatusOr<std::vector<ParsedTraceEvent>> read_chrome_trace(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return Status::not_found("cannot open trace: " + path);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  auto parsed = parse_chrome_json(text);
  if (!parsed.is_ok()) {
    return Status(parsed.status().code(),
                  path + ": " + parsed.status().message());
  }
  return parsed;
}

Status validate_trace_nonempty(const std::vector<ParsedTraceEvent>& events,
                               const std::string& label) {
  if (!events.empty()) return Status::ok();
  return Status::failed_precondition(str_format(
      "trace '%s' parses but records zero events (empty or header-only "
      "export) — a summary or diff over it would be vacuous, not a "
      "no-divergence verdict; re-run with --trace-out and a category "
      "filter that matches at least one event",
      label.c_str()));
}

std::string summarize_trace(const std::vector<ParsedTraceEvent>& events) {
  // Per-category counts in taxonomy order, then per-name span percentiles.
  std::string out;
  out += str_format("events: %zu\n", events.size());
  std::map<std::string, std::pair<std::uint64_t, std::uint64_t>> categories;
  for (const auto& event : events) {
    auto& slot = categories[event.category];
    if (event.phase == 'X') ++slot.second; else ++slot.first;
  }
  out += "\ncategory counts\n";
  out += str_format("  %-12s %10s %10s\n", "category", "instants", "spans");
  for (const auto& [category, counts] : categories) {
    out += str_format("  %-12s %10llu %10llu\n", category.c_str(),
                      static_cast<unsigned long long>(counts.first),
                      static_cast<unsigned long long>(counts.second));
  }
  std::map<std::string, std::vector<double>> spans;
  for (const auto& event : events) {
    if (event.phase == 'X') {
      spans[event.name].push_back(static_cast<double>(event.dur_us) / 1e6);
    }
  }
  if (!spans.empty()) {
    out += "\nspan durations (seconds)\n";
    out += str_format("  %-24s %8s %10s %10s %10s %10s\n", "span", "count",
                      "p50", "p95", "p99", "max");
    for (const auto& [name, durations] : spans) {
      const double max_dur =
          *std::max_element(durations.begin(), durations.end());
      Histogram hist(0.0, max_dur > 0.0 ? max_dur : 1.0, 64);
      for (double d : durations) hist.add(d);
      out += str_format("  %-24s %8zu %10.2f %10.2f %10.2f %10.2f\n",
                        name.c_str(), durations.size(), hist.p50(), hist.p95(),
                        hist.p99(), max_dur);
    }
  }
  return out;
}

bool diff_traces(const std::vector<ParsedTraceEvent>& golden,
                 const std::vector<ParsedTraceEvent>& other,
                 std::string* report) {
  const auto describe = [](const ParsedTraceEvent& event) {
    return str_format("%c %s/%s actor=%s ts=%lld dur=%lld a0=%lld a1=%lld",
                      event.phase, event.category.c_str(), event.name.c_str(),
                      event.actor.c_str(), static_cast<long long>(event.ts_us),
                      static_cast<long long>(event.dur_us),
                      static_cast<long long>(event.a0),
                      static_cast<long long>(event.a1));
  };
  const std::size_t common = std::min(golden.size(), other.size());
  for (std::size_t i = 0; i < common; ++i) {
    const auto& g = golden[i];
    const auto& o = other[i];
    if (g.name == o.name && g.category == o.category && g.actor == o.actor &&
        g.phase == o.phase && g.ts_us == o.ts_us && g.dur_us == o.dur_us &&
        g.a0 == o.a0 && g.a1 == o.a1) {
      continue;
    }
    if (report != nullptr) {
      *report = str_format("first divergence at event %zu\n  golden: %s\n  other:  %s",
                           i, describe(g).c_str(), describe(o).c_str());
    }
    return false;
  }
  if (golden.size() != other.size()) {
    if (report != nullptr) {
      const bool golden_longer = golden.size() > other.size();
      const auto& extra = golden_longer ? golden[common] : other[common];
      *report = str_format(
          "traces agree for %zu events, then %s has %zu extra; first: %s",
          common, golden_longer ? "golden" : "other",
          (golden_longer ? golden.size() : other.size()) - common,
          describe(extra).c_str());
    }
    return false;
  }
  if (report != nullptr) *report = "traces are identical";
  return true;
}

}  // namespace dc::obs
