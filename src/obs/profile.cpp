#include "obs/profile.hpp"

#include "util/csv.hpp"
#include "util/strings.hpp"

namespace dc::obs {

const char* profile_phase_name(ProfilePhase phase) {
  switch (phase) {
    case ProfilePhase::kDispatch: return "dispatch";
    case ProfilePhase::kSweep: return "sweep_chunk";
    case ProfilePhase::kSnapshotSave: return "snapshot_save";
    case ProfilePhase::kSnapshotRestore: return "snapshot_restore";
    case ProfilePhase::kExport: return "export";
    case ProfilePhase::kPhaseCount: break;
  }
  return "unknown";
}

void PhaseProfiler::accumulate(ProfilePhase phase, std::uint64_t calls,
                               std::uint64_t ns, std::uint64_t units) {
  auto& totals = totals_[static_cast<std::size_t>(phase)];
  totals.calls += calls;
  totals.ns += ns;
  totals.units += units;
}

void PhaseProfiler::absorb_sweep(const SweepStats& stats) {
  accumulate(ProfilePhase::kSweep,
             stats.chunks.load(std::memory_order_relaxed),
             stats.busy_ns.load(std::memory_order_relaxed),
             stats.indices.load(std::memory_order_relaxed));
}

void PhaseProfiler::note(std::string_view name, double value) {
  for (auto& existing : notes_) {
    if (existing.first == name) {
      existing.second = value;
      return;
    }
  }
  notes_.emplace_back(std::string(name), value);
}

std::uint64_t PhaseProfiler::calls(ProfilePhase phase) const {
  return totals_[static_cast<std::size_t>(phase)].calls;
}

std::uint64_t PhaseProfiler::ns(ProfilePhase phase) const {
  return totals_[static_cast<std::size_t>(phase)].ns;
}

std::uint64_t PhaseProfiler::units(ProfilePhase phase) const {
  return totals_[static_cast<std::size_t>(phase)].units;
}

std::string PhaseProfiler::table() const {
  TextTable table({"phase", "calls", "ms", "units", "ns/unit"});
  for (std::size_t i = 0;
       i < static_cast<std::size_t>(ProfilePhase::kPhaseCount); ++i) {
    const auto& totals = totals_[i];
    if (totals.calls == 0) continue;
    table.cell(profile_phase_name(static_cast<ProfilePhase>(i)))
        .cell(static_cast<std::int64_t>(totals.calls))
        .cell(static_cast<double>(totals.ns) / 1e6, 3)
        .cell(static_cast<std::int64_t>(totals.units));
    if (totals.units > 0) {
      table.cell(static_cast<double>(totals.ns) /
                     static_cast<double>(totals.units),
                 1);
    } else {
      table.cell("");
    }
    table.end_row();
  }
  std::string out = table.render("profile");
  for (const auto& [name, value] : notes_) {
    out += str_format("  %s = %.10g\n", name.c_str(), value);
  }
  return out;
}

std::vector<std::pair<std::string, double>> PhaseProfiler::counters() const {
  std::vector<std::pair<std::string, double>> out;
  for (std::size_t i = 0;
       i < static_cast<std::size_t>(ProfilePhase::kPhaseCount); ++i) {
    const auto& totals = totals_[i];
    if (totals.calls == 0) continue;
    const std::string base =
        std::string("profile_") + profile_phase_name(static_cast<ProfilePhase>(i));
    out.emplace_back(base + "_ns", static_cast<double>(totals.ns));
    out.emplace_back(base + "_calls", static_cast<double>(totals.calls));
    if (totals.units > 0) {
      out.emplace_back(base + "_units", static_cast<double>(totals.units));
    }
  }
  out.insert(out.end(), notes_.begin(), notes_.end());
  return out;
}

}  // namespace dc::obs
