#include "workflow/dag.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <queue>

namespace dc::workflow {

TaskId Dag::add_task(std::string name, SimDuration runtime, std::int64_t nodes) {
  assert(runtime >= 1 && nodes >= 1);
  const TaskId id = static_cast<TaskId>(tasks_.size());
  tasks_.push_back(Task{id, std::move(name), runtime, nodes});
  children_.emplace_back();
  parents_.emplace_back();
  return id;
}

void Dag::add_dependency(TaskId parent, TaskId child) {
  assert(parent >= 0 && static_cast<std::size_t>(parent) < tasks_.size());
  assert(child >= 0 && static_cast<std::size_t>(child) < tasks_.size());
  assert(parent != child && "self-dependency");
  auto& kids = children_[static_cast<std::size_t>(parent)];
  if (std::find(kids.begin(), kids.end(), child) != kids.end()) return;
  kids.push_back(child);
  parents_[static_cast<std::size_t>(child)].push_back(parent);
  ++edge_count_;
}

std::vector<TaskId> Dag::roots() const {
  std::vector<TaskId> out;
  for (const Task& t : tasks_) {
    if (parents_[static_cast<std::size_t>(t.id)].empty()) out.push_back(t.id);
  }
  return out;
}

std::vector<TaskId> Dag::sinks() const {
  std::vector<TaskId> out;
  for (const Task& t : tasks_) {
    if (children_[static_cast<std::size_t>(t.id)].empty()) out.push_back(t.id);
  }
  return out;
}

Status Dag::validate() const {
  // Kahn's algorithm; if not all tasks are emitted, there is a cycle.
  std::vector<std::size_t> indegree(tasks_.size());
  for (std::size_t i = 0; i < tasks_.size(); ++i) indegree[i] = parents_[i].size();
  std::queue<TaskId> ready;
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    if (indegree[i] == 0) ready.push(static_cast<TaskId>(i));
  }
  std::size_t emitted = 0;
  while (!ready.empty()) {
    const TaskId id = ready.front();
    ready.pop();
    ++emitted;
    for (TaskId child : children_[static_cast<std::size_t>(id)]) {
      if (--indegree[static_cast<std::size_t>(child)] == 0) ready.push(child);
    }
  }
  if (emitted != tasks_.size()) {
    return Status::failed_precondition("workflow graph contains a cycle");
  }
  return Status::ok();
}

std::vector<TaskId> Dag::topological_order() const {
  std::vector<std::size_t> indegree(tasks_.size());
  for (std::size_t i = 0; i < tasks_.size(); ++i) indegree[i] = parents_[i].size();
  std::queue<TaskId> ready;
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    if (indegree[i] == 0) ready.push(static_cast<TaskId>(i));
  }
  std::vector<TaskId> order;
  order.reserve(tasks_.size());
  while (!ready.empty()) {
    const TaskId id = ready.front();
    ready.pop();
    order.push_back(id);
    for (TaskId child : children_[static_cast<std::size_t>(id)]) {
      if (--indegree[static_cast<std::size_t>(child)] == 0) ready.push(child);
    }
  }
  assert(order.size() == tasks_.size() && "topological_order on cyclic graph");
  return order;
}

std::vector<std::vector<TaskId>> Dag::levels() const {
  std::vector<std::size_t> level(tasks_.size(), 0);
  std::size_t max_level = 0;
  for (TaskId id : topological_order()) {
    for (TaskId parent : parents_[static_cast<std::size_t>(id)]) {
      level[static_cast<std::size_t>(id)] =
          std::max(level[static_cast<std::size_t>(id)],
                   level[static_cast<std::size_t>(parent)] + 1);
    }
    max_level = std::max(max_level, level[static_cast<std::size_t>(id)]);
  }
  std::vector<std::vector<TaskId>> out(tasks_.empty() ? 0 : max_level + 1);
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    out[level[i]].push_back(static_cast<TaskId>(i));
  }
  return out;
}

SimDuration Dag::critical_path() const {
  std::vector<SimDuration> finish(tasks_.size(), 0);
  SimDuration longest = 0;
  for (TaskId id : topological_order()) {
    SimDuration start = 0;
    for (TaskId parent : parents_[static_cast<std::size_t>(id)]) {
      start = std::max(start, finish[static_cast<std::size_t>(parent)]);
    }
    finish[static_cast<std::size_t>(id)] =
        start + tasks_[static_cast<std::size_t>(id)].runtime;
    longest = std::max(longest, finish[static_cast<std::size_t>(id)]);
  }
  return longest;
}

SimDuration Dag::total_work() const {
  SimDuration total = 0;
  for (const Task& t : tasks_) total += t.runtime;
  return total;
}

std::size_t Dag::max_level_width() const {
  std::size_t widest = 0;
  for (const auto& level : levels()) widest = std::max(widest, level.size());
  return widest;
}

void Dag::scale_runtimes(double factor) {
  assert(factor > 0.0);
  for (Task& t : tasks_) {
    t.runtime = std::max<SimDuration>(
        1, static_cast<SimDuration>(
               std::llround(static_cast<double>(t.runtime) * factor)));
  }
}

double Dag::mean_runtime() const {
  if (tasks_.empty()) return 0.0;
  return static_cast<double>(total_work()) / static_cast<double>(tasks_.size());
}

}  // namespace dc::workflow
