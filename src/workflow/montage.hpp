// Montage mosaic-workflow generator.
//
// The paper's MTC workload is a Montage astronomy workflow of 1,000 tasks
// with a mean task runtime of 11.38 s, produced by the Pegasus
// WorkflowGenerator (Section 4.2). The generator site is offline, so we
// reproduce the canonical Montage structure for N input images:
//
//   level 0: N   x mProjectPP  (reproject each input image)
//   level 1: ~4N x mDiffFit    (fit differences between overlapping pairs)
//   level 2: 1   x mConcatFit  (concatenate the fit planes)
//   level 3: 1   x mBgModel    (model the background corrections)
//   level 4: N   x mBackground (apply correction to each image)
//   level 5: 1   x mImgtbl     (build the image table)
//   level 6: 1   x mAdd        (co-add into the mosaic)
//   level 7: 1   x mShrink     (shrink the mosaic)
//   level 8: 1   x mJPEG       (render the preview)
//
// With N = 166 the diff level has 4*166-2 = 662 tasks and the total is
// exactly 166 + 662 + 166 + 6 = 1,000, which simultaneously matches three
// numbers the paper reports: the 1,000-task count, the "accumulated
// resource demand in most of the running time is 166 nodes" used to size
// the SSP/DCS runtime environment (Section 4.4), and the DRP system's 662
// node*hour consumption in Table 4 (the diff level's width, billed for one
// hour each).
#pragma once

#include <cstdint>

#include "workflow/dag.hpp"

namespace dc::workflow {

struct MontageParams {
  /// Number of input images (N = 166 reproduces the paper's workload).
  std::int64_t inputs = 166;
  /// Target mean task runtime in seconds (the paper reports 11.38 s);
  /// runtimes are scaled after sampling to hit this exactly.
  double mean_runtime = 11.38;
  /// Per-stage lognormal coefficient of variation for the fan-out stages.
  double runtime_cv = 0.45;
  /// The mProjectPP level uses a tighter spread: the reprojections are
  /// near-uniform in practice, which makes the whole mDiffFit level become
  /// ready nearly simultaneously — the source of the DRP system's 662-VM
  /// peak (Table 4).
  double project_cv = 0.10;
  /// Relative mean runtimes per stage, before calibration. The serial tail
  /// stages (mConcatFit/mBgModel/mAdd) dominate the critical path, which is
  /// what separates the DRP makespan (critical-path bound) from the
  /// 166-node systems' makespan (work/width bound plus the same tail).
  double mean_project = 15.0;
  double mean_diff = 9.5;
  double mean_concat = 45.0;
  double mean_bgmodel = 60.0;
  double mean_background = 11.0;
  double mean_imgtbl = 20.0;
  double mean_add = 110.0;
  double mean_shrink = 40.0;
  double mean_jpeg = 10.0;
};

/// Builds a Montage DAG. Deterministic in (params, seed).
Dag make_montage(const MontageParams& params, std::uint64_t seed);

/// The paper's workload: 1,000 tasks, mean runtime 11.38 s.
Dag make_paper_montage(std::uint64_t seed = 7);

}  // namespace dc::workflow
