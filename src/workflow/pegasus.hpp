// Additional Pegasus-style scientific workflow families.
//
// Section 3.1.1 notes "there are diversities of MTC workloads"; the paper
// evaluates one (Montage). These generators reproduce the structure of two
// other canonical Pegasus workflows so the MTC results can be checked
// across workflow shapes (bench/mtc_families):
//
//  * Epigenomics — C independent chains of depth D (sequence filtering /
//    mapping per lane) merging into a global pipeline: long critical path,
//    narrow steady-state parallelism. The regime where DRP's
//    run-immediately model buys the least.
//  * CyberShake — R ruptures, each fanning out V variations
//    (extract -> V x synthesis -> V x peak ground motion -> zip): very wide
//    transient parallelism, like Montage's mDiffFit level but deeper.
#pragma once

#include <cstdint>

#include "workflow/dag.hpp"

namespace dc::workflow {

struct EpigenomicsParams {
  std::int64_t chains = 32;   // parallel lanes
  std::int64_t depth = 6;     // pipeline stages per lane
  double mean_stage_runtime = 40.0;
  double runtime_cv = 0.4;
  double mean_merge_runtime = 120.0;
};

/// chains*depth lane tasks + 1 merge + 2 global stages.
Dag make_epigenomics(const EpigenomicsParams& params, std::uint64_t seed);

struct CybershakeParams {
  std::int64_t ruptures = 20;
  std::int64_t variations = 30;  // per rupture
  double mean_extract_runtime = 60.0;
  double mean_synth_runtime = 15.0;
  double mean_peak_runtime = 5.0;
  double runtime_cv = 0.4;
  double mean_zip_runtime = 90.0;
};

/// ruptures * (1 + 2*variations) + 1 zip tasks.
Dag make_cybershake(const CybershakeParams& params, std::uint64_t seed);

}  // namespace dc::workflow
