#include "workflow/montage.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "util/rng.hpp"

namespace dc::workflow {
namespace {

SimDuration sample(Rng& rng, double mean, double cv) {
  const double value = rng.lognormal_mean_cv(mean, cv);
  return std::max<SimDuration>(1, static_cast<SimDuration>(std::llround(value)));
}

}  // namespace

Dag make_montage(const MontageParams& params, std::uint64_t seed) {
  assert(params.inputs >= 2);
  Rng rng(seed);
  Dag dag;
  const std::int64_t n = params.inputs;
  const std::int64_t diffs = 4 * n - 2;

  std::vector<TaskId> projects;
  projects.reserve(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    projects.push_back(
        dag.add_task("mProjectPP", sample(rng, params.mean_project, params.project_cv)));
  }

  // Each mDiffFit compares one overlapping pair of reprojected images. We
  // pair image i with a nearby image (sky neighbours), cycling through
  // offsets so every project feeds multiple diffs, as in real mosaics.
  std::vector<TaskId> diff_tasks;
  diff_tasks.reserve(static_cast<std::size_t>(diffs));
  for (std::int64_t d = 0; d < diffs; ++d) {
    const TaskId diff =
        dag.add_task("mDiffFit", sample(rng, params.mean_diff, params.runtime_cv));
    const std::int64_t a = d % n;
    const std::int64_t offset = 1 + (d / n) % (n - 1);
    const std::int64_t b = (a + offset) % n;
    dag.add_dependency(projects[static_cast<std::size_t>(a)], diff);
    dag.add_dependency(projects[static_cast<std::size_t>(b)], diff);
    diff_tasks.push_back(diff);
  }

  const TaskId concat =
      dag.add_task("mConcatFit", sample(rng, params.mean_concat, params.runtime_cv));
  for (TaskId diff : diff_tasks) dag.add_dependency(diff, concat);

  const TaskId bgmodel =
      dag.add_task("mBgModel", sample(rng, params.mean_bgmodel, params.runtime_cv));
  dag.add_dependency(concat, bgmodel);

  std::vector<TaskId> backgrounds;
  backgrounds.reserve(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    const TaskId bg = dag.add_task(
        "mBackground", sample(rng, params.mean_background, params.runtime_cv));
    dag.add_dependency(bgmodel, bg);
    dag.add_dependency(projects[static_cast<std::size_t>(i)], bg);
    backgrounds.push_back(bg);
  }

  const TaskId imgtbl =
      dag.add_task("mImgtbl", sample(rng, params.mean_imgtbl, params.runtime_cv));
  for (TaskId bg : backgrounds) dag.add_dependency(bg, imgtbl);

  const TaskId add =
      dag.add_task("mAdd", sample(rng, params.mean_add, params.runtime_cv));
  dag.add_dependency(imgtbl, add);

  const TaskId shrink =
      dag.add_task("mShrink", sample(rng, params.mean_shrink, params.runtime_cv));
  dag.add_dependency(add, shrink);

  const TaskId jpeg =
      dag.add_task("mJPEG", sample(rng, params.mean_jpeg, params.runtime_cv));
  dag.add_dependency(shrink, jpeg);

  // Calibrate the mean task runtime to the published value. Integer
  // rounding perturbs the mean slightly, so iterate a couple of times.
  for (int pass = 0; pass < 3; ++pass) {
    const double mean = dag.mean_runtime();
    if (mean <= 0.0) break;
    const double factor = params.mean_runtime / mean;
    if (std::abs(factor - 1.0) < 0.002) break;
    dag.scale_runtimes(factor);
  }
  return dag;
}

Dag make_paper_montage(std::uint64_t seed) {
  return make_montage(MontageParams{}, seed);
}

}  // namespace dc::workflow
