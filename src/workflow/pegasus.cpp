#include "workflow/pegasus.hpp"

#include <cassert>
#include <cmath>

#include "util/rng.hpp"

namespace dc::workflow {
namespace {

SimDuration sample(Rng& rng, double mean, double cv) {
  const double value = rng.lognormal_mean_cv(mean, cv);
  return std::max<SimDuration>(1, static_cast<SimDuration>(std::llround(value)));
}

}  // namespace

Dag make_epigenomics(const EpigenomicsParams& params, std::uint64_t seed) {
  assert(params.chains >= 1 && params.depth >= 1);
  Rng rng(seed);
  Dag dag;
  const char* stage_names[] = {"fastqSplit", "filterContams", "sol2sanger",
                               "fastq2bfq", "map", "mapMerge"};
  std::vector<TaskId> chain_tails;
  chain_tails.reserve(static_cast<std::size_t>(params.chains));
  for (std::int64_t c = 0; c < params.chains; ++c) {
    TaskId previous = -1;
    for (std::int64_t d = 0; d < params.depth; ++d) {
      const char* name =
          stage_names[static_cast<std::size_t>(d) %
                      (sizeof(stage_names) / sizeof(stage_names[0]))];
      const TaskId task = dag.add_task(
          name, sample(rng, params.mean_stage_runtime, params.runtime_cv));
      if (previous >= 0) dag.add_dependency(previous, task);
      previous = task;
    }
    chain_tails.push_back(previous);
  }
  const TaskId merge = dag.add_task(
      "mapMergeGlobal", sample(rng, params.mean_merge_runtime, params.runtime_cv));
  for (TaskId tail : chain_tails) dag.add_dependency(tail, merge);
  const TaskId pileup = dag.add_task(
      "maqIndex", sample(rng, params.mean_merge_runtime, params.runtime_cv));
  dag.add_dependency(merge, pileup);
  const TaskId final_task = dag.add_task(
      "pileup", sample(rng, params.mean_merge_runtime, params.runtime_cv));
  dag.add_dependency(pileup, final_task);
  return dag;
}

Dag make_cybershake(const CybershakeParams& params, std::uint64_t seed) {
  assert(params.ruptures >= 1 && params.variations >= 1);
  Rng rng(seed);
  Dag dag;
  std::vector<TaskId> peaks;
  peaks.reserve(static_cast<std::size_t>(params.ruptures * params.variations));
  for (std::int64_t r = 0; r < params.ruptures; ++r) {
    const TaskId extract = dag.add_task(
        "ExtractSGT", sample(rng, params.mean_extract_runtime, params.runtime_cv));
    for (std::int64_t v = 0; v < params.variations; ++v) {
      const TaskId synth = dag.add_task(
          "SeismogramSynthesis",
          sample(rng, params.mean_synth_runtime, params.runtime_cv));
      dag.add_dependency(extract, synth);
      const TaskId peak = dag.add_task(
          "PeakValCalc", sample(rng, params.mean_peak_runtime, params.runtime_cv));
      dag.add_dependency(synth, peak);
      peaks.push_back(peak);
    }
  }
  const TaskId zip = dag.add_task(
      "ZipPSA", sample(rng, params.mean_zip_runtime, params.runtime_cv));
  for (TaskId peak : peaks) dag.add_dependency(peak, zip);
  return dag;
}

}  // namespace dc::workflow
