#include "workflow/wff.hpp"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "util/strings.hpp"

namespace dc::workflow {

void write_wff(std::ostream& out, const Dag& dag) {
  out << "% dawningcloud workflow v1\n";
  out << "% tasks: " << dag.size() << " edges: " << dag.edge_count() << '\n';
  for (const Task& t : dag.tasks()) {
    out << "task " << t.id << ' ' << t.name << ' ' << t.nodes << ' '
        << t.runtime << '\n';
  }
  for (const Task& t : dag.tasks()) {
    for (TaskId child : dag.children(t.id)) {
      out << "edge " << t.id << ' ' << child << '\n';
    }
  }
}

std::string to_wff_string(const Dag& dag) {
  std::ostringstream out;
  write_wff(out, dag);
  return out.str();
}

Status write_wff_file(const std::string& path, const Dag& dag) {
  std::ofstream out(path);
  if (!out) return Status::internal("cannot open for writing: " + path);
  write_wff(out, dag);
  if (!out.good()) return Status::internal("write failed: " + path);
  return Status::ok();
}

StatusOr<Dag> parse_wff(std::istream& in) {
  Dag dag;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::string_view view = trim(line);
    if (view.empty() || view.front() == '%') continue;
    const auto tokens = split_ws(view);
    if (tokens[0] == "task") {
      if (tokens.size() != 5) {
        return Status::invalid_argument(
            str_format("line %zu: task needs 4 fields", line_no));
      }
      auto id = parse_int(tokens[1]);
      auto nodes = parse_int(tokens[3]);
      auto runtime = parse_int(tokens[4]);
      if (!id.is_ok() || !nodes.is_ok() || !runtime.is_ok()) {
        return Status::invalid_argument(
            str_format("line %zu: malformed task fields", line_no));
      }
      if (*id != static_cast<TaskId>(dag.size())) {
        return Status::invalid_argument(
            str_format("line %zu: task ids must be dense and in order "
                       "(expected %zu, got %lld)",
                       line_no, dag.size(), static_cast<long long>(*id)));
      }
      if (*runtime < 1 || *nodes < 1) {
        return Status::invalid_argument(
            str_format("line %zu: runtime and nodes must be >= 1", line_no));
      }
      dag.add_task(std::string(tokens[2]), *runtime, *nodes);
    } else if (tokens[0] == "edge") {
      if (tokens.size() != 3) {
        return Status::invalid_argument(
            str_format("line %zu: edge needs 2 fields", line_no));
      }
      auto parent = parse_int(tokens[1]);
      auto child = parse_int(tokens[2]);
      if (!parent.is_ok() || !child.is_ok()) {
        return Status::invalid_argument(
            str_format("line %zu: malformed edge fields", line_no));
      }
      const auto n = static_cast<TaskId>(dag.size());
      if (*parent < 0 || *parent >= n || *child < 0 || *child >= n) {
        return Status::out_of_range(
            str_format("line %zu: edge endpoint out of range", line_no));
      }
      if (*parent == *child) {
        return Status::invalid_argument(
            str_format("line %zu: self-edge", line_no));
      }
      dag.add_dependency(*parent, *child);
    } else {
      return Status::invalid_argument(
          str_format("line %zu: unknown directive '%.*s'", line_no,
                     static_cast<int>(tokens[0].size()), tokens[0].data()));
    }
  }
  if (auto status = dag.validate(); !status.is_ok()) return status;
  return dag;
}

StatusOr<Dag> parse_wff_string(const std::string& text) {
  std::istringstream in(text);
  return parse_wff(in);
}

StatusOr<Dag> read_wff_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::not_found("cannot open workflow file: " + path);
  return parse_wff(in);
}

}  // namespace dc::workflow
