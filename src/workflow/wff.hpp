// Workflow file format (WFF) — a minimal DAX-like text serialization.
//
// The paper's workload file "includes the task name, run time, inputs,
// outputs and the list of control-flow dependencies of each job" (Section
// 4.2). WFF captures the simulation-relevant subset in a line-oriented
// format the MTC web-portal path (job emulator) parses:
//
//   % comment
//   task <id> <name> <nodes> <runtime_seconds>
//   edge <parent_id> <child_id>
//
// Task ids must be dense 0..n-1 and declared before use in edges.
#pragma once

#include <iosfwd>
#include <string>

#include "util/status.hpp"
#include "workflow/dag.hpp"

namespace dc::workflow {

/// Serializes a DAG to WFF.
void write_wff(std::ostream& out, const Dag& dag);
std::string to_wff_string(const Dag& dag);
Status write_wff_file(const std::string& path, const Dag& dag);

/// Parses WFF; validates density of ids, edge endpoints, and acyclicity.
StatusOr<Dag> parse_wff(std::istream& in);
StatusOr<Dag> parse_wff_string(const std::string& text);
StatusOr<Dag> read_wff_file(const std::string& path);

}  // namespace dc::workflow
