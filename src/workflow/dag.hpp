// Workflow DAG model.
//
// MTC applications "can be decomposed to a set of small jobs with
// dependencies, whose running time is short" (Section 3.1.1). A Dag holds
// those jobs (tasks) and their control-flow dependencies; the MTC server
// releases a task to its scheduler queue once every parent has completed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.hpp"
#include "util/time.hpp"

namespace dc::workflow {

using TaskId = std::int64_t;

struct Task {
  TaskId id = 0;
  std::string name;         // stage name, e.g. "mDiffFit"
  SimDuration runtime = 1;  // seconds
  std::int64_t nodes = 1;   // node width (Montage tasks are single-node)
};

class Dag {
 public:
  /// Adds a task and returns its id (ids are dense, starting at 0).
  TaskId add_task(std::string name, SimDuration runtime, std::int64_t nodes = 1);

  /// Declares that `child` cannot start until `parent` completes.
  /// Duplicate edges are ignored.
  void add_dependency(TaskId parent, TaskId child);

  std::size_t size() const { return tasks_.size(); }
  bool empty() const { return tasks_.empty(); }
  const Task& task(TaskId id) const { return tasks_.at(static_cast<std::size_t>(id)); }
  Task& task(TaskId id) { return tasks_.at(static_cast<std::size_t>(id)); }
  const std::vector<Task>& tasks() const { return tasks_; }

  const std::vector<TaskId>& children(TaskId id) const {
    return children_.at(static_cast<std::size_t>(id));
  }
  const std::vector<TaskId>& parents(TaskId id) const {
    return parents_.at(static_cast<std::size_t>(id));
  }
  std::size_t parent_count(TaskId id) const { return parents(id).size(); }
  std::size_t edge_count() const { return edge_count_; }

  /// Tasks with no parents.
  std::vector<TaskId> roots() const;

  /// Tasks with no children.
  std::vector<TaskId> sinks() const;

  /// OK iff the graph is acyclic (edge endpoints are range-checked at
  /// insertion time).
  Status validate() const;

  /// Topological order (Kahn). Requires a valid DAG.
  std::vector<TaskId> topological_order() const;

  /// Level decomposition: level of a task = 1 + max(level of parents),
  /// roots at level 0. Returns tasks grouped by level.
  std::vector<std::vector<TaskId>> levels() const;

  /// Length (seconds) of the longest runtime-weighted path — the makespan
  /// lower bound with unlimited resources, i.e. what the DRP system should
  /// approach.
  SimDuration critical_path() const;

  /// Sum of all task runtimes in seconds.
  SimDuration total_work() const;

  /// Max number of tasks that can be simultaneously ready assuming all
  /// earlier levels complete together — an upper bound proxy for DRP's peak
  /// resource demand.
  std::size_t max_level_width() const;

  /// Multiplies every task runtime by `factor` (>= 1 second result), used
  /// to calibrate the mean task runtime.
  void scale_runtimes(double factor);

  /// Mean task runtime in seconds.
  double mean_runtime() const;

 private:
  std::vector<Task> tasks_;
  std::vector<std::vector<TaskId>> children_;
  std::vector<std::vector<TaskId>> parents_;
  std::size_t edge_count_ = 0;
};

}  // namespace dc::workflow
