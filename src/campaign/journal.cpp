#include "campaign/journal.hpp"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <utility>

#ifndef _WIN32
#include <fcntl.h>
#include <signal.h>
#include <unistd.h>
#endif

#include "snapshot/format.hpp"
#include "util/faultfs.hpp"
#include "util/fsio.hpp"
#include "util/log.hpp"
#include "util/strings.hpp"

namespace dc::campaign {
namespace {

std::string errno_text() { return std::strerror(errno); }

std::uint32_t decode_u32le(const char* p) {
  const auto* b = reinterpret_cast<const unsigned char*>(p);
  return static_cast<std::uint32_t>(b[0]) |
         (static_cast<std::uint32_t>(b[1]) << 8) |
         (static_cast<std::uint32_t>(b[2]) << 16) |
         (static_cast<std::uint32_t>(b[3]) << 24);
}

StatusOr<CellState> parse_cell_state(std::string_view name) {
  if (name == "claimed") return CellState::kClaimed;
  if (name == "running") return CellState::kRunning;
  if (name == "done") return CellState::kDone;
  if (name == "failed") return CellState::kFailed;
  if (name == "quarantined") return CellState::kQuarantined;
  return Status::invalid_argument("unknown cell state '" + std::string(name) +
                                  "'");
}

std::string encode_entry(const JournalEntry& entry) {
  snapshot::SnapshotWriter writer;
  writer.begin_section("entry");
  writer.field_str("kind",
                   entry.kind == JournalEntry::Kind::kCampaign ? "campaign"
                                                               : "cell");
  if (entry.kind == JournalEntry::Kind::kCampaign) {
    writer.field_u64("spec_digest", entry.spec_digest);
    writer.field_u64("cell_count", entry.cell_count);
  } else {
    writer.field_u64("cell", entry.cell);
    writer.field_str("state", cell_state_name(entry.state));
    writer.field_i64("attempt", entry.attempt);
    writer.field_i64("pid", entry.pid);
    writer.field_u64("artifact_digest", entry.artifact_digest);
    writer.field_str("reason", entry.reason);
  }
  writer.end_section();
  const std::string payload = writer.finish();
  std::string frame;
  frame.reserve(payload.size() + 4);
  for (int i = 0; i < 4; ++i) {
    frame.push_back(
        static_cast<char>((payload.size() >> (8 * i)) & 0xff));
  }
  frame += payload;
  return frame;
}

Status decode_entry(std::string payload, JournalEntry& out) {
  auto reader = snapshot::SnapshotReader::from_buffer(std::move(payload));
  if (!reader.is_ok()) return reader.status();
  if (Status st = reader->begin_section("entry"); !st.is_ok()) return st;
  std::string kind;
  if (Status st = reader->read_str("kind", kind); !st.is_ok()) return st;
  if (kind == "campaign") {
    out.kind = JournalEntry::Kind::kCampaign;
    if (Status st = reader->read_u64("spec_digest", out.spec_digest);
        !st.is_ok()) {
      return st;
    }
    if (Status st = reader->read_u64("cell_count", out.cell_count);
        !st.is_ok()) {
      return st;
    }
  } else if (kind == "cell") {
    out.kind = JournalEntry::Kind::kCell;
    if (Status st = reader->read_u64("cell", out.cell); !st.is_ok()) return st;
    std::string state;
    if (Status st = reader->read_str("state", state); !st.is_ok()) return st;
    auto parsed = parse_cell_state(state);
    if (!parsed.is_ok()) return parsed.status();
    out.state = *parsed;
    if (Status st = reader->read_i64("attempt", out.attempt); !st.is_ok()) {
      return st;
    }
    if (Status st = reader->read_i64("pid", out.pid); !st.is_ok()) return st;
    if (Status st = reader->read_u64("artifact_digest", out.artifact_digest);
        !st.is_ok()) {
      return st;
    }
    if (Status st = reader->read_str("reason", out.reason); !st.is_ok()) {
      return st;
    }
  } else {
    return Status::invalid_argument("unknown journal entry kind '" + kind +
                                    "'");
  }
  return reader->end_section();
}


}  // namespace

const char* cell_state_name(CellState state) {
  switch (state) {
    case CellState::kClaimed: return "claimed";
    case CellState::kRunning: return "running";
    case CellState::kDone: return "done";
    case CellState::kFailed: return "failed";
    case CellState::kQuarantined: return "quarantined";
  }
  return "?";
}

JournalEntry JournalEntry::campaign(std::uint64_t digest,
                                    std::uint64_t cells) {
  JournalEntry entry;
  entry.kind = Kind::kCampaign;
  entry.spec_digest = digest;
  entry.cell_count = cells;
  return entry;
}

JournalEntry JournalEntry::cell_state(std::uint64_t cell, CellState state,
                                      std::int64_t attempt) {
  JournalEntry entry;
  entry.kind = Kind::kCell;
  entry.cell = cell;
  entry.state = state;
  entry.attempt = attempt;
  return entry;
}

StatusOr<JournalAppender> JournalAppender::open(const std::string& path) {
#ifndef _WIN32
  faultfs::SiteScope site("campaign.journal.create");
  const int fd =
      faultfs::xopen(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) {
    return Status::internal("campaign journal: cannot open '" + path +
                            "' for appending: " + errno_text());
  }
  return JournalAppender(fd, path);
#else
  return Status::internal("campaign journal: POSIX-only");
#endif
}

JournalAppender::JournalAppender(JournalAppender&& other) noexcept
    : fd_(other.fd_), path_(std::move(other.path_)) {
  other.fd_ = -1;
}

JournalAppender& JournalAppender::operator=(JournalAppender&& other) noexcept {
  if (this != &other) {
#ifndef _WIN32
    if (fd_ >= 0) ::close(fd_);
#endif
    fd_ = other.fd_;
    path_ = std::move(other.path_);
    other.fd_ = -1;
  }
  return *this;
}

JournalAppender::~JournalAppender() {
#ifndef _WIN32
  if (fd_ >= 0) ::close(fd_);
#endif
}

Status JournalAppender::append(const JournalEntry& entry) {
#ifndef _WIN32
  if (fd_ < 0) {
    return Status::failed_precondition("campaign journal: appender is closed");
  }
  faultfs::SiteScope site("campaign.journal.append");
  const std::string frame = encode_entry(entry);
  std::size_t written = 0;
  while (written < frame.size()) {
    const long n =
        faultfs::xwrite(fd_, frame.data() + written, frame.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::internal("campaign journal: write to '" + path_ +
                              "' failed: " + errno_text());
    }
    written += static_cast<std::size_t>(n);
  }
  if (faultfs::xfsync(fd_) != 0) {
    return Status::internal("campaign journal: fsync of '" + path_ +
                            "' failed: " + errno_text());
  }
  return Status::ok();
#else
  (void)entry;
  return Status::internal("campaign journal: POSIX-only");
#endif
}

StatusOr<JournalContents> parse_journal(const std::string& data,
                                        const std::string& label) {
  JournalContents contents;
  std::size_t pos = 0;
  std::size_t index = 0;
  while (pos < data.size()) {
    if (pos + 4 > data.size()) {
      // Not even a full length prefix: torn tail of a crashed append.
      contents.truncated_tail = true;
      break;
    }
    const std::uint32_t length = decode_u32le(data.data() + pos);
    if (length > data.size() || pos + 4 + length > data.size()) {
      contents.truncated_tail = true;
      break;
    }
    JournalEntry entry;
    if (Status st = decode_entry(data.substr(pos + 4, length), entry);
        !st.is_ok()) {
      // A complete frame that fails verification is corruption, not a
      // crash artifact — refuse to resume from it.
      return Status::failed_precondition(str_format(
          "campaign journal '%s' is corrupt at entry %zu (byte offset %zu): "
          "%s — refusing to resume from damaged campaign state; inspect or "
          "delete the campaign directory and re-run",
          label.c_str(), index, pos, st.message().c_str()));
    }
    contents.entries.push_back(std::move(entry));
    pos += 4 + length;
    ++index;
  }
  if (contents.truncated_tail) {
    Log::raw(LogLevel::kWarn,
             "campaign journal '%s': dropping torn trailing record at byte "
             "offset %zu (crash mid-append); resuming from the last complete "
             "entry",
             label.c_str(), pos);
  }
  return contents;
}

StatusOr<JournalContents> load_journal(const std::string& path) {
  auto bytes = read_file(path);
  if (!bytes.is_ok()) return bytes.status();
  return parse_journal(*bytes, path);
}

long long process_start_ticks(long long pid) {
  return dc::process_start_ticks(pid);
}

StatusOr<CampaignLock> CampaignLock::acquire(const std::string& path) {
  PidLease::Wording wording;
  wording.site = "campaign.lock";
  wording.busy_prefix = "campaign is already being orchestrated by";
  wording.busy_suffix =
      "a campaign may have only one orchestrator — wait for it "
      "or kill it first";
  auto lease = PidLease::acquire(path, wording);
  if (!lease.is_ok()) return lease.status();
  return CampaignLock(std::move(*lease));
}

}  // namespace dc::campaign
