#include "campaign/worker.hpp"

#include <algorithm>
#include <csignal>
#include <cstdio>
#include <filesystem>

#ifndef _WIN32
#include <unistd.h>
#endif

#include "core/description.hpp"
#include "core/system_runner.hpp"
#include "metrics/report.hpp"
#include "snapshot/format.hpp"
#include "util/csv.hpp"
#include "util/fsio.hpp"
#include "util/log.hpp"

namespace dc::campaign {
namespace {

/// Exit codes the orchestrator maps back to failure reasons.
constexpr int kConfigError = 2;
constexpr int kPoisoned = 3;

int fail(const WorkerContext& ctx, const Status& status) {
  Log::raw(LogLevel::kError, "cell %llu (%s): %s",
           static_cast<unsigned long long>(ctx.cell.id),
           ctx.cell.key().c_str(), status.to_string().c_str());
  return kConfigError;
}

/// The liveness signal: a monotonic counter, atomically replaced so the
/// orchestrator never reads a torn value. Deliberately not a timestamp —
/// nothing wall-clock-derived may exist under a cell directory (dc-r13).
void touch_heartbeat(const std::string& path, std::uint64_t counter) {
  char text[32];
  std::snprintf(text, sizeof(text), "%llu\n",
                static_cast<unsigned long long>(counter));
  // Best effort: a lost heartbeat at worst costs one supervision timeout.
  (void)atomic_write_file(path, text, "campaign.heartbeat");
}

}  // namespace

std::string cell_result_path(const std::string& cell_dir) {
  return cell_dir + "/result.csv";
}

std::string cell_heartbeat_path(const std::string& cell_dir) {
  return cell_dir + "/heartbeat";
}

StatusOr<std::uint64_t> file_digest(const std::string& path) {
  auto bytes = read_file(path);
  if (!bytes.is_ok()) return bytes.status();
  return snapshot::fnv1a(*bytes);
}

int run_cell_worker(const WorkerContext& ctx) {
  if (ctx.drill_poison) {
    Log::raw(LogLevel::kWarn, "cell %llu (%s): poison drill — failing attempt %lld",
             static_cast<unsigned long long>(ctx.cell.id),
             ctx.cell.key().c_str(), static_cast<long long>(ctx.attempt));
    return kPoisoned;
  }

  auto workload = core::read_experiment_description(ctx.config_path);
  if (!workload.is_ok()) return fail(ctx, workload.status());
  auto plan = plan_cell(ctx.cell);
  if (!plan.is_ok()) return fail(ctx, plan.status());

  std::error_code ec;
  std::filesystem::create_directories(ctx.cell_dir, ec);
  if (ec) {
    return fail(ctx, Status::internal("cannot create cell directory '" +
                                      ctx.cell_dir + "': " + ec.message()));
  }
  const std::string heartbeat = cell_heartbeat_path(ctx.cell_dir);

  // Per-cell snapshot resume: a retried cell restarts from its newest
  // valid snapshot instead of from scratch. Chunk boundaries are fixed
  // multiples of the cadence, so a resumed cell is byte-identical to an
  // uninterrupted one (docs/SNAPSHOT.md).
  std::string resume_from;
  if (ctx.snapshot_every > 0) {
    auto latest = core::latest_valid_snapshot(ctx.cell_dir, plan->model);
    if (!latest.is_ok()) return fail(ctx, latest.status());
    resume_from = *latest;
  }

  const auto mode = resume_from.empty() ? core::SystemRunner::Mode::kFresh
                                        : core::SystemRunner::Mode::kRestore;
  core::SystemRunner runner(plan->model, *workload, plan->options, mode);
  if (!resume_from.empty()) {
    if (Status st = runner.restore_file(resume_from); !st.is_ok()) {
      return fail(ctx, st);
    }
  }

  const SimTime horizon = runner.horizon();
  SimTime t = runner.now();
  std::uint64_t beats = 0;
  touch_heartbeat(heartbeat, beats);
  while (t < horizon) {
    SimTime next = horizon;
    if (ctx.snapshot_every > 0) {
      next = std::min(horizon, (t / ctx.snapshot_every + 1) * ctx.snapshot_every);
    }
    runner.run_until(next);
    t = next;
    if (ctx.snapshot_every > 0 && t < horizon) {
      if (Status st =
              runner.save_file(core::snapshot_path(ctx.cell_dir, plan->model, t));
          !st.is_ok()) {
        return fail(ctx, st);
      }
    }
    touch_heartbeat(heartbeat, ++beats);
    if (ctx.drill_kill_midway && ctx.attempt == 1 && t >= horizon / 2) {
      // Deterministic worker-crash injection: die at a chunk boundary
      // with snapshots on disk, so the retry exercises mid-cell resume.
      std::raise(SIGKILL);
    }
    if (ctx.drill_hang && ctx.attempt == 1 && t >= horizon / 2) {
      // Stop heartbeating without exiting: the orchestrator must detect
      // the stale heartbeat and SIGKILL us.
#ifndef _WIN32
      for (;;) ::pause();  // dc-wallclock: hang drill blocks on signals, no sim state involved
#endif
    }
  }

  const core::SystemResult result = runner.finalize();

  // The artifact is written through the same atomic path as snapshots: a
  // SIGKILL between any two instructions leaves either no result.csv or a
  // complete one, never a torn file the orchestrator could digest.
  const std::string partial = cell_result_path(ctx.cell_dir) + ".partial";
  {
    CsvWriter csv(partial);
    if (!csv.ok()) {
      return fail(ctx, Status::internal("cannot write '" + partial + "'"));
    }
    metrics::write_results_csv(csv, {result});
  }
  auto bytes = read_file(partial);
  if (!bytes.is_ok()) return fail(ctx, bytes.status());
  if (Status st = atomic_write_file(cell_result_path(ctx.cell_dir), *bytes,
                                    "campaign.cell.result");
      !st.is_ok()) {
    return fail(ctx, st);
  }
  std::filesystem::remove(partial, ec);
  return 0;
}

}  // namespace dc::campaign
