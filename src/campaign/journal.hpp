// The append-only campaign journal (docs/SWEEP.md).
//
// Every state transition of a campaign — the header that pins the grid,
// then claimed → running(pid) → done(artifact digest) / failed(attempt,
// reason) / quarantined per cell — is one self-verifying frame:
//
//   u32 LE payload length | payload
//
// where the payload is a complete snapshot-format stream
// (snapshot::SnapshotWriter::finish(): magic, version, named records,
// FNV-1a checksum footer). Reusing the snapshot encoding buys the
// journal the same auditability guarantees the simulator state gets:
// framed, named, versioned, and checksummed per entry.
//
// Crash semantics on load:
//
//  * a frame that extends past EOF is the torn tail of a crashed append —
//    it is dropped with a warning and `truncated_tail` is set; every
//    complete frame before it is intact (each carries its own checksum);
//  * a *complete* frame that fails verification is mid-file corruption,
//    not a crash artifact — load refuses with the entry index and byte
//    offset rather than resuming from silently wrong state.
//
// Appends are fdatasync'd before append() returns, so an acknowledged
// transition survives the orchestrator being SIGKILLed immediately after.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/pidlock.hpp"
#include "util/status.hpp"

namespace dc::campaign {

enum class CellState {
  kClaimed,      // picked for execution; worker not yet forked
  kRunning,      // worker forked (pid recorded)
  kDone,         // artifact written and digested
  kFailed,       // one attempt failed (attempt count + reason recorded)
  kQuarantined,  // retries exhausted; reported, not fatal
};

const char* cell_state_name(CellState state);

struct JournalEntry {
  enum class Kind { kCampaign, kCell };
  Kind kind = Kind::kCell;

  // kCampaign: pins the journal to one grid. Written once, first.
  std::uint64_t spec_digest = 0;
  std::uint64_t cell_count = 0;

  // kCell: one state transition.
  std::uint64_t cell = 0;
  CellState state = CellState::kClaimed;
  std::int64_t attempt = 0;            // 1-based
  std::int64_t pid = 0;                // kRunning only
  std::uint64_t artifact_digest = 0;   // kDone: fnv1a of the result bytes
  std::string reason;                  // kFailed / kQuarantined

  static JournalEntry campaign(std::uint64_t digest, std::uint64_t cells);
  static JournalEntry cell_state(std::uint64_t cell, CellState state,
                                 std::int64_t attempt);
};

/// Appends checksummed frames to a journal file, fsyncing each one.
class JournalAppender {
 public:
  /// Opens `path` for appending, creating it when missing.
  static StatusOr<JournalAppender> open(const std::string& path);

  JournalAppender(JournalAppender&& other) noexcept;
  JournalAppender& operator=(JournalAppender&& other) noexcept;
  JournalAppender(const JournalAppender&) = delete;
  JournalAppender& operator=(const JournalAppender&) = delete;
  ~JournalAppender();

  /// Encodes, appends, and fsyncs one entry. When append returns OK the
  /// transition is durable.
  Status append(const JournalEntry& entry);

 private:
  explicit JournalAppender(int fd, std::string path)
      : fd_(fd), path_(std::move(path)) {}
  int fd_ = -1;
  std::string path_;
};

struct JournalContents {
  std::vector<JournalEntry> entries;
  /// True when a torn trailing frame was dropped (crash mid-append).
  bool truncated_tail = false;
};

/// Loads every complete frame of `path`. A torn tail is dropped with a
/// kWarn log line; mid-file corruption is a failed_precondition error
/// naming the entry index and byte offset.
StatusOr<JournalContents> load_journal(const std::string& path);

/// Parses an in-memory journal image (the bytes of a journal file).
/// `label` is used in diagnostics in place of a file path. This is the
/// decode core of load_journal, exposed so the fuzzing harness can drive
/// the frame decoder without touching the filesystem.
StatusOr<JournalContents> parse_journal(const std::string& data,
                                        const std::string& label);

/// The kernel start-tick of process `pid` — forwards to
/// dc::process_start_ticks (util/pidlock.hpp), kept here for the
/// campaign-layer callers and tests that adopted this name first.
long long process_start_ticks(long long pid);

/// A lease file that rejects double resume: holding the lock means being
/// the campaign's only orchestrator. The campaign flavour of
/// util/pidlock.hpp's PidLease: pid + start-tick identity, stale leases
/// (dead pid, recycled pid, corrupt stamp) broken with a warning, a live
/// matching holder refused with campaign wording.
class CampaignLock {
 public:
  static StatusOr<CampaignLock> acquire(const std::string& path);

  CampaignLock(CampaignLock&&) noexcept = default;
  CampaignLock& operator=(CampaignLock&&) noexcept = default;
  CampaignLock(const CampaignLock&) = delete;
  CampaignLock& operator=(const CampaignLock&) = delete;

  const std::string& path() const { return lease_.path(); }

 private:
  explicit CampaignLock(PidLease lease) : lease_(std::move(lease)) {}
  PidLease lease_;  // released (unlinked) on destruction
};

}  // namespace dc::campaign
