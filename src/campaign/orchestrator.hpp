// The crash-resilient sweep orchestrator (docs/SWEEP.md).
//
// run_campaign() expands a sweep spec into a deterministic cell grid,
// shards the cells across supervised worker subprocesses, and records
// every state transition in an append-only checksummed journal before
// acting on it. The orchestrator process is disposable by design:
// SIGKILL it at any instant and a `--resume` invocation reconstructs the
// campaign from the journal, re-runs only the incomplete cells, verifies
// completed cells by artifact digest, and produces byte-identical merged
// results.
//
// Separation of clocks: everything that lands in an artifact (cell ids,
// results, digests, the journal's state machine) is pure function of the
// spec. Wall-clock time exists only in the supervision layer — heartbeat
// staleness, retry backoff, poll intervals — and never flows into any
// output file (enforced by dc-lint rule dc-r13).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "campaign/journal.hpp"
#include "campaign/spec.hpp"
#include "util/status.hpp"

namespace dc::campaign {

/// Deterministic fault-injection modes for tests and CI.
enum class DrillMode {
  kNone,
  kKillOrchestrator,  // raise(SIGKILL) after `drill_after` cells are done
  kKillWorker,        // cell `drill_cell` SIGKILLs itself mid-horizon once
  kHangWorker,        // cell `drill_cell` stops heartbeating once
  kPoisonCell,        // cell `drill_cell` fails every attempt (quarantine)
};

/// Parses "", "kill-orchestrator", "kill-worker", "hang-worker",
/// "poison-cell".
StatusOr<DrillMode> parse_drill_mode(std::string_view name);

struct OrchestratorConfig {
  std::string campaign_dir;  // journal, lock, cells/, merged results

  int workers = 2;            // parallel worker subprocesses (>= 1)
  int max_attempts = 3;       // per cell, before quarantine (>= 1)
  bool resume = false;        // continue an existing journal

  // Supervision timing (wall clock; never reaches artifacts).
  std::int64_t heartbeat_timeout_ms = 60000;  // stale-heartbeat SIGKILL
  std::int64_t poll_interval_ms = 25;         // supervision loop tick
  std::int64_t backoff_base_ms = 50;          // retry delay, attempt 1
  std::int64_t backoff_cap_ms = 2000;         // retry delay ceiling

  // Drill injection.
  DrillMode drill = DrillMode::kNone;
  std::uint64_t drill_cell = 0;   // kKillWorker / kHangWorker / kPoisonCell
  std::uint64_t drill_after = 1;  // kKillOrchestrator: die after N done
};

/// Terminal outcome of one cell after a campaign run.
struct CellOutcome {
  std::uint64_t cell = 0;
  std::string key;                    // "system=dcs,mttf=18h"
  CellState state = CellState::kDone;  // kDone or kQuarantined
  std::uint64_t artifact_digest = 0;   // kDone only
  std::string reason;                  // kQuarantined only
};

struct CampaignReport {
  std::uint64_t spec_digest = 0;
  std::uint64_t total_cells = 0;
  std::uint64_t done = 0;
  std::uint64_t quarantined = 0;
  /// Cells whose recorded artifact digest verified on resume and were not
  /// re-run.
  std::uint64_t verified_skipped = 0;
  std::vector<CellOutcome> outcomes;  // cell-id order
  std::string results_csv_path;
  std::string results_json_path;
};

/// Runs (or resumes) the campaign to a terminal state: every cell done or
/// quarantined, merged results written. Fails up front — before any
/// worker is forked — on an invalid spec, a digest-mismatched journal, a
/// corrupt journal, or a live concurrent orchestrator.
StatusOr<CampaignReport> run_campaign(const SweepSpec& spec,
                                      const OrchestratorConfig& config);

/// The journal folded into per-cell latest state — what `dc sweep report`
/// prints and what resume reconciles against.
struct CampaignStatus {
  std::uint64_t spec_digest = 0;
  std::uint64_t cell_count = 0;
  bool truncated_tail = false;
  struct CellView {
    CellState state = CellState::kClaimed;
    std::int64_t attempts = 0;  // highest attempt number observed
    std::int64_t pid = 0;       // last recorded worker pid
    std::uint64_t artifact_digest = 0;
    std::string reason;
  };
  std::map<std::uint64_t, CellView> cells;
};

/// Loads and folds `<campaign_dir>/journal.dcj`. Torn tails are dropped
/// with a warning; mid-file corruption is an error (see journal.hpp).
StatusOr<CampaignStatus> fold_campaign_journal(const std::string& campaign_dir);

/// Human-readable summary table for `dc sweep report`.
std::string format_campaign_status(const CampaignStatus& status);

/// Paths inside a campaign directory (single source of truth for the
/// orchestrator, the report subcommand, and the drill harness).
std::string campaign_journal_path(const std::string& campaign_dir);
std::string campaign_lock_path(const std::string& campaign_dir);
std::string campaign_cell_dir(const std::string& campaign_dir,
                              std::uint64_t cell);
std::string campaign_results_csv_path(const std::string& campaign_dir);
std::string campaign_results_json_path(const std::string& campaign_dir);

}  // namespace dc::campaign
