#include "campaign/orchestrator.hpp"

#include <algorithm>
#include <chrono>
#include <csignal>
#include <filesystem>
#include <thread>
#include <utility>

#ifndef _WIN32
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

#include "campaign/worker.hpp"
#include "rundb/store.hpp"
#include "util/csv.hpp"
#include "util/fsio.hpp"
#include "util/log.hpp"
#include "util/strings.hpp"

namespace dc::campaign {
namespace {

#ifndef _WIN32

// All wall-clock below is supervision-only: heartbeat staleness, retry
// backoff, poll cadence. None of it reaches an artifact (dc-r13).
using SupervisionClock = std::chrono::steady_clock;  // dc-wallclock: supervision timing only, never in artifacts

/// A cell waiting to run (or re-run after backoff).
struct PendingCell {
  CellSpec spec;
  std::int64_t attempts_done = 0;  // failed attempts so far
  SupervisionClock::time_point eligible_at;  // dc-wallclock: retry backoff gate
};

/// One forked worker under supervision.
struct ActiveWorker {
  pid_t pid = -1;
  CellSpec spec;
  std::int64_t attempt = 1;
  std::int64_t attempts_before = 0;
  std::string heartbeat_path;
  std::string last_beat;  // last observed heartbeat content
  SupervisionClock::time_point last_change;  // dc-wallclock: staleness reference point
  bool killed_by_us = false;  // our own timeout kill, not an external death
};

/// Deterministic exponential backoff: base * 2^(attempts_done-1), capped.
std::int64_t backoff_ms(const OrchestratorConfig& config,
                        std::int64_t attempts_done) {
  const int shift =
      static_cast<int>(std::clamp<std::int64_t>(attempts_done - 1, 0, 20));
  return std::min(config.backoff_cap_ms, config.backoff_base_ms << shift);
}

/// Waits for an orphan worker (recorded `running` by a dead orchestrator)
/// to exit before resuming, so two processes never write one cell
/// directory. Refuses to resume — rather than SIGKILLing what might be a
/// recycled pid — if it outlives the deadline.
Status wait_for_orphan(std::int64_t pid, std::int64_t timeout_ms) {
  if (pid <= 0) return Status::ok();
  const auto deadline =  // dc-wallclock: bounded wait for an orphaned worker pid
      SupervisionClock::now() + std::chrono::milliseconds(timeout_ms);
  bool waited = false;
  while (::kill(static_cast<pid_t>(pid), 0) == 0) {
    if (!waited) {
      Log::raw(LogLevel::kWarn,
               "campaign resume: waiting for orphaned worker pid %lld to exit",
               static_cast<long long>(pid));
      waited = true;
    }
    if (SupervisionClock::now() >= deadline) {  // dc-wallclock: orphan wait deadline
      return Status::failed_precondition(str_format(
          "worker pid %lld from the interrupted campaign is still alive "
          "after %lld ms; wait for it to exit (or kill it) before resuming",
          static_cast<long long>(pid), static_cast<long long>(timeout_ms)));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));  // dc-wallclock: orphan poll interval
  }
  return Status::ok();
}

std::string csv_quote(const std::string& value) {
  std::string out = "\"";
  for (char c : value) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out += "\"";
  return out;
}

std::string json_escape(const std::string& value) {
  std::string out;
  for (char c : value) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += str_format("\\u%04x", c);
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

/// Merges the per-cell result.csv files into one long-format table,
/// prefixing every data row with the cell id and its axis assignment. Row
/// order is cell-id order, so the merged table is byte-identical however
/// the campaign was interrupted or resharded.
StatusOr<std::string> merge_results_csv(
    const std::string& campaign_dir,
    const std::vector<CellOutcome>& outcomes) {
  std::string merged;
  bool header_written = false;
  for (const CellOutcome& outcome : outcomes) {
    if (outcome.state != CellState::kDone) continue;
    auto bytes =
        read_file(cell_result_path(campaign_cell_dir(campaign_dir, outcome.cell)));
    if (!bytes.is_ok()) return bytes.status();
    const auto lines = split_char(*bytes, '\n');
    bool first = true;
    for (std::string_view line : lines) {
      while (!line.empty() && line.back() == '\r') line.remove_suffix(1);
      if (line.empty()) continue;
      if (first) {
        first = false;
        if (!header_written) {
          merged += "cell,cell_key,";
          merged.append(line);
          merged += "\n";
          header_written = true;
        }
        continue;
      }
      merged +=
          str_format("%llu,", static_cast<unsigned long long>(outcome.cell)) +
          csv_quote(outcome.key) + ",";
      merged.append(line);
      merged += "\n";
    }
  }
  return merged;
}

/// The machine-readable campaign summary. Only deterministic facts go in:
/// attempt counts and timings vary between an interrupted and an
/// uninterrupted campaign, so they live in the journal, not here.
std::string render_results_json(std::uint64_t spec_digest,
                                const std::vector<CellOutcome>& outcomes) {
  std::string json = "{\n";
  json += str_format("  \"spec_digest\": \"%016llx\",\n",
                     static_cast<unsigned long long>(spec_digest));
  json += str_format("  \"cell_count\": %zu,\n", outcomes.size());
  json += "  \"cells\": [\n";
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const CellOutcome& o = outcomes[i];
    json += str_format("    {\"cell\": %llu, \"key\": \"%s\", \"state\": \"%s\"",
                       static_cast<unsigned long long>(o.cell),
                       json_escape(o.key).c_str(), cell_state_name(o.state));
    if (o.state == CellState::kDone) {
      json += str_format(", \"artifact_digest\": \"%016llx\"",
                         static_cast<unsigned long long>(o.artifact_digest));
    } else {
      json += ", \"reason\": \"" + json_escape(o.reason) + "\"";
    }
    json += (i + 1 < outcomes.size()) ? "},\n" : "}\n";
  }
  json += "  ]\n}\n";
  return json;
}

/// Registers the merged campaign results into the campaign's run store
/// (`<campaign_dir>/rundb`, docs/OBSERVABILITY.md "Time-travel analysis"):
/// one record per (done cell × provider) row of the merged CSV, with the
/// cell's axis assignment plus the row's identity columns as params and
/// every numeric column as a metric. append_records dedups by content and
/// rewrites atomically, so a campaign resumed across any interruption
/// leaves a store byte-identical to the uninterrupted one.
Status register_campaign_store(const std::string& campaign_dir,
                               std::uint64_t digest,
                               const std::vector<CellSpec>& cells,
                               const std::string& merged_csv) {
  auto rows = parse_csv(merged_csv);
  if (!rows.is_ok()) return rows.status();
  if (rows->empty()) return Status::ok();  // nothing done, nothing to index
  const std::vector<std::string>& header = (*rows)[0];

  const std::string source =
      str_format("campaign:%016llx", static_cast<unsigned long long>(digest));
  std::vector<rundb::RunRecord> records;
  for (std::size_t r = 1; r < rows->size(); ++r) {
    const std::vector<std::string>& row = (*rows)[r];
    rundb::RunRecord record;
    record.kind = "campaign-cell";
    record.source = source;
    std::uint64_t cell_id = 0;
    std::string system, provider;
    for (std::size_t c = 0; c < header.size() && c < row.size(); ++c) {
      const std::string& name = header[c];
      if (name == "cell") {
        auto parsed = parse_int(row[c]);
        if (parsed.is_ok()) cell_id = static_cast<std::uint64_t>(*parsed);
        record.params.emplace_back(name, row[c]);
      } else if (name == "cell_key") {
        continue;  // redundant with the expanded axis params below
      } else if (name == "system" || name == "provider" || name == "type") {
        if (name == "system") system = row[c];
        if (name == "provider") provider = row[c];
        record.params.emplace_back(name, row[c]);
      } else {
        record.metrics.emplace_back(name, std::strtod(row[c].c_str(), nullptr));
      }
    }
    for (const CellSpec& cell : cells) {
      if (cell.id != cell_id) continue;
      for (const auto& [key, value] : cell.assignment) {
        record.params.emplace_back(key, value);
      }
      break;
    }
    record.label =
        str_format("cell-%06llu/%s/%s",
                   static_cast<unsigned long long>(cell_id), system.c_str(),
                   provider.c_str());
    records.push_back(std::move(record));
  }
  auto appended = rundb::append_records(campaign_dir + "/rundb", records);
  if (!appended.is_ok()) return appended.status();
  Log::raw(LogLevel::kInfo,
           "campaign: registered %llu run-store record(s) into %s/rundb "
           "(%zu already present)",
           static_cast<unsigned long long>(*appended), campaign_dir.c_str(),
           records.size() - static_cast<std::size_t>(*appended));
  return Status::ok();
}

#endif  // !_WIN32

}  // namespace

StatusOr<DrillMode> parse_drill_mode(std::string_view name) {
  if (name.empty() || name == "none") return DrillMode::kNone;
  if (name == "kill-orchestrator") return DrillMode::kKillOrchestrator;
  if (name == "kill-worker") return DrillMode::kKillWorker;
  if (name == "hang-worker") return DrillMode::kHangWorker;
  if (name == "poison-cell") return DrillMode::kPoisonCell;
  return Status::invalid_argument(
      "unknown drill mode '" + std::string(name) +
      "' (expected kill-orchestrator, kill-worker, hang-worker, or "
      "poison-cell)");
}

std::string campaign_journal_path(const std::string& campaign_dir) {
  return campaign_dir + "/journal.dcj";
}

std::string campaign_lock_path(const std::string& campaign_dir) {
  return campaign_dir + "/LOCK";
}

std::string campaign_cell_dir(const std::string& campaign_dir,
                              std::uint64_t cell) {
  return campaign_dir +
         str_format("/cells/cell-%06llu", static_cast<unsigned long long>(cell));
}

std::string campaign_results_csv_path(const std::string& campaign_dir) {
  return campaign_dir + "/results.csv";
}

std::string campaign_results_json_path(const std::string& campaign_dir) {
  return campaign_dir + "/results.json";
}

StatusOr<CampaignStatus> fold_campaign_journal(
    const std::string& campaign_dir) {
  auto journal = load_journal(campaign_journal_path(campaign_dir));
  if (!journal.is_ok()) return journal.status();

  CampaignStatus status;
  status.truncated_tail = journal->truncated_tail;
  for (const JournalEntry& entry : journal->entries) {
    if (entry.kind == JournalEntry::Kind::kCampaign) {
      status.spec_digest = entry.spec_digest;
      status.cell_count = entry.cell_count;
      continue;
    }
    CampaignStatus::CellView& view = status.cells[entry.cell];
    view.state = entry.state;
    view.attempts = std::max(view.attempts, entry.attempt);
    if (entry.state == CellState::kRunning) view.pid = entry.pid;
    if (entry.state == CellState::kDone) {
      view.artifact_digest = entry.artifact_digest;
    }
    if (entry.state == CellState::kFailed ||
        entry.state == CellState::kQuarantined) {
      view.reason = entry.reason;
    }
  }
  return status;
}

std::string format_campaign_status(const CampaignStatus& status) {
  std::uint64_t done = 0, quarantined = 0, failed = 0, in_flight = 0;
  for (const auto& [cell, view] : status.cells) {
    switch (view.state) {
      case CellState::kDone: ++done; break;
      case CellState::kQuarantined: ++quarantined; break;
      case CellState::kFailed: ++failed; break;
      case CellState::kClaimed:
      case CellState::kRunning: ++in_flight; break;
    }
  }
  const std::uint64_t untouched =
      status.cell_count >= status.cells.size()
          ? status.cell_count - status.cells.size()
          : 0;

  std::string out = str_format(
      "campaign: %llu cells (spec digest %016llx)\n"
      "  done %llu, quarantined %llu, failed-retryable %llu, interrupted "
      "%llu, not started %llu%s\n",
      static_cast<unsigned long long>(status.cell_count),
      static_cast<unsigned long long>(status.spec_digest),
      static_cast<unsigned long long>(done),
      static_cast<unsigned long long>(quarantined),
      static_cast<unsigned long long>(failed),
      static_cast<unsigned long long>(in_flight),
      static_cast<unsigned long long>(untouched),
      status.truncated_tail ? " (journal had a torn tail)" : "");
  for (const auto& [cell, view] : status.cells) {
    out += str_format("  cell %06llu  %-12s attempts %lld",
                      static_cast<unsigned long long>(cell),
                      cell_state_name(view.state),
                      static_cast<long long>(view.attempts));
    if (view.state == CellState::kDone) {
      out += str_format("  digest %016llx",
                        static_cast<unsigned long long>(view.artifact_digest));
    } else if (!view.reason.empty()) {
      out += "  reason: " + view.reason;
    }
    out += "\n";
  }
  return out;
}

StatusOr<CampaignReport> run_campaign(const SweepSpec& spec,
                                      const OrchestratorConfig& config) {
#ifdef _WIN32
  (void)spec;
  (void)config;
  return Status::internal("campaign orchestrator: POSIX-only");
#else
  if (config.campaign_dir.empty()) {
    return Status::invalid_argument("campaign: --dir is required");
  }
  if (config.workers < 1) {
    return Status::invalid_argument("campaign: --workers must be >= 1");
  }
  if (config.max_attempts < 1) {
    return Status::invalid_argument("campaign: --max-attempts must be >= 1");
  }

  const std::vector<CellSpec> cells = expand_grid(spec);
  // Validate the whole grid before forking anything: one bad axis value
  // should fail the campaign in milliseconds, not quarantine every cell
  // one timeout at a time.
  for (const CellSpec& cell : cells) {
    if (auto plan = plan_cell(cell); !plan.is_ok()) return plan.status();
  }
  const std::uint64_t digest = spec_digest(spec);

  std::error_code ec;
  std::filesystem::create_directories(config.campaign_dir + "/cells", ec);
  if (ec) {
    return Status::internal("campaign: cannot create '" + config.campaign_dir +
                            "': " + ec.message());
  }

  // One orchestrator per campaign: the pid lease rejects double resume.
  auto lock = CampaignLock::acquire(campaign_lock_path(config.campaign_dir));
  if (!lock.is_ok()) return lock.status();

  const std::string journal_path = campaign_journal_path(config.campaign_dir);
  bool journal_exists = std::filesystem::exists(journal_path);
  CampaignStatus prior;
  if (journal_exists) {
    if (!config.resume) {
      return Status::failed_precondition(
          "campaign journal '" + journal_path +
          "' already exists; pass --resume to continue the interrupted "
          "campaign, or remove the campaign directory to start over");
    }
    auto folded = fold_campaign_journal(config.campaign_dir);
    if (!folded.is_ok()) return folded.status();
    if (folded->spec_digest == 0 && folded->cell_count == 0 &&
        folded->cells.empty()) {
      // The file exists but no complete frame survived: a crash during the
      // very first (header) append. There is no campaign state to honor —
      // restart the journal as if the file were absent.
      Log::raw(LogLevel::kWarn,
               "campaign journal '%s' holds no complete entry (crash during "
               "the header append); starting the campaign afresh",
               journal_path.c_str());
      std::filesystem::remove(journal_path);
      journal_exists = false;
    } else if (folded->spec_digest != digest ||
               folded->cell_count != cells.size()) {
      return Status::failed_precondition(str_format(
          "campaign journal '%s' records a different sweep (spec digest "
          "%016llx over %llu cells; this invocation expands to %016llx over "
          "%zu cells) — refusing to mix campaigns",
          journal_path.c_str(),
          static_cast<unsigned long long>(folded->spec_digest),
          static_cast<unsigned long long>(folded->cell_count),
          static_cast<unsigned long long>(digest), cells.size()));
    }
    prior = *folded;
  }

  auto appender = JournalAppender::open(journal_path);
  if (!appender.is_ok()) return appender.status();
  if (!journal_exists) {
    if (Status st = appender->append(
            JournalEntry::campaign(digest, cells.size()));
        !st.is_ok()) {
      return st;
    }
  }

  CampaignReport report;
  report.spec_digest = digest;
  report.total_cells = cells.size();
  report.results_csv_path = campaign_results_csv_path(config.campaign_dir);
  report.results_json_path = campaign_results_json_path(config.campaign_dir);

  // Reconcile the journal against the grid: completed cells are kept only
  // if their artifact still matches the recorded digest; everything else
  // re-runs.
  std::map<std::uint64_t, CellOutcome> terminal;
  std::vector<PendingCell> queue;
  const auto start = SupervisionClock::now();  // dc-wallclock: backoff baseline for requeued cells
  for (const CellSpec& cell : cells) {
    const auto it = prior.cells.find(cell.id);
    if (it != prior.cells.end()) {
      const CampaignStatus::CellView& view = it->second;
      if (view.state == CellState::kDone) {
        auto disk = file_digest(
            cell_result_path(campaign_cell_dir(config.campaign_dir, cell.id)));
        if (disk.is_ok() && *disk == view.artifact_digest) {
          terminal[cell.id] = CellOutcome{cell.id, cell.key(), CellState::kDone,
                                          view.artifact_digest, ""};
          ++report.verified_skipped;
          continue;
        }
        Log::raw(LogLevel::kWarn,
                 "campaign resume: cell %llu (%s) is recorded done but its "
                 "artifact is missing or does not match digest %016llx — "
                 "re-running it",
                 static_cast<unsigned long long>(cell.id), cell.key().c_str(),
                 static_cast<unsigned long long>(view.artifact_digest));
      } else if (view.state == CellState::kQuarantined) {
        terminal[cell.id] = CellOutcome{cell.id, cell.key(),
                                        CellState::kQuarantined, 0, view.reason};
        continue;
      } else if (view.state == CellState::kRunning) {
        if (Status st =
                wait_for_orphan(view.pid, config.heartbeat_timeout_ms);
            !st.is_ok()) {
          return st;
        }
      }
      PendingCell pending;
      pending.spec = cell;
      // An interrupted claimed/running attempt never concluded, so it
      // does not count against the retry budget; a failed one does.
      pending.attempts_done = view.state == CellState::kFailed
                                  ? view.attempts
                                  : std::max<std::int64_t>(view.attempts - 1, 0);
      pending.eligible_at = start;
      queue.push_back(std::move(pending));
    } else {
      PendingCell pending;
      pending.spec = cell;
      pending.eligible_at = start;
      queue.push_back(std::move(pending));
    }
  }

  // The supervision loop: fork eligible cells up to the (sheddable)
  // parallelism cap, reap exits, and SIGKILL workers whose heartbeat
  // counter has stopped advancing.
  std::vector<ActiveWorker> active;
  int effective_workers = config.workers;
  std::uint64_t done_this_run = 0;
  const auto heartbeat_timeout =  // dc-wallclock: staleness threshold
      std::chrono::milliseconds(config.heartbeat_timeout_ms);

  while (!queue.empty() || !active.empty()) {
    // Fork while there is capacity and an eligible (backoff-expired) cell.
    for (;;) {
      if (static_cast<int>(active.size()) >= effective_workers) break;
      const auto now = SupervisionClock::now();  // dc-wallclock: backoff eligibility check
      auto it = std::find_if(queue.begin(), queue.end(),
                             [&](const PendingCell& p) {
                               return p.eligible_at <= now;
                             });
      if (it == queue.end()) break;
      PendingCell pending = std::move(*it);
      queue.erase(it);

      const std::int64_t attempt = pending.attempts_done + 1;
      if (Status st = appender->append(JournalEntry::cell_state(
              pending.spec.id, CellState::kClaimed, attempt));
          !st.is_ok()) {
        return st;
      }

      const std::string cell_dir =
          campaign_cell_dir(config.campaign_dir, pending.spec.id);
      const pid_t pid = ::fork();
      if (pid < 0) {
        return Status::internal("campaign: fork failed");
      }
      if (pid == 0) {
        WorkerContext ctx;
        ctx.config_path = spec.config_path;
        ctx.snapshot_every = spec.snapshot_every;
        ctx.cell = pending.spec;
        ctx.cell_dir = cell_dir;
        ctx.attempt = attempt;
        ctx.drill_kill_midway = config.drill == DrillMode::kKillWorker &&
                                pending.spec.id == config.drill_cell;
        ctx.drill_hang = config.drill == DrillMode::kHangWorker &&
                         pending.spec.id == config.drill_cell;
        ctx.drill_poison = config.drill == DrillMode::kPoisonCell &&
                           pending.spec.id == config.drill_cell;
        ::_exit(run_cell_worker(ctx));
      }

      JournalEntry running = JournalEntry::cell_state(
          pending.spec.id, CellState::kRunning, attempt);
      running.pid = pid;
      if (Status st = appender->append(running); !st.is_ok()) return st;

      ActiveWorker worker;
      worker.pid = pid;
      worker.spec = pending.spec;
      worker.attempt = attempt;
      worker.attempts_before = pending.attempts_done;
      worker.heartbeat_path = cell_heartbeat_path(cell_dir);
      worker.last_change = SupervisionClock::now();  // dc-wallclock: heartbeat staleness baseline
      active.push_back(std::move(worker));
    }

    // Reap finished workers.
    int wait_status = 0;
    pid_t reaped;
    while ((reaped = ::waitpid(-1, &wait_status, WNOHANG)) > 0) {
      const auto it = std::find_if(active.begin(), active.end(),
                                   [&](const ActiveWorker& w) {
                                     return w.pid == reaped;
                                   });
      if (it == active.end()) continue;
      ActiveWorker worker = std::move(*it);
      active.erase(it);
      const std::string cell_dir =
          campaign_cell_dir(config.campaign_dir, worker.spec.id);

      std::string reason;
      bool success = false;
      std::uint64_t artifact_digest = 0;
      if (WIFEXITED(wait_status) && WEXITSTATUS(wait_status) == 0) {
        auto disk = file_digest(cell_result_path(cell_dir));
        if (disk.is_ok()) {
          success = true;
          artifact_digest = *disk;
        } else {
          reason = "result artifact unreadable: " + disk.status().message();
        }
      } else if (WIFEXITED(wait_status)) {
        reason = str_format("exit code %d", WEXITSTATUS(wait_status));
      } else if (WIFSIGNALED(wait_status)) {
        if (worker.killed_by_us) {
          reason = "heartbeat timeout";
        } else {
          reason = str_format("killed by signal %d", WTERMSIG(wait_status));
          // An external SIGKILL looks like the OOM killer: degrade
          // gracefully by shedding parallelism instead of thrashing.
          if (WTERMSIG(wait_status) == SIGKILL && effective_workers > 1) {
            --effective_workers;
            Log::raw(LogLevel::kWarn,
                     "campaign: worker for cell %llu was killed externally; "
                     "shedding parallelism to %d worker(s)",
                     static_cast<unsigned long long>(worker.spec.id),
                     effective_workers);
          }
        }
      } else {
        reason = "worker stopped unexpectedly";
      }

      if (success) {
        JournalEntry done = JournalEntry::cell_state(
            worker.spec.id, CellState::kDone, worker.attempt);
        done.artifact_digest = artifact_digest;
        if (Status st = appender->append(done); !st.is_ok()) return st;
        terminal[worker.spec.id] =
            CellOutcome{worker.spec.id, worker.spec.key(), CellState::kDone,
                        artifact_digest, ""};
        ++done_this_run;
        if (config.drill == DrillMode::kKillOrchestrator &&
            done_this_run >= config.drill_after) {
          // The drill: die without any cleanup the instant the Nth cell
          // completes. The journal entry above is already fsync'd.
          std::raise(SIGKILL);
        }
        continue;
      }

      const std::int64_t attempts_done = worker.attempts_before + 1;
      if (attempts_done >= config.max_attempts) {
        JournalEntry entry = JournalEntry::cell_state(
            worker.spec.id, CellState::kQuarantined, worker.attempt);
        entry.reason = reason;
        if (Status st = appender->append(entry); !st.is_ok()) return st;
        terminal[worker.spec.id] =
            CellOutcome{worker.spec.id, worker.spec.key(),
                        CellState::kQuarantined, 0, reason};
        Log::raw(LogLevel::kWarn,
                 "campaign: quarantining cell %llu (%s) after %lld attempts "
                 "(%s); the campaign continues without it",
                 static_cast<unsigned long long>(worker.spec.id),
                 worker.spec.key().c_str(),
                 static_cast<long long>(attempts_done), reason.c_str());
      } else {
        JournalEntry entry = JournalEntry::cell_state(
            worker.spec.id, CellState::kFailed, worker.attempt);
        entry.reason = reason;
        if (Status st = appender->append(entry); !st.is_ok()) return st;
        PendingCell retry;
        retry.spec = worker.spec;
        retry.attempts_done = attempts_done;
        retry.eligible_at =  // dc-wallclock: deterministic exponential retry backoff
            SupervisionClock::now() +
            std::chrono::milliseconds(backoff_ms(config, attempts_done));
        queue.push_back(std::move(retry));
        Log::raw(LogLevel::kWarn,
                 "campaign: cell %llu (%s) attempt %lld failed (%s); "
                 "retrying (%lld/%d attempts used)",
                 static_cast<unsigned long long>(worker.spec.id),
                 worker.spec.key().c_str(),
                 static_cast<long long>(worker.attempt), reason.c_str(),
                 static_cast<long long>(attempts_done), config.max_attempts);
      }
    }

    // Heartbeat supervision: a worker whose counter file has not changed
    // within the timeout is wedged — SIGKILL it and let the reap path
    // above account the attempt.
    const auto now = SupervisionClock::now();  // dc-wallclock: heartbeat staleness scan
    for (ActiveWorker& worker : active) {
      if (worker.killed_by_us) continue;
      auto beat = read_file(worker.heartbeat_path);
      if (beat.is_ok() && *beat != worker.last_beat) {
        worker.last_beat = *beat;
        worker.last_change = now;
        continue;
      }
      if (now - worker.last_change > heartbeat_timeout) {
        Log::raw(LogLevel::kWarn,
                 "campaign: worker pid %lld (cell %llu) heartbeat is stale; "
                 "killing it",
                 static_cast<long long>(worker.pid),
                 static_cast<unsigned long long>(worker.spec.id));
        ::kill(worker.pid, SIGKILL);
        worker.killed_by_us = true;
      }
    }

    if (!active.empty() || !queue.empty()) {
      std::this_thread::sleep_for(  // dc-wallclock: supervision poll interval
          std::chrono::milliseconds(config.poll_interval_ms));
    }
  }

  // Merge. Outcomes in cell-id order make the merged artifacts a pure
  // function of the spec — byte-identical across interruptions, resumes,
  // and worker counts.
  for (const CellSpec& cell : cells) {
    const auto it = terminal.find(cell.id);
    if (it == terminal.end()) {
      return Status::internal(str_format(
          "campaign: cell %llu reached no terminal state (orchestrator bug)",
          static_cast<unsigned long long>(cell.id)));
    }
    report.outcomes.push_back(it->second);
    if (it->second.state == CellState::kDone) ++report.done;
    else ++report.quarantined;
  }

  auto merged = merge_results_csv(config.campaign_dir, report.outcomes);
  if (!merged.is_ok()) return merged.status();
  if (Status st = atomic_write_file(report.results_csv_path, *merged,
                                    "campaign.results.csv");
      !st.is_ok()) {
    return st;
  }
  if (Status st = atomic_write_file(
          report.results_json_path,
          render_results_json(digest, report.outcomes),
          "campaign.results.json");
      !st.is_ok()) {
    return st;
  }
  if (Status st =
          register_campaign_store(config.campaign_dir, digest, cells, *merged);
      !st.is_ok()) {
    return st;
  }
  return report;
#endif
}

}  // namespace dc::campaign
