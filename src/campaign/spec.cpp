#include "campaign/spec.hpp"

#include <algorithm>
#include <cstdlib>

#include "core/description.hpp"
#include "sim/event_queue.hpp"
#include "snapshot/format.hpp"
#include "util/fsio.hpp"
#include "util/strings.hpp"

namespace dc::campaign {
namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() &&
         (s.back() == ' ' || s.back() == '\t' || s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

bool is_known_axis(std::string_view key) {
  const auto& keys = known_axis_keys();
  return std::find(keys.begin(), keys.end(), key) != keys.end();
}

/// Splits a comma-separated value list; empty items are an error.
StatusOr<std::vector<std::string>> split_values(std::string_view list,
                                               std::string_view key) {
  std::vector<std::string> values;
  std::size_t start = 0;
  while (start <= list.size()) {
    std::size_t comma = list.find(',', start);
    if (comma == std::string_view::npos) comma = list.size();
    const std::string_view item = trim(list.substr(start, comma - start));
    if (item.empty()) {
      return Status::invalid_argument(
          str_format("sweep spec: empty value in the '%.*s' list",
                     static_cast<int>(key.size()), key.data()));
    }
    values.emplace_back(item);
    start = comma + 1;
    if (comma == list.size()) break;
  }
  return values;
}

/// Replaces an axis wholesale, or appends it; canonical order is restored
/// afterwards by sort_axes.
void set_axis(SweepSpec& spec, std::string_view key,
              std::vector<std::string> values) {
  for (SweepAxis& axis : spec.axes) {
    if (axis.key == key) {
      axis.values = std::move(values);
      return;
    }
  }
  spec.axes.push_back({std::string(key), std::move(values)});
}

void sort_axes(SweepSpec& spec) {
  const auto& keys = known_axis_keys();
  std::sort(spec.axes.begin(), spec.axes.end(),
            [&keys](const SweepAxis& a, const SweepAxis& b) {
              const auto pa = std::find(keys.begin(), keys.end(), a.key);
              const auto pb = std::find(keys.begin(), keys.end(), b.key);
              return pa < pb;
            });
}

std::string resolve_path(std::string_view path, const std::string& base_dir) {
  if (path.empty() || path.front() == '/' || base_dir.empty()) {
    return std::string(path);
  }
  return base_dir + "/" + std::string(path);
}

/// One `key = values` assignment from a spec line or a CLI override.
Status apply_entry(SweepSpec& spec, std::string_view key,
                   std::string_view value_list, const std::string& base_dir,
                   int line) {
  const std::string where =
      line > 0 ? str_format("sweep spec line %d: ", line) : "sweep spec: ";
  if (key == "config") {
    const std::string_view value = trim(value_list);
    if (value.empty()) {
      return Status::invalid_argument(where + "config needs a file path");
    }
    spec.config_path = resolve_path(value, base_dir);
    return Status::ok();
  }
  if (key == "snapshot-every") {
    auto every = core::parse_duration(trim(value_list));
    if (!every.is_ok() || *every < 0) {
      return Status::invalid_argument(
          where + "snapshot-every wants a duration (e.g. 12h), got '" +
          std::string(trim(value_list)) + "'");
    }
    spec.snapshot_every = *every;
    return Status::ok();
  }
  if (!is_known_axis(key)) {
    std::string known = "config, snapshot-every";
    for (const std::string& k : known_axis_keys()) known += ", " + k;
    return Status::invalid_argument(where + "unknown key '" + std::string(key) +
                                    "' (known keys: " + known + ")");
  }
  auto values = split_values(value_list, key);
  if (!values.is_ok()) return values.status();
  set_axis(spec, key, std::move(*values));
  return Status::ok();
}

StatusOr<std::int64_t> parse_int(std::string_view text, const CellSpec& cell,
                                 std::string_view key) {
  const std::string buf(text);
  char* end = nullptr;
  const std::int64_t value = std::strtoll(buf.c_str(), &end, 10);
  if (end == buf.c_str() || *end != '\0') {
    return Status::invalid_argument(str_format(
        "cell %llu (%s): %.*s wants an integer, got '%s'",
        static_cast<unsigned long long>(cell.id), cell.key().c_str(),
        static_cast<int>(key.size()), key.data(), buf.c_str()));
  }
  return value;
}

StatusOr<SimDuration> parse_cell_duration(std::string_view text,
                                          const CellSpec& cell,
                                          std::string_view key) {
  auto value = core::parse_duration(text);
  if (!value.is_ok()) {
    return Status::invalid_argument(str_format(
        "cell %llu (%s): %.*s wants a duration, got '%.*s'",
        static_cast<unsigned long long>(cell.id), cell.key().c_str(),
        static_cast<int>(key.size()), key.data(), static_cast<int>(text.size()),
        text.data()));
  }
  return *value;
}

}  // namespace

const std::vector<std::string>& known_axis_keys() {
  static const std::vector<std::string> kKeys = {
      "system", "scheduler", "queue",  "quantum",   "capacity",
      "setup",  "mttf",      "mttr",   "fault-seed"};
  return kKeys;
}

StatusOr<SweepSpec> parse_sweep_spec_string(std::string_view text,
                                            const std::string& base_dir) {
  SweepSpec spec;
  int line_no = 0;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t nl = text.find('\n', start);
    if (nl == std::string_view::npos) nl = text.size();
    std::string_view line = text.substr(start, nl - start);
    ++line_no;
    const bool last = nl == text.size();
    start = nl + 1;
    if (const std::size_t hash = line.find('#'); hash != std::string_view::npos) {
      line = line.substr(0, hash);
    }
    line = trim(line);
    if (line.empty()) {
      if (last) break;
      continue;
    }
    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      return Status::invalid_argument(
          str_format("sweep spec line %d: expected 'key = value[, value...]', "
                     "got '%.*s'",
                     line_no, static_cast<int>(line.size()), line.data()));
    }
    const std::string_view key = trim(line.substr(0, eq));
    for (const SweepAxis& axis : spec.axes) {
      if (axis.key == key) {
        return Status::invalid_argument(str_format(
            "sweep spec line %d: duplicate axis '%.*s'", line_no,
            static_cast<int>(key.size()), key.data()));
      }
    }
    if (Status st = apply_entry(spec, key, line.substr(eq + 1), base_dir,
                                line_no);
        !st.is_ok()) {
      return st;
    }
    if (last) break;
  }
  if (spec.config_path.empty()) {
    return Status::invalid_argument(
        "sweep spec: missing 'config = FILE' (the experiment description "
        "every cell runs)");
  }
  sort_axes(spec);
  return spec;
}

StatusOr<SweepSpec> read_sweep_spec(const std::string& path) {
  auto text = read_file(path);
  if (!text.is_ok()) {
    return Status::not_found("sweep spec: cannot read '" + path + "'");
  }
  const std::size_t slash = path.rfind('/');
  const std::string base_dir =
      slash == std::string::npos ? std::string() : path.substr(0, slash);
  auto spec = parse_sweep_spec_string(*text, base_dir);
  if (!spec.is_ok()) {
    return Status::invalid_argument(path + ": " + spec.status().message());
  }
  return spec;
}

Status apply_spec_overrides(SweepSpec& spec, std::string_view overrides) {
  std::size_t start = 0;
  while (start <= overrides.size()) {
    std::size_t semi = overrides.find(';', start);
    if (semi == std::string_view::npos) semi = overrides.size();
    const std::string_view item = trim(overrides.substr(start, semi - start));
    const bool last = semi == overrides.size();
    start = semi + 1;
    if (!item.empty()) {
      const std::size_t eq = item.find('=');
      if (eq == std::string_view::npos) {
        return Status::invalid_argument(
            "--set wants 'key=value[,value...]' items separated by ';', got '" +
            std::string(item) + "'");
      }
      if (Status st = apply_entry(spec, trim(item.substr(0, eq)),
                                  item.substr(eq + 1), {}, 0);
          !st.is_ok()) {
        return st;
      }
    }
    if (last) break;
  }
  sort_axes(spec);
  return Status::ok();
}

std::string CellSpec::key() const {
  std::string out;
  for (const auto& [k, v] : assignment) {
    if (!out.empty()) out += ',';
    out += k;
    out += '=';
    out += v;
  }
  return out;
}

std::vector<CellSpec> expand_grid(const SweepSpec& spec) {
  std::uint64_t total = 1;
  for (const SweepAxis& axis : spec.axes) {
    total *= static_cast<std::uint64_t>(axis.values.size());
  }
  std::vector<CellSpec> cells;
  cells.reserve(total);
  for (std::uint64_t id = 0; id < total; ++id) {
    CellSpec cell;
    cell.id = id;
    // Row-major: the last axis varies fastest.
    std::uint64_t rest = id;
    std::uint64_t stride = total;
    for (const SweepAxis& axis : spec.axes) {
      stride /= static_cast<std::uint64_t>(axis.values.size());
      const std::uint64_t index = rest / stride;
      rest %= stride;
      cell.assignment.emplace_back(axis.key, axis.values[index]);
    }
    cells.push_back(std::move(cell));
  }
  return cells;
}

std::string canonical_spec_text(const SweepSpec& spec) {
  std::string out = "config=" + spec.config_path + "\n";
  out += str_format("snapshot-every=%lld\n",
                    static_cast<long long>(spec.snapshot_every));
  for (const SweepAxis& axis : spec.axes) {
    out += axis.key;
    out += '=';
    for (std::size_t i = 0; i < axis.values.size(); ++i) {
      if (i != 0) out += ',';
      out += axis.values[i];
    }
    out += '\n';
  }
  return out;
}

std::uint64_t spec_digest(const SweepSpec& spec) {
  return snapshot::fnv1a(canonical_spec_text(spec));
}

StatusOr<CellPlan> plan_cell(const CellSpec& cell) {
  CellPlan plan;
  bool have_system = false;
  std::string mttf_text;
  std::string mttr_text;
  std::string fault_seed_text;
  for (const auto& [key, value] : cell.assignment) {
    if (key == "system") {
      if (value == "dcs") plan.model = core::SystemModel::kDcs;
      else if (value == "ssp") plan.model = core::SystemModel::kSsp;
      else if (value == "drp") plan.model = core::SystemModel::kDrp;
      else if (value == "dawningcloud") plan.model = core::SystemModel::kDawningCloud;
      else {
        return Status::invalid_argument(str_format(
            "cell %llu (%s): unknown system '%s' "
            "(dcs|ssp|drp|dawningcloud)",
            static_cast<unsigned long long>(cell.id), cell.key().c_str(),
            value.c_str()));
      }
      have_system = true;
    } else if (key == "scheduler") {
      if (value == "first-fit") {
        plan.options.htc_scheduler = core::HtcSchedulerKind::kFirstFit;
      } else if (value == "easy-backfill") {
        plan.options.htc_scheduler = core::HtcSchedulerKind::kEasyBackfill;
      } else if (value == "conservative-backfill") {
        plan.options.htc_scheduler = core::HtcSchedulerKind::kConservativeBackfill;
      } else if (value == "sjf") {
        plan.options.htc_scheduler = core::HtcSchedulerKind::kSjf;
      } else {
        return Status::invalid_argument(str_format(
            "cell %llu (%s): unknown scheduler '%s'",
            static_cast<unsigned long long>(cell.id), cell.key().c_str(),
            value.c_str()));
      }
    } else if (key == "queue") {
      auto kind = sim::parse_queue_kind(value);
      if (!kind.has_value()) {
        return Status::invalid_argument(str_format(
            "cell %llu (%s): unknown queue '%s' (heap|calendar)",
            static_cast<unsigned long long>(cell.id), cell.key().c_str(),
            value.c_str()));
      }
      plan.options.queue = *kind;
    } else if (key == "quantum") {
      auto quantum = parse_cell_duration(value, cell, key);
      if (!quantum.is_ok()) return quantum.status();
      if (*quantum <= 0) {
        return Status::invalid_argument(str_format(
            "cell %llu (%s): quantum must be positive",
            static_cast<unsigned long long>(cell.id), cell.key().c_str()));
      }
      plan.options.billing_quantum = *quantum;
    } else if (key == "capacity") {
      auto capacity = parse_int(value, cell, key);
      if (!capacity.is_ok()) return capacity.status();
      plan.options.platform_capacity = *capacity;
    } else if (key == "setup") {
      auto setup = parse_cell_duration(value, cell, key);
      if (!setup.is_ok()) return setup.status();
      plan.options.setup_latency = *setup;
    } else if (key == "mttf") {
      mttf_text = value;
    } else if (key == "mttr") {
      mttr_text = value;
    } else if (key == "fault-seed") {
      fault_seed_text = value;
    }
  }
  if (!have_system) {
    return Status::invalid_argument(str_format(
        "cell %llu (%s): the grid needs a 'system' axis",
        static_cast<unsigned long long>(cell.id), cell.key().c_str()));
  }
  if (mttf_text.empty() != mttr_text.empty()) {
    return Status::invalid_argument(str_format(
        "cell %llu (%s): mttf and mttr must be swept (or fixed) together",
        static_cast<unsigned long long>(cell.id), cell.key().c_str()));
  }
  if (!fault_seed_text.empty() && mttf_text.empty()) {
    return Status::invalid_argument(str_format(
        "cell %llu (%s): fault-seed needs mttf/mttr",
        static_cast<unsigned long long>(cell.id), cell.key().c_str()));
  }
  if (!mttf_text.empty()) {
    auto mttf = parse_cell_duration(mttf_text, cell, "mttf");
    if (!mttf.is_ok()) return mttf.status();
    auto mttr = parse_cell_duration(mttr_text, cell, "mttr");
    if (!mttr.is_ok()) return mttr.status();
    if (*mttf <= 0 || *mttr <= 0) {
      return Status::invalid_argument(str_format(
          "cell %llu (%s): mttf/mttr must be positive",
          static_cast<unsigned long long>(cell.id), cell.key().c_str()));
    }
    core::fault::FaultDomain::Config faults;
    faults.mean_time_between_failures = *mttf;
    faults.mean_time_to_repair = *mttr;
    if (!fault_seed_text.empty()) {
      auto seed = parse_int(fault_seed_text, cell, "fault-seed");
      if (!seed.is_ok()) return seed.status();
      faults.seed = static_cast<std::uint64_t>(*seed);
    }
    plan.options.faults = faults;
  }
  return plan;
}

}  // namespace dc::campaign
