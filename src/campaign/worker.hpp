// One campaign cell, run to completion inside a forked worker process
// (docs/SWEEP.md).
//
// The worker is the deterministic half of the orchestrator split: given a
// cell's plan it produces byte-identical artifacts on every attempt —
// fresh, retried, or resumed mid-cell from the newest valid snapshot (the
// run_system_snapshotted guarantee from docs/SNAPSHOT.md). Heartbeats are
// the one concession to supervision: a monotonic *counter* (never a
// timestamp) touched at every chunk boundary, so nothing wall-clock-
// derived can leak into result artifacts while the orchestrator still
// gets a liveness signal to compare against its own clock.
#pragma once

#include <cstdint>
#include <string>

#include "campaign/spec.hpp"
#include "util/status.hpp"

namespace dc::campaign {

/// Everything a worker needs; assembled by the orchestrator before fork.
struct WorkerContext {
  std::string config_path;       // the experiment every cell shares
  SimDuration snapshot_every = 0;  // per-cell snapshot cadence (0 = off)
  CellSpec cell;
  std::string cell_dir;  // snapshots, heartbeat, and result artifact
  std::int64_t attempt = 1;

  // Drill modes (deterministic fault injection for tests/CI).
  bool drill_kill_midway = false;  // attempt 1 SIGKILLs itself mid-horizon
  bool drill_poison = false;       // every attempt fails (quarantine path)
  bool drill_hang = false;         // attempt 1 stops heartbeating mid-horizon
};

/// Runs the cell and writes `<cell_dir>/result.csv` atomically.
/// Returns a process exit code: 0 success, 2 configuration/snapshot
/// error, 3 poisoned (drill). Designed to be called between fork() and
/// _exit() — it never throws and never returns to the caller's event
/// loop.
int run_cell_worker(const WorkerContext& ctx);

/// Artifact paths inside a cell directory.
std::string cell_result_path(const std::string& cell_dir);
std::string cell_heartbeat_path(const std::string& cell_dir);

/// FNV-1a digest of a file's bytes — the artifact fingerprint recorded in
/// `done` journal entries and re-verified on resume.
StatusOr<std::uint64_t> file_digest(const std::string& path);

}  // namespace dc::campaign
