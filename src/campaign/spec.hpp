// Declarative sweep grids for the campaign orchestrator (docs/SWEEP.md).
//
// A sweep spec is a line-oriented `key = value[, value...]` file: two
// campaign settings (`config`, `snapshot-every`) plus any number of sweep
// axes drawn from a fixed vocabulary of run parameters. The cross product
// of the axis value lists is the campaign's cell grid.
//
// Everything here is deterministic by construction:
//
//  * axes are stored in one canonical order (known_axis_keys()), whatever
//    order the spec file or the CLI overrides used;
//  * values keep their spec order, so cell N always denotes the same
//    parameter assignment (row-major expansion, last axis fastest);
//  * spec_digest() fingerprints the canonical text, so a resumed campaign
//    can prove its journal belongs to the same grid.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/systems.hpp"
#include "util/status.hpp"
#include "util/time.hpp"

namespace dc::campaign {

/// One sweep dimension: a known run-parameter key and its value list.
struct SweepAxis {
  std::string key;
  std::vector<std::string> values;
};

/// A parsed sweep spec: the experiment config every cell shares, the
/// per-cell snapshot cadence, and the sweep axes in canonical order.
struct SweepSpec {
  std::string config_path;
  SimDuration snapshot_every = 0;  // 0 = no per-cell snapshots
  std::vector<SweepAxis> axes;
};

/// The axis vocabulary, in canonical (expansion) order. Mirrors the `run`
/// subcommand's flags: system, scheduler, queue, quantum, capacity,
/// setup, mttf, mttr, fault-seed.
const std::vector<std::string>& known_axis_keys();

/// Parses a spec from text. `#` starts a comment; blank lines are
/// skipped. A relative `config` path resolves against `base_dir`.
StatusOr<SweepSpec> parse_sweep_spec_string(std::string_view text,
                                            const std::string& base_dir = {});

/// Reads and parses a spec file; relative `config` paths resolve against
/// the spec file's own directory.
StatusOr<SweepSpec> read_sweep_spec(const std::string& path);

/// Applies CLI overrides: `key=v1,v2` items separated by `;`. An override
/// replaces the axis (or setting) wholesale.
Status apply_spec_overrides(SweepSpec& spec, std::string_view overrides);

/// One grid cell: its row-major index and the axis assignment (canonical
/// key order).
struct CellSpec {
  std::uint64_t id = 0;
  std::vector<std::pair<std::string, std::string>> assignment;

  /// "system=dcs,mttf=18h" — the stable human-readable cell label.
  std::string key() const;
};

/// Expands the full grid, row-major with the last axis varying fastest.
/// A spec with no axes yields one cell with an empty assignment.
std::vector<CellSpec> expand_grid(const SweepSpec& spec);

/// Canonical one-line-per-entry text of the spec (settings first, then
/// axes in canonical order) — the digest input and the journal's record
/// of what was swept.
std::string canonical_spec_text(const SweepSpec& spec);

/// FNV-1a fingerprint of canonical_spec_text().
std::uint64_t spec_digest(const SweepSpec& spec);

/// A cell's assignment resolved into run parameters. The observability
/// hooks stay null: campaign artifacts are results only.
struct CellPlan {
  core::SystemModel model = core::SystemModel::kDcs;
  core::RunOptions options;
};

/// Resolves one cell. Errors name the cell and the offending key, so a
/// bad spec fails the whole campaign up front instead of quarantining
/// every cell one timeout at a time.
StatusOr<CellPlan> plan_cell(const CellSpec& cell);

}  // namespace dc::campaign
