// Scheduler interface.
//
// A scheduler is a pure selection policy: given the queued jobs (arrival
// order), the currently running jobs, and the idle node count, it picks
// which queue positions to start now. The owning server performs the actual
// state changes, so one policy serves every system (DCS, SSP, DawningCloud)
// and every TRE type.
#pragma once

#include <span>
#include <vector>

#include "sched/job.hpp"
#include "util/time.hpp"

namespace dc::sched {

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Returns ascending queue positions of jobs to start now. Every selected
  /// job must fit: the sum of selected widths must not exceed `idle_nodes`.
  /// `running` carries node widths and expected completion times for
  /// policies that reason about the future (backfilling).
  virtual std::vector<std::size_t> select(std::span<const Job* const> queue,
                                          std::span<const Job* const> running,
                                          std::int64_t idle_nodes,
                                          SimTime now) const = 0;

  virtual const char* name() const = 0;
};

}  // namespace dc::sched
