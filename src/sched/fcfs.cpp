#include "sched/fcfs.hpp"

namespace dc::sched {

std::vector<std::size_t> FcfsScheduler::select(
    std::span<const Job* const> queue, std::span<const Job* const> running,
    std::int64_t idle_nodes, SimTime now) const {
  std::vector<std::size_t> picks;
  std::int64_t remaining = idle_nodes;
  for (std::size_t i = 0; i < queue.size(); ++i) {
    if (queue[i]->nodes > remaining) break;  // strict order: no skipping
    picks.push_back(i);
    remaining -= queue[i]->nodes;
  }
  return picks;
}

}  // namespace dc::sched
