#include "sched/first_fit.hpp"

namespace dc::sched {

std::vector<std::size_t> FirstFitScheduler::select(
    std::span<const Job* const> queue, std::span<const Job* const> running,
    std::int64_t idle_nodes, SimTime now) const {
  std::vector<std::size_t> picks;
  std::int64_t remaining = idle_nodes;
  for (std::size_t i = 0; i < queue.size() && remaining > 0; ++i) {
    if (queue[i]->nodes <= remaining) {
      picks.push_back(i);
      remaining -= queue[i]->nodes;
    }
  }
  return picks;
}

}  // namespace dc::sched
