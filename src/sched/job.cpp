#include "sched/job.hpp"

#include <cassert>

namespace dc::sched {

const char* job_state_name(JobState state) {
  switch (state) {
    case JobState::kPending: return "pending";
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kCompleted: return "completed";
    case JobState::kFailed: return "failed";
  }
  return "?";
}

void JobQueue::remove_positions(const std::vector<std::size_t>& positions) {
  if (positions.empty()) return;
  std::vector<JobId> remaining;
  remaining.reserve(items_.size() - positions.size());
  std::size_t next = 0;
  for (std::size_t i = 0; i < items_.size(); ++i) {
    if (next < positions.size() && positions[next] == i) {
      assert(next + 1 >= positions.size() || positions[next + 1] > i);
      ++next;
      continue;
    }
    remaining.push_back(items_[i]);
  }
  assert(next == positions.size() && "position out of range");
  items_ = std::move(remaining);
}

}  // namespace dc::sched
