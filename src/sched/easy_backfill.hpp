// EASY backfilling — an extension beyond the paper's first-fit policy,
// used by the ablation bench (bench/ablation_backfill) to quantify how much
// of DawningCloud's saving depends on the scheduling policy versus the
// dynamic provisioning policy.
//
// EASY (Lifka, Argonne/IBM SP): the head-of-queue job receives a
// reservation at the earliest time enough nodes free up; any later job may
// start now if it fits the idle nodes and will not delay that reservation
// (using declared runtimes as estimates).
#pragma once

#include "sched/scheduler.hpp"

namespace dc::sched {

class EasyBackfillScheduler final : public Scheduler {
 public:
  std::vector<std::size_t> select(std::span<const Job* const> queue,
                                  std::span<const Job* const> running,
                                  std::int64_t idle_nodes,
                                  SimTime now) const override;

  const char* name() const override { return "easy-backfill"; }
};

}  // namespace dc::sched
