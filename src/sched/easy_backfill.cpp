#include "sched/easy_backfill.hpp"

#include <algorithm>

namespace dc::sched {

std::vector<std::size_t> EasyBackfillScheduler::select(
    std::span<const Job* const> queue, std::span<const Job* const> running,
    std::int64_t idle_nodes, SimTime now) const {
  std::vector<std::size_t> picks;
  std::int64_t idle = idle_nodes;

  // Start head-of-queue jobs while they fit.
  std::size_t head = 0;
  while (head < queue.size() && queue[head]->nodes <= idle) {
    picks.push_back(head);
    idle -= queue[head]->nodes;
    ++head;
  }
  if (head >= queue.size()) return picks;

  // The blocked head job gets a reservation: find the earliest time its
  // width is available, releasing running jobs in completion order.
  struct Release {
    SimTime at;
    std::int64_t nodes;
  };
  std::vector<Release> releases;
  releases.reserve(running.size() + picks.size());
  for (const Job* job : running) {
    // Releases cannot take effect within the current instant (a job whose
    // completion event is later in this same second is still holding its
    // nodes for this dispatch).
    releases.push_back({std::max(job->expected_end(), now + 1), job->nodes});
  }
  // Jobs we just decided to start also hold nodes until now + runtime.
  for (std::size_t pos : picks) {
    releases.push_back({now + queue[pos]->runtime, queue[pos]->nodes});
  }
  std::sort(releases.begin(), releases.end(),
            [](const Release& a, const Release& b) { return a.at < b.at; });

  const std::int64_t head_need = queue[head]->nodes;
  std::int64_t avail = idle;
  SimTime shadow_time = now;        // when the head job can start
  std::int64_t extra_at_shadow = 0;  // nodes free beyond head_need then
  for (const Release& release : releases) {
    if (avail >= head_need) break;
    shadow_time = release.at;
    avail += release.nodes;
  }
  extra_at_shadow = avail - head_need;

  // Backfill: a later job may start now if it fits the idle nodes and
  // either finishes before the shadow time or fits the spare nodes at it.
  for (std::size_t i = head + 1; i < queue.size() && idle > 0; ++i) {
    const Job* job = queue[i];
    if (job->nodes > idle) continue;
    const bool ends_before_shadow = now + job->runtime <= shadow_time;
    const bool fits_spare = job->nodes <= extra_at_shadow;
    if (ends_before_shadow || fits_spare) {
      picks.push_back(i);
      idle -= job->nodes;
      if (!ends_before_shadow) extra_at_shadow -= job->nodes;
    }
  }
  std::sort(picks.begin(), picks.end());
  return picks;
}

}  // namespace dc::sched
