// Shortest-job-first selection — an extension scheduler for the policy
// ablations. Picks queued jobs in increasing runtime order among those
// fitting the idle nodes. Maximizes short-horizon throughput (completed
// jobs per hour) at the cost of potentially starving long jobs; the
// ablation bench contrasts it with the paper's first-fit.
#pragma once

#include "sched/scheduler.hpp"

namespace dc::sched {

class SjfScheduler final : public Scheduler {
 public:
  std::vector<std::size_t> select(std::span<const Job* const> queue,
                                  std::span<const Job* const> running,
                                  std::int64_t idle_nodes,
                                  SimTime now) const override;

  const char* name() const override { return "sjf"; }
};

}  // namespace dc::sched
