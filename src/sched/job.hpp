// Job model shared by the HTC and MTC runtime environments.
//
// An HTC job comes from a trace record; an MTC job is one task of a
// workflow (carrying its DAG task id). Jobs are owned by the server that
// manages them; schedulers see const views.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/time.hpp"

namespace dc::sched {

using JobId = std::int64_t;

enum class JobState {
  kPending,    // known but not yet released (MTC: dependencies unmet,
               // or a killed job waiting out its retry backoff)
  kQueued,     // in the scheduler queue
  kRunning,
  kCompleted,
  kFailed,     // killed by a node failure with its retry budget exhausted
};

const char* job_state_name(JobState state);

struct Job {
  JobId id = 0;
  SimTime submit = 0;        // release into the queue
  SimDuration runtime = 1;   // execution time once started
  std::int64_t nodes = 1;    // node width
  /// For MTC jobs: the workflow task this job executes; -1 for HTC jobs.
  std::int64_t task_id = -1;

  JobState state = JobState::kPending;
  SimTime start = kNever;
  SimTime finish = kNever;
  /// Times this job was killed by a node failure and retried.
  std::int32_t retries = 0;
  /// Work salvaged by the checkpoint model: when the job next runs it
  /// executes only `runtime - completed_work` (zero without checkpointing —
  /// a killed job restarts from scratch).
  SimDuration completed_work = 0;

  SimTime expected_end() const {
    return start == kNever ? kNever : start + runtime - completed_work;
  }
  SimDuration wait_time() const { return start == kNever ? 0 : start - submit; }
};

/// Arrival-ordered queue of job ids with O(1) membership bookkeeping left
/// to the owner; removal preserves relative order of the remainder.
class JobQueue {
 public:
  void push(JobId id) { items_.push_back(id); }

  const std::vector<JobId>& items() const { return items_; }
  bool empty() const { return items_.empty(); }
  std::size_t size() const { return items_.size(); }

  /// Removes the entries at the given ascending positions.
  void remove_positions(const std::vector<std::size_t>& positions);

  void clear() { items_.clear(); }

 private:
  std::vector<JobId> items_;
};

}  // namespace dc::sched
