// First-fit scheduling (the paper's HTC policy, Section 4.4).
//
// "The first-fit scheduling algorithm scans all the queued jobs in the
// order of job arrival and chooses the first job, whose resources
// requirement can be met by the system, to execute." Applied repeatedly
// until no queued job fits the remaining idle nodes.
#pragma once

#include "sched/scheduler.hpp"

namespace dc::sched {

class FirstFitScheduler final : public Scheduler {
 public:
  std::vector<std::size_t> select(std::span<const Job* const> queue,
                                  std::span<const Job* const> running,
                                  std::int64_t idle_nodes,
                                  SimTime now) const override;

  const char* name() const override { return "first-fit"; }
};

}  // namespace dc::sched
