#include "sched/conservative_backfill.hpp"

#include <algorithm>
#include <map>

namespace dc::sched {
namespace {

/// A piecewise-constant availability profile over future time, built from
/// running-job releases and consumed by reservations.
class Profile {
 public:
  Profile(SimTime now, std::int64_t idle) { avail_[now] = idle; }

  /// Adds `nodes` becoming free at time `at`.
  void add_release(SimTime at, std::int64_t nodes) {
    ensure_point(at);
    for (auto it = avail_.lower_bound(at); it != avail_.end(); ++it) {
      it->second += nodes;
    }
  }

  /// Earliest time >= `from` at which `nodes` are continuously available
  /// for `duration` seconds.
  SimTime earliest_fit(SimTime from, std::int64_t nodes,
                       SimDuration duration) const {
    auto start_it = avail_.lower_bound(from);
    if (start_it == avail_.end() || start_it->first != from) {
      // Availability at `from` equals the previous breakpoint's level.
      --start_it;
    }
    for (auto it = start_it; it != avail_.end(); ++it) {
      const SimTime candidate = std::max(from, it->first);
      if (fits(candidate, nodes, duration)) return candidate;
    }
    return kNever;  // unreachable: the profile ends at full availability
  }

  /// Reserves `nodes` over [start, start+duration).
  void reserve(SimTime start, std::int64_t nodes, SimDuration duration) {
    ensure_point(start);
    ensure_point(start + duration);
    for (auto it = avail_.lower_bound(start);
         it != avail_.end() && it->first < start + duration; ++it) {
      it->second -= nodes;
    }
  }

 private:
  bool fits(SimTime start, std::int64_t nodes, SimDuration duration) const {
    auto it = avail_.upper_bound(start);
    --it;  // segment containing `start`
    for (; it != avail_.end() && it->first < start + duration; ++it) {
      if (it->second < nodes) return false;
    }
    return true;
  }

  void ensure_point(SimTime at) {
    auto it = avail_.upper_bound(at);
    if (it == avail_.begin()) {
      avail_[at];  // before the first point: level 0
      return;
    }
    --it;
    if (it->first != at) avail_[at] = it->second;
  }

  std::map<SimTime, std::int64_t> avail_;
};

}  // namespace

std::vector<std::size_t> ConservativeBackfillScheduler::select(
    std::span<const Job* const> queue, std::span<const Job* const> running,
    std::int64_t idle_nodes, SimTime now) const {
  Profile profile(now, idle_nodes);
  for (const Job* job : running) {
    // A job can be "running" with expected_end == now when its completion
    // event sits later in the current simulation instant; its nodes are
    // not usable by this dispatch, so releases are clamped to the future.
    profile.add_release(std::max(job->expected_end(), now + 1), job->nodes);
  }
  std::vector<std::size_t> picks;
  for (std::size_t i = 0; i < queue.size(); ++i) {
    const Job* job = queue[i];
    const SimTime start = profile.earliest_fit(now, job->nodes, job->runtime);
    if (start == kNever) continue;  // wider than the machine will ever be
    profile.reserve(start, job->nodes, job->runtime);
    if (start == now) picks.push_back(i);
  }
  return picks;
}

}  // namespace dc::sched
