// Conservative backfilling — the stricter cousin of EASY, added as an
// extension scheduler. Every queued job (not just the head) receives a
// reservation in queue order against the simulated future release profile;
// a later job may start now only if doing so delays no earlier job's
// reservation. Stronger fairness guarantees than EASY, usually less
// backfilling.
#pragma once

#include "sched/scheduler.hpp"

namespace dc::sched {

class ConservativeBackfillScheduler final : public Scheduler {
 public:
  std::vector<std::size_t> select(std::span<const Job* const> queue,
                                  std::span<const Job* const> running,
                                  std::int64_t idle_nodes,
                                  SimTime now) const override;

  const char* name() const override { return "conservative-backfill"; }
};

}  // namespace dc::sched
