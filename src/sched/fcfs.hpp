// FCFS scheduling (the paper's MTC policy, Section 4.4).
//
// "For MTC workload, firstly we generate the job flow according to the
// dependency constraints, and then we choose the FCFS (First Come First
// Served) scheduling policy." Strict head-of-queue order: if the head does
// not fit the idle nodes, nothing behind it may jump ahead.
#pragma once

#include "sched/scheduler.hpp"

namespace dc::sched {

class FcfsScheduler final : public Scheduler {
 public:
  std::vector<std::size_t> select(std::span<const Job* const> queue,
                                  std::span<const Job* const> running,
                                  std::int64_t idle_nodes,
                                  SimTime now) const override;

  const char* name() const override { return "fcfs"; }
};

}  // namespace dc::sched
