#include "sched/sjf.hpp"

#include <algorithm>
#include <numeric>

namespace dc::sched {

std::vector<std::size_t> SjfScheduler::select(
    std::span<const Job* const> queue, std::span<const Job* const> running,
    std::int64_t idle_nodes, SimTime now) const {
  std::vector<std::size_t> order(queue.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&queue](std::size_t a, std::size_t b) {
                     return queue[a]->runtime < queue[b]->runtime;
                   });
  std::vector<std::size_t> picks;
  std::int64_t remaining = idle_nodes;
  for (std::size_t pos : order) {
    if (queue[pos]->nodes <= remaining) {
      picks.push_back(pos);
      remaining -= queue[pos]->nodes;
    }
  }
  std::sort(picks.begin(), picks.end());
  return picks;
}

}  // namespace dc::sched
