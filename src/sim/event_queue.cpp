#include "sim/event_queue.hpp"

#include <algorithm>

#include "sim/calendar_queue.hpp"
#include "util/check.hpp"

namespace dc::sim {

const char* queue_kind_name(QueueKind kind) {
  switch (kind) {
    case QueueKind::kHeap:
      return "heap";
    case QueueKind::kCalendar:
      return "calendar";
  }
  return "?";
}

std::optional<QueueKind> parse_queue_kind(std::string_view text) {
  if (text == "heap") return QueueKind::kHeap;
  if (text == "calendar") return QueueKind::kCalendar;
  return std::nullopt;
}

std::unique_ptr<EventQueue> make_event_queue(QueueKind kind) {
  if (kind == QueueKind::kCalendar) return std::make_unique<CalendarQueue>();
  return std::make_unique<HeapEventQueue>();
}

// ---------------------------------------------------------------------------
// HeapEventQueue. Every node move updates the owning slot's entry in
// slot_pos_, so erase_slot can find and excise a node without scanning.

void HeapEventQueue::grow(std::size_t new_cap) {
  // 3-node front pad + 64-byte alignment puts every 4-child group on one
  // cache line; aligned_alloc wants the byte size rounded to the alignment.
  const std::size_t bytes =
      (((new_cap + 3) * sizeof(QueueNode)) + 63) & ~std::size_t{63};
  auto* grown = static_cast<QueueNode*>(std::aligned_alloc(64, bytes));
  if (raw_ != nullptr) {
    std::memcpy(grown + 3, raw_ + 3, size_ * sizeof(QueueNode));
    std::free(raw_);
  }
  raw_ = grown;
  cap_ = new_cap;
}

void HeapEventQueue::sift_up(std::size_t pos) {
  const QueueNode node = at(pos);
  while (pos > 0) {
    const std::size_t parent = (pos - 1) >> 2;
    if (!queue_node_less(node, at(parent))) break;
    at(pos) = at(parent);
    slot_pos_[at(pos).slot] = static_cast<std::uint32_t>(pos);
    pos = parent;
  }
  at(pos) = node;
  slot_pos_[node.slot] = static_cast<std::uint32_t>(pos);
}

void HeapEventQueue::sift_down(std::size_t pos) {
  const std::size_t n = size_;
  const QueueNode node = at(pos);
  while (true) {
    const std::size_t first = (pos << 2) + 1;
    if (first >= n) break;
    std::size_t best = first;
    const std::size_t end = std::min(first + 4, n);
    for (std::size_t c = first + 1; c < end; ++c) {
      if (queue_node_less(at(c), at(best))) best = c;
    }
    if (!queue_node_less(at(best), node)) break;
    at(pos) = at(best);
    slot_pos_[at(pos).slot] = static_cast<std::uint32_t>(pos);
    pos = best;
  }
  at(pos) = node;
  slot_pos_[node.slot] = static_cast<std::uint32_t>(pos);
}

void HeapEventQueue::erase_slot(std::uint32_t slot) {
  const std::size_t pos = slot_pos_[slot];
  slot_pos_[slot] = kNoPos;
  const QueueNode last = at(--size_);
  if (pos < size_) {
    at(pos) = last;
    slot_pos_[last.slot] = static_cast<std::uint32_t>(pos);
    // The replacement came from the bottom; it can only need to move one
    // way, and sift_up is a no-op unless it beats its new parent.
    sift_up(pos);
    sift_down(slot_pos_[last.slot]);
  }
}

void HeapEventQueue::drain_all(std::vector<QueueNode>* out) {
  out->reserve(out->size() + size_);
  for (std::size_t i = 0; i < size_; ++i) {
    out->push_back(at(i));
    slot_pos_[at(i).slot] = kNoPos;
  }
  size_ = 0;
}

void HeapEventQueue::stats(std::vector<QueueStat>* out) const {
  out->push_back({"queue_heap_capacity", cap_});
}

void HeapEventQueue::audit(
    const std::function<void(const QueueNode&)>& check_node) const {
  // 4-ary heap: parent <= child, and the slot<->position side array is a
  // bijection onto the heap.
  for (std::size_t i = 0; i < size_; ++i) {
    const QueueNode& node = at(i);
    if (i > 0) {
      DC_INVARIANT(!queue_node_less(node, at((i - 1) >> 2)),
                   "4-ary heap order violated (child sorts before parent)");
    }
    DC_INVARIANT(node.slot < slot_pos_.size(),
                 "heap node references a slot beyond the side array");
    DC_INVARIANT(slot_pos_[node.slot] == i,
                 "slot->position map does not point back at the heap node");
    check_node(node);
  }
  std::size_t mapped = 0;
  for (const std::uint32_t pos : slot_pos_) {
    if (pos != kNoPos) ++mapped;
  }
  DC_INVARIANT(mapped == size_,
               "slot->position map has entries for nodes not in the heap");
}

}  // namespace dc::sim
