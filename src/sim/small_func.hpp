// Small-buffer-optimized, move-only callable — the simulator's event slab
// stores one of these per event instead of a std::function.
//
// Why not std::function: every schedule_at() with a std::function pays a
// heap allocation for any capture larger than libstdc++'s 16-byte SSO, and
// the kernel hot path schedules millions of events per run. SmallFunc keeps
// captures up to `Capacity` bytes (default 48 — see docs/ARCHITECTURE.md,
// "The simulation kernel") inline in the event slot; larger captures fall
// back to a single heap allocation, so behavior is unchanged, only slower.
//
// Move-only by design: event callbacks are consumed exactly once, so only
// a (noexcept) move is ever needed. Callables that are not
// nothrow-move-constructible are stored on the heap regardless of size so
// that moving a SmallFunc stays noexcept.
#pragma once

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace dc::sim {

/// Inline capture budget for simulator callbacks. Captures up to this many
/// bytes live inside the event slab (no allocation); bigger ones allocate.
inline constexpr std::size_t kInlineCallbackBytes = 48;

template <typename Signature, std::size_t Capacity = kInlineCallbackBytes>
class SmallFunc;

template <typename R, typename... Args, std::size_t Capacity>
class SmallFunc<R(Args...), Capacity> {
 public:
  /// Inline storage alignment. 8 rather than alignof(std::max_align_t):
  /// simulator callbacks capture pointers, indices, and SimTimes, none of
  /// which need 16-byte alignment, and the tighter bound is what lets the
  /// event slot close at exactly 80 bytes (no padding tail after the
  /// callable). Over-aligned callables simply take the heap fallback.
  static constexpr std::size_t kStorageAlign = 8;

  /// True when callable F is stored inline (no heap allocation).
  template <typename F>
  static constexpr bool stores_inline =
      sizeof(F) <= Capacity && alignof(F) <= kStorageAlign &&
      std::is_nothrow_move_constructible_v<F>;

  SmallFunc() noexcept = default;
  SmallFunc(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-constructor)

  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, SmallFunc> &&
                                        std::is_invocable_r_v<R, D&, Args...>>>
  SmallFunc(F&& fn) {  // NOLINT(google-explicit-constructor)
    construct(std::forward<F>(fn));
  }

  /// Assigning a callable constructs it directly into this object's
  /// storage — no temporary SmallFunc, no relocation.
  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, SmallFunc> &&
                                        std::is_invocable_r_v<R, D&, Args...>>>
  SmallFunc& operator=(F&& fn) {
    reset();
    construct(std::forward<F>(fn));
    return *this;
  }

  SmallFunc(SmallFunc&& other) noexcept { move_from(other); }

  SmallFunc& operator=(SmallFunc&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  SmallFunc(const SmallFunc&) = delete;
  SmallFunc& operator=(const SmallFunc&) = delete;

  ~SmallFunc() { reset(); }

  /// Destroys the stored callable, leaving *this empty.
  void reset() noexcept {
    if (destroy_ != nullptr) {
      destroy_(buf_);
      invoke_ = nullptr;
      relocate_ = nullptr;
      destroy_ = nullptr;
    }
  }

  explicit operator bool() const noexcept { return invoke_ != nullptr; }

  R operator()(Args... args) {
    return invoke_(buf_, std::forward<Args>(args)...);
  }

 private:
  template <typename F, typename D = std::decay_t<F>>
  void construct(F&& fn) {
    if constexpr (stores_inline<D>) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(fn));
      invoke_ = [](void* p, Args... args) -> R {
        return (*std::launder(reinterpret_cast<D*>(p)))(
            std::forward<Args>(args)...);
      };
      relocate_ = [](void* dst, void* src) noexcept {
        D* from = std::launder(reinterpret_cast<D*>(src));
        ::new (dst) D(std::move(*from));
        from->~D();
      };
      destroy_ = [](void* p) noexcept {
        std::launder(reinterpret_cast<D*>(p))->~D();
      };
    } else {
      // The documented large-capture fallback: callables over `Capacity`
      // bytes take one owning allocation here and are freed in destroy_
      // below. This pair is the slab's escape hatch, not a hot-path leak —
      // steady-state kernel events stay inline.
      D* heap = new D(std::forward<F>(fn));  // NOLINT(dc-r3)
      std::memcpy(buf_, &heap, sizeof(heap));
      invoke_ = [](void* p, Args... args) -> R {
        D* target;
        std::memcpy(&target, p, sizeof(target));
        return (*target)(std::forward<Args>(args)...);
      };
      relocate_ = [](void* dst, void* src) noexcept {
        std::memcpy(dst, src, sizeof(D*));
      };
      destroy_ = [](void* p) noexcept {
        D* target;
        std::memcpy(&target, p, sizeof(target));
        delete target;  // NOLINT(dc-r3) frees the large-capture fallback above
      };
    }
  }

  void move_from(SmallFunc& other) noexcept {
    if (other.relocate_ != nullptr) {
      other.relocate_(buf_, other.buf_);
      invoke_ = other.invoke_;
      relocate_ = other.relocate_;
      destroy_ = other.destroy_;
      other.invoke_ = nullptr;
      other.relocate_ = nullptr;
      other.destroy_ = nullptr;
    }
  }

  alignas(kStorageAlign) unsigned char buf_[Capacity];
  R (*invoke_)(void*, Args...) = nullptr;
  void (*relocate_)(void* dst, void* src) noexcept = nullptr;
  void (*destroy_)(void*) noexcept = nullptr;
};

}  // namespace dc::sim
