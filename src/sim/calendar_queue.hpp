// Calendar/ladder event queue — the O(1)-amortized EventQueue.
//
// Structure: a window of buckets of equal power-of-two integer width
// (bucket indexing is a shift, never a division) over
// [window_start, window_start + buckets * width). A node whose time falls
// inside the window goes to its bucket; anything at or past the window end
// waits in an overflow vector. Buckets are append-only and sorted lazily:
// a bucket is sorted by (time, seq) only when the pop cursor reaches it,
// so pushes are push_back + a dirty flag. When every bucket is consumed,
// the window is rebuilt from the overflow — width and bucket count are
// recomputed from the live span so each bucket holds O(1) nodes — which
// makes both push and pop amortized O(1) regardless of pending-set size
// (the 4-ary heap pays an O(log n) dependent-cache-miss chain per pop).
//
// Cancel is O(1) and lazy: a per-slot (time, seq) side array is the source
// of truth, so erase_slot just voids the slot's entry; the stale bucket
// entry becomes a tombstone that pop skips (seq mismatch). Tombstones are
// physically compacted when they outnumber live nodes, bounding memory.
//
// Determinism: pops leave each bucket in full (time, seq) order and
// same-time nodes always share a bucket, so the pop sequence is exactly
// the (time, seq) total order — identical to HeapEventQueue, pinned by
// the randomized differential test. All bucket math is integer-only
// (dc-lint r8 keeps it that way: floating-point bucket indexing could
// round differently across platforms and break cross-machine determinism).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/event_queue.hpp"

namespace dc::sim {

class CalendarQueue final : public EventQueue {
 public:
  CalendarQueue() = default;
  CalendarQueue(const CalendarQueue&) = delete;
  CalendarQueue& operator=(const CalendarQueue&) = delete;

  QueueKind kind() const override { return QueueKind::kCalendar; }

  void push(const QueueNode& node) override;
  const QueueNode* min() override;
  void pop_min() override;
  std::uint32_t pop_batch(QueueNode* out, std::uint32_t max) override;
  void erase_slot(std::uint32_t slot) override;
  bool find_slot(std::uint32_t slot, QueueNode* out) const override;
  std::size_t size() const override { return live_; }
  void reserve(std::size_t expected) override;
  void ensure_slots(std::size_t slot_count) override;
  void drain_all(std::vector<QueueNode>* out) override;
  void stats(std::vector<QueueStat>* out) const override;
  void audit(
      const std::function<void(const QueueNode&)>& check_node) const override;

 private:
  struct Bucket {
    std::vector<QueueNode> items;
    std::uint32_t pop = 0;  // consumed prefix length
    bool dirty = false;     // [pop, end) not yet sorted
  };

  // Per-slot source of truth. seq == 0 means "not queued" (real sequence
  // numbers start at 1); a bucket/overflow entry whose seq no longer
  // matches is a tombstone.
  struct SlotRef {
    std::uint64_t time_bits = 0;
    std::uint32_t seq = 0;
  };

  bool entry_live(const QueueNode& node) const {
    const SlotRef& ref = slot_ref_[node.slot];
    return ref.seq == node.seq && ref.time_bits == node.time_bits;
  }

  std::uint64_t window_end() const {
    return window_start_ + static_cast<std::uint64_t>(buckets_.size()) * width_;
  }

  /// Positions the cursor on the live head entry. Returns false when the
  /// queue is empty. On success buckets_[cur_].items[buckets_[cur_].pop]
  /// is the minimum live node.
  bool settle();

  void sort_bucket(Bucket& bucket);
  void rebuild_window();
  void maybe_compact();

  std::vector<Bucket> buckets_;
  std::vector<QueueNode> overflow_;
  std::vector<SlotRef> slot_ref_;
  std::uint64_t window_start_ = 0;
  std::uint64_t width_ = 1;           // always 1 << width_shift_
  std::uint32_t width_shift_ = 0;     // bucket index = (time - start) >> shift
  std::size_t cur_ = 0;   // bucket cursor; == buckets_.size() when exhausted
  std::size_t live_ = 0;  // queued nodes (excludes tombstones)
  std::size_t dead_ = 0;  // tombstones still physically present
  std::uint64_t rebuilds_ = 0;
  std::uint64_t compactions_ = 0;
};

}  // namespace dc::sim
