#include "sim/simulator.hpp"

#include <algorithm>

namespace dc::sim {

// ---------------------------------------------------------------------------
// Event slab

std::uint32_t Simulator::grow_event_slab() {
  const std::uint32_t slot = event_slots_used_++;
  if ((slot >> kSlabShift) >= event_chunks_.size()) {
    event_chunks_.push_back(std::make_unique<EventSlot[]>(kSlabChunk));
  }
  queue_->ensure_slots(event_slots_used_);
  event(slot).live = 1;
  return slot;
}

void Simulator::release_event_slot(std::uint32_t slot) {
  EventSlot& ev = event(slot);
  ev.fn.reset();
  ev.live = 0;
  // Bump the generation so any outstanding EventId for this slot goes
  // stale; skip 0 on wrap so make_event_id never produces kInvalidEvent.
  if (++ev.gen == 0) ev.gen = 1;
  ev.link = free_event_;
  free_event_ = slot;
  --live_events_;
}

void Simulator::reserve(std::size_t expected_events) {
  queue_->reserve(expected_events);
  if (expected_events <= event_slots_used_) return;
  // Materialize the new slots onto the free list now (ascending, so a
  // burst of schedules still fills slots in address order): every
  // subsequent alloc_event_slot takes the branch-free free-list path.
  const auto first = static_cast<std::uint32_t>(event_slots_used_);
  const auto last = static_cast<std::uint32_t>(expected_events - 1);
  while (event_chunks_.size() * kSlabChunk < expected_events) {
    event_chunks_.push_back(std::make_unique<EventSlot[]>(kSlabChunk));
  }
  for (std::uint32_t s = first; s < last; ++s) event(s).link = s + 1;
  event(last).link = free_event_;
  free_event_ = first;
  event_slots_used_ = static_cast<std::uint32_t>(expected_events);
  queue_->ensure_slots(event_slots_used_);
}

// The 32-bit FIFO tie-break counter saturated (once per ~4.3 billion
// schedules). Compact the seqs of the pending nodes order-preservingly:
// relative order is all any queue compares, so FIFO order is exactly
// preserved. In-flight batch entries participate too — request_stop() may
// re-push them, so their seqs must stay ordered against the queued set.
// Amortized cost is zero.
void Simulator::renumber_seqs() {
  std::vector<QueueNode> nodes;
  queue_->drain_all(&nodes);
  std::vector<QueueNode*> order;
  order.reserve(nodes.size() + (batch_n_ - batch_i_));
  for (QueueNode& node : nodes) order.push_back(&node);
  for (std::uint32_t i = batch_i_; i < batch_n_; ++i) order.push_back(&batch_[i]);
  std::sort(order.begin(), order.end(),
            [](const QueueNode* a, const QueueNode* b) { return a->seq < b->seq; });
  std::uint32_t seq = 1;
  for (QueueNode* node : order) node->seq = seq++;
  next_seq_ = seq;
  for (const QueueNode& node : nodes) queue_->push(node);
}

// ---------------------------------------------------------------------------
// Execution

bool Simulator::cancel(EventId id) {
  const std::uint32_t slot = id_slot(id);
  if (slot >= event_slots_used_) return false;
  EventSlot& ev = event(slot);
  if (!ev.live || ev.gen != id_gen(id)) return false;
  QueueNode node;
  const bool queued = heap_ != nullptr ? heap_->find_slot(slot, &node)
                                       : queue_->find_slot(slot, &node);
  if (queued) {
    if (heap_ != nullptr) {
      heap_->erase_slot(slot);
    } else {
      queue_->erase_slot(slot);
    }
  } else {
    // Not queued but live: the event is in the in-flight dispatch batch
    // (a same-timestamp sibling cancelled it). Releasing the slot bumps
    // the generation, which is exactly what makes the batch entry stale.
    --batch_inflight_;
  }
  release_event_slot(slot);
  maybe_audit();
  return true;
}

// Marks the (already popped, live) event dead and invokes it. Mark before
// invoking: a cancel() of this event's own id from inside the callback is
// then a clean "already fired" no-op, and pending_live() already excludes
// the executing event. The slot joins the free list only after the
// callback returns, so re-entrant schedules cannot recycle it; chunked
// slab addresses are stable, so the callable is invoked in place.
inline void Simulator::run_event(std::uint32_t slot, EventSlot& ev) {
  ++processed_;
  ev.live = 0;
  --live_events_;
  if (ev.link == kLinkNone) {
    ev.fn();
    ev.fn.reset();
    if (++ev.gen == 0) ev.gen = 1;
    ev.link = free_event_;
    free_event_ = slot;
  } else {
    // Timer fire events carry no callable: recycle the slot immediately.
    const std::uint32_t timer_slot = ev.link;
    if (++ev.gen == 0) ev.gen = 1;
    ev.link = free_event_;
    free_event_ = slot;
    fire_timer(timer_slot, now_);
  }
}

bool Simulator::dispatch_batch(std::uint64_t horizon_key) {
  const QueueNode* head = heap_ != nullptr ? heap_->min() : queue_->min();
  if (head == nullptr || head->time_bits > horizon_key) return false;
  assert(head->time_bits >= time_key(now_));
  DC_INVARIANT(head->time_bits >= time_key(now_),
               "simulation time must be nondecreasing (queue produced an "
               "event before now())");
  maybe_audit();
  now_ = key_time(head->time_bits);
  // Per-event fast path. Two cases take it:
  //  * the heap, always: its pop cost is one sift-down per node whether
  //    popped singly or via pop_batch, and cancel() excises nodes eagerly
  //    so the head is always live — batching would add generation
  //    snapshots and a staging copy for zero saved queue work (measured:
  //    ~15% slower on the dense-timer benchmark);
  //  * any queue when the head's timestamp is a singleton (the common
  //    case outside scan-tick bursts).
  // Nothing runs between the pop and the dispatch, and cancellation of
  // a not-yet-popped same-timestamp sibling still works through the
  // queue's own erase path, so no generation snapshot is needed.
  const QueueNode first = *head;
  if (heap_ != nullptr) {
    heap_->pop_min();
    head = heap_->min();
  } else {
    queue_->pop_min();
    head = queue_->min();
  }
  dispatch_stats_.batches += 1;
  if (heap_ != nullptr || head == nullptr ||
      head->time_bits != first.time_bits) {
    // The queue head is now the *next* event to fire: start pulling its
    // slot in while this event's callback runs, hiding the slab miss.
    if (head != nullptr) __builtin_prefetch(&event(head->slot));
    dispatch_stats_.batched_events += 1;
    if (dispatch_stats_.max_batch == 0) dispatch_stats_.max_batch = 1;
    run_event(first.slot, event(first.slot));
    return true;
  }
  batch_[0] = first;
  batch_n_ = 1 + (heap_ != nullptr
                      ? heap_->pop_batch(batch_ + 1, kBatchMax - 1)
                      : queue_->pop_batch(batch_ + 1, kBatchMax - 1));
  batch_i_ = 0;
  batch_inflight_ += batch_n_;
  // Record each entry's generation so a mid-batch cancel (or a cancel plus
  // slot reuse) is detected at dispatch, and start pulling the slot lines
  // in — the batch is dispatched back-to-back, so by the time entry i runs
  // its slab line is already in flight.
  for (std::uint32_t i = 0; i < batch_n_; ++i) {
    __builtin_prefetch(&event(batch_[i].slot));
  }
  for (std::uint32_t i = 0; i < batch_n_; ++i) {
    batch_gens_[i] = event(batch_[i].slot).gen;
  }
  dispatch_stats_.batched_events += batch_n_;
  if (batch_n_ > dispatch_stats_.max_batch) dispatch_stats_.max_batch = batch_n_;
  while (batch_i_ < batch_n_) {
    if (stop_requested_) {
      // Put the undispatched remainder back with its original (time, seq):
      // a later run()/run_until() — or a snapshot restore — fires it in
      // exactly the order the uninterrupted run would have.
      while (batch_i_ < batch_n_) {
        const QueueNode& node = batch_[batch_i_];
        const EventSlot& ev = event(node.slot);
        if (ev.live && ev.gen == batch_gens_[batch_i_]) {
          queue_->push(node);
          --batch_inflight_;
        }
        ++batch_i_;
      }
      break;
    }
    const QueueNode node = batch_[batch_i_];
    const std::uint32_t gen = batch_gens_[batch_i_];
    ++batch_i_;
    EventSlot& ev = event(node.slot);
    // Stale entry: a sibling earlier in this batch cancelled it (the slot
    // may even have been recycled into a new event — the generation says).
    if (!ev.live || ev.gen != gen) continue;
    --batch_inflight_;
    run_event(node.slot, ev);
  }
  batch_n_ = 0;
  batch_i_ = 0;
  return true;
}

void Simulator::run() {
  stop_requested_ = false;
  while (!stop_requested_ && dispatch_batch(~std::uint64_t{0})) {
  }
}

void Simulator::run_until(SimTime horizon) {
  assert(horizon >= now_);
  DC_INVARIANT(horizon >= now_, "run_until horizon is in the past");
  stop_requested_ = false;
  const std::uint64_t horizon_key = time_key(horizon);
  while (!stop_requested_ && dispatch_batch(horizon_key)) {
  }
  now_ = horizon;
}

// ---------------------------------------------------------------------------
// Periodic timers

EventId Simulator::schedule_timer_event(SimTime t, std::uint32_t timer_slot) {
  const std::uint32_t slot = alloc_event_slot();
  event(slot).link = timer_slot & kLinkNone;
  DC_CHECKED_ONLY(timer_arming_ = timer_slot;)
  const EventId id = push_event(t, slot);
  DC_CHECKED_ONLY(timer_arming_ = kNpos;)
  return id;
}

void Simulator::fire_timer(std::uint32_t timer_slot, SimTime fired_at) {
  // Chunked slab => `ts` stays valid even if the callback starts new
  // timers; only slot *reuse* is a hazard, and `firing` defers that.
  TimerSlot& ts = timer(timer_slot);
  assert(ts.alive && "a stopped timer's fire event should be cancelled");
  // Re-arm before invoking so the callback may stop the timer. The fire
  // event indexes the timer slab directly — no lookups on this path.
  ts.pending = schedule_timer_event(fired_at + ts.period, timer_slot);
  // Invoke in place: stop_timer() never destroys the callable of a timer
  // whose callback is on the stack (it only clears `alive`; `firing`
  // defers the actual release to us), so self-stop is safe.
  ts.firing = true;
  ts.fn(fired_at);
  ts.firing = false;
  if (!ts.alive) {
    release_timer_slot(timer_slot);  // stopped from within its own callback
  }
}

TimerId Simulator::start_periodic(SimTime first_fire, SimDuration period,
                                  TimerCallback fn) {
  assert(period > 0 && "periodic timer needs a positive period");
  assert(first_fire >= now_);
  std::uint32_t slot;
  if (free_timer_ != kNpos) {
    slot = free_timer_;
    free_timer_ = timer(slot).next_free;
    timer(slot).next_free = kNpos;
  } else {
    slot = timer_slots_used_++;
    if ((slot >> kSlabShift) >= timer_chunks_.size()) {
      timer_chunks_.push_back(std::make_unique<TimerSlot[]>(kSlabChunk));
    }
  }
  TimerSlot& ts = timer(slot);
  ts.period = period;
  ts.fn = std::move(fn);
  ts.alive = true;
  ts.firing = false;
  const TimerId id = make_event_id(slot, ts.gen);
  ts.pending = schedule_timer_event(first_fire, slot);
  return id;
}

bool Simulator::stop_timer(TimerId id) {
  const std::uint32_t slot = id_slot(id);
  if (slot >= timer_slots_used_) return false;
  TimerSlot& ts = timer(slot);
  if (!ts.alive || ts.gen != id_gen(id)) return false;
  if (ts.pending != kInvalidEvent) {
    cancel(ts.pending);
    ts.pending = kInvalidEvent;
  }
  ts.alive = false;
  // If the timer's own callback is on the stack, fire_timer() releases the
  // slot when it returns; releasing now would recycle the slot under it.
  if (!ts.firing) release_timer_slot(slot);
  return true;
}

// ---------------------------------------------------------------------------
// Snapshot/restore support

std::optional<Simulator::PendingEventInfo> Simulator::pending_event_info(
    EventId id) const {
  const std::uint32_t slot = id_slot(id);
  if (slot >= event_slots_used_) return std::nullopt;
  const EventSlot& ev = event(slot);
  if (!ev.live || ev.gen != id_gen(id)) return std::nullopt;
  QueueNode node;
  const bool queued = queue_->find_slot(slot, &node);
  assert(queued && "pending_event_info requires a quiescent point (the event "
                   "is mid-dispatch)");
  if (!queued) return std::nullopt;
  return PendingEventInfo{key_time(node.time_bits), node.seq};
}

std::optional<Simulator::PendingTimerInfo> Simulator::pending_timer_info(
    TimerId id) const {
  const std::uint32_t slot = id_slot(id);
  if (slot >= timer_slots_used_) return std::nullopt;
  const TimerSlot& ts = timer(slot);
  if (!ts.alive || ts.gen != id_gen(id)) return std::nullopt;
  const std::uint32_t ev_slot = id_slot(ts.pending);
  assert(ev_slot < event_slots_used_ && event(ev_slot).live &&
         "alive timer without a pending fire event at a quiescent point");
  QueueNode node;
  const bool queued = queue_->find_slot(ev_slot, &node);
  assert(queued && "pending_timer_info requires a quiescent point");
  if (!queued) return std::nullopt;
  return PendingTimerInfo{key_time(node.time_bits), node.seq, ts.period};
}

void Simulator::begin_restore(SimTime now, std::uint32_t next_seq,
                              std::uint64_t processed) {
  assert(!restoring_ && "begin_restore called twice");
  assert(now_ == 0 && processed_ == 0 && live_events_ == 0 &&
         queue_->size() == 0 && event_slots_used_ == 0 &&
         timer_slots_used_ == 0 &&
         "restore requires a virgin kernel (build components passively)");
  assert(now >= 0 && next_seq >= 1);
  now_ = now;
  next_seq_ = next_seq;
  processed_ = processed;
  restoring_ = true;
}

TimerId Simulator::restore_periodic(SimTime next_fire, std::uint32_t seq,
                                    SimDuration period, TimerCallback fn) {
  assert(restoring_ && "restore_periodic outside begin/finish_restore");
  assert(period > 0 && "periodic timer needs a positive period");
  assert(next_fire >= now_ && "restored timer fire is in the past");
  assert(seq >= 1 && seq < next_seq_ && "restored seq outside saved range");
  std::uint32_t slot;
  if (free_timer_ != kNpos) {
    slot = free_timer_;
    free_timer_ = timer(slot).next_free;
    timer(slot).next_free = kNpos;
  } else {
    slot = timer_slots_used_++;
    if ((slot >> kSlabShift) >= timer_chunks_.size()) {
      timer_chunks_.push_back(std::make_unique<TimerSlot[]>(kSlabChunk));
    }
  }
  TimerSlot& ts = timer(slot);
  ts.period = period;
  ts.fn = std::move(fn);
  ts.alive = true;
  ts.firing = false;
  const TimerId id = make_event_id(slot, ts.gen);
  const std::uint32_t ev_slot = alloc_event_slot();
  event(ev_slot).link = slot & kLinkNone;
  DC_CHECKED_ONLY(timer_arming_ = slot;)
  ts.pending = push_event_with_seq(next_fire, ev_slot, seq);
  DC_CHECKED_ONLY(timer_arming_ = kNpos;)
  return id;
}

Status Simulator::finish_restore(std::uint64_t expected_pending) {
  assert(restoring_ && "finish_restore without begin_restore");
  restoring_ = false;
  if (live_events_ != expected_pending) {
    return Status::failed_precondition(
        "simulator restore: " + std::to_string(live_events_) +
        " events re-armed but the snapshot recorded " +
        std::to_string(expected_pending) +
        " pending — a component failed to re-arm (or re-armed twice)");
  }
  std::vector<std::uint32_t> seqs;
  seqs.reserve(live_events_);
  for (std::uint32_t slot = 0; slot < event_slots_used_; ++slot) {
    QueueNode node;
    if (queue_->find_slot(slot, &node)) seqs.push_back(node.seq);
  }
  std::sort(seqs.begin(), seqs.end());
  for (std::size_t i = 1; i < seqs.size(); ++i) {
    if (seqs[i] == seqs[i - 1]) {
      return Status::failed_precondition(
          "simulator restore: duplicate sequence number " +
          std::to_string(seqs[i]) +
          " — two components re-armed the same pending event");
    }
  }
  if (!seqs.empty() && seqs.back() >= next_seq_) {
    return Status::failed_precondition(
        "simulator restore: re-armed sequence " + std::to_string(seqs.back()) +
        " is not below the restored tie-break counter " +
        std::to_string(next_seq_));
  }
  audit_invariants();
  return Status::ok();
}

// ---------------------------------------------------------------------------
// Checked-build structural audit. Everything here is O(pending + slots) and
// compiled out of non-DC_CHECKED builds; maybe_audit() amortizes the cost to
// O(1) per kernel operation by spacing audits at least live_events_ apart.

void Simulator::audit_invariants() const {
#if defined(DC_CHECKED)
  // Slab geometry.
  DC_INVARIANT(event_chunks_.size() * kSlabChunk >= event_slots_used_,
               "event slab has fewer chunks than its high-water mark");
  DC_INVARIANT(timer_chunks_.size() * kSlabChunk >= timer_slots_used_,
               "timer slab has fewer chunks than its high-water mark");
  DC_INVARIANT(queue_->size() + batch_inflight_ == live_events_,
               "pending-event count diverged from the queue plus the "
               "in-flight batch");

  // Queue structure (heap order / calendar bucketing), plus per-node slab
  // linkage.
  queue_->audit([this](const QueueNode& node) {
    DC_INVARIANT(node.slot < event_slots_used_,
                 "queued node references a slot beyond the slab");
    DC_INVARIANT(node.seq >= 1 && node.seq < next_seq_,
                 "queued node's seq escaped the tie-break counter");
    const EventSlot& ev = event(node.slot);
    DC_INVARIANT(ev.live, "queued node references a dead event slot");
    DC_INVARIANT(static_cast<bool>(ev.fn) != (ev.link != kLinkNone),
                 "event slot must carry exactly one of: callback, timer link");
  });

  // Event free list: acyclic (bounded walk), every member dead. Every slot
  // is queued, in the in-flight batch, free, or the one event currently
  // executing (its slot joins the free list after its callback returns).
  std::uint32_t free_events = 0;
  for (std::uint32_t s = free_event_; s != kLinkNone; s = event(s).link) {
    DC_INVARIANT(s < event_slots_used_, "event free list left the slab");
    DC_INVARIANT(!event(s).live, "live event slot on the free list");
    DC_INVARIANT(++free_events <= event_slots_used_,
                 "event free list is cyclic");
  }
  DC_INVARIANT(free_events + live_events_ <= event_slots_used_,
               "event slab accounting: free + pending exceeds slots");
  DC_INVARIANT(free_events + live_events_ + 1 >= event_slots_used_,
               "event slab leak: more than one slot neither pending nor free");

  // Timer slab: alive timers always hold a pending fire event. The handle
  // may be transiently stale *during* a re-arm or stop (the audit can fire
  // from inside push_event before ts.pending is reassigned); when the
  // generation does match, the link must be fully consistent.
  std::uint32_t alive_timers = 0;
  for (std::uint32_t t = 0; t < timer_slots_used_; ++t) {
    const TimerSlot& ts = timer(t);
    if (!ts.alive) continue;
    ++alive_timers;
    DC_INVARIANT(ts.period > 0, "alive periodic timer with no period");
    // Mid-arm window: this audit was reached from inside the push of this
    // very timer's fire event, before `pending` is assigned. Skip the
    // handle checks for that one timer.
    if (t == timer_arming_) continue;
    DC_INVARIANT(ts.pending != kInvalidEvent,
                 "alive periodic timer with no pending fire event");
    const std::uint32_t ev_slot = id_slot(ts.pending);
    DC_INVARIANT(ev_slot < event_slots_used_,
                 "timer's pending event is beyond the event slab");
    if (event(ev_slot).gen == id_gen(ts.pending)) {
      DC_INVARIANT(event(ev_slot).live,
                   "timer's pending handle is current but the event is dead");
      DC_INVARIANT(event(ev_slot).link == t,
                   "timer's pending event does not link back to the timer");
    }
  }

  // Timer free list: acyclic, members dead. At most one timer is in limbo
  // (stopped from inside its own callback; released when the fire returns).
  std::uint32_t free_timers = 0;
  for (std::uint32_t s = free_timer_; s != kNpos; s = timer(s).next_free) {
    DC_INVARIANT(s < timer_slots_used_, "timer free list left the slab");
    DC_INVARIANT(!timer(s).alive, "alive timer slot on the free list");
    DC_INVARIANT(++free_timers <= timer_slots_used_,
                 "timer free list is cyclic");
  }
  DC_INVARIANT(free_timers + alive_timers <= timer_slots_used_,
               "timer slab accounting: free + alive exceeds slots");
  DC_INVARIANT(free_timers + alive_timers + 1 >= timer_slots_used_,
               "timer slab leak: more than one slot neither alive nor free");
#endif
}

void Simulator::release_timer_slot(std::uint32_t slot) {
  TimerSlot& ts = timer(slot);
  ts.fn.reset();
  ts.alive = false;
  ts.firing = false;
  ts.pending = kInvalidEvent;
  ts.period = 0;
  if (++ts.gen == 0) ts.gen = 1;
  ts.next_free = free_timer_;
  free_timer_ = slot;
}

}  // namespace dc::sim
