#include "sim/simulator.hpp"

#include <algorithm>

namespace dc::sim {

// ---------------------------------------------------------------------------
// Event slab

std::uint32_t Simulator::grow_event_slab() {
  const std::uint32_t slot = event_slots_used_++;
  if ((slot >> kSlabShift) >= event_chunks_.size()) {
    event_chunks_.push_back(std::make_unique<EventSlot[]>(kSlabChunk));
  }
  slot_pos_.push_back(kNpos);
  event(slot).live = true;
  return slot;
}

void Simulator::release_event_slot(std::uint32_t slot) {
  EventSlot& ev = event(slot);
  ev.fn.reset();
  ev.live = false;
  slot_pos_[slot] = kNpos;
  ev.timer_slot = kNpos;
  // Bump the generation so any outstanding EventId for this slot goes
  // stale; skip 0 on wrap so make_event_id never produces kInvalidEvent.
  if (++ev.gen == 0) ev.gen = 1;
  ev.next_free = free_event_;
  free_event_ = slot;
  --live_events_;
}

void Simulator::reserve(std::size_t expected_events) {
  if (expected_events > heap_cap_) grow_heap(expected_events);
  if (expected_events <= event_slots_used_) return;
  // Materialize the new slots onto the free list now (ascending, so a
  // burst of schedules still fills slots in address order): every
  // subsequent alloc_event_slot takes the branch-free free-list path.
  const auto first = static_cast<std::uint32_t>(event_slots_used_);
  const auto last = static_cast<std::uint32_t>(expected_events - 1);
  slot_pos_.resize(expected_events, kNpos);
  while (event_chunks_.size() * kSlabChunk < expected_events) {
    event_chunks_.push_back(std::make_unique<EventSlot[]>(kSlabChunk));
  }
  for (std::uint32_t s = first; s < last; ++s) event(s).next_free = s + 1;
  event(last).next_free = free_event_;
  free_event_ = first;
  event_slots_used_ = static_cast<std::uint32_t>(expected_events);
}

// ---------------------------------------------------------------------------
// Indexed 4-ary heap. Every node move updates the owning slot's entry in
// slot_pos_, so cancel() can find and excise a node without scanning.

void Simulator::grow_heap(std::size_t new_cap) {
  // 3-node front pad + 64-byte alignment puts every 4-child group on one
  // cache line; aligned_alloc wants the byte size rounded to the alignment.
  const std::size_t bytes = (((new_cap + 3) * sizeof(HeapNode)) + 63) & ~std::size_t{63};
  auto* grown = static_cast<HeapNode*>(std::aligned_alloc(64, bytes));
  if (heap_raw_ != nullptr) {
    std::memcpy(grown + 3, heap_raw_ + 3, heap_size_ * sizeof(HeapNode));
    std::free(heap_raw_);
  }
  heap_raw_ = grown;
  heap_cap_ = new_cap;
}

void Simulator::sift_up(std::size_t pos) {
  const HeapNode node = heap_at(pos);
  while (pos > 0) {
    const std::size_t parent = (pos - 1) >> 2;
    if (!heap_less(node, heap_at(parent))) break;
    heap_at(pos) = heap_at(parent);
    slot_pos_[heap_at(pos).slot] = static_cast<std::uint32_t>(pos);
    pos = parent;
  }
  heap_at(pos) = node;
  slot_pos_[node.slot] = static_cast<std::uint32_t>(pos);
}

void Simulator::sift_down(std::size_t pos) {
  const std::size_t n = heap_size_;
  const HeapNode node = heap_at(pos);
  while (true) {
    const std::size_t first = (pos << 2) + 1;
    if (first >= n) break;
    std::size_t best = first;
    const std::size_t end = std::min(first + 4, n);
    for (std::size_t c = first + 1; c < end; ++c) {
      if (heap_less(heap_at(c), heap_at(best))) best = c;
    }
    if (!heap_less(heap_at(best), node)) break;
    heap_at(pos) = heap_at(best);
    slot_pos_[heap_at(pos).slot] = static_cast<std::uint32_t>(pos);
    pos = best;
  }
  heap_at(pos) = node;
  slot_pos_[node.slot] = static_cast<std::uint32_t>(pos);
}

void Simulator::heap_erase(std::size_t pos) {
  const HeapNode last = heap_at(--heap_size_);
  if (pos < heap_size_) {
    heap_at(pos) = last;
    slot_pos_[last.slot] = static_cast<std::uint32_t>(pos);
    // The replacement came from the bottom; it can only need to move one
    // way, and sift_up is a no-op unless it beats its new parent.
    sift_up(pos);
    sift_down(slot_pos_[last.slot]);
  }
}

// Pop the root. The replacement comes from the bottom of the heap, so it
// nearly always sinks the full height: walk the min-child path down to a
// leaf first, then bubble the replacement up — the early-exit compares
// happen near the leaf where they are cheap, and each level's child scan
// is one aligned cache line (prefetched one level ahead).
void Simulator::pop_min() {
  const HeapNode last = heap_at(--heap_size_);
  const std::size_t n = heap_size_;
  if (n == 0) return;
  std::size_t pos = 0;
  while (true) {
    const std::size_t first = (pos << 2) + 1;
    if (first >= n) break;
    std::size_t best = first;
    const std::size_t end = std::min(first + 4, n);
    // Whichever child wins, its children are one of these four lines;
    // issuing all four overlaps the next level's miss with this level's
    // compares (the walk's dependent-miss chain is what bounds pop cost).
    __builtin_prefetch(&heap_at((first << 2) + 1));
    __builtin_prefetch(&heap_at(((first + 1) << 2) + 1));
    __builtin_prefetch(&heap_at(((first + 2) << 2) + 1));
    __builtin_prefetch(&heap_at(((first + 3) << 2) + 1));
    for (std::size_t c = first + 1; c < end; ++c) {
      if (heap_less(heap_at(c), heap_at(best))) best = c;
    }
    if (!heap_less(heap_at(best), last)) break;
    heap_at(pos) = heap_at(best);
    slot_pos_[heap_at(pos).slot] = static_cast<std::uint32_t>(pos);
    pos = best;
  }
  heap_at(pos) = last;
  slot_pos_[last.slot] = static_cast<std::uint32_t>(pos);
}

// The 32-bit FIFO tie-break counter saturated (once per ~4.3 billion
// schedules). Compact the seqs of the pending nodes order-preservingly:
// relative order is all the heap compares, so the heap stays valid in
// place and FIFO order is exactly preserved. Amortized cost is zero.
void Simulator::renumber_seqs() {
  std::vector<std::uint32_t> order(heap_size_);
  for (std::uint32_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [this](std::uint32_t a, std::uint32_t b) {
    return heap_at(a).seq < heap_at(b).seq;
  });
  std::uint32_t seq = 1;
  for (const std::uint32_t pos : order) heap_at(pos).seq = seq++;
  next_seq_ = seq;
}

// ---------------------------------------------------------------------------
// Execution

bool Simulator::cancel(EventId id) {
  const std::uint32_t slot = id_slot(id);
  if (slot >= event_slots_used_) return false;
  EventSlot& ev = event(slot);
  if (!ev.live || ev.gen != id_gen(id)) return false;
  heap_erase(slot_pos_[slot]);
  release_event_slot(slot);
  maybe_audit();
  return true;
}

bool Simulator::step() {
  const HeapNode* next = peek_next_live();
  if (next == nullptr) return false;
  const std::uint32_t slot = next->slot;
  assert(key_time(next->time_bits) >= now_);
  DC_INVARIANT(key_time(next->time_bits) >= now_,
               "simulation time must be nondecreasing (heap produced an event "
               "before now())");
  maybe_audit();
  now_ = key_time(next->time_bits);
  pop_min();
  // The heap top is now the *next* event to fire: start pulling its slot
  // in while this event's callback runs, hiding the slab miss.
  if (heap_size_ != 0) __builtin_prefetch(&event(heap_at(0).slot));
  ++processed_;
  // Mark the slot dead before invoking: a cancel() of this event's own id
  // from inside the callback is then a clean "already fired" no-op, and
  // pending_live() already excludes the executing event (as the old
  // handler-map kernel did). The slot joins the free list only after the
  // callback returns, so re-entrant schedules cannot recycle it; chunked
  // slab addresses are stable, so the callable is invoked in place with
  // no relocation.
  EventSlot& ev = event(slot);
  ev.live = false;
  slot_pos_[slot] = kNpos;
  --live_events_;
  if (ev.timer_slot == kNpos) {
    ev.fn();
    ev.fn.reset();
    if (++ev.gen == 0) ev.gen = 1;
    ev.next_free = free_event_;
    free_event_ = slot;
  } else {
    // Timer fire events carry no callable: recycle the slot immediately.
    const std::uint32_t timer_slot = ev.timer_slot;
    ev.timer_slot = kNpos;
    if (++ev.gen == 0) ev.gen = 1;
    ev.next_free = free_event_;
    free_event_ = slot;
    fire_timer(timer_slot, now_);
  }
  return true;
}

void Simulator::run() {
  stop_requested_ = false;
  while (!stop_requested_ && step()) {
  }
}

void Simulator::run_until(SimTime horizon) {
  assert(horizon >= now_);
  DC_INVARIANT(horizon >= now_, "run_until horizon is in the past");
  stop_requested_ = false;
  const std::uint64_t horizon_key = time_key(horizon);
  while (!stop_requested_) {
    const HeapNode* next = peek_next_live();
    if (next == nullptr || next->time_bits > horizon_key) break;
    step();
  }
  now_ = horizon;
}

// ---------------------------------------------------------------------------
// Periodic timers

EventId Simulator::schedule_timer_event(SimTime t, std::uint32_t timer_slot) {
  const std::uint32_t slot = alloc_event_slot();
  event(slot).timer_slot = timer_slot;
  DC_CHECKED_ONLY(timer_arming_ = timer_slot;)
  const EventId id = push_event(t, slot);
  DC_CHECKED_ONLY(timer_arming_ = kNpos;)
  return id;
}

void Simulator::fire_timer(std::uint32_t timer_slot, SimTime fired_at) {
  // Chunked slab => `ts` stays valid even if the callback starts new
  // timers; only slot *reuse* is a hazard, and `firing` defers that.
  TimerSlot& ts = timer(timer_slot);
  assert(ts.alive && "a stopped timer's fire event should be cancelled");
  // Re-arm before invoking so the callback may stop the timer. The fire
  // event indexes the timer slab directly — no lookups on this path.
  ts.pending = schedule_timer_event(fired_at + ts.period, timer_slot);
  // Invoke in place: stop_timer() never destroys the callable of a timer
  // whose callback is on the stack (it only clears `alive`; `firing`
  // defers the actual release to us), so self-stop is safe.
  ts.firing = true;
  ts.fn(fired_at);
  ts.firing = false;
  if (!ts.alive) {
    release_timer_slot(timer_slot);  // stopped from within its own callback
  }
}

TimerId Simulator::start_periodic(SimTime first_fire, SimDuration period,
                                  TimerCallback fn) {
  assert(period > 0 && "periodic timer needs a positive period");
  assert(first_fire >= now_);
  std::uint32_t slot;
  if (free_timer_ != kNpos) {
    slot = free_timer_;
    free_timer_ = timer(slot).next_free;
    timer(slot).next_free = kNpos;
  } else {
    slot = timer_slots_used_++;
    if ((slot >> kSlabShift) >= timer_chunks_.size()) {
      timer_chunks_.push_back(std::make_unique<TimerSlot[]>(kSlabChunk));
    }
  }
  TimerSlot& ts = timer(slot);
  ts.period = period;
  ts.fn = std::move(fn);
  ts.alive = true;
  ts.firing = false;
  const TimerId id = make_event_id(slot, ts.gen);
  ts.pending = schedule_timer_event(first_fire, slot);
  return id;
}

bool Simulator::stop_timer(TimerId id) {
  const std::uint32_t slot = id_slot(id);
  if (slot >= timer_slots_used_) return false;
  TimerSlot& ts = timer(slot);
  if (!ts.alive || ts.gen != id_gen(id)) return false;
  if (ts.pending != kInvalidEvent) {
    cancel(ts.pending);
    ts.pending = kInvalidEvent;
  }
  ts.alive = false;
  // If the timer's own callback is on the stack, fire_timer() releases the
  // slot when it returns; releasing now would recycle the slot under it.
  if (!ts.firing) release_timer_slot(slot);
  return true;
}

// ---------------------------------------------------------------------------
// Snapshot/restore support

std::optional<Simulator::PendingEventInfo> Simulator::pending_event_info(
    EventId id) const {
  const std::uint32_t slot = id_slot(id);
  if (slot >= event_slots_used_) return std::nullopt;
  const EventSlot& ev = event(slot);
  if (!ev.live || ev.gen != id_gen(id)) return std::nullopt;
  const HeapNode& node = heap_at(slot_pos_[slot]);
  return PendingEventInfo{key_time(node.time_bits), node.seq};
}

std::optional<Simulator::PendingTimerInfo> Simulator::pending_timer_info(
    TimerId id) const {
  const std::uint32_t slot = id_slot(id);
  if (slot >= timer_slots_used_) return std::nullopt;
  const TimerSlot& ts = timer(slot);
  if (!ts.alive || ts.gen != id_gen(id)) return std::nullopt;
  const std::uint32_t ev_slot = id_slot(ts.pending);
  assert(ev_slot < event_slots_used_ && event(ev_slot).live &&
         "alive timer without a pending fire event at a quiescent point");
  const HeapNode& node = heap_at(slot_pos_[ev_slot]);
  return PendingTimerInfo{key_time(node.time_bits), node.seq, ts.period};
}

void Simulator::begin_restore(SimTime now, std::uint32_t next_seq,
                              std::uint64_t processed) {
  assert(!restoring_ && "begin_restore called twice");
  assert(now_ == 0 && processed_ == 0 && live_events_ == 0 &&
         heap_size_ == 0 && event_slots_used_ == 0 && timer_slots_used_ == 0 &&
         "restore requires a virgin kernel (build components passively)");
  assert(now >= 0 && next_seq >= 1);
  now_ = now;
  next_seq_ = next_seq;
  processed_ = processed;
  restoring_ = true;
}

TimerId Simulator::restore_periodic(SimTime next_fire, std::uint32_t seq,
                                    SimDuration period, TimerCallback fn) {
  assert(restoring_ && "restore_periodic outside begin/finish_restore");
  assert(period > 0 && "periodic timer needs a positive period");
  assert(next_fire >= now_ && "restored timer fire is in the past");
  assert(seq >= 1 && seq < next_seq_ && "restored seq outside saved range");
  std::uint32_t slot;
  if (free_timer_ != kNpos) {
    slot = free_timer_;
    free_timer_ = timer(slot).next_free;
    timer(slot).next_free = kNpos;
  } else {
    slot = timer_slots_used_++;
    if ((slot >> kSlabShift) >= timer_chunks_.size()) {
      timer_chunks_.push_back(std::make_unique<TimerSlot[]>(kSlabChunk));
    }
  }
  TimerSlot& ts = timer(slot);
  ts.period = period;
  ts.fn = std::move(fn);
  ts.alive = true;
  ts.firing = false;
  const TimerId id = make_event_id(slot, ts.gen);
  const std::uint32_t ev_slot = alloc_event_slot();
  event(ev_slot).timer_slot = slot;
  DC_CHECKED_ONLY(timer_arming_ = slot;)
  ts.pending = push_event_with_seq(next_fire, ev_slot, seq);
  DC_CHECKED_ONLY(timer_arming_ = kNpos;)
  return id;
}

Status Simulator::finish_restore(std::uint64_t expected_pending) {
  assert(restoring_ && "finish_restore without begin_restore");
  restoring_ = false;
  if (live_events_ != expected_pending) {
    return Status::failed_precondition(
        "simulator restore: " + std::to_string(live_events_) +
        " events re-armed but the snapshot recorded " +
        std::to_string(expected_pending) +
        " pending — a component failed to re-arm (or re-armed twice)");
  }
  std::vector<std::uint32_t> seqs;
  seqs.reserve(heap_size_);
  for (std::size_t i = 0; i < heap_size_; ++i) seqs.push_back(heap_at(i).seq);
  std::sort(seqs.begin(), seqs.end());
  for (std::size_t i = 1; i < seqs.size(); ++i) {
    if (seqs[i] == seqs[i - 1]) {
      return Status::failed_precondition(
          "simulator restore: duplicate sequence number " +
          std::to_string(seqs[i]) +
          " — two components re-armed the same pending event");
    }
  }
  if (!seqs.empty() && seqs.back() >= next_seq_) {
    return Status::failed_precondition(
        "simulator restore: re-armed sequence " + std::to_string(seqs.back()) +
        " is not below the restored tie-break counter " +
        std::to_string(next_seq_));
  }
  audit_invariants();
  return Status::ok();
}

// ---------------------------------------------------------------------------
// Checked-build structural audit. Everything here is O(pending + slots) and
// compiled out of non-DC_CHECKED builds; maybe_audit() amortizes the cost to
// O(1) per kernel operation by spacing audits at least heap_size_ apart.

void Simulator::audit_invariants() const {
#if defined(DC_CHECKED)
  // Slab geometry.
  DC_INVARIANT(event_chunks_.size() * kSlabChunk >= event_slots_used_,
               "event slab has fewer chunks than its high-water mark");
  DC_INVARIANT(slot_pos_.size() == event_slots_used_,
               "slot_pos_ side array out of sync with the event slab");
  DC_INVARIANT(timer_chunks_.size() * kSlabChunk >= timer_slots_used_,
               "timer slab has fewer chunks than its high-water mark");
  DC_INVARIANT(heap_size_ == live_events_,
               "pending-event count diverged from the heap");

  // 4-ary heap: parent <= child, and the slot<->position side array is a
  // bijection onto the heap.
  for (std::size_t i = 0; i < heap_size_; ++i) {
    const HeapNode& node = heap_at(i);
    if (i > 0) {
      const HeapNode& parent = heap_at((i - 1) >> 2);
      DC_INVARIANT(!heap_less(node, parent),
                   "4-ary heap order violated (child sorts before parent)");
    }
    DC_INVARIANT(node.slot < event_slots_used_,
                 "heap node references a slot beyond the slab");
    DC_INVARIANT(slot_pos_[node.slot] == i,
                 "slot->position map does not point back at the heap node");
    const EventSlot& ev = event(node.slot);
    DC_INVARIANT(ev.live, "heap node references a dead event slot");
    DC_INVARIANT(static_cast<bool>(ev.fn) != (ev.timer_slot != kNpos),
                 "event slot must carry exactly one of: callback, timer link");
  }

  // Event free list: acyclic (bounded walk), every member dead and
  // position-less. Every slot is pending, free, or the one event currently
  // executing (its slot joins the free list after its callback returns).
  std::uint32_t free_events = 0;
  for (std::uint32_t s = free_event_; s != kNpos; s = event(s).next_free) {
    DC_INVARIANT(s < event_slots_used_, "event free list left the slab");
    DC_INVARIANT(!event(s).live, "live event slot on the free list");
    DC_INVARIANT(slot_pos_[s] == kNpos,
                 "free event slot still has a heap position");
    DC_INVARIANT(++free_events <= event_slots_used_,
                 "event free list is cyclic");
  }
  DC_INVARIANT(free_events + heap_size_ <= event_slots_used_,
               "event slab accounting: free + pending exceeds slots");
  DC_INVARIANT(free_events + heap_size_ + 1 >= event_slots_used_,
               "event slab leak: more than one slot neither pending nor free");

  // Timer slab: alive timers always hold a pending fire event. The handle
  // may be transiently stale *during* a re-arm or stop (the audit can fire
  // from inside push_event before ts.pending is reassigned); when the
  // generation does match, the link must be fully consistent.
  std::uint32_t alive_timers = 0;
  for (std::uint32_t t = 0; t < timer_slots_used_; ++t) {
    const TimerSlot& ts = timer(t);
    if (!ts.alive) continue;
    ++alive_timers;
    DC_INVARIANT(ts.period > 0, "alive periodic timer with no period");
    // Mid-arm window: this audit was reached from inside the push of this
    // very timer's fire event, before `pending` is assigned. Skip the
    // handle checks for that one timer.
    if (t == timer_arming_) continue;
    DC_INVARIANT(ts.pending != kInvalidEvent,
                 "alive periodic timer with no pending fire event");
    const std::uint32_t ev_slot = id_slot(ts.pending);
    DC_INVARIANT(ev_slot < event_slots_used_,
                 "timer's pending event is beyond the event slab");
    if (event(ev_slot).gen == id_gen(ts.pending)) {
      DC_INVARIANT(event(ev_slot).live,
                   "timer's pending handle is current but the event is dead");
      DC_INVARIANT(event(ev_slot).timer_slot == t,
                   "timer's pending event does not link back to the timer");
    }
  }

  // Timer free list: acyclic, members dead. At most one timer is in limbo
  // (stopped from inside its own callback; released when the fire returns).
  std::uint32_t free_timers = 0;
  for (std::uint32_t s = free_timer_; s != kNpos; s = timer(s).next_free) {
    DC_INVARIANT(s < timer_slots_used_, "timer free list left the slab");
    DC_INVARIANT(!timer(s).alive, "alive timer slot on the free list");
    DC_INVARIANT(++free_timers <= timer_slots_used_,
                 "timer free list is cyclic");
  }
  DC_INVARIANT(free_timers + alive_timers <= timer_slots_used_,
               "timer slab accounting: free + alive exceeds slots");
  DC_INVARIANT(free_timers + alive_timers + 1 >= timer_slots_used_,
               "timer slab leak: more than one slot neither alive nor free");
#endif
}

void Simulator::release_timer_slot(std::uint32_t slot) {
  TimerSlot& ts = timer(slot);
  ts.fn.reset();
  ts.alive = false;
  ts.firing = false;
  ts.pending = kInvalidEvent;
  ts.period = 0;
  if (++ts.gen == 0) ts.gen = 1;
  ts.next_free = free_timer_;
  free_timer_ = slot;
}

}  // namespace dc::sim
