#include "sim/simulator.hpp"

namespace dc::sim {

EventId Simulator::schedule_at(SimTime t, Callback fn) {
  assert(t >= now_ && "cannot schedule into the past");
  assert(fn && "callback must be callable");
  const EventId id = next_id_++;
  queue_.push(QueueEntry{t, next_seq_++, id});
  handlers_.emplace(id, std::move(fn));
  return id;
}

bool Simulator::cancel(EventId id) {
  // The queue entry stays behind as a tombstone; it is skipped at pop time.
  return handlers_.erase(id) > 0;
}

bool Simulator::step() {
  while (!queue_.empty()) {
    const QueueEntry entry = queue_.top();
    auto it = handlers_.find(entry.id);
    if (it == handlers_.end()) {
      queue_.pop();  // cancelled: discard tombstone
      continue;
    }
    assert(entry.time >= now_);
    now_ = entry.time;
    // Move the callback out before popping so the handler may schedule or
    // cancel events (including itself being re-entrant-safe).
    Callback fn = std::move(it->second);
    handlers_.erase(it);
    queue_.pop();
    ++processed_;
    fn();
    return true;
  }
  return false;
}

void Simulator::run() {
  stop_requested_ = false;
  while (!stop_requested_ && step()) {
  }
}

void Simulator::run_until(SimTime horizon) {
  assert(horizon >= now_);
  stop_requested_ = false;
  while (!stop_requested_) {
    // Peek for the next live event and check its time against the horizon.
    bool found = false;
    while (!queue_.empty()) {
      const QueueEntry& entry = queue_.top();
      if (handlers_.find(entry.id) == handlers_.end()) {
        queue_.pop();
        continue;
      }
      found = true;
      break;
    }
    if (!found || queue_.top().time > horizon) break;
    step();
  }
  now_ = horizon;
}

void Simulator::arm_timer(TimerId id, SimTime fire_at) {
  auto it = timers_.find(id);
  if (it == timers_.end()) return;
  it->second.pending_event = schedule_at(fire_at, [this, id] {
    auto timer_it = timers_.find(id);
    if (timer_it == timers_.end()) return;  // stopped meanwhile
    const SimTime fired_at = now_;
    // Re-arm before invoking so the callback may stop the timer.
    arm_timer(id, fired_at + timer_it->second.period);
    // Re-lookup: arm_timer may rehash the map. Invoke through a copy so the
    // callback may stop (erase) its own timer without destroying the
    // std::function it is executing from.
    timer_it = timers_.find(id);
    if (timer_it == timers_.end()) return;
    TimerCallback fn = timer_it->second.fn;
    fn(fired_at);
  });
}

TimerId Simulator::start_periodic(SimTime first_fire, SimDuration period,
                                  TimerCallback fn) {
  assert(period > 0 && "periodic timer needs a positive period");
  assert(first_fire >= now_);
  const TimerId id = next_timer_id_++;
  timers_.emplace(id, TimerState{period, std::move(fn), kInvalidEvent});
  arm_timer(id, first_fire);
  return id;
}

bool Simulator::stop_timer(TimerId id) {
  auto it = timers_.find(id);
  if (it == timers_.end()) return false;
  if (it->second.pending_event != kInvalidEvent) cancel(it->second.pending_event);
  timers_.erase(it);
  return true;
}

}  // namespace dc::sim
