#include "sim/calendar_queue.hpp"

#include <algorithm>
#include <cassert>

#include "util/check.hpp"

namespace dc::sim {
namespace {

// Bucket-count bounds for a window rebuild. The lower bound keeps tiny
// pending sets from degenerating into one fat bucket; the upper bound
// caps the redistribution working set (a 65536-bucket window is already
// one node per bucket for the largest benches).
constexpr std::size_t kMinBuckets = 16;
constexpr std::size_t kMaxBuckets = 1u << 16;

std::size_t next_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

void CalendarQueue::push(const QueueNode& node) {
  assert(node.seq != 0 && "sequence numbers start at 1 (0 is the sentinel)");
  assert(slot_ref_[node.slot].seq == 0 && "slot is already queued");
  slot_ref_[node.slot] = SlotRef{node.time_bits, node.seq};
  ++live_;
  if (buckets_.empty() || node.time_bits >= window_end()) {
    overflow_.push_back(node);
    return;
  }
  if (node.time_bits < window_start_) {
    // The window was rebuilt above now() (a quiet gap with every pending
    // node far out), and a callback scheduled before it. Fold the buckets
    // back into the overflow — tombstones ride along — and invalidate the
    // window; the next settle() re-anchors it at this node's time. Rare:
    // it needs a fully-drained window followed by a pre-window push.
    for (Bucket& bucket : buckets_) {
      for (std::size_t j = bucket.pop; j < bucket.items.size(); ++j) {
        overflow_.push_back(bucket.items[j]);
      }
    }
    buckets_.clear();
    cur_ = 0;
    overflow_.push_back(node);
    return;
  }
  const std::size_t idx =
      static_cast<std::size_t>((node.time_bits - window_start_) >> width_shift_);
  Bucket& bucket = buckets_[idx];
  if (idx < cur_) {
    // The node landed in an already-consumed bucket (a callback scheduled
    // for a time the cursor has passed over but not beyond now()). The
    // bucket is empty of pending work, so append and step the cursor
    // back; everything before `pop` stays consumed.
    assert(bucket.pop == bucket.items.size() && "passed bucket not consumed");
    bucket.items.push_back(node);
    cur_ = idx;
    return;
  }
  if (idx == cur_ && !bucket.dirty) {
    // The open bucket is already sorted (the cursor is inside it): keep it
    // sorted with a binary-search insert so pop stays scan-free.
    auto it = std::lower_bound(bucket.items.begin() + bucket.pop,
                               bucket.items.end(), node, queue_node_less);
    bucket.items.insert(it, node);
    return;
  }
  bucket.items.push_back(node);
  bucket.dirty = true;
}

void CalendarQueue::sort_bucket(Bucket& bucket) {
  if (bucket.items.size() - bucket.pop > 1) {
    std::sort(bucket.items.begin() + bucket.pop, bucket.items.end(),
              queue_node_less);
  }
  bucket.dirty = false;
}

// Redistribute the overflow into a fresh window sized to the live span.
// Tombstones are dropped on the way through (free compaction).
void CalendarQueue::rebuild_window() {
  assert(!overflow_.empty());
  std::uint64_t lo = ~std::uint64_t{0};
  std::uint64_t hi = 0;
  std::size_t live = 0;
  for (const QueueNode& node : overflow_) {
    if (!entry_live(node)) continue;
    ++live;
    lo = std::min(lo, node.time_bits);
    hi = std::max(hi, node.time_bits);
  }
  dead_ -= overflow_.size() - live;
  if (live == 0) {
    overflow_.clear();
    return;
  }
  const std::size_t nbuckets =
      next_pow2(std::clamp(live, kMinBuckets, kMaxBuckets));
  // +1 so nbuckets * width strictly exceeds the span, then round the width
  // up to a power of two: every overflow node fits the new window, and the
  // push-path bucket index becomes a shift instead of a 64-bit division.
  // A bucket covers at most 2x the ideal span — still O(1) nodes each.
  const std::uint64_t min_width = (hi - lo) / nbuckets + 1;
  width_shift_ = 0;
  while ((std::uint64_t{1} << width_shift_) < min_width) ++width_shift_;
  width_ = std::uint64_t{1} << width_shift_;
  window_start_ = lo;
  cur_ = 0;
  // Resize in place: surviving buckets keep their item capacity, so
  // steady-state windows (periodic-timer workloads rebuild one window per
  // horizon chunk) allocate nothing.
  buckets_.resize(nbuckets);
  for (Bucket& bucket : buckets_) {
    bucket.items.clear();
    bucket.pop = 0;
    bucket.dirty = false;
  }
  for (const QueueNode& node : overflow_) {
    if (!entry_live(node)) continue;
    Bucket& bucket =
        buckets_[static_cast<std::size_t>((node.time_bits - lo) >> width_shift_)];
    bucket.items.push_back(node);
    bucket.dirty = true;
  }
  overflow_.clear();
  ++rebuilds_;
}

bool CalendarQueue::settle() {
  while (true) {
    while (cur_ < buckets_.size()) {
      Bucket& bucket = buckets_[cur_];
      if (bucket.dirty) sort_bucket(bucket);
      while (bucket.pop < bucket.items.size()) {
        if (entry_live(bucket.items[bucket.pop])) return true;
        ++bucket.pop;  // tombstone: consumed for free
        --dead_;
      }
      bucket.items.clear();
      bucket.pop = 0;
      ++cur_;
    }
    if (overflow_.empty()) return false;
    rebuild_window();
  }
}

const QueueNode* CalendarQueue::min() {
  if (!settle()) return nullptr;
  return &buckets_[cur_].items[buckets_[cur_].pop];
}

void CalendarQueue::pop_min() {
  const bool have = settle();
  assert(have && "pop_min on an empty queue");
  (void)have;
  Bucket& bucket = buckets_[cur_];
  slot_ref_[bucket.items[bucket.pop].slot].seq = 0;
  ++bucket.pop;
  --live_;
}

std::uint32_t CalendarQueue::pop_batch(QueueNode* out, std::uint32_t max) {
  bool have = settle();
  assert(have && "pop_batch on an empty queue");
  (void)have;
  // Same-time nodes always share one bucket (same window epoch, same
  // index), so the whole run is a consumed prefix of the sorted open
  // bucket — each pop is a cursor bump.
  const std::uint64_t head_time =
      buckets_[cur_].items[buckets_[cur_].pop].time_bits;
  std::uint32_t n = 0;
  do {
    Bucket& bucket = buckets_[cur_];
    const QueueNode& node = bucket.items[bucket.pop];
    if (node.time_bits != head_time) break;
    out[n++] = node;
    slot_ref_[node.slot].seq = 0;
    ++bucket.pop;
    --live_;
  } while (n < max && settle());
  return n;
}

void CalendarQueue::erase_slot(std::uint32_t slot) {
  assert(slot_ref_[slot].seq != 0 && "erase_slot: slot is not queued");
  slot_ref_[slot].seq = 0;
  --live_;
  ++dead_;
  maybe_compact();
}

bool CalendarQueue::find_slot(std::uint32_t slot, QueueNode* out) const {
  const SlotRef& ref = slot_ref_[slot];
  if (ref.seq == 0) return false;
  *out = QueueNode{ref.time_bits, ref.seq, slot};
  return true;
}

void CalendarQueue::reserve(std::size_t expected) {
  overflow_.reserve(expected);
}

void CalendarQueue::ensure_slots(std::size_t slot_count) {
  slot_ref_.resize(slot_count);
}

void CalendarQueue::drain_all(std::vector<QueueNode>* out) {
  out->reserve(out->size() + live_);
  for (Bucket& bucket : buckets_) {
    for (std::size_t i = bucket.pop; i < bucket.items.size(); ++i) {
      if (entry_live(bucket.items[i])) out->push_back(bucket.items[i]);
    }
    bucket.items.clear();
    bucket.pop = 0;
    bucket.dirty = false;
  }
  for (const QueueNode& node : overflow_) {
    if (entry_live(node)) out->push_back(node);
  }
  overflow_.clear();
  buckets_.clear();
  for (auto it = out->end() - static_cast<std::ptrdiff_t>(live_);
       it != out->end(); ++it) {
    slot_ref_[it->slot].seq = 0;
  }
  cur_ = 0;
  live_ = 0;
  dead_ = 0;
}

// Physically drop tombstones once they outnumber live nodes: each sweep
// removes at least half the entries it touches, so the cost amortizes to
// O(1) per cancel.
void CalendarQueue::maybe_compact() {
  if (dead_ < 64 || dead_ <= live_) return;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    Bucket& bucket = buckets_[i];
    if (bucket.items.empty()) continue;
    // The consumed prefix is dead weight either way; drop it too. Only
    // the open bucket can have one (earlier buckets were cleared on
    // exhaustion, later ones never popped).
    bucket.items.erase(bucket.items.begin(),
                       bucket.items.begin() + bucket.pop);
    bucket.pop = 0;
    std::erase_if(bucket.items,
                  [this](const QueueNode& node) { return !entry_live(node); });
  }
  std::erase_if(overflow_,
                [this](const QueueNode& node) { return !entry_live(node); });
  dead_ = 0;
  ++compactions_;
}

void CalendarQueue::stats(std::vector<QueueStat>* out) const {
  out->push_back({"queue_calendar_rebuilds", rebuilds_});
  out->push_back({"queue_calendar_compactions", compactions_});
  out->push_back({"queue_calendar_buckets", buckets_.size()});
  out->push_back({"queue_calendar_width", width_});
}

void CalendarQueue::audit(
    const std::function<void(const QueueNode&)>& check_node) const {
  std::size_t live_seen = 0;
  std::size_t dead_seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    const Bucket& bucket = buckets_[i];
    DC_INVARIANT(i >= cur_ || bucket.pop == bucket.items.size(),
                 "calendar bucket behind the cursor still has entries");
    for (std::size_t j = bucket.pop; j < bucket.items.size(); ++j) {
      const QueueNode& node = bucket.items[j];
      DC_INVARIANT(node.time_bits >= window_start_ &&
                       (node.time_bits - window_start_) / width_ == i,
                   "calendar entry is in the wrong bucket for its time");
      if (!bucket.dirty && j > bucket.pop) {
        DC_INVARIANT(!queue_node_less(node, bucket.items[j - 1]),
                     "sorted calendar bucket is out of (time, seq) order");
      }
      if (entry_live(node)) {
        ++live_seen;
        check_node(node);
      } else {
        ++dead_seen;
      }
    }
  }
  for (const QueueNode& node : overflow_) {
    DC_INVARIANT(buckets_.empty() || node.time_bits >= window_end(),
                 "overflow entry belongs inside the bucket window");
    if (entry_live(node)) {
      ++live_seen;
      check_node(node);
    } else {
      ++dead_seen;
    }
  }
  DC_INVARIANT(live_seen == live_,
               "calendar live count diverged from its entries");
  DC_INVARIANT(dead_seen == dead_,
               "calendar tombstone count diverged from its entries");
  std::size_t referenced = 0;
  for (const SlotRef& ref : slot_ref_) {
    if (ref.seq != 0) ++referenced;
  }
  DC_INVARIANT(referenced == live_,
               "calendar slot side array diverged from the live count");
}

}  // namespace dc::sim
