// Discrete-event simulation kernel.
//
// This kernel replaces the paper's 100x-sped-up wall-clock emulation (see
// DESIGN.md, substitution table). All DawningCloud daemons — the HTC/MTC
// servers, the resource provision service, the lifecycle service, and the
// job emulator — are event handlers driven by one Simulator instance.
//
// Guarantees:
//   * Events fire in nondecreasing time order.
//   * Events scheduled for the same time fire in scheduling (FIFO) order,
//     which makes experiments fully deterministic.
//   * cancel()/stop_timer() validate their handle in O(1) via a generation
//     tag and remove the event from the queue immediately — no tombstones
//     accumulate, even for workloads that cancel heavily or run periodic
//     timers for months of simulated time.
//
// Hot-path design (see docs/ARCHITECTURE.md, "The simulation kernel"):
//   * Events live in a chunked slab (fixed 1024-slot chunks + free list),
//     so slot addresses are stable: growth never relocates live callbacks
//     and callbacks are invoked in place. A slot stores its callback
//     inline for captures up to kInlineCallbackBytes (48) bytes —
//     scheduling such an event performs zero heap allocations in steady
//     state.
//   * The pending queue is a 4-ary heap of 16-byte (time, seq, slot)
//     nodes in a 64-byte-aligned buffer laid out so each node's four
//     children share one cache line. Each slot records its heap position
//     (dense side array), so cancellation excises the node in place (O(1)
//     handle check + one localized sift) instead of leaving a tombstone.
//   * Periodic timers are their own slab; a timer's fire event carries the
//     timer's slot index, so re-arming is direct indexing — no hash
//     lookups anywhere in the kernel.
//
// The kernel is single-threaded. Parameter sweeps parallelize by running
// one Simulator per thread (see bench/), which is both simpler and faster
// than a locked shared kernel.
#pragma once

#include <cassert>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "sim/small_func.hpp"
#include "util/check.hpp"
#include "util/status.hpp"
#include "util/time.hpp"

namespace dc::sim {

/// Identifies a scheduled (one-shot) event; valid until it fires or is
/// cancelled. Handles are generation-tagged: a stale id (already fired,
/// already cancelled, or from a recycled slot) is detected in O(1) and
/// never aliases a live event.
using EventId = std::uint64_t;
inline constexpr EventId kInvalidEvent = 0;

/// Identifies a periodic timer. Generation-tagged like EventId.
using TimerId = std::uint64_t;
inline constexpr TimerId kInvalidTimer = 0;

class Simulator {
 public:
  /// Event callbacks are stored inline in the event slab for captures up
  /// to kInlineCallbackBytes (48) bytes; larger captures heap-allocate
  /// (correct, just slower). Still constructible from any callable,
  /// including std::function, but move-only: callbacks are consumed
  /// exactly once.
  using Callback = SmallFunc<void()>;
  using TimerCallback = SmallFunc<void(SimTime)>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;
  ~Simulator() { std::free(heap_raw_); }

  /// Current simulation time (seconds).
  SimTime now() const { return now_; }

  /// Schedules `fn` at absolute time `t` (must be >= now()). Accepts any
  /// callable; the callable is constructed directly into the event slab.
  template <typename F>
  EventId schedule_at(SimTime t, F&& fn) {
    assert(t >= now_ && "cannot schedule into the past");
    const std::uint32_t slot = alloc_event_slot();
    event(slot).fn = std::forward<F>(fn);
    assert(event(slot).fn && "callback must be callable");
    return push_event(t, slot);
  }

  /// Schedules `fn` after `delay` seconds (delay >= 0).
  template <typename F>
  EventId schedule_in(SimDuration delay, F&& fn) {
    return schedule_at(now_ + delay, std::forward<F>(fn));
  }

  /// Cancels a pending event. Returns false if it already fired or was
  /// already cancelled. The queue entry is removed immediately (no
  /// tombstone); the handle check itself is O(1).
  bool cancel(EventId id);

  /// Starts a periodic timer: first fires at `first_fire`, then every
  /// `period` seconds until stopped. The callback receives the fire time.
  TimerId start_periodic(SimTime first_fire, SimDuration period, TimerCallback fn);

  /// Stops a periodic timer. Returns false if it was not active. Safe to
  /// call from any callback, including the timer's own.
  bool stop_timer(TimerId id);

  /// Runs until the event queue is empty or a stop is requested.
  void run();

  /// Processes all events with time <= horizon, then advances the clock to
  /// exactly `horizon`.
  void run_until(SimTime horizon);

  /// Requests that run()/run_until() return after the current event.
  void request_stop() { stop_requested_ = true; }

  /// Number of events executed so far (excludes cancelled).
  std::uint64_t events_processed() const { return processed_; }

  /// High-water mark of the pending-event heap over the run — the
  /// kernel's memory-pressure figure for the self-profiling report.
  std::size_t peak_pending() const { return peak_pending_; }

  /// Number of live pending events: one-shot events not yet fired or
  /// cancelled, plus one pending fire per active periodic timer. Exact —
  /// cancelled events leave no residue in the queue.
  std::size_t pending_live() const { return live_events_; }

  /// Pre-sizes the event slab and heap for `expected_events` concurrently
  /// pending events. Optional — both grow on demand.
  void reserve(std::size_t expected_events);

  // --- Snapshot/restore support (see docs/SNAPSHOT.md) -------------------
  //
  // A snapshot taken at a quiescent point (between run_until chunks, no
  // callback on the stack) records, per pending occurrence, its (time, seq)
  // pair. Restore rebuilds the pending set by re-scheduling semantically
  // identical callbacks with their *original* sequence numbers: since seqs
  // are unique, (time, seq) is a total order and the heap pops the restored
  // events in exactly the order the uninterrupted run would have — push
  // order and slot indices are irrelevant to results.

  /// (time, seq) of a pending one-shot event; nullopt if the handle is
  /// stale (already fired or cancelled). O(1) — safe to call on every entry
  /// of an append-only event registry at save time.
  struct PendingEventInfo {
    SimTime time;
    std::uint32_t seq;
  };
  std::optional<PendingEventInfo> pending_event_info(EventId id) const;

  /// Next fire (time, seq) and period of an active periodic timer; nullopt
  /// if the handle is stale.
  struct PendingTimerInfo {
    SimTime next_fire;
    std::uint32_t seq;
    SimDuration period;
  };
  std::optional<PendingTimerInfo> pending_timer_info(TimerId id) const;

  /// The FIFO tie-break counter; saved so schedules after resume draw the
  /// same sequence numbers the uninterrupted run would have.
  std::uint32_t next_seq() const { return next_seq_; }

  /// Enters restore mode on a *virgin* kernel (nothing scheduled, clock at
  /// zero): sets the clock, the tie-break counter, and the processed-event
  /// count to their snapshot values. Only restore_event/restore_periodic
  /// may schedule until finish_restore().
  void begin_restore(SimTime now, std::uint32_t next_seq,
                     std::uint64_t processed);

  /// Re-arms one pending one-shot event with its saved (time, seq).
  template <typename F>
  EventId restore_event(SimTime t, std::uint32_t seq, F&& fn) {
    assert(restoring_ && "restore_event outside begin_restore/finish_restore");
    assert(t >= now_ && "restored event is in the past");
    assert(seq >= 1 && seq < next_seq_ && "restored seq outside saved range");
    const std::uint32_t slot = alloc_event_slot();
    event(slot).fn = std::forward<F>(fn);
    assert(event(slot).fn && "callback must be callable");
    return push_event_with_seq(t, slot, seq);
  }

  /// Re-arms one periodic timer whose next fire was pending at the
  /// snapshot, with the fire event's saved (time, seq).
  TimerId restore_periodic(SimTime next_fire, std::uint32_t seq,
                           SimDuration period, TimerCallback fn);

  /// Leaves restore mode. Validates that exactly `expected_pending` events
  /// were re-armed and that their sequence numbers are unique and below
  /// next_seq() — a component that forgot to re-arm (or re-armed twice) is
  /// reported here instead of silently diverging later.
  Status finish_restore(std::uint64_t expected_pending);

  bool restoring() const { return restoring_; }

  /// Full structural audit of the kernel (checked builds): 4-ary heap
  /// ordering, slot<->position bijection, generation consistency, event and
  /// timer slab free-list integrity, timer/event cross-links. A violation
  /// aborts with the failing invariant. In non-DC_CHECKED builds this is a
  /// no-op — tests may call it unconditionally. Checked builds also run it
  /// automatically every max(1024, pending) kernel operations (amortized
  /// O(1) per operation), so long scenarios self-audit.
  void audit_invariants() const;

 private:
  static constexpr std::uint32_t kNpos = 0xffffffffu;

  // One pending occurrence in the 4-ary heap. Ordered by (time, seq); seq
  // is a schedule counter, so equal-time events pop FIFO. Kept to 16 bytes
  // — four nodes per cache line, so a sift level's child scan touches
  // exactly one line. seq is 32-bit; when the counter saturates, pending
  // nodes are renumbered in order (amortized O(1), see renumber_seqs()).
  //
  // `time_bits` is the time as unsigned — order-preserving because the
  // clock starts at 0 and schedule_at rejects the past, so queued times
  // are never negative.
  struct HeapNode {
    std::uint64_t time_bits;
    std::uint32_t seq;
    std::uint32_t slot;  // index into the event slab
  };
  static_assert(sizeof(HeapNode) == 16);

  static std::uint64_t time_key(SimTime t) {
    assert(t >= 0 && "queued times are nonnegative");
    return static_cast<std::uint64_t>(t);
  }
  static SimTime key_time(std::uint64_t bits) {
    return static_cast<SimTime>(bits);
  }

  // Slab slot for a pending event. `fn` is engaged for one-shot callback
  // events; timer fire events carry `timer_slot` instead (kNpos for
  // one-shot). `gen` tags handles so recycled slots invalidate old ids.
  // The slot's heap position lives in the dense slot_pos_ side array, not
  // here: sift operations update positions on every node move, and a
  // 4-byte entry keeps that traffic off these ~100-byte slots.
  struct EventSlot {
    Callback fn;
    std::uint32_t gen = 1;
    std::uint32_t timer_slot = kNpos;
    std::uint32_t next_free = kNpos;
    bool live = false;
  };

  // Slab slot for a periodic timer. `firing` defers slot reuse while the
  // timer's callback is on the stack, so a callback may stop its own
  // timer (or a sibling's) without destroying the callable it runs from.
  struct TimerSlot {
    TimerCallback fn;
    SimDuration period = 0;
    EventId pending = kInvalidEvent;
    std::uint32_t gen = 1;
    std::uint32_t next_free = kNpos;
    bool alive = false;
    bool firing = false;
  };

  static constexpr EventId make_event_id(std::uint32_t slot, std::uint32_t gen) {
    return (static_cast<std::uint64_t>(slot) << 32) | gen;
  }
  static constexpr std::uint32_t id_slot(std::uint64_t id) {
    return static_cast<std::uint32_t>(id >> 32);
  }
  static constexpr std::uint32_t id_gen(std::uint64_t id) {
    return static_cast<std::uint32_t>(id);
  }

  // Chunked slab geometry: fixed 1024-slot chunks keep slot addresses
  // stable across growth (no relocation of live callbacks) and make slot
  // lookup two shifts and an add.
  static constexpr std::uint32_t kSlabShift = 10;
  static constexpr std::uint32_t kSlabChunk = 1u << kSlabShift;
  static constexpr std::uint32_t kSlabMask = kSlabChunk - 1;

  EventSlot& event(std::uint32_t slot) {
    return event_chunks_[slot >> kSlabShift][slot & kSlabMask];
  }
  const EventSlot& event(std::uint32_t slot) const {
    return event_chunks_[slot >> kSlabShift][slot & kSlabMask];
  }
  TimerSlot& timer(std::uint32_t slot) {
    return timer_chunks_[slot >> kSlabShift][slot & kSlabMask];
  }
  const TimerSlot& timer(std::uint32_t slot) const {
    return timer_chunks_[slot >> kSlabShift][slot & kSlabMask];
  }

  // Checked builds: count kernel operations down to the next full audit.
  // The reset interval scales with the heap so the O(pending) walk stays
  // amortized O(1) per schedule/cancel/step.
  void maybe_audit() {
#if defined(DC_CHECKED)
    if (--audit_countdown_ == 0) {
      audit_invariants();
      audit_countdown_ =
          heap_size_ > 1024 ? static_cast<std::uint64_t>(heap_size_) : 1024;
    }
#endif
  }

  std::uint32_t alloc_event_slot() {
    if (free_event_ != kNpos) {
      const std::uint32_t slot = free_event_;
      EventSlot& ev = event(slot);
      free_event_ = ev.next_free;
      ev.next_free = kNpos;
      ev.live = true;
      return slot;
    }
    return grow_event_slab();
  }
  std::uint32_t grow_event_slab();
  void release_event_slot(std::uint32_t slot);

  EventId push_event(SimTime t, std::uint32_t slot) {
    if (next_seq_ == 0xffffffffu) renumber_seqs();
    return push_event_with_seq(t, slot, next_seq_++);
  }

  // Shared push core; restore_event passes a saved seq, push_event the next
  // fresh one.
  EventId push_event_with_seq(SimTime t, std::uint32_t slot,
                              std::uint32_t seq) {
    if (heap_size_ == heap_cap_) grow_heap(heap_cap_ == 0 ? 1024 : heap_cap_ * 2);
    std::size_t pos = heap_size_++;
    if (heap_size_ > peak_pending_) peak_pending_ = heap_size_;
    const HeapNode node{time_key(t), seq, slot};
    // Inline sift-up: random-time inserts rarely climb more than a level
    // or two, so the whole schedule path stays in the caller's frame.
    while (pos > 0) {
      const std::size_t parent = (pos - 1) >> 2;
      if (!heap_less(node, heap_at(parent))) break;
      heap_at(pos) = heap_at(parent);
      slot_pos_[heap_at(pos).slot] = static_cast<std::uint32_t>(pos);
      pos = parent;
    }
    heap_at(pos) = node;
    slot_pos_[slot] = static_cast<std::uint32_t>(pos);
    ++live_events_;
    maybe_audit();
    return make_event_id(slot, event(slot).gen);
  }

  EventId schedule_timer_event(SimTime t, std::uint32_t timer_slot);
  void fire_timer(std::uint32_t timer_slot, SimTime fired_at);
  void release_timer_slot(std::uint32_t slot);

  // Heap storage: a 64-byte-aligned buffer with a 3-node pad in front, so
  // the four children of logical node L (physical 4L+4..4L+7) start at a
  // 64-byte boundary and share one cache line.
  HeapNode& heap_at(std::size_t logical) { return heap_raw_[logical + 3]; }
  const HeapNode& heap_at(std::size_t logical) const { return heap_raw_[logical + 3]; }
  void grow_heap(std::size_t new_cap);

  static bool heap_less(const HeapNode& a, const HeapNode& b) {
    if (a.time_bits != b.time_bits) return a.time_bits < b.time_bits;
    return a.seq < b.seq;
  }
  void sift_up(std::size_t pos);
  void sift_down(std::size_t pos);
  void heap_erase(std::size_t pos);
  void pop_min();
  void renumber_seqs();

  /// The next event to fire, or nullptr when the queue is empty. Because
  /// cancellation removes queue entries eagerly, the heap top is always
  /// live — run_until() peeks it and step() pops it without re-finding.
  const HeapNode* peek_next_live() const {
    return heap_size_ == 0 ? nullptr : &heap_at(0);
  }

  /// Pops and executes the next live event. Returns false if none remain.
  bool step();

  SimTime now_ = 0;
  std::uint32_t next_seq_ = 1;
  std::uint64_t processed_ = 0;
  std::size_t live_events_ = 0;
  bool stop_requested_ = false;
  bool restoring_ = false;

  HeapNode* heap_raw_ = nullptr;  // aligned_alloc'd; [0..2] is the pad
  std::size_t heap_size_ = 0;
  std::size_t peak_pending_ = 0;
  std::size_t heap_cap_ = 0;
  std::vector<std::unique_ptr<EventSlot[]>> event_chunks_;
  std::vector<std::uint32_t> slot_pos_;  // event slot -> logical heap index
  std::uint32_t event_slots_used_ = 0;   // high-water mark across chunks
  std::uint32_t free_event_ = kNpos;
  std::vector<std::unique_ptr<TimerSlot[]>> timer_chunks_;
  std::uint32_t timer_slots_used_ = 0;
  std::uint32_t free_timer_ = kNpos;
  DC_CHECKED_ONLY(std::uint64_t audit_countdown_ = 1024;)
  // The timer whose fire event is being pushed right now (start/re-arm):
  // its `pending` handle is assigned only after push_event returns, so an
  // audit that fires from inside that push must not require it to be set.
  DC_CHECKED_ONLY(std::uint32_t timer_arming_ = kNpos;)
};

}  // namespace dc::sim
