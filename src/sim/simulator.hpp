// Discrete-event simulation kernel.
//
// This kernel replaces the paper's 100x-sped-up wall-clock emulation (see
// DESIGN.md, substitution table). All DawningCloud daemons — the HTC/MTC
// servers, the resource provision service, the lifecycle service, and the
// job emulator — are event handlers driven by one Simulator instance.
//
// Guarantees:
//   * Events fire in nondecreasing time order.
//   * Events scheduled for the same time fire in scheduling (FIFO) order,
//     which makes experiments fully deterministic.
//   * cancel()/stop_timer() validate their handle in O(1) via a generation
//     tag; the pending entry is removed (or tombstoned, calendar queue)
//     immediately, so cancel-heavy workloads never accumulate stale work.
//   * The pending queue is pluggable (see event_queue.hpp): the indexed
//     4-ary heap and the calendar queue produce the same (time, seq) pop
//     order, so the queue choice can never change results, only speed.
//
// Hot-path design (see docs/ARCHITECTURE.md, "The simulation kernel"):
//   * Events live in a chunked slab (fixed 1024-slot chunks + free list),
//     so slot addresses are stable: growth never relocates live callbacks
//     and callbacks are invoked in place. A slot stores its callback
//     inline for captures up to kInlineCallbackBytes (48) bytes —
//     scheduling such an event performs zero heap allocations in steady
//     state — and is exactly 80 bytes: the generation tag and the
//     timer/free-list link share one 8-byte tail after the callback.
//   * Dispatch batches same-timestamp events when the queue profits from
//     it: the calendar queue drains all events sharing the head timestamp
//     into a small inline buffer in one pop_batch (its sorted bucket makes
//     that a copy, so dense coincident patterns — periodic timers, server
//     scans — pay the bucket machinery once per timestamp, not once per
//     event). The default heap dispatches per-event: its pop cost is one
//     sift-down per node either way, and eager cancel keeps its head
//     always live, so batch bookkeeping would be pure overhead there.
//   * Periodic timers are their own slab; a timer's fire event carries the
//     timer's slot index, so re-arming is direct indexing — no hash
//     lookups anywhere in the kernel.
//
// The kernel is single-threaded. Parameter sweeps parallelize by running
// one Simulator per thread (see bench/), which is both simpler and faster
// than a locked shared kernel.
#pragma once

#include <cassert>
#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/small_func.hpp"
#include "util/check.hpp"
#include "util/status.hpp"
#include "util/time.hpp"

namespace dc::sim {

/// Identifies a scheduled (one-shot) event; valid until it fires or is
/// cancelled. Handles are generation-tagged: a stale id (already fired,
/// already cancelled, or from a recycled slot) is detected in O(1) and
/// never aliases a live event.
using EventId = std::uint64_t;
inline constexpr EventId kInvalidEvent = 0;

/// Identifies a periodic timer. Generation-tagged like EventId.
using TimerId = std::uint64_t;
inline constexpr TimerId kInvalidTimer = 0;

class Simulator {
 public:
  /// Event callbacks are stored inline in the event slab for captures up
  /// to kInlineCallbackBytes (48) bytes; larger captures heap-allocate
  /// (correct, just slower). Still constructible from any callable,
  /// including std::function, but move-only: callbacks are consumed
  /// exactly once.
  using Callback = SmallFunc<void()>;
  using TimerCallback = SmallFunc<void(SimTime)>;

  /// `queue` selects the pending-queue implementation (RunOptions/CLI
  /// `--queue`). Every implementation pops the same (time, seq) order, so
  /// this is a pure performance choice.
  explicit Simulator(QueueKind queue = QueueKind::kHeap)
      : queue_(make_event_queue(queue)) {
    if (queue == QueueKind::kHeap) {
      heap_ = static_cast<HeapEventQueue*>(queue_.get());
    }
  }
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  QueueKind queue_kind() const { return queue_->kind(); }

  /// Current simulation time (seconds).
  SimTime now() const { return now_; }

  /// Schedules `fn` at absolute time `t` (must be >= now()). Accepts any
  /// callable; the callable is constructed directly into the event slab.
  template <typename F>
  EventId schedule_at(SimTime t, F&& fn) {
    assert(t >= now_ && "cannot schedule into the past");
    const std::uint32_t slot = alloc_event_slot();
    event(slot).fn = std::forward<F>(fn);
    assert(event(slot).fn && "callback must be callable");
    return push_event(t, slot);
  }

  /// Schedules `fn` after `delay` seconds (delay >= 0).
  template <typename F>
  EventId schedule_in(SimDuration delay, F&& fn) {
    return schedule_at(now_ + delay, std::forward<F>(fn));
  }

  /// Cancels a pending event. Returns false if it already fired or was
  /// already cancelled. The handle check is O(1); so is queue removal.
  bool cancel(EventId id);

  /// Starts a periodic timer: first fires at `first_fire`, then every
  /// `period` seconds until stopped. The callback receives the fire time.
  TimerId start_periodic(SimTime first_fire, SimDuration period, TimerCallback fn);

  /// Stops a periodic timer. Returns false if it was not active. Safe to
  /// call from any callback, including the timer's own.
  bool stop_timer(TimerId id);

  /// Runs until the event queue is empty or a stop is requested.
  void run();

  /// Processes all events with time <= horizon, then advances the clock to
  /// exactly `horizon`.
  void run_until(SimTime horizon);

  /// Requests that run()/run_until() return after the current event.
  /// Same-timestamp events already drained for dispatch are put back with
  /// their original (time, seq), so a later resume fires them identically.
  void request_stop() { stop_requested_ = true; }

  /// Number of events executed so far (excludes cancelled).
  std::uint64_t events_processed() const { return processed_; }

  /// High-water mark of the pending-event set over the run — the
  /// kernel's memory-pressure figure for the self-profiling report.
  std::size_t peak_pending() const { return peak_pending_; }

  /// Number of live pending events: one-shot events not yet fired or
  /// cancelled, plus one pending fire per active periodic timer. Exact —
  /// cancelled events leave no residue.
  std::size_t pending_live() const { return live_events_; }

  /// Pre-sizes the event slab and queue for `expected_events` concurrently
  /// pending events. Optional — both grow on demand.
  void reserve(std::size_t expected_events);

  /// Batched-dispatch counters for the self-profiling report.
  struct DispatchStats {
    std::uint64_t batches = 0;        // dispatch rounds
    std::uint64_t batched_events = 0; // events dispatched via those rounds
    std::uint64_t max_batch = 0;      // largest same-timestamp drain
  };
  DispatchStats dispatch_stats() const { return dispatch_stats_; }

  /// Queue-implementation counters (rebuilds, compactions, ...) for the
  /// self-profiling report.
  void queue_stats(std::vector<QueueStat>* out) const { queue_->stats(out); }

  // --- Snapshot/restore support (see docs/SNAPSHOT.md) -------------------
  //
  // A snapshot taken at a quiescent point (between run_until chunks, no
  // callback on the stack) records, per pending occurrence, its (time, seq)
  // pair. Restore rebuilds the pending set by re-scheduling semantically
  // identical callbacks with their *original* sequence numbers: since seqs
  // are unique, (time, seq) is a total order and the queue pops the restored
  // events in exactly the order the uninterrupted run would have — push
  // order, slot indices, and even the queue implementation are irrelevant
  // to results (snapshots carry no queue-kind tag; a run saved under one
  // queue restores under the other).

  /// (time, seq) of a pending one-shot event; nullopt if the handle is
  /// stale (already fired or cancelled). O(1) — safe to call on every entry
  /// of an append-only event registry at save time.
  struct PendingEventInfo {
    SimTime time;
    std::uint32_t seq;
  };
  std::optional<PendingEventInfo> pending_event_info(EventId id) const;

  /// Next fire (time, seq) and period of an active periodic timer; nullopt
  /// if the handle is stale.
  struct PendingTimerInfo {
    SimTime next_fire;
    std::uint32_t seq;
    SimDuration period;
  };
  std::optional<PendingTimerInfo> pending_timer_info(TimerId id) const;

  /// The FIFO tie-break counter; saved so schedules after resume draw the
  /// same sequence numbers the uninterrupted run would have.
  std::uint32_t next_seq() const { return next_seq_; }

  /// Enters restore mode on a *virgin* kernel (nothing scheduled, clock at
  /// zero): sets the clock, the tie-break counter, and the processed-event
  /// count to their snapshot values. Only restore_event/restore_periodic
  /// may schedule until finish_restore().
  void begin_restore(SimTime now, std::uint32_t next_seq,
                     std::uint64_t processed);

  /// Re-arms one pending one-shot event with its saved (time, seq).
  template <typename F>
  EventId restore_event(SimTime t, std::uint32_t seq, F&& fn) {
    assert(restoring_ && "restore_event outside begin_restore/finish_restore");
    assert(t >= now_ && "restored event is in the past");
    assert(seq >= 1 && seq < next_seq_ && "restored seq outside saved range");
    const std::uint32_t slot = alloc_event_slot();
    event(slot).fn = std::forward<F>(fn);
    assert(event(slot).fn && "callback must be callable");
    return push_event_with_seq(t, slot, seq);
  }

  /// Re-arms one periodic timer whose next fire was pending at the
  /// snapshot, with the fire event's saved (time, seq).
  TimerId restore_periodic(SimTime next_fire, std::uint32_t seq,
                           SimDuration period, TimerCallback fn);

  /// Leaves restore mode. Validates that exactly `expected_pending` events
  /// were re-armed and that their sequence numbers are unique and below
  /// next_seq() — a component that forgot to re-arm (or re-armed twice) is
  /// reported here instead of silently diverging later.
  Status finish_restore(std::uint64_t expected_pending);

  bool restoring() const { return restoring_; }

  /// Full structural audit of the kernel (checked builds): queue ordering
  /// and slot-index invariants (delegated to the queue), generation
  /// consistency, event and timer slab free-list integrity, timer/event
  /// cross-links, batch accounting. A violation aborts with the failing
  /// invariant. In non-DC_CHECKED builds this is a no-op — tests may call
  /// it unconditionally. Checked builds also run it automatically every
  /// max(1024, pending) kernel operations (amortized O(1) per operation),
  /// so long scenarios self-audit.
  void audit_invariants() const;

 private:
  static constexpr std::uint32_t kNpos = 0xffffffffu;
  // `link` sentinel: fits the 31-bit field. A live slot with link ==
  // kLinkNone is a one-shot event; any other live value is the owning
  // timer slot; on a dead slot, link is the next free slot.
  static constexpr std::uint32_t kLinkNone = 0x7fffffffu;

  /// Same-timestamp drain bound: dispatch pulls up to this many coincident
  /// events from the queue in one operation. Runs longer than the buffer
  /// simply drain again at the same timestamp — order is still (time, seq).
  static constexpr std::uint32_t kBatchMax = 16;

  static std::uint64_t time_key(SimTime t) {
    assert(t >= 0 && "queued times are nonnegative");
    return static_cast<std::uint64_t>(t);
  }
  static SimTime key_time(std::uint64_t bits) {
    return static_cast<SimTime>(bits);
  }

  // Slab slot for a pending event: the dispatch record. Exactly 80 bytes —
  // the 72-byte inline callback plus one 8-byte tail word. `fn` is engaged
  // for one-shot callback events; timer fire events carry the timer slot
  // in `link` instead. `gen` tags handles so recycled slots invalidate old
  // ids. `link` is overloaded by lifetime (live: timer link; dead: slab
  // free list) — the two uses never overlap, and merging them is what
  // keeps the slot at 80 bytes. The slot's queue position, if any, lives
  // inside the queue implementation, not here.
  struct EventSlot {
    Callback fn;
    std::uint32_t gen = 1;
    std::uint32_t link : 31 = kLinkNone;
    std::uint32_t live : 1 = 0;
  };
  static_assert(sizeof(EventSlot) == sizeof(Callback) + 8,
                "EventSlot tail grew past one 8-byte word");

  // Slab slot for a periodic timer. `firing` defers slot reuse while the
  // timer's callback is on the stack, so a callback may stop its own
  // timer (or a sibling's) without destroying the callable it runs from.
  struct TimerSlot {
    TimerCallback fn;
    SimDuration period = 0;
    EventId pending = kInvalidEvent;
    std::uint32_t gen = 1;
    std::uint32_t next_free = kNpos;
    bool alive = false;
    bool firing = false;
  };

  static constexpr EventId make_event_id(std::uint32_t slot, std::uint32_t gen) {
    return (static_cast<std::uint64_t>(slot) << 32) | gen;
  }
  static constexpr std::uint32_t id_slot(std::uint64_t id) {
    return static_cast<std::uint32_t>(id >> 32);
  }
  static constexpr std::uint32_t id_gen(std::uint64_t id) {
    return static_cast<std::uint32_t>(id);
  }

  // Chunked slab geometry: fixed 1024-slot chunks keep slot addresses
  // stable across growth (no relocation of live callbacks) and make slot
  // lookup two shifts and an add.
  static constexpr std::uint32_t kSlabShift = 10;
  static constexpr std::uint32_t kSlabChunk = 1u << kSlabShift;
  static constexpr std::uint32_t kSlabMask = kSlabChunk - 1;

  EventSlot& event(std::uint32_t slot) {
    return event_chunks_[slot >> kSlabShift][slot & kSlabMask];
  }
  const EventSlot& event(std::uint32_t slot) const {
    return event_chunks_[slot >> kSlabShift][slot & kSlabMask];
  }
  TimerSlot& timer(std::uint32_t slot) {
    return timer_chunks_[slot >> kSlabShift][slot & kSlabMask];
  }
  const TimerSlot& timer(std::uint32_t slot) const {
    return timer_chunks_[slot >> kSlabShift][slot & kSlabMask];
  }

  // Checked builds: count kernel operations down to the next full audit.
  // The reset interval scales with the pending set so the O(pending) walk
  // stays amortized O(1) per schedule/cancel/dispatch.
  void maybe_audit() {
#if defined(DC_CHECKED)
    if (--audit_countdown_ == 0) {
      audit_invariants();
      audit_countdown_ =
          live_events_ > 1024 ? static_cast<std::uint64_t>(live_events_) : 1024;
    }
#endif
  }

  std::uint32_t alloc_event_slot() {
    if (free_event_ != kLinkNone) {
      const std::uint32_t slot = free_event_;
      EventSlot& ev = event(slot);
      free_event_ = ev.link;
      ev.link = kLinkNone;
      ev.live = 1;
      return slot;
    }
    return grow_event_slab();
  }
  std::uint32_t grow_event_slab();
  void release_event_slot(std::uint32_t slot);

  EventId push_event(SimTime t, std::uint32_t slot) {
    if (next_seq_ == 0xffffffffu) renumber_seqs();
    return push_event_with_seq(t, slot, next_seq_++);
  }

  // Shared push core; restore_event passes a saved seq, push_event the next
  // fresh one.
  EventId push_event_with_seq(SimTime t, std::uint32_t slot,
                              std::uint32_t seq) {
    const QueueNode node{time_key(t), seq, slot};
    if (heap_ != nullptr) {
      heap_->push(node);  // devirtualized: inlines the sift-up
    } else {
      queue_->push(node);
    }
    ++live_events_;
    if (live_events_ > peak_pending_) peak_pending_ = live_events_;
    maybe_audit();
    return make_event_id(slot, event(slot).gen);
  }

  EventId schedule_timer_event(SimTime t, std::uint32_t timer_slot);
  void fire_timer(std::uint32_t timer_slot, SimTime fired_at);
  void release_timer_slot(std::uint32_t slot);

  /// Drains and dispatches one same-timestamp batch with time <=
  /// horizon_key. Returns false when no such batch exists (queue empty or
  /// head beyond the horizon).
  bool dispatch_batch(std::uint64_t horizon_key);

  /// Marks the (already popped, live) event in `slot` dead and invokes it.
  void run_event(std::uint32_t slot, EventSlot& ev);

  void renumber_seqs();

  SimTime now_ = 0;
  std::uint32_t next_seq_ = 1;
  std::uint64_t processed_ = 0;
  std::size_t live_events_ = 0;
  std::size_t peak_pending_ = 0;
  bool stop_requested_ = false;
  bool restoring_ = false;

  std::unique_ptr<EventQueue> queue_;
  // Non-null iff queue_ is the (final) HeapEventQueue: the hot paths call
  // through this typed pointer so the heap's inline push/min/find_slot
  // compile straight into them instead of going through the vtable.
  HeapEventQueue* heap_ = nullptr;

  // The in-flight batch: events drained from the queue but not yet
  // dispatched. Member state (not dispatch_batch locals) so cancel() can
  // account for a mid-batch cancellation and renumber_seqs() can renumber
  // entries that may be re-pushed by request_stop().
  QueueNode batch_[kBatchMax];
  std::uint32_t batch_gens_[kBatchMax];
  std::uint32_t batch_i_ = 0;        // next entry to dispatch
  std::uint32_t batch_n_ = 0;        // drained entries
  std::size_t batch_inflight_ = 0;   // drained, not yet dispatched/cancelled
  DispatchStats dispatch_stats_;

  std::vector<std::unique_ptr<EventSlot[]>> event_chunks_;
  std::uint32_t event_slots_used_ = 0;  // high-water mark across chunks
  std::uint32_t free_event_ = kLinkNone;
  std::vector<std::unique_ptr<TimerSlot[]>> timer_chunks_;
  std::uint32_t timer_slots_used_ = 0;
  std::uint32_t free_timer_ = kNpos;
  DC_CHECKED_ONLY(std::uint64_t audit_countdown_ = 1024;)
  // The timer whose fire event is being pushed right now (start/re-arm):
  // its `pending` handle is assigned only after push_event returns, so an
  // audit that fires from inside that push must not require it to be set.
  DC_CHECKED_ONLY(std::uint32_t timer_arming_ = kNpos;)
};

}  // namespace dc::sim
