// Discrete-event simulation kernel.
//
// This kernel replaces the paper's 100x-sped-up wall-clock emulation (see
// DESIGN.md, substitution table). All DawningCloud daemons — the HTC/MTC
// servers, the resource provision service, the lifecycle service, and the
// job emulator — are event handlers driven by one Simulator instance.
//
// Guarantees:
//   * Events fire in nondecreasing time order.
//   * Events scheduled for the same time fire in scheduling (FIFO) order,
//     which makes experiments fully deterministic.
//   * Cancellation is O(1); cancelled events are skipped at pop time.
//
// The kernel is single-threaded. Parameter sweeps parallelize by running
// one Simulator per thread (see bench/), which is both simpler and faster
// than a locked shared kernel.
#pragma once

#include <cassert>
#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "util/time.hpp"

namespace dc::sim {

/// Identifies a scheduled (one-shot) event; valid until it fires or is
/// cancelled.
using EventId = std::uint64_t;
inline constexpr EventId kInvalidEvent = 0;

/// Identifies a periodic timer.
using TimerId = std::uint64_t;
inline constexpr TimerId kInvalidTimer = 0;

class Simulator {
 public:
  using Callback = std::function<void()>;
  using TimerCallback = std::function<void(SimTime)>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulation time (seconds).
  SimTime now() const { return now_; }

  /// Schedules `fn` at absolute time `t` (must be >= now()).
  EventId schedule_at(SimTime t, Callback fn);

  /// Schedules `fn` after `delay` seconds (delay >= 0).
  EventId schedule_in(SimDuration delay, Callback fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }

  /// Cancels a pending event. Returns false if it already fired or was
  /// already cancelled.
  bool cancel(EventId id);

  /// Starts a periodic timer: first fires at `first_fire`, then every
  /// `period` seconds until stopped. The callback receives the fire time.
  TimerId start_periodic(SimTime first_fire, SimDuration period, TimerCallback fn);

  /// Stops a periodic timer. Returns false if it was not active.
  bool stop_timer(TimerId id);

  /// Runs until the event queue is empty or a stop is requested.
  void run();

  /// Processes all events with time <= horizon, then advances the clock to
  /// exactly `horizon`.
  void run_until(SimTime horizon);

  /// Requests that run()/run_until() return after the current event.
  void request_stop() { stop_requested_ = true; }

  /// Number of events executed so far (excludes cancelled).
  std::uint64_t events_processed() const { return processed_; }

  /// Number of events currently pending (includes not-yet-collected
  /// cancelled entries; exact pending count is pending_live()).
  std::size_t pending_live() const { return handlers_.size(); }

 private:
  struct QueueEntry {
    SimTime time;
    std::uint64_t seq;  // tie-break: FIFO among equal times
    EventId id;
    bool operator>(const QueueEntry& other) const {
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };

  /// Pops and executes the next live event. Returns false if none remain.
  bool step();

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 1;
  EventId next_id_ = 1;
  TimerId next_timer_id_ = 1;
  std::uint64_t processed_ = 0;
  bool stop_requested_ = false;

  std::priority_queue<QueueEntry, std::vector<QueueEntry>, std::greater<>> queue_;
  std::unordered_map<EventId, Callback> handlers_;

  struct TimerState {
    SimDuration period;
    TimerCallback fn;
    EventId pending_event = kInvalidEvent;
  };
  std::unordered_map<TimerId, TimerState> timers_;

  void arm_timer(TimerId id, SimTime fire_at);
};

}  // namespace dc::sim
