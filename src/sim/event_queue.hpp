// Pluggable pending-event queue for the simulation kernel.
//
// The Simulator owns exactly one EventQueue. Every implementation must
// produce the same pop order — strictly increasing (time, seq) — so the
// queue choice can never change simulation results, only their cost. The
// contract is pinned by the randomized differential test
// (tests/sim/queue_differential_test.cpp) and by the cross-queue
// determinism tests, which require byte-identical artifacts, snapshots,
// and trace exports from both implementations.
//
// Two implementations ship:
//   * HeapEventQueue — the indexed 4-ary heap the kernel has always used:
//     16-byte nodes in a 64-byte-aligned buffer (four children per cache
//     line), a dense slot->position side array for O(1) + one-sift cancel.
//     O(log n) push/pop with a small constant; the safe default.
//   * CalendarQueue — a calendar/ladder queue (see calendar_queue.hpp):
//     amortized O(1) push and pop with generation-tagged lazy cancel,
//     built for the huge pending sets of planet-scale sweeps.
//
// Snapshots deliberately carry no queue-kind tag: a snapshot records the
// pending set as (time, seq) pairs, which every queue can re-arm, so a run
// saved under one queue restores under the other (also pinned by tests).
#pragma once

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <optional>
#include <string_view>
#include <vector>

namespace dc::sim {

/// Which EventQueue implementation a Simulator uses. Selected per run via
/// RunOptions::queue / the CLI `--queue` flag; defaults to the heap.
enum class QueueKind : std::uint8_t {
  kHeap = 0,
  kCalendar = 1,
};

const char* queue_kind_name(QueueKind kind);

/// Parses "heap" or "calendar"; nullopt for anything else.
std::optional<QueueKind> parse_queue_kind(std::string_view text);

/// One pending occurrence. Ordered by (time, seq); seq is the kernel's
/// schedule counter, so equal-time events pop FIFO. Kept to 16 bytes —
/// four nodes per cache line.
///
/// `time_bits` is the time as unsigned — order-preserving because the
/// clock starts at 0 and schedule_at rejects the past, so queued times
/// are never negative.
struct QueueNode {
  std::uint64_t time_bits;
  std::uint32_t seq;
  std::uint32_t slot;  // index into the Simulator's event slab
};
static_assert(sizeof(QueueNode) == 16);

inline bool queue_node_less(const QueueNode& a, const QueueNode& b) {
  if (a.time_bits != b.time_bits) return a.time_bits < b.time_bits;
  return a.seq < b.seq;
}

/// A named statistic an implementation exposes to the self-profiling
/// report (published as profile notes by SystemRunner::finalize).
struct QueueStat {
  const char* name;
  std::uint64_t value;
};

/// Abstract pending-event queue. Not a general priority queue: slots are
/// unique keys (at most one pending occurrence per slot), which is what
/// makes O(1) cancel-by-slot possible in every implementation.
class EventQueue {
 public:
  virtual ~EventQueue() = default;

  virtual QueueKind kind() const = 0;

  /// Inserts a node. The slot must not already be queued.
  virtual void push(const QueueNode& node) = 0;

  /// The minimum node, or nullptr when empty. Non-const: lazy
  /// implementations may reorganize to locate the head.
  virtual const QueueNode* min() = 0;

  /// Removes the minimum node. Precondition: not empty.
  virtual void pop_min() = 0;

  /// Pops up to `max` front nodes that all share the head's time_bits
  /// into `out`, in (time, seq) order. Returns the count (>= 1).
  /// Precondition: not empty. This is the batched-dispatch drain: the
  /// Simulator dispatches the run without re-touching the queue.
  virtual std::uint32_t pop_batch(QueueNode* out, std::uint32_t max) = 0;

  /// Removes the node for `slot`. Precondition: the slot is queued.
  virtual void erase_slot(std::uint32_t slot) = 0;

  /// Looks up the queued node for `slot`. Returns false when the slot is
  /// not queued (never scheduled, already popped, or mid-dispatch).
  virtual bool find_slot(std::uint32_t slot, QueueNode* out) const = 0;

  /// Number of queued nodes.
  virtual std::size_t size() const = 0;

  /// Pre-sizes internal storage for `expected` concurrently queued nodes.
  virtual void reserve(std::size_t expected) = 0;

  /// Grows per-slot side storage to cover slots [0, slot_count). Called by
  /// the Simulator whenever the event slab grows.
  virtual void ensure_slots(std::size_t slot_count) = 0;

  /// Appends every queued node to `out` in unspecified order, then
  /// empties the queue. Used by seq renumbering: collect, renumber,
  /// re-push. Per-slot side storage is retained.
  virtual void drain_all(std::vector<QueueNode>* out) = 0;

  /// Implementation-specific counters for the self-profiling report.
  virtual void stats(std::vector<QueueStat>* out) const = 0;

  /// Full structural audit (checked builds call this): internal ordering
  /// and slot-index invariants, plus `check_node` once per queued node so
  /// the Simulator can validate slab linkage. Aborts on violation.
  virtual void audit(
      const std::function<void(const QueueNode&)>& check_node) const = 0;
};

/// Creates the queue for `kind`.
std::unique_ptr<EventQueue> make_event_queue(QueueKind kind);

/// The kernel's original pending structure: an indexed 4-ary heap of
/// 16-byte nodes. The buffer is 64-byte-aligned with a 3-node front pad,
/// so the four children of logical node L (physical 4L+4..4L+7) share one
/// cache line. A dense slot->position side array makes erase_slot O(1) to
/// locate plus one localized sift.
class HeapEventQueue final : public EventQueue {
 public:
  HeapEventQueue() = default;
  HeapEventQueue(const HeapEventQueue&) = delete;
  HeapEventQueue& operator=(const HeapEventQueue&) = delete;
  ~HeapEventQueue() override { std::free(raw_); }

  QueueKind kind() const override { return QueueKind::kHeap; }

  void push(const QueueNode& node) override {
    if (size_ == cap_) grow(cap_ == 0 ? 1024 : cap_ * 2);
    std::size_t pos = size_++;
    // Inline sift-up: random-time inserts rarely climb more than a level
    // or two, so the whole push stays in this frame.
    while (pos > 0) {
      const std::size_t parent = (pos - 1) >> 2;
      if (!queue_node_less(node, at(parent))) break;
      at(pos) = at(parent);
      slot_pos_[at(pos).slot] = static_cast<std::uint32_t>(pos);
      pos = parent;
    }
    at(pos) = node;
    slot_pos_[node.slot] = static_cast<std::uint32_t>(pos);
  }

  const QueueNode* min() override { return size_ == 0 ? nullptr : &at(0); }

  // Pop the root. The replacement comes from the bottom of the heap, so it
  // nearly always sinks the full height: walk the min-child path down to a
  // leaf first, then bubble the replacement up — the early-exit compares
  // happen near the leaf where they are cheap, and each level's child scan
  // is one aligned cache line (prefetched one level ahead). In the header
  // so the Simulator's devirtualized dispatch path inlines the whole pop.
  void pop_min() override {
    slot_pos_[at(0).slot] = kNoPos;
    const QueueNode last = at(--size_);
    const std::size_t n = size_;
    if (n == 0) return;
    std::size_t pos = 0;
    while (true) {
      const std::size_t first = (pos << 2) + 1;
      if (first >= n) break;
      std::size_t best = first;
      const std::size_t end = first + 4 < n ? first + 4 : n;
      // Whichever child wins, its children are one of these four lines;
      // issuing all four overlaps the next level's miss with this level's
      // compares (the walk's dependent-miss chain is what bounds pop cost).
      __builtin_prefetch(&at((first << 2) + 1));
      __builtin_prefetch(&at(((first + 1) << 2) + 1));
      __builtin_prefetch(&at(((first + 2) << 2) + 1));
      __builtin_prefetch(&at(((first + 3) << 2) + 1));
      for (std::size_t c = first + 1; c < end; ++c) {
        if (queue_node_less(at(c), at(best))) best = c;
      }
      if (!queue_node_less(at(best), last)) break;
      at(pos) = at(best);
      slot_pos_[at(pos).slot] = static_cast<std::uint32_t>(pos);
      pos = best;
    }
    at(pos) = last;
    slot_pos_[last.slot] = static_cast<std::uint32_t>(pos);
  }

  std::uint32_t pop_batch(QueueNode* out, std::uint32_t max) override {
    const std::uint64_t head_time = at(0).time_bits;
    std::uint32_t n = 0;
    do {
      out[n++] = at(0);
      pop_min();
    } while (n < max && size_ != 0 && at(0).time_bits == head_time);
    return n;
  }

  void erase_slot(std::uint32_t slot) override;

  bool find_slot(std::uint32_t slot, QueueNode* out) const override {
    const std::uint32_t pos = slot_pos_[slot];
    if (pos == kNoPos) return false;
    *out = at(pos);
    return true;
  }

  std::size_t size() const override { return size_; }

  void reserve(std::size_t expected) override {
    if (expected > cap_) grow(expected);
  }

  void ensure_slots(std::size_t slot_count) override {
    slot_pos_.resize(slot_count, kNoPos);
  }

  void drain_all(std::vector<QueueNode>* out) override;
  void stats(std::vector<QueueStat>* out) const override;
  void audit(
      const std::function<void(const QueueNode&)>& check_node) const override;

 private:
  static constexpr std::uint32_t kNoPos = 0xffffffffu;

  QueueNode& at(std::size_t logical) { return raw_[logical + 3]; }
  const QueueNode& at(std::size_t logical) const { return raw_[logical + 3]; }

  void grow(std::size_t new_cap);
  void sift_up(std::size_t pos);
  void sift_down(std::size_t pos);

  QueueNode* raw_ = nullptr;  // aligned_alloc'd; [0..2] is the pad
  std::size_t size_ = 0;
  std::size_t cap_ = 0;
  std::vector<std::uint32_t> slot_pos_;  // event slot -> logical heap index
};

}  // namespace dc::sim
