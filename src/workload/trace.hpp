// A simulation-ready HTC workload trace.
//
// Trace is the simulator-facing view of an SWF file: one entry per job with
// submit time, runtime and node width, already normalized to the paper's
// Section 4.4 configuration of one CPU per node ("we scale workload traces
// with different values to the same configuration of which each node owns
// one CPU").
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.hpp"
#include "util/time.hpp"
#include "workload/swf.hpp"

namespace dc::workload {

struct TraceJob {
  std::int64_t id = 0;
  SimTime submit = 0;       // seconds from trace start
  SimDuration runtime = 0;  // seconds
  std::int64_t nodes = 1;   // width after per-node-CPU normalization
};

class Trace {
 public:
  Trace() = default;
  Trace(std::string name, std::int64_t capacity_nodes,
        std::vector<TraceJob> jobs);

  /// Builds a trace from a parsed SWF file. `cpus_per_node` is the source
  /// machine's CPUs per node; widths are converted from processors to
  /// normalized 1-CPU nodes via ceil(procs / 1) after scaling — i.e. each
  /// processor becomes one node, and the machine capacity scales likewise.
  /// Jobs with nonpositive runtime or width are dropped (archive traces
  /// contain cancelled entries).
  static StatusOr<Trace> from_swf(const SwfFile& file, std::string name,
                                  std::int64_t cpus_per_node = 1);

  /// Serializes back to SWF (synthetic models use this to produce archive-
  /// format files).
  SwfFile to_swf() const;

  const std::string& name() const { return name_; }
  std::int64_t capacity_nodes() const { return capacity_nodes_; }
  const std::vector<TraceJob>& jobs() const { return jobs_; }
  std::size_t size() const { return jobs_.size(); }
  bool empty() const { return jobs_.empty(); }

  /// Last submit time (0 for empty traces).
  SimTime last_submit() const;

  /// End of the observation period: max(submit) rounded up to a whole hour,
  /// or an explicitly set period.
  SimTime period() const;
  void set_period(SimTime period) { period_ = period; }

  /// Keeps only jobs submitted in [from, to) and rebases submit times to
  /// `from`.
  Trace slice(SimTime from, SimTime to) const;

  /// Multiplies all runtimes by `factor` (used for utilization calibration),
  /// keeping each at least 1 second.
  void scale_runtimes(double factor);

  /// Widest job in the trace.
  std::int64_t max_nodes() const;

 private:
  std::string name_;
  std::int64_t capacity_nodes_ = 0;
  std::vector<TraceJob> jobs_;  // sorted by submit time
  SimTime period_ = kNever;
};

}  // namespace dc::workload
