#include "workload/swf.hpp"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "util/strings.hpp"

namespace dc::workload {
namespace {

Status parse_record_line(std::string_view line, std::size_t line_no,
                         SwfRecord& out) {
  const auto tokens = split_ws(line);
  if (tokens.size() != 18) {
    return Status::invalid_argument(
        str_format("line %zu: expected 18 SWF fields, got %zu", line_no,
                   tokens.size()));
  }
  std::int64_t values[18];
  for (std::size_t i = 0; i < 18; ++i) {
    if (i == 5) continue;  // avg_cpu_time is fractional
    auto parsed = parse_int(tokens[i]);
    if (!parsed.is_ok()) {
      // Some archive traces store fractional seconds in integer fields;
      // accept a float and truncate.
      auto as_double = parse_double(tokens[i]);
      if (!as_double.is_ok()) {
        return Status::invalid_argument(
            str_format("line %zu field %zu: %s", line_no, i + 1,
                       parsed.status().message().c_str()));
      }
      values[i] = static_cast<std::int64_t>(*as_double);
      continue;
    }
    values[i] = *parsed;
  }
  auto cpu = parse_double(tokens[5]);
  if (!cpu.is_ok()) {
    return Status::invalid_argument(
        str_format("line %zu field 6: %s", line_no,
                   cpu.status().message().c_str()));
  }

  out.job_number = values[0];
  out.submit_time = values[1];
  out.wait_time = values[2];
  out.run_time = values[3];
  out.allocated_procs = values[4];
  out.avg_cpu_time = *cpu;
  out.used_memory_kb = values[6];
  out.requested_procs = values[7];
  out.requested_time = values[8];
  out.requested_memory_kb = values[9];
  out.status = values[10];
  out.user_id = values[11];
  out.group_id = values[12];
  out.executable_id = values[13];
  out.queue_number = values[14];
  out.partition_number = values[15];
  out.preceding_job = values[16];
  out.think_time = values[17];
  return Status::ok();
}

void parse_header_line(std::string_view line, SwfHeader& header) {
  // ";  Key: Value" — anything after ';' up to the first ':' is the key.
  std::string_view body = trim(line.substr(1));
  const std::size_t colon = body.find(':');
  if (colon == std::string_view::npos) return;  // free-form comment
  const std::string key{trim(body.substr(0, colon))};
  const std::string value{trim(body.substr(colon + 1))};
  if (!key.empty()) header.set(key, value);
}

}  // namespace

std::optional<std::int64_t> SwfHeader::int_field(const std::string& key) const {
  auto it = fields.find(key);
  if (it == fields.end()) return std::nullopt;
  // Header values may carry trailing commentary ("128  (iPSC/860 nodes)");
  // parse the leading token.
  const auto tokens = split_ws(it->second);
  if (tokens.empty()) return std::nullopt;
  auto parsed = parse_int(tokens[0]);
  if (!parsed.is_ok()) return std::nullopt;
  return *parsed;
}

StatusOr<SwfFile> parse_swf(std::istream& in) {
  SwfFile file;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::string_view view = trim(line);
    if (view.empty()) continue;
    if (view.front() == ';') {
      parse_header_line(view, file.header);
      continue;
    }
    SwfRecord record;
    if (auto status = parse_record_line(view, line_no, record); !status.is_ok()) {
      return status;
    }
    file.records.push_back(record);
  }
  return file;
}

StatusOr<SwfFile> parse_swf_string(const std::string& text) {
  std::istringstream in(text);
  return parse_swf(in);
}

StatusOr<SwfFile> read_swf_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::not_found("cannot open SWF file: " + path);
  return parse_swf(in);
}

void write_swf(std::ostream& out, const SwfFile& file) {
  for (const auto& [key, value] : file.header.fields) {
    out << "; " << key << ": " << value << '\n';
  }
  for (const SwfRecord& r : file.records) {
    out << r.job_number << ' ' << r.submit_time << ' ' << r.wait_time << ' '
        << r.run_time << ' ' << r.allocated_procs << ' ' << r.avg_cpu_time
        << ' ' << r.used_memory_kb << ' ' << r.requested_procs << ' '
        << r.requested_time << ' ' << r.requested_memory_kb << ' ' << r.status
        << ' ' << r.user_id << ' ' << r.group_id << ' ' << r.executable_id
        << ' ' << r.queue_number << ' ' << r.partition_number << ' '
        << r.preceding_job << ' ' << r.think_time << '\n';
  }
}

Status write_swf_file(const std::string& path, const SwfFile& file) {
  std::ofstream out(path);
  if (!out) return Status::internal("cannot open for writing: " + path);
  write_swf(out, file);
  if (!out.good()) return Status::internal("write failed: " + path);
  return Status::ok();
}

}  // namespace dc::workload
